// Ablation (DESIGN.md section 5): effect of EIFS deference after
// collisions on the saturated fair share and on collision counts.  EIFS
// penalizes bystanders of a collision; with it disabled all stations
// defer plain DIFS.
#include <iostream>

#include "bench_common.hpp"
#include "core/scenario.hpp"
#include "mac/bianchi.hpp"
#include "mac/wlan.hpp"
#include "traffic/flow_meter.hpp"
#include "traffic/source.hpp"

using namespace csmabw;

namespace {

struct SatResult {
  double aggregate_mbps;
  double collisions_per_s;
};

SatResult saturate(int stations, bool use_eifs, double seconds,
                   std::uint64_t seed) {
  mac::PhyParams phy = mac::PhyParams::dot11b_short();
  phy.use_eifs = use_eifs;
  mac::WlanNetwork net(phy, seed);
  std::vector<std::unique_ptr<traffic::CbrSource>> sources;
  std::vector<std::unique_ptr<traffic::FlowMeter>> meters;
  std::vector<std::unique_ptr<traffic::FlowDispatcher>> dispatch;
  const TimeNs end = TimeNs::from_seconds(seconds);
  for (int i = 0; i < stations; ++i) {
    auto& st = net.add_station();
    sources.push_back(std::make_unique<traffic::CbrSource>(
        net.simulator(), st, i, 1500, BitRate::mbps(20).gap_for(1500)));
    sources.back()->start(TimeNs::zero());
    meters.push_back(
        std::make_unique<traffic::FlowMeter>(TimeNs::sec(1), end));
    dispatch.push_back(std::make_unique<traffic::FlowDispatcher>(st));
    traffic::FlowMeter* m = meters.back().get();
    dispatch.back()->on_any(
        [m](const mac::Packet& p) { m->on_packet(p); });
  }
  net.simulator().run_until(end);
  double total = 0.0;
  for (auto& m : meters) {
    total += m->rate().to_mbps();
  }
  return SatResult{total, net.medium().stats().collisions / (seconds - 1.0)};
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const double seconds = args.get("duration", 6.0) * util::bench_scale() + 1.0;

  bench::announce("Ablation: EIFS",
                  "saturation throughput and collision rate with/without "
                  "EIFS deference",
                  "n saturated stations, 1500 B frames");

  util::Table table({"stations", "agg_eifs_mbps", "agg_no_eifs_mbps",
                     "collisions_eifs_per_s", "collisions_no_eifs_per_s",
                     "bianchi_eifs_mbps"});
  std::vector<std::vector<double>> rows;
  for (int n : {1, 2, 3, 5, 8}) {
    const SatResult with_eifs = saturate(n, true, seconds, 301);
    const SatResult without = saturate(n, false, seconds, 302);
    mac::PhyParams phy = mac::PhyParams::dot11b_short();
    const auto bi = mac::bianchi_saturation(phy, n, 1500);
    rows.push_back({static_cast<double>(n), with_eifs.aggregate_mbps,
                    without.aggregate_mbps, with_eifs.collisions_per_s,
                    without.collisions_per_s, bi.aggregate.to_mbps()});
    table.add_row(rows.back());
  }
  bench::emit(table, args, rows);
  std::cout << "# expect: EIFS slightly lowers aggregate throughput under "
               "contention (longer deference after collisions)\n";
  return 0;
}
