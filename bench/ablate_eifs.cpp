// Ablation (DESIGN.md section 5): effect of EIFS deference after
// collisions on the saturated fair share and on collision counts.  EIFS
// penalizes bystanders of a collision; with it disabled all stations
// defer plain DIFS.
#include <iostream>

#include "bench_common.hpp"
#include "core/scenario.hpp"
#include "mac/bianchi.hpp"

using namespace csmabw;

namespace {

struct SatResult {
  double aggregate_mbps;
  double collisions_per_s;
};

SatResult saturate(int stations, bool use_eifs, double seconds,
                   std::uint64_t seed) {
  core::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.phy.use_eifs = use_eifs;
  for (int i = 0; i < stations; ++i) {
    cfg.contenders.push_back(core::StationSpec::saturated(1500));
  }
  const core::ContentionResult r =
      core::Scenario(cfg).run_contention(TimeNs::from_seconds(seconds),
                                         TimeNs::sec(1));
  return SatResult{r.aggregate.to_mbps(),
                   static_cast<double>(r.medium.collisions) /
                       (seconds - 1.0)};
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const double seconds = args.get("duration", 6.0) * util::bench_scale() + 1.0;

  bench::announce("Ablation: EIFS",
                  "saturation throughput and collision rate with/without "
                  "EIFS deference",
                  "n saturated stations, 1500 B frames");

  util::Table table({"stations", "agg_eifs_mbps", "agg_no_eifs_mbps",
                     "collisions_eifs_per_s", "collisions_no_eifs_per_s",
                     "bianchi_eifs_mbps"});
  std::vector<std::vector<double>> rows;
  for (int n : {1, 2, 3, 5, 8}) {
    const SatResult with_eifs = saturate(n, true, seconds, 301);
    const SatResult without = saturate(n, false, seconds, 302);
    mac::PhyParams phy = mac::PhyParams::dot11b_short();
    const auto bi = mac::bianchi_saturation(phy, n, 1500);
    rows.push_back({static_cast<double>(n), with_eifs.aggregate_mbps,
                    without.aggregate_mbps, with_eifs.collisions_per_s,
                    without.collisions_per_s, bi.aggregate.to_mbps()});
    table.add_row(rows.back());
  }
  bench::emit(table, args, rows);
  std::cout << "# expect: EIFS slightly lowers aggregate throughput under "
               "contention (longer deference after collisions)\n";
  return 0;
}
