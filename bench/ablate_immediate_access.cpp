// Ablation (DESIGN.md section 5): how much of the access-delay transient
// is driven by the DIFS-only "immediate access" rule for packets that
// arrive at an idle station?  We repeat the Fig 6 experiment with the
// rule enabled (standard/NS2 behaviour) and disabled (every access draws
// a random backoff), and also toggle post-backoff.
#include <iostream>

#include "bench_common.hpp"
#include "core/scenario.hpp"
#include "core/transient.hpp"

using namespace csmabw;

namespace {

std::vector<double> mean_curve(bool immediate, bool post_backoff, int reps,
                               int train, int show, std::uint64_t seed) {
  core::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.phy.immediate_access = immediate;
  cfg.phy.post_backoff = post_backoff;
  cfg.contenders.push_back(core::StationSpec::poisson(BitRate::mbps(4.0), 1500));
  core::Scenario sc(cfg);

  traffic::TrainSpec spec;
  spec.n = train;
  spec.size_bytes = 1500;
  spec.gap = BitRate::mbps(5.0).gap_for(1500);

  core::TransientConfig tc;
  tc.train_length = train;
  tc.ks_prefix = 1;
  tc.steady_tail = train / 2;
  core::TransientAnalyzer ta(tc);
  for (int rep = 0; rep < reps; ++rep) {
    const core::TrainRun run =
        sc.run_train(spec, static_cast<std::uint64_t>(rep));
    if (!run.any_dropped) {
      ta.add_repetition(run.access_delays_s());
    }
  }
  std::vector<double> out;
  for (int i = 0; i < show; ++i) {
    out.push_back(ta.mean_at(i) / ta.steady_mean());
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int reps = args.get("reps", util::scaled_reps(800));
  const int train = args.get("train", 300);
  const int show = args.get("show", 60);

  bench::announce("Ablation: immediate access & post-backoff",
                  "normalized mean access delay by packet index",
                  "Fig 6 scenario (probe 5 Mb/s, contender 4 Mb/s); value "
                  "1.0 = steady state; " +
                      std::to_string(reps) + " repetitions per variant");

  const auto std_cfg = mean_curve(true, true, reps, train, show, 201);
  const auto no_ia = mean_curve(false, true, reps, train, show, 202);
  const auto no_pb = mean_curve(true, false, reps, train, show, 203);

  util::Table table({"packet", "standard", "no_immediate_access",
                     "no_post_backoff"});
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < show; ++i) {
    rows.push_back({static_cast<double>(i + 1),
                    std_cfg[static_cast<std::size_t>(i)],
                    no_ia[static_cast<std::size_t>(i)],
                    no_pb[static_cast<std::size_t>(i)]});
    table.add_row(rows.back());
  }
  bench::emit(table, args, rows);
  std::cout << "# expect: the 'standard' column starts lowest (strongest "
               "first-packet acceleration)\n";
  return 0;
}
