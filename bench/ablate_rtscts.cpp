// Ablation: RTS/CTS.  The paper's experiments disable the exchange; this
// bench quantifies what it would change — collision cost drops from a
// full data frame to an RTS, at the price of per-frame control overhead.
// With few stations and 1500-byte frames the overhead dominates (the
// usual justification for leaving it off).
#include <iostream>

#include "bench_common.hpp"
#include "mac/wlan.hpp"
#include "traffic/flow_meter.hpp"
#include "traffic/probe_train.hpp"
#include "traffic/source.hpp"

using namespace csmabw;

namespace {

struct SatResult {
  double aggregate_mbps = 0.0;
  double collision_share = 0.0;  ///< busy time fraction wasted on collisions
};

SatResult saturate(int stations, bool rts, double seconds,
                   std::uint64_t seed) {
  mac::PhyParams phy = mac::PhyParams::dot11b_short();
  phy.rts_threshold_bytes = rts ? 0 : -1;
  mac::WlanNetwork net(phy, seed);
  std::vector<std::unique_ptr<traffic::CbrSource>> sources;
  std::vector<std::unique_ptr<traffic::FlowMeter>> meters;
  std::vector<std::unique_ptr<traffic::FlowDispatcher>> dispatch;
  const TimeNs end = TimeNs::from_seconds(seconds);
  for (int i = 0; i < stations; ++i) {
    auto& st = net.add_station();
    sources.push_back(std::make_unique<traffic::CbrSource>(
        net.simulator(), st, i, 1500, BitRate::mbps(20).gap_for(1500)));
    sources.back()->start(TimeNs::zero());
    meters.push_back(
        std::make_unique<traffic::FlowMeter>(TimeNs::sec(1), end));
    dispatch.push_back(std::make_unique<traffic::FlowDispatcher>(st));
    traffic::FlowMeter* m = meters.back().get();
    dispatch.back()->on_any([m](const mac::Packet& p) { m->on_packet(p); });
  }
  net.simulator().run_until(end);

  SatResult r;
  for (auto& m : meters) {
    r.aggregate_mbps += m->rate().to_mbps();
  }
  const auto& ms = net.medium().stats();
  const double collision_time =
      static_cast<double>(ms.collisions) *
      (rts ? phy.rts_tx_time() : phy.data_tx_time(1500)).to_seconds();
  r.collision_share = collision_time / ms.busy_time.to_seconds();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const double seconds = args.get("duration", 6.0) * util::bench_scale() + 1.0;

  bench::announce("Ablation: RTS/CTS",
                  "saturation throughput and collision-time share with and "
                  "without the RTS/CTS exchange",
                  "n saturated stations, 1500 B frames");

  util::Table table({"stations", "agg_basic_mbps", "agg_rtscts_mbps",
                     "collision_share_basic", "collision_share_rtscts"});
  std::vector<std::vector<double>> rows;
  for (int n : {2, 3, 5, 8, 12}) {
    const SatResult basic = saturate(n, false, seconds, 501);
    const SatResult rts = saturate(n, true, seconds, 502);
    rows.push_back({static_cast<double>(n), basic.aggregate_mbps,
                    rts.aggregate_mbps, basic.collision_share,
                    rts.collision_share});
    table.add_row(rows.back());
  }
  bench::emit(table, args, rows);
  std::cout << "# expect: RTS/CTS costs throughput at small n (overhead) "
               "but wastes far less channel time per collision\n";
  return 0;
}
