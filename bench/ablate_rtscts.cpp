// Ablation: RTS/CTS.  The paper's experiments disable the exchange; this
// bench quantifies what it would change — collision cost drops from a
// full data frame to an RTS, at the price of per-frame control overhead.
// With few stations and 1500-byte frames the overhead dominates (the
// usual justification for leaving it off).
#include <iostream>

#include "bench_common.hpp"
#include "core/scenario.hpp"

using namespace csmabw;

namespace {

struct SatResult {
  double aggregate_mbps = 0.0;
  double collision_share = 0.0;  ///< busy time fraction wasted on collisions
};

SatResult saturate(int stations, bool rts, double seconds,
                   std::uint64_t seed) {
  core::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.phy.rts_threshold_bytes = rts ? 0 : -1;
  for (int i = 0; i < stations; ++i) {
    cfg.contenders.push_back(core::StationSpec::saturated(1500));
  }
  const core::ContentionResult cr =
      core::Scenario(cfg).run_contention(TimeNs::from_seconds(seconds),
                                         TimeNs::sec(1));

  SatResult r;
  r.aggregate_mbps = cr.aggregate.to_mbps();
  const double collision_time =
      static_cast<double>(cr.medium.collisions) *
      (rts ? cfg.phy.rts_tx_time() : cfg.phy.data_tx_time(1500)).to_seconds();
  r.collision_share = collision_time / cr.medium.busy_time.to_seconds();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const double seconds = args.get("duration", 6.0) * util::bench_scale() + 1.0;

  bench::announce("Ablation: RTS/CTS",
                  "saturation throughput and collision-time share with and "
                  "without the RTS/CTS exchange",
                  "n saturated stations, 1500 B frames");

  util::Table table({"stations", "agg_basic_mbps", "agg_rtscts_mbps",
                     "collision_share_basic", "collision_share_rtscts"});
  std::vector<std::vector<double>> rows;
  for (int n : {2, 3, 5, 8, 12}) {
    const SatResult basic = saturate(n, false, seconds, 501);
    const SatResult rts = saturate(n, true, seconds, 502);
    rows.push_back({static_cast<double>(n), basic.aggregate_mbps,
                    rts.aggregate_mbps, basic.collision_share,
                    rts.collision_share});
    table.add_row(rows.back());
  }
  bench::emit(table, args, rows);
  std::cout << "# expect: RTS/CTS costs throughput at small n (overhead) "
               "but wastes far less channel time per collision\n";
  return 0;
}
