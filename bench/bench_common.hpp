#pragma once

// Shared plumbing for the per-figure bench binaries.
//
// Every bench prints: a header describing the experiment and how it maps
// to the paper, the figure's series as an aligned table, and (with
// --csv=PATH) the same series as CSV.  Ensemble sizes are laptop-scale
// by default and multiply with CSMABW_BENCH_SCALE (the paper used 80
// testbed repetitions and 25k-70k simulator repetitions).

#include <unistd.h>

#include <iostream>
#include <string>
#include <vector>

#include "exp/progress.hpp"
#include "exp/runner.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace csmabw::bench {

/// Whether campaign progress lines should be drawn: forced by
/// --progress / suppressed by --progress=0, defaulting to "stderr is a
/// terminal".  Progress goes to stderr, so stdout stays byte-identical
/// either way.
inline bool progress_enabled(const util::Args& args) {
  return args.get("progress", isatty(STDERR_FILENO) == 1);
}

/// Builds the campaign worker pool from --threads (0 = CSMABW_THREADS
/// env, else hardware concurrency).
inline exp::Runner runner_from(const util::Args& args,
                               exp::Progress* progress = nullptr) {
  exp::RunnerOptions opts;
  opts.threads = args.get("threads", 0);
  opts.progress = progress;
  return exp::Runner(opts);
}

inline void announce_to(std::ostream& out, const std::string& figure,
                        const std::string& what, const std::string& setup) {
  out << "# " << figure << " — " << what << "\n";
  out << "# setup: " << setup << "\n";
  out << "# scale: CSMABW_BENCH_SCALE=" << util::bench_scale()
      << " (multiply to approach the paper's ensemble sizes)\n";
}

inline void announce(const std::string& figure, const std::string& what,
                     const std::string& setup) {
  announce_to(std::cout, figure, what, setup);
}

/// Prints the table and mirrors the numeric rows to --csv=PATH if given
/// (first CSV row carries the column names).
inline void emit(const util::Table& table, const util::Args& args,
                 const std::vector<std::vector<double>>& rows) {
  table.print(std::cout);
  const std::string path = args.get("csv", "");
  if (path.empty()) {
    return;
  }
  util::CsvWriter csv(path);
  csv.row(std::vector<std::string>(table.columns().begin(),
                                   table.columns().end()));
  for (const auto& r : rows) {
    csv.row(r);
  }
  std::cout << "# csv written: " << path << "\n";
}

}  // namespace csmabw::bench
