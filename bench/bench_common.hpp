#pragma once

// Shared plumbing for the per-figure bench binaries.
//
// Every bench prints: a header describing the experiment and how it maps
// to the paper, the figure's series as an aligned table, and (with
// --csv=PATH) the same series as CSV.  Ensemble sizes are laptop-scale
// by default and multiply with CSMABW_BENCH_SCALE (the paper used 80
// testbed repetitions and 25k-70k simulator repetitions).

#include <unistd.h>

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "exp/progress.hpp"
#include "exp/runner.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/require.hpp"
#include "util/table.hpp"

namespace csmabw::bench {

/// Whether campaign progress lines should be drawn: forced by
/// --progress / suppressed by --progress=0, defaulting to "stderr is a
/// terminal".  Progress goes to stderr, so stdout stays byte-identical
/// either way.
inline bool progress_enabled(const util::Args& args) {
  return args.get("progress", isatty(STDERR_FILENO) == 1);
}

/// Builds the campaign worker pool from --threads (0 = CSMABW_THREADS
/// env, else hardware concurrency).
inline exp::Runner runner_from(const util::Args& args,
                               exp::Progress* progress = nullptr) {
  exp::RunnerOptions opts;
  opts.threads = args.get("threads", 0);
  opts.progress = progress;
  return exp::Runner(opts);
}

inline void announce_to(std::ostream& out, const std::string& figure,
                        const std::string& what, const std::string& setup) {
  out << "# " << figure << " — " << what << "\n";
  out << "# setup: " << setup << "\n";
  out << "# scale: CSMABW_BENCH_SCALE=" << util::bench_scale()
      << " (multiply to approach the paper's ensemble sizes)\n";
}

inline void announce(const std::string& figure, const std::string& what,
                     const std::string& setup) {
  announce_to(std::cout, figure, what, setup);
}

/// The observability surface of one bench run: `--metrics-out=FILE`
/// enables the metrics registry and writes a csmabw-run-report JSON on
/// finish(); `--prof=FILE` enables the span profiler and writes a
/// Chrome/Perfetto trace.  `--obs` enables the registry without a
/// report file (counters still feed stderr summaries).  All outputs go
/// to their own files, never stdout — simulation output is byte-
/// identical with observability on or off.
class ObsState {
 public:
  /// `force_metrics` enables the registry even without --metrics-out /
  /// --obs — for tools whose stderr summaries read registry counters
  /// (e.g. campaign_sweep's "# serve:" line).
  explicit ObsState(const util::Args& args, std::string tool,
                    bool force_metrics = false)
      : tool_(std::move(tool)),
        metrics_path_(args.get("metrics-out", "")),
        prof_path_(args.get("prof", "")),
        registry_(!metrics_path_.empty() || args.get("obs", false) ||
                  force_metrics),
        profiler_(!prof_path_.empty()),
        start_ns_(obs::now_ns()) {}

  [[nodiscard]] obs::Registry* metrics() {
    return registry_.enabled() ? &registry_ : nullptr;
  }
  [[nodiscard]] obs::Profiler* profiler() {
    return profiler_.enabled() ? &profiler_ : nullptr;
  }
  [[nodiscard]] obs::Registry& registry() { return registry_; }

  /// Writes the report/trace files (when requested) with a one-line
  /// stderr note each.  Call once, after the workers drain.
  void finish(const std::vector<obs::CellObs>& cells, int threads) {
    if (!metrics_path_.empty()) {
      obs::RunReportOptions opts;
      opts.tool = tool_;
      opts.threads = threads;
      opts.wall_ns = obs::now_ns() - start_ns_;
      std::ofstream out(metrics_path_, std::ios::trunc);
      CSMABW_REQUIRE(static_cast<bool>(out),
                     "cannot open --metrics-out file: " + metrics_path_);
      obs::write_run_report(out, registry_, cells, opts);
      CSMABW_REQUIRE(static_cast<bool>(out),
                     "--metrics-out write failed: " + metrics_path_);
      std::cerr << "# metrics report written: " << metrics_path_ << "\n";
    }
    if (!prof_path_.empty()) {
      std::ofstream out(prof_path_, std::ios::trunc);
      CSMABW_REQUIRE(static_cast<bool>(out),
                     "cannot open --prof file: " + prof_path_);
      profiler_.write_chrome_trace(out);
      CSMABW_REQUIRE(static_cast<bool>(out),
                     "--prof write failed: " + prof_path_);
      std::cerr << "# profile written: " << prof_path_ << " (open in "
                << "ui.perfetto.dev; spans=" << profiler_.recorded();
      if (profiler_.dropped() > 0) {
        std::cerr << " dropped=" << profiler_.dropped();
      }
      std::cerr << ")\n";
    }
  }

 private:
  std::string tool_;
  std::string metrics_path_;
  std::string prof_path_;
  obs::Registry registry_;
  obs::Profiler profiler_;
  std::int64_t start_ns_;
};

/// Prints the table and mirrors the numeric rows to --csv=PATH if given
/// (first CSV row carries the column names).
inline void emit(const util::Table& table, const util::Args& args,
                 const std::vector<std::vector<double>>& rows) {
  table.print(std::cout);
  const std::string path = args.get("csv", "");
  if (path.empty()) {
    return;
  }
  util::CsvWriter csv(path);
  csv.row(std::vector<std::string>(table.columns().begin(),
                                   table.columns().end()));
  for (const auto& r : rows) {
    csv.row(r);
  }
  std::cout << "# csv written: " << path << "\n";
}

}  // namespace csmabw::bench
