// Calibration (paper Appendix A): the paper calibrated its testbed and
// NS2 against each other before comparing results; our analogue is
// calibrating the DCF simulator against Bianchi's analytical saturation
// model across station counts and frame sizes.  Disagreement beyond a
// few percent would invalidate every figure downstream.
#include <iostream>

#include "bench_common.hpp"
#include "core/scenario.hpp"
#include "mac/bianchi.hpp"

using namespace csmabw;

namespace {

double saturated_aggregate_mbps(int stations, int size_bytes, double seconds,
                                std::uint64_t seed) {
  core::ScenarioConfig cfg;
  cfg.seed = seed;
  for (int i = 0; i < stations; ++i) {
    cfg.contenders.push_back(core::StationSpec::saturated(size_bytes));
  }
  const core::Scenario sc(cfg);
  return sc
      .run_contention(TimeNs::from_seconds(seconds), TimeNs::sec(1))
      .aggregate.to_mbps();
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const double seconds = args.get("duration", 8.0) * util::bench_scale() + 1.0;

  bench::announce("Calibration (Appendix A)",
                  "DCF simulator vs Bianchi analytical saturation model",
                  "n saturated stations, 802.11b short preamble");

  util::Table table({"stations", "size_bytes", "sim_agg_mbps",
                     "bianchi_agg_mbps", "error_pct"});
  std::vector<std::vector<double>> rows;
  double worst = 0.0;
  for (int size : {500, 1500}) {
    for (int n : {1, 2, 3, 5, 8, 12}) {
      const double sim = saturated_aggregate_mbps(
          n, size, seconds, 601 + static_cast<std::uint64_t>(n));
      const auto bi =
          mac::bianchi_saturation(mac::PhyParams::dot11b_short(), n, size);
      const double err =
          100.0 * (sim - bi.aggregate.to_mbps()) / bi.aggregate.to_mbps();
      worst = std::max(worst, std::abs(err));
      rows.push_back({static_cast<double>(n), static_cast<double>(size), sim,
                      bi.aggregate.to_mbps(), err});
      table.add_row(rows.back());
    }
  }
  bench::emit(table, args, rows);
  std::cout << "# worst-case |error|: " << util::Table::format(worst, 2)
            << "% (the Bianchi model itself is a slot-process "
               "approximation; <10% is the usual agreement)\n";
  return 0;
}
