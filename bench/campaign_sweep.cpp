// Engine-only campaign: one command sweeping contending stations ×
// cross-traffic rate × PHY preset (optionally × train length, probe
// rate, FIFO cross-traffic, measurement method), running every
// (cell, repetition) across a worker pool and streaming results to the
// console, --csv=PATH and --jsonl=PATH.
//
// Without --methods each cell is a probe-train ensemble and the output
// is one summary row per cell.  With --methods the method list becomes
// an extra (innermost) grid axis: every repetition runs one measurement
// tool through core::MethodRegistry and emits one row per repetition
// (see exp::Collector::method_columns).
//
// --format=json replaces the stdout table with the same rows as JSON
// lines (pure JSONL: the announce header and digests are suppressed).
// --out=FILE sends that stdout payload (table or JSONL) to a file
// instead; stdout stays the default and progress/ETA keeps going to
// stderr either way.
//
// The output is byte-identical for any --threads value: cells and
// repetitions are seeded from (campaign seed, cell index, repetition)
// alone and merged in a fixed order.
//
// --trace=DIR additionally records every (cell, repetition) as a binary
// event trace (DIR/cell-CCCCC-rep-RRRRRR.cctrace) for offline replay
// with trace_tool; recording never changes the campaign's results.
// The directory is created but never cleared — record different
// campaigns into different directories (trace_tool replay-stats rejects
// mixed recordings).
//
// Fleet-scale serving (src/serve/):
//   --cache=DIR           consult/fill a content-addressed result cache;
//                         repetitions already cached are served instead
//                         of simulated (byte-identical output either way)
//   --checkpoint=FILE     persist every completed repetition to a
//                         .ccshard file, atomically flushed every
//                         --checkpoint-every=N records (default 64)
//   --resume              reload --checkpoint=FILE (tolerating a torn
//                         tail from a crash) and only run what's missing
//   --shard=I/N           run every N-th work shard in this process and
//                         emit only the --checkpoint shard file (no
//                         rows); run N processes with I = 0..N-1
//   --merge=f1,f2,...     load finished shard files and produce the
//                         normal output without simulating anything
// The serve stats line "# serve: computed=... cache_hits=... resumed=..."
// goes to stderr.  A warm-cache or merge run reports computed=0.
//
// Observability (src/obs/):
//   --metrics-out=FILE    write a csmabw-run-report JSON (schema v1):
//                         merged counters/gauges/histograms split into
//                         deterministic vs wall-time sections, per-cell
//                         wall time + events/s, slowest cells, thread
//                         utilization
//   --prof=FILE           write a Chrome/Perfetto trace of campaign
//                         spans (per-rep jobs, scenario builds, cache
//                         lookups/stores, checkpoint flushes, merge);
//                         open in ui.perfetto.dev
//   --obs                 enable the metrics registry without a report
// All observability output goes to its own files / stderr; the campaign
// rows (stdout, --csv, --jsonl, traces) are byte-identical with
// observability on or off.
//
// With --scenarios the '|'-separated list of registered scenario names
// and/or inline scenario grammars (core::ScenarioSpec) becomes the
// OUTERMOST axis, replacing --contenders/--cross-mbps/--phy/--fifo:
// heterogeneous-rate and non-Poisson cells sweep like any other
// coordinate.  --topologies adds a conflict-graph axis under it: each
// scenario entry is expanded once per topology spec
// (clique|grid:3x3|pairs-hidden:2, '|'-separated like --scenarios),
// labelling cells with the full grammar including `topology=`.
// --list-scenarios, --list-methods and --list-topologies print the
// registries (names + option keys) and exit.
//
// Examples:
//   campaign_sweep --contenders=1,2,3 --cross-mbps=1,2,4
//     --phy=dot11b_short,dot11b_long --reps=200 --threads=8
//     --csv=sweep.csv --jsonl=sweep.jsonl
//   campaign_sweep --contenders=1 --cross-mbps=2,4 --reps=3
//     --methods='bisection;slops:train_length=30;packet_pair:pairs=50'
//     --format=json
//   campaign_sweep --reps=50 --train=60
//     --scenarios='paper_fig2|rate_anomaly|contenders=2x onoff:rate=3M,duty=0.3'
//   campaign_sweep --reps=50 --train=60
//     --scenarios='contenders=8x poisson:rate=400k'
//     --topologies='clique|grid:3x3'
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>

#include "bench_common.hpp"
#include "core/method.hpp"
#include "core/scenario.hpp"
#include "exp/collector.hpp"
#include "exp/engine.hpp"
#include "topo/registry.hpp"
#include "traffic/model.hpp"
#include "util/require.hpp"

using namespace csmabw;

namespace {

int list_methods() {
  const core::MethodRegistry& registry = core::MethodRegistry::global();
  std::cout << "# measurement methods (spec: name[:key=value,...])\n";
  for (const std::string& name : registry.names()) {
    std::cout << name;
    const std::string& help = registry.help(name);
    if (!help.empty()) {
      std::cout << "  [" << help << "]";
    }
    std::cout << "\n";
  }
  return 0;
}

int list_scenarios() {
  const core::ScenarioRegistry& registry = core::ScenarioRegistry::global();
  std::cout << "# registered scenarios (--scenarios also accepts inline "
               "grammar: [name=<label>;][phy=<preset>;]"
               "[topology=<topo-spec>;]contenders=<group> + ..."
               "[;fifo=<spec>]; phy defaults to dot11b_short, topology "
               "to clique — see --list-topologies)\n";
  for (const std::string& name : registry.names()) {
    std::cout << name << "  =  " << registry.get(name).describe() << "\n";
  }
  const traffic::TrafficModelRegistry& models =
      traffic::TrafficModelRegistry::global();
  std::cout << "# traffic models (contender/fifo specs)\n";
  for (const std::string& name : models.names()) {
    std::cout << name;
    const std::string& help = models.help(name);
    if (!help.empty()) {
      std::cout << "  [" << help << "]";
    }
    std::cout << "\n";
  }
  return 0;
}

int list_topologies() {
  const topo::TopologyRegistry& registry = topo::TopologyRegistry::global();
  std::cout << "# topology generators (spec: name[:arg]; use as a "
               "scenario's `topology=` field or as --topologies entries)\n";
  for (const std::string& name : registry.names()) {
    std::cout << name;
    const std::string& help = registry.help(name);
    if (!help.empty()) {
      std::cout << "  [" << help << "]";
    }
    std::cout << "\n";
  }
  return 0;
}

/// Owning counterpart of exp::CampaignServeOptions, built from the
/// --cache/--checkpoint/--resume/--shard/--merge flags.
struct ServeState {
  std::unique_ptr<serve::ResultCache> cache;
  std::unique_ptr<serve::CheckpointWriter> checkpoint;
  serve::ResultSet resume_set;
  serve::CampaignServeOptions io;
  bool active = false;      // any serve flag present
  bool shard_only = false;  // emit the shard file instead of rows
};

bool serve_flags_present(const util::Args& args) {
  return args.has("cache") || args.has("checkpoint") || args.has("resume") ||
         args.has("shard") || args.has("merge");
}

// Out-param rather than a return value: `st.io` points back into `st`
// (resume set, cache, checkpoint), so the object must never move.
// Serve accounting goes through `obs`'s registry (always enabled when
// any serve flag is present, so the "# serve:" stderr line keeps its
// exact values with or without --metrics-out).
void init_serve_state(ServeState& st, const util::Args& args,
                      serve::CampaignKind kind, std::uint64_t fingerprint,
                      std::uint64_t seed, exp::Progress* progress,
                      bench::ObsState& obs) {
  st.io.metrics = obs.metrics();
  st.io.profiler = obs.profiler();
  st.active = serve_flags_present(args);
  if (!st.active) {
    return;
  }

  const std::string checkpoint_path = args.get("checkpoint", "");
  CSMABW_REQUIRE(!args.has("checkpoint-every") || !checkpoint_path.empty(),
                 "--checkpoint-every tunes --checkpoint=FILE; give the flag");
  const int flush_every = args.get("checkpoint-every", 64);
  CSMABW_REQUIRE(flush_every > 0, "--checkpoint-every must be > 0");

  if (args.has("merge")) {
    CSMABW_REQUIRE(!args.has("shard") && !args.has("resume") &&
                       checkpoint_path.empty(),
                   "--merge loads finished shard files; it cannot be "
                   "combined with --shard, --resume or --checkpoint");
    const std::vector<std::string> paths = args.get_strings("merge", {});
    CSMABW_REQUIRE(!paths.empty(), "--merge needs at least one shard file");
    for (const std::string& path : paths) {
      serve::load_shard_file(path, kind, fingerprint, &st.resume_set);
    }
    // Merge never simulates: a repetition missing from every shard file
    // is an incomplete fleet run and must fail loudly, not silently
    // recompute into a partially-fresh result.
    st.io.forbid_compute = true;
  } else {
    const std::string shard_text = args.get("shard", "");
    if (!shard_text.empty()) {
      st.io.shard = serve::parse_shard(shard_text);
      CSMABW_REQUIRE(!checkpoint_path.empty(),
                     "--shard writes this process's slice to a shard "
                     "file; give --checkpoint=FILE");
      st.shard_only = true;
    }
    if (args.get("resume", false)) {
      CSMABW_REQUIRE(!checkpoint_path.empty(),
                     "--resume reloads --checkpoint=FILE; give the flag");
      // A checkpoint that never got its first flush is a fresh run.
      if (std::filesystem::exists(checkpoint_path)) {
        serve::load_shard_file(checkpoint_path, kind, fingerprint,
                               &st.resume_set);
      }
    }
    if (!checkpoint_path.empty()) {
      st.checkpoint = std::make_unique<serve::CheckpointWriter>(
          checkpoint_path, kind, fingerprint,
          "campaign_sweep seed=" + std::to_string(seed), flush_every);
      if (st.resume_set.size() > 0) {
        st.checkpoint->preload(st.resume_set);
      }
      st.io.checkpoint = st.checkpoint.get();
    }
  }

  const std::string cache_dir = args.get("cache", "");
  if (!cache_dir.empty()) {
    st.cache = std::make_unique<serve::ResultCache>(cache_dir, obs.metrics(),
                                                    obs.profiler());
    st.io.cache = st.cache.get();
  }
  if (st.resume_set.size() > 0) {
    st.io.resume = &st.resume_set;
  }
  st.io.progress = progress;
}

// stderr, like progress: stdout stays byte-identical whether results
// were computed, cached or resumed.  Values read the merged registry
// counters the engine and cache maintain.
void print_serve_stats(const ServeState& st, const obs::Registry& registry) {
  if (!st.active) {
    return;
  }
  std::cerr << "# serve: computed=" << registry.value("exp.reps.computed")
            << " cache_hits=" << registry.value("exp.reps.cache_hit")
            << " resumed=" << registry.value("exp.reps.resumed");
  if (st.cache != nullptr) {
    std::cerr << " cache_stores=" << st.cache->stores();
  }
  if (st.checkpoint != nullptr) {
    std::cerr << " checkpoint_records=" << st.checkpoint->records();
  }
  std::cerr << "\n";
}

int run_method_sweep(const exp::Campaign& campaign, const util::Args& args,
                     bool json, std::ostream& out, std::uint64_t seed,
                     bench::ObsState& obs) {
  const bool serving = serve_flags_present(args);
  // Observability rides the serving engine path (the classic overload
  // carries no io options); output is byte-identical either way.
  const bool engine_io = serving || obs.metrics() != nullptr ||
                         obs.profiler() != nullptr;
  exp::Progress progress(exp::count_method_runs(campaign), "methods",
                         bench::progress_enabled(args));
  // When serving, the engine ticks per repetition (cached vs computed);
  // the runner must not tick the same jobs again.
  const exp::Runner runner =
      bench::runner_from(args, engine_io ? nullptr : &progress);
  // stderr, not stdout: stdout must stay byte-identical across --threads.
  std::cerr << "# threads: " << runner.threads() << "\n";
  ServeState st;
  init_serve_state(st, args, serve::CampaignKind::kMethod,
                   serving ? exp::method_campaign_fingerprint(campaign) : 0,
                   seed, &progress, obs);
  const std::vector<exp::MethodRun> runs =
      engine_io ? exp::run_method_campaign(campaign,
                                           exp::MethodCampaignConfig{},
                                           runner, st.io)
                : exp::run_method_campaign(
                      campaign, exp::MethodCampaignConfig{}, runner);
  progress.finish();
  print_serve_stats(st, obs.registry());
  std::vector<obs::CellObs> cell_obs(campaign.cells().size());
  for (const exp::MethodRun& run : runs) {
    obs::CellObs& c = cell_obs[static_cast<std::size_t>(run.cell_index)];
    c.cell = run.cell_index;
    c.wall_ns += run.wall_ns;
    if (run.served) {
      ++c.cached;
    } else if (!st.shard_only || run.wall_ns > 0) {
      ++c.computed;
    }
  }
  obs.finish(cell_obs, runner.threads());
  if (st.shard_only) {
    std::cerr << "# shard " << st.io.shard.index << "/"
              << st.io.shard.count << " written: "
              << args.get("checkpoint", "") << " ("
              << st.checkpoint->records() << " records)\n";
    return 0;
  }

  exp::CollectorOptions copts;
  copts.csv_path = args.get("csv", "");
  copts.jsonl_path = args.get("jsonl", "");
  if (json) {
    copts.jsonl_stream = &out;
  }
  exp::Collector collector(exp::Collector::method_columns(), copts);
  for (const exp::MethodRun& run : runs) {
    collector.add(exp::Collector::method_row(
        campaign.cells()[static_cast<std::size_t>(run.cell_index)],
        run.repetition, run.report));
  }

  if (!json) {
    collector.table().print(out);
    if (!copts.csv_path.empty()) {
      out << "# csv written: " << copts.csv_path << "\n";
    }
    if (!copts.jsonl_path.empty()) {
      out << "# jsonl written: " << copts.jsonl_path << "\n";
    }
    const int est_col = 10;  // estimate_mbps, after the 8 coords + method/rep
    out << "# estimate across runs: min "
        << util::Table::format(collector.column_stat(est_col).min(), 3)
        << " / mean "
        << util::Table::format(collector.column_stat(est_col).mean(), 3)
        << " / max "
        << util::Table::format(collector.column_stat(est_col).max(), 3)
        << " Mb/s\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);

  if (args.get("list-methods", false)) {
    return list_methods();
  }
  if (args.get("list-scenarios", false)) {
    return list_scenarios();
  }
  if (args.get("list-topologies", false)) {
    return list_topologies();
  }

  const std::string format = args.get("format", "table");
  CSMABW_REQUIRE(format == "table" || format == "json",
                 "--format must be table or json");
  const bool json = format == "json";

  const bool shard_run = args.has("shard");
  if (shard_run) {
    CSMABW_REQUIRE(!json && !args.has("csv") && !args.has("jsonl") &&
                       !args.has("out"),
                   "--shard runs emit a shard file, not rows; drop "
                   "--csv/--jsonl/--out/--format=json and --merge the "
                   "shard files instead");
  }

  // --out=FILE redirects the stdout payload (table or JSONL) to a file;
  // --csv/--jsonl sinks and the stderr progress stream are unaffected.
  std::ofstream out_file;
  std::ostream* out = &std::cout;
  const std::string out_path = args.get("out", "");
  if (!out_path.empty()) {
    out_file.open(out_path);
    CSMABW_REQUIRE(out_file.is_open(),
                   "cannot open --out file `" + out_path + "`");
    out = &out_file;
  }

  exp::SweepSpec spec;
  spec.campaign_seed = static_cast<std::uint64_t>(args.get("seed", 1));
  const std::string scenarios = args.get("scenarios", "");
  if (!scenarios.empty()) {
    // Scenario axis: each entry fixes phy/contenders/cross/fifo, so the
    // per-knob flags would be silently ignored — reject them loudly.
    for (const char* flag :
         {"contenders", "cross-mbps", "phy", "fifo", "fifo-mbps"}) {
      std::string message = "--scenarios replaces --";
      message += flag;
      message += "; drop the flag or encode it in the scenario";
      CSMABW_REQUIRE(!args.has(flag), message);
    }
    spec.scenarios = exp::split_scenario_list(scenarios);
    const std::string topologies = args.get("topologies", "");
    if (!topologies.empty()) {
      // Same '|' separator as --scenarios (topology args use ':').
      spec.topologies = exp::split_scenario_list(topologies);
    }
  } else {
    CSMABW_REQUIRE(!args.has("topologies"),
                   "--topologies multiplies the --scenarios axis; give "
                   "--scenarios at least one entry (station counts come "
                   "from the scenario)");
    spec.contender_counts = args.get_ints("contenders", {1, 2, 3});
    spec.cross_mbps = args.get_doubles("cross-mbps", {1.0, 2.0, 4.0});
    spec.phy_presets =
        args.get_strings("phy", {"dot11b_short", "dot11b_long"});
    spec.fifo_cross = {false};
    if (args.get("fifo", false)) {
      spec.fifo_cross = {false, true};
      spec.fifo_cross_mbps = args.get("fifo-mbps", 1.0);
    }
  }
  spec.train_lengths = args.get_ints("train", {400});
  spec.probe_mbps = args.get_doubles("probe-mbps", {5.0});
  const std::string methods = args.get("methods", "");
  if (!methods.empty()) {
    spec.methods = core::split_method_list(methods);
  }
  spec.repetitions = args.get("reps", util::scaled_reps(100));
  spec.trace_dir = args.get("trace", "");
  CSMABW_REQUIRE(spec.trace_dir.empty() || spec.methods.empty(),
                 "--trace records probe-train campaigns; method runs "
                 "drive their own transports and are not recorded — drop "
                 "--trace or --methods");
  CSMABW_REQUIRE(spec.trace_dir.empty() || !serve_flags_present(args),
                 "--trace records a repetition only when it simulates; "
                 "cached/resumed repetitions would leave holes in the "
                 "trace directory — drop --trace or the serve flags");
  const exp::Campaign campaign(spec);

  if (!json && !shard_run) {
    bench::announce_to(
        *out, "Campaign sweep",
        spec.methods.empty()
            ? "transient + throughput metrics over the full scenario grid"
            : "measurement methods over the full scenario grid",
        std::to_string(campaign.size()) + " cells x " +
            std::to_string(spec.repetitions) + " repetitions = " +
            std::to_string(campaign.total_repetitions()) +
            (spec.methods.empty() ? " probing trains" : " tool runs"));
  }

  bench::ObsState obs(args, "campaign_sweep", serve_flags_present(args));

  if (!spec.methods.empty()) {
    return run_method_sweep(campaign, args, json, *out, spec.campaign_seed,
                            obs);
  }

  exp::TrainCampaignConfig tcfg;
  tcfg.ks_prefix = 1;  // KS of the first packet vs the steady pool
  const bool serving = serve_flags_present(args);
  // Observability rides the serving engine path (the classic overload
  // carries no io options); output is byte-identical either way.
  const bool engine_io = serving || obs.metrics() != nullptr ||
                         obs.profiler() != nullptr;
  // Serving runs tick per repetition from inside the engine (so cached
  // repetitions stay out of the ETA); classic runs keep the coarser
  // per-work-shard ticks through the runner.
  exp::Progress progress(engine_io ? campaign.total_repetitions()
                                   : exp::count_train_shards(campaign, tcfg),
                         "campaign", bench::progress_enabled(args));
  const exp::Runner runner =
      bench::runner_from(args, engine_io ? nullptr : &progress);
  // stderr, not stdout: stdout must stay byte-identical across --threads.
  std::cerr << "# threads: " << runner.threads() << "\n";
  ServeState st;
  init_serve_state(
      st, args, serve::CampaignKind::kTrain,
      serving ? exp::train_campaign_fingerprint(campaign, tcfg) : 0,
      spec.campaign_seed, &progress, obs);
  const auto results =
      engine_io ? exp::run_train_campaign(campaign, tcfg, runner, st.io)
                : exp::run_train_campaign(campaign, tcfg, runner);
  progress.finish();
  print_serve_stats(st, obs.registry());
  {
    std::vector<obs::CellObs> cell_obs;
    cell_obs.reserve(results.size());
    for (const exp::TrainCellStats& r : results) {
      cell_obs.push_back(r.obs);
    }
    obs.finish(cell_obs, runner.threads());
  }
  if (st.shard_only) {
    std::cerr << "# shard " << st.io.shard.index << "/"
              << st.io.shard.count << " written: "
              << args.get("checkpoint", "") << " ("
              << st.checkpoint->records() << " records)\n";
    return 0;
  }

  std::vector<std::string> columns = exp::Collector::cell_columns();
  for (const char* metric :
       {"reps_used", "dropped", "mean_gap_ms", "measured_rate_mbps",
        "first_delay_ms", "steady_delay_ms", "ks_first", "ks_thresh_95",
        "transient_pkts_tol0.1"}) {
    columns.emplace_back(metric);
  }
  exp::CollectorOptions copts;
  copts.csv_path = args.get("csv", "");
  copts.jsonl_path = args.get("jsonl", "");
  if (json) {
    copts.jsonl_stream = out;
  }
  exp::Collector collector(columns, copts);

  for (const exp::Cell& cell : campaign.cells()) {
    const exp::TrainCellStats& r =
        results[static_cast<std::size_t>(cell.index)];
    std::vector<exp::Value> row = exp::Collector::cell_coords(cell);
    row.emplace_back(r.used);
    row.emplace_back(r.dropped);
    if (r.used > 0) {
      row.emplace_back(r.output_gap_s.mean() * 1e3);
      row.emplace_back(r.measured_rate_mbps(cell.train.size_bytes));
      row.emplace_back(r.analyzer.mean_at(0) * 1e3);
      row.emplace_back(r.analyzer.steady_mean() * 1e3);
      row.emplace_back(r.analyzer.ks_at(0));
      row.emplace_back(r.analyzer.ks_threshold_at(0));
      row.emplace_back(r.analyzer.transient_length(0.1));
    } else {
      // Every repetition dropped a packet: the cell has no complete
      // trains.  Report it (NaN metrics -> null in JSONL) instead of
      // aborting the whole campaign's output.
      const double nan = std::numeric_limits<double>::quiet_NaN();
      for (int k = 0; k < 7; ++k) {
        row.emplace_back(nan);
      }
    }
    collector.add(row);
  }

  if (json) {
    return 0;
  }
  collector.table().print(*out);
  if (!copts.csv_path.empty()) {
    *out << "# csv written: " << copts.csv_path << "\n";
  }
  if (!copts.jsonl_path.empty()) {
    *out << "# jsonl written: " << copts.jsonl_path << "\n";
  }
  if (!spec.trace_dir.empty()) {
    *out << "# traces written: " << spec.trace_dir << "/cell-*-rep-*"
         << ".cctrace (replay with trace_tool)\n";
  }

  // Campaign-level digest from the collector's column summaries.
  const int rate_col = static_cast<int>(columns.size()) - 6;
  const int transient_col = static_cast<int>(columns.size()) - 1;
  *out << "# measured probe rate across cells: min "
       << util::Table::format(collector.column_stat(rate_col).min(), 3)
       << " / mean "
       << util::Table::format(collector.column_stat(rate_col).mean(), 3)
       << " / max "
       << util::Table::format(collector.column_stat(rate_col).max(), 3)
       << " Mb/s\n";
  *out << "# transient length (tol 0.1) across cells: min "
       << collector.column_stat(transient_col).min() << " / max "
       << collector.column_stat(transient_col).max() << " packets\n";
  return 0;
}
