// Extension: transient CSMA/CA access delays beyond the single
// collision domain.  The paper's fig 10 methodology (KS distance of the
// first packets vs the steady pool, transient length at tolerance 0.1)
// re-run on conflict-graph topologies at a fixed offered load:
//
//   - clique of 9 (8 contenders + probe): the paper's geometry,
//   - grid:3x3 at the same load: straight-line distance-2 pairs are
//     hidden terminals, opposite corners reuse the channel,
//   - clique of 2 vs pairs-hidden:2: the textbook hidden pair.
//
// Hidden contention converts temporal overlap into retransmission, so
// the hidden-terminal cells inflate both the mean access delay at every
// train position and the measured transient duration relative to their
// clique twins — transients an active bandwidth probe must outwait
// become *longer* once the cell stops being one collision domain.
//
// One engine campaign: every (cell, repetition) runs across --threads
// workers, seeded from (campaign seed, cell index, repetition) alone,
// so stdout is byte-identical for any thread count.
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/scenario.hpp"
#include "exp/engine.hpp"

using namespace csmabw;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int reps = args.get("reps", util::scaled_reps(120));
  const int train = args.get("train", 120);
  const double probe_mbps = args.get("probe-mbps", 5.0);
  // Per-contender Poisson rates keeping both groups comfortably below
  // saturation on a clique, so delay inflation is attributable to the
  // topology and not to queue blow-up.
  const std::string grid_rate = args.get("grid-rate", std::string("200k"));
  const std::string pair_rate = args.get("pair-rate", std::string("1M"));

  bench::announce(
      "Extension: transients on conflict-graph topologies",
      "per-position mean access delay and KS transient duration, "
      "clique vs grid:3x3 vs pairs-hidden:2 at fixed load",
      std::to_string(reps) + " repetitions x " + std::to_string(train) +
          "-packet trains; probe " + util::Table::format(probe_mbps) +
          " Mb/s; contender Poisson " + grid_rate + " (9-station group) / " +
          pair_rate + " (2-station group)");

  exp::SweepSpec spec;
  spec.campaign_seed = static_cast<std::uint64_t>(args.get("seed", 601));
  spec.scenarios = {
      // The 9-station group: one collision domain vs the 3x3 lattice.
      "contenders=8x poisson:rate=" + grid_rate,
      "topology=grid:3x3;contenders=8x poisson:rate=" + grid_rate,
      // The 2-station group: clique pair vs the textbook hidden pair.
      "contenders=1x poisson:rate=" + pair_rate,
      "topology=pairs-hidden:2;contenders=1x poisson:rate=" + pair_rate,
  };
  spec.train_lengths = {train};
  spec.probe_mbps = {probe_mbps};
  spec.repetitions = reps;
  const exp::Campaign campaign(spec);

  exp::TrainCampaignConfig tcfg;
  tcfg.ks_prefix = 1;  // KS of the first packet vs the steady pool
  exp::Progress progress(exp::count_train_shards(campaign, tcfg),
                         "grid-transient", bench::progress_enabled(args));
  const exp::Runner runner = bench::runner_from(args, &progress);
  std::cerr << "# threads: " << runner.threads() << "\n";
  const auto results = exp::run_train_campaign(campaign, tcfg, runner);
  progress.finish();

  for (const exp::Cell& cell : campaign.cells()) {
    std::cout << "# cell " << cell.index << ": " << cell.scenario_name
              << "\n";
  }

  util::Table table({"cell", "stations", "reps_used", "dropped",
                     "first_delay_ms", "steady_delay_ms", "ks_first",
                     "transient_tol0.1", "rate_mbps"});
  std::vector<std::vector<double>> rows;
  for (const exp::Cell& cell : campaign.cells()) {
    const exp::TrainCellStats& r =
        results[static_cast<std::size_t>(cell.index)];
    rows.push_back({static_cast<double>(cell.index),
                    static_cast<double>(cell.contenders + 1),
                    static_cast<double>(r.used),
                    static_cast<double>(r.dropped),
                    r.analyzer.mean_at(0) * 1e3,
                    r.analyzer.steady_mean() * 1e3, r.analyzer.ks_at(0),
                    static_cast<double>(r.analyzer.transient_length(0.1)),
                    r.measured_rate_mbps(cell.train.size_bytes)});
    table.add_row(rows.back());
  }
  bench::emit(table, args, rows);

  // The satellite view: mean access delay by train position, one column
  // per cell — the transient's shape, not just its length.
  util::Table positions(
      {"position", "clique9_ms", "grid3x3_ms", "clique2_ms", "hidden2_ms"});
  for (int k : {0, 1, 2, 3, 5, 8, 12, 20, 40, train - 1}) {
    if (k >= train) {
      continue;
    }
    std::vector<double> row{static_cast<double>(k)};
    for (const auto& r : results) {
      row.push_back(r.analyzer.mean_at(k) * 1e3);
    }
    positions.add_row(row);
  }
  positions.print(std::cout);

  const double grid_vs_clique = results[1].analyzer.steady_mean() /
                                results[0].analyzer.steady_mean();
  const double hidden_vs_clique = results[3].analyzer.steady_mean() /
                                  results[2].analyzer.steady_mean();
  std::cout << "# steady access-delay inflation: grid:3x3 / clique9 = "
            << util::Table::format(grid_vs_clique, 2)
            << "x, pairs-hidden:2 / clique2 = "
            << util::Table::format(hidden_vs_clique, 2) << "x\n";
  std::cout << "# expect: both ratios > 1 and longer/taller transients in "
               "the hidden-terminal cells — carrier sense no longer "
               "serializes the cell, overlap becomes retransmission\n";
  return 0;
}
