// Extension: transient access delays on large regular lattices — the
// paper's fig 10 methodology (per-position mean access delay, KS
// distance of the first packets vs the steady pool) pushed from the
// 9-station grid of ext_grid_transient to 1k- and 10k-station meshes.
//
// On large grids the delay dynamics are governed by torpid mixing
// ("Delay performance in random-access grid networks"): spatial reuse
// lets far-apart regions transmit concurrently, but hidden-terminal
// chains couple neighborhoods, and the relaxation toward the steady
// delay distribution slows down as the lattice grows.  The sweep holds
// the *per-station* offered load fixed and scales the lattice side, so
// any delay blow-up is attributable to the geometry alone.
//
// One engine campaign through the standard campaign/trace/obs stack:
// every (cell, repetition) is seeded from (campaign seed, cell index,
// repetition) alone, so stdout is byte-identical for any --threads.
// --metrics-out additionally captures the sparse medium's hot-path
// counters (topo.medium.updates / neighborhood_sweeps / fire_rearms).
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/scenario.hpp"
#include "exp/engine.hpp"
#include "serve/campaign_io.hpp"

using namespace csmabw;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int reps = args.get("reps", util::scaled_reps(2));
  const int train = args.get("train", 40);
  const double probe_mbps = args.get("probe-mbps", 1.0);
  // Fixed per-station Poisson load, far below a neighborhood's share of
  // the channel — contention comes from the geometry, not saturation.
  const std::string rate = args.get("rate", std::string("50k"));
  // Lattice sides to sweep; the largest defaults to the 10k-station
  // cell of the issue (--side=32 makes a quick CI determinism check).
  const int side = args.get("side", 100);

  std::vector<int> sides{3, 32};
  if (side > 32) {
    sides.push_back(side);
  } else if (side != 3 && side != 32) {
    sides = {3, side};
  }

  bench::announce(
      "Extension: access-delay transients on 1k-10k-station lattices",
      "per-position mean access delay, KS transient duration and probe "
      "rate vs lattice side at fixed per-station load",
      std::to_string(reps) + " repetitions x " + std::to_string(train) +
          "-packet trains; probe " + util::Table::format(probe_mbps) +
          " Mb/s at the lattice corner; contender Poisson " + rate +
          " per station");

  exp::SweepSpec spec;
  spec.campaign_seed = static_cast<std::uint64_t>(args.get("seed", 1009));
  for (int s : sides) {
    const int stations = s * s;
    spec.scenarios.push_back("topology=grid:" + std::to_string(s) + "x" +
                             std::to_string(s) + ";contenders=" +
                             std::to_string(stations - 1) +
                             "x poisson:rate=" + rate);
  }
  spec.train_lengths = {train};
  spec.probe_mbps = {probe_mbps};
  spec.repetitions = reps;
  const exp::Campaign campaign(spec);

  bench::ObsState obs(args, "ext_lattice_delay");

  exp::TrainCampaignConfig tcfg;
  tcfg.ks_prefix = 1;  // KS of the first packet vs the steady pool
  exp::Progress progress(exp::count_train_shards(campaign, tcfg),
                         "lattice-delay", bench::progress_enabled(args));
  const exp::Runner runner = bench::runner_from(args, &progress);
  std::cerr << "# threads: " << runner.threads() << "\n";
  serve::CampaignServeOptions io;
  io.metrics = obs.metrics();
  io.profiler = obs.profiler();
  const auto results = exp::run_train_campaign(campaign, tcfg, runner, io);
  progress.finish();

  for (const exp::Cell& cell : campaign.cells()) {
    std::cout << "# cell " << cell.index << ": " << cell.scenario_name
              << "\n";
  }

  util::Table table({"side", "stations", "reps_used", "dropped",
                     "first_delay_ms", "steady_delay_ms", "ks_first",
                     "transient_tol0.1", "rate_mbps"});
  std::vector<std::vector<double>> rows;
  for (const exp::Cell& cell : campaign.cells()) {
    const exp::TrainCellStats& r =
        results[static_cast<std::size_t>(cell.index)];
    const int s = sides[static_cast<std::size_t>(cell.index)];
    rows.push_back({static_cast<double>(s),
                    static_cast<double>(cell.contenders + 1),
                    static_cast<double>(r.used),
                    static_cast<double>(r.dropped),
                    r.analyzer.mean_at(0) * 1e3,
                    r.analyzer.steady_mean() * 1e3, r.analyzer.ks_at(0),
                    static_cast<double>(r.analyzer.transient_length(0.1)),
                    r.measured_rate_mbps(cell.train.size_bytes)});
    table.add_row(rows.back());
  }
  bench::emit(table, args, rows);

  // The transient's shape: mean access delay by train position, one
  // column per lattice side.
  std::vector<std::string> cols{"position"};
  for (int s : sides) {
    cols.push_back("grid" + std::to_string(s) + "x" + std::to_string(s) +
                   "_ms");
  }
  util::Table positions(cols);
  for (int k : {0, 1, 2, 3, 5, 8, 12, 20, train - 1}) {
    if (k >= train) {
      continue;
    }
    std::vector<double> row{static_cast<double>(k)};
    for (const auto& r : results) {
      row.push_back(r.analyzer.mean_at(k) * 1e3);
    }
    positions.add_row(row);
  }
  positions.print(std::cout);

  {
    std::vector<obs::CellObs> cell_obs;
    cell_obs.reserve(results.size());
    for (const exp::TrainCellStats& r : results) {
      cell_obs.push_back(r.obs);
    }
    obs.finish(cell_obs, runner.threads());
  }

  const double blowup = results.back().analyzer.steady_mean() /
                        results.front().analyzer.steady_mean();
  std::cout << "# steady access-delay inflation: grid" << sides.back() << "x"
            << sides.back() << " / grid" << sides.front() << "x"
            << sides.front() << " = " << util::Table::format(blowup, 2)
            << "x\n";
  std::cout << "# expect: the corner probe's transient stretches with the "
               "lattice side — hidden-terminal chains couple neighborhoods "
               "and the relaxation to the steady delay pool slows (torpid "
               "mixing)\n";
  return 0;
}
