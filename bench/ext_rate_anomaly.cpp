// Extension: the 802.11 rate anomaly (Heusse et al. 2003) reproduced on
// our DCF, and its effect on bandwidth probing.  A slow (2 Mb/s) station
// contending with fast (11 Mb/s) ones drags everyone to roughly equal
// per-station throughput; a probing flow measuring the cell sees its
// achievable throughput collapse accordingly.
#include <iostream>

#include "bench_common.hpp"
#include "core/scenario.hpp"
#include "mac/wlan.hpp"
#include "traffic/flow_meter.hpp"
#include "traffic/source.hpp"

using namespace csmabw;

namespace {

struct CellResult {
  double fast_mbps = 0.0;
  double slow_mbps = 0.0;
};

CellResult run_cell(int fast_stations, bool with_slow, double slow_rate_bps,
                    double seconds, std::uint64_t seed) {
  mac::WlanNetwork net(mac::PhyParams::dot11b_short(), seed);
  std::vector<std::unique_ptr<traffic::CbrSource>> sources;
  std::vector<std::unique_ptr<traffic::FlowMeter>> meters;
  std::vector<std::unique_ptr<traffic::FlowDispatcher>> dispatch;
  const TimeNs end = TimeNs::from_seconds(seconds);
  const int total = fast_stations + (with_slow ? 1 : 0);
  for (int i = 0; i < total; ++i) {
    auto& st = net.add_station();
    if (with_slow && i == total - 1) {
      st.set_data_rate_bps(slow_rate_bps);
    }
    sources.push_back(std::make_unique<traffic::CbrSource>(
        net.simulator(), st, i, 1500, BitRate::mbps(20).gap_for(1500)));
    sources.back()->start(TimeNs::zero());
    meters.push_back(
        std::make_unique<traffic::FlowMeter>(TimeNs::sec(1), end));
    dispatch.push_back(std::make_unique<traffic::FlowDispatcher>(st));
    traffic::FlowMeter* m = meters.back().get();
    dispatch.back()->on_any([m](const mac::Packet& p) { m->on_packet(p); });
  }
  net.simulator().run_until(end);

  CellResult r;
  for (int i = 0; i < fast_stations; ++i) {
    r.fast_mbps += meters[static_cast<std::size_t>(i)]->rate().to_mbps();
  }
  r.fast_mbps /= fast_stations;
  if (with_slow) {
    r.slow_mbps = meters.back()->rate().to_mbps();
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const double seconds = args.get("duration", 8.0) * util::bench_scale() + 1.0;

  bench::announce("Extension: 802.11 rate anomaly",
                  "per-station saturation throughput with one 2 Mb/s "
                  "laggard in an 11 Mb/s cell",
                  "all stations saturated, 1500 B frames");

  util::Table table({"fast_stations", "fast_alone_mbps",
                     "fast_with_laggard_mbps", "laggard_mbps"});
  std::vector<std::vector<double>> rows;
  for (int n : {1, 2, 3, 5}) {
    const CellResult alone = run_cell(n, false, 0.0, seconds, 401);
    const CellResult mixed = run_cell(n, true, 2e6, seconds, 402);
    rows.push_back({static_cast<double>(n), alone.fast_mbps,
                    mixed.fast_mbps, mixed.slow_mbps});
    table.add_row(rows.back());
  }
  bench::emit(table, args, rows);
  std::cout << "# expect: fast_with_laggard ~= laggard (equal shares), far "
               "below fast_alone — the anomaly\n";
  return 0;
}
