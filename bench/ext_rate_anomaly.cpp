// Extension: the 802.11 rate anomaly (Heusse et al. 2003) reproduced on
// our DCF, and its effect on bandwidth probing.  A slow (2 Mb/s) station
// contending with fast (11 Mb/s) ones drags everyone to roughly equal
// per-station throughput; a probing flow measuring the cell sees its
// achievable throughput collapse accordingly.
//
// Each (fast-station count) x (with/without laggard) cell is one
// heterogeneous-rate scenario spec ("Nx saturated + 1x saturated@2M")
// run through the campaign engine: cells execute across --threads
// workers, each seeded from (campaign seed, cell index) alone, so the
// table is byte-identical for any thread count.
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/scenario.hpp"
#include "exp/engine.hpp"

using namespace csmabw;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const double seconds = args.get("duration", 8.0) * util::bench_scale() + 1.0;
  const std::vector<int> fast_counts = args.get_ints("fast", {1, 2, 3, 5});

  bench::announce("Extension: 802.11 rate anomaly",
                  "per-station saturation throughput with one 2 Mb/s "
                  "laggard in an 11 Mb/s cell",
                  "all stations saturated, 1500 B frames, one scenario "
                  "spec per cell");

  // Two cells per fast-station count: the homogeneous baseline and the
  // same cell plus one laggard at a 2 Mb/s PHY rate.
  std::vector<exp::Cell> cells;
  for (int n : fast_counts) {
    for (const bool with_slow : {false, true}) {
      const std::string grammar =
          "phy=dot11b_short;contenders=" + std::to_string(n) +
          "x saturated" + (with_slow ? " + 1x saturated@2M" : "");
      exp::Cell cell;
      const core::ScenarioSpec spec = core::ScenarioSpec::parse(grammar);
      cell.scenario_name = spec.describe();
      cell.contenders = static_cast<int>(spec.contenders.size());
      cell.phy_preset = spec.phy_preset;
      cell.scenario = spec.to_config(/*seed set by Campaign*/ 0);
      cell.repetitions = 1;
      cells.push_back(std::move(cell));
    }
  }
  const exp::Campaign campaign(
      std::move(cells),
      static_cast<std::uint64_t>(args.get("seed", 401)));

  exp::Progress progress(campaign.size(), "cells",
                         bench::progress_enabled(args));
  const exp::Runner runner = bench::runner_from(args, &progress);
  // stderr, not stdout: stdout must stay byte-identical across --threads.
  std::cerr << "# threads: " << runner.threads() << "\n";
  const auto results =
      exp::run_cells(campaign, runner, [&](const exp::Cell& cell) {
        const core::Scenario sc(cell.scenario);
        return sc.run_contention(TimeNs::from_seconds(seconds),
                                 TimeNs::sec(1));
      });
  progress.finish();

  util::Table table({"fast_stations", "fast_alone_mbps",
                     "fast_with_laggard_mbps", "laggard_mbps"});
  std::vector<std::vector<double>> rows;
  for (std::size_t i = 0; i < fast_counts.size(); ++i) {
    const int n = fast_counts[i];
    const core::ContentionResult& alone = results[2 * i];
    const core::ContentionResult& mixed = results[2 * i + 1];
    const auto mean_fast = [n](const core::ContentionResult& r) {
      double total = 0.0;
      for (int k = 0; k < n; ++k) {
        total += r.per_contender[static_cast<std::size_t>(k)].to_mbps();
      }
      return total / n;
    };
    rows.push_back({static_cast<double>(n), mean_fast(alone),
                    mean_fast(mixed),
                    mixed.per_contender.back().to_mbps()});
    table.add_row(rows.back());
  }
  bench::emit(table, args, rows);
  std::cout << "# expect: fast_with_laggard ~= laggard (equal shares), far "
               "below fast_alone — the anomaly\n";
  return 0;
}
