// Extension (Section 7.2): "tools designed to measure available
// bandwidth in wired environments in fact measure achievable throughput
// in CSMA/CA links."  The paper illustrates this with [25]'s Fig 4; here
// we regenerate the comparison with our own tool implementations: a
// dispersion-based train sweep, the SLoPS one-way-delay-trend estimator
// (pathload's machinery) and packet pairs, against the ground-truth
// available bandwidth A = C - cross and achievable throughput B.
#include <iostream>

#include "bench_common.hpp"
#include "core/estimator.hpp"
#include "core/owd_trend.hpp"
#include "core/packet_pair.hpp"
#include "core/scenario.hpp"

using namespace csmabw;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const mac::PhyParams phy = mac::PhyParams::dot11b_short();
  const double capacity = phy.saturation_rate(1500).to_mbps();

  bench::announce(
      "Extension (Sec 7.2)",
      "available-bandwidth tools follow B, not A, on CSMA/CA links",
      "cross rate swept; columns: ground truth A and B, then tool outputs");

  util::Table table({"cross_mbps", "avail_A_mbps", "achievable_B_mbps",
                     "train_sweep_mbps", "slops_owd_mbps",
                     "packet_pair_mbps"});
  std::vector<std::vector<double>> rows;
  for (double cross = 0.5; cross <= 5.0 + 1e-9; cross += 0.75) {
    core::ScenarioConfig cfg;
    cfg.seed = static_cast<std::uint64_t>(args.get("seed", 72)) +
               static_cast<std::uint64_t>(cross * 100);
    cfg.contenders.push_back({BitRate::mbps(cross), 1500});
    core::Scenario sc(cfg);

    // Ground truth.
    const double available = capacity - cross;
    const double b = sc.run_steady_state(BitRate::mbps(16.0), 1500,
                                         TimeNs::sec(9), TimeNs::sec(1))
                         .probe.to_mbps();

    // Tool 1: adaptive dispersion sweep.
    core::SimTransport t1(cfg);
    core::EstimatorOptions eopt;
    eopt.train_length = 40;
    eopt.trains_per_rate = args.get("trains", 3);
    core::BandwidthEstimator sweep_tool(t1, eopt);
    const double sweep = sweep_tool.estimate_achievable_bps() / 1e6;

    // Tool 2: SLoPS one-way-delay trend.
    core::SimTransport t2(cfg);
    core::SlopsOptions sopt;
    sopt.train_length = 50;
    sopt.trains_per_rate = args.get("trains", 3);
    const double slops = core::slops_estimate(t2, sopt).estimate_bps / 1e6;

    // Tool 3: packet pairs.
    core::SimTransport t3(cfg);
    const double pair =
        core::packet_pair_estimate(t3, 1500, args.get("pairs", 100))
            .estimate_bps /
        1e6;

    rows.push_back({cross, available, b, sweep, slops, pair});
    table.add_row(rows.back());
  }
  bench::emit(table, args, rows);
  std::cout << "# expect: every tool column tracks B (and overshoots it), "
               "none tracks A\n";
  return 0;
}
