// Extension (Section 7.2): "tools designed to measure available
// bandwidth in wired environments in fact measure achievable throughput
// in CSMA/CA links."  The paper illustrates this with [25]'s Fig 4; here
// we regenerate the comparison with the repository's own tool
// implementations, all driven through the unified core::MeasurementMethod
// interface: the cross-traffic rate × method grid is one
// exp::run_method_campaign, so the whole comparison parallelizes across
// --threads while every (cell, repetition) stays seeded from
// (campaign seed, cell index, repetition) alone — the printed table is
// byte-identical for any thread count.
//
// Columns: ground-truth available bandwidth A = C - cross (analytic) and
// achievable throughput B (the steady_state method), then one column per
// wired-path tool.  Every tool column tracks B, none tracks A.
//
// --format=json emits one JSON line per (cell, repetition) tool run
// instead of the table; --csv/--jsonl sink the same per-run rows.
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/method.hpp"
#include "exp/collector.hpp"
#include "exp/engine.hpp"
#include "stats/summary.hpp"
#include "util/require.hpp"

using namespace csmabw;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);

  const std::string format = args.get("format", "table");
  CSMABW_REQUIRE(format == "table" || format == "json",
                 "--format must be table or json");
  const bool json = format == "json";

  const int trains = args.get("trains", 3);
  const int pairs = args.get("pairs", 100);

  exp::SweepSpec spec;
  spec.campaign_seed = static_cast<std::uint64_t>(args.get("seed", 72));
  spec.contender_counts = {1};
  spec.cross_mbps = args.get_doubles(
      "cross-mbps", {0.5, 1.25, 2.0, 2.75, 3.5, 4.25, 5.0});
  spec.phy_presets = {"dot11b_short"};
  spec.train_lengths = {40};
  spec.probe_mbps = {5.0};
  spec.repetitions = args.get("reps", 1);
  // Method axis: ground truth B first, then the wired-path tools.  The
  // per-tool knobs mirror the pre-engine serial version of this bench.
  spec.methods = {
      "steady_state",
      "train_sweep:train_length=40,trains_per_rate=" +
          std::to_string(trains) + ",grid=6",
      "bisection:train_length=40,trains_per_rate=" + std::to_string(trains),
      "slops:train_length=50,trains_per_rate=" + std::to_string(trains),
      "packet_pair:pairs=" + std::to_string(pairs),
  };
  const exp::Campaign campaign(spec);

  const mac::PhyParams phy = exp::phy_preset(spec.phy_presets.front());
  const double capacity = phy.saturation_rate(1500).to_mbps();

  if (!json) {
    bench::announce(
        "Extension (Sec 7.2)",
        "available-bandwidth tools follow B, not A, on CSMA/CA links",
        std::to_string(spec.cross_mbps.size()) + " cross rates x " +
            std::to_string(spec.methods.size()) + " methods x " +
            std::to_string(spec.repetitions) + " repetitions, one campaign");
  }

  exp::Progress progress(exp::count_method_runs(campaign), "tools",
                         bench::progress_enabled(args));
  const exp::Runner runner = bench::runner_from(args, &progress);
  // stderr, not stdout: stdout must stay byte-identical across --threads.
  std::cerr << "# threads: " << runner.threads() << "\n";
  const std::vector<exp::MethodRun> runs =
      exp::run_method_campaign(campaign, exp::MethodCampaignConfig{}, runner);
  progress.finish();

  // Per-run rows to the machine-readable sinks.
  exp::CollectorOptions copts;
  copts.csv_path = args.get("csv", "");
  copts.jsonl_path = args.get("jsonl", "");
  if (json) {
    copts.jsonl_stream = &std::cout;
  }
  exp::Collector collector(exp::Collector::method_columns(), copts);
  std::vector<stats::RunningStat> per_cell(
      static_cast<std::size_t>(campaign.size()));
  for (const exp::MethodRun& run : runs) {
    const exp::Cell& cell =
        campaign.cells()[static_cast<std::size_t>(run.cell_index)];
    collector.add(exp::Collector::method_row(cell, run.repetition,
                                             run.report));
    per_cell[static_cast<std::size_t>(run.cell_index)].add(
        run.report.estimate_bps / 1e6);
  }

  if (json) {
    return 0;
  }

  // Pivot: one console row per cross rate, one column per method (cells
  // expand cross-major with the method axis innermost).
  const int n_methods = static_cast<int>(spec.methods.size());
  CSMABW_REQUIRE(campaign.size() ==
                     static_cast<int>(spec.cross_mbps.size()) * n_methods,
                 "unexpected campaign shape");
  util::Table table({"cross_mbps", "avail_A_mbps", "achievable_B_mbps",
                     "train_sweep_mbps", "bisection_mbps", "slops_owd_mbps",
                     "packet_pair_mbps"});
  for (std::size_t c = 0; c < spec.cross_mbps.size(); ++c) {
    const double cross = spec.cross_mbps[c];
    std::vector<double> row{cross, capacity - cross};
    for (int m = 0; m < n_methods; ++m) {
      row.push_back(
          per_cell[c * static_cast<std::size_t>(n_methods) +
                   static_cast<std::size_t>(m)]
              .mean());
    }
    table.add_row(row);
  }
  table.print(std::cout);
  if (!copts.csv_path.empty()) {
    std::cout << "# csv written: " << copts.csv_path << "\n";
  }
  if (!copts.jsonl_path.empty()) {
    std::cout << "# jsonl written: " << copts.jsonl_path << "\n";
  }
  std::cout << "# expect: every tool column tracks B (and overshoots it), "
               "none tracks A\n";
  return 0;
}
