// Figure 1: experimental steady-state rate response curve of probe
// traffic in a WLAN setting versus the throughput of the cross-traffic
// flow.  Paper values: C = 6.5 Mb/s, A = 2 Mb/s, B = 3.4 Mb/s on the
// testbed; our 802.11b short-preamble DCF gives C ~= 6.9 Mb/s with the
// same shape (the probe curve flattens at the fair share B, past the
// available bandwidth A).
#include <iostream>

#include "bench_common.hpp"
#include "core/scenario.hpp"

using namespace csmabw;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const double cross_mbps = args.get("cross-mbps", 4.5);
  const double duration_s = args.get("duration", 10.0) * util::bench_scale();
  const double max_rate = args.get("max-mbps", 10.0);
  const double step = args.get("step-mbps", 0.25);

  core::ScenarioConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(args.get("seed", 1));
  cfg.contenders.push_back(core::StationSpec::poisson(BitRate::mbps(cross_mbps), 1500));
  core::Scenario sc(cfg);

  const double capacity = cfg.phy.saturation_rate(1500).to_mbps();
  bench::announce(
      "Figure 1", "steady-state rate response vs cross-traffic throughput",
      "1 contender, Poisson " + util::Table::format(cross_mbps) +
          " Mb/s, 1500 B; probe CBR sweep; window " +
          util::Table::format(duration_s) + " s");

  // Fair share B: what a saturating probe settles at.
  const auto sat = sc.run_steady_state(
      BitRate::mbps(2.0 * capacity), 1500,
      TimeNs::from_seconds(duration_s + 1.0), TimeNs::sec(1));
  std::cout << "# reference: C=" << util::Table::format(capacity)
            << " Mb/s  A=" << util::Table::format(capacity - cross_mbps)
            << " Mb/s  B=" << util::Table::format(sat.probe.to_mbps())
            << " Mb/s\n";

  util::Table table({"probe_in_mbps", "probe_out_mbps", "cross_mbps"});
  std::vector<std::vector<double>> rows;
  for (double ri = step; ri <= max_rate + 1e-9; ri += step) {
    const auto r = sc.run_steady_state(BitRate::mbps(ri), 1500,
                                       TimeNs::from_seconds(duration_s + 1.0),
                                       TimeNs::sec(1));
    rows.push_back({ri, r.probe.to_mbps(), r.contenders_total.to_mbps()});
    table.add_row(rows.back());
  }
  bench::emit(table, args, rows);
  return 0;
}
