// Figure 4: "the complete picture" — steady-state rate response when the
// probing flow both shares its FIFO queue with local cross-traffic and
// contends for the channel with another station (Section 3.2, Eq. 4).
// The curve deviates once probe + FIFO cross-traffic together hit the
// station's fair share; pushing harder squeezes the FIFO cross-traffic.
#include <iostream>

#include "bench_common.hpp"
#include "core/scenario.hpp"

using namespace csmabw;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const double contender_mbps = args.get("contender-mbps", 2.5);
  const double fifo_mbps = args.get("fifo-mbps", 1.5);
  const double duration_s = args.get("duration", 10.0) * util::bench_scale();

  core::ScenarioConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(args.get("seed", 1));
  cfg.contenders.push_back(core::StationSpec::poisson(BitRate::mbps(contender_mbps), 1500));
  cfg.fifo_cross = core::StationSpec::poisson(BitRate::mbps(fifo_mbps), 1500);
  core::Scenario sc(cfg);

  bench::announce(
      "Figure 4", "complete rate response with FIFO + contending cross-traffic",
      "contender Poisson " + util::Table::format(contender_mbps) +
          " Mb/s; FIFO cross-traffic Poisson " +
          util::Table::format(fifo_mbps) + " Mb/s on the probe station");

  util::Table table({"probe_in_mbps", "probe_out_mbps", "contending_mbps",
                     "fifo_cross_mbps"});
  std::vector<std::vector<double>> rows;
  for (double ri = 0.25; ri <= args.get("max-mbps", 10.0) + 1e-9;
       ri += args.get("step-mbps", 0.25)) {
    const auto r = sc.run_steady_state(BitRate::mbps(ri), 1500,
                                       TimeNs::from_seconds(duration_s + 1.0),
                                       TimeNs::sec(1));
    rows.push_back({ri, r.probe.to_mbps(), r.contenders_total.to_mbps(),
                    r.fifo_cross.to_mbps()});
    table.add_row(rows.back());
  }
  bench::emit(table, args, rows);
  return 0;
}
