// Figure 6: mean access delay vs. probe packet number.  The first
// packets of the probing sequence observe a lower access delay than the
// steady state — the transient regime (Section 4).  Paper setup: NS2,
// 1000-packet trains at 5 Mb/s, 4 Mb/s Poisson contending cross-traffic,
// 25000 repetitions (we default to a laptop-scale ensemble; raise
// CSMABW_BENCH_SCALE or --reps).
#include <iostream>

#include "bench_common.hpp"
#include "core/scenario.hpp"
#include "core/transient.hpp"

using namespace csmabw;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int reps = args.get("reps", util::scaled_reps(2000));
  const int train = args.get("train", 1000);
  const int show = args.get("show", 150);

  core::ScenarioConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(args.get("seed", 6));
  cfg.contenders.push_back(
      {BitRate::mbps(args.get("cross-mbps", 4.0)), 1500});
  core::Scenario sc(cfg);

  traffic::TrainSpec spec;
  spec.n = train;
  spec.size_bytes = 1500;
  spec.gap = BitRate::mbps(args.get("probe-mbps", 5.0)).gap_for(1500);

  bench::announce("Figure 6", "mean access delay vs probe packet number",
                  "probe 5 Mb/s, contender Poisson 4 Mb/s, trains of " +
                      std::to_string(train) + ", " + std::to_string(reps) +
                      " repetitions (paper: 25000)");

  core::TransientConfig tc;
  tc.train_length = train;
  tc.ks_prefix = 1;  // raw samples not needed here
  tc.steady_tail = train / 2;
  core::TransientAnalyzer ta(tc);
  int dropped = 0;
  for (int rep = 0; rep < reps; ++rep) {
    const core::TrainRun run =
        sc.run_train(spec, static_cast<std::uint64_t>(rep));
    if (run.any_dropped) {
      ++dropped;
      continue;
    }
    ta.add_repetition(run.access_delays_s());
  }

  std::cout << "# repetitions used: " << ta.repetitions() << " (dropped "
            << dropped << ")\n";
  std::cout << "# steady-state mean access delay: "
            << util::Table::format(ta.steady_mean() * 1e3, 4) << " ms\n";

  util::Table table({"packet", "mean_access_delay_ms"});
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < show && i < train; ++i) {
    rows.push_back({static_cast<double>(i + 1), ta.mean_at(i) * 1e3});
    table.add_row(rows.back());
  }
  bench::emit(table, args, rows);
  return 0;
}
