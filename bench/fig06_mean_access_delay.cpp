// Figure 6: mean access delay vs. probe packet number.  The first
// packets of the probing sequence observe a lower access delay than the
// steady state — the transient regime (Section 4).  Paper setup: NS2,
// 1000-packet trains at 5 Mb/s, 4 Mb/s Poisson contending cross-traffic,
// 25000 repetitions (we default to a laptop-scale ensemble; raise
// CSMABW_BENCH_SCALE or --reps).
//
// Runs as a single-cell campaign on the exp:: engine: --threads N
// parallelizes the ensemble with output identical to a serial run.
#include <iostream>

#include "bench_common.hpp"
#include "exp/engine.hpp"

using namespace csmabw;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int reps = args.get("reps", util::scaled_reps(2000));
  const int train = args.get("train", 1000);
  const int show = args.get("show", 150);

  exp::SweepSpec spec;
  spec.campaign_seed = static_cast<std::uint64_t>(args.get("seed", 6));
  spec.contender_counts = {1};
  spec.cross_mbps = {args.get("cross-mbps", 4.0)};
  spec.train_lengths = {train};
  spec.probe_mbps = {args.get("probe-mbps", 5.0)};
  spec.repetitions = reps;
  const exp::Campaign campaign(spec);

  bench::announce("Figure 6", "mean access delay vs probe packet number",
                  "probe 5 Mb/s, contender Poisson 4 Mb/s, trains of " +
                      std::to_string(train) + ", " + std::to_string(reps) +
                      " repetitions (paper: 25000)");

  exp::TrainCampaignConfig tcfg;
  tcfg.ks_prefix = 1;  // raw samples not needed here
  exp::Progress progress(exp::count_train_shards(campaign, tcfg), "fig06",
                         bench::progress_enabled(args));
  const exp::Runner runner = bench::runner_from(args, &progress);
  const auto cells = exp::run_train_campaign(campaign, tcfg, runner);
  progress.finish();
  const exp::TrainCellStats& cell = cells.front();

  std::cout << "# repetitions used: " << cell.used << " (dropped "
            << cell.dropped << ")\n";
  std::cout << "# steady-state mean access delay: "
            << util::Table::format(cell.analyzer.steady_mean() * 1e3, 4)
            << " ms\n";

  util::Table table({"packet", "mean_access_delay_ms"});
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < show && i < train; ++i) {
    rows.push_back(
        {static_cast<double>(i + 1), cell.analyzer.mean_at(i) * 1e3});
    table.add_row(rows.back());
  }
  bench::emit(table, args, rows);
  return 0;
}
