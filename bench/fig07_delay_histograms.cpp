// Figure 7: histogram of the access delay seen by the 1st and the 500th
// probe packet.  The two distributions differ visibly: the first packet
// often finds an idle system (short, concentrated delays) while the
// 500th sees the steady-state interaction with the contending queue.
#include <iostream>

#include "bench_common.hpp"
#include "core/scenario.hpp"
#include "core/transient.hpp"
#include "stats/histogram.hpp"

using namespace csmabw;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int reps = args.get("reps", util::scaled_reps(2000));
  const int train = args.get("train", 600);
  const int late_index = args.get("late-index", 500);
  const int bins = args.get("bins", 24);

  core::ScenarioConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(args.get("seed", 7));
  cfg.contenders.push_back(
      {BitRate::mbps(args.get("cross-mbps", 4.0)), 1500});
  core::Scenario sc(cfg);

  traffic::TrainSpec spec;
  spec.n = train;
  spec.size_bytes = 1500;
  spec.gap = BitRate::mbps(args.get("probe-mbps", 5.0)).gap_for(1500);

  bench::announce("Figure 7",
                  "access-delay histograms of the 1st and " +
                      std::to_string(late_index) + "th probe packet",
                  "probe 5 Mb/s, contender Poisson 4 Mb/s, " +
                      std::to_string(reps) + " repetitions");

  stats::Histogram first(0.0, 12e-3, bins);
  stats::Histogram late(0.0, 12e-3, bins);
  for (int rep = 0; rep < reps; ++rep) {
    const core::TrainRun run =
        sc.run_train(spec, static_cast<std::uint64_t>(rep));
    if (run.any_dropped) {
      continue;
    }
    const auto d = run.access_delays_s();
    first.add(d[0]);
    late.add(d[static_cast<std::size_t>(
        std::min(late_index - 1, train - 1))]);
  }

  util::Table table({"delay_ms", "freq_packet_1", "freq_packet_late"});
  std::vector<std::vector<double>> rows;
  for (int b = 0; b < first.bins(); ++b) {
    rows.push_back({first.bin_center(b) * 1e3, first.frequency(b),
                    late.frequency(b)});
    table.add_row(rows.back());
  }
  bench::emit(table, args, rows);
  std::cout << "# mode shift: packet 1 at "
            << util::Table::format(first.mode() * 1e3, 3)
            << " ms vs packet " << late_index << " at "
            << util::Table::format(late.mode() * 1e3, 3) << " ms\n";
  return 0;
}
