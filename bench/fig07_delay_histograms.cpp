// Figure 7: histogram of the access delay seen by the 1st and the 500th
// probe packet.  The two distributions differ visibly: the first packet
// often finds an idle system (short, concentrated delays) while the
// 500th sees the steady-state interaction with the contending queue.
//
// Runs as a single-cell campaign on the exp:: engine; sparse raw-sample
// retention keeps the ensemble distributions of exactly the two indices
// the histograms need.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "exp/engine.hpp"
#include "stats/histogram.hpp"

using namespace csmabw;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int reps = args.get("reps", util::scaled_reps(2000));
  const int train = args.get("train", 600);
  const int late_index = args.get("late-index", 500);
  const int bins = args.get("bins", 24);

  exp::SweepSpec spec;
  spec.campaign_seed = static_cast<std::uint64_t>(args.get("seed", 7));
  spec.contender_counts = {1};
  spec.cross_mbps = {args.get("cross-mbps", 4.0)};
  spec.train_lengths = {train};
  spec.probe_mbps = {args.get("probe-mbps", 5.0)};
  spec.repetitions = reps;
  const exp::Campaign campaign(spec);

  bench::announce("Figure 7",
                  "access-delay histograms of the 1st and " +
                      std::to_string(late_index) + "th probe packet",
                  "probe 5 Mb/s, contender Poisson 4 Mb/s, " +
                      std::to_string(reps) + " repetitions");

  const int late = std::min(late_index - 1, train - 1);
  exp::TrainCampaignConfig tcfg;
  tcfg.ks_prefix = 1;           // raw samples of packet 1 ...
  tcfg.raw_indices = {late};    // ... plus just the late index
  exp::Progress progress(exp::count_train_shards(campaign, tcfg), "fig07",
                         bench::progress_enabled(args));
  const exp::Runner runner = bench::runner_from(args, &progress);
  const auto cells = exp::run_train_campaign(campaign, tcfg, runner);
  progress.finish();
  const exp::TrainCellStats& cell = cells.front();

  stats::Histogram first(0.0, 12e-3, bins);
  stats::Histogram late_hist(0.0, 12e-3, bins);
  for (double d : cell.analyzer.sample_at(0)) {
    first.add(d);
  }
  for (double d : cell.analyzer.sample_at(late)) {
    late_hist.add(d);
  }

  util::Table table({"delay_ms", "freq_packet_1", "freq_packet_late"});
  std::vector<std::vector<double>> rows;
  for (int b = 0; b < first.bins(); ++b) {
    rows.push_back({first.bin_center(b) * 1e3, first.frequency(b),
                    late_hist.frequency(b)});
    table.add_row(rows.back());
  }
  bench::emit(table, args, rows);
  std::cout << "# mode shift: packet 1 at "
            << util::Table::format(first.mode() * 1e3, 3)
            << " ms vs packet " << late_index << " at "
            << util::Table::format(late_hist.mode() * 1e3, 3) << " ms\n";
  return 0;
}
