// Figure 8: (top) per-packet-index KS statistic of the access-delay
// distribution against the steady-state distribution, with the 95%
// rejection threshold; (bottom) mean queue size of the contending node
// sampled at probe arrivals.  The transient ends when the contending
// queue reaches its stationary size.  Paper setup: probe 8 Mb/s,
// contending cross-traffic 2 Mb/s.
#include <iostream>

#include "bench_common.hpp"
#include "core/scenario.hpp"
#include "core/transient.hpp"
#include "stats/summary.hpp"

using namespace csmabw;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int reps = args.get("reps", util::scaled_reps(1200));
  const int train = args.get("train", 600);
  const int show = args.get("show", 100);

  core::ScenarioConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(args.get("seed", 8));
  cfg.contenders.push_back(
      {BitRate::mbps(args.get("cross-mbps", 2.0)), 1500});
  core::Scenario sc(cfg);

  traffic::TrainSpec spec;
  spec.n = train;
  spec.size_bytes = 1500;
  spec.gap = BitRate::mbps(args.get("probe-mbps", 8.0)).gap_for(1500);

  bench::announce("Figure 8",
                  "KS transient detection + contending queue build-up",
                  "probe 8 Mb/s, contender Poisson 2 Mb/s, trains of " +
                      std::to_string(train) + ", " + std::to_string(reps) +
                      " repetitions");

  core::TransientConfig tc;
  tc.train_length = train;
  tc.ks_prefix = show;
  tc.steady_tail = train / 2;
  core::TransientAnalyzer ta(tc);
  std::vector<stats::RunningStat> queue(static_cast<std::size_t>(show));
  for (int rep = 0; rep < reps; ++rep) {
    const core::TrainRun run = sc.run_train(
        spec, static_cast<std::uint64_t>(rep), /*sample_contender_queue=*/true);
    if (run.any_dropped) {
      continue;
    }
    ta.add_repetition(run.access_delays_s());
    for (int i = 0; i < show; ++i) {
      queue[static_cast<std::size_t>(i)].add(
          run.contender_queue_at_arrival[static_cast<std::size_t>(i)]);
    }
  }

  util::Table table(
      {"packet", "ks_value", "ks_threshold_95", "mean_contender_queue"});
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < show; ++i) {
    rows.push_back({static_cast<double>(i + 1), ta.ks_at(i),
                    ta.ks_threshold_at(i),
                    queue[static_cast<std::size_t>(i)].mean()});
    table.add_row(rows.back());
  }
  bench::emit(table, args, rows);

  // Where does the KS statistic first dip under the 95% line?
  int settle = show;
  for (int i = 0; i < show; ++i) {
    if (ta.ks_at(i) <= ta.ks_threshold_at(i)) {
      settle = i + 1;
      break;
    }
  }
  std::cout << "# KS statistic first under the 95% threshold at packet "
            << settle << " (paper: ~10 for this scenario)\n";
  return 0;
}
