// Figure 8: (top) per-packet-index KS statistic of the access-delay
// distribution against the steady-state distribution, with the 95%
// rejection threshold; (bottom) mean queue size of the contending node
// sampled at probe arrivals.  The transient ends when the contending
// queue reaches its stationary size.  Paper setup: probe 8 Mb/s,
// contending cross-traffic 2 Mb/s.
//
// Runs as a single-cell campaign on the exp:: engine (--threads N).
#include <iostream>

#include "bench_common.hpp"
#include "exp/engine.hpp"

using namespace csmabw;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int reps = args.get("reps", util::scaled_reps(1200));
  const int train = args.get("train", 600);
  const int show = args.get("show", 100);

  exp::SweepSpec spec;
  spec.campaign_seed = static_cast<std::uint64_t>(args.get("seed", 8));
  spec.contender_counts = {1};
  spec.cross_mbps = {args.get("cross-mbps", 2.0)};
  spec.train_lengths = {train};
  spec.probe_mbps = {args.get("probe-mbps", 8.0)};
  spec.repetitions = reps;
  const exp::Campaign campaign(spec);

  bench::announce("Figure 8",
                  "KS transient detection + contending queue build-up",
                  "probe 8 Mb/s, contender Poisson 2 Mb/s, trains of " +
                      std::to_string(train) + ", " + std::to_string(reps) +
                      " repetitions");

  exp::TrainCampaignConfig tcfg;
  tcfg.ks_prefix = show;
  tcfg.sample_contender_queue = true;
  tcfg.queue_prefix = show;
  exp::Progress progress(exp::count_train_shards(campaign, tcfg), "fig08",
                         bench::progress_enabled(args));
  const exp::Runner runner = bench::runner_from(args, &progress);
  const auto cells = exp::run_train_campaign(campaign, tcfg, runner);
  progress.finish();
  const exp::TrainCellStats& cell = cells.front();

  util::Table table(
      {"packet", "ks_value", "ks_threshold_95", "mean_contender_queue"});
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < show; ++i) {
    rows.push_back({static_cast<double>(i + 1), cell.analyzer.ks_at(i),
                    cell.analyzer.ks_threshold_at(i),
                    cell.queue_at_arrival[static_cast<std::size_t>(i)].mean()});
    table.add_row(rows.back());
  }
  bench::emit(table, args, rows);

  // Where does the KS statistic first dip under the 95% line?
  int settle = show;
  for (int i = 0; i < show; ++i) {
    if (cell.analyzer.ks_at(i) <= cell.analyzer.ks_threshold_at(i)) {
      settle = i + 1;
      break;
    }
  }
  std::cout << "# KS statistic first under the 95% threshold at packet "
            << settle << " (paper: ~10 for this scenario)\n";
  return 0;
}
