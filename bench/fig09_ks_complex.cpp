// Figure 9: KS-based transient detection in a complex scenario — four
// contending stations with heterogeneous packet sizes (40, 576, 1000,
// 1500 B) and rates (0.1, 0.5, 0.75, 2 Mb/s); probe at 0.5 Mb/s.  Even
// at low probing rates the access-delay distribution needs tens of
// packets to reach the steady state.
#include <iostream>

#include "bench_common.hpp"
#include "core/scenario.hpp"
#include "core/transient.hpp"

using namespace csmabw;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int reps = args.get("reps", util::scaled_reps(800));
  const int train = args.get("train", 200);
  const int show = args.get("show", 50);

  core::ScenarioConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(args.get("seed", 9));
  // NS2's 802.11b defaults (long preamble, 1 Mb/s basic rate): with them
  // the paper's four flows offer ~0.91 Erlangs, so adding the probe
  // pushes the system near criticality — that is what makes this
  // low-rate probe exhibit a transient lasting tens of packets.
  cfg.phy = args.get("short-preamble", false)
                ? mac::PhyParams::dot11b_short()
                : mac::PhyParams::dot11b_long();
  cfg.warmup = TimeNs::ms(args.get("warmup-ms", 2000));
  // --load-scale multiplies every cross rate.  The transient length in
  // this near-critical scenario is extremely sensitive to the exact
  // background load (relaxation time ~ 1/(1-rho)^2), which depends on
  // MAC details NS2 and we model slightly differently; 1.05-1.10
  // reproduces the paper's tens-of-packets transient.
  const double load = args.get("load-scale", 1.0);
  cfg.contenders.push_back(core::StationSpec::poisson(BitRate::mbps(0.1 * load), 40));
  cfg.contenders.push_back(core::StationSpec::poisson(BitRate::mbps(0.5 * load), 576));
  cfg.contenders.push_back(core::StationSpec::poisson(BitRate::mbps(0.75 * load), 1000));
  cfg.contenders.push_back(core::StationSpec::poisson(BitRate::mbps(2.0 * load), 1500));
  core::Scenario sc(cfg);

  traffic::TrainSpec spec;
  spec.n = train;
  spec.size_bytes = 1500;
  spec.gap = BitRate::mbps(args.get("probe-mbps", 0.5)).gap_for(1500);

  bench::announce(
      "Figure 9", "KS transient detection, complex multi-station case",
      "4 contenders: 40B@0.1, 576B@0.5, 1000B@0.75, 1500B@2 Mb/s; probe "
      "0.5 Mb/s; " +
          std::to_string(reps) + " repetitions");

  core::TransientConfig tc;
  tc.train_length = train;
  tc.ks_prefix = show;
  tc.steady_tail = train / 2;
  core::TransientAnalyzer ta(tc);
  for (int rep = 0; rep < reps; ++rep) {
    const core::TrainRun run =
        sc.run_train(spec, static_cast<std::uint64_t>(rep));
    if (run.any_dropped) {
      continue;
    }
    ta.add_repetition(run.access_delays_s());
  }

  util::Table table({"packet", "ks_value", "ks_threshold_95"});
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < show; ++i) {
    rows.push_back(
        {static_cast<double>(i + 1), ta.ks_at(i), ta.ks_threshold_at(i)});
    table.add_row(rows.back());
  }
  bench::emit(table, args, rows);
  std::cout << "# transient length (0.1 tolerance): "
            << ta.transient_length(0.1) << " packets\n";
  return 0;
}
