// Figure 10: estimated duration of the transitory (in packets) vs the
// offered cross-traffic load in Erlangs, at tolerances 0.1 and 0.01, for
// an offered probing load of 1 Erlang.  The transient peaks when the
// cross-traffic offers its fair share and, at 0.1 tolerance, stays well
// under 150 packets everywhere (Section 4.1).
//
// One engine campaign: each offered load is a cell, all cells and their
// repetition shards run across the worker pool (--threads N).
#include <iostream>

#include "bench_common.hpp"
#include "exp/engine.hpp"

using namespace csmabw;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int reps = args.get("reps", util::scaled_reps(500));
  const int train = args.get("train", 400);
  const double probe_load = args.get("probe-erlang", 1.0);

  const mac::PhyParams phy = mac::PhyParams::dot11b_short();
  bench::announce(
      "Figure 10", "transient duration vs offered cross-traffic load",
      "probe offered load " + util::Table::format(probe_load) +
          " Erlang; cross load swept 0.05..1.0; tolerances 0.1 / 0.01; " +
          std::to_string(reps) + " repetitions per load");

  std::vector<double> loads;
  for (double load = 0.05; load <= 1.0 + 1e-9; load += 0.05) {
    loads.push_back(load);
  }

  exp::SweepSpec spec;
  spec.campaign_seed = static_cast<std::uint64_t>(args.get("seed", 10));
  spec.contender_counts = {1};
  spec.cross_mbps.clear();
  for (double load : loads) {
    spec.cross_mbps.push_back(phy.rate_for_load(load, 1500).to_mbps());
  }
  spec.train_lengths = {train};
  spec.probe_mbps = {phy.rate_for_load(probe_load, 1500).to_mbps()};
  spec.repetitions = reps;
  const exp::Campaign campaign(spec);

  exp::TrainCampaignConfig tcfg;
  tcfg.ks_prefix = 1;
  exp::Progress progress(exp::count_train_shards(campaign, tcfg), "fig10",
                         bench::progress_enabled(args));
  const exp::Runner runner = bench::runner_from(args, &progress);
  const auto cells = exp::run_train_campaign(campaign, tcfg, runner);
  progress.finish();

  util::Table table(
      {"cross_load_erlang", "transient_tol_0.1", "transient_tol_0.01"});
  std::vector<std::vector<double>> rows;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    const exp::TrainCellStats& cell = cells[i];
    rows.push_back(
        {loads[i], static_cast<double>(cell.analyzer.transient_length(0.1)),
         static_cast<double>(cell.analyzer.transient_length(0.01))});
    table.add_row(rows.back());
  }
  bench::emit(table, args, rows);
  return 0;
}
