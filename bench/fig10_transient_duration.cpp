// Figure 10: estimated duration of the transitory (in packets) vs the
// offered cross-traffic load in Erlangs, at tolerances 0.1 and 0.01, for
// an offered probing load of 1 Erlang.  The transient peaks when the
// cross-traffic offers its fair share and, at 0.1 tolerance, stays well
// under 150 packets everywhere (Section 4.1).
#include <iostream>

#include "bench_common.hpp"
#include "core/scenario.hpp"
#include "core/transient.hpp"

using namespace csmabw;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int reps = args.get("reps", util::scaled_reps(500));
  const int train = args.get("train", 400);
  const double probe_load = args.get("probe-erlang", 1.0);

  const mac::PhyParams phy = mac::PhyParams::dot11b_short();
  bench::announce(
      "Figure 10", "transient duration vs offered cross-traffic load",
      "probe offered load " + util::Table::format(probe_load) +
          " Erlang; cross load swept 0.05..1.0; tolerances 0.1 / 0.01; " +
          std::to_string(reps) + " repetitions per load");

  traffic::TrainSpec spec;
  spec.n = train;
  spec.size_bytes = 1500;
  spec.gap = TimeNs::from_seconds(1.0 /
                                  phy.packet_rate_for_load(probe_load, 1500));

  util::Table table(
      {"cross_load_erlang", "transient_tol_0.1", "transient_tol_0.01"});
  std::vector<std::vector<double>> rows;
  for (double load = 0.05; load <= 1.0 + 1e-9; load += 0.05) {
    core::ScenarioConfig cfg;
    cfg.seed = static_cast<std::uint64_t>(args.get("seed", 10)) +
               static_cast<std::uint64_t>(load * 1000);
    cfg.contenders.push_back({phy.rate_for_load(load, 1500), 1500});
    core::Scenario sc(cfg);

    core::TransientConfig tc;
    tc.train_length = train;
    tc.ks_prefix = 1;
    tc.steady_tail = train / 2;
    core::TransientAnalyzer ta(tc);
    for (int rep = 0; rep < reps; ++rep) {
      const core::TrainRun run =
          sc.run_train(spec, static_cast<std::uint64_t>(rep));
      if (!run.any_dropped) {
        ta.add_repetition(run.access_delays_s());
      }
    }
    rows.push_back({load, static_cast<double>(ta.transient_length(0.1)),
                    static_cast<double>(ta.transient_length(0.01))});
    table.add_row(rows.back());
  }
  bench::emit(table, args, rows);
  return 0;
}
