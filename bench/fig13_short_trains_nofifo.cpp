// Figure 13: experimental rate response curves of short packet trains on
// a system WITHOUT FIFO cross-traffic, against the steady-state
// response.  Short trains (n = 3) overestimate the achievable throughput
// at high probing rates; longer trains converge to the steady curve
// (Section 6.2).
#include <iostream>

#include "bench_common.hpp"
#include "core/scenario.hpp"

using namespace csmabw;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int trains = args.get("trains", util::scaled_reps(200));
  const double cross_mbps = args.get("cross-mbps", 4.0);

  core::ScenarioConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(args.get("seed", 13));
  cfg.contenders.push_back(core::StationSpec::poisson(BitRate::mbps(cross_mbps), 1500));
  core::Scenario sc(cfg);

  bench::announce("Figure 13",
                  "rate response of short trains, no FIFO cross-traffic",
                  "contender Poisson " + util::Table::format(cross_mbps) +
                      " Mb/s; trains of 3/10/50, " + std::to_string(trains) +
                      " Poisson-spaced trains per rate");

  util::Table table({"input_mbps", "steady_state_mbps", "train3_mbps",
                     "train10_mbps", "train50_mbps"});
  std::vector<std::vector<double>> rows;
  for (double ri = 0.5; ri <= args.get("max-mbps", 10.0) + 1e-9; ri += 0.5) {
    std::vector<double> row{ri};
    const auto steady = sc.run_steady_state(
        BitRate::mbps(ri), 1500, TimeNs::sec(9), TimeNs::sec(1));
    row.push_back(steady.probe.to_mbps());
    for (int n : {3, 10, 50}) {
      traffic::TrainSpec spec;
      spec.n = n;
      spec.size_bytes = 1500;
      spec.gap = BitRate::mbps(ri).gap_for(1500);
      const auto seq = sc.run_train_sequence(
          spec, trains, TimeNs::ms(40),
          static_cast<std::uint64_t>(n));
      row.push_back(1500 * 8.0 / seq.mean_gap_s() / 1e6);
    }
    rows.push_back(row);
    table.add_row(row);
  }
  bench::emit(table, args, rows);
  std::cout << "# expect: train3 > train10 > train50 ~= steady at rates "
               "above the fair share\n";
  return 0;
}
