// Figure 15: experimental rate response curves of short packet trains on
// the COMPLETE system (FIFO cross-traffic at the probing station plus a
// contending station).  Dispersion measurements with short trains keep
// overestimating the steady-state response at high rates regardless of
// FIFO cross-traffic (Section 6.3).
#include <iostream>

#include "bench_common.hpp"
#include "core/scenario.hpp"

using namespace csmabw;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int trains = args.get("trains", util::scaled_reps(200));
  const double cross_mbps = args.get("cross-mbps", 3.0);
  const double fifo_mbps = args.get("fifo-mbps", 1.0);

  core::ScenarioConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(args.get("seed", 15));
  cfg.contenders.push_back(core::StationSpec::poisson(BitRate::mbps(cross_mbps), 1500));
  cfg.fifo_cross = core::StationSpec::poisson(BitRate::mbps(fifo_mbps), 1500);
  core::Scenario sc(cfg);

  bench::announce("Figure 15",
                  "rate response of short trains, complete system",
                  "contender Poisson " + util::Table::format(cross_mbps) +
                      " Mb/s; FIFO cross Poisson " +
                      util::Table::format(fifo_mbps) + " Mb/s; trains of "
                      "3/10/50, " + std::to_string(trains) + " per rate");

  util::Table table({"input_mbps", "steady_state_mbps", "train3_mbps",
                     "train10_mbps", "train50_mbps"});
  std::vector<std::vector<double>> rows;
  for (double ri = 0.5; ri <= args.get("max-mbps", 10.0) + 1e-9; ri += 0.5) {
    std::vector<double> row{ri};
    const auto steady = sc.run_steady_state(
        BitRate::mbps(ri), 1500, TimeNs::sec(9), TimeNs::sec(1));
    row.push_back(steady.probe.to_mbps());
    for (int n : {3, 10, 50}) {
      traffic::TrainSpec spec;
      spec.n = n;
      spec.size_bytes = 1500;
      spec.gap = BitRate::mbps(ri).gap_for(1500);
      const auto seq = sc.run_train_sequence(
          spec, trains, TimeNs::ms(40), static_cast<std::uint64_t>(n));
      row.push_back(1500 * 8.0 / seq.mean_gap_s() / 1e6);
    }
    rows.push_back(row);
    table.add_row(row);
  }
  bench::emit(table, args, rows);
  return 0;
}
