// Figure 16: packet-pair based bandwidth inference vs the actual fluid
// response (achievable throughput) for a range of cross-traffic rates.
// The link capacity stays constant (no channel errors); packet pairs
// track the achievable throughput, not the capacity — and overestimate
// it whenever contending traffic is present (Section 7.3).
//
// Each cross-rate point is one custom campaign cell; the steady-state
// run and the packet-pair ensemble of different points execute across
// the engine's worker pool (--threads N).
#include <iostream>

#include "bench_common.hpp"
#include "core/packet_pair.hpp"
#include "exp/engine.hpp"

using namespace csmabw;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int pairs = args.get("pairs", util::scaled_reps(200));
  const mac::PhyParams phy = mac::PhyParams::dot11b_short();

  bench::announce("Figure 16",
                  "packet-pair inference vs actual achievable throughput",
                  "cross-traffic rate swept 0..6 Mb/s; " +
                      std::to_string(pairs) + " pairs per point; capacity "
                      "constant " +
                      util::Table::format(phy.saturation_rate(1500).to_mbps()) +
                      " Mb/s");

  std::vector<exp::Cell> cells;
  for (double cross = 0.0; cross <= 6.0 + 1e-9; cross += 0.5) {
    exp::Cell cell;
    cell.cross_mbps = cross;
    cell.contenders = cross > 0.0 ? 1 : 0;
    cell.phy_preset = "dot11b_short";
    cell.repetitions = pairs;
    cell.scenario.phy = phy;
    if (cross > 0.0) {
      cell.scenario.contenders.push_back(core::StationSpec::poisson(BitRate::mbps(cross), 1500));
    }
    cells.push_back(std::move(cell));
  }
  const exp::Campaign campaign(
      std::move(cells), static_cast<std::uint64_t>(args.get("seed", 16)));

  struct PointResult {
    double cross_mbps = 0.0;
    double achievable_mbps = 0.0;
    double pair_estimate_mbps = 0.0;
  };

  exp::Progress progress(campaign.size(), "fig16",
                         bench::progress_enabled(args));
  const exp::Runner runner = bench::runner_from(args, &progress);
  const auto points =
      exp::run_cells(campaign, runner, [&](const exp::Cell& cell) {
        const core::Scenario sc(cell.scenario);
        // Actual achievable throughput: saturated long run.
        const auto sat = sc.run_steady_state(BitRate::mbps(16.0), 1500,
                                             TimeNs::sec(9), TimeNs::sec(1));
        // Packet-pair inference.
        core::SimTransport transport(cell.scenario);
        const auto pp =
            core::packet_pair_estimate(transport, 1500, cell.repetitions);
        return PointResult{cell.cross_mbps, sat.probe.to_mbps(),
                           pp.estimate_bps / 1e6};
      });
  progress.finish();

  util::Table table({"cross_mbps", "actual_achievable_mbps",
                     "packet_pair_mbps", "capacity_mbps"});
  std::vector<std::vector<double>> rows;
  const double capacity = phy.saturation_rate(1500).to_mbps();
  for (const PointResult& p : points) {
    rows.push_back(
        {p.cross_mbps, p.achievable_mbps, p.pair_estimate_mbps, capacity});
    table.add_row(rows.back());
  }
  bench::emit(table, args, rows);
  std::cout << "# expect: pair estimate > actual achievable for cross > 0, "
               "both well below capacity\n";
  return 0;
}
