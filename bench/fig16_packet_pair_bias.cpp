// Figure 16: packet-pair based bandwidth inference vs the actual fluid
// response (achievable throughput) for a range of cross-traffic rates.
// The link capacity stays constant (no channel errors); packet pairs
// track the achievable throughput, not the capacity — and overestimate
// it whenever contending traffic is present (Section 7.3).
#include <iostream>

#include "bench_common.hpp"
#include "core/packet_pair.hpp"
#include "core/scenario.hpp"

using namespace csmabw;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int pairs = args.get("pairs", util::scaled_reps(200));
  const mac::PhyParams phy = mac::PhyParams::dot11b_short();

  bench::announce("Figure 16",
                  "packet-pair inference vs actual achievable throughput",
                  "cross-traffic rate swept 0..6 Mb/s; " +
                      std::to_string(pairs) + " pairs per point; capacity "
                      "constant " +
                      util::Table::format(phy.saturation_rate(1500).to_mbps()) +
                      " Mb/s");

  util::Table table({"cross_mbps", "actual_achievable_mbps",
                     "packet_pair_mbps", "capacity_mbps"});
  std::vector<std::vector<double>> rows;
  const double capacity = phy.saturation_rate(1500).to_mbps();
  for (double cross = 0.0; cross <= 6.0 + 1e-9; cross += 0.5) {
    core::ScenarioConfig cfg;
    cfg.seed = static_cast<std::uint64_t>(args.get("seed", 16)) +
               static_cast<std::uint64_t>(cross * 100);
    if (cross > 0.0) {
      cfg.contenders.push_back({BitRate::mbps(cross), 1500});
    }
    core::Scenario sc(cfg);

    // Actual achievable throughput: saturated long run.
    const auto sat = sc.run_steady_state(BitRate::mbps(16.0), 1500,
                                         TimeNs::sec(9), TimeNs::sec(1));
    // Packet-pair inference.
    core::SimTransport transport(cfg);
    const auto pp = core::packet_pair_estimate(transport, 1500, pairs);

    rows.push_back({cross, sat.probe.to_mbps(), pp.estimate_bps / 1e6,
                    capacity});
    table.add_row(rows.back());
  }
  bench::emit(table, args, rows);
  std::cout << "# expect: pair estimate > actual achievable for cross > 0, "
               "both well below capacity\n";
  return 0;
}
