// Figure 17: MSER-2 based measurement.  Twenty-packet trains measured
// raw vs with MSER-2 transient truncation applied to the per-index mean
// inter-arrival series, against the steady-state response.  The
// truncated measurement approaches the steady-state curve without
// sending more probes (Section 7.4).
#include <iostream>

#include "bench_common.hpp"
#include "core/mser_correction.hpp"
#include "core/scenario.hpp"

using namespace csmabw;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int trains = args.get("trains", util::scaled_reps(200));
  const int n = args.get("train", 20);
  const double cross_mbps = args.get("cross-mbps", 4.0);

  core::ScenarioConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(args.get("seed", 17));
  cfg.contenders.push_back(core::StationSpec::poisson(BitRate::mbps(cross_mbps), 1500));
  core::Scenario sc(cfg);

  bench::announce("Figure 17", "MSER-2 corrected dispersion measurements",
                  "contender Poisson " + util::Table::format(cross_mbps) +
                      " Mb/s; trains of " + std::to_string(n) + ", " +
                      std::to_string(trains) + " trains per rate");

  util::Table table({"input_mbps", "steady_state_mbps", "train20_mbps",
                     "train20_mser2_mbps", "truncated_gaps"});
  std::vector<std::vector<double>> rows;
  for (double ri = 1.0; ri <= args.get("max-mbps", 10.0) + 1e-9; ri += 1.0) {
    const auto steady = sc.run_steady_state(
        BitRate::mbps(ri), 1500, TimeNs::sec(9), TimeNs::sec(1));

    traffic::TrainSpec spec;
    spec.n = n;
    spec.size_bytes = 1500;
    spec.gap = BitRate::mbps(ri).gap_for(1500);
    core::SimTransport transport(cfg);
    core::EnsembleGapCorrector corrector(n);
    for (int t = 0; t < trains; ++t) {
      const core::TrainResult r = transport.send_train(spec);
      if (r.complete()) {
        corrector.add_train(r.receive_times_s());
      }
    }
    const core::CorrectedGap g = corrector.corrected(2);
    rows.push_back({ri, steady.probe.to_mbps(),
                    1500 * 8.0 / g.raw_gap_s / 1e6,
                    1500 * 8.0 / g.corrected_gap_s / 1e6,
                    static_cast<double>(g.truncated)});
    table.add_row(rows.back());
  }
  bench::emit(table, args, rows);
  std::cout << "# expect: mser2 column closer to steady_state than the raw "
               "train20 column above the fair share\n";
  return 0;
}
