// google-benchmark microbenchmarks of the library's hot paths: the
// discrete-event engine, the DCF simulator, the probe-train repetition,
// the exp:: campaign engine, the KS statistic, MSER, the trace-driven
// FIFO queue, and the event-trace codec (write + replay-read
// throughput).  These bound the cost of scaling the figure ensembles up
// to the paper's 25k-70k repetitions.
//
// Results are additionally written as google-benchmark JSON to
// BENCH_microbench.json (override with --benchmark_out=PATH) so CI and
// future changes have a machine-readable perf trajectory.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <vector>

#include <filesystem>

#include "core/scenario.hpp"
#include "exp/engine.hpp"
#include "mac/wlan.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "serve/cache_key.hpp"
#include "serve/record.hpp"
#include "serve/result_cache.hpp"
#include "queueing/fifo_trace.hpp"
#include "sim/simulator.hpp"
#include "stats/ks_test.hpp"
#include "stats/mser.hpp"
#include "stats/rng.hpp"
#include "topo/conflict_medium.hpp"
#include "topo/topology.hpp"
#include "trace/query/agg.hpp"
#include "trace/query/engine.hpp"
#include "trace/query/mapped.hpp"
#include "trace/query/predicate.hpp"
#include "trace/reader.hpp"
#include "trace/replay.hpp"
#include "trace/writer.hpp"
#include "traffic/flow_meter.hpp"
#include "traffic/probe_train.hpp"
#include "traffic/source.hpp"

namespace {

using namespace csmabw;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < n; ++i) {
      sim.schedule_at(TimeNs::ns(i * 997 % 100000), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(10000);

void BM_EventQueueCancelHeavy(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    // Each schedule cancels its predecessor — the medium's pending-fire
    // rearm pattern at its most adversarial.  Exercises handle
    // invalidation, slot recycling and heap compaction.
    sim::EventHandle prev;
    for (int i = 0; i < n; ++i) {
      prev.cancel();
      prev = sim.schedule_at(TimeNs::ns(100000 + i * 997 % 100000), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueCancelHeavy)->Arg(10000);

void BM_DcfSaturatedStation(benchmark::State& state) {
  const int stations = static_cast<int>(state.range(0));
  core::ScenarioConfig cfg;
  cfg.seed = 1;
  for (int i = 0; i < stations; ++i) {
    cfg.contenders.push_back(core::StationSpec::saturated(1500));
  }
  const core::Scenario sc(cfg);
  for (auto _ : state) {
    const core::ContentionResult r =
        sc.run_contention(TimeNs::sec(1), TimeNs::zero());
    benchmark::DoNotOptimize(r.medium.successes);
  }
  // Roughly 570 deliveries per simulated second at saturation.
  state.SetItemsProcessed(state.iterations() * 570);
}
BENCHMARK(BM_DcfSaturatedStation)->Arg(1)->Arg(2)->Arg(5);

void BM_MediumContention(benchmark::State& state) {
  // Unsaturated Poisson contenders join and leave contention on every
  // arrival, so each enqueue triggers a Medium::update_contention — the
  // path the incremental (cached-minimum) reschedule optimizes.
  const int stations = static_cast<int>(state.range(0));
  core::ScenarioConfig cfg;
  cfg.seed = 9;
  for (int i = 0; i < stations; ++i) {
    cfg.contenders.push_back(core::StationSpec::poisson(BitRate::mbps(1.0)));
  }
  const core::Scenario sc(cfg);
  std::uint64_t frames = 0;
  for (auto _ : state) {
    const core::ContentionResult r =
        sc.run_contention(TimeNs::sec(1), TimeNs::zero());
    frames = r.medium.successes;
    benchmark::DoNotOptimize(frames);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(frames));
}
BENCHMARK(BM_MediumContention)->Arg(2)->Arg(5)->Arg(10);

void BM_ConflictGraphMedium(benchmark::State& state, topo::Topology topo) {
  // Saturated burst over a conflict-graph medium: every station dumps a
  // queue at t=1ms and the run drains it through fire/advance — the
  // spatial generalization of the Medium hot path, including the
  // clique-reduction case (clique10 builds ConflictGraphMedium
  // directly; production clique scenarios route to mac::Medium, so the
  // graph path needs its own gate).
  const int n = topo.num_nodes();
  const auto factory = [&topo](sim::Simulator& sim,
                               const mac::PhyParams& phy)
      -> std::unique_ptr<mac::MediumBase> {
    return std::make_unique<topo::ConflictGraphMedium>(sim, phy, topo);
  };
  std::uint64_t frames = 0;
  for (auto _ : state) {
    mac::WlanNetwork net(mac::PhyParams::dot11b_short(), 21, factory);
    for (int i = 0; i < n; ++i) {
      auto& st = net.add_station();
      net.simulator().schedule_at(TimeNs::ms(1), [&st, i] {
        for (int k = 0; k < 40; ++k) {
          mac::Packet p;
          p.flow = i;
          p.seq = k;
          p.size_bytes = 1500;
          st.enqueue(p);
        }
      });
    }
    net.simulator().run_until(TimeNs::sec(60));
    frames = net.medium().stats().successes;
    benchmark::DoNotOptimize(frames);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(frames));
}
BENCHMARK_CAPTURE(BM_ConflictGraphMedium, grid9, topo::Topology::grid(3, 3));
BENCHMARK_CAPTURE(BM_ConflictGraphMedium, grid25,
                  topo::Topology::grid(5, 5));
BENCHMARK_CAPTURE(BM_ConflictGraphMedium, clique10,
                  topo::Topology::clique(10));
// The lattice-scaling gates: per-event cost must stay O(degree log N),
// so items/s may not collapse as the grid grows past 1k stations.
BENCHMARK_CAPTURE(BM_ConflictGraphMedium, grid1024,
                  topo::Topology::grid(32, 32));
BENCHMARK_CAPTURE(BM_ConflictGraphMedium, grid4096,
                  topo::Topology::grid(64, 64));

void BM_ProbeTrainRepetition(benchmark::State& state) {
  core::ScenarioConfig cfg;
  cfg.seed = 2;
  cfg.contenders.push_back(core::StationSpec::poisson(BitRate::mbps(4.0)));
  const core::Scenario sc(cfg);
  traffic::TrainSpec spec;
  spec.n = static_cast<int>(state.range(0));
  spec.size_bytes = 1500;
  spec.gap = BitRate::mbps(5.0).gap_for(1500);
  std::uint64_t rep = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sc.run_train(spec, rep++));
  }
  state.SetItemsProcessed(state.iterations() * spec.n);
}
BENCHMARK(BM_ProbeTrainRepetition)->Arg(100)->Arg(1000);

void BM_CampaignEngine(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  exp::SweepSpec spec;
  spec.campaign_seed = 11;
  spec.contender_counts = {1, 2};
  spec.cross_mbps = {2.0};
  spec.train_lengths = {60};
  spec.probe_mbps = {5.0};
  spec.repetitions = 32;
  const exp::Campaign campaign(spec);
  exp::TrainCampaignConfig tcfg;
  tcfg.shard_size = 8;
  for (auto _ : state) {
    exp::RunnerOptions opts;
    opts.threads = threads;
    const exp::Runner runner(opts);
    benchmark::DoNotOptimize(
        exp::run_train_campaign(campaign, tcfg, runner));
  }
  state.SetItemsProcessed(state.iterations() * campaign.total_repetitions());
}
// Wall time is the relevant metric: the work runs on pool threads.
BENCHMARK(BM_CampaignEngine)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_ResultCacheKey(benchmark::State& state) {
  // Full content-addressed key derivation: canonical scenario string +
  // two-lane FNV over it.  Paid once per (cell, repetition) on every
  // cache-enabled campaign, so it must stay negligible next to the
  // repetition's simulation (~ms).
  core::ScenarioConfig cfg;
  cfg.seed = 7;
  cfg.contenders.push_back(core::StationSpec::poisson(BitRate::mbps(4.0)));
  cfg.contenders.push_back(core::StationSpec::saturated(1500));
  traffic::TrainSpec spec;
  spec.n = 400;
  spec.size_bytes = 1500;
  spec.gap = BitRate::mbps(5.0).gap_for(1500);
  int rep = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        serve::train_rep_key(cfg, spec, false, rep++ & 1023));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ResultCacheKey);

void BM_CacheLookupHit(benchmark::State& state) {
  // The warm-campaign hot path: key -> entry file -> read -> verify ->
  // payload.  A fleet re-run does this for every repetition instead of
  // simulating it, so lookup throughput bounds warm-cache speedup.
  const auto root =
      std::filesystem::temp_directory_path() / "csmabw-bench-cache";
  std::filesystem::remove_all(root);
  core::ScenarioConfig cfg;
  cfg.seed = 7;
  cfg.contenders.push_back(core::StationSpec::poisson(BitRate::mbps(4.0)));
  traffic::TrainSpec spec;
  spec.n = 400;
  spec.size_bytes = 1500;
  spec.gap = BitRate::mbps(5.0).gap_for(1500);
  serve::ResultCache cache(root.string());
  serve::TrainRepRecord record;
  record.access_delays_s.assign(400, 1.25e-3);
  record.output_gap_s = 2.5e-3;
  std::vector<unsigned char> payload;
  serve::encode_train_record(record, payload);
  const serve::CacheKey key = serve::train_rep_key(cfg, spec, false, 0);
  cache.store(key, payload);
  std::int64_t bytes = 0;
  for (auto _ : state) {
    auto hit = cache.lookup(key);
    bytes = static_cast<std::int64_t>(hit ? hit->size() : 0);
    benchmark::DoNotOptimize(hit);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * bytes);
  std::filesystem::remove_all(root);
}
BENCHMARK(BM_CacheLookupHit);

void BM_MetricsCounterHot(benchmark::State& state) {
  // A bound counter increment (Arg(1)) vs the unbound null-tap (Arg(0)).
  // The emission sites sit inside per-event simulator loops, so both
  // must stay in the low-nanosecond range — the disabled path is the
  // cost every non-observed run pays for the instrumentation existing.
  const bool enabled = state.range(0) != 0;
  obs::Registry registry(enabled);
  obs::Counter counter;
  if (enabled) {
    counter = registry.counter("bench.counter.hot");
  }
  for (auto _ : state) {
    counter.add(1);
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsCounterHot)->Arg(0)->Arg(1);

void BM_ScopedSpan(benchmark::State& state) {
  // One profiled span (Arg(1): two clock reads + a buffer push) vs the
  // disabled no-op (Arg(0)).  Spans wrap per-repetition and per-unit
  // work (~ms), so the enabled cost only needs to stay microsecond-
  // scale; the disabled cost guards un-profiled runs.
  const bool enabled = state.range(0) != 0;
  // Small cap: past it the span still pays both clock reads and the
  // nesting bookkeeping (the dominant costs) but stops growing the
  // buffer, keeping the bench's footprint bounded.
  obs::Profiler profiler(enabled, std::size_t{1} << 16);
  obs::Profiler* tap = enabled ? &profiler : nullptr;
  for (auto _ : state) {
    obs::ScopedSpan span(tap, "bench.span");
    span.arg("i", 1);
    benchmark::DoNotOptimize(span);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScopedSpan)->Arg(0)->Arg(1);

void BM_KsStatistic(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  stats::Rng rng(3);
  std::vector<double> a;
  std::vector<double> b;
  for (std::size_t i = 0; i < n; ++i) {
    a.push_back(rng.exponential(1.0));
    b.push_back(rng.exponential(1.1));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::ks_statistic(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KsStatistic)->Arg(1000)->Arg(10000);

void BM_Mser2(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  stats::Rng rng(4);
  std::vector<double> xs;
  for (int i = 0; i < n; ++i) {
    xs.push_back(rng.exponential(i < n / 10 ? 0.5 : 1.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::mser(xs, 2));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Mser2)->Arg(19)->Arg(999);

/// A realistic MAC event mix for the trace codec benchmarks (the kinds
/// and field magnitudes a DCF recording produces).
std::vector<trace::TraceEvent> synthetic_events(int n) {
  stats::Rng rng(6);
  std::vector<trace::TraceEvent> events;
  events.reserve(static_cast<std::size_t>(n));
  std::int64_t t = 0;
  for (int i = 0; i < n; ++i) {
    trace::TraceEvent e;
    t += rng.uniform_int(20, 2000000);
    e.time = TimeNs::ns(t);
    e.kind = static_cast<trace::EventKind>(
        rng.uniform_int(1, trace::kEventKindCount));
    e.station = static_cast<std::uint16_t>(rng.uniform_int(0, 3));
    e.packet = static_cast<std::uint64_t>(i / 4 + 1);
    e.aux = TimeNs::ns(t + rng.uniform_int(-200000, 200000));
    e.flow = rng.uniform_int(0, 1000);
    e.seq = i / 8;
    e.value = rng.uniform_int(0, 1500);
    events.push_back(e);
  }
  return events;
}

void BM_TraceWrite(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::vector<trace::TraceEvent> events = synthetic_events(n);
  std::int64_t bytes = 0;
  for (auto _ : state) {
    std::ostringstream out;
    trace::TraceWriter writer(out);
    for (const trace::TraceEvent& e : events) {
      writer.on_event(e);
    }
    writer.close();
    bytes = static_cast<std::int64_t>(out.tellp());
    benchmark::DoNotOptimize(writer.events_written());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetBytesProcessed(state.iterations() * bytes);
}
BENCHMARK(BM_TraceWrite)->Arg(100000);

/// Writes `n` synthetic events as an on-disk trace and returns the path
/// (the read-path benchmarks all consume the same real file, so their
/// items/s ratios compare decode strategies, not storage).
std::filesystem::path write_bench_trace(const char* name, int n) {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / name;
  trace::TraceWriter writer(path.string());
  for (const trace::TraceEvent& e : synthetic_events(n)) {
    writer.on_event(e);
  }
  writer.close();
  return path;
}

void BM_TraceReplayRead(benchmark::State& state) {
  // The production replay read path (replay_train_file and friends):
  // ifstream-backed TraceReader streaming events off disk one next()
  // call at a time.  Every byte crosses two buffers (kernel -> stream
  // -> page buffer) and every event pays an out-of-line call.
  const int n = static_cast<int>(state.range(0));
  const std::filesystem::path path =
      write_bench_trace("csmabw-bench-replay.cctrace", n);
  const auto bytes =
      static_cast<std::int64_t>(std::filesystem::file_size(path));
  for (auto _ : state) {
    trace::TraceReader reader(path.string());
    trace::TraceEvent e;
    std::uint64_t decoded = 0;
    while (reader.next(&e)) {
      ++decoded;
    }
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetBytesProcessed(state.iterations() * bytes);
  std::filesystem::remove(path);
}
BENCHMARK(BM_TraceReplayRead)->Arg(100000);

void BM_TraceScanMmap(benchmark::State& state) {
  // Zero-copy full decode of the same on-disk trace through MappedTrace
  // — open, page-directory walk and in-place payload scan per
  // iteration.  The ratio to BM_TraceReplayRead is the mmap path's
  // single-thread win over the streaming reader on identical content:
  // no stream-to-buffer copies and no per-event call, with the shared
  // varint codec (the ALU floor of this format) common to both.  The
  // scan's second, larger advantage — pages decode independently, so
  // one file's scan parallelizes across cores while the streaming
  // reader is inherently sequential — is measured by
  // BM_TraceScanParallel below.
  const int n = static_cast<int>(state.range(0));
  const std::filesystem::path path =
      write_bench_trace("csmabw-bench-scan.cctrace", n);
  const auto bytes =
      static_cast<std::int64_t>(std::filesystem::file_size(path));
  for (auto _ : state) {
    const trace::MappedTrace mapped(path.string());
    std::uint64_t decoded = 0;
    for (std::size_t p = 0; p < mapped.pages().size(); ++p) {
      mapped.scan_page(p, [&](const trace::TraceEvent& e) {
        decoded += static_cast<std::uint64_t>(e.station) + 1;
      });
    }
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetBytesProcessed(state.iterations() * bytes);
  std::filesystem::remove(path);
}
BENCHMARK(BM_TraceScanMmap)->Arg(100000);

void BM_TraceScanParallel(benchmark::State& state) {
  // Full decode of one mapped trace with pages fanned out across the
  // worker pool — the decomposition trace_tool query runs.  This is
  // where the mmap scan leaves the streaming reader behind: page
  // payloads are delta-based per page, so a single file's decode
  // scales with cores (on a 1-core runner this necessarily measures
  // pool overhead on top of BM_TraceScanMmap; the recorded baseline
  // says more about the box than the code there).  Thread count
  // resolves via CSMABW_THREADS / hardware concurrency.
  const int n = static_cast<int>(state.range(0));
  const std::filesystem::path path =
      write_bench_trace("csmabw-bench-parscan.cctrace", n);
  const auto bytes =
      static_cast<std::int64_t>(std::filesystem::file_size(path));
  const trace::MappedTrace mapped(path.string());
  const exp::Runner runner;  // CSMABW_THREADS else hardware concurrency
  const int pages = static_cast<int>(mapped.pages().size());
  const int per_unit = 8;
  const int units = (pages + per_unit - 1) / per_unit;
  for (auto _ : state) {
    const std::vector<std::uint64_t> sums =
        runner.map(units, [&](int u) {
          const std::size_t first = static_cast<std::size_t>(u) * per_unit;
          const std::size_t last =
              std::min<std::size_t>(first + per_unit,
                                    static_cast<std::size_t>(pages));
          std::uint64_t d = 0;
          for (std::size_t p = first; p < last; ++p) {
            mapped.scan_page(p, [&](const trace::TraceEvent& e) {
              d += static_cast<std::uint64_t>(e.station) + 1;
            });
          }
          return d;
        });
    std::uint64_t decoded = 0;
    for (const std::uint64_t s : sums) {
      decoded += s;
    }
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetBytesProcessed(state.iterations() * bytes);
  std::filesystem::remove(path);
}
BENCHMARK(BM_TraceScanParallel)->Arg(1000000);

void BM_TraceQueryPushdown(benchmark::State& state) {
  // The same file scanned under a narrow time window: the per-page
  // skip-index refutes almost every page, so the scan touches headers
  // only.  Items are the events COVERED (the whole file), making the
  // items/s ratio to BM_TraceScanMmap the pushdown speedup over a full
  // decode.
  const int n = static_cast<int>(state.range(0));
  const std::filesystem::path path =
      write_bench_trace("csmabw-bench-pushdown.cctrace", n);
  const trace::MappedTrace mapped(path.string());
  trace::query::QueryPredicate pred;
  std::int64_t span = 0;
  for (const trace::PageInfo& p : mapped.pages()) {
    span = std::max(span, p.summary.max_time_ns);
  }
  pred.time_min_ns = span - span / 100;  // last ~1% of the recording
  for (auto _ : state) {
    trace::query::ScanStats stats;
    std::uint64_t matched = 0;
    trace::query::scan_pages(mapped, 0, mapped.pages().size(), pred, true,
                             &stats,
                             [&](const trace::TraceEvent&) { ++matched; });
    benchmark::DoNotOptimize(matched);
    benchmark::DoNotOptimize(stats.pages_skipped);
  }
  state.SetItemsProcessed(state.iterations() * n);
  std::filesystem::remove(path);
}
BENCHMARK(BM_TraceQueryPushdown)->Arg(100000);

void BM_TraceAggHistogram(benchmark::State& state) {
  // End-to-end fleet aggregation: record a small probe-train fleet once,
  // then per iteration open every file, reconstruct packet lifecycles
  // and fold access delays into per-position histograms (the query
  // engine's delay-hist path).
  const int reps = static_cast<int>(state.range(0));
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "csmabw-bench-agghist";
  std::filesystem::create_directories(dir);
  core::ScenarioConfig cfg;
  cfg.seed = 2;
  cfg.contenders.push_back(core::StationSpec::poisson(BitRate::mbps(4.0)));
  const core::Scenario sc(cfg);
  traffic::TrainSpec spec;
  spec.n = 60;
  spec.size_bytes = 1500;
  spec.gap = BitRate::mbps(5.0).gap_for(1500);
  std::vector<trace::TraceFile> files;
  std::uint64_t events = 0;
  for (int r = 0; r < reps; ++r) {
    trace::TraceMeta meta;
    meta.cell = 0;
    meta.repetition = r;
    meta.train_n = spec.n;
    meta.train_size = spec.size_bytes;
    const std::string path = trace::train_trace_path(dir.string(), 0, r);
    trace::TraceWriter writer(path, meta);
    (void)sc.run_train(spec, r, false, &writer);
    writer.close();
    events += writer.events_written();
    files.push_back({path, meta});
  }
  exp::RunnerOptions ropts;
  ropts.threads = 1;  // measure the aggregation path, not the pool
  const exp::Runner runner(ropts);
  for (auto _ : state) {
    const std::unique_ptr<trace::query::Aggregation> agg =
        trace::query::make_aggregation("delay-hist:bins=40,hi_ms=20");
    const trace::query::ScanStats stats = trace::query::run_query(
        files, trace::query::QueryPredicate{}, *agg, runner);
    benchmark::DoNotOptimize(agg->rows().size());
    benchmark::DoNotOptimize(stats.events_decoded);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(events));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_TraceAggHistogram)->Arg(8);

void BM_FifoTrace(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  stats::Rng rng(5);
  std::vector<queueing::TraceJob> jobs;
  double t = 0.0;
  for (int i = 0; i < n; ++i) {
    t += rng.exponential(1e-3);
    jobs.push_back(queueing::TraceJob{
        TimeNs::from_seconds(t),
        TimeNs::from_seconds(rng.exponential(0.8e-3)), 0});
  }
  for (auto _ : state) {
    auto copy = jobs;
    benchmark::DoNotOptimize(queueing::run_fifo_trace(std::move(copy)));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FifoTrace)->Arg(10000);

}  // namespace

// Custom main: identical to BENCHMARK_MAIN() except that, unless the
// caller passes their own --benchmark_out, results are also written as
// google-benchmark JSON to BENCH_microbench.json for machine
// consumption (the repo's perf-trajectory baseline).
int main(int argc, char** argv) {
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    // Exactly --benchmark_out or --benchmark_out=... (not _out_format).
    if (std::strcmp(argv[i], "--benchmark_out") == 0 ||
        std::strncmp(argv[i], "--benchmark_out=", 16) == 0) {
      has_out = true;
    }
  }
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_microbench.json";
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  args.push_back(nullptr);
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  if (!has_out) {
    std::cout << "# benchmark json written: BENCH_microbench.json\n";
  }
  benchmark::Shutdown();
  return 0;
}
