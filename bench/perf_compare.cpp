// Compares two google-benchmark JSON outputs and fails (exit 1) when a
// gated benchmark family regresses beyond a noise threshold — the CI
// perf gate guarding the simulator core's throughput baseline
// (BENCH_microbench.json at the repo root).
//
//   perf_compare --baseline=BENCH_microbench.json --current=current.json
//       [--threshold=0.35] [--families=BM_EventQueueScheduleRun,...]
//
// The comparison metric is items_per_second (higher is better).  The
// threshold is deliberately generous: microbenchmarks on shared CI
// runners are noisy, and the gate exists to catch structural
// regressions (an accidental allocation or O(n) scan back in the hot
// path), not 5% jitter.  Benchmarks present in `current` but not in the
// baseline are reported and ignored; benchmarks missing from `current`
// that the baseline gates are an error (the gate must not silently
// shrink).
#include <cctype>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "util/cli.hpp"

namespace {

/// The sim-core benchmark families the gate protects by default.
const char* kDefaultFamilies =
    "BM_EventQueueScheduleRun,BM_EventQueueCancelHeavy,"
    "BM_DcfSaturatedStation,BM_MediumContention,BM_ConflictGraphMedium,"
    "BM_ProbeTrainRepetition,BM_CampaignEngine,"
    "BM_ResultCacheKey,BM_CacheLookupHit,"
    "BM_TraceScanMmap,BM_TraceQueryPushdown,BM_TraceAggHistogram,"
    "BM_MetricsCounterHot,BM_ScopedSpan";

/// Extracts {name -> items_per_second} from google-benchmark JSON.
///
/// Not a general JSON parser: the google-benchmark output format is one
/// `"key": value` pair per line, with every benchmark object carrying a
/// "name" before its metrics.  "run_name" is distinct from "name" and
/// skipped.  The context block has no "items_per_second", so pairs
/// associate unambiguously.
std::map<std::string, double> read_items_per_second(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "perf_compare: cannot open " << path << "\n";
    std::exit(2);
  }
  std::map<std::string, double> out;
  std::string line;
  std::string current_name;
  while (std::getline(in, line)) {
    const auto name_pos = line.find("\"name\":");
    if (name_pos != std::string::npos) {
      const auto open = line.find('"', name_pos + 7);
      const auto close = open == std::string::npos
                             ? std::string::npos
                             : line.find('"', open + 1);
      if (open != std::string::npos && close != std::string::npos) {
        current_name = line.substr(open + 1, close - open - 1);
      }
      continue;
    }
    const auto ips_pos = line.find("\"items_per_second\":");
    if (ips_pos != std::string::npos && !current_name.empty()) {
      const double v = std::strtod(line.c_str() + ips_pos + 19, nullptr);
      out.emplace(current_name, v);  // first wins; names are unique
    }
  }
  return out;
}

bool in_families(const std::string& name,
                 const std::vector<std::string>& families) {
  for (const std::string& f : families) {
    if (name.rfind(f, 0) == 0) {
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const csmabw::util::Args args(argc, argv);
  const std::string baseline_path = args.get("baseline", "BENCH_microbench.json");
  const std::string current_path = args.get("current", "current.json");
  const double threshold = args.get("threshold", 0.35);
  std::vector<std::string> families =
      args.get_strings("families", std::vector<std::string>{});
  if (families.empty()) {
    std::istringstream ss(kDefaultFamilies);
    std::string f;
    while (std::getline(ss, f, ',')) {
      families.push_back(f);
    }
  }

  const auto baseline = read_items_per_second(baseline_path);
  const auto current = read_items_per_second(current_path);

  int failures = 0;
  int compared = 0;
  std::printf("%-36s %12s %12s %7s  %s\n", "benchmark", "baseline",
              "current", "ratio", "status");
  for (const auto& [name, base_ips] : baseline) {
    if (!in_families(name, families) || base_ips <= 0.0) {
      continue;
    }
    const auto it = current.find(name);
    if (it == current.end()) {
      std::printf("%-36s %12.3g %12s %7s  MISSING\n", name.c_str(), base_ips,
                  "-", "-");
      ++failures;
      continue;
    }
    const double ratio = it->second / base_ips;
    const bool ok = ratio >= 1.0 - threshold;
    std::printf("%-36s %12.3g %12.3g %6.2fx  %s\n", name.c_str(), base_ips,
                it->second, ratio, ok ? "ok" : "REGRESSION");
    ++compared;
    if (!ok) {
      ++failures;
    }
  }
  for (const auto& [name, ips] : current) {
    if (in_families(name, families) && baseline.find(name) == baseline.end()) {
      std::printf("%-36s %12s %12.3g %7s  new (no baseline)\n", name.c_str(),
                  "-", ips, "-");
    }
  }

  if (compared == 0) {
    std::cerr << "perf_compare: no gated benchmarks found in " << baseline_path
              << " — wrong file or families filter?\n";
    return 2;
  }
  if (failures > 0) {
    std::cerr << "perf_compare: " << failures
              << " benchmark(s) regressed beyond " << threshold * 100
              << "% (vs " << baseline_path << ")\n";
    return 1;
  }
  std::cout << "perf_compare: " << compared << " benchmark(s) within "
            << threshold * 100 << "% of baseline\n";
  return 0;
}
