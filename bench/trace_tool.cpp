// Offline companion of the event-trace subsystem: records scenario runs
// as binary traces, inspects them, recomputes the paper's transient
// statistics from them, and filters them — so one expensive campaign
// recording answers arbitrarily many later questions without re-running
// the simulator.
//
// Subcommands:
//   record       run a probe-train ensemble and write one trace per
//                repetition:
//                  trace_tool record --out=DIR --scenario=paper_fig2
//                    --reps=24 --train=60 [--probe-mbps=5] [--seed=1]
//   info         print a trace's header and per-kind event counts:
//                  trace_tool info --in=FILE
//   replay-stats recompute the per-cell campaign statistics (fig06 mean
//                access delay, fig08 KS, fig10 transient length) from a
//                recorded directory; with the default --shard=64 the
//                numbers are bit-identical to the live campaign's:
//                  trace_tool replay-stats --dir=DIR [--csv=PATH]
//                    [--flow=1000] [--ks-prefix=1] [--tol=0.1]
//   query        run a named aggregation over a fleet through the
//                columnar scan path (mmap, skip-index pushdown,
//                parallel page scan):
//                  trace_tool query --dir=DIR [--agg=counts[:opts]]
//                    [--where=kinds=success;station=0..3;time_ms=..250]
//                    [--threads=N] [--csv=PATH] [--no-pushdown]
//                    [--no-mmap] [--stats] [--metrics-out=FILE]
//                    [--prof=FILE]
//                `--stats` prints per-file scan accounting (pages
//                skipped vs decoded, events, wall time, effective
//                events/s) to stderr; `--metrics-out` / `--prof` write
//                the run-report JSON / Perfetto trace.
//   index        backfill a `.ccidx` sidecar skip-index for v1 traces
//                (v2 traces embed their summaries):
//                  trace_tool index --dir=DIR | --in=FILE
//   filter       copy a trace keeping only selected events (note that a
//                kind-filtered trace may no longer replay-reconstruct):
//                  trace_tool filter --in=A --out=B [--station=N]
//                    [--flow=F] [--kinds=enqueue,success,...]
//                    [--where=...]
#include <array>
#include <iostream>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "core/scenario.hpp"
#include "exp/collector.hpp"
#include "exp/engine.hpp"
#include "trace/event.hpp"
#include "trace/query/agg.hpp"
#include "trace/query/engine.hpp"
#include "trace/query/index.hpp"
#include "trace/query/mapped.hpp"
#include "trace/query/predicate.hpp"
#include "trace/reader.hpp"
#include "trace/replay.hpp"
#include "trace/writer.hpp"
#include "util/json.hpp"
#include "util/require.hpp"

using namespace csmabw;

namespace {

int usage(std::ostream& out, int code) {
  out << "usage: trace_tool "
         "<record|info|replay-stats|query|index|filter> [options]\n"
         "  record       --out=DIR --scenario=<name|grammar> [--reps=N]\n"
         "               [--train=N] [--probe-mbps=R] [--size=BYTES]\n"
         "               [--seed=S] [--threads=N]\n"
         "  info         --in=FILE [--no-mmap]\n"
         "  replay-stats --dir=DIR [--csv=PATH] [--flow=ID]\n"
         "               [--ks-prefix=N] [--tol=T] [--shard=N]\n"
         "  query        --dir=DIR | --in=FILE [--agg=NAME[:k=v,...]]\n"
         "               [--where=CLAUSES] [--threads=N] [--csv=PATH]\n"
         "               [--jsonl=PATH] [--no-pushdown] [--no-mmap]\n"
         "               [--pages-per-unit=N] [--stats]\n"
         "               [--metrics-out=FILE] [--prof=FILE]\n"
         "  index        --dir=DIR | --in=FILE [--threads=N]\n"
         "  filter       --in=FILE --out=FILE [--station=N] [--flow=F]\n"
         "               [--kinds=enqueue,success,...] [--where=CLAUSES]\n"
         "               [--no-pushdown]\n"
         "aggregations (--agg):\n";
  for (const std::string& line : trace::query::aggregation_catalog()) {
    out << "  " << line << "\n";
  }
  out << "--where grammar: `;`-separated kinds=a,b  station=A..B\n"
         "  time_ms=A..B  time_ns=A..B (range ends omittable)\n"
         "query observability: --stats prints per-file scan accounting\n"
         "  to stderr; --metrics-out writes a csmabw-run-report JSON,\n"
         "  --prof a Chrome/Perfetto trace (see README, Observability)\n";
  return code;
}

std::string required(const util::Args& args, const char* name) {
  const std::string value = args.get(name, "");
  CSMABW_REQUIRE(!value.empty(),
                 std::string("trace_tool: --") + name + " is required");
  return value;
}

// ---------------------------------------------------------------- record

int cmd_record(const util::Args& args) {
  exp::SweepSpec spec;
  spec.scenarios = {required(args, "scenario")};
  spec.train_lengths = {args.get("train", 60)};
  spec.probe_mbps = {args.get("probe-mbps", 5.0)};
  spec.probe_size_bytes = args.get("size", 1500);
  spec.repetitions = args.get("reps", 24);
  spec.campaign_seed = static_cast<std::uint64_t>(args.get("seed", 1));
  spec.trace_dir = required(args, "out");
  const exp::Campaign campaign(spec);

  exp::TrainCampaignConfig tcfg;
  tcfg.ks_prefix = 1;
  exp::Progress progress(exp::count_train_shards(campaign, tcfg), "record",
                         bench::progress_enabled(args));
  const exp::Runner runner = bench::runner_from(args, &progress);
  const auto cells = exp::run_train_campaign(campaign, tcfg, runner);
  progress.finish();

  const exp::TrainCellStats& cell = cells.front();
  std::cout << "# recorded " << spec.repetitions << " repetitions of `"
            << campaign.cells().front().scenario_name << "` to "
            << spec.trace_dir << "\n";
  std::cout << "# live summary: used " << cell.used << ", dropped "
            << cell.dropped << ", mean access delay (packet 1) "
            << util::Table::format(cell.analyzer.mean_at(0) * 1e3, 4)
            << " ms, steady "
            << util::Table::format(cell.analyzer.steady_mean() * 1e3, 4)
            << " ms\n";
  std::cout << "# replay with: trace_tool replay-stats --dir="
            << spec.trace_dir << "\n";
  return 0;
}

// ------------------------------------------------------------------ info

int cmd_info(const util::Args& args) {
  const std::string path = required(args, "in");
  trace::MappedTraceOptions mopts;
  mopts.use_mmap = !args.get("no-mmap", false);
  const trace::MappedTrace trace(path, mopts);
  const trace::TraceMeta& meta = trace.meta();
  std::cout << "# " << path << "\n";
  std::cout << "format_version: " << trace.version() << "\n";
  std::cout << "file_bytes: " << trace.file_size() << "\n";
  std::cout << "io: " << (trace.mapped() ? "mmap" : "buffered") << "\n";
  std::cout << "cell: " << meta.cell << "\nrepetition: " << meta.repetition
            << "\n";
  std::cout << "train_n: " << meta.train_n
            << "\ntrain_size: " << meta.train_size
            << "\ntrain_gap_ns: " << meta.train_gap_ns << "\n";
  std::cout << "seed: " << meta.seed << "\n";
  std::cout << "label: " << (meta.label.empty() ? "-" : meta.label) << "\n";

  std::size_t with_summary = 0;
  for (const trace::PageInfo& p : trace.pages()) {
    with_summary += p.has_summary ? 1 : 0;
  }
  std::cout << "events: " << trace.events()
            << "\npages: " << trace.pages().size() << "\n";
  std::cout << "pages_with_summary: " << with_summary
            << (trace.sidecar_loaded() ? " (from .ccidx sidecar)" : "")
            << "\n";

  std::array<std::uint64_t, trace::kEventKindCount> counts{};
  std::map<int, std::uint64_t> per_station;
  TimeNs first;
  TimeNs last;
  bool any = false;
  trace::query::ScanStats stats;
  trace::query::scan_pages(trace, 0, trace.pages().size(),
                           trace::query::QueryPredicate{}, false, &stats,
                           [&](const trace::TraceEvent& e) {
                             ++counts[static_cast<std::size_t>(
                                 trace::kind_index(e.kind))];
                             ++per_station[e.station];
                             if (!any) {
                               first = e.time;
                               any = true;
                             }
                             last = e.time;
                           });
  if (any) {
    std::cout << "span_ms: " << util::Table::format(first.to_ms(), 3)
              << " .. " << util::Table::format(last.to_ms(), 3) << "\n";
  }
  for (int k = 0; k < trace::kEventKindCount; ++k) {
    std::cout << "count." << trace::kind_name(static_cast<trace::EventKind>(
                     k + 1))
              << ": " << counts[static_cast<std::size_t>(k)] << "\n";
  }
  for (const auto& [station, n] : per_station) {
    if (station == trace::kChannelStation) {
      std::cout << "station.channel: " << n << "\n";
    } else {
      std::cout << "station." << station << ": " << n << "\n";
    }
  }
  return 0;
}

// ---------------------------------------------------------- replay-stats

int cmd_replay_stats(const util::Args& args) {
  const std::string dir = required(args, "dir");
  const int flow = args.get("flow", core::kProbeFlow);
  const int shard = args.get("shard", 64);
  const double tol = args.get("tol", 0.1);
  exp::TrainCampaignConfig tcfg;
  tcfg.ks_prefix = args.get("ks-prefix", 1);
  tcfg.steady_tail = args.get("steady-tail", 0);

  const std::vector<trace::TraceFile> files = trace::list_traces(dir);
  CSMABW_REQUIRE(!files.empty(),
                 "no .cctrace files under `" + dir + "`");

  // Group the recordings by campaign cell, preserving (cell, rep) order.
  std::vector<std::pair<int, std::vector<const trace::TraceFile*>>> cells;
  for (const trace::TraceFile& f : files) {
    CSMABW_REQUIRE(f.meta.train_n >= 2,
                   "`" + f.path + "` is not a probe-train recording");
    if (cells.empty() || cells.back().first != f.meta.cell) {
      cells.emplace_back(f.meta.cell,
                         std::vector<const trace::TraceFile*>{});
    }
    cells.back().second.push_back(&f);
  }

  exp::CollectorOptions copts;
  copts.csv_path = args.get("csv", "");
  // The metric columns of campaign_sweep's per-cell rows, minus the
  // sweep coordinates (a trace directory may mix hand-recorded cells):
  // the CI determinism diff `cut`s these very columns from the live CSV.
  // The last header tracks --tol ("transient_pkts_tol0.1" by default,
  // matching the live campaign's fixed 0.1).
  exp::Collector collector(
      {"cell", "reps_used", "dropped", "mean_gap_ms", "measured_rate_mbps",
       "first_delay_ms", "steady_delay_ms", "ks_first", "ks_thresh_95",
       "transient_pkts_tol" + util::json_number(tol)},
      copts);

  for (const auto& [cell_index, reps] : cells) {
    const trace::TraceMeta& meta = reps.front()->meta;
    trace::TrainReplayStats stats(
        exp::train_transient_config(meta.train_n, tcfg), shard);
    for (std::size_t r = 0; r < reps.size(); ++r) {
      CSMABW_REQUIRE(reps[r]->meta.repetition == static_cast<int>(r),
                     "cell " + std::to_string(cell_index) +
                         " is missing repetition " + std::to_string(r) +
                         " (found `" + reps[r]->path + "`)");
      // Catch recordings from different campaigns mixed in one
      // directory (e.g. a re-record with another seed or train over
      // stale files): all repetitions of a cell must agree on
      // everything but the repetition number.
      trace::TraceMeta expected = meta;
      expected.repetition = static_cast<int>(r);
      CSMABW_REQUIRE(reps[r]->meta == expected,
                     "`" + reps[r]->path +
                         "` does not belong to the same recording as `" +
                         reps.front()->path +
                         "` (stale traces from an earlier run? clear "
                         "the directory and re-record)");
      stats.add(trace::replay_train_file(reps[r]->path, flow));
    }
    stats.finish();

    std::vector<exp::Value> row;
    row.emplace_back(cell_index);
    row.emplace_back(stats.used());
    row.emplace_back(stats.dropped());
    if (stats.used() > 0) {
      const double gap = stats.output_gap_s().mean();
      row.emplace_back(gap * 1e3);
      row.emplace_back(gap > 0.0 ? meta.train_size * 8.0 / gap / 1e6 : 0.0);
      row.emplace_back(stats.analyzer().mean_at(0) * 1e3);
      row.emplace_back(stats.analyzer().steady_mean() * 1e3);
      row.emplace_back(stats.analyzer().ks_at(0));
      row.emplace_back(stats.analyzer().ks_threshold_at(0));
      row.emplace_back(stats.analyzer().transient_length(tol));
    } else {
      const double nan = std::numeric_limits<double>::quiet_NaN();
      for (int k = 0; k < 7; ++k) {
        row.emplace_back(nan);
      }
    }
    collector.add(row);
  }

  collector.table().print(std::cout);
  if (!copts.csv_path.empty()) {
    std::cout << "# csv written: " << copts.csv_path << "\n";
  }
  return 0;
}

// ----------------------------------------------------------------- query

/// The fleet to query: every trace under --dir (in replay order), or
/// the single --in file.
std::vector<trace::TraceFile> query_files(const util::Args& args) {
  const std::string dir = args.get("dir", "");
  const std::string in = args.get("in", "");
  CSMABW_REQUIRE(dir.empty() != in.empty(),
                 "trace_tool: give exactly one of --dir or --in");
  if (!dir.empty()) {
    const std::vector<trace::TraceFile> files = trace::list_traces(dir);
    CSMABW_REQUIRE(!files.empty(), "no .cctrace files under `" + dir + "`");
    return files;
  }
  trace::MappedTraceOptions mopts;
  mopts.load_sidecar = false;  // header only; the engine reopens it
  const trace::MappedTrace trace(in, mopts);
  return {trace::TraceFile{in, trace.meta()}};
}

int cmd_query(const util::Args& args) {
  const std::vector<trace::TraceFile> files = query_files(args);
  const trace::query::QueryPredicate pred =
      trace::query::QueryPredicate::parse(args.get("where", ""));
  const std::unique_ptr<trace::query::Aggregation> agg =
      trace::query::make_aggregation(args.get("agg", "counts"));

  const bool per_file_stats = args.get("stats", false);
  // --stats needs per-unit wall times, which the engine only records
  // with an enabled registry — so --stats force-enables it.
  bench::ObsState obs(args, "trace_tool", per_file_stats);
  std::vector<trace::query::FileScanStats> file_stats;

  trace::query::QueryOptions qopts;
  qopts.pushdown = !args.get("no-pushdown", false);
  qopts.map_opts.use_mmap = !args.get("no-mmap", false);
  qopts.pages_per_unit = args.get("pages-per-unit", 0);
  qopts.metrics = obs.metrics();
  qopts.profiler = obs.profiler();
  if (per_file_stats) {
    qopts.file_stats = &file_stats;
  }
  const exp::Runner runner = bench::runner_from(args);

  const std::int64_t query_start = obs::now_ns();
  const trace::query::ScanStats stats =
      trace::query::run_query(files, pred, *agg, runner, qopts);
  const std::int64_t query_ns = obs::now_ns() - query_start;

  exp::CollectorOptions copts;
  copts.csv_path = args.get("csv", "");
  copts.jsonl_path = args.get("jsonl", "");
  exp::Collector collector(agg->columns(), copts);
  for (const std::vector<exp::Value>& row : agg->rows()) {
    collector.add(row);
  }
  collector.table().print(std::cout);
  std::cout << "# agg " << agg->name() << ", where " << pred.describe()
            << ", " << runner.threads() << " threads\n";
  std::cout << "# scanned " << stats.files << " files, "
            << stats.pages - stats.pages_skipped << "/" << stats.pages
            << " pages (" << stats.pages_skipped
            << " skipped by index), decoded " << stats.events_decoded
            << " events, matched " << stats.events_matched << "\n";
  if (!copts.csv_path.empty()) {
    std::cout << "# csv written: " << copts.csv_path << "\n";
  }
  if (per_file_stats) {
    std::cerr << "# stats: per-file scan accounting (wall sums a file's "
                 "unit scan times; units run concurrently)\n";
    for (std::size_t i = 0; i < file_stats.size(); ++i) {
      const trace::query::FileScanStats& fs = file_stats[i];
      const double wall_s = static_cast<double>(fs.wall_ns) * 1e-9;
      std::cerr << "# stats: " << files[i].path << " pages="
                << fs.pages - fs.pages_skipped << "/" << fs.pages << " ("
                << fs.pages_skipped << " skipped) decoded="
                << fs.events_decoded << " matched=" << fs.events_matched
                << " wall=" << util::Table::format(wall_s * 1e3, 3)
                << "ms eff="
                << util::Table::format(
                       wall_s > 0.0
                           ? static_cast<double>(fs.events_decoded) / wall_s
                           : 0.0,
                       4)
                << " events/s\n";
    }
    const double query_s = static_cast<double>(query_ns) * 1e-9;
    std::cerr << "# stats: total wall="
              << util::Table::format(query_s * 1e3, 3) << "ms eff="
              << util::Table::format(
                     query_s > 0.0
                         ? static_cast<double>(stats.events_decoded) / query_s
                         : 0.0,
                     4)
              << " events/s (" << runner.threads() << " threads)\n";
  }
  obs.finish({}, runner.threads());
  return 0;
}

// ----------------------------------------------------------------- index

int cmd_index(const util::Args& args) {
  std::vector<std::string> paths;
  const std::string dir = args.get("dir", "");
  const std::string in = args.get("in", "");
  CSMABW_REQUIRE(dir.empty() != in.empty(),
                 "trace_tool: give exactly one of --dir or --in");
  if (!dir.empty()) {
    for (const trace::TraceFile& f : trace::list_traces(dir)) {
      paths.push_back(f.path);
    }
    CSMABW_REQUIRE(!paths.empty(), "no .cctrace files under `" + dir + "`");
  } else {
    paths.push_back(in);
  }

  const exp::Runner runner = bench::runner_from(args);
  struct Result {
    std::size_t pages = 0;
    bool embedded = false;
  };
  const std::vector<Result> results =
      runner.map(static_cast<int>(paths.size()), [&](int i) {
        trace::MappedTraceOptions mopts;
        mopts.load_sidecar = false;
        const trace::MappedTrace trace(paths[static_cast<std::size_t>(i)],
                                       mopts);
        Result r;
        r.pages = trace.pages().size();
        if (trace.version() >= 2) {
          r.embedded = true;  // summaries already live in the pages
          return r;
        }
        r.pages = trace::write_sidecar_index(trace);
        return r;
      });
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (results[i].embedded) {
      std::cout << "# " << paths[i] << ": v2, summaries embedded ("
                << results[i].pages << " pages, no sidecar needed)\n";
    } else {
      std::cout << "# " << paths[i] << ": indexed " << results[i].pages
                << " pages -> " << trace::sidecar_index_path(paths[i])
                << "\n";
    }
  }
  return 0;
}

// ---------------------------------------------------------------- filter

int cmd_filter(const util::Args& args) {
  const std::string in_path = required(args, "in");
  const std::string out_path = required(args, "out");

  // The selection is one QueryPredicate (--where, narrowed further by
  // the legacy --station/--kinds flags) so the copy rides the same
  // skip-index pushdown as `query`; --flow stays a post-filter (flows
  // are not summarized per page).
  trace::query::QueryPredicate pred =
      trace::query::QueryPredicate::parse(args.get("where", ""));
  if (args.has("station")) {
    const int station = args.get("station", 0);
    CSMABW_REQUIRE(station >= 0 && station <= 0xffff,
                   "trace_tool: --station out of range 0..65535");
    pred.station_min = pred.station_max =
        static_cast<std::uint16_t>(station);
  }
  if (args.has("kinds")) {
    std::uint16_t mask = 0;
    for (const std::string& name : args.get_strings("kinds", {})) {
      mask = static_cast<std::uint16_t>(
          mask |
          (1u << trace::kind_index(trace::parse_kind(name))));
    }
    pred.kinds &= mask;
  }
  const bool by_flow = args.has("flow");
  const int flow = args.get("flow", 0);

  trace::MappedTraceOptions mopts;
  mopts.use_mmap = !args.get("no-mmap", false);
  const trace::MappedTrace trace(in_path, mopts);
  trace::TraceWriter writer(out_path, trace.meta());
  trace::query::ScanStats stats;
  std::uint64_t kept = 0;
  trace::query::scan_pages(trace, 0, trace.pages().size(), pred,
                           !args.get("no-pushdown", false), &stats,
                           [&](const trace::TraceEvent& e) {
                             if (by_flow && e.flow != flow) {
                               return;
                             }
                             writer.on_event(e);
                             ++kept;
                           });
  writer.close();
  std::cout << "# kept " << kept << " of " << trace.events()
            << " events -> " << out_path << " (" << stats.pages_skipped
            << " of " << stats.pages << " pages skipped by index)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return usage(std::cerr, 2);
  }
  const std::string cmd = argv[1];
  const util::Args args(argc - 1, argv + 1);
  if (cmd == "record") {
    return cmd_record(args);
  }
  if (cmd == "info") {
    return cmd_info(args);
  }
  if (cmd == "replay-stats") {
    return cmd_replay_stats(args);
  }
  if (cmd == "query") {
    return cmd_query(args);
  }
  if (cmd == "index") {
    return cmd_index(args);
  }
  if (cmd == "filter") {
    return cmd_filter(args);
  }
  if (cmd == "--help" || cmd == "-h" || cmd == "help") {
    return usage(std::cout, 0);
  }
  std::cerr << "trace_tool: unknown subcommand `" << cmd << "`\n";
  return usage(std::cerr, 2);
}
