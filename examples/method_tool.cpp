// method_tool: run any registered measurement method over a simulated
// WLAN cell, selected by spec string at the command line.
//
//   $ ./example_method_tool --list
//   $ ./example_method_tool --method='slops:train_length=50' --cross-mbps=4
//   $ ./example_method_tool --method='packet_pair:pairs=200' --seed=7
//
// This is the core::MeasurementMethod API end-to-end: one string picks
// the tool and its options via core::MethodRegistry, every tool runs
// over the same core::ProbeTransport, and every tool reports through the
// same MeasurementReport shape.
#include <iostream>

#include "core/method.hpp"
#include "core/scenario.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace csmabw;
  const util::Args args(argc, argv);

  const core::MethodRegistry& registry = core::MethodRegistry::global();
  if (args.get("list", false)) {
    std::cout << "registered measurement methods:\n";
    for (const std::string& name : registry.names()) {
      std::cout << "  " << name << "\n";
    }
    return 0;
  }

  core::ScenarioConfig cell;
  cell.seed = static_cast<std::uint64_t>(args.get("seed", 1));
  const double cross = args.get("cross-mbps", 4.0);
  for (int k = 0; k < args.get("contenders", 1); ++k) {
    cell.contenders.push_back(core::StationSpec::poisson(BitRate::mbps(cross), 1500));
  }
  const double fifo = args.get("fifo-mbps", 0.0);
  if (fifo > 0.0) {
    cell.fifo_cross = core::StationSpec::poisson(BitRate::mbps(fifo), 1500);
  }

  const std::string spec = args.get("method", "bisection");
  core::SimTransport link(cell);
  const auto method = registry.create(spec);
  std::cout << "running `" << spec << "` (cross " << cross << " Mb/s x "
            << cell.contenders.size() << " contenders, capacity "
            << util::Table::format(cell.phy.saturation_rate(1500).to_mbps(), 3)
            << " Mb/s)...\n";
  const core::MeasurementReport report = method->run(link, cell.seed);

  std::cout << "estimate: "
            << util::Table::format(report.estimate_bps / 1e6, 3)
            << " Mb/s\ntrains sent/lost: " << report.trains_sent << "/"
            << report.trains_lost << ", probes sent: " << report.probes_sent
            << "\n";
  for (const auto& [key, value] : report.metrics) {
    std::cout << "  " << key << " = " << util::Table::format(value, 6)
              << "\n";
  }
  if (!report.curve.points.empty()) {
    util::Table curve({"input_mbps", "output_mbps"});
    for (const auto& p : report.curve.points) {
      curve.add_row({p.input_bps / 1e6, p.output_bps / 1e6});
    }
    curve.print(std::cout);
  }
  return 0;
}
