// model_validation: use the paper's complete model (Section 3.2)
// predictively.
//
//   $ ./model_validation --contender-mbps 3.0 --fifo-mbps 1.0
//
// Measures Bf (the achievable throughput with no FIFO cross-traffic) and
// u_fifo (the FIFO cross-traffic utilization) in two calibration runs,
// predicts the rate response curve of the complete system from Eq. (4)
// and B from Eq. (5), then measures the complete system and reports the
// prediction error at every rate — the workflow a capacity-planning tool
// would follow.
#include <iostream>

#include "core/rate_response.hpp"
#include "core/scenario.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace csmabw;
  const util::Args args(argc, argv);
  const double contender = args.get("contender-mbps", 3.0);
  const double fifo = args.get("fifo-mbps", 1.0);
  const TimeNs horizon = TimeNs::sec(9);
  const TimeNs warm = TimeNs::sec(1);

  // Calibration run 1: no FIFO cross-traffic; a saturating probe
  // measures Bf.
  core::ScenarioConfig base;
  base.seed = static_cast<std::uint64_t>(args.get("seed", 11));
  base.contenders.push_back(core::StationSpec::poisson(BitRate::mbps(contender), 1500));
  const double bf = core::Scenario(base)
                        .run_steady_state(BitRate::mbps(16.0), 1500,
                                          horizon, warm)
                        .probe.to_mbps();

  // Calibration run 2: the FIFO flow alone on the probing station gives
  // u_fifo = its throughput share of Bf (it uses the station's capacity
  // that fraction of the time).
  core::ScenarioConfig with_fifo = base;
  with_fifo.fifo_cross = core::StationSpec::poisson(BitRate::mbps(fifo), 1500);
  const double u_fifo = fifo / bf;

  const core::CompleteCurve model{bf * 1e6, u_fifo};
  std::cout << "calibrated: Bf = " << util::Table::format(bf, 3)
            << " Mb/s, u_fifo = " << util::Table::format(u_fifo, 3)
            << "  =>  predicted B = "
            << util::Table::format(model.achievable_bps() / 1e6, 3)
            << " Mb/s (Eq. 5)\n\n";

  // Validation: measure the complete system against Eq. (4).
  core::Scenario sc(with_fifo);
  util::Table table(
      {"input_mbps", "measured_mbps", "eq4_predicted_mbps", "error_mbps"});
  double worst = 0.0;
  for (double ri = 1.0; ri <= args.get("max-mbps", 9.0) + 1e-9; ri += 1.0) {
    const auto r =
        sc.run_steady_state(BitRate::mbps(ri), 1500, horizon, warm);
    const double predicted = model.response_bps(ri * 1e6) / 1e6;
    const double err = r.probe.to_mbps() - predicted;
    worst = std::max(worst, std::abs(err));
    table.add_row({ri, r.probe.to_mbps(), predicted, err});
  }
  table.print(std::cout);
  std::cout << "\nworst-case prediction error: "
            << util::Table::format(worst, 3) << " Mb/s\n";
  return worst > 0.5 ? 1 : 0;
}
