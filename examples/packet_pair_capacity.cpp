// packet_pair_capacity: the classic packet-pair capacity probe, and why
// it misleads on CSMA/CA links.
//
//   $ ./packet_pair_capacity --pairs 200
//
// Sends back-to-back packet pairs over three links: an uncontended
// simulated WLAN, the same WLAN with contending cross-traffic, and (if
// sockets are available) a real UDP loopback path.  On the uncontended
// link the pair reads the capacity; under contention it chases the
// achievable throughput and overestimates it (paper Section 7.3).
#include <iostream>

#include "core/packet_pair.hpp"
#include "core/scenario.hpp"
#include "net/udp_probe.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace csmabw;
  const util::Args args(argc, argv);
  const int pairs = args.get("pairs", 200);

  util::Table table({"link", "pair_estimate_mbps", "note"});

  // 1. Uncontended WLAN: the pair dispersion equals one service cycle.
  {
    core::ScenarioConfig cell;
    cell.seed = 1;
    core::SimTransport link(cell);
    const auto r = core::packet_pair_estimate(link, 1500, pairs);
    table.add_row({std::string("wlan idle"),
                   util::Table::format(r.estimate_bps / 1e6, 3),
                   "~= capacity " +
                       util::Table::format(
                           cell.phy.saturation_rate(1500).to_mbps(), 3) +
                       " Mb/s"});
  }

  // 2. Contended WLAN: estimate drops toward (and overshoots) the fair
  // share, far below the unchanged capacity.
  {
    core::ScenarioConfig cell;
    cell.seed = 2;
    cell.contenders.push_back(core::StationSpec::poisson(BitRate::mbps(4.0), 1500));
    core::SimTransport link(cell);
    const auto r = core::packet_pair_estimate(link, 1500, pairs);
    table.add_row({std::string("wlan + 4 Mb/s contender"),
                   util::Table::format(r.estimate_bps / 1e6, 3),
                   "reads the achievable throughput, not capacity"});
  }

  // 3. Real sockets over loopback (the testbed-substitute code path).
  try {
    net::UdpLoopbackTransport link(/*session=*/7);
    const auto r = core::packet_pair_estimate(link, 1500, std::min(pairs, 50));
    table.add_row({std::string("udp loopback"),
                   util::Table::format(r.estimate_bps / 1e6, 1),
                   "kernel loopback path (no MAC contention)"});
  } catch (const std::exception& e) {
    table.add_row({std::string("udp loopback"), std::string("n/a"),
                   std::string("sockets unavailable: ") + e.what()});
  }

  table.print(std::cout);
  return 0;
}
