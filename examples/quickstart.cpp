// Quickstart: measure the achievable throughput of a contended CSMA/CA
// link with the high-level estimator.
//
//   $ ./quickstart
//
// Builds a simulated 802.11b cell (one station sending Poisson
// cross-traffic), runs the dispersion-based estimation tool over it, and
// prints the steady-state achievable throughput — the metric the paper
// shows bandwidth tools actually measure on CSMA/CA links (not the
// available bandwidth).
#include <cstdio>

#include "core/estimator.hpp"
#include "core/scenario.hpp"

int main() {
  using namespace csmabw;

  // A WLAN cell: 802.11b at 11 Mb/s, one contending station offering
  // 4 Mb/s of Poisson cross-traffic with 1500-byte packets.
  core::ScenarioConfig cell;
  cell.seed = 42;
  cell.contenders.push_back(core::StationSpec::poisson(BitRate::mbps(4.0), 1500));

  // The estimator drives any ProbeTransport; here the DCF simulator.
  core::SimTransport link(cell);

  core::EstimatorOptions options;
  options.train_length = 40;   // packets per probe train
  options.trains_per_rate = 5; // trains averaged per probing rate
  core::BandwidthEstimator tool(link, options);

  const double achievable = tool.estimate_achievable_bps();

  const double capacity = cell.phy.saturation_rate(1500).to_bps();
  std::printf("link capacity (C):          %.2f Mb/s\n", capacity / 1e6);
  std::printf("cross traffic:              4.00 Mb/s\n");
  std::printf("available bandwidth (A):    %.2f Mb/s\n",
              (capacity - 4e6) / 1e6);
  std::printf("measured achievable (B):    %.2f Mb/s\n", achievable / 1e6);
  std::printf("\nNote how B != A: on CSMA/CA links dispersion tools measure\n"
              "the fair share (achievable throughput), not the leftover\n"
              "capacity — the paper's central observation.\n");
  return 0;
}
