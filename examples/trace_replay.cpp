// Record once, analyze forever: records a small fig06-style ensemble
// (paper_fig2 scenario) as binary event traces, then recomputes the
// transient statistics offline from the trace files alone and checks
// they match the live run bit for bit.
//
//   example_trace_replay [--reps=16] [--train=60] [--dir=trace-demo]
//
// The same trace files answer questions the live run never asked — the
// demo also counts collisions and backoff freezes per station straight
// from the event stream.
#include <array>
#include <cstdio>
#include <filesystem>
#include <iostream>

#include "core/scenario.hpp"
#include "exp/engine.hpp"
#include "trace/reader.hpp"
#include "trace/replay.hpp"
#include "trace/writer.hpp"
#include "util/cli.hpp"

using namespace csmabw;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int reps = args.get("reps", 16);
  const int train = args.get("train", 60);
  const std::string dir = args.get("dir", "trace-demo");

  // Stale traces from an earlier (larger) demo run would mix into the
  // replay; this directory is ours, so start it fresh.
  std::filesystem::remove_all(dir);

  // --- live: run the ensemble with a trace writer tapped in -------------
  exp::SweepSpec spec;
  spec.scenarios = {"paper_fig2"};
  spec.train_lengths = {train};
  spec.probe_mbps = {5.0};
  spec.repetitions = reps;
  spec.campaign_seed = 6;
  spec.trace_dir = dir;
  const exp::Campaign campaign(spec);
  exp::TrainCampaignConfig tcfg;
  tcfg.ks_prefix = 1;
  const auto live = exp::run_train_campaign(campaign, tcfg, exp::Runner());
  const exp::TrainCellStats& live_cell = live.front();

  std::cout << "# recorded " << reps << " repetitions to " << dir << "/\n";
  std::cout << "live   mean access delay: packet 1 = "
            << live_cell.analyzer.mean_at(0) * 1e3 << " ms, steady = "
            << live_cell.analyzer.steady_mean() * 1e3 << " ms\n";

  // --- offline: recompute the same statistics from the files alone ------
  trace::TrainReplayStats replay(
      exp::train_transient_config(train, tcfg));
  std::array<std::uint64_t, trace::kEventKindCount> counts{};
  for (const trace::TraceFile& file : trace::list_traces(dir)) {
    trace::TraceReader reader(file.path);
    trace::PacketReconstructor rec;
    trace::TraceEvent e;
    while (reader.next(&e)) {
      rec.on_event(e);
    }
    for (int k = 0; k < trace::kEventKindCount; ++k) {
      counts[static_cast<std::size_t>(k)] +=
          rec.counts()[static_cast<std::size_t>(k)];
    }
    replay.add(trace::replay_train(rec.packets(), core::kProbeFlow));
  }
  replay.finish();

  std::cout << "replay mean access delay: packet 1 = "
            << replay.analyzer().mean_at(0) * 1e3 << " ms, steady = "
            << replay.analyzer().steady_mean() * 1e3 << " ms\n";
  const bool identical =
      replay.analyzer().mean_at(0) == live_cell.analyzer.mean_at(0) &&
      replay.analyzer().steady_mean() == live_cell.analyzer.steady_mean() &&
      replay.output_gap_s().mean() == live_cell.output_gap_s.mean();
  std::cout << "bit-identical to the live run: "
            << (identical ? "yes" : "NO") << "\n";

  // A question the live run never asked, answered from the same files:
  std::cout << "# offline extras: " << counts[trace::kind_index(
                   trace::EventKind::kCollision)]
            << " channel collisions, "
            << counts[trace::kind_index(trace::EventKind::kBackoffFreeze)]
            << " backoff freezes across " << reps << " repetitions\n";
  return identical ? 0 : 1;
}
