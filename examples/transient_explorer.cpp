// transient_explorer: characterize the access-delay transient of a
// configurable CSMA/CA scenario and derive practical probing advice.
//
//   $ ./transient_explorer --probe-mbps 5 --cross-mbps 4 --reps 800
//
// Runs the Section 4 ensemble methodology: repeats a probing sequence,
// reports the per-index mean access delay and KS statistic, the
// tolerance-based transient length (the paper's Fig 10 metric), and the
// MSER-2 truncation point — i.e. how many leading probes a measurement
// tool should discard in this scenario.
#include <iostream>

#include "core/mser_correction.hpp"
#include "core/scenario.hpp"
#include "core/transient.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace csmabw;
  const util::Args args(argc, argv);

  core::ScenarioConfig cell;
  cell.seed = static_cast<std::uint64_t>(args.get("seed", 5));
  cell.contenders.push_back(core::StationSpec::poisson(
      BitRate::mbps(args.get("cross-mbps", 4.0)), 1500));

  const int train = args.get("train", 400);
  const int reps = args.get("reps", 800);
  traffic::TrainSpec spec;
  spec.n = train;
  spec.size_bytes = args.get("size", 1500);
  spec.gap =
      BitRate::mbps(args.get("probe-mbps", 5.0)).gap_for(spec.size_bytes);

  core::Scenario sc(cell);
  core::TransientConfig tc;
  tc.train_length = train;
  tc.ks_prefix = args.get("show", 40);
  tc.steady_tail = train / 2;
  core::TransientAnalyzer ta(tc);
  core::EnsembleGapCorrector corrector(train);

  std::cout << "running " << reps << " repetitions of a " << train
            << "-packet train at " << args.get("probe-mbps", 5.0)
            << " Mb/s...\n";
  for (int rep = 0; rep < reps; ++rep) {
    const core::TrainRun run =
        sc.run_train(spec, static_cast<std::uint64_t>(rep));
    if (run.any_dropped) {
      continue;
    }
    ta.add_repetition(run.access_delays_s());
    std::vector<double> recv;
    for (const auto& p : run.packets) {
      recv.push_back(p.depart_time.to_seconds());
    }
    corrector.add_train(recv);
  }

  util::Table table({"packet", "mean_delay_ms", "vs_steady", "ks", "ks_95"});
  for (int i = 0; i < tc.ks_prefix; ++i) {
    table.add_row({static_cast<double>(i + 1), ta.mean_at(i) * 1e3,
                   ta.mean_at(i) / ta.steady_mean(), ta.ks_at(i),
                   ta.ks_threshold_at(i)});
  }
  table.print(std::cout);

  std::cout << "\nsteady-state mean access delay: "
            << util::Table::format(ta.steady_mean() * 1e3, 4) << " ms\n";
  std::cout << "transient length @ tolerance 0.10: "
            << ta.transient_length(0.1) << " packets\n";
  std::cout << "transient length @ tolerance 0.01: "
            << ta.transient_length(0.01) << " packets\n";
  const core::CorrectedGap g = corrector.corrected(2);
  std::cout << "MSER-2 would truncate the first " << g.truncated
            << " inter-arrival gaps\n";
  std::cout << "advice: discard the first "
            << std::max(ta.transient_length(0.1), g.truncated)
            << " probes (or send that many extra) in this scenario\n";
  return 0;
}
