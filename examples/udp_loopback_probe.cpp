// udp_loopback_probe: run the real-socket prober end to end.
//
//   $ ./udp_loopback_probe --train 50 --rate-mbps 100
//
// Exercises the full measurement pipeline on real UDP sockets over the
// loopback interface: wire-format probe packets, paced transmission with
// monotonic timestamps, receive-side reassembly, dispersion and MSER
// analysis.  This is the code a deployment would point at a WLAN path
// (the paper's testbed role); here the link under test is the kernel
// loopback queue.
#include <cstdio>
#include <iostream>

#include "core/mser_correction.hpp"
#include "net/udp_probe.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace csmabw;
  const util::Args args(argc, argv);

  traffic::TrainSpec spec;
  spec.n = args.get("train", 50);
  spec.size_bytes = args.get("size", 1200);
  spec.gap = BitRate::mbps(args.get("rate-mbps", 100.0))
                 .gap_for(spec.size_bytes);

  try {
    net::UdpLoopbackTransport link(/*session=*/1);
    const core::TrainResult r = link.send_train(spec);

    int lost = 0;
    for (const auto& p : r.packets) {
      lost += p.lost ? 1 : 0;
    }
    std::printf("train of %d packets (%d bytes each): %d lost\n", spec.n,
                spec.size_bytes, lost);
    if (!r.complete()) {
      std::printf("train incomplete; try a lower --rate-mbps\n");
      return 1;
    }

    const double gap = r.output_gap_s();
    std::printf("input gap:  %.1f us (%.1f Mb/s)\n", spec.gap.to_us(),
                spec.input_rate_bps() / 1e6);
    std::printf("output gap: %.1f us (%.1f Mb/s)\n", gap * 1e6,
                spec.size_bytes * 8 / gap / 1e6);

    const core::CorrectedGap c = core::mser_corrected_gap(
        r.receive_times_s(), 2);
    std::printf("MSER-2: truncated %d gaps, corrected rate %.1f Mb/s\n",
                c.truncated, spec.size_bytes * 8 / c.corrected_gap_s / 1e6);
    return 0;
  } catch (const std::exception& e) {
    std::printf("sockets unavailable in this environment: %s\n", e.what());
    return 0;  // not an error for the example suite
  }
}
