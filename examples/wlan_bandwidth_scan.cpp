// wlan_bandwidth_scan: a pathload-style rate-response scanner for
// CSMA/CA links, with optional MSER-2 transient correction.
//
//   $ ./wlan_bandwidth_scan --cross-mbps 4.5 --fifo-mbps 1.0
//        [--train 20] [--trains-per-rate 20] [--mser true]
//
// Sweeps probing rates over a configurable simulated WLAN cell, prints
// the measured rate response curve, and fits the achievable throughput.
// This is the workload the paper's Figs 13/15/17 study: short trains
// without correction overestimate B; --mser true tightens the estimate.
#include <iostream>
#include <vector>

#include "core/estimator.hpp"
#include "core/scenario.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace csmabw;
  const util::Args args(argc, argv);

  core::ScenarioConfig cell;
  cell.seed = static_cast<std::uint64_t>(args.get("seed", 1));
  cell.contenders.push_back(core::StationSpec::poisson(
      BitRate::mbps(args.get("cross-mbps", 4.5)), 1500));
  const double fifo = args.get("fifo-mbps", 0.0);
  if (fifo > 0.0) {
    cell.fifo_cross = core::StationSpec::poisson(BitRate::mbps(fifo), 1500);
  }

  core::SimTransport link(cell);
  core::EstimatorOptions opt;
  opt.train_length = args.get("train", 20);
  opt.trains_per_rate = args.get("trains-per-rate", 20);
  opt.mser_correction = args.get("mser", false);
  core::BandwidthEstimator tool(link, opt);

  std::vector<double> rates;
  for (double r = args.get("min-mbps", 0.5);
       r <= args.get("max-mbps", 10.0) + 1e-9;
       r += args.get("step-mbps", 0.5)) {
    rates.push_back(r * 1e6);
  }

  std::cout << "scanning " << rates.size() << " rates with trains of "
            << opt.train_length << " packets"
            << (opt.mser_correction ? " (MSER-2 corrected)" : "") << "...\n";

  const core::SweepResult sweep = tool.sweep(rates);

  util::Table table({"input_mbps", "output_mbps", "ratio"});
  for (const auto& p : sweep.curve.points) {
    table.add_row({p.input_bps / 1e6, p.output_bps / 1e6,
                   p.output_bps / p.input_bps});
  }
  table.print(std::cout);

  std::cout << "\nfitted achievable throughput B = "
            << util::Table::format(sweep.fitted_achievable_bps / 1e6, 3)
            << " Mb/s (" << sweep.trains_lost << " trains lost)\n";
  std::cout << "link capacity C = "
            << util::Table::format(
                   cell.phy.saturation_rate(1500).to_mbps(), 3)
            << " Mb/s\n";
  return 0;
}
