#include "core/bounds.hpp"

#include <limits>

#include "util/require.hpp"

namespace csmabw::core {

MuSummary summarize_mu(std::span<const double> mu_mean_s) {
  CSMABW_REQUIRE(mu_mean_s.size() >= 2, "need at least two packets");
  MuSummary m;
  m.n = static_cast<int>(mu_mean_s.size());
  const double nm1 = static_cast<double>(m.n - 1);
  double total = 0.0;
  for (double v : mu_mean_s) {
    CSMABW_REQUIRE(v >= 0.0, "access delays must be non-negative");
    total += v;
  }
  m.mean_all = total / static_cast<double>(m.n);
  m.s1 = (total - mu_mean_s.back()) / nm1;
  m.s2 = (total - mu_mean_s.front()) / nm1;
  m.kappa_mu = (mu_mean_s.back() - mu_mean_s.front()) / nm1;
  return m;
}

GapBounds expected_gap_bounds(const MuSummary& mu, double gap_s, double u_fifo,
                              double kappa_w) {
  CSMABW_REQUIRE(gap_s >= 0.0, "input gap must be non-negative");
  CSMABW_REQUIRE(u_fifo >= 0.0 && u_fifo < 1.0, "u_fifo must be in [0, 1)");
  const double kappa = mu.kappa_mu + kappa_w;

  GapBounds b;
  // Lower bound, Eq. (29): two regions split at (S2 - kappa)/(1 - u).
  const double lower_knee = (mu.s2 - kappa) / (1.0 - u_fifo);
  if (gap_s >= lower_knee) {
    b.lower_s = gap_s + kappa;
  } else {
    b.lower_s = mu.s2 + u_fifo * gap_s;
  }

  // Upper bound, Eq. (30): three regions.  With u_fifo == 0 the first
  // region (gI >= (S1 + kappa)/u) is empty.
  const double upper_knee =
      u_fifo > 0.0 ? (mu.s1 + kappa) / u_fifo
                   : std::numeric_limits<double>::infinity();
  if (gap_s >= upper_knee) {
    b.upper_s = gap_s + mu.s1 + kappa;
  } else if (gap_s >= mu.s2) {
    b.upper_s = (u_fifo + 1.0) * gap_s;
  } else {
    b.upper_s = mu.s2 + u_fifo * gap_s;
  }
  return b;
}

GapBounds expected_gap_bounds_nofifo(const MuSummary& mu, double gap_s) {
  return expected_gap_bounds(mu, gap_s, /*u_fifo=*/0.0, /*kappa_w=*/0.0);
}

double train_achievable_bps(int size_bytes, const MuSummary& mu,
                            double u_fifo) {
  CSMABW_REQUIRE(size_bytes > 0, "packet size must be positive");
  CSMABW_REQUIRE(u_fifo >= 0.0 && u_fifo < 1.0, "u_fifo must be in [0, 1)");
  CSMABW_REQUIRE(mu.mean_all > 0.0, "mean access delay must be positive");
  return size_bytes * 8.0 * (1.0 - u_fifo) / mu.mean_all;
}

}  // namespace csmabw::core
