#pragma once

#include <span>

namespace csmabw::core {

/// Summary statistics of the per-index mean access delay sequence
/// {E[mu_i], i = 1..n} used throughout Section 6.  All values in seconds.
struct MuSummary {
  int n = 0;
  /// S1 = (1/(n-1)) * sum_{i=1}^{n-1} E[mu_i]
  double s1 = 0.0;
  /// S2 = (1/(n-1)) * sum_{i=2}^{n} E[mu_i]
  double s2 = 0.0;
  /// kappa(n)'s access-delay part: (E[mu_n] - E[mu_1]) / (n-1)
  double kappa_mu = 0.0;
  /// (1/n) * sum_{i=1}^{n} E[mu_i] — enters Eq. (31).
  double mean_all = 0.0;
};

/// Builds the summary from the ensemble means of the access delay of each
/// packet index (length >= 2).
[[nodiscard]] MuSummary summarize_mu(std::span<const double> mu_mean_s);

/// Bounds on the expected output dispersion E[gO] (seconds).
struct GapBounds {
  double lower_s = 0.0;
  double upper_s = 0.0;

  /// The paper's per-region bounds (Eqs. 29/30 and 33/34) are derived
  /// independently and can cross by O(kappa) at high probing rates (the
  /// lower bound gI + kappa exceeds the region-2 upper bound gI).  This
  /// helper widens the interval so it is always consistent; tests check
  /// measurements against the reconciled interval.
  [[nodiscard]] GapBounds reconciled() const {
    if (lower_s <= upper_s) {
      return *this;
    }
    return GapBounds{upper_s, lower_s};
  }
};

/// Eqs. (29) and (30): bounds on E[gO] for input gap `gap_s`, FIFO
/// cross-traffic utilization `u_fifo` in [0, 1), and workload drift term
/// `kappa_w = E[W(a_n) - W(a_1)]/(n-1)` (0 in stationarity).
/// kappa(n) = kappa_w + mu.kappa_mu.
[[nodiscard]] GapBounds expected_gap_bounds(const MuSummary& mu, double gap_s,
                                            double u_fifo,
                                            double kappa_w = 0.0);

/// Eqs. (33) and (34): the no-FIFO-cross-traffic special case (u_fifo=0,
/// kappa_w=0).
[[nodiscard]] GapBounds expected_gap_bounds_nofifo(const MuSummary& mu,
                                                   double gap_s);

/// Eq. (31)/(36): achievable throughput of an n-packet train,
///   L/B = mean(E[mu]) / (1 - u_fifo)  =>  B = 8 L (1 - u_fifo) / mean.
/// `size_bytes` is the probe packet size L.
[[nodiscard]] double train_achievable_bps(int size_bytes, const MuSummary& mu,
                                          double u_fifo = 0.0);

}  // namespace csmabw::core
