#include "core/estimator.hpp"

#include "core/fitting.hpp"
#include "core/mser_correction.hpp"
#include "util/require.hpp"

namespace csmabw::core {

void EstimatorOptions::validate() const {
  CSMABW_REQUIRE(train_length >= 3, "trains must have >= 3 packets");
  CSMABW_REQUIRE(size_bytes > 0, "probe size must be positive");
  CSMABW_REQUIRE(trains_per_rate >= 1, "need >= 1 train per rate");
  CSMABW_REQUIRE(min_rate_bps > 0.0 && max_rate_bps > min_rate_bps,
                 "invalid rate range");
  CSMABW_REQUIRE(max_iterations >= 1, "need >= 1 bisection iteration");
  CSMABW_REQUIRE(rel_tol > 0.0 && rel_tol < 1.0, "rel_tol must be in (0, 1)");
  CSMABW_REQUIRE(mser_m >= 1, "mser_m must be >= 1");
}

BandwidthEstimator::BandwidthEstimator(ProbeTransport& transport,
                                       EstimatorOptions options)
    : transport_(transport), opt_(options) {
  opt_.validate();
}

RateResponsePoint BandwidthEstimator::measure_rate(double input_bps) {
  CSMABW_REQUIRE(input_bps > 0.0, "input rate must be positive");
  traffic::TrainSpec spec;
  spec.n = opt_.train_length;
  spec.size_bytes = opt_.size_bytes;
  spec.gap = BitRate::bps(input_bps).gap_for(opt_.size_bytes);

  // MSER truncation works on the per-index mean gap series across the
  // whole train sequence (Fig 17): single-train gap series are too noisy
  // for the heuristic to separate the transient from backoff randomness.
  EnsembleGapCorrector corrector(spec.n);
  double total_gap = 0.0;
  int used = 0;
  for (int t = 0; t < opt_.trains_per_rate; ++t) {
    const TrainResult train = transport_.send_train(spec);
    ++trains_sent_;
    if (!train.complete()) {
      ++trains_lost_;
      continue;
    }
    if (opt_.mser_correction) {
      corrector.add_train(train.receive_times_s());
    } else {
      total_gap += train.output_gap_s();
    }
    ++used;
  }
  CSMABW_REQUIRE(used > 0, "every train at this rate was lost");

  RateResponsePoint p;
  p.input_bps = input_bps;
  p.output_bps =
      opt_.mser_correction
          ? opt_.size_bytes * 8.0 / corrector.corrected(opt_.mser_m).corrected_gap_s
          : opt_.size_bytes * 8.0 * used / total_gap;
  return p;
}

SweepResult BandwidthEstimator::sweep(const std::vector<double>& rates_bps) {
  CSMABW_REQUIRE(rates_bps.size() >= 2, "sweep needs >= 2 rates");
  SweepResult result;
  for (double r : rates_bps) {
    result.curve.points.push_back(measure_rate(r));
  }
  result.fitted_achievable_bps =
      fit_achievable_throughput_bps(result.curve.points);
  result.trains_lost = trains_lost_;
  return result;
}

RateBracket BandwidthEstimator::bisect_achievable() {
  double lo = opt_.min_rate_bps;
  double hi = opt_.max_rate_bps;
  // Invariant: rates <= lo follow ro ~= ri; rates >= hi are distorted.
  for (int it = 0; it < opt_.max_iterations; ++it) {
    const double mid = 0.5 * (lo + hi);
    const RateResponsePoint p = measure_rate(mid);
    if (p.output_bps / p.input_bps >= 1.0 - opt_.rel_tol) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return RateBracket{lo, hi};
}

double BandwidthEstimator::estimate_achievable_bps() {
  return bisect_achievable().midpoint_bps();
}

}  // namespace csmabw::core
