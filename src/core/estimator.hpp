#pragma once

#include <vector>

#include "core/rate_response.hpp"
#include "core/transport.hpp"

namespace csmabw::core {

/// Options of the high-level achievable-throughput estimation tool.
struct EstimatorOptions {
  int train_length = 20;
  int size_bytes = 1500;
  /// Trains averaged per probing rate.
  int trains_per_rate = 10;
  /// Transient truncation (Section 7.4): apply MSER-m to each train's
  /// inter-arrival series before averaging.
  bool mser_correction = false;
  int mser_m = 2;
  /// Adaptive search range and termination.
  double min_rate_bps = 250e3;
  double max_rate_bps = 12e6;
  int max_iterations = 12;
  /// ro/ri >= 1 - rel_tol counts as "output follows input".
  double rel_tol = 0.05;

  /// Throws util::PreconditionError on inconsistent options.
  void validate() const;
};

/// Final bisection bracket of the adaptive search.
struct RateBracket {
  double low_bps = 0.0;
  double high_bps = 0.0;

  [[nodiscard]] double midpoint_bps() const {
    return 0.5 * (low_bps + high_bps);
  }
};

/// Result of a rate sweep.
struct SweepResult {
  RateResponseCurve curve;
  /// Achievable throughput fitted to the curve (Eq. 3 model).
  double fitted_achievable_bps = 0.0;
  /// Trains discarded because of losses.
  int trains_lost = 0;
};

/// Active bandwidth measurement tool for CSMA/CA links.
///
/// Runs the classic dispersion methodology over any ProbeTransport:
/// probe trains paced at an input rate, output rate inferred from the
/// output dispersion (ro = L/gO), and the achievable throughput located
/// either by sweeping a rate grid or by adaptive bisection on the
/// condition ro/ri ~= 1.  Optional MSER-based transient truncation
/// implements the paper's accuracy improvement.
class BandwidthEstimator {
 public:
  BandwidthEstimator(ProbeTransport& transport, EstimatorOptions options);

  /// Measures L/E[gO] at one input rate.
  [[nodiscard]] RateResponsePoint measure_rate(double input_bps);

  /// Sweeps the given rate grid (bits per second) and fits B.
  [[nodiscard]] SweepResult sweep(const std::vector<double>& rates_bps);

  /// Adaptive bisection for the achievable throughput: the largest rate
  /// still forwarded undistorted (Eq. 2).  Returns the final bracket;
  /// its midpoint is the point estimate.
  [[nodiscard]] RateBracket bisect_achievable();

  /// Convenience: `bisect_achievable().midpoint_bps()`.
  [[nodiscard]] double estimate_achievable_bps();

  [[nodiscard]] int trains_sent() const { return trains_sent_; }
  [[nodiscard]] int trains_lost() const { return trains_lost_; }

 private:
  ProbeTransport& transport_;
  EstimatorOptions opt_;
  int trains_sent_ = 0;
  int trains_lost_ = 0;
};

}  // namespace csmabw::core
