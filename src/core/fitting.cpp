#include "core/fitting.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/require.hpp"

namespace csmabw::core {

namespace {

double sse_wlan(std::span<const RateResponsePoint> points, double b) {
  double sse = 0.0;
  for (const auto& p : points) {
    const double m = wlan_rate_response_bps(p.input_bps, b);
    sse += (p.output_bps - m) * (p.output_bps - m);
  }
  return sse;
}

double sse_fifo(std::span<const RateResponsePoint> points, double c,
                double a) {
  double sse = 0.0;
  for (const auto& p : points) {
    const double m = fifo_rate_response_bps(p.input_bps, c, a);
    sse += (p.output_bps - m) * (p.output_bps - m);
  }
  return sse;
}

/// Minimizes f over [lo, hi] by iterated grid refinement.
template <typename F>
double grid_minimize(F f, double lo, double hi, int grid, int rounds) {
  double best_x = lo;
  double best_f = std::numeric_limits<double>::infinity();
  for (int r = 0; r < rounds; ++r) {
    const double step = (hi - lo) / grid;
    for (int i = 0; i <= grid; ++i) {
      const double x = lo + i * step;
      const double v = f(x);
      if (v < best_f) {
        best_f = v;
        best_x = x;
      }
    }
    lo = std::max(lo, best_x - step);
    hi = best_x + step;
  }
  return best_x;
}

}  // namespace

double fit_achievable_throughput_bps(
    std::span<const RateResponsePoint> points) {
  CSMABW_REQUIRE(points.size() >= 2, "need at least two points to fit");
  double max_out = 0.0;
  for (const auto& p : points) {
    max_out = std::max(max_out, p.output_bps);
  }
  CSMABW_REQUIRE(max_out > 0.0, "all outputs are zero");
  return grid_minimize([&](double b) { return sse_wlan(points, b); },
                       /*lo=*/0.0, /*hi=*/1.5 * max_out, /*grid=*/200,
                       /*rounds=*/4);
}

FifoFit fit_fifo_curve(std::span<const RateResponsePoint> points) {
  CSMABW_REQUIRE(points.size() >= 3, "need at least three points to fit");
  double max_out = 0.0;
  for (const auto& p : points) {
    max_out = std::max(max_out, p.output_bps);
  }
  CSMABW_REQUIRE(max_out > 0.0, "all outputs are zero");

  // Coarse joint grid, then alternate 1-D refinements.
  double best_c = max_out;
  double best_a = max_out / 2;
  double best = std::numeric_limits<double>::infinity();
  const double c_hi = 3.0 * max_out;
  for (int i = 1; i <= 40; ++i) {
    const double c = max_out + (c_hi - max_out) * i / 40.0;
    for (int j = 0; j <= 40; ++j) {
      // min() guards the j == 40 case: c*40/40.0 can round one ulp above c.
      const double a = std::min(c * j / 40.0, c);
      const double v = sse_fifo(points, c, a);
      if (v < best) {
        best = v;
        best_c = c;
        best_a = a;
      }
    }
  }
  for (int round = 0; round < 6; ++round) {
    best_c = grid_minimize(
        [&](double c) { return sse_fifo(points, c, std::min(best_a, c)); },
        std::max(max_out, best_c * 0.8), best_c * 1.2, 60, 2);
    best_a = grid_minimize(
        [&](double a) { return sse_fifo(points, best_c, std::min(a, best_c)); },
        0.0, best_c, 60, 2);
    best_a = std::min(best_a, best_c);
  }

  FifoFit fit;
  fit.capacity_bps = best_c;
  fit.available_bps = best_a;
  fit.rmse_bps = std::sqrt(sse_fifo(points, best_c, best_a) /
                           static_cast<double>(points.size()));
  return fit;
}

double curve_rmse_bps(std::span<const RateResponsePoint> points,
                      double (*model)(double, double, double), double p1,
                      double p2) {
  CSMABW_REQUIRE(!points.empty(), "no points");
  CSMABW_REQUIRE(model != nullptr, "null model");
  double sse = 0.0;
  for (const auto& p : points) {
    const double m = model(p.input_bps, p1, p2);
    sse += (p.output_bps - m) * (p.output_bps - m);
  }
  return std::sqrt(sse / static_cast<double>(points.size()));
}

}  // namespace csmabw::core
