#pragma once

#include <span>

#include "core/rate_response.hpp"

namespace csmabw::core {

/// Least-squares fit of the WLAN rate response model ro = min(ri, B)
/// (Eq. 3) to measured points; returns the fitted achievable throughput
/// B in bits per second.  This is the "raw-socket fit" a deployable tool
/// applies to noisy measurements.
[[nodiscard]] double fit_achievable_throughput_bps(
    std::span<const RateResponsePoint> points);

/// Result of fitting the FIFO model (Eq. 1).
struct FifoFit {
  double capacity_bps = 0.0;
  double available_bps = 0.0;
  double rmse_bps = 0.0;
};

/// Least-squares fit of Eq. (1) over (C, A); coarse grid search refined
/// by coordinate descent.  Needs points on both sides of the knee to be
/// well-conditioned.
[[nodiscard]] FifoFit fit_fifo_curve(std::span<const RateResponsePoint> points);

/// Root-mean-square error of a model curve against measured points.
[[nodiscard]] double curve_rmse_bps(std::span<const RateResponsePoint> points,
                                    double (*model)(double ri, double p1,
                                                    double p2),
                                    double p1, double p2);

}  // namespace csmabw::core
