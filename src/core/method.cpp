#include "core/method.hpp"

#include <utility>

#include "core/scenario.hpp"
#include "util/require.hpp"

namespace csmabw::core {

bool MeasurementReport::has_metric(std::string_view name) const {
  for (const auto& [key, value] : metrics) {
    if (key == name) {
      return true;
    }
  }
  return false;
}

double MeasurementReport::metric(std::string_view name) const {
  for (const auto& [key, value] : metrics) {
    if (key == name) {
      return value;
    }
  }
  throw util::PreconditionError("report of method `" + method +
                                "` has no metric `" + std::string(name) +
                                "`");
}

// ------------------------------------------------------------ train_sweep

TrainSweepMethod::TrainSweepMethod(EstimatorOptions options, int grid_points)
    : opt_(options), grid_points_(grid_points) {
  opt_.validate();
  CSMABW_REQUIRE(grid_points_ >= 2, "train_sweep needs a grid of >= 2 rates");
}

MeasurementReport TrainSweepMethod::run(ProbeTransport& transport,
                                        std::uint64_t seed) {
  (void)seed;  // no method-internal randomness
  std::vector<double> rates;
  rates.reserve(static_cast<std::size_t>(grid_points_));
  const double step = (opt_.max_rate_bps - opt_.min_rate_bps) /
                      static_cast<double>(grid_points_ - 1);
  for (int i = 0; i < grid_points_; ++i) {
    rates.push_back(opt_.min_rate_bps + step * i);
  }

  BandwidthEstimator estimator(transport, opt_);
  const SweepResult sweep = estimator.sweep(rates);

  MeasurementReport report;
  report.method = name();
  report.estimate_bps = sweep.fitted_achievable_bps;
  report.trains_sent = estimator.trains_sent();
  report.trains_lost = estimator.trains_lost();
  report.probes_sent = estimator.trains_sent() * opt_.train_length;
  report.curve = sweep.curve;
  report.metrics = {{"grid_points", static_cast<double>(grid_points_)}};
  return report;
}

// -------------------------------------------------------------- bisection

BisectionMethod::BisectionMethod(EstimatorOptions options) : opt_(options) {
  opt_.validate();
}

MeasurementReport BisectionMethod::run(ProbeTransport& transport,
                                       std::uint64_t seed) {
  (void)seed;
  BandwidthEstimator estimator(transport, opt_);
  const RateBracket bracket = estimator.bisect_achievable();

  MeasurementReport report;
  report.method = name();
  report.estimate_bps = bracket.midpoint_bps();
  report.trains_sent = estimator.trains_sent();
  report.trains_lost = estimator.trains_lost();
  report.probes_sent = estimator.trains_sent() * opt_.train_length;
  report.metrics = {{"low_bps", bracket.low_bps},
                    {"high_bps", bracket.high_bps}};
  return report;
}

// ------------------------------------------------------------------ slops

SlopsMethod::SlopsMethod(SlopsOptions options) : opt_(options) {
  opt_.validate();
}

MeasurementReport SlopsMethod::run(ProbeTransport& transport,
                                   std::uint64_t seed) {
  (void)seed;
  MeasurementReport report;
  report.method = name();

  int ambiguous = 0;
  double lo = opt_.min_rate_bps;
  double hi = opt_.max_rate_bps;
  for (int it = 0; it < opt_.max_iterations; ++it) {
    const double mid = 0.5 * (lo + hi);
    traffic::TrainSpec spec;
    spec.n = opt_.train_length;
    spec.size_bytes = opt_.size_bytes;
    spec.gap = BitRate::bps(mid).gap_for(opt_.size_bytes);

    int increasing = 0;
    int votes = 0;
    for (int t = 0; t < opt_.trains_per_rate; ++t) {
      const TrainResult train = transport.send_train(spec);
      ++report.trains_sent;
      if (!train.complete()) {
        ++report.trains_lost;
        continue;
      }
      const auto owd = one_way_delays_s(train);
      const std::span<const double> tail(owd.data() + opt_.skip_head,
                                         owd.size() -
                                             static_cast<std::size_t>(
                                                 opt_.skip_head));
      switch (classify_trend(owd_trend(tail))) {
        case TrendVerdict::kIncreasing:
          ++increasing;
          ++votes;
          break;
        case TrendVerdict::kNonIncreasing:
          ++votes;
          break;
        case TrendVerdict::kAmbiguous:
          ++ambiguous;
          break;
      }
    }
    if (votes > 0 && 2 * increasing > votes) {
      hi = mid;  // rate stresses the path
    } else {
      lo = mid;
    }
  }
  report.estimate_bps = 0.5 * (lo + hi);
  report.probes_sent = report.trains_sent * opt_.train_length;
  report.metrics = {{"low_bps", lo},
                    {"high_bps", hi},
                    {"ambiguous_trains", static_cast<double>(ambiguous)}};
  return report;
}

// ------------------------------------------------------------ packet_pair

void PacketPairMethodOptions::validate() const {
  CSMABW_REQUIRE(size_bytes > 0, "size must be positive");
  CSMABW_REQUIRE(pairs >= 1, "need at least one pair");
}

PacketPairMethod::PacketPairMethod(PacketPairMethodOptions options)
    : opt_(options) {
  opt_.validate();
}

MeasurementReport PacketPairMethod::run(ProbeTransport& transport,
                                        std::uint64_t seed) {
  (void)seed;
  traffic::TrainSpec spec;
  spec.n = 2;
  spec.size_bytes = opt_.size_bytes;
  spec.gap = TimeNs::zero();  // back-to-back: probes of infinite rate

  MeasurementReport report;
  report.method = name();
  double total_gap = 0.0;
  int used = 0;
  for (int i = 0; i < opt_.pairs; ++i) {
    const TrainResult train = transport.send_train(spec);
    ++report.trains_sent;
    if (!train.complete()) {
      ++report.trains_lost;
      continue;
    }
    total_gap += train.output_gap_s();
    ++used;
  }
  CSMABW_REQUIRE(used > 0, "all pairs were lost");
  const double mean_gap_s = total_gap / used;
  report.estimate_bps = opt_.size_bytes * 8.0 / mean_gap_s;
  report.probes_sent = 2 * opt_.pairs;
  report.metrics = {{"mean_gap_s", mean_gap_s},
                    {"pairs_used", static_cast<double>(used)}};
  return report;
}

// ----------------------------------------------------------- steady_state

void SteadyStateMethodOptions::validate() const {
  CSMABW_REQUIRE(probe_mbps > 0.0, "probe rate must be positive");
  CSMABW_REQUIRE(size_bytes > 0, "size must be positive");
  CSMABW_REQUIRE(measure_from_s > 0.0 && duration_s > measure_from_s,
                 "need 0 < measure_from_s < duration_s");
  CSMABW_REQUIRE(train_length >= 3, "fallback train needs >= 3 packets");
  CSMABW_REQUIRE(skip_head >= 0 && skip_head <= train_length - 2,
                 "skip_head must leave >= 2 tail packets");
  CSMABW_REQUIRE(max_trains >= 1, "need >= 1 fallback train attempt");
}

SteadyStateMethod::SteadyStateMethod(SteadyStateMethodOptions options)
    : opt_(options) {
  opt_.validate();
}

MeasurementReport SteadyStateMethod::run(ProbeTransport& transport,
                                         std::uint64_t seed) {
  (void)seed;
  MeasurementReport report;
  report.method = name();

  if (auto* sim = dynamic_cast<SimTransport*>(&transport)) {
    const SteadyStateResult r = sim->scenario().run_steady_state(
        BitRate::mbps(opt_.probe_mbps), opt_.size_bytes,
        TimeNs::from_seconds(opt_.duration_s),
        TimeNs::from_seconds(opt_.measure_from_s));
    report.estimate_bps = r.probe.to_bps();
    report.metrics = {{"exact", 1.0},
                      {"contenders_total_bps", r.contenders_total.to_bps()},
                      {"fifo_cross_bps", r.fifo_cross.to_bps()}};
    return report;
  }

  // Generic transport: one long saturating train; the head rides the
  // transient, so the rate is read from the tail dispersion only.
  // Lossy trains are retried so a single dropped packet does not abort
  // a whole campaign repetition.
  traffic::TrainSpec spec;
  spec.n = opt_.train_length;
  spec.size_bytes = opt_.size_bytes;
  spec.gap = BitRate::mbps(opt_.probe_mbps).gap_for(opt_.size_bytes);
  for (int t = 0; t < opt_.max_trains; ++t) {
    const TrainResult train = transport.send_train(spec);
    ++report.trains_sent;
    report.probes_sent += opt_.train_length;
    if (!train.complete()) {
      ++report.trains_lost;
      continue;
    }
    const std::vector<double> recv = train.receive_times_s();
    const std::size_t skip = static_cast<std::size_t>(opt_.skip_head);
    const double gap = (recv.back() - recv[skip]) /
                       static_cast<double>(recv.size() - 1 - skip);
    report.estimate_bps = opt_.size_bytes * 8.0 / gap;
    report.metrics = {{"exact", 0.0},
                      {"tail_packets",
                       static_cast<double>(recv.size() - skip)}};
    return report;
  }
  throw util::PreconditionError("every steady-state train was lost");
}

// --------------------------------------------------------------- registry

namespace {

EstimatorOptions estimator_options_from(const util::Options& o) {
  EstimatorOptions eo;
  eo.train_length = o.get("train_length", eo.train_length);
  eo.size_bytes = o.get("size_bytes", eo.size_bytes);
  eo.trains_per_rate = o.get("trains_per_rate", eo.trains_per_rate);
  eo.mser_correction = o.get("mser", eo.mser_correction);
  eo.mser_m = o.get("mser_m", eo.mser_m);
  eo.min_rate_bps = o.get("min_rate_mbps", eo.min_rate_bps / 1e6) * 1e6;
  eo.max_rate_bps = o.get("max_rate_mbps", eo.max_rate_bps / 1e6) * 1e6;
  eo.max_iterations = o.get("max_iterations", eo.max_iterations);
  eo.rel_tol = o.get("rel_tol", eo.rel_tol);
  return eo;
}

}  // namespace

namespace {

constexpr const char* kEstimatorOptionsHelp =
    "train_length, size_bytes, trains_per_rate, mser, mser_m, "
    "min_rate_mbps, max_rate_mbps, max_iterations, rel_tol";

}  // namespace

void MethodRegistry::register_builtins(MethodRegistry& registry) {
  registry.add(
      "train_sweep",
      [](const util::Options& o) {
        const EstimatorOptions eo = estimator_options_from(o);
        const int grid = o.get("grid", 8);
        return std::make_unique<TrainSweepMethod>(eo, grid);
      },
      std::string(kEstimatorOptionsHelp) + ", grid");
  registry.add(
      "bisection",
      [](const util::Options& o) {
        return std::make_unique<BisectionMethod>(estimator_options_from(o));
      },
      kEstimatorOptionsHelp);
  registry.add(
      "slops",
      [](const util::Options& o) {
        SlopsOptions so;
        so.train_length = o.get("train_length", so.train_length);
        so.size_bytes = o.get("size_bytes", so.size_bytes);
        so.trains_per_rate = o.get("trains_per_rate", so.trains_per_rate);
        so.min_rate_bps = o.get("min_rate_mbps", so.min_rate_bps / 1e6) * 1e6;
        so.max_rate_bps = o.get("max_rate_mbps", so.max_rate_bps / 1e6) * 1e6;
        so.max_iterations = o.get("max_iterations", so.max_iterations);
        so.skip_head = o.get("skip_head", so.skip_head);
        return std::make_unique<SlopsMethod>(so);
      },
      "train_length, size_bytes, trains_per_rate, min_rate_mbps, "
      "max_rate_mbps, max_iterations, skip_head");
  registry.add(
      "packet_pair",
      [](const util::Options& o) {
        PacketPairMethodOptions po;
        po.size_bytes = o.get("size_bytes", po.size_bytes);
        po.pairs = o.get("pairs", po.pairs);
        return std::make_unique<PacketPairMethod>(po);
      },
      "size_bytes, pairs");
  registry.add(
      "steady_state",
      [](const util::Options& o) {
        SteadyStateMethodOptions so;
        so.probe_mbps = o.get("probe_mbps", so.probe_mbps);
        so.size_bytes = o.get("size_bytes", so.size_bytes);
        so.duration_s = o.get("duration_s", so.duration_s);
        so.measure_from_s = o.get("measure_from_s", so.measure_from_s);
        so.train_length = o.get("train_length", so.train_length);
        so.skip_head = o.get("skip_head", so.skip_head);
        so.max_trains = o.get("max_trains", so.max_trains);
        return std::make_unique<SteadyStateMethod>(so);
      },
      "probe_mbps, size_bytes, duration_s, measure_from_s, train_length, "
      "skip_head, max_trains");
}

MethodRegistry& MethodRegistry::global() {
  static MethodRegistry* registry = [] {
    auto* r = new MethodRegistry;
    register_builtins(*r);
    return r;
  }();
  return *registry;
}

std::vector<std::string> split_method_list(std::string_view text) {
  std::vector<std::string> specs;
  std::size_t pos = 0;
  CSMABW_REQUIRE(!text.empty(), "method list is empty");
  while (true) {
    const std::size_t semi = text.find(';', pos);
    const std::size_t end =
        semi == std::string_view::npos ? text.size() : semi;
    const std::string_view segment = text.substr(pos, end - pos);
    CSMABW_REQUIRE(!segment.empty(), "empty element in method list `" +
                                         std::string(text) + "`");
    if (segment.find(':') == std::string_view::npos) {
      // No options in this segment: commas separate bare method names.
      std::size_t p = 0;
      while (true) {
        const std::size_t comma = segment.find(',', p);
        const std::size_t e =
            comma == std::string_view::npos ? segment.size() : comma;
        CSMABW_REQUIRE(e > p, "empty element in method list `" +
                                  std::string(text) + "`");
        specs.emplace_back(segment.substr(p, e - p));
        if (comma == std::string_view::npos) {
          break;
        }
        p = comma + 1;
      }
    } else {
      specs.emplace_back(segment);
    }
    if (semi == std::string_view::npos) {
      break;
    }
    pos = semi + 1;
  }
  return specs;
}

}  // namespace csmabw::core
