#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/estimator.hpp"
#include "core/owd_trend.hpp"
#include "core/rate_response.hpp"
#include "core/transport.hpp"
#include "util/options.hpp"
#include "util/registry.hpp"

namespace csmabw::core {

/// Uniform result of one measurement-method run — the common denominator
/// of every bandwidth tool in the repository (train dispersion, SLoPS,
/// packet pairs, steady-state ground truth).
///
/// `metrics` carries method-specific key/value details in a fixed,
/// documented order (e.g. slops publishes low_bps/high_bps/
/// ambiguous_trains), so heterogeneous methods can share one campaign
/// row schema.
struct MeasurementReport {
  /// Registry key of the method that produced this report.
  std::string method;
  /// The method's headline estimate (achievable throughput on CSMA/CA
  /// links — the quantity every wired-path tool converges to, Sec 7.2).
  double estimate_bps = 0.0;
  /// Probing cost, uniform across methods: trains_sent counts every
  /// attempted train (lost ones included) and trains_lost the subset
  /// that suffered losses; probes_sent counts the packets of every
  /// attempt.
  int trains_sent = 0;
  int probes_sent = 0;
  int trains_lost = 0;
  /// Per-rate response curve, when the method sweeps one (train_sweep).
  RateResponseCurve curve;
  /// Method-specific details, fixed order per method.
  std::vector<std::pair<std::string, double>> metrics;

  [[nodiscard]] bool has_metric(std::string_view name) const;
  /// Throws util::PreconditionError when the metric is absent.
  [[nodiscard]] double metric(std::string_view name) const;
};

/// A pluggable active bandwidth measurement tool.
///
/// Contract: `run` drives the transport (the only channel to the link
/// under test) and returns a complete report.  The output must be a
/// deterministic function of (method options, the transport's random
/// stream, seed) — `seed` covers any method-internal randomness, so two
/// runs with identically seeded transports and equal seeds produce
/// identical reports regardless of threading or scheduling.
class MeasurementMethod {
 public:
  virtual ~MeasurementMethod() = default;

  /// The registry key this method was created under.
  [[nodiscard]] virtual std::string_view name() const = 0;

  [[nodiscard]] virtual MeasurementReport run(ProbeTransport& transport,
                                              std::uint64_t seed) = 0;
};

/// Fixed-grid dispersion sweep: probes `grid_points` rates between the
/// configured bounds and fits the achievable throughput to the measured
/// rate response curve (registry key "train_sweep").
class TrainSweepMethod : public MeasurementMethod {
 public:
  TrainSweepMethod(EstimatorOptions options, int grid_points);

  [[nodiscard]] std::string_view name() const override {
    return "train_sweep";
  }
  [[nodiscard]] MeasurementReport run(ProbeTransport& transport,
                                      std::uint64_t seed) override;

 private:
  EstimatorOptions opt_;
  int grid_points_;
};

/// Adaptive bisection on ro/ri ~= 1 (Eq. 2), the classic dispersion
/// methodology (registry key "bisection").
class BisectionMethod : public MeasurementMethod {
 public:
  explicit BisectionMethod(EstimatorOptions options);

  [[nodiscard]] std::string_view name() const override { return "bisection"; }
  [[nodiscard]] MeasurementReport run(ProbeTransport& transport,
                                      std::uint64_t seed) override;

 private:
  EstimatorOptions opt_;
};

/// SLoPS one-way-delay-trend bisection — pathload's machinery (registry
/// key "slops").  Canonical home of the algorithm behind the
/// slops_estimate() facade.
class SlopsMethod : public MeasurementMethod {
 public:
  explicit SlopsMethod(SlopsOptions options);

  [[nodiscard]] std::string_view name() const override { return "slops"; }
  [[nodiscard]] MeasurementReport run(ProbeTransport& transport,
                                      std::uint64_t seed) override;

 private:
  SlopsOptions opt_;
};

struct PacketPairMethodOptions {
  int size_bytes = 1500;
  int pairs = 100;

  void validate() const;
};

/// Back-to-back packet pairs (Section 7.3; registry key "packet_pair").
/// Canonical home of the algorithm behind the packet_pair_estimate()
/// facade.
class PacketPairMethod : public MeasurementMethod {
 public:
  explicit PacketPairMethod(PacketPairMethodOptions options);

  [[nodiscard]] std::string_view name() const override {
    return "packet_pair";
  }
  [[nodiscard]] MeasurementReport run(ProbeTransport& transport,
                                      std::uint64_t seed) override;

 private:
  PacketPairMethodOptions opt_;
};

struct SteadyStateMethodOptions {
  /// Saturating probe rate for the long-run measurement.
  double probe_mbps = 16.0;
  int size_bytes = 1500;
  /// Exact (simulator) path: long-run duration and measurement window
  /// start.  measure_from_s must be >= the scenario warm-up.
  double duration_s = 9.0;
  double measure_from_s = 1.0;
  /// Generic-transport fallback: one long saturating train; the rate is
  /// read from the tail dispersion after `skip_head` transient packets.
  /// Trains with losses are retried up to `max_trains` attempts.
  int train_length = 600;
  int skip_head = 150;
  int max_trains = 3;

  void validate() const;
};

/// Ground-truth achievable throughput B (registry key "steady_state").
///
/// On a SimTransport it runs the scenario's exact long-run steady state
/// (what the paper's figures use as B); on any other transport it falls
/// back to the tail dispersion of one long saturating train.  The
/// `exact` metric records which path ran (1 = exact, 0 = fallback).
class SteadyStateMethod : public MeasurementMethod {
 public:
  explicit SteadyStateMethod(SteadyStateMethodOptions options);

  [[nodiscard]] std::string_view name() const override {
    return "steady_state";
  }
  [[nodiscard]] MeasurementReport run(ProbeTransport& transport,
                                      std::uint64_t seed) override;

 private:
  SteadyStateMethodOptions opt_;
};

/// String-keyed factory registry for measurement methods — a
/// util::SpecRegistry (`name` or `name:key=value,...` specs, eager
/// validation: unknown names, unknown option keys and malformed values
/// all throw util::PreconditionError at create() time, before any
/// campaign work starts).
class MethodRegistry {
 public:
  /// Receives the parsed options; keys the factory does not consume are
  /// rejected by the registry after it returns.
  using Factory = util::SpecRegistry<MeasurementMethod>::Factory;

  /// Registers a factory; `options_help` documents the accepted option
  /// keys for discoverability listings (--list-methods).  Throws
  /// util::PreconditionError on an empty or duplicate name.
  void add(std::string name, Factory factory, std::string options_help = "") {
    impl_.add(std::move(name), std::move(factory), std::move(options_help));
  }

  [[nodiscard]] bool contains(std::string_view name) const {
    return impl_.contains(name);
  }
  /// Registered names in sorted order.
  [[nodiscard]] std::vector<std::string> names() const {
    return impl_.names();
  }
  /// The option-key documentation string registered for `name`.
  [[nodiscard]] const std::string& help(std::string_view name) const {
    return impl_.help(name);
  }

  /// Creates a method from a spec string ("slops:train_length=50").
  [[nodiscard]] std::unique_ptr<MeasurementMethod> create(
      std::string_view spec) const {
    return impl_.create(spec);
  }

  /// Registers the five built-in tools: train_sweep, bisection, slops,
  /// packet_pair, steady_state.
  static void register_builtins(MethodRegistry& registry);

  /// The process-wide registry, pre-populated with the builtins.
  /// Register custom methods at startup, before campaigns run: create()
  /// is safe to call concurrently, add() is not.
  static MethodRegistry& global();

 private:
  util::SpecRegistry<MeasurementMethod> impl_{"measurement method"};
};

/// Splits a method-list string into individual specs.  Specs are
/// separated by ';' (option lists use ','); as a convenience, a segment
/// without options may also use ',' as the separator, so both
/// "slops,packet_pair" and "slops:train_length=50;packet_pair" parse.
/// Empty elements throw util::PreconditionError.
[[nodiscard]] std::vector<std::string> split_method_list(
    std::string_view text);

}  // namespace csmabw::core
