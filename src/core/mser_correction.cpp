#include "core/mser_correction.hpp"

#include <vector>

#include "stats/mser.hpp"
#include "stats/summary.hpp"
#include "util/require.hpp"

namespace csmabw::core {

CorrectedGap mser_corrected_gap(std::span<const double> receive_times_s,
                                int m) {
  CSMABW_REQUIRE(receive_times_s.size() >= static_cast<std::size_t>(2 * m + 1),
                 "train too short for MSER truncation");
  std::vector<double> gaps;
  gaps.reserve(receive_times_s.size() - 1);
  for (std::size_t i = 1; i < receive_times_s.size(); ++i) {
    const double g = receive_times_s[i] - receive_times_s[i - 1];
    CSMABW_REQUIRE(g >= 0.0, "receive times must be non-decreasing");
    gaps.push_back(g);
  }

  CorrectedGap out;
  out.raw_gap_s = stats::mean(gaps);
  const stats::MserResult r = stats::mser(gaps, m);
  out.corrected_gap_s = r.truncated_mean;
  out.truncated = r.cutoff;
  return out;
}

EnsembleGapCorrector::EnsembleGapCorrector(int train_length)
    : train_length_(train_length),
      gap_stats_(static_cast<std::size_t>(train_length - 1)) {
  CSMABW_REQUIRE(train_length >= 2, "trains need at least two packets");
}

void EnsembleGapCorrector::add_train(
    std::span<const double> receive_times_s) {
  CSMABW_REQUIRE(
      receive_times_s.size() == static_cast<std::size_t>(train_length_),
      "train length mismatch");
  for (std::size_t i = 1; i < receive_times_s.size(); ++i) {
    const double g = receive_times_s[i] - receive_times_s[i - 1];
    CSMABW_REQUIRE(g >= 0.0, "receive times must be non-decreasing");
    gap_stats_[i - 1].add(g);
  }
  ++trains_;
}

std::vector<double> EnsembleGapCorrector::mean_gaps() const {
  std::vector<double> out;
  out.reserve(gap_stats_.size());
  for (const auto& s : gap_stats_) {
    out.push_back(s.mean());
  }
  return out;
}

CorrectedGap EnsembleGapCorrector::corrected(int m) const {
  CSMABW_REQUIRE(trains_ > 0, "no trains added");
  const std::vector<double> gaps = mean_gaps();
  CorrectedGap out;
  out.raw_gap_s = stats::mean(gaps);
  const stats::MserResult r = stats::mser(gaps, m);
  out.corrected_gap_s = r.truncated_mean;
  out.truncated = r.cutoff;
  return out;
}

}  // namespace csmabw::core
