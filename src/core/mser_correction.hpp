#pragma once

#include <span>
#include <vector>

#include "stats/summary.hpp"
#include "util/time.hpp"

namespace csmabw::core {

/// Result of transient-truncating a dispersion measurement (Section 7.4).
struct CorrectedGap {
  /// Plain output gap (d_n - d_1)/(n - 1), Eq. (16).
  double raw_gap_s = 0.0;
  /// Mean inter-arrival gap after MSER-m truncation.
  double corrected_gap_s = 0.0;
  /// Inter-arrival observations removed from the front.
  int truncated = 0;
};

/// Applies the MSER-m heuristic to the inter-arrival series of a probe
/// train's receive timestamps, dropping the observations the heuristic
/// attributes to the transient regime (the paper applies MSER-2 to
/// 20-packet trains, Fig 17).
///
/// `receive_times_s` must be non-decreasing with at least 2*m + 1
/// entries.
[[nodiscard]] CorrectedGap mser_corrected_gap(
    std::span<const double> receive_times_s, int m = 2);

/// Ensemble form of the Fig 17 correction.
///
/// A single train's inter-arrival series is dominated by backoff noise,
/// which hides the transient from the heuristic.  The paper's
/// methodology sends a *sequence* of trains (Section 5.1.2); averaging
/// the k-th gap across trains yields a smooth per-index series whose
/// initial "accelerated" segment MSER-m can isolate reliably.
class EnsembleGapCorrector {
 public:
  /// `train_length`: packets per train (gaps per train = n - 1).
  explicit EnsembleGapCorrector(int train_length);

  /// Adds one complete train's receive timestamps (length train_length,
  /// non-decreasing).
  void add_train(std::span<const double> receive_times_s);

  [[nodiscard]] int trains() const { return trains_; }
  /// Mean of gap k across trains, k = 0..n-2.
  [[nodiscard]] std::vector<double> mean_gaps() const;
  /// MSER-m truncation applied to the per-index mean gap series.
  /// Requires at least one train.
  [[nodiscard]] CorrectedGap corrected(int m = 2) const;

 private:
  int train_length_;
  int trains_ = 0;
  std::vector<stats::RunningStat> gap_stats_;
};

}  // namespace csmabw::core
