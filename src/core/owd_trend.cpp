#include "core/owd_trend.hpp"

#include <cmath>

#include "util/require.hpp"

namespace csmabw::core {

OwdTrend owd_trend(std::span<const double> owd_s) {
  CSMABW_REQUIRE(owd_s.size() >= 3, "trend test needs >= 3 delays");
  int increases = 0;
  int comparisons = 0;
  double total_variation = 0.0;
  for (std::size_t i = 1; i < owd_s.size(); ++i) {
    const double diff = owd_s[i] - owd_s[i - 1];
    if (diff != 0.0) {
      ++comparisons;
      if (diff > 0.0) {
        ++increases;
      }
      total_variation += std::abs(diff);
    }
  }
  OwdTrend t;
  t.pct = comparisons > 0
              ? static_cast<double>(increases) / comparisons
              : 0.5;  // perfectly flat: no evidence either way
  t.pdt = total_variation > 0.0
              ? (owd_s.back() - owd_s.front()) / total_variation
              : 0.0;
  return t;
}

std::vector<double> one_way_delays_s(const TrainResult& train) {
  CSMABW_REQUIRE(train.complete(), "train incomplete");
  std::vector<double> owd;
  owd.reserve(train.packets.size());
  for (const auto& p : train.packets) {
    owd.push_back(p.recv_s - p.send_s);
  }
  return owd;
}

TrendVerdict classify_trend(const OwdTrend& t) {
  if (t.pct > 0.66 || t.pdt > 0.55) {
    return TrendVerdict::kIncreasing;
  }
  if (t.pct < 0.54 && t.pdt < 0.45) {
    return TrendVerdict::kNonIncreasing;
  }
  return TrendVerdict::kAmbiguous;
}

SlopsResult slops_estimate(ProbeTransport& transport,
                           const SlopsOptions& options) {
  CSMABW_REQUIRE(options.train_length >= 3 + options.skip_head,
                 "train too short for the trend test");
  CSMABW_REQUIRE(options.trains_per_rate >= 1, "need >= 1 train per rate");
  CSMABW_REQUIRE(options.min_rate_bps > 0.0 &&
                     options.max_rate_bps > options.min_rate_bps,
                 "invalid rate range");
  CSMABW_REQUIRE(options.skip_head >= 0, "skip_head must be >= 0");

  SlopsResult result;
  double lo = options.min_rate_bps;
  double hi = options.max_rate_bps;
  for (int it = 0; it < options.max_iterations; ++it) {
    const double mid = 0.5 * (lo + hi);
    traffic::TrainSpec spec;
    spec.n = options.train_length;
    spec.size_bytes = options.size_bytes;
    spec.gap = BitRate::bps(mid).gap_for(options.size_bytes);

    int increasing = 0;
    int votes = 0;
    for (int t = 0; t < options.trains_per_rate; ++t) {
      const TrainResult train = transport.send_train(spec);
      if (!train.complete()) {
        continue;
      }
      ++result.trains_sent;
      const auto owd = one_way_delays_s(train);
      const std::span<const double> tail(
          owd.data() + options.skip_head, owd.size() - options.skip_head);
      switch (classify_trend(owd_trend(tail))) {
        case TrendVerdict::kIncreasing:
          ++increasing;
          ++votes;
          break;
        case TrendVerdict::kNonIncreasing:
          ++votes;
          break;
        case TrendVerdict::kAmbiguous:
          ++result.ambiguous_trains;
          break;
      }
    }
    if (votes > 0 && 2 * increasing > votes) {
      hi = mid;  // rate stresses the path
    } else {
      lo = mid;
    }
  }
  result.low_bps = lo;
  result.high_bps = hi;
  result.estimate_bps = 0.5 * (lo + hi);
  return result;
}

}  // namespace csmabw::core
