#include "core/owd_trend.hpp"

#include <cmath>

#include "core/method.hpp"
#include "util/require.hpp"

namespace csmabw::core {

OwdTrend owd_trend(std::span<const double> owd_s) {
  CSMABW_REQUIRE(owd_s.size() >= 3, "trend test needs >= 3 delays");
  int increases = 0;
  int comparisons = 0;
  double total_variation = 0.0;
  for (std::size_t i = 1; i < owd_s.size(); ++i) {
    const double diff = owd_s[i] - owd_s[i - 1];
    if (diff != 0.0) {
      ++comparisons;
      if (diff > 0.0) {
        ++increases;
      }
      total_variation += std::abs(diff);
    }
  }
  OwdTrend t;
  t.pct = comparisons > 0
              ? static_cast<double>(increases) / comparisons
              : 0.5;  // perfectly flat: no evidence either way
  t.pdt = total_variation > 0.0
              ? (owd_s.back() - owd_s.front()) / total_variation
              : 0.0;
  return t;
}

std::vector<double> one_way_delays_s(const TrainResult& train) {
  CSMABW_REQUIRE(train.complete(), "train incomplete");
  std::vector<double> owd;
  owd.reserve(train.packets.size());
  for (const auto& p : train.packets) {
    owd.push_back(p.recv_s - p.send_s);
  }
  return owd;
}

TrendVerdict classify_trend(const OwdTrend& t) {
  if (t.pct > 0.66 || t.pdt > 0.55) {
    return TrendVerdict::kIncreasing;
  }
  if (t.pct < 0.54 && t.pdt < 0.45) {
    return TrendVerdict::kNonIncreasing;
  }
  return TrendVerdict::kAmbiguous;
}

void SlopsOptions::validate() const {
  CSMABW_REQUIRE(skip_head >= 0, "skip_head must be >= 0");
  CSMABW_REQUIRE(train_length >= 3 + skip_head,
                 "train too short for the trend test");
  CSMABW_REQUIRE(size_bytes > 0, "probe size must be positive");
  CSMABW_REQUIRE(trains_per_rate >= 1, "need >= 1 train per rate");
  CSMABW_REQUIRE(min_rate_bps > 0.0 && max_rate_bps > min_rate_bps,
                 "invalid rate range");
  CSMABW_REQUIRE(max_iterations >= 1, "need >= 1 bisection iteration");
}

SlopsResult slops_estimate(ProbeTransport& transport,
                           const SlopsOptions& options) {
  SlopsMethod method(options);
  const MeasurementReport report = method.run(transport, /*seed=*/0);
  SlopsResult result;
  result.low_bps = report.metric("low_bps");
  result.high_bps = report.metric("high_bps");
  result.estimate_bps = report.estimate_bps;
  // SlopsResult historically counted only complete trains; the report's
  // uniform cost counters include lost attempts.
  result.trains_sent = report.trains_sent - report.trains_lost;
  result.ambiguous_trains =
      static_cast<int>(report.metric("ambiguous_trains"));
  return result;
}

}  // namespace csmabw::core
