#pragma once

#include <span>

#include "core/transport.hpp"

namespace csmabw::core {

/// One-way-delay trend statistics of a probe train — the SLoPS machinery
/// of pathload (the paper's reference [17]).
///
/// When a train is sent faster than the path can forward it, the one-way
/// delays of successive packets increase; SLoPS detects that trend and
/// bisects for the largest non-increasing rate.  Section 7.2 of the
/// paper argues such tools, designed to measure available bandwidth on
/// FIFO paths, measure the *achievable throughput* on CSMA/CA links —
/// this module lets the repository demonstrate that claim directly (see
/// the ext_tool_comparison bench).
struct OwdTrend {
  /// Pairwise Comparison Test: fraction of consecutive OWD increases;
  /// ~0.5 for noise, -> 1 under a strong increasing trend.
  double pct = 0.0;
  /// Pairwise Difference Test: net delay change over total variation;
  /// ~0 for noise, -> 1 under a strong increasing trend.
  double pdt = 0.0;
};

/// Verdict of one train, using pathload's published thresholds
/// (increasing: PCT > 0.66 or PDT > 0.55; non-increasing: PCT < 0.54 and
/// PDT < 0.45; anything else is ambiguous).
enum class TrendVerdict { kIncreasing, kNonIncreasing, kAmbiguous };

/// Computes PCT/PDT over a train's one-way delays (recv - send per
/// packet; a constant clock offset between the endpoints cancels).
/// Requires at least 3 delays.
[[nodiscard]] OwdTrend owd_trend(std::span<const double> owd_s);

/// Extracts the one-way delays of a complete train.
[[nodiscard]] std::vector<double> one_way_delays_s(const TrainResult& train);

[[nodiscard]] TrendVerdict classify_trend(const OwdTrend& t);

/// Options of the SLoPS-style iterative estimator.
struct SlopsOptions {
  int train_length = 50;
  int size_bytes = 1500;
  /// Trains per rate; the majority verdict decides.
  int trains_per_rate = 5;
  double min_rate_bps = 250e3;
  double max_rate_bps = 12e6;
  int max_iterations = 12;
  /// Leading packets to skip before the trend test — transient
  /// truncation per Section 7.4 (0 = none).
  int skip_head = 0;

  /// Throws util::PreconditionError on inconsistent options.
  void validate() const;
};

/// Result of a SLoPS run.
struct SlopsResult {
  /// Final bracket [lo, hi] and its midpoint estimate.
  double low_bps = 0.0;
  double high_bps = 0.0;
  double estimate_bps = 0.0;
  int trains_sent = 0;
  int ambiguous_trains = 0;
};

/// Iterative one-way-delay-trend estimation over any transport: bisects
/// on "does the OWD trend increase at this rate".  On a FIFO path this
/// estimates the available bandwidth; on a CSMA/CA link it converges to
/// the achievable throughput (the paper's Section 7.2 consequence).
///
/// Back-compat facade: the algorithm lives in core::SlopsMethod
/// (core/method.hpp); this wrapper runs the method and repackages its
/// MeasurementReport as a SlopsResult.
[[nodiscard]] SlopsResult slops_estimate(ProbeTransport& transport,
                                         const SlopsOptions& options);

}  // namespace csmabw::core
