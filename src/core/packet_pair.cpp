#include "core/packet_pair.hpp"

#include "core/method.hpp"

namespace csmabw::core {

PacketPairResult packet_pair_estimate(ProbeTransport& transport,
                                      int size_bytes, int pairs) {
  PacketPairMethodOptions options;
  options.size_bytes = size_bytes;
  options.pairs = pairs;
  PacketPairMethod method(options);
  const MeasurementReport report = method.run(transport, /*seed=*/0);

  PacketPairResult result;
  result.estimate_bps = report.estimate_bps;
  result.mean_gap_s = report.metric("mean_gap_s");
  result.pairs_used = static_cast<int>(report.metric("pairs_used"));
  result.pairs_lost = report.trains_lost;
  return result;
}

}  // namespace csmabw::core
