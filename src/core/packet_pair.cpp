#include "core/packet_pair.hpp"

#include "util/require.hpp"

namespace csmabw::core {

PacketPairResult packet_pair_estimate(ProbeTransport& transport,
                                      int size_bytes, int pairs) {
  CSMABW_REQUIRE(size_bytes > 0, "size must be positive");
  CSMABW_REQUIRE(pairs >= 1, "need at least one pair");

  traffic::TrainSpec spec;
  spec.n = 2;
  spec.size_bytes = size_bytes;
  spec.gap = TimeNs::zero();  // back-to-back: probes of infinite rate

  PacketPairResult result;
  double total_gap = 0.0;
  for (int i = 0; i < pairs; ++i) {
    const TrainResult train = transport.send_train(spec);
    if (!train.complete()) {
      ++result.pairs_lost;
      continue;
    }
    total_gap += train.output_gap_s();
    ++result.pairs_used;
  }
  CSMABW_REQUIRE(result.pairs_used > 0, "all pairs were lost");
  result.mean_gap_s = total_gap / result.pairs_used;
  result.estimate_bps = size_bytes * 8.0 / result.mean_gap_s;
  return result;
}

}  // namespace csmabw::core
