#pragma once

#include "core/transport.hpp"

namespace csmabw::core {

/// Packet-pair estimate over a transport (Section 7.3).
struct PacketPairResult {
  /// L / E[gO] over the pairs — what the classic technique reports as
  /// the path capacity.
  double estimate_bps = 0.0;
  /// Mean pair dispersion (seconds).
  double mean_gap_s = 0.0;
  int pairs_used = 0;
  int pairs_lost = 0;
};

/// Sends `pairs` back-to-back packet pairs (trains of n = 2 at infinite
/// input rate, i.e. zero input gap) and reports the dispersion-based
/// capacity estimate.
///
/// On a CSMA/CA link this estimator targets the *achievable throughput*,
/// not the capacity, and — because the first packets of every pair ride
/// the transient — overestimates even that (Fig 16).
///
/// Back-compat facade: the algorithm lives in core::PacketPairMethod
/// (core/method.hpp); this wrapper runs the method and repackages its
/// MeasurementReport as a PacketPairResult.
[[nodiscard]] PacketPairResult packet_pair_estimate(ProbeTransport& transport,
                                                    int size_bytes, int pairs);

}  // namespace csmabw::core
