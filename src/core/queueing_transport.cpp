#include "core/queueing_transport.hpp"

#include <vector>

#include "util/require.hpp"

namespace csmabw::core {

QueueingTransport::QueueingTransport(Config cfg) : cfg_(std::move(cfg)) {
  CSMABW_REQUIRE(cfg_.probe_service != nullptr, "probe service model missing");
  CSMABW_REQUIRE(cfg_.cross_rate_jobs_per_s >= 0.0, "negative cross rate");
  CSMABW_REQUIRE(cfg_.warmup_s >= 0.0, "negative warmup");
}

TrainResult QueueingTransport::send_train(const traffic::TrainSpec& spec) {
  stats::Rng rng = stats::Rng(cfg_.seed).fork(next_rep_++);
  stats::Rng cross_rng = rng.fork("cross");
  stats::Rng service_rng = rng.fork("service");

  std::vector<queueing::TraceJob> jobs;

  // Cross-traffic from t=0 through a horizon comfortably covering the
  // train (worst case: every probe job serialized behind cross jobs).
  const double train_span_s = spec.gap.to_seconds() * spec.n;
  const double horizon_s = cfg_.warmup_s + train_span_s +
                           1.0 + cfg_.cross_service_s * 100.0;
  if (cfg_.cross_rate_jobs_per_s > 0.0) {
    const double mean_gap = 1.0 / cfg_.cross_rate_jobs_per_s;
    double t = cross_rng.exponential(mean_gap);
    while (t < horizon_s) {
      jobs.push_back(queueing::TraceJob{TimeNs::from_seconds(t),
                                        TimeNs::from_seconds(cfg_.cross_service_s),
                                        /*flow=*/0});
      t += cross_rng.exponential(mean_gap);
    }
  }

  // Probe train arrivals after the warm-up.
  const TimeNs start = TimeNs::from_seconds(cfg_.warmup_s);
  for (int k = 0; k < spec.n; ++k) {
    const double service = cfg_.probe_service(k, service_rng);
    CSMABW_REQUIRE(service >= 0.0, "negative probe service time");
    jobs.push_back(queueing::TraceJob{start + spec.gap * k,
                                      TimeNs::from_seconds(service),
                                      /*flow=*/1});
  }

  const queueing::FifoTraceResult trace =
      queueing::run_fifo_trace(std::move(jobs));

  TrainResult out;
  for (const auto& served : trace.jobs()) {
    if (served.job.flow != 1) {
      continue;
    }
    ProbeRecord rec;
    rec.seq = static_cast<int>(out.packets.size());
    rec.send_s = served.job.arrival.to_seconds();
    rec.recv_s = served.depart.to_seconds();
    rec.lost = false;
    out.packets.push_back(rec);
  }
  return out;
}

}  // namespace csmabw::core
