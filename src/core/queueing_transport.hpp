#pragma once

#include <functional>

#include "core/transport.hpp"
#include "queueing/fifo_trace.hpp"
#include "stats/rng.hpp"

namespace csmabw::core {

/// ProbeTransport backed by the trace-driven FIFO queueing model — the
/// analogue of the paper's Matlab simulator used as a measurement target.
///
/// Probe packets arrive periodically; their service times (access
/// delays) are drawn from a user-supplied generator, and Poisson FIFO
/// cross-traffic jobs can share the queue.  The transport lets the same
/// estimator code run against a purely queueing-theoretic link, which is
/// how the paper separates queueing effects from MAC effects.
class QueueingTransport : public ProbeTransport {
 public:
  /// `service_of(index)` returns the service time (seconds) of the
  /// index-th probe packet of a train — e.g. a constant, or a draw from
  /// a recorded access-delay distribution.
  using ServiceModel = std::function<double(int index, stats::Rng& rng)>;

  struct Config {
    ServiceModel probe_service;
    /// FIFO cross-traffic: Poisson arrivals at `cross_rate_jobs_per_s`,
    /// each with service `cross_service_s` (0 rate disables).
    double cross_rate_jobs_per_s = 0.0;
    double cross_service_s = 0.0;
    /// Cross-traffic history generated before the train (seconds).
    double warmup_s = 0.5;
    std::uint64_t seed = 1;
  };

  explicit QueueingTransport(Config cfg);

  TrainResult send_train(const traffic::TrainSpec& spec) override;

 private:
  Config cfg_;
  std::uint64_t next_rep_ = 0;
};

}  // namespace csmabw::core
