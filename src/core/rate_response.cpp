#include "core/rate_response.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace csmabw::core {

double fifo_rate_response_bps(double ri_bps, double capacity_bps,
                              double available_bps) {
  CSMABW_REQUIRE(capacity_bps > 0.0, "capacity must be positive");
  CSMABW_REQUIRE(available_bps >= 0.0 && available_bps <= capacity_bps,
                 "available bandwidth must lie in [0, C]");
  CSMABW_REQUIRE(ri_bps >= 0.0, "input rate must be non-negative");
  if (ri_bps == 0.0) {
    return 0.0;
  }
  const double shared =
      capacity_bps * ri_bps / (ri_bps + capacity_bps - available_bps);
  return std::min(ri_bps, shared);
}

double wlan_rate_response_bps(double ri_bps, double achievable_bps) {
  CSMABW_REQUIRE(achievable_bps >= 0.0, "achievable throughput negative");
  CSMABW_REQUIRE(ri_bps >= 0.0, "input rate must be non-negative");
  return std::min(ri_bps, achievable_bps);
}

double CompleteCurve::response_bps(double ri_bps) const {
  CSMABW_REQUIRE(bf_bps > 0.0, "Bf must be positive");
  CSMABW_REQUIRE(u_fifo >= 0.0 && u_fifo <= 1.0, "u_fifo must be in [0, 1]");
  CSMABW_REQUIRE(ri_bps >= 0.0, "input rate must be non-negative");
  const double b = achievable_bps();
  if (ri_bps <= b) {
    return ri_bps;
  }
  return bf_bps * ri_bps / (ri_bps + u_fifo * bf_bps);
}

double achievable_throughput_from_curve(
    std::span<const RateResponsePoint> points, double rel_tol) {
  CSMABW_REQUIRE(rel_tol >= 0.0, "tolerance must be non-negative");
  double best = 0.0;
  for (const auto& p : points) {
    if (p.input_bps <= 0.0) {
      continue;
    }
    if (p.output_bps / p.input_bps >= 1.0 - rel_tol) {
      best = std::max(best, p.input_bps);
    }
  }
  return best;
}

}  // namespace csmabw::core
