#pragma once

#include <span>
#include <vector>

#include "util/units.hpp"

namespace csmabw::core {

/// One measured point of a rate response curve: input rate ri = L/gI and
/// output rate ro = L/gO (both network-layer bits per second).
struct RateResponsePoint {
  double input_bps = 0.0;
  double output_bps = 0.0;
};

/// A measured rate response curve (Section 2's basic model object).
struct RateResponseCurve {
  std::vector<RateResponsePoint> points;
};

/// Eq. (1): rate response of a FIFO queue with fluid cross-traffic,
///   ro = min(ri, C ri / (ri + C - A)),
/// where C is the capacity and A the available bandwidth.
[[nodiscard]] double fifo_rate_response_bps(double ri_bps, double capacity_bps,
                                            double available_bps);

/// Eq. (3): rate response of a CSMA/CA link without FIFO cross-traffic,
///   ro = min(ri, B),
/// with B the achievable throughput (the probe's fair share).
[[nodiscard]] double wlan_rate_response_bps(double ri_bps,
                                            double achievable_bps);

/// Parameters of the complete model (Section 3.2): Bf is the achievable
/// throughput the probe would get with no FIFO cross-traffic, and u_fifo
/// the mean utilization the FIFO cross-traffic makes of the queue.
struct CompleteCurve {
  double bf_bps = 0.0;
  double u_fifo = 0.0;

  /// Eq. (5): B = Bf (1 - u_fifo).
  [[nodiscard]] double achievable_bps() const { return bf_bps * (1 - u_fifo); }

  /// Eq. (4): ro = ri for ri <= B, else Bf ri / (ri + u_fifo Bf).
  [[nodiscard]] double response_bps(double ri_bps) const;
};

/// The paper's definition of achievable throughput (Eq. 2):
/// B = sup { ri : ro/ri = 1 }, evaluated on a measured curve as the
/// largest input rate whose output matched the input within `rel_tol`.
/// Returns 0 when no point qualifies.
[[nodiscard]] double achievable_throughput_from_curve(
    std::span<const RateResponsePoint> points, double rel_tol = 0.02);

}  // namespace csmabw::core
