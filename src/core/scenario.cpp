#include "core/scenario.hpp"

#include <charconv>
#include <utility>

#include "stats/rng.hpp"
#include "topo/conflict_medium.hpp"
#include "topo/registry.hpp"
#include "traffic/flow_meter.hpp"
#include "traffic/source.hpp"
#include "util/options.hpp"
#include "util/require.hpp"

namespace csmabw::core {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

int parse_size(std::string_view text, std::string_view context) {
  int size = 0;
  const char* first = text.data();
  const char* last = first + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, size);
  CSMABW_REQUIRE(ec == std::errc{} && ptr == last && size > 0,
                 "malformed packet size `" + std::string(text) + "` in `" +
                     std::string(context) + "`");
  return size;
}

/// Parses one contender group: `[<count>x ]<traffic>[/<size>][@<rate>]`.
/// Returns the repeated station spec via `out` and the repeat count.
int parse_group(std::string_view group, StationSpec* out) {
  const std::string_view full = group;
  int count = 1;
  if (!group.empty() && group.front() >= '0' && group.front() <= '9') {
    const char* first = group.data();
    const char* last = first + group.size();
    const auto [ptr, ec] = std::from_chars(first, last, count);
    CSMABW_REQUIRE(ec == std::errc{} && ptr != last && *ptr == 'x' &&
                       count >= 1,
                   "malformed contender group `" + std::string(full) +
                       "` (expected `<count>x <traffic-spec>`)");
    group.remove_prefix(static_cast<std::size_t>(ptr - first) + 1);
    group = trim(group);
  }
  StationSpec spec;
  const std::size_t at = group.find('@');
  if (at != std::string_view::npos) {
    spec.data_rate_bps = util::parse_rate_bps(trim(group.substr(at + 1)));
    group = trim(group.substr(0, at));
  }
  const std::size_t slash = group.find('/');
  if (slash != std::string_view::npos) {
    spec.size_bytes = parse_size(trim(group.substr(slash + 1)), full);
    group = trim(group.substr(0, slash));
  }
  CSMABW_REQUIRE(!group.empty(), "contender group `" + std::string(full) +
                                     "` has no traffic spec");
  // Canonicalization doubles as eager validation of the traffic spec.
  spec.traffic = traffic::TrafficModelRegistry::global().canonical(group);
  *out = spec;
  return count;
}

/// Canonical text of one group of `count` identical stations.
std::string describe_group(const StationSpec& spec, int count) {
  std::string out;
  if (count > 1) {
    out += std::to_string(count) + "x ";
  }
  out += spec.traffic;
  if (spec.size_bytes != 1500) {
    out += "/" + std::to_string(spec.size_bytes);
  }
  if (spec.data_rate_bps.has_value()) {
    out += "@" + util::format_rate(*spec.data_rate_bps);
  }
  return out;
}

void validate_name(std::string_view name) {
  CSMABW_REQUIRE(!name.empty(), "scenario name must be non-empty");
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' ||
                    c == '.';
    CSMABW_REQUIRE(ok, "scenario name `" + std::string(name) +
                           "` may only contain [A-Za-z0-9_.-]");
  }
}

}  // namespace

// ------------------------------------------------------------ StationSpec

StationSpec StationSpec::poisson(BitRate rate, int size_bytes) {
  StationSpec spec;
  spec.traffic = "poisson:rate=" + util::format_rate(rate.to_bps());
  spec.size_bytes = size_bytes;
  return spec;
}

StationSpec StationSpec::saturated(int size_bytes) {
  StationSpec spec;
  spec.traffic = "saturated";
  spec.size_bytes = size_bytes;
  return spec;
}

// ------------------------------------------------------------ PHY presets

mac::PhyParams phy_preset(const std::string& name) {
  if (name == "dot11b_short") {
    return mac::PhyParams::dot11b_short();
  }
  if (name == "dot11b_long") {
    return mac::PhyParams::dot11b_long();
  }
  if (name == "dot11g") {
    return mac::PhyParams::dot11g();
  }
  throw util::PreconditionError("unknown PHY preset: " + name);
}

const std::vector<std::string>& phy_preset_names() {
  static const std::vector<std::string> names{"dot11b_short", "dot11b_long",
                                              "dot11g"};
  return names;
}

// ----------------------------------------------------------- ScenarioSpec

ScenarioSpec ScenarioSpec::parse(std::string_view text) {
  ScenarioSpec spec;
  bool saw_name = false;
  bool saw_phy = false;
  bool saw_topology = false;
  bool saw_contenders = false;
  bool saw_fifo = false;
  CSMABW_REQUIRE(!trim(text).empty(), "scenario spec is empty");
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t semi = text.find(';', pos);
    const std::size_t end = semi == std::string_view::npos ? text.size()
                                                           : semi;
    const std::string_view field = trim(text.substr(pos, end - pos));
    CSMABW_REQUIRE(!field.empty(), "empty field in scenario spec `" +
                                       std::string(text) + "`");
    const std::size_t eq = field.find('=');
    CSMABW_REQUIRE(eq != std::string_view::npos,
                   "scenario field `" + std::string(field) +
                       "` is not of the form key=value");
    const std::string_view key = trim(field.substr(0, eq));
    const std::string_view value = trim(field.substr(eq + 1));
    if (key == "name") {
      CSMABW_REQUIRE(!saw_name, "duplicate scenario field `name`");
      saw_name = true;
      validate_name(value);
      spec.name = std::string(value);
    } else if (key == "phy") {
      CSMABW_REQUIRE(!saw_phy, "duplicate scenario field `phy`");
      saw_phy = true;
      // Throws on unknown presets.
      (void)core::phy_preset(std::string(value));
      spec.phy_preset = std::string(value);
    } else if (key == "topology") {
      CSMABW_REQUIRE(!saw_topology, "duplicate scenario field `topology`");
      saw_topology = true;
      // Canonicalization doubles as eager validation of the arg
      // grammar; the station-count check waits for build time.
      spec.topology = topo::TopologyRegistry::global().canonical(value);
    } else if (key == "contenders") {
      CSMABW_REQUIRE(!saw_contenders,
                     "duplicate scenario field `contenders`");
      saw_contenders = true;
      std::size_t gpos = 0;
      while (gpos <= value.size()) {
        const std::size_t plus = value.find('+', gpos);
        const std::size_t gend =
            plus == std::string_view::npos ? value.size() : plus;
        const std::string_view group = trim(value.substr(gpos, gend - gpos));
        CSMABW_REQUIRE(!group.empty(),
                       "empty contender group in `" + std::string(value) +
                           "`");
        StationSpec station;
        const int count = parse_group(group, &station);
        for (int k = 0; k < count; ++k) {
          spec.contenders.push_back(station);
        }
        if (plus == std::string_view::npos) {
          break;
        }
        gpos = plus + 1;
      }
    } else if (key == "fifo") {
      CSMABW_REQUIRE(!saw_fifo, "duplicate scenario field `fifo`");
      saw_fifo = true;
      StationSpec station;
      const int count = parse_group(value, &station);
      CSMABW_REQUIRE(count == 1 && !station.data_rate_bps.has_value(),
                     "fifo cross-traffic is a single flow on the probe "
                     "station; `" + std::string(value) +
                         "` may not use a count or @rate");
      spec.fifo = station;
    } else {
      throw util::PreconditionError(
          "unknown scenario field `" + std::string(key) +
          "` (known: name, phy, topology, contenders, fifo)");
    }
    if (semi == std::string_view::npos) {
      break;
    }
    pos = semi + 1;
  }
  return spec;
}

std::string ScenarioSpec::describe() const {
  std::string out;
  if (!name.empty()) {
    out += "name=" + name + ";";
  }
  out += "phy=" + phy_preset;
  if (topology != topo::kDefaultTopology) {
    out += ";topology=" + topology;
  }
  if (!contenders.empty()) {
    out += ";contenders=";
    std::size_t i = 0;
    bool first = true;
    while (i < contenders.size()) {
      std::size_t j = i;
      while (j < contenders.size() && contenders[j] == contenders[i]) {
        ++j;
      }
      if (!first) {
        out += " + ";
      }
      first = false;
      out += describe_group(contenders[i], static_cast<int>(j - i));
      i = j;
    }
  }
  if (fifo.has_value()) {
    out += ";fifo=" + describe_group(*fifo, 1);
  }
  return out;
}

std::string ScenarioSpec::label() const {
  return name.empty() ? describe() : name;
}

ScenarioConfig ScenarioSpec::to_config(std::uint64_t seed) const {
  ScenarioConfig cfg;
  cfg.phy = core::phy_preset(this->phy_preset);
  cfg.topology = topology;
  cfg.contenders = contenders;
  cfg.fifo_cross = fifo;
  cfg.seed = seed;
  return cfg;
}

std::optional<BitRate> ScenarioSpec::offered_load() const {
  const auto& registry = traffic::TrafficModelRegistry::global();
  double total = 0.0;
  for (const StationSpec& spec : contenders) {
    const std::optional<BitRate> rate =
        registry.create(spec.traffic)->offered_rate();
    if (!rate.has_value()) {
      return std::nullopt;
    }
    total += rate->to_bps();
  }
  return BitRate::bps(total);
}

// ------------------------------------------------------- ScenarioRegistry

void ScenarioRegistry::add(std::string name, ScenarioSpec spec) {
  validate_name(name);
  spec.name = name;
  const auto [it, inserted] = specs_.emplace(std::move(name),
                                             std::move(spec));
  CSMABW_REQUIRE(inserted,
                 "scenario `" + it->first + "` is already registered");
}

bool ScenarioRegistry::contains(std::string_view name) const {
  return specs_.find(name) != specs_.end();
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(specs_.size());
  for (const auto& [name, spec] : specs_) {
    out.push_back(name);  // std::map iterates in sorted key order
  }
  return out;
}

const ScenarioSpec& ScenarioRegistry::get(std::string_view name) const {
  const auto it = specs_.find(name);
  CSMABW_REQUIRE(it != specs_.end(),
                 "unknown scenario `" + std::string(name) + "`");
  return it->second;
}

ScenarioSpec ScenarioRegistry::resolve(std::string_view name_or_grammar)
    const {
  const auto it = specs_.find(name_or_grammar);
  return it != specs_.end() ? it->second
                            : ScenarioSpec::parse(name_or_grammar);
}

void ScenarioRegistry::register_builtins(ScenarioRegistry& registry) {
  // The paper's Fig 2 (one Poisson contender) and Fig 3 (adding FIFO
  // cross-traffic on the probing station's own queue).
  registry.add("paper_fig2", ScenarioSpec::parse(
                                 "phy=dot11b_short;"
                                 "contenders=1x poisson:rate=2M"));
  registry.add("paper_fig3",
               ScenarioSpec::parse("phy=dot11b_short;"
                                   "contenders=1x poisson:rate=2M;"
                                   "fifo=poisson:rate=1M"));
  // Heusse et al. 2003: one 2 Mb/s laggard drags an 11 Mb/s cell down
  // to roughly equal per-station shares.
  registry.add("rate_anomaly",
               ScenarioSpec::parse("phy=dot11b_short;"
                                   "contenders=2x saturated + "
                                   "1x saturated@2M"));
  // Bursty non-saturated contention (Section 6.3 burstiness
  // sensitivity): same mean load as paper_fig2's contender, delivered
  // in 50 ms bursts at 3.3x the mean rate.
  registry.add("bursty",
               ScenarioSpec::parse(
                   "phy=dot11b_short;"
                   "contenders=1x onoff:rate=2M,duty=0.3,burst=50ms"));
  // Heterogeneous PHY rates without saturation: one contender at the
  // cell rate, one fallen back to 2 Mb/s.
  registry.add("hetero_rates",
               ScenarioSpec::parse("phy=dot11b_short;"
                                   "contenders=1x poisson:rate=2M + "
                                   "1x poisson:rate=2M@2M"));
}

ScenarioRegistry& ScenarioRegistry::global() {
  static ScenarioRegistry* registry = [] {
    auto* r = new ScenarioRegistry;
    register_builtins(*r);
    return r;
  }();
  return *registry;
}

// ----------------------------------------------------------- ScenarioCell

namespace {

/// Parses (and thereby validates) every contender's traffic spec.
std::vector<TrafficModelPtr> parse_contender_models(
    const ScenarioConfig& cfg) {
  const auto& registry = traffic::TrafficModelRegistry::global();
  std::vector<TrafficModelPtr> models;
  models.reserve(cfg.contenders.size());
  for (const StationSpec& spec : cfg.contenders) {
    CSMABW_REQUIRE(spec.size_bytes > 0, "packet size must be positive");
    models.push_back(registry.create(spec.traffic));
  }
  return models;
}

/// Selects the cell's medium.  The default single collision domain —
/// bare `clique`, plus any explicit clique that matches the cell —
/// keeps the classic dense mac::Medium, the fast path whose outputs
/// existing campaigns are byte-identical on; every other topology runs
/// on a topo::ConflictGraphMedium over the registry-built graph.
mac::WlanNetwork::MediumFactory medium_factory(const ScenarioConfig& cfg) {
  const auto dense = [](sim::Simulator& sim, const mac::PhyParams& phy) {
    return std::make_unique<mac::Medium>(sim, phy);
  };
  if (cfg.topology == topo::kDefaultTopology) {
    return dense;
  }
  const int stations = 1 + static_cast<int>(cfg.contenders.size());
  topo::Topology t =
      topo::TopologyRegistry::global().build(cfg.topology, stations);
  if (t.is_clique()) {
    return dense;
  }
  return [t = std::move(t)](sim::Simulator& sim, const mac::PhyParams& phy)
             -> std::unique_ptr<mac::MediumBase> {
    return std::make_unique<topo::ConflictGraphMedium>(sim, phy, t);
  };
}

TrafficModelPtr parse_fifo_model(const ScenarioConfig& cfg) {
  if (!cfg.fifo_cross.has_value()) {
    return nullptr;
  }
  CSMABW_REQUIRE(cfg.fifo_cross->size_bytes > 0,
                 "packet size must be positive");
  CSMABW_REQUIRE(!cfg.fifo_cross->data_rate_bps.has_value(),
                 "fifo cross-traffic rides the probe station; it cannot "
                 "override the PHY rate");
  return traffic::TrafficModelRegistry::global().create(
      cfg.fifo_cross->traffic);
}

}  // namespace

ScenarioCell::ScenarioCell(const ScenarioConfig& cfg,
                           std::uint64_t repetition)
    : ScenarioCell(cfg, repetition, parse_contender_models(cfg),
                   parse_fifo_model(cfg)) {}

ScenarioCell::ScenarioCell(
    const ScenarioConfig& cfg, std::uint64_t repetition,
    const std::vector<TrafficModelPtr>& contender_models,
    const TrafficModelPtr& fifo_model)
    : net_(cfg.phy, stats::Rng(cfg.seed).fork(repetition).seed(),
           medium_factory(cfg)) {
  CSMABW_REQUIRE(contender_models.size() == cfg.contenders.size() &&
                     fifo_model.operator bool() ==
                         cfg.fifo_cross.has_value(),
                 "prebuilt traffic models do not match the scenario");
  mac::DcfStation& probe = net_.add_station();
  dispatchers_.push_back(std::make_unique<traffic::FlowDispatcher>(probe));
  for (std::size_t i = 0; i < cfg.contenders.size(); ++i) {
    const StationSpec& spec = cfg.contenders[i];
    mac::DcfStation& st = net_.add_station();
    if (spec.data_rate_bps.has_value()) {
      st.set_data_rate_bps(*spec.data_rate_bps);
    }
    dispatchers_.push_back(std::make_unique<traffic::FlowDispatcher>(st));
    auto src = contender_models[i]->instantiate(
        {net_.simulator(), st, *dispatchers_.back(), static_cast<int>(i),
         spec.size_bytes, net_.rng("cross-" + std::to_string(i))});
    src->start(TimeNs::zero());
    sources_.push_back(std::move(src));
  }
  if (cfg.fifo_cross.has_value()) {
    auto src = fifo_model->instantiate(
        {net_.simulator(), probe, *dispatchers_.front(), kFifoCrossFlow,
         cfg.fifo_cross->size_bytes, net_.rng("fifo-cross")});
    src->start(TimeNs::zero());
    sources_.push_back(std::move(src));
  }
}

// --------------------------------------------------------------- results

std::vector<double> TrainRun::access_delays_s() const {
  CSMABW_REQUIRE(!any_dropped, "train suffered drops");
  std::vector<double> out;
  out.reserve(packets.size());
  for (const auto& p : packets) {
    out.push_back(p.access_delay_s());
  }
  return out;
}

double TrainRun::output_gap_s() const {
  CSMABW_REQUIRE(!any_dropped, "train suffered drops");
  CSMABW_REQUIRE(packets.size() >= 2, "need >= 2 packets");
  const auto n = packets.size();
  return (packets[n - 1].depart_time - packets[0].depart_time).to_seconds() /
         static_cast<double>(n - 1);
}

double TrainSequenceResult::mean_gap_s() const {
  CSMABW_REQUIRE(!gaps_s.empty(), "no complete trains");
  double total = 0.0;
  for (double g : gaps_s) {
    total += g;
  }
  return total / static_cast<double>(gaps_s.size());
}

// -------------------------------------------------------------- Scenario

Scenario::Scenario(ScenarioConfig cfg) : cfg_(std::move(cfg)) {
  cfg_.phy.validate();
  CSMABW_REQUIRE(cfg_.warmup >= TimeNs::zero(), "warmup must be >= 0");
  // Eager validation doubles as the parse: a bad traffic spec fails
  // here, not mid-campaign, and every repetition reuses these models.
  contender_models_ = parse_contender_models(cfg_);
  fifo_model_ = parse_fifo_model(cfg_);
  if (cfg_.topology != topo::kDefaultTopology) {
    // Same eagerness for the topology: surfaces unknown names, bad
    // args and station-count mismatches before any repetition runs.
    (void)topo::TopologyRegistry::global().build(
        cfg_.topology, 1 + static_cast<int>(cfg_.contenders.size()));
  }
}

TrainRun Scenario::run_train(const traffic::TrainSpec& spec,
                             std::uint64_t repetition,
                             bool sample_contender_queue,
                             trace::TraceSink* trace,
                             obs::Registry* metrics) const {
  CSMABW_REQUIRE(!sample_contender_queue || !cfg_.contenders.empty(),
                 "queue sampling needs at least one contender");
  ScenarioCell cell(cfg_, repetition, contender_models_, fifo_model_);
  cell.set_trace(trace);
  cell.set_metrics(metrics);
  auto& sim = cell.simulator();

  stats::Rng phase_rng = cell.net().rng("probe-phase");
  const TimeNs start =
      cfg_.warmup + TimeNs::from_seconds(phase_rng.exponential(
                        cfg_.probe_phase_mean.to_seconds()));

  traffic::ProbeTrain train(sim, cell.probe_station(), spec, kProbeFlow);
  cell.dispatcher(0).on_flow(kProbeFlow, [&train](const mac::Packet& p) {
    train.on_packet_done(p);
  });

  TrainRun run;
  if (sample_contender_queue) {
    run.contender_queue_at_arrival.resize(static_cast<std::size_t>(spec.n));
    auto& contender = cell.contender_station(0);
    for (int k = 0; k < spec.n; ++k) {
      // One nanosecond after the arrival: samples the contending queue
      // state the probe packet actually faces.
      sim.schedule_at(start + spec.gap * k + TimeNs::ns(1),
                      [&run, &contender, k] {
                        run.contender_queue_at_arrival[static_cast<std::size_t>(
                            k)] = static_cast<double>(contender.queue_length());
                      });
    }
  }

  train.start(start);
  const bool finished =
      sim.run_while_pending([&train] { return train.complete(); });
  CSMABW_REQUIRE(finished, "simulation drained before the train completed");

  run.packets = train.records();
  run.any_dropped = train.any_dropped();
  const sim::Simulator::Cost cost = sim.cost();
  run.sim_events = cost.events_processed;
  run.sim_allocations = cost.allocations;
  run.sim_slot_capacity = cost.slot_capacity;
  return run;
}

SteadyStateResult Scenario::run_steady_state(BitRate probe_rate,
                                             int probe_size_bytes,
                                             TimeNs duration,
                                             TimeNs measure_from,
                                             trace::TraceSink* trace) const {
  CSMABW_REQUIRE(measure_from >= cfg_.warmup,
                 "measurement must start after warm-up");
  CSMABW_REQUIRE(duration > measure_from, "duration must exceed window start");
  ScenarioCell cell(cfg_, /*repetition=*/0, contender_models_,
                    fifo_model_);
  cell.set_trace(trace);
  auto& sim = cell.simulator();

  traffic::CbrSource probe(sim, cell.probe_station(), kProbeFlow,
                           probe_size_bytes, probe_rate.gap_for(probe_size_bytes));
  probe.start(cfg_.warmup);

  traffic::FlowMeter probe_meter(measure_from, duration);
  traffic::FlowMeter fifo_meter(measure_from, duration);
  // on_any with a flow filter, NOT on_flow: on_flow would replace the
  // handler a reactive fifo source (saturated) registered for its flow
  // in the cell builder, silently starving the flow.
  cell.dispatcher(0).on_any([&probe_meter, &fifo_meter](const mac::Packet& p) {
    if (p.flow == kProbeFlow) {
      probe_meter.on_packet(p);
    } else if (p.flow == kFifoCrossFlow) {
      fifo_meter.on_packet(p);
    }
  });

  std::vector<std::unique_ptr<traffic::FlowMeter>> contender_meters;
  for (std::size_t i = 0; i < cfg_.contenders.size(); ++i) {
    contender_meters.push_back(
        std::make_unique<traffic::FlowMeter>(measure_from, duration));
    traffic::FlowMeter* meter = contender_meters.back().get();
    cell.dispatcher(static_cast<int>(i) + 1)
        .on_any([meter](const mac::Packet& p) { meter->on_packet(p); });
  }

  sim.run_until(duration);

  SteadyStateResult r;
  r.probe = probe_meter.rate();
  r.fifo_cross = cfg_.fifo_cross.has_value() ? fifo_meter.rate()
                                             : BitRate::bps(0.0);
  double total = 0.0;
  for (auto& m : contender_meters) {
    r.per_contender.push_back(m->rate());
    total += m->rate().to_bps();
  }
  r.contenders_total = BitRate::bps(total);
  return r;
}

ContentionResult Scenario::run_contention(TimeNs duration,
                                          TimeNs measure_from,
                                          std::uint64_t repetition,
                                          trace::TraceSink* trace) const {
  CSMABW_REQUIRE(measure_from >= TimeNs::zero(),
                 "measurement start must be >= 0");
  CSMABW_REQUIRE(duration > measure_from, "duration must exceed window start");
  ScenarioCell cell(cfg_, repetition, contender_models_, fifo_model_);
  cell.set_trace(trace);

  std::vector<std::unique_ptr<traffic::FlowMeter>> meters;
  for (std::size_t i = 0; i < cfg_.contenders.size(); ++i) {
    meters.push_back(
        std::make_unique<traffic::FlowMeter>(measure_from, duration));
    traffic::FlowMeter* meter = meters.back().get();
    cell.dispatcher(static_cast<int>(i) + 1)
        .on_any([meter](const mac::Packet& p) { meter->on_packet(p); });
  }

  cell.simulator().run_until(duration);

  ContentionResult r;
  double total = 0.0;
  for (auto& m : meters) {
    r.per_contender.push_back(m->rate());
    total += m->rate().to_bps();
  }
  r.aggregate = BitRate::bps(total);
  r.medium = cell.net().medium().stats();
  return r;
}

TrainSequenceResult Scenario::run_train_sequence(
    const traffic::TrainSpec& spec, int trains, TimeNs mean_spacing,
    std::uint64_t repetition) const {
  CSMABW_REQUIRE(trains >= 1, "need at least one train");
  ScenarioCell cell(cfg_, repetition, contender_models_, fifo_model_);
  auto& sim = cell.simulator();
  stats::Rng spacing_rng = cell.net().rng("train-spacing");

  TrainSequenceResult result;
  TimeNs start = cfg_.warmup + TimeNs::from_seconds(spacing_rng.exponential(
                                   cfg_.probe_phase_mean.to_seconds()));
  for (int t = 0; t < trains; ++t) {
    traffic::ProbeTrain train(sim, cell.probe_station(), spec, kProbeFlow);
    cell.dispatcher(0).on_flow(kProbeFlow, [&train](const mac::Packet& p) {
      train.on_packet_done(p);
    });
    train.start(start);
    const bool finished =
        sim.run_while_pending([&train] { return train.complete(); });
    CSMABW_REQUIRE(finished, "simulation drained before the train completed");
    if (train.any_dropped()) {
      ++result.dropped_trains;
    } else {
      const auto departures = train.departures();
      result.gaps_s.push_back(
          (departures.back() - departures.front()).to_seconds() /
          static_cast<double>(departures.size() - 1));
    }
    start = sim.now() + TimeNs::from_seconds(spacing_rng.exponential(
                            mean_spacing.to_seconds()));
  }
  return result;
}

TrainResult SimTransport::send_train(const traffic::TrainSpec& spec) {
  const TrainRun run = scenario_.run_train(spec, next_rep_++);
  TrainResult out;
  out.packets.reserve(run.packets.size());
  for (const auto& p : run.packets) {
    ProbeRecord rec;
    rec.seq = p.seq;
    rec.send_s = p.enqueue_time.to_seconds();
    rec.recv_s = p.depart_time.to_seconds();
    rec.lost = p.dropped;
    out.packets.push_back(rec);
  }
  return out;
}

}  // namespace csmabw::core
