#include "core/scenario.hpp"

#include <memory>

#include "mac/wlan.hpp"
#include "stats/rng.hpp"
#include "traffic/flow_meter.hpp"
#include "traffic/source.hpp"
#include "util/require.hpp"

namespace csmabw::core {

namespace {

/// One fully wired WLAN cell: network, stations and cross-traffic
/// sources.  Station 0 is the probing station; stations 1..k carry the
/// contending flows 0..k-1.
struct Cell {
  mac::WlanNetwork net;
  std::vector<std::unique_ptr<traffic::PoissonSource>> sources;

  Cell(const ScenarioConfig& cfg, std::uint64_t repetition)
      : net(cfg.phy, stats::Rng(cfg.seed).fork(repetition).seed()) {
    mac::DcfStation& probe_station = net.add_station();
    for (std::size_t i = 0; i < cfg.contenders.size(); ++i) {
      const CrossTrafficSpec& spec = cfg.contenders[i];
      mac::DcfStation& st = net.add_station();
      auto src = std::make_unique<traffic::PoissonSource>(
          net.simulator(), st, static_cast<int>(i), spec.size_bytes,
          spec.rate, net.rng("cross-" + std::to_string(i)));
      src->start(TimeNs::zero());
      sources.push_back(std::move(src));
    }
    if (cfg.fifo_cross.has_value()) {
      auto src = std::make_unique<traffic::PoissonSource>(
          net.simulator(), probe_station, kFifoCrossFlow,
          cfg.fifo_cross->size_bytes, cfg.fifo_cross->rate,
          net.rng("fifo-cross"));
      src->start(TimeNs::zero());
      sources.push_back(std::move(src));
    }
  }

  [[nodiscard]] mac::DcfStation& probe_station() { return net.station(0); }
};

}  // namespace

std::vector<double> TrainRun::access_delays_s() const {
  CSMABW_REQUIRE(!any_dropped, "train suffered drops");
  std::vector<double> out;
  out.reserve(packets.size());
  for (const auto& p : packets) {
    out.push_back(p.access_delay_s());
  }
  return out;
}

double TrainRun::output_gap_s() const {
  CSMABW_REQUIRE(!any_dropped, "train suffered drops");
  CSMABW_REQUIRE(packets.size() >= 2, "need >= 2 packets");
  const auto n = packets.size();
  return (packets[n - 1].depart_time - packets[0].depart_time).to_seconds() /
         static_cast<double>(n - 1);
}

double TrainSequenceResult::mean_gap_s() const {
  CSMABW_REQUIRE(!gaps_s.empty(), "no complete trains");
  double total = 0.0;
  for (double g : gaps_s) {
    total += g;
  }
  return total / static_cast<double>(gaps_s.size());
}

Scenario::Scenario(ScenarioConfig cfg) : cfg_(std::move(cfg)) {
  cfg_.phy.validate();
  CSMABW_REQUIRE(cfg_.warmup >= TimeNs::zero(), "warmup must be >= 0");
}

TrainRun Scenario::run_train(const traffic::TrainSpec& spec,
                             std::uint64_t repetition,
                             bool sample_contender_queue) const {
  CSMABW_REQUIRE(!sample_contender_queue || !cfg_.contenders.empty(),
                 "queue sampling needs at least one contender");
  Cell cell(cfg_, repetition);
  auto& sim = cell.net.simulator();

  stats::Rng phase_rng = cell.net.rng("probe-phase");
  const TimeNs start =
      cfg_.warmup + TimeNs::from_seconds(phase_rng.exponential(
                        cfg_.probe_phase_mean.to_seconds()));

  traffic::ProbeTrain train(sim, cell.probe_station(), spec, kProbeFlow);
  traffic::FlowDispatcher dispatch(cell.probe_station());
  dispatch.on_flow(kProbeFlow,
                   [&train](const mac::Packet& p) { train.on_packet_done(p); });

  TrainRun run;
  if (sample_contender_queue) {
    run.contender_queue_at_arrival.resize(static_cast<std::size_t>(spec.n));
    auto& contender = cell.net.station(1);
    for (int k = 0; k < spec.n; ++k) {
      // One nanosecond after the arrival: samples the contending queue
      // state the probe packet actually faces.
      sim.schedule_at(start + spec.gap * k + TimeNs::ns(1),
                      [&run, &contender, k] {
                        run.contender_queue_at_arrival[static_cast<std::size_t>(
                            k)] = static_cast<double>(contender.queue_length());
                      });
    }
  }

  train.start(start);
  const bool finished =
      sim.run_while_pending([&train] { return train.complete(); });
  CSMABW_REQUIRE(finished, "simulation drained before the train completed");

  run.packets = train.records();
  run.any_dropped = train.any_dropped();
  return run;
}

SteadyStateResult Scenario::run_steady_state(BitRate probe_rate,
                                             int probe_size_bytes,
                                             TimeNs duration,
                                             TimeNs measure_from) const {
  CSMABW_REQUIRE(measure_from >= cfg_.warmup,
                 "measurement must start after warm-up");
  CSMABW_REQUIRE(duration > measure_from, "duration must exceed window start");
  Cell cell(cfg_, /*repetition=*/0);
  auto& sim = cell.net.simulator();

  traffic::CbrSource probe(sim, cell.probe_station(), kProbeFlow,
                           probe_size_bytes, probe_rate.gap_for(probe_size_bytes));
  probe.start(cfg_.warmup);

  traffic::FlowMeter probe_meter(measure_from, duration);
  traffic::FlowMeter fifo_meter(measure_from, duration);
  traffic::FlowDispatcher probe_dispatch(cell.probe_station());
  probe_dispatch.on_flow(kProbeFlow, [&probe_meter](const mac::Packet& p) {
    probe_meter.on_packet(p);
  });
  probe_dispatch.on_flow(kFifoCrossFlow, [&fifo_meter](const mac::Packet& p) {
    fifo_meter.on_packet(p);
  });

  std::vector<std::unique_ptr<traffic::FlowMeter>> contender_meters;
  std::vector<std::unique_ptr<traffic::FlowDispatcher>> contender_dispatch;
  for (std::size_t i = 0; i < cfg_.contenders.size(); ++i) {
    contender_meters.push_back(
        std::make_unique<traffic::FlowMeter>(measure_from, duration));
    contender_dispatch.push_back(std::make_unique<traffic::FlowDispatcher>(
        cell.net.station(static_cast<int>(i) + 1)));
    traffic::FlowMeter* meter = contender_meters.back().get();
    contender_dispatch.back()->on_any(
        [meter](const mac::Packet& p) { meter->on_packet(p); });
  }

  sim.run_until(duration);

  SteadyStateResult r;
  r.probe = probe_meter.rate();
  r.fifo_cross = cfg_.fifo_cross.has_value() ? fifo_meter.rate()
                                             : BitRate::bps(0.0);
  double total = 0.0;
  for (auto& m : contender_meters) {
    r.per_contender.push_back(m->rate());
    total += m->rate().to_bps();
  }
  r.contenders_total = BitRate::bps(total);
  return r;
}

TrainSequenceResult Scenario::run_train_sequence(
    const traffic::TrainSpec& spec, int trains, TimeNs mean_spacing,
    std::uint64_t repetition) const {
  CSMABW_REQUIRE(trains >= 1, "need at least one train");
  Cell cell(cfg_, repetition);
  auto& sim = cell.net.simulator();
  traffic::FlowDispatcher dispatch(cell.probe_station());
  stats::Rng spacing_rng = cell.net.rng("train-spacing");

  TrainSequenceResult result;
  TimeNs start = cfg_.warmup + TimeNs::from_seconds(spacing_rng.exponential(
                                   cfg_.probe_phase_mean.to_seconds()));
  for (int t = 0; t < trains; ++t) {
    traffic::ProbeTrain train(sim, cell.probe_station(), spec, kProbeFlow);
    dispatch.on_flow(kProbeFlow, [&train](const mac::Packet& p) {
      train.on_packet_done(p);
    });
    train.start(start);
    const bool finished =
        sim.run_while_pending([&train] { return train.complete(); });
    CSMABW_REQUIRE(finished, "simulation drained before the train completed");
    if (train.any_dropped()) {
      ++result.dropped_trains;
    } else {
      const auto departures = train.departures();
      result.gaps_s.push_back(
          (departures.back() - departures.front()).to_seconds() /
          static_cast<double>(departures.size() - 1));
    }
    start = sim.now() + TimeNs::from_seconds(spacing_rng.exponential(
                            mean_spacing.to_seconds()));
  }
  return result;
}

TrainResult SimTransport::send_train(const traffic::TrainSpec& spec) {
  const TrainRun run = scenario_.run_train(spec, next_rep_++);
  TrainResult out;
  out.packets.reserve(run.packets.size());
  for (const auto& p : run.packets) {
    ProbeRecord rec;
    rec.seq = p.seq;
    rec.send_s = p.enqueue_time.to_seconds();
    rec.recv_s = p.depart_time.to_seconds();
    rec.lost = p.dropped;
    out.packets.push_back(rec);
  }
  return out;
}

}  // namespace csmabw::core
