#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/transport.hpp"
#include "mac/medium.hpp"
#include "mac/packet.hpp"
#include "mac/phy.hpp"
#include "mac/wlan.hpp"
#include "traffic/model.hpp"
#include "traffic/probe_train.hpp"
#include "util/time.hpp"
#include "util/units.hpp"

namespace csmabw::core {

/// One contending station of a scenario: the traffic it carries (a
/// traffic::TrafficModelRegistry spec such as "poisson:rate=2M",
/// "onoff:rate=6M,duty=0.3,burst=50ms" or "saturated"), the packet size
/// used when the spec has no `size=` override, and an optional
/// per-station PHY data-rate override (a far station that fell back to
/// 2 Mb/s — the 802.11 rate-anomaly ingredient).
struct StationSpec {
  std::string traffic = "poisson:rate=2M";
  int size_bytes = 1500;
  std::optional<double> data_rate_bps;

  /// The classic paper workload: one Poisson flow at `rate`.
  [[nodiscard]] static StationSpec poisson(BitRate rate,
                                           int size_bytes = 1500);
  /// An always-backlogged station (Bianchi's saturation workload).
  [[nodiscard]] static StationSpec saturated(int size_bytes = 1500);

  friend bool operator==(const StationSpec&, const StationSpec&) = default;
};

/// The experimental scenario generalizing the paper's Fig 2/Fig 3: one
/// probing station, zero or more contending stations each carrying one
/// configurable traffic flow, and optionally cross-traffic sharing the
/// probing station's FIFO queue.
struct ScenarioConfig {
  mac::PhyParams phy = mac::PhyParams::dot11b_short();
  /// Carrier-sense/interference topology of the cell — a
  /// topo::TopologyRegistry spec over 1 + contenders.size() stations
  /// (station 0 is the probe).  The default bare `clique` is the
  /// paper's single collision domain and runs on the classic
  /// mac::Medium; any other topology (including pinned `clique:N`,
  /// which must match the station count) is validated against the
  /// registry and non-clique graphs run on topo::ConflictGraphMedium.
  std::string topology = "clique";
  /// One entry per contending station.
  std::vector<StationSpec> contenders;
  /// FIFO cross-traffic on the probing station (Fig 3); disabled when
  /// absent (Fig 5).  The flow rides the probe station, so any
  /// data_rate_bps override here is rejected at build time.
  std::optional<StationSpec> fifo_cross;
  std::uint64_t seed = 1;
  /// Cross-traffic warm-up before the probe enters the system.
  TimeNs warmup = TimeNs::ms(500);
  /// The probe start is additionally offset by an exponential delay with
  /// this mean, randomizing the phase against the cross-traffic (the
  /// paper sends probing sequences with Poisson spacing for the same
  /// reason).
  TimeNs probe_phase_mean = TimeNs::ms(20);
};

/// Resolves a PHY preset by name ("dot11b_short", "dot11b_long",
/// "dot11g"); throws util::PreconditionError on unknown names.
[[nodiscard]] mac::PhyParams phy_preset(const std::string& name);
[[nodiscard]] const std::vector<std::string>& phy_preset_names();

/// A whole WLAN scenario as a parsable value — the scenario grammar.
///
/// Text form: `;`-separated `key=value` fields, each optional (`phy`
/// defaults to dot11b_short, `contenders` to none)
///
///   [name=<label>;][phy=<preset>;][topology=<topo-spec>;]
///   contenders=<group>[ + <group>...][;fifo=<traffic-spec>[/<size>]]
///
/// where a contender group is `[<count>x ]<traffic-spec>[/<size>][@<rate>]`:
/// `count` repeats the station spec, `/<size>` sets StationSpec::
/// size_bytes (default 1500) and `@<rate>` sets the station's PHY
/// data-rate override.  Examples:
///
///   phy=dot11b_short;contenders=3x onoff:rate=6M,duty=0.3,burst=50ms
///   contenders=2x saturated + 1x saturated@2M          (rate anomaly)
///   name=fig3;phy=dot11b_short;contenders=1x poisson:rate=2M;fifo=poisson:rate=1M
///   topology=grid:3x3;contenders=8x poisson:rate=400k  (hidden terminals)
///
/// parse() canonicalizes every traffic spec through the global
/// TrafficModelRegistry (and `topology` through topo::TopologyRegistry),
/// so `parse(describe(s)) == s` for any spec produced by parse() or
/// describe() — the round-trip contract campaigns and CI build on.
struct ScenarioSpec {
  /// Optional label (the `name=` field); used as the campaign coordinate
  /// when set.
  std::string name;
  std::string phy_preset = "dot11b_short";
  /// Conflict-graph topology spec (topo::TopologyRegistry); the
  /// default bare `clique` — today's single collision domain — is
  /// omitted from describe(), keeping pre-topology spellings stable.
  std::string topology = "clique";
  std::vector<StationSpec> contenders;
  std::optional<StationSpec> fifo;

  /// Parses the grammar above; throws util::PreconditionError on unknown
  /// keys, unknown PHY presets, malformed groups or invalid traffic
  /// specs.
  [[nodiscard]] static ScenarioSpec parse(std::string_view text);

  /// The canonical text form (adjacent equal stations grouped as `Nx`).
  [[nodiscard]] std::string describe() const;

  /// `name` when set, else describe() — the campaign coordinate value.
  [[nodiscard]] std::string label() const;

  /// Materializes the spec into a runnable configuration.
  [[nodiscard]] ScenarioConfig to_config(std::uint64_t seed = 1) const;

  /// Total mean offered cross-traffic load of the contenders, when every
  /// contender's model declares one (nullopt if any is saturated).
  [[nodiscard]] std::optional<BitRate> offered_load() const;

  friend bool operator==(const ScenarioSpec&, const ScenarioSpec&) = default;
};

/// String-keyed registry of named scenario presets — the scenario twin
/// of core::MethodRegistry.  resolve() accepts either a registered name
/// or an inline grammar string, so campaign axes can mix both.
class ScenarioRegistry {
 public:
  /// Registers `spec` under `name` (the spec's own name field is set to
  /// `name`).  Throws util::PreconditionError on an empty or duplicate
  /// name.
  void add(std::string name, ScenarioSpec spec);

  [[nodiscard]] bool contains(std::string_view name) const;
  /// Registered names in sorted order.
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] const ScenarioSpec& get(std::string_view name) const;

  /// The registered spec when `name_or_grammar` is a registered name,
  /// else ScenarioSpec::parse(name_or_grammar).
  [[nodiscard]] ScenarioSpec resolve(std::string_view name_or_grammar) const;

  /// Registers the built-in presets: paper_fig2, paper_fig3,
  /// rate_anomaly, bursty, hetero_rates.
  static void register_builtins(ScenarioRegistry& registry);

  /// The process-wide registry, pre-populated with the builtins.
  /// Register custom scenarios at startup, before campaigns run:
  /// resolve() is safe to call concurrently, add() is not.
  static ScenarioRegistry& global();

 private:
  std::map<std::string, ScenarioSpec, std::less<>> specs_;
};

/// Flow-id convention inside scenarios.
inline constexpr int kProbeFlow = 1000;
inline constexpr int kFifoCrossFlow = 1001;
/// Contender station i carries flow i (0-based).

/// One fully wired WLAN cell built from a ScenarioConfig — the single
/// place in the repository that assembles a mac::WlanNetwork with
/// stations, per-station flow dispatchers and traffic sources.  Station
/// 0 is the probing station; stations 1..k carry the contending flows
/// 0..k-1.  Every bench and example constructs its network through this
/// builder (directly or via Scenario); direct WlanNetwork wiring stays
/// confined to core/scenario and the mac tests.
/// Immutable, shareable handle to a parsed traffic model.
using TrafficModelPtr = std::shared_ptr<const traffic::TrafficModel>;

class ScenarioCell {
 public:
  /// Builds and starts the cell; repetition r of seed s reproduces the
  /// exact random streams of every other build with (s, r).  Parses the
  /// config's traffic specs; per-repetition hot loops should prefer the
  /// prebuilt-model overload (Scenario does).
  ScenarioCell(const ScenarioConfig& cfg, std::uint64_t repetition);

  /// Prebuilt-model fast path: `contender_models[i]` drives contender i
  /// and `fifo_model` (nullable) the fifo flow, so repeated builds skip
  /// re-parsing the spec strings.  The models must match the config.
  ScenarioCell(const ScenarioConfig& cfg, std::uint64_t repetition,
               const std::vector<TrafficModelPtr>& contender_models,
               const TrafficModelPtr& fifo_model);

  [[nodiscard]] mac::WlanNetwork& net() { return net_; }
  [[nodiscard]] sim::Simulator& simulator() { return net_.simulator(); }
  [[nodiscard]] mac::DcfStation& probe_station() { return net_.station(0); }
  /// Contending station i (0-based; station index i + 1).
  [[nodiscard]] mac::DcfStation& contender_station(int i) {
    return net_.station(i + 1);
  }
  /// The station's shared flow dispatcher (probe = station 0).  All
  /// delivery routing goes through these — a station has one delivery
  /// callback, owned by its dispatcher.
  [[nodiscard]] traffic::FlowDispatcher& dispatcher(int station_index) {
    return *dispatchers_.at(static_cast<std::size_t>(station_index));
  }
  [[nodiscard]] int contender_count() const {
    return net_.num_stations() - 1;
  }

  /// Installs an event tap on the whole cell (medium + every station),
  /// capturing any scenario/method run built on this cell.  Install
  /// right after construction to capture the warm-up too; tracing is
  /// observational only, so the run's random streams and results are
  /// bit-identical with or without it.
  void set_trace(trace::TraceSink* sink) { net_.set_trace(sink); }

  /// Binds the cell medium's hot-path counters (`topo.medium.*`) to a
  /// metrics registry; nullptr unbinds.  Observational only.
  void set_metrics(obs::Registry* reg) { net_.set_metrics(reg); }

 private:
  mac::WlanNetwork net_;
  std::vector<std::unique_ptr<traffic::FlowDispatcher>> dispatchers_;
  std::vector<std::unique_ptr<traffic::Source>> sources_;
};

/// Result of one probing-sequence repetition.
struct TrainRun {
  /// Probe packet records in sequence order (timestamps per mac::Packet).
  std::vector<mac::Packet> packets;
  bool any_dropped = false;
  /// Contender-0 queue length sampled just after each probe arrival
  /// (only when requested) — Fig 8 bottom.
  std::vector<double> contender_queue_at_arrival;

  /// Simulator runtime cost of this repetition (events stepped, slab
  /// allocations, event-slot high-water).  Deterministic per workload;
  /// feeds the observability run report at zero extra simulation cost.
  std::uint64_t sim_events = 0;
  std::uint64_t sim_allocations = 0;
  std::uint64_t sim_slot_capacity = 0;

  /// Access delays mu_i in seconds; requires !any_dropped (enforced).
  [[nodiscard]] std::vector<double> access_delays_s() const;
  /// Output gap (Eq. 16) over the departure timestamps.
  [[nodiscard]] double output_gap_s() const;
};

/// Steady-state throughputs of a long constant-rate probing run.
struct SteadyStateResult {
  BitRate probe;
  BitRate contenders_total;
  std::vector<BitRate> per_contender;
  BitRate fifo_cross;
};

/// Cross-traffic-only long run (no probe flow): per-contender delivered
/// throughputs plus the medium's counters — the saturation,
/// calibration and ablation experiments' workhorse.
struct ContentionResult {
  std::vector<BitRate> per_contender;
  BitRate aggregate;
  /// Medium counters over the WHOLE run (including [0, measure_from)).
  mac::MediumStats medium;
};

/// Result of a sequence of m trains in one long run (Section 5.1.2: m
/// probing sequences with Poisson spacing).
struct TrainSequenceResult {
  std::vector<double> gaps_s;  ///< per-train output gaps (complete trains)
  int dropped_trains = 0;

  [[nodiscard]] double mean_gap_s() const;
};

/// Builds and runs WLAN experiments for one scenario configuration.
///
/// Each run constructs a fresh ScenarioCell seeded from (seed,
/// repetition), warms the cross-traffic up, injects probe traffic and
/// harvests the records — exactly the ensemble methodology of Section 4.
class Scenario {
 public:
  /// Validates the PHY and parses every traffic spec eagerly (throws
  /// before any run starts); the parsed models are cached and shared
  /// with every per-repetition cell.
  explicit Scenario(ScenarioConfig cfg);

  [[nodiscard]] const ScenarioConfig& config() const { return cfg_; }

  /// One ensemble repetition: a single train of `spec` packets.
  /// `sample_contender_queue` additionally samples contender 0's queue at
  /// probe arrival instants.  A non-null `trace` records every MAC/queue
  /// event of the repetition (warm-up included) without perturbing it; a
  /// non-null `metrics` registry additionally collects the medium's
  /// `topo.medium.*` hot-path counters, equally without perturbing it.
  [[nodiscard]] TrainRun run_train(const traffic::TrainSpec& spec,
                                   std::uint64_t repetition,
                                   bool sample_contender_queue = false,
                                   trace::TraceSink* trace = nullptr,
                                   obs::Registry* metrics = nullptr) const;

  /// Long-run steady state: CBR probe at `probe_rate` from warmup until
  /// `duration`; throughput measured over [measure_from, duration).
  [[nodiscard]] SteadyStateResult run_steady_state(
      BitRate probe_rate, int probe_size_bytes, TimeNs duration,
      TimeNs measure_from, trace::TraceSink* trace = nullptr) const;

  /// Cross-traffic only, no probe: per-contender throughput over
  /// [measure_from, duration) and the medium counters of the whole run.
  [[nodiscard]] ContentionResult run_contention(
      TimeNs duration, TimeNs measure_from, std::uint64_t repetition = 0,
      trace::TraceSink* trace = nullptr) const;

  /// m trains of `spec` in one long run, consecutive trains separated by
  /// an exponential gap with mean `mean_spacing`.
  [[nodiscard]] TrainSequenceResult run_train_sequence(
      const traffic::TrainSpec& spec, int trains, TimeNs mean_spacing,
      std::uint64_t repetition) const;

 private:
  ScenarioConfig cfg_;
  /// Parsed once at construction; shared with every repetition's cell.
  std::vector<TrafficModelPtr> contender_models_;
  TrafficModelPtr fifo_model_;
};

/// ProbeTransport implementation backed by a Scenario: every train runs
/// in a fresh warmed-up system (repetition counter advances per call).
class SimTransport : public ProbeTransport {
 public:
  explicit SimTransport(ScenarioConfig cfg) : scenario_(std::move(cfg)) {}

  TrainResult send_train(const traffic::TrainSpec& spec) override;

  [[nodiscard]] const Scenario& scenario() const { return scenario_; }

 private:
  Scenario scenario_;
  std::uint64_t next_rep_ = 0;
};

}  // namespace csmabw::core
