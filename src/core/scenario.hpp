#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/transport.hpp"
#include "mac/packet.hpp"
#include "mac/phy.hpp"
#include "traffic/probe_train.hpp"
#include "util/time.hpp"
#include "util/units.hpp"

namespace csmabw::core {

/// A cross-traffic flow: Poisson arrivals at `rate` with `size_bytes`
/// packets (the paper's cross-traffic model).
struct CrossTrafficSpec {
  BitRate rate;
  int size_bytes = 1500;
};

/// The experimental scenario of the paper's Fig 2/Fig 3: one probing
/// station, zero or more contending stations each carrying one Poisson
/// flow, and optionally Poisson FIFO cross-traffic sharing the probing
/// station's queue.
struct ScenarioConfig {
  mac::PhyParams phy = mac::PhyParams::dot11b_short();
  /// One entry per contending station.
  std::vector<CrossTrafficSpec> contenders;
  /// FIFO cross-traffic on the probing station (Fig 3); disabled when
  /// absent (Fig 5).
  std::optional<CrossTrafficSpec> fifo_cross;
  std::uint64_t seed = 1;
  /// Cross-traffic warm-up before the probe enters the system.
  TimeNs warmup = TimeNs::ms(500);
  /// The probe start is additionally offset by an exponential delay with
  /// this mean, randomizing the phase against the cross-traffic (the
  /// paper sends probing sequences with Poisson spacing for the same
  /// reason).
  TimeNs probe_phase_mean = TimeNs::ms(20);
};

/// Flow-id convention inside scenarios.
inline constexpr int kProbeFlow = 1000;
inline constexpr int kFifoCrossFlow = 1001;
/// Contender station i carries flow i (0-based).

/// Result of one probing-sequence repetition.
struct TrainRun {
  /// Probe packet records in sequence order (timestamps per mac::Packet).
  std::vector<mac::Packet> packets;
  bool any_dropped = false;
  /// Contender-0 queue length sampled just after each probe arrival
  /// (only when requested) — Fig 8 bottom.
  std::vector<double> contender_queue_at_arrival;

  /// Access delays mu_i in seconds; requires !any_dropped.
  [[nodiscard]] std::vector<double> access_delays_s() const;
  /// Output gap (Eq. 16) over the departure timestamps.
  [[nodiscard]] double output_gap_s() const;
};

/// Steady-state throughputs of a long constant-rate probing run.
struct SteadyStateResult {
  BitRate probe;
  BitRate contenders_total;
  std::vector<BitRate> per_contender;
  BitRate fifo_cross;
};

/// Result of a sequence of m trains in one long run (Section 5.1.2: m
/// probing sequences with Poisson spacing).
struct TrainSequenceResult {
  std::vector<double> gaps_s;  ///< per-train output gaps (complete trains)
  int dropped_trains = 0;

  [[nodiscard]] double mean_gap_s() const;
};

/// Builds and runs WLAN experiments for one scenario configuration.
///
/// Each run constructs a fresh simulator seeded from (seed, repetition),
/// warms the cross-traffic up, injects probe traffic and harvests the
/// records — exactly the ensemble methodology of Section 4.
class Scenario {
 public:
  explicit Scenario(ScenarioConfig cfg);

  [[nodiscard]] const ScenarioConfig& config() const { return cfg_; }

  /// One ensemble repetition: a single train of `spec` packets.
  /// `sample_contender_queue` additionally samples contender 0's queue at
  /// probe arrival instants.
  [[nodiscard]] TrainRun run_train(const traffic::TrainSpec& spec,
                                   std::uint64_t repetition,
                                   bool sample_contender_queue = false) const;

  /// Long-run steady state: CBR probe at `probe_rate` from warmup until
  /// `duration`; throughput measured over [measure_from, duration).
  [[nodiscard]] SteadyStateResult run_steady_state(BitRate probe_rate,
                                                   int probe_size_bytes,
                                                   TimeNs duration,
                                                   TimeNs measure_from) const;

  /// m trains of `spec` in one long run, consecutive trains separated by
  /// an exponential gap with mean `mean_spacing`.
  [[nodiscard]] TrainSequenceResult run_train_sequence(
      const traffic::TrainSpec& spec, int trains, TimeNs mean_spacing,
      std::uint64_t repetition) const;

 private:
  ScenarioConfig cfg_;
};

/// ProbeTransport implementation backed by a Scenario: every train runs
/// in a fresh warmed-up system (repetition counter advances per call).
class SimTransport : public ProbeTransport {
 public:
  explicit SimTransport(ScenarioConfig cfg) : scenario_(std::move(cfg)) {}

  TrainResult send_train(const traffic::TrainSpec& spec) override;

  [[nodiscard]] const Scenario& scenario() const { return scenario_; }

 private:
  Scenario scenario_;
  std::uint64_t next_rep_ = 0;
};

}  // namespace csmabw::core
