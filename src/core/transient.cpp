#include "core/transient.hpp"

#include <cmath>

#include "stats/ks_test.hpp"
#include "util/require.hpp"

namespace csmabw::core {

TransientAnalyzer::TransientAnalyzer(const TransientConfig& cfg)
    : cfg_(cfg),
      series_(cfg.train_length, cfg.ks_prefix, cfg.steady_tail,
              cfg.extra_raw_indices) {
  CSMABW_REQUIRE(cfg.train_length >= 2, "train too short");
  CSMABW_REQUIRE(cfg.steady_tail >= 1, "steady tail must be non-empty");
}

void TransientAnalyzer::add_repetition(
    std::span<const double> access_delays_s) {
  for (double v : access_delays_s) {
    CSMABW_REQUIRE(std::isfinite(v) && v >= 0.0,
                   "access delays must be finite and non-negative");
  }
  series_.add_repetition(access_delays_s);
}

void TransientAnalyzer::merge(const TransientAnalyzer& other) {
  CSMABW_REQUIRE(other.cfg_.train_length == cfg_.train_length &&
                     other.cfg_.ks_prefix == cfg_.ks_prefix &&
                     other.cfg_.steady_tail == cfg_.steady_tail &&
                     other.cfg_.extra_raw_indices == cfg_.extra_raw_indices,
                 "cannot merge analyzers with different configurations");
  series_.merge(other.series_);
}

double TransientAnalyzer::ks_at(int i) const {
  return stats::ks_statistic(series_.raw_at(i), series_.steady_pool());
}

double TransientAnalyzer::ks_threshold_at(int i) const {
  return stats::ks_threshold(series_.raw_at(i).size(),
                             series_.steady_pool().size());
}

std::vector<double> TransientAnalyzer::ks_curve() const {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(cfg_.ks_prefix));
  for (int i = 0; i < cfg_.ks_prefix; ++i) {
    out.push_back(ks_at(i));
  }
  return out;
}

int TransientAnalyzer::transient_length(double tol, int window) const {
  CSMABW_REQUIRE(tol > 0.0, "tolerance must be positive");
  CSMABW_REQUIRE(window >= 1, "window must be >= 1");
  const double target = steady_mean();
  CSMABW_REQUIRE(target > 0.0, "steady-state mean must be positive");

  const int n = cfg_.train_length;
  int within = 0;
  for (int i = 0; i < n; ++i) {
    const double rel = std::abs(series_.mean_at(i) - target) / target;
    if (rel <= tol) {
      ++within;
      if (within >= window) {
        return i - window + 2;  // 1-based index of the first settled packet
      }
    } else {
      within = 0;
    }
  }
  return n;
}

}  // namespace csmabw::core
