#pragma once

#include <span>
#include <vector>

#include "stats/ensemble.hpp"

namespace csmabw::core {

/// Configuration of a transient-regime analysis (Section 4).
struct TransientConfig {
  /// Packets per probing sequence (the paper uses 1000).
  int train_length = 1000;
  /// Indices [0, ks_prefix) retain raw samples for per-index KS tests and
  /// histograms (Figs 7-9 look at the first 100-150 packets).
  int ks_prefix = 150;
  /// The pooled steady-state reference uses the last `steady_tail`
  /// indices of every repetition (the paper pools the last 500 packets).
  int steady_tail = 500;
  /// Additional individual indices (>= ks_prefix) retaining raw samples
  /// — sparse retention for histograms deep into the train (Fig 7's
  /// 500th packet) without paying for the whole prefix.
  std::vector<int> extra_raw_indices;
};

/// Accumulates repeated probing sequences and characterizes the
/// transient regime of the access delay.
///
/// For each packet index i it tracks the ensemble distribution of the
/// access delay mu_i across repetitions; the steady-state reference is
/// the pooled delay of the tail packets.  Provides the paper's three
/// diagnostics: the per-index mean (Fig 6), the per-index KS statistic
/// against steady state (Figs 8-9), and the tolerance-based transient
/// length (Fig 10).
class TransientAnalyzer {
 public:
  explicit TransientAnalyzer(const TransientConfig& cfg);

  /// Adds one repetition: the access delays (seconds) of packets
  /// 1..train_length of a probing sequence, in sequence order.  All
  /// values must be finite (discard repetitions with dropped packets
  /// before calling).
  void add_repetition(std::span<const double> access_delays_s);

  /// Merges another analyzer accumulated under an identical
  /// configuration (parallel ensemble shards; see exp::Runner).
  void merge(const TransientAnalyzer& other);

  [[nodiscard]] int repetitions() const { return series_.repetitions(); }
  [[nodiscard]] const TransientConfig& config() const { return cfg_; }

  /// Ensemble mean access delay of packet index i (0-based).
  [[nodiscard]] double mean_at(int i) const { return series_.mean_at(i); }
  [[nodiscard]] std::vector<double> mean_curve() const {
    return series_.means();
  }
  /// Mean access delay over the pooled steady-state tail.
  [[nodiscard]] double steady_mean() const { return series_.steady_mean(); }

  /// Raw ensemble sample of index i (i < ks_prefix or listed in
  /// extra_raw_indices) — for histograms.
  [[nodiscard]] std::span<const double> sample_at(int i) const {
    return series_.raw_at(i);
  }
  [[nodiscard]] std::span<const double> steady_sample() const {
    return series_.steady_pool();
  }

  /// KS statistic of index i's ensemble distribution vs. the pooled
  /// steady-state distribution (i < ks_prefix).
  [[nodiscard]] double ks_at(int i) const;
  /// 95% KS rejection threshold for index i's sample sizes.
  [[nodiscard]] double ks_threshold_at(int i) const;
  /// KS statistics for indices [0, ks_prefix).
  [[nodiscard]] std::vector<double> ks_curve() const;

  /// Transient length (Section 4.1): the first index whose ensemble mean
  /// lies within `tol` (relative) of the steady-state mean and stays
  /// within for `window` consecutive indices.  Returns the 1-based packet
  /// count (the paper reports "packets"), or train_length if the series
  /// never settles.
  [[nodiscard]] int transient_length(double tol, int window = 3) const;

 private:
  TransientConfig cfg_;
  stats::EnsembleSeries series_;
};

}  // namespace csmabw::core
