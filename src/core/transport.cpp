#include "core/transport.hpp"

#include "util/require.hpp"

namespace csmabw::core {

bool TrainResult::complete() const {
  if (packets.size() < 2) {
    return false;
  }
  for (const auto& p : packets) {
    if (p.lost) {
      return false;
    }
  }
  return true;
}

double TrainResult::output_gap_s() const {
  CSMABW_REQUIRE(complete(), "train incomplete");
  const auto n = packets.size();
  return (packets[n - 1].recv_s - packets[0].recv_s) /
         static_cast<double>(n - 1);
}

std::vector<double> TrainResult::receive_times_s() const {
  CSMABW_REQUIRE(complete(), "train incomplete");
  std::vector<double> out;
  out.reserve(packets.size());
  for (const auto& p : packets) {
    out.push_back(p.recv_s);
  }
  return out;
}

}  // namespace csmabw::core
