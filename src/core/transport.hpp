#pragma once

#include <vector>

#include "traffic/probe_train.hpp"

namespace csmabw::core {

/// One probe packet as seen by a measurement tool: network-layer send
/// and receive timestamps (seconds on a common clock).
struct ProbeRecord {
  int seq = 0;
  double send_s = 0.0;
  double recv_s = 0.0;
  bool lost = false;
};

/// Result of sending one probe train through a transport.
struct TrainResult {
  std::vector<ProbeRecord> packets;  // sequence order

  [[nodiscard]] bool complete() const;
  /// Output gap g_O = (d_n - d_1)/(n-1) (Eq. 16); requires complete().
  [[nodiscard]] double output_gap_s() const;
  /// Receive timestamps in sequence order; requires complete().
  [[nodiscard]] std::vector<double> receive_times_s() const;
};

/// A link a bandwidth measurement tool can probe.
///
/// This is the seam between the paper's measurement methodology and the
/// link under test: the same estimator code runs over the DCF simulator
/// (`SimTransport`), the trace-driven queueing model
/// (`QueueingTransport`) or real UDP sockets (`net::UdpLoopbackTransport`
/// — the testbed substitute).
class ProbeTransport {
 public:
  virtual ~ProbeTransport() = default;

  /// Sends one train paced at spec.gap and returns the per-packet
  /// timestamps.  Implementations may block (sockets) or simulate.
  virtual TrainResult send_train(const traffic::TrainSpec& spec) = 0;
};

}  // namespace csmabw::core
