#include "exp/collector.hpp"

#include <cmath>

#include "util/require.hpp"

namespace csmabw::exp {

Collector::Collector(std::vector<std::string> columns, CollectorOptions opts)
    : columns_(std::move(columns)),
      table_(columns_),
      column_stats_(columns_.size()) {
  CSMABW_REQUIRE(!columns_.empty(), "collector needs at least one column");
  if (!opts.csv_path.empty()) {
    csv_ = std::make_unique<util::CsvWriter>(opts.csv_path);
    csv_->row(columns_);
  }
  if (!opts.jsonl_path.empty()) {
    jsonl_ = std::make_unique<util::JsonlWriter>(opts.jsonl_path);
  }
}

void Collector::add(const std::vector<Value>& row) {
  CSMABW_REQUIRE(row.size() == columns_.size(),
                 "row width does not match the collector columns");
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (std::size_t i = 0; i < row.size(); ++i) {
    cells.push_back(row[i].text());
    // Non-finite metrics (e.g. a cell with no complete trains) would
    // poison the campaign-level min/mean/max.
    if (row[i].is_number() && std::isfinite(row[i].number())) {
      column_stats_[i].add(row[i].number());
    }
  }
  table_.add_row(cells);
  if (csv_) {
    csv_->row(cells);
  }
  if (jsonl_) {
    std::vector<std::pair<std::string, Value>> fields;
    fields.reserve(row.size());
    for (std::size_t i = 0; i < row.size(); ++i) {
      fields.emplace_back(columns_[i], row[i]);
    }
    jsonl_->object(fields);
  }
  ++rows_;
}

const stats::RunningStat& Collector::column_stat(int i) const {
  CSMABW_REQUIRE(i >= 0 && i < static_cast<int>(column_stats_.size()),
                 "column index out of range");
  return column_stats_[static_cast<std::size_t>(i)];
}

std::vector<std::string> Collector::cell_columns() {
  return {"cell",      "contenders", "cross_mbps", "phy",
          "train_len", "probe_mbps", "fifo"};
}

std::vector<Value> Collector::cell_coords(const Cell& cell) {
  return {Value(cell.index),        Value(cell.contenders),
          Value(cell.cross_mbps),   Value(cell.phy_preset),
          Value(cell.train_length), Value(cell.probe_mbps),
          Value(cell.fifo ? 1 : 0)};
}

}  // namespace csmabw::exp
