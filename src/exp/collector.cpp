#include "exp/collector.hpp"

#include <cmath>

#include "util/require.hpp"

namespace csmabw::exp {

Collector::Collector(std::vector<std::string> columns, CollectorOptions opts)
    : columns_(std::move(columns)),
      table_(columns_),
      column_stats_(columns_.size()) {
  CSMABW_REQUIRE(!columns_.empty(), "collector needs at least one column");
  if (!opts.csv_path.empty()) {
    csv_ = std::make_unique<util::CsvWriter>(opts.csv_path);
    csv_->row(columns_);
  }
  if (!opts.jsonl_path.empty()) {
    jsonl_.push_back(std::make_unique<util::JsonlWriter>(opts.jsonl_path));
  }
  if (opts.jsonl_stream != nullptr) {
    jsonl_.push_back(std::make_unique<util::JsonlWriter>(*opts.jsonl_stream));
  }
}

void Collector::add(const std::vector<Value>& row) {
  CSMABW_REQUIRE(row.size() == columns_.size(),
                 "row width does not match the collector columns");
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (std::size_t i = 0; i < row.size(); ++i) {
    cells.push_back(row[i].text());
    // Non-finite metrics (e.g. a cell with no complete trains) would
    // poison the campaign-level min/mean/max.
    if (row[i].is_number() && std::isfinite(row[i].number())) {
      column_stats_[i].add(row[i].number());
    }
  }
  table_.add_row(cells);
  if (csv_) {
    csv_->row(cells);
  }
  if (!jsonl_.empty()) {
    std::vector<std::pair<std::string, Value>> fields;
    fields.reserve(row.size());
    for (std::size_t i = 0; i < row.size(); ++i) {
      fields.emplace_back(columns_[i], row[i]);
    }
    for (const auto& sink : jsonl_) {
      sink->object(fields);
    }
  }
  ++rows_;
}

const stats::RunningStat& Collector::column_stat(int i) const {
  CSMABW_REQUIRE(i >= 0 && i < static_cast<int>(column_stats_.size()),
                 "column index out of range");
  return column_stats_[static_cast<std::size_t>(i)];
}

std::vector<std::string> Collector::cell_columns() {
  return {"cell",       "scenario",  "contenders", "cross_mbps",
          "phy",        "train_len", "probe_mbps", "fifo"};
}

std::vector<Value> Collector::cell_coords(const Cell& cell) {
  return {Value(cell.index),
          Value(cell.scenario_name.empty() ? "-" : cell.scenario_name),
          Value(cell.contenders),
          Value(cell.cross_mbps),
          Value(cell.phy_preset),
          Value(cell.train_length),
          Value(cell.probe_mbps),
          Value(cell.fifo ? 1 : 0)};
}

std::vector<std::string> Collector::method_columns() {
  std::vector<std::string> columns = cell_columns();
  for (const char* name : {"method", "rep", "estimate_mbps", "trains_sent",
                           "probes_sent", "trains_lost", "curve_points",
                           "details"}) {
    columns.emplace_back(name);
  }
  return columns;
}

std::vector<Value> Collector::method_row(
    const Cell& cell, int repetition, const core::MeasurementReport& report) {
  std::string details;
  for (const auto& [key, value] : report.metrics) {
    if (!details.empty()) {
      details += ';';
    }
    details += key;
    details += '=';
    details += util::json_number(value);
  }
  std::vector<Value> row = cell_coords(cell);
  row.emplace_back(cell.method);
  row.emplace_back(repetition);
  row.emplace_back(report.estimate_bps / 1e6);
  row.emplace_back(report.trains_sent);
  row.emplace_back(report.probes_sent);
  row.emplace_back(report.trains_lost);
  row.emplace_back(static_cast<int>(report.curve.points.size()));
  row.emplace_back(details);
  return row;
}

}  // namespace csmabw::exp
