#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/method.hpp"
#include "exp/sweep.hpp"
#include "stats/summary.hpp"
#include "util/csv.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace csmabw::exp {

/// A collector cell value: a number or a label (e.g. a PHY preset name).
using Value = util::Value;

struct CollectorOptions {
  /// CSV output path; empty disables the CSV sink.
  std::string csv_path;
  /// JSON-lines output path; empty disables the JSONL sink.
  std::string jsonl_path;
  /// Additional JSONL sink to an existing stream (not owned), e.g.
  /// std::cout for --format=json; nullptr disables it.
  std::ostream* jsonl_stream = nullptr;
};

/// Row-streaming result sink of a campaign.
///
/// Rows must be appended in cell order (the runner hands merged cell
/// results back index-ordered), which makes every sink's byte output
/// independent of the worker-thread count.  Alongside the streams the
/// collector folds each numeric column into a stats::RunningStat, giving
/// campaign-level summaries (min/mean/max across cells) for free.
class Collector {
 public:
  Collector(std::vector<std::string> columns, CollectorOptions opts = {});

  void add(const std::vector<Value>& row);

  [[nodiscard]] int rows() const { return static_cast<int>(rows_); }
  [[nodiscard]] const std::vector<std::string>& columns() const {
    return columns_;
  }
  /// Summary of numeric column `i` across all added rows (string and
  /// non-finite cells are skipped).
  [[nodiscard]] const stats::RunningStat& column_stat(int i) const;

  /// The rows as an aligned console table.
  [[nodiscard]] const util::Table& table() const { return table_; }

  /// The standard coordinate prefix for per-cell rows: cell, scenario
  /// ("-" for cells from the classic per-knob axes), contenders,
  /// cross_mbps, phy, train_len, probe_mbps, fifo.
  [[nodiscard]] static std::vector<std::string> cell_columns();
  [[nodiscard]] static std::vector<Value> cell_coords(const Cell& cell);

  /// The standard schema for per-repetition MeasurementReport rows:
  /// cell_columns() + method, rep, estimate_mbps, trains_sent,
  /// probes_sent, trains_lost, curve_points, details.  `details` packs
  /// the report's method-specific metrics as "key=value;..." with
  /// round-trip number formatting, so heterogeneous methods share one
  /// flat row.
  [[nodiscard]] static std::vector<std::string> method_columns();
  [[nodiscard]] static std::vector<Value> method_row(
      const Cell& cell, int repetition,
      const core::MeasurementReport& report);

 private:
  std::vector<std::string> columns_;
  util::Table table_;
  std::vector<stats::RunningStat> column_stats_;
  std::unique_ptr<util::CsvWriter> csv_;
  std::vector<std::unique_ptr<util::JsonlWriter>> jsonl_;
  int rows_ = 0;
};

}  // namespace csmabw::exp
