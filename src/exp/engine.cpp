#include "exp/engine.hpp"

#include <algorithm>
#include <filesystem>
#include <memory>
#include <optional>

#include "core/scenario.hpp"
#include "serve/cache_key.hpp"
#include "serve/record.hpp"
#include "stats/rng.hpp"
#include "trace/writer.hpp"
#include "util/require.hpp"

namespace csmabw::exp {

namespace {

struct Shard {
  int cell_index = 0;
  int rep_begin = 0;
  int rep_end = 0;
};

core::TransientConfig transient_config_for(const Cell& cell,
                                           const TrainCampaignConfig& cfg) {
  return train_transient_config(cell.train.n, cfg);
}

/// The provenance header a recorded (cell, repetition) trace carries.
trace::TraceMeta trace_meta_for(const Cell& cell, int repetition) {
  trace::TraceMeta meta;
  meta.cell = cell.index;
  meta.repetition = repetition;
  meta.train_n = cell.train.n;
  meta.train_size = cell.train.size_bytes;
  meta.train_gap_ns = cell.train.gap.count();
  meta.seed = cell.scenario.seed;
  meta.label = cell.scenario_name;
  return meta;
}

std::vector<Shard> make_shards(const Campaign& campaign,
                               const TrainCampaignConfig& cfg) {
  CSMABW_REQUIRE(cfg.shard_size >= 1, "shard_size must be >= 1");
  std::vector<Shard> shards;
  for (const Cell& cell : campaign.cells()) {
    for (int begin = 0; begin < cell.repetitions; begin += cfg.shard_size) {
      shards.push_back(Shard{cell.index, begin,
                             std::min(begin + cfg.shard_size,
                                      cell.repetitions)});
    }
  }
  return shards;
}

void validate_serve_options(const serve::CampaignServeOptions& io) {
  CSMABW_REQUIRE(io.shard.count >= 1 && io.shard.index >= 0 &&
                     io.shard.index < io.shard.count,
                 "shard selection needs 0 <= index < count");
  CSMABW_REQUIRE(!io.forbid_compute || io.resume != nullptr ||
                     io.cache != nullptr,
                 "forbid_compute without a resume set or cache could "
                 "never produce a result");
}

/// The engine's metric handles, bound once per campaign run.  Every
/// handle is unbound (no-op) when the serve options carry no registry.
struct EngineObs {
  obs::Counter computed;     ///< exp.reps.computed
  obs::Counter cache_hit;    ///< exp.reps.cache_hit
  obs::Counter resumed;      ///< exp.reps.resumed
  obs::Counter sim_events;   ///< sim.events.processed
  obs::Counter sim_alloc;    ///< sim.slab.alloc
  obs::Gauge slot_capacity;  ///< sim.queue.slot_capacity (high-water)
  obs::Histogram rep_events;  ///< sim.rep.events (stable)
  obs::Histogram rep_wall;    ///< exp.rep.wall_ns (wall time)
  /// Whether per-repetition clock reads are worth making (an enabled
  /// registry or profiler is attached).
  bool timing = false;
};

EngineObs bind_engine_obs(const serve::CampaignServeOptions& io) {
  EngineObs m;
  if (io.metrics != nullptr) {
    m.computed = io.metrics->counter("exp.reps.computed");
    m.cache_hit = io.metrics->counter("exp.reps.cache_hit");
    m.resumed = io.metrics->counter("exp.reps.resumed");
    m.sim_events = io.metrics->counter("sim.events.processed");
    m.sim_alloc = io.metrics->counter("sim.slab.alloc");
    m.slot_capacity = io.metrics->gauge("sim.queue.slot_capacity");
    m.rep_events = io.metrics->histogram("sim.rep.events");
    m.rep_wall = io.metrics->histogram("exp.rep.wall_ns",
                                       obs::Determinism::kWallTime);
  }
  m.timing = m.rep_wall.bound() ||
             (io.profiler != nullptr && io.profiler->enabled());
  if (io.checkpoint != nullptr) {
    // Single-threaded setup point: route flush accounting to the same
    // registry/profiler before any worker can trigger a flush.
    io.checkpoint->bind_obs(io.metrics, io.profiler);
  }
  return m;
}

/// Serves a (cell, repetition) record: resume set first, then the
/// content-addressed cache, else nullopt (the caller simulates).  Hits
/// are counted, per-repetition progress is ticked as cached, and cache
/// hits are forwarded to the checkpoint so the persisted file converges
/// to full coverage.
template <typename Record>
std::optional<Record> serve_record(
    const serve::CampaignServeOptions& io, const EngineObs& m, int cell,
    int rep, const serve::CacheKey& key,
    bool (*decode)(const unsigned char*, std::size_t, Record*)) {
  Record record;
  if (io.resume != nullptr) {
    if (const std::vector<unsigned char>* payload =
            io.resume->find(cell, rep)) {
      CSMABW_REQUIRE(decode(payload->data(), payload->size(), &record),
                     "corrupt record for cell " + std::to_string(cell) +
                         " rep " + std::to_string(rep) +
                         " in the resume/merge set");
      m.resumed.add();
      if (io.progress != nullptr) {
        io.progress->tick_cached();
      }
      return record;
    }
  }
  if (io.cache != nullptr) {
    if (std::optional<std::vector<unsigned char>> payload =
            io.cache->lookup(key)) {
      // A payload that fails to decode is a corrupt entry: treat as a
      // miss, the recompute below overwrites it.
      if (decode(payload->data(), payload->size(), &record)) {
        m.cache_hit.add();
        if (io.checkpoint != nullptr) {
          io.checkpoint->add(cell, rep, std::move(*payload));
        }
        if (io.progress != nullptr) {
          io.progress->tick_cached();
        }
        return record;
      }
    }
  }
  return std::nullopt;
}

/// Persists a freshly computed record to the cache and checkpoint and
/// ticks it as computed work.
void persist_record(const serve::CampaignServeOptions& io, const EngineObs& m,
                    int cell, int rep, const serve::CacheKey& key,
                    std::vector<unsigned char> payload) {
  if (io.cache != nullptr) {
    io.cache->store(key, payload);
  }
  if (io.checkpoint != nullptr) {
    io.checkpoint->add(cell, rep, std::move(payload));
  }
  m.computed.add();
  if (io.progress != nullptr) {
    io.progress->tick();
  }
}

[[noreturn]] void missing_record(int cell, int rep) {
  throw util::PreconditionError(
      "merge/serve: no record for cell " + std::to_string(cell) + " rep " +
      std::to_string(rep) +
      " and computing is forbidden — are all shard files present and "
      "complete?");
}

}  // namespace

core::TransientConfig train_transient_config(int train_length,
                                             const TrainCampaignConfig& cfg) {
  core::TransientConfig tc;
  tc.train_length = train_length;
  tc.ks_prefix = std::min(cfg.ks_prefix, train_length);
  tc.steady_tail = cfg.steady_tail > 0
                       ? std::min(cfg.steady_tail, train_length)
                       : std::max(1, train_length / 2);
  for (int i : cfg.raw_indices) {
    if (i < train_length) {
      tc.extra_raw_indices.push_back(i);
    }
  }
  return tc;
}

std::uint64_t method_rep_seed(std::uint64_t campaign_seed, int cell_index,
                              int repetition) {
  return stats::Rng(Campaign::cell_seed(campaign_seed, cell_index))
      .fork("method-rep")
      .fork(static_cast<std::uint64_t>(repetition))
      .seed();
}

int count_method_runs(const Campaign& campaign) {
  return static_cast<int>(campaign.total_repetitions());
}

std::vector<MethodRun> run_method_campaign(const Campaign& campaign,
                                           const MethodCampaignConfig& cfg,
                                           const Runner& runner) {
  return run_method_campaign(campaign, cfg, runner,
                             serve::CampaignServeOptions{});
}

std::uint64_t method_campaign_fingerprint(const Campaign& campaign) {
  return serve::campaign_fingerprint(campaign, serve::CampaignKind::kMethod,
                                     "");
}

std::vector<MethodRun> run_method_campaign(
    const Campaign& campaign, const MethodCampaignConfig& cfg,
    const Runner& runner, const serve::CampaignServeOptions& io) {
  validate_serve_options(io);
  const EngineObs m = bind_engine_obs(io);
  CSMABW_REQUIRE(io.cache == nullptr || !cfg.make_transport,
                 "the result cache content-addresses the cell's scenario; "
                 "a custom make_transport is invisible to the key — drop "
                 "the cache or the custom transport");
  const core::MethodRegistry& registry =
      cfg.registry != nullptr ? *cfg.registry : core::MethodRegistry::global();

  struct Job {
    int cell_index = 0;
    int repetition = 0;
  };
  std::vector<Job> jobs;
  jobs.reserve(static_cast<std::size_t>(campaign.total_repetitions()));
  for (const Cell& cell : campaign.cells()) {
    CSMABW_REQUIRE(!cell.method.empty(),
                   "method campaign needs a method spec on every cell "
                   "(set the SweepSpec methods axis)");
    (void)registry.create(cell.method);  // fail fast, before any work runs
    for (int rep = 0; rep < cell.repetitions; ++rep) {
      jobs.push_back(Job{cell.index, rep});
    }
  }

  // One job per repetition; runner.map places results by job index, so
  // the returned order is (cell, repetition) for any thread count.
  std::vector<MethodRun> runs =
      runner.map(static_cast<int>(jobs.size()), [&](int j) {
        const Job& job = jobs[static_cast<std::size_t>(j)];
        const Cell& cell =
            campaign.cells()[static_cast<std::size_t>(job.cell_index)];
        MethodRun run;
        run.cell_index = job.cell_index;
        run.repetition = job.repetition;
        if (!io.shard.selects(j)) {
          return run;  // another process's slice; placeholder entry
        }
        const std::uint64_t seed = method_rep_seed(campaign.campaign_seed(),
                                                   job.cell_index,
                                                   job.repetition);
        serve::CacheKey key;
        if (io.cache != nullptr) {  // keys are only ever used by the cache
          key = serve::method_rep_key(cell.scenario, cell.method, seed,
                                      job.repetition);
        }
        if (std::optional<core::MeasurementReport> served =
                serve_record<core::MeasurementReport>(
                    io, m, job.cell_index, job.repetition, key,
                    &serve::decode_method_record)) {
          run.report = std::move(*served);
          run.served = true;
          return run;
        }
        if (io.forbid_compute) {
          missing_record(job.cell_index, job.repetition);
        }
        obs::ScopedSpan span(io.profiler, "exp.rep");
        span.arg("cell", job.cell_index);
        span.arg("rep", job.repetition);
        const std::int64_t rep_start = m.timing ? obs::now_ns() : 0;
        std::unique_ptr<core::ProbeTransport> transport;
        if (cfg.make_transport) {
          transport = cfg.make_transport(cell, seed);
        } else {
          core::ScenarioConfig scenario = cell.scenario;
          scenario.seed = seed;
          transport = std::make_unique<core::SimTransport>(scenario);
        }
        CSMABW_REQUIRE(transport != nullptr, "make_transport returned null");
        const std::unique_ptr<core::MeasurementMethod> method =
            registry.create(cell.method);
        run.report = method->run(*transport, seed);
        if (m.timing) {
          run.wall_ns = obs::now_ns() - rep_start;
          m.rep_wall.observe(run.wall_ns);
        }
        std::vector<unsigned char> payload;
        serve::encode_method_record(run.report, payload);
        persist_record(io, m, job.cell_index, job.repetition, key,
                       std::move(payload));
        return run;
      });
  if (io.checkpoint != nullptr) {
    io.checkpoint->flush();
  }
  return runs;
}

int count_train_shards(const Campaign& campaign,
                       const TrainCampaignConfig& cfg) {
  return static_cast<int>(make_shards(campaign, cfg).size());
}

std::vector<TrainCellStats> run_train_campaign(const Campaign& campaign,
                                               const TrainCampaignConfig& cfg,
                                               const Runner& runner) {
  return run_train_campaign(campaign, cfg, runner,
                            serve::CampaignServeOptions{});
}

std::uint64_t train_campaign_fingerprint(const Campaign& campaign,
                                         const TrainCampaignConfig& cfg) {
  // shard_size shapes the accumulation (and therefore floating-point
  // association) order; sample_contender_queue shapes record content.
  // Analysis knobs (ks_prefix, steady_tail, raw_indices, queue_prefix)
  // post-process the raw records and stay out of the fingerprint.
  std::string extra = "shard_size=" + std::to_string(cfg.shard_size) +
                      ";sample_queue=" +
                      (cfg.sample_contender_queue ? "1" : "0");
  return serve::campaign_fingerprint(campaign, serve::CampaignKind::kTrain,
                                     extra);
}

std::vector<TrainCellStats> run_train_campaign(
    const Campaign& campaign, const TrainCampaignConfig& cfg,
    const Runner& runner, const serve::CampaignServeOptions& io) {
  validate_serve_options(io);
  const EngineObs m = bind_engine_obs(io);
  const std::vector<Shard> shards = make_shards(campaign, cfg);
  const std::string& trace_dir = campaign.trace_dir();
  if (!trace_dir.empty()) {
    // Once, before the pool starts: workers only create files inside.
    std::filesystem::create_directories(trace_dir);
  }

  // Each shard accumulates independently; merging in shard order keeps
  // raw-sample order identical to a serial run and the merged moments
  // independent of which worker ran which shard.  Repetitions served
  // from the resume set or the cache feed the accumulators the exact
  // double bits a live run would have, so where a record came from
  // never shows in the output.
  std::vector<std::unique_ptr<TrainCellStats>> shard_stats(shards.size());
  runner.for_each(static_cast<int>(shards.size()), [&](int s) {
    const Shard& shard = shards[static_cast<std::size_t>(s)];
    const Cell& cell =
        campaign.cells()[static_cast<std::size_t>(shard.cell_index)];
    auto stats = std::make_unique<TrainCellStats>(
        transient_config_for(cell, cfg));
    if (cfg.sample_contender_queue) {
      stats->queue_at_arrival.resize(static_cast<std::size_t>(
          std::min(cfg.queue_prefix, cell.train.n)));
    }
    if (!io.shard.selects(s)) {
      // Another process's slice: contribute an empty accumulator so the
      // shard-ordered merge below stays uniform.
      shard_stats[static_cast<std::size_t>(s)] = std::move(stats);
      return;
    }

    // Built lazily: a fully served shard never constructs the scenario.
    std::optional<core::Scenario> scenario;
    for (int rep = shard.rep_begin; rep < shard.rep_end; ++rep) {
      serve::CacheKey key;
      if (io.cache != nullptr) {  // keys are only ever used by the cache
        key = serve::train_rep_key(cell.scenario, cell.train,
                                   cfg.sample_contender_queue, rep);
      }
      serve::TrainRepRecord record;
      if (std::optional<serve::TrainRepRecord> served =
              serve_record<serve::TrainRepRecord>(
                  io, m, cell.index, rep, key,
                  &serve::decode_train_record)) {
        record = std::move(*served);
        ++stats->obs.cached;
      } else {
        if (io.forbid_compute) {
          missing_record(cell.index, rep);
        }
        obs::ScopedSpan span(io.profiler, "exp.rep");
        span.arg("cell", cell.index);
        span.arg("rep", rep);
        const std::int64_t rep_start = m.timing ? obs::now_ns() : 0;
        if (!scenario.has_value()) {
          obs::ScopedSpan build(io.profiler, "exp.scenario.build");
          scenario.emplace(cell.scenario);
        }
        std::unique_ptr<trace::TraceWriter> writer;
        if (!trace_dir.empty()) {
          writer = std::make_unique<trace::TraceWriter>(
              trace::train_trace_path(trace_dir, cell.index, rep),
              trace_meta_for(cell, rep));
        }
        const core::TrainRun run =
            scenario->run_train(cell.train, static_cast<std::uint64_t>(rep),
                                cfg.sample_contender_queue, writer.get(),
                                io.metrics);
        if (writer != nullptr) {
          writer->close();  // surface write errors here, not in ~TraceWriter
        }
        record.dropped = run.any_dropped;
        if (!run.any_dropped) {
          record.access_delays_s = run.access_delays_s();
          record.output_gap_s = run.output_gap_s();
          record.queue_at_arrival = run.contender_queue_at_arrival;
        }
        const auto events = static_cast<std::int64_t>(run.sim_events);
        m.sim_events.add(events);
        m.sim_alloc.add(static_cast<std::int64_t>(run.sim_allocations));
        m.slot_capacity.sample(
            static_cast<std::int64_t>(run.sim_slot_capacity));
        m.rep_events.observe(events);
        span.arg("events", events);
        ++stats->obs.computed;
        stats->obs.sim_events += events;
        if (m.timing) {
          const std::int64_t wall = obs::now_ns() - rep_start;
          stats->obs.wall_ns += wall;
          m.rep_wall.observe(wall);
        }
        std::vector<unsigned char> payload;
        serve::encode_train_record(record, payload);
        persist_record(io, m, cell.index, rep, key, std::move(payload));
      }
      if (record.dropped) {
        ++stats->dropped;
        continue;
      }
      stats->analyzer.add_repetition(record.access_delays_s);
      stats->output_gap_s.add(record.output_gap_s);
      CSMABW_REQUIRE(
          record.queue_at_arrival.size() >= stats->queue_at_arrival.size(),
          "served record has fewer queue samples than the campaign "
          "config expects");
      for (std::size_t i = 0; i < stats->queue_at_arrival.size(); ++i) {
        stats->queue_at_arrival[i].add(record.queue_at_arrival[i]);
      }
      ++stats->used;
    }
    shard_stats[static_cast<std::size_t>(s)] = std::move(stats);
  });
  if (io.checkpoint != nullptr) {
    io.checkpoint->flush();
  }

  obs::ScopedSpan merge_span(io.profiler, "exp.merge");
  std::vector<TrainCellStats> merged;
  merged.reserve(campaign.cells().size());
  for (const Cell& cell : campaign.cells()) {
    merged.emplace_back(transient_config_for(cell, cfg));
    merged.back().obs.cell = cell.index;
    if (cfg.sample_contender_queue) {
      merged.back().queue_at_arrival.resize(static_cast<std::size_t>(
          std::min(cfg.queue_prefix, cell.train.n)));
    }
  }
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const Shard& shard = shards[s];
    TrainCellStats& dst =
        merged[static_cast<std::size_t>(shard.cell_index)];
    const TrainCellStats& src = *shard_stats[s];
    dst.analyzer.merge(src.analyzer);
    dst.output_gap_s.merge(src.output_gap_s);
    for (std::size_t i = 0; i < dst.queue_at_arrival.size(); ++i) {
      dst.queue_at_arrival[i].merge(src.queue_at_arrival[i]);
    }
    dst.used += src.used;
    dst.dropped += src.dropped;
    dst.obs.merge(src.obs);
  }
  return merged;
}

}  // namespace csmabw::exp
