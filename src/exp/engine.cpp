#include "exp/engine.hpp"

#include <algorithm>
#include <filesystem>
#include <memory>

#include "core/scenario.hpp"
#include "stats/rng.hpp"
#include "trace/writer.hpp"
#include "util/require.hpp"

namespace csmabw::exp {

namespace {

struct Shard {
  int cell_index = 0;
  int rep_begin = 0;
  int rep_end = 0;
};

core::TransientConfig transient_config_for(const Cell& cell,
                                           const TrainCampaignConfig& cfg) {
  return train_transient_config(cell.train.n, cfg);
}

/// The provenance header a recorded (cell, repetition) trace carries.
trace::TraceMeta trace_meta_for(const Cell& cell, int repetition) {
  trace::TraceMeta meta;
  meta.cell = cell.index;
  meta.repetition = repetition;
  meta.train_n = cell.train.n;
  meta.train_size = cell.train.size_bytes;
  meta.train_gap_ns = cell.train.gap.count();
  meta.seed = cell.scenario.seed;
  meta.label = cell.scenario_name;
  return meta;
}

std::vector<Shard> make_shards(const Campaign& campaign,
                               const TrainCampaignConfig& cfg) {
  CSMABW_REQUIRE(cfg.shard_size >= 1, "shard_size must be >= 1");
  std::vector<Shard> shards;
  for (const Cell& cell : campaign.cells()) {
    for (int begin = 0; begin < cell.repetitions; begin += cfg.shard_size) {
      shards.push_back(Shard{cell.index, begin,
                             std::min(begin + cfg.shard_size,
                                      cell.repetitions)});
    }
  }
  return shards;
}

}  // namespace

core::TransientConfig train_transient_config(int train_length,
                                             const TrainCampaignConfig& cfg) {
  core::TransientConfig tc;
  tc.train_length = train_length;
  tc.ks_prefix = std::min(cfg.ks_prefix, train_length);
  tc.steady_tail = cfg.steady_tail > 0
                       ? std::min(cfg.steady_tail, train_length)
                       : std::max(1, train_length / 2);
  for (int i : cfg.raw_indices) {
    if (i < train_length) {
      tc.extra_raw_indices.push_back(i);
    }
  }
  return tc;
}

std::uint64_t method_rep_seed(std::uint64_t campaign_seed, int cell_index,
                              int repetition) {
  return stats::Rng(Campaign::cell_seed(campaign_seed, cell_index))
      .fork("method-rep")
      .fork(static_cast<std::uint64_t>(repetition))
      .seed();
}

int count_method_runs(const Campaign& campaign) {
  return static_cast<int>(campaign.total_repetitions());
}

std::vector<MethodRun> run_method_campaign(const Campaign& campaign,
                                           const MethodCampaignConfig& cfg,
                                           const Runner& runner) {
  const core::MethodRegistry& registry =
      cfg.registry != nullptr ? *cfg.registry : core::MethodRegistry::global();

  struct Job {
    int cell_index = 0;
    int repetition = 0;
  };
  std::vector<Job> jobs;
  jobs.reserve(static_cast<std::size_t>(campaign.total_repetitions()));
  for (const Cell& cell : campaign.cells()) {
    CSMABW_REQUIRE(!cell.method.empty(),
                   "method campaign needs a method spec on every cell "
                   "(set the SweepSpec methods axis)");
    (void)registry.create(cell.method);  // fail fast, before any work runs
    for (int rep = 0; rep < cell.repetitions; ++rep) {
      jobs.push_back(Job{cell.index, rep});
    }
  }

  // One job per repetition; runner.map places results by job index, so
  // the returned order is (cell, repetition) for any thread count.
  return runner.map(static_cast<int>(jobs.size()), [&](int j) {
    const Job& job = jobs[static_cast<std::size_t>(j)];
    const Cell& cell =
        campaign.cells()[static_cast<std::size_t>(job.cell_index)];
    const std::uint64_t seed = method_rep_seed(campaign.campaign_seed(),
                                               job.cell_index,
                                               job.repetition);
    std::unique_ptr<core::ProbeTransport> transport;
    if (cfg.make_transport) {
      transport = cfg.make_transport(cell, seed);
    } else {
      core::ScenarioConfig scenario = cell.scenario;
      scenario.seed = seed;
      transport = std::make_unique<core::SimTransport>(scenario);
    }
    CSMABW_REQUIRE(transport != nullptr, "make_transport returned null");
    const std::unique_ptr<core::MeasurementMethod> method =
        registry.create(cell.method);
    MethodRun run;
    run.cell_index = job.cell_index;
    run.repetition = job.repetition;
    run.report = method->run(*transport, seed);
    return run;
  });
}

int count_train_shards(const Campaign& campaign,
                       const TrainCampaignConfig& cfg) {
  return static_cast<int>(make_shards(campaign, cfg).size());
}

std::vector<TrainCellStats> run_train_campaign(const Campaign& campaign,
                                               const TrainCampaignConfig& cfg,
                                               const Runner& runner) {
  const std::vector<Shard> shards = make_shards(campaign, cfg);
  const std::string& trace_dir = campaign.trace_dir();
  if (!trace_dir.empty()) {
    // Once, before the pool starts: workers only create files inside.
    std::filesystem::create_directories(trace_dir);
  }

  // Each shard accumulates independently; merging in shard order keeps
  // raw-sample order identical to a serial run and the merged moments
  // independent of which worker ran which shard.
  std::vector<std::unique_ptr<TrainCellStats>> shard_stats(shards.size());
  runner.for_each(static_cast<int>(shards.size()), [&](int s) {
    const Shard& shard = shards[static_cast<std::size_t>(s)];
    const Cell& cell =
        campaign.cells()[static_cast<std::size_t>(shard.cell_index)];
    auto stats = std::make_unique<TrainCellStats>(
        transient_config_for(cell, cfg));
    if (cfg.sample_contender_queue) {
      stats->queue_at_arrival.resize(static_cast<std::size_t>(
          std::min(cfg.queue_prefix, cell.train.n)));
    }

    const core::Scenario scenario(cell.scenario);
    for (int rep = shard.rep_begin; rep < shard.rep_end; ++rep) {
      std::unique_ptr<trace::TraceWriter> writer;
      if (!trace_dir.empty()) {
        writer = std::make_unique<trace::TraceWriter>(
            trace::train_trace_path(trace_dir, cell.index, rep),
            trace_meta_for(cell, rep));
      }
      const core::TrainRun run =
          scenario.run_train(cell.train, static_cast<std::uint64_t>(rep),
                             cfg.sample_contender_queue, writer.get());
      if (writer != nullptr) {
        writer->close();  // surface write errors here, not in ~TraceWriter
      }
      if (run.any_dropped) {
        ++stats->dropped;
        continue;
      }
      stats->analyzer.add_repetition(run.access_delays_s());
      stats->output_gap_s.add(run.output_gap_s());
      for (std::size_t i = 0; i < stats->queue_at_arrival.size(); ++i) {
        stats->queue_at_arrival[i].add(run.contender_queue_at_arrival[i]);
      }
      ++stats->used;
    }
    shard_stats[static_cast<std::size_t>(s)] = std::move(stats);
  });

  std::vector<TrainCellStats> merged;
  merged.reserve(campaign.cells().size());
  for (const Cell& cell : campaign.cells()) {
    merged.emplace_back(transient_config_for(cell, cfg));
    if (cfg.sample_contender_queue) {
      merged.back().queue_at_arrival.resize(static_cast<std::size_t>(
          std::min(cfg.queue_prefix, cell.train.n)));
    }
  }
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const Shard& shard = shards[s];
    TrainCellStats& dst =
        merged[static_cast<std::size_t>(shard.cell_index)];
    const TrainCellStats& src = *shard_stats[s];
    dst.analyzer.merge(src.analyzer);
    dst.output_gap_s.merge(src.output_gap_s);
    for (std::size_t i = 0; i < dst.queue_at_arrival.size(); ++i) {
      dst.queue_at_arrival[i].merge(src.queue_at_arrival[i]);
    }
    dst.used += src.used;
    dst.dropped += src.dropped;
  }
  return merged;
}

}  // namespace csmabw::exp
