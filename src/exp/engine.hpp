#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "core/method.hpp"
#include "core/transient.hpp"
#include "exp/runner.hpp"
#include "exp/sweep.hpp"
#include "obs/report.hpp"
#include "serve/campaign_io.hpp"
#include "stats/summary.hpp"

namespace csmabw::exp {

/// How a train campaign analyzes each cell's repetitions.
struct TrainCampaignConfig {
  /// Raw-sample prefix per cell (KS tests, histograms); clamped to the
  /// cell's train length.
  int ks_prefix = 1;
  /// Additional individual raw-sample indices beyond the prefix
  /// (indices >= the cell's train length are dropped).
  std::vector<int> raw_indices;
  /// Steady-state pool size; 0 means half the cell's train length.
  int steady_tail = 0;
  /// Additionally sample contender 0's queue at probe arrivals and keep
  /// per-index stats for the first `queue_prefix` packets.
  bool sample_contender_queue = false;
  int queue_prefix = 0;
  /// Repetitions per work shard.  The shard decomposition is part of the
  /// campaign's deterministic contract: results are merged in shard
  /// order, so output is bit-identical for any thread count (and any
  /// shard size, up to floating-point association in merged moments).
  int shard_size = 64;
};

/// Merged per-cell result of a train campaign.
struct TrainCellStats {
  explicit TrainCellStats(const core::TransientConfig& tc) : analyzer(tc) {}

  core::TransientAnalyzer analyzer;
  /// Per-train output gap (Eq. 16) across complete trains.
  stats::RunningStat output_gap_s;
  /// Contender-0 queue length at probe arrival, per packet index
  /// (non-empty only with sample_contender_queue).
  std::vector<stats::RunningStat> queue_at_arrival;
  int used = 0;
  int dropped = 0;
  /// Runtime accounting of this cell's repetitions (wall time, computed
  /// vs served counts, simulator events).  Merged per shard like every
  /// other field; wall_ns stays 0 unless the serve options carry an
  /// enabled metrics registry or profiler.  Never affects results.
  obs::CellObs obs;

  /// Measured probe rate implied by the mean output gap.
  [[nodiscard]] double measured_rate_mbps(int size_bytes) const {
    const double gap = output_gap_s.mean();
    return gap > 0.0 ? size_bytes * 8.0 / gap / 1e6 : 0.0;
  }
};

/// The per-cell transient analysis configuration a train campaign uses
/// for a cell of `train_length` packets: ks_prefix and steady_tail
/// clamped to the train, steady_tail defaulting to half the train.
/// Exposed so offline replays (trace::TrainReplayStats) can reproduce a
/// live campaign's analyzer configuration exactly.
[[nodiscard]] core::TransientConfig train_transient_config(
    int train_length, const TrainCampaignConfig& cfg);

/// Runs every cell's repetition ensemble across the runner's worker
/// pool and returns merged per-cell statistics, indexed like
/// `campaign.cells()`.  When the campaign carries a trace_dir, every
/// (cell, repetition) is additionally recorded as a binary event trace
/// (one file per repetition, deterministic names) for offline replay.
///
/// Repetition r of cell c is always `Scenario(cell.scenario).run_train(
/// cell.train, r)` — the same calls the legacy serial benches made — so
/// results depend only on (campaign_seed, cell index, repetition).
[[nodiscard]] std::vector<TrainCellStats> run_train_campaign(
    const Campaign& campaign, const TrainCampaignConfig& cfg,
    const Runner& runner);

/// The serving variant: before simulating a (cell, repetition), the
/// engine consults `io.resume` (loaded checkpoint / merged shard
/// files), then `io.cache` (content-addressed result cache), and only
/// executes the misses; every completed repetition is persisted through
/// `io.checkpoint` and cache misses are stored back.  With
/// `io.shard = I/N` only every N-th work shard (the same fixed ordering
/// the thread runner uses) runs in this process.  Wherever a record
/// comes from, the accumulation arithmetic is identical — records carry
/// the exact double bits the accumulators consume — so the merged
/// statistics (and any CSV/JSONL derived from them) are byte-identical
/// to an uninterrupted single-process run.  The default-constructed
/// options reproduce the classic overload exactly.
[[nodiscard]] std::vector<TrainCellStats> run_train_campaign(
    const Campaign& campaign, const TrainCampaignConfig& cfg,
    const Runner& runner, const serve::CampaignServeOptions& io);

/// Fingerprint binding checkpoint/shard files to this train campaign
/// (includes the config knobs that shape record content and
/// accumulation order: shard_size, sample_contender_queue).
[[nodiscard]] std::uint64_t train_campaign_fingerprint(
    const Campaign& campaign, const TrainCampaignConfig& cfg);

/// Counts the work shards `run_train_campaign` will execute (the job
/// total to hand a Progress reporter).
[[nodiscard]] int count_train_shards(const Campaign& campaign,
                                     const TrainCampaignConfig& cfg);

/// One measurement-method repetition's outcome, tagged with the campaign
/// coordinates it ran at.
struct MethodRun {
  int cell_index = 0;
  int repetition = 0;
  core::MeasurementReport report;
  /// Compute wall time of this repetition (0 when served from a record
  /// set or when observability is off) and whether it was served rather
  /// than simulated.  Purely observational.
  std::int64_t wall_ns = 0;
  bool served = false;
};

/// How a method campaign builds its tools and transports.
struct MethodCampaignConfig {
  /// Method registry; nullptr means core::MethodRegistry::global().
  const core::MethodRegistry* registry = nullptr;
  /// Builds the transport one repetition probes.  `seed` is the
  /// repetition's deterministic stream seed (method_rep_seed); the
  /// default builds a fresh core::SimTransport from the cell's scenario
  /// reseeded with it.
  std::function<std::unique_ptr<core::ProbeTransport>(const Cell&,
                                                      std::uint64_t seed)>
      make_transport;
};

/// The random-stream seed of method repetition `repetition` in cell
/// `cell_index`: a fork of the cell seed, disjoint from the train
/// campaign's per-repetition streams.  Depends only on
/// (campaign_seed, cell index, repetition) — never on worker scheduling.
[[nodiscard]] std::uint64_t method_rep_seed(std::uint64_t campaign_seed,
                                            int cell_index, int repetition);

/// The job total of run_method_campaign (one job per repetition) — the
/// number to hand a Progress reporter.
[[nodiscard]] int count_method_runs(const Campaign& campaign);

/// Runs every cell's method repetitions across the worker pool: each
/// repetition creates the cell's method from the registry, builds a
/// fresh transport seeded by method_rep_seed, and runs the tool.
/// Results are returned in (cell, repetition) order regardless of the
/// thread count.  Every cell must carry a method spec (a `methods` axis
/// on the SweepSpec); throws util::PreconditionError otherwise.
[[nodiscard]] std::vector<MethodRun> run_method_campaign(
    const Campaign& campaign, const MethodCampaignConfig& cfg,
    const Runner& runner);

/// Serving variant (see the train overload).  Jobs not selected by
/// `io.shard` return placeholder MethodRun entries with an empty
/// report.method — shard processes emit shard files, not rows, so
/// callers in shard mode ignore the return value.  A non-null
/// `io.cache` requires the default transport (content addressing hashes
/// the cell's scenario; a custom make_transport is invisible to it).
[[nodiscard]] std::vector<MethodRun> run_method_campaign(
    const Campaign& campaign, const MethodCampaignConfig& cfg,
    const Runner& runner, const serve::CampaignServeOptions& io);

/// Fingerprint binding checkpoint/shard files to this method campaign.
[[nodiscard]] std::uint64_t method_campaign_fingerprint(
    const Campaign& campaign);

/// Runs an arbitrary per-cell function across the pool and collects the
/// results by cell index (for campaigns whose cells are not train
/// ensembles, e.g. steady-state or packet-pair sweeps).
template <typename F>
[[nodiscard]] auto run_cells(const Campaign& campaign, const Runner& runner,
                             F&& fn) -> std::vector<decltype(fn(
    std::declval<const Cell&>()))> {
  return runner.map(campaign.size(), [&](int i) {
    return fn(campaign.cells()[static_cast<std::size_t>(i)]);
  });
}

}  // namespace csmabw::exp
