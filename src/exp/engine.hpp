#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "core/transient.hpp"
#include "exp/runner.hpp"
#include "exp/sweep.hpp"
#include "stats/summary.hpp"

namespace csmabw::exp {

/// How a train campaign analyzes each cell's repetitions.
struct TrainCampaignConfig {
  /// Raw-sample prefix per cell (KS tests, histograms); clamped to the
  /// cell's train length.
  int ks_prefix = 1;
  /// Additional individual raw-sample indices beyond the prefix
  /// (indices >= the cell's train length are dropped).
  std::vector<int> raw_indices;
  /// Steady-state pool size; 0 means half the cell's train length.
  int steady_tail = 0;
  /// Additionally sample contender 0's queue at probe arrivals and keep
  /// per-index stats for the first `queue_prefix` packets.
  bool sample_contender_queue = false;
  int queue_prefix = 0;
  /// Repetitions per work shard.  The shard decomposition is part of the
  /// campaign's deterministic contract: results are merged in shard
  /// order, so output is bit-identical for any thread count (and any
  /// shard size, up to floating-point association in merged moments).
  int shard_size = 64;
};

/// Merged per-cell result of a train campaign.
struct TrainCellStats {
  explicit TrainCellStats(const core::TransientConfig& tc) : analyzer(tc) {}

  core::TransientAnalyzer analyzer;
  /// Per-train output gap (Eq. 16) across complete trains.
  stats::RunningStat output_gap_s;
  /// Contender-0 queue length at probe arrival, per packet index
  /// (non-empty only with sample_contender_queue).
  std::vector<stats::RunningStat> queue_at_arrival;
  int used = 0;
  int dropped = 0;

  /// Measured probe rate implied by the mean output gap.
  [[nodiscard]] double measured_rate_mbps(int size_bytes) const {
    const double gap = output_gap_s.mean();
    return gap > 0.0 ? size_bytes * 8.0 / gap / 1e6 : 0.0;
  }
};

/// Runs every cell's repetition ensemble across the runner's worker
/// pool and returns merged per-cell statistics, indexed like
/// `campaign.cells()`.
///
/// Repetition r of cell c is always `Scenario(cell.scenario).run_train(
/// cell.train, r)` — the same calls the legacy serial benches made — so
/// results depend only on (campaign_seed, cell index, repetition).
[[nodiscard]] std::vector<TrainCellStats> run_train_campaign(
    const Campaign& campaign, const TrainCampaignConfig& cfg,
    const Runner& runner);

/// Counts the work shards `run_train_campaign` will execute (the job
/// total to hand a Progress reporter).
[[nodiscard]] int count_train_shards(const Campaign& campaign,
                                     const TrainCampaignConfig& cfg);

/// Runs an arbitrary per-cell function across the pool and collects the
/// results by cell index (for campaigns whose cells are not train
/// ensembles, e.g. steady-state or packet-pair sweeps).
template <typename F>
[[nodiscard]] auto run_cells(const Campaign& campaign, const Runner& runner,
                             F&& fn) -> std::vector<decltype(fn(
    std::declval<const Cell&>()))> {
  return runner.map(campaign.size(), [&](int i) {
    return fn(campaign.cells()[static_cast<std::size_t>(i)]);
  });
}

}  // namespace csmabw::exp
