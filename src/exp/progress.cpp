#include "exp/progress.hpp"

#include <iostream>

#include "obs/clock.hpp"
#include "util/require.hpp"
#include "util/table.hpp"

namespace csmabw::exp {

namespace {
constexpr std::int64_t kPrintIntervalNs = 200'000'000;  // 200 ms
}  // namespace

Progress::Progress(std::int64_t total, std::string label, bool enabled,
                   std::ostream* os)
    : total_(total),
      label_(std::move(label)),
      enabled_(enabled),
      os_(os != nullptr ? os : &std::cerr),
      start_ns_(obs::now_ns()),
      last_print_ns_(start_ns_ - kPrintIntervalNs) {
  CSMABW_REQUIRE(total >= 0, "progress total must be >= 0");
}

Progress::~Progress() { finish(); }

void Progress::tick(std::int64_t n) {
  std::scoped_lock lock(mu_);
  done_ += n;
  // The compute clock starts at the first computed tick, so cached
  // prefixes (resume/cache startup) never dilute the rate estimate.
  // With no cached prefix the whole run elapsed *is* compute time, so
  // anchor at construction — identical to the classic estimate.
  if (compute_start_ns_ < 0) {
    compute_start_ns_ = cached_ == 0 ? start_ns_ : obs::now_ns();
  }
  if (!enabled_) {
    return;
  }
  const std::int64_t now = obs::now_ns();
  if (now - last_print_ns_ >= kPrintIntervalNs) {
    last_print_ns_ = now;
    print_locked(/*final_line=*/false);
  }
}

void Progress::tick_cached(std::int64_t n) {
  std::scoped_lock lock(mu_);
  done_ += n;
  cached_ += n;
  if (!enabled_) {
    return;
  }
  const std::int64_t now = obs::now_ns();
  if (now - last_print_ns_ >= kPrintIntervalNs) {
    last_print_ns_ = now;
    print_locked(/*final_line=*/false);
  }
}

void Progress::finish() {
  std::scoped_lock lock(mu_);
  if (finished_) {
    return;
  }
  finished_ = true;
  if (enabled_) {
    print_locked(/*final_line=*/true);
  }
}

std::int64_t Progress::done() const {
  std::scoped_lock lock(mu_);
  return done_;
}

std::int64_t Progress::cached() const {
  std::scoped_lock lock(mu_);
  return cached_;
}

double Progress::eta_seconds() const {
  std::scoped_lock lock(mu_);
  return eta_locked(obs::now_ns());
}

double Progress::eta_locked(std::int64_t now) const {
  const std::int64_t computed = done_ - cached_;
  if (computed <= 0 || done_ >= total_ || compute_start_ns_ < 0) {
    return -1.0;
  }
  // Rate over the compute window only: (now - first computed tick's
  // start) / computed units, extrapolated over the remaining units.
  const double compute_elapsed_s =
      static_cast<double>(now - compute_start_ns_) / 1e9;
  return compute_elapsed_s * static_cast<double>(total_ - done_) /
         static_cast<double>(computed);
}

void Progress::print_locked(bool final_line) {
  const std::int64_t now = obs::now_ns();
  const double elapsed_s = static_cast<double>(now - start_ns_) / 1e9;
  const double pct =
      total_ > 0 ? 100.0 * static_cast<double>(done_) /
                       static_cast<double>(total_)
                 : 100.0;
  *os_ << '\r' << label_ << ' ' << done_ << '/' << total_ << " ("
       << util::Table::format(pct, 1) << "%) elapsed "
       << util::Table::format(elapsed_s, 1) << "s";
  // ETA extrapolates from *computed* units over the compute clock (see
  // eta_locked): cached/resumed repetitions finish in microseconds and
  // contribute neither units nor elapsed time to the estimate.
  const double eta_s = eta_locked(now);
  if (!final_line && eta_s >= 0.0) {
    *os_ << " eta " << util::Table::format(eta_s, 1) << "s";
  }
  if (final_line && cached_ > 0) {
    *os_ << " cached=" << cached_ << " computed=" << done_ - cached_;
  }
  *os_ << "   ";
  if (final_line) {
    *os_ << '\n';
  }
  os_->flush();
}

}  // namespace csmabw::exp
