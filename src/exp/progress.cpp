#include "exp/progress.hpp"

#include <iostream>

#include "util/require.hpp"
#include "util/table.hpp"

namespace csmabw::exp {

namespace {
constexpr std::chrono::milliseconds kPrintInterval{200};
}  // namespace

Progress::Progress(std::int64_t total, std::string label, bool enabled,
                   std::ostream* os)
    : total_(total),
      label_(std::move(label)),
      enabled_(enabled),
      os_(os != nullptr ? os : &std::cerr),
      start_(Clock::now()),
      last_print_(start_ - kPrintInterval) {
  CSMABW_REQUIRE(total >= 0, "progress total must be >= 0");
}

Progress::~Progress() { finish(); }

void Progress::tick(std::int64_t n) {
  if (!enabled_) {
    std::scoped_lock lock(mu_);
    done_ += n;
    return;
  }
  std::scoped_lock lock(mu_);
  done_ += n;
  const auto now = Clock::now();
  if (now - last_print_ >= kPrintInterval) {
    last_print_ = now;
    print_locked(/*final_line=*/false);
  }
}

void Progress::tick_cached(std::int64_t n) {
  std::scoped_lock lock(mu_);
  done_ += n;
  cached_ += n;
  if (!enabled_) {
    return;
  }
  const auto now = Clock::now();
  if (now - last_print_ >= kPrintInterval) {
    last_print_ = now;
    print_locked(/*final_line=*/false);
  }
}

void Progress::finish() {
  std::scoped_lock lock(mu_);
  if (finished_) {
    return;
  }
  finished_ = true;
  if (enabled_) {
    print_locked(/*final_line=*/true);
  }
}

std::int64_t Progress::done() const {
  std::scoped_lock lock(mu_);
  return done_;
}

std::int64_t Progress::cached() const {
  std::scoped_lock lock(mu_);
  return cached_;
}

void Progress::print_locked(bool final_line) {
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - start_).count();
  const double pct =
      total_ > 0 ? 100.0 * static_cast<double>(done_) /
                       static_cast<double>(total_)
                 : 100.0;
  *os_ << '\r' << label_ << ' ' << done_ << '/' << total_ << " ("
       << util::Table::format(pct, 1) << "%) elapsed "
       << util::Table::format(elapsed_s, 1) << "s";
  // ETA extrapolates from *computed* units only: pre-completed
  // (cached/resumed) repetitions finish in microseconds and would
  // otherwise make the remaining simulation work look nearly free.
  const std::int64_t computed = done_ - cached_;
  if (!final_line && computed > 0 && done_ < total_) {
    const double eta_s =
        elapsed_s * static_cast<double>(total_ - done_) /
        static_cast<double>(computed);
    *os_ << " eta " << util::Table::format(eta_s, 1) << "s";
  }
  if (final_line && cached_ > 0) {
    *os_ << " cached=" << cached_ << " computed=" << computed;
  }
  *os_ << "   ";
  if (final_line) {
    *os_ << '\n';
  }
  os_->flush();
}

}  // namespace csmabw::exp
