#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>

namespace csmabw::exp {

/// Thread-safe progress/ETA reporter for long campaigns.
///
/// Writes carriage-return status lines ("label 42/96 (44%) eta 12s") to
/// a stream — stderr by default, so that bench stdout (tables, CSV
/// mirrors) stays machine-parseable and byte-identical whether or not
/// progress is shown.  Prints are rate-limited; `tick()` is cheap enough
/// to call once per work shard from every worker thread.
class Progress {
 public:
  /// `total`: number of work units; `enabled == false` makes every call
  /// a no-op (the default for tests and non-interactive runs).
  Progress(std::int64_t total, std::string label, bool enabled,
           std::ostream* os = nullptr);
  ~Progress();

  Progress(const Progress&) = delete;
  Progress& operator=(const Progress&) = delete;

  void tick(std::int64_t n = 1);
  /// Ticks `n` units that were pre-completed (served from a result
  /// cache or a resumed checkpoint) rather than computed.  They count
  /// toward `done()` but are excluded from the ETA's rate estimate —
  /// near-instantaneous cache hits must not make the remaining real
  /// work look instantaneous too.  The final line reports them as
  /// `cached=X computed=Y`.
  void tick_cached(std::int64_t n = 1);
  /// Prints the final line (with newline) once; idempotent.
  void finish();

  [[nodiscard]] std::int64_t done() const;
  [[nodiscard]] std::int64_t cached() const;
  [[nodiscard]] std::int64_t total() const { return total_; }

 private:
  void print_locked(bool final_line);

  using Clock = std::chrono::steady_clock;

  std::int64_t total_;
  std::string label_;
  bool enabled_;
  std::ostream* os_;
  mutable std::mutex mu_;
  std::int64_t done_ = 0;
  std::int64_t cached_ = 0;
  bool finished_ = false;
  Clock::time_point start_;
  Clock::time_point last_print_;
};

}  // namespace csmabw::exp
