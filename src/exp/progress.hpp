#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>

namespace csmabw::exp {

/// Thread-safe progress/ETA reporter for long campaigns.
///
/// Writes carriage-return status lines ("label 42/96 (44%) eta 12s") to
/// a stream — stderr by default, so that bench stdout (tables, CSV
/// mirrors) stays machine-parseable and byte-identical whether or not
/// progress is shown.  Prints are rate-limited; `tick()` is cheap enough
/// to call once per work shard from every worker thread.
///
/// Timing uses the observability clock source (obs::now_ns), and the
/// ETA extrapolates from a *compute clock* that starts at the first
/// computed (non-cached) tick: a resumed run that serves its first ten
/// thousand repetitions from a checkpoint in milliseconds must not
/// divide that startup elapsed over the few remaining simulated reps
/// and report an absurd ETA.
class Progress {
 public:
  /// `total`: number of work units; `enabled == false` makes every call
  /// a no-op (the default for tests and non-interactive runs).
  Progress(std::int64_t total, std::string label, bool enabled,
           std::ostream* os = nullptr);
  ~Progress();

  Progress(const Progress&) = delete;
  Progress& operator=(const Progress&) = delete;

  void tick(std::int64_t n = 1);
  /// Ticks `n` units that were pre-completed (served from a result
  /// cache or a resumed checkpoint) rather than computed.  They count
  /// toward `done()` but are excluded from the ETA's rate estimate —
  /// near-instantaneous cache hits must not make the remaining real
  /// work look instantaneous too.  The final line reports them as
  /// `cached=X computed=Y`.
  void tick_cached(std::int64_t n = 1);
  /// Prints the final line (with newline) once; idempotent.
  void finish();

  [[nodiscard]] std::int64_t done() const;
  [[nodiscard]] std::int64_t cached() const;
  [[nodiscard]] std::int64_t total() const { return total_; }

  /// ETA in seconds as the reporter would print it right now, or a
  /// negative value when no estimate exists yet (nothing computed, or
  /// the run is complete).  Exposed for tests: the compute-clock fix is
  /// observable without scraping the status line.
  [[nodiscard]] double eta_seconds() const;

 private:
  void print_locked(bool final_line);
  [[nodiscard]] double eta_locked(std::int64_t now) const;

  std::int64_t total_;
  std::string label_;
  bool enabled_;
  std::ostream* os_;
  mutable std::mutex mu_;
  std::int64_t done_ = 0;
  std::int64_t cached_ = 0;
  bool finished_ = false;
  std::int64_t start_ns_;
  std::int64_t compute_start_ns_ = -1;  ///< first computed tick; -1 = none
  std::int64_t last_print_ns_;
};

}  // namespace csmabw::exp
