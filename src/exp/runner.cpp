#include "exp/runner.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "util/require.hpp"

namespace csmabw::exp {

int resolve_threads(int requested) {
  if (requested > 0) {
    return requested;
  }
  if (const char* env = std::getenv("CSMABW_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) {
      return parsed;
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

Runner::Runner(RunnerOptions opts)
    : threads_(resolve_threads(opts.threads)), progress_(opts.progress) {}

void Runner::for_each(int jobs, std::function<void(int)> fn) const {
  CSMABW_REQUIRE(jobs >= 0, "job count must be >= 0");
  CSMABW_REQUIRE(fn != nullptr, "job function must be callable");
  if (jobs == 0) {
    return;
  }

  const int workers = std::min(threads_, jobs);
  if (workers <= 1) {
    for (int i = 0; i < jobs; ++i) {
      fn(i);
      if (progress_ != nullptr) {
        progress_->tick();
      }
    }
    return;
  }

  std::atomic<int> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;
  std::atomic<bool> aborted{false};

  auto work = [&] {
    while (!aborted.load(std::memory_order_relaxed)) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs) {
        return;
      }
      try {
        fn(i);
      } catch (...) {
        std::scoped_lock lock(error_mu);
        if (!first_error) {
          first_error = std::current_exception();
        }
        aborted.store(true, std::memory_order_relaxed);
        return;
      }
      if (progress_ != nullptr) {
        progress_->tick();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back(work);
  }
  for (auto& t : pool) {
    t.join();
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

}  // namespace csmabw::exp
