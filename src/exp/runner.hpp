#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "exp/progress.hpp"

namespace csmabw::exp {

struct RunnerOptions {
  /// Worker threads; <= 0 resolves via `resolve_threads(0)` (the
  /// CSMABW_THREADS environment variable, else hardware concurrency).
  int threads = 0;
  /// Optional reporter, ticked once per completed job.
  Progress* progress = nullptr;
};

/// Resolves a requested thread count: a positive request wins, otherwise
/// the CSMABW_THREADS environment variable, otherwise
/// std::thread::hardware_concurrency() (at least 1).
[[nodiscard]] int resolve_threads(int requested);

/// Fixed-size worker pool executing an indexed job list.
///
/// Work is handed out by an atomic cursor, so scheduling is
/// nondeterministic — but jobs are pure functions of their index and
/// results are placed by index, which makes every campaign output
/// independent of the thread count.  The first exception thrown by any
/// job is rethrown on the calling thread after all workers drain.
class Runner {
 public:
  explicit Runner(RunnerOptions opts = {});

  [[nodiscard]] int threads() const { return threads_; }

  /// Runs fn(i) for every i in [0, jobs).  Taken by value and moved, so
  /// passing an rvalue lambda never copies its captures.
  void for_each(int jobs, std::function<void(int)> fn) const;

  /// Runs fn(i) for every i and collects the results by job index.
  /// R must be movable; construction happens on the worker threads.
  template <typename F>
  [[nodiscard]] auto map(int jobs, F&& fn) const
      -> std::vector<decltype(fn(0))> {
    using R = decltype(fn(0));
    std::vector<std::unique_ptr<R>> slots(static_cast<std::size_t>(jobs));
    for_each(jobs, [&](int i) {
      slots[static_cast<std::size_t>(i)] = std::make_unique<R>(fn(i));
    });
    std::vector<R> out;
    out.reserve(static_cast<std::size_t>(jobs));
    for (auto& slot : slots) {
      out.push_back(std::move(*slot));
    }
    return out;
  }

 private:
  int threads_;
  Progress* progress_;
};

}  // namespace csmabw::exp
