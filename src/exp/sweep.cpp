#include "exp/sweep.hpp"

#include <cmath>
#include <limits>

#include "core/method.hpp"
#include "topo/registry.hpp"
#include "util/require.hpp"

namespace csmabw::exp {

namespace {

const core::ScenarioRegistry& scenario_registry_of(const SweepSpec& spec) {
  return spec.scenario_registry != nullptr
             ? *spec.scenario_registry
             : core::ScenarioRegistry::global();
}

}  // namespace

void SweepSpec::validate() const {
  CSMABW_REQUIRE(!contender_counts.empty(), "contender_counts axis is empty");
  CSMABW_REQUIRE(!cross_mbps.empty(), "cross_mbps axis is empty");
  CSMABW_REQUIRE(!phy_presets.empty(), "phy_presets axis is empty");
  CSMABW_REQUIRE(!train_lengths.empty(), "train_lengths axis is empty");
  CSMABW_REQUIRE(!probe_mbps.empty(), "probe_mbps axis is empty");
  CSMABW_REQUIRE(!fifo_cross.empty(), "fifo_cross axis is empty");
  CSMABW_REQUIRE(repetitions >= 1, "repetitions must be >= 1");
  CSMABW_REQUIRE(probe_size_bytes > 0, "probe_size_bytes must be positive");
  CSMABW_REQUIRE(cross_size_bytes > 0, "cross_size_bytes must be positive");
  if (!scenarios.empty()) {
    // The scenario axis defines phy/contenders/cross/fifo per entry;
    // sweeping both would silently ignore one side, so reject it.
    const SweepSpec defaults;
    CSMABW_REQUIRE(contender_counts == defaults.contender_counts &&
                       cross_mbps == defaults.cross_mbps &&
                       phy_presets == defaults.phy_presets &&
                       fifo_cross == defaults.fifo_cross &&
                       cross_size_bytes == defaults.cross_size_bytes &&
                       fifo_cross_mbps == defaults.fifo_cross_mbps &&
                       fifo_cross_size_bytes == defaults.fifo_cross_size_bytes,
                   "the scenarios axis replaces the contender_counts/"
                   "cross_mbps/phy_presets/fifo_cross axes and the "
                   "cross/fifo size and rate knobs; leave them at their "
                   "defaults");
    const core::ScenarioRegistry& registry = scenario_registry_of(*this);
    for (const auto& entry : scenarios) {
      // Throws on unknown names and malformed grammar — and validates
      // every traffic spec — before any campaign work starts.
      const core::ScenarioSpec scenario = registry.resolve(entry);
      if (!topologies.empty()) {
        CSMABW_REQUIRE(scenario.topology == topo::kDefaultTopology,
                       "scenario `" + entry + "` sets its own topology; "
                       "the topologies axis replaces the scenario's "
                       "`topology=` field — set one or the other");
        const int stations = 1 + static_cast<int>(scenario.contenders.size());
        for (const auto& topology : topologies) {
          // Grammar AND node-count validation: a grid:3x3 entry over a
          // 4-station scenario fails here, not mid-campaign.
          (void)topo::TopologyRegistry::global().build(topology, stations);
        }
      }
    }
  }
  CSMABW_REQUIRE(topologies.empty() || !scenarios.empty(),
                 "the topologies axis multiplies the scenarios axis; "
                 "give --scenarios/SweepSpec::scenarios at least one "
                 "entry (station counts come from the scenario)");
  for (int c : contender_counts) {
    CSMABW_REQUIRE(c >= 0, "contender counts must be >= 0");
  }
  for (double r : cross_mbps) {
    CSMABW_REQUIRE(r > 0.0, "cross rates must be positive");
  }
  for (int n : train_lengths) {
    CSMABW_REQUIRE(n >= 2, "train lengths must be >= 2");
  }
  for (double r : probe_mbps) {
    CSMABW_REQUIRE(r > 0.0, "probe rates must be positive");
  }
  for (const auto& name : phy_presets) {
    (void)phy_preset(name);  // throws on unknown names
  }
  const core::MethodRegistry& registry =
      method_registry != nullptr ? *method_registry
                                 : core::MethodRegistry::global();
  for (const auto& spec : methods) {
    // Throws on unknown names, unknown option keys and malformed values
    // — bad method specs fail before any campaign work starts.
    (void)registry.create(spec);
  }
}

std::int64_t SweepSpec::grid_size() const {
  const std::int64_t scenario_axes =
      scenarios.empty()
          ? static_cast<std::int64_t>(contender_counts.size()) *
                static_cast<std::int64_t>(cross_mbps.size()) *
                static_cast<std::int64_t>(phy_presets.size()) *
                static_cast<std::int64_t>(fifo_cross.size())
          : static_cast<std::int64_t>(scenarios.size()) *
                static_cast<std::int64_t>(
                    topologies.empty() ? 1 : topologies.size());
  return scenario_axes * static_cast<std::int64_t>(train_lengths.size()) *
         static_cast<std::int64_t>(probe_mbps.size()) *
         static_cast<std::int64_t>(methods.empty() ? 1 : methods.size());
}

Campaign::Campaign(SweepSpec spec) : spec_(std::move(spec)) {
  spec_.validate();
  // A campaign without a methods axis expands exactly as before the axis
  // existed (cells carry an empty method spec).
  const std::vector<std::string> method_axis =
      spec_.methods.empty() ? std::vector<std::string>{std::string()}
                            : spec_.methods;
  cells_.reserve(static_cast<std::size_t>(spec_.grid_size()));

  // Finishes a cell whose coordinate columns and scenario stations are
  // already stamped: index, seed and probe train.
  const auto finish_cell = [&](Cell cell) {
    cell.index = static_cast<int>(cells_.size());
    cell.repetitions = spec_.repetitions;
    cell.scenario.seed = cell_seed(spec_.campaign_seed, cell.index);
    cell.train.n = cell.train_length;
    cell.train.size_bytes = spec_.probe_size_bytes;
    cell.train.gap =
        BitRate::mbps(cell.probe_mbps).gap_for(spec_.probe_size_bytes);
    cells_.push_back(std::move(cell));
  };

  if (!spec_.scenarios.empty()) {
    // Scenario axis: scenario (outermost) > topology > train length >
    // probe rate > method; the scenario entry fixes
    // phy/contenders/cross/fifo and, when the topologies axis is set,
    // each topology entry overrides the scenario's conflict graph.
    // Without a topologies axis the expansion is exactly the pre-axis
    // one (a single pass-through entry leaves labels and configs
    // untouched).
    const std::vector<std::string> topology_axis =
        spec_.topologies.empty() ? std::vector<std::string>{std::string()}
                                 : spec_.topologies;
    const core::ScenarioRegistry& registry = scenario_registry_of(spec_);
    for (const std::string& entry : spec_.scenarios) {
      const core::ScenarioSpec base = registry.resolve(entry);
      const std::optional<BitRate> load = base.offered_load();
      for (const std::string& topology : topology_axis) {
        core::ScenarioSpec scenario = base;
        if (!topology.empty()) {
          scenario.topology =
              topo::TopologyRegistry::global().canonical(topology);
        }
        // Topology-axis cells are labelled with the full grammar string
        // (topology included): (scenario, topology) stays a distinct
        // coordinate without growing the collector's column set.
        const std::string label =
            topology.empty() ? scenario.label() : scenario.describe();
        for (int train_length : spec_.train_lengths) {
          for (double probe : spec_.probe_mbps) {
            for (const std::string& method : method_axis) {
              Cell cell;
              cell.scenario_name = label;
              cell.contenders = static_cast<int>(scenario.contenders.size());
              cell.cross_mbps =
                  load.has_value() ? load->to_mbps()
                                   : std::numeric_limits<double>::quiet_NaN();
              cell.phy_preset = scenario.phy_preset;
              cell.train_length = train_length;
              cell.probe_mbps = probe;
              cell.fifo = scenario.fifo.has_value();
              cell.method = method;
              cell.scenario = scenario.to_config(/*seed=*/0);
              finish_cell(std::move(cell));
            }
          }
        }
      }
    }
    return;
  }

  for (const auto& phy_name : spec_.phy_presets) {
    const mac::PhyParams phy = phy_preset(phy_name);
    for (int contenders : spec_.contender_counts) {
      for (double cross : spec_.cross_mbps) {
        for (int train_length : spec_.train_lengths) {
          for (double probe : spec_.probe_mbps) {
            for (bool fifo : spec_.fifo_cross) {
              for (const std::string& method : method_axis) {
                Cell cell;
                cell.contenders = contenders;
                cell.cross_mbps = cross;
                cell.phy_preset = phy_name;
                cell.train_length = train_length;
                cell.probe_mbps = probe;
                cell.fifo = fifo;
                cell.method = method;
                cell.scenario.phy = phy;
                for (int k = 0; k < contenders; ++k) {
                  cell.scenario.contenders.push_back(
                      core::StationSpec::poisson(BitRate::mbps(cross),
                                                 spec_.cross_size_bytes));
                }
                if (fifo) {
                  cell.scenario.fifo_cross = core::StationSpec::poisson(
                      BitRate::mbps(spec_.fifo_cross_mbps),
                      spec_.fifo_cross_size_bytes);
                }
                finish_cell(std::move(cell));
              }
            }
          }
        }
      }
    }
  }
}

const SweepSpec& Campaign::spec() const {
  CSMABW_REQUIRE(!custom_cells_,
                 "campaign was built from explicit cells; the grid spec "
                 "does not describe it — read cells() instead");
  return spec_;
}

Campaign::Campaign(std::vector<Cell> cells, std::uint64_t campaign_seed)
    : cells_(std::move(cells)), custom_cells_(true) {
  CSMABW_REQUIRE(!cells_.empty(), "campaign needs at least one cell");
  spec_.campaign_seed = campaign_seed;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    Cell& cell = cells_[i];
    cell.index = static_cast<int>(i);
    cell.scenario.seed = cell_seed(campaign_seed, cell.index);
    CSMABW_REQUIRE(cell.repetitions >= 1, "cell repetitions must be >= 1");
  }
}

std::int64_t Campaign::total_repetitions() const {
  std::int64_t total = 0;
  for (const auto& cell : cells_) {
    total += cell.repetitions;
  }
  return total;
}

std::vector<std::string> split_scenario_list(std::string_view text) {
  std::vector<std::string> entries;
  CSMABW_REQUIRE(!text.empty(), "scenario list is empty");
  std::size_t pos = 0;
  while (true) {
    const std::size_t bar = text.find('|', pos);
    const std::size_t end = bar == std::string_view::npos ? text.size()
                                                          : bar;
    std::string_view element = text.substr(pos, end - pos);
    while (!element.empty() && element.front() == ' ') {
      element.remove_prefix(1);
    }
    while (!element.empty() && element.back() == ' ') {
      element.remove_suffix(1);
    }
    CSMABW_REQUIRE(!element.empty(), "empty element in scenario list `" +
                                         std::string(text) + "`");
    entries.emplace_back(element);
    if (bar == std::string_view::npos) {
      break;
    }
    pos = bar + 1;
  }
  return entries;
}

}  // namespace csmabw::exp
