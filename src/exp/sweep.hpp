#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/scenario.hpp"
#include "traffic/probe_train.hpp"

namespace csmabw::core {
class MethodRegistry;
}  // namespace csmabw::core

namespace csmabw::exp {

/// Declarative parameter grid over the paper's experimental knobs.
///
/// Every axis is a list of values; the campaign is the full cartesian
/// product, expanded in a fixed documented order so that cell indices —
/// and therefore per-cell seeds and collector output — are stable across
/// runs, machines and thread counts.
struct SweepSpec {
  /// Named scenario axis (outermost): each entry is a registered
  /// scenario name or an inline grammar string (core::ScenarioSpec /
  /// core::ScenarioRegistry), so heterogeneous-station and non-Poisson
  /// cells sweep like any other coordinate.  When non-empty this axis
  /// REPLACES the contender_counts/cross_mbps/phy_presets/fifo_cross
  /// axes, which must stay at their defaults.
  std::vector<std::string> scenarios{};
  /// Registry the scenario entries are resolved against (must outlive
  /// the spec); nullptr means core::ScenarioRegistry::global().
  const core::ScenarioRegistry* scenario_registry = nullptr;
  /// Conflict-graph topology axis (topo::TopologyRegistry specs such as
  /// `clique`, `grid:3x3`, `pairs-hidden:2`).  Requires a non-empty
  /// scenarios axis — each scenario entry is expanded once per topology
  /// — and every scenario entry must leave its own `topology=` field at
  /// the default, so the axis is the single source of truth.  Cells on
  /// this axis are labelled with the full scenario grammar including
  /// the topology, keeping (scenario, topology) coordinates distinct
  /// without a new collector column.  Node counts are validated against
  /// each scenario's station count before any campaign work starts.
  std::vector<std::string> topologies{};
  /// Number of contending stations (each carries one Poisson flow).
  std::vector<int> contender_counts{1};
  /// Per-contender Poisson rate in Mb/s.
  std::vector<double> cross_mbps{2.0};
  /// PHY presets by name; see `phy_preset_names()`.
  std::vector<std::string> phy_presets{"dot11b_short"};
  /// Probe-train length in packets.
  std::vector<int> train_lengths{600};
  /// Probe input rate in Mb/s (sets the train's input gap g_I).
  std::vector<double> probe_mbps{5.0};
  /// FIFO cross-traffic on the probing station's own queue (Fig 3).
  std::vector<bool> fifo_cross{false};
  /// Measurement-method specs ("slops:train_length=50", see
  /// core::MethodRegistry), making tool-vs-tool comparison a sweep
  /// dimension.  Empty (the default) means the campaign has no method
  /// axis — the classic probe-train ensemble of run_train_campaign.
  std::vector<std::string> methods{};
  /// Registry the method specs are validated against (must outlive the
  /// spec); nullptr means core::MethodRegistry::global().  Point it at
  /// the same custom registry as MethodCampaignConfig::registry when
  /// sweeping methods that are not globally registered.
  const core::MethodRegistry* method_registry = nullptr;

  double fifo_cross_mbps = 1.0;
  int fifo_cross_size_bytes = 1500;
  int cross_size_bytes = 1500;
  int probe_size_bytes = 1500;

  /// Independent probing-train repetitions per cell.
  int repetitions = 100;
  std::uint64_t campaign_seed = 1;

  /// When non-empty, run_train_campaign records every (cell, repetition)
  /// as a binary event trace under this directory (created if missing),
  /// named `cell-CCCCC-rep-RRRRRR.cctrace` — see trace::train_trace_path.
  /// Recording is observational: results are bit-identical either way.
  std::string trace_dir{};

  /// Throws util::PreconditionError on an empty or inconsistent grid.
  void validate() const;
  [[nodiscard]] std::int64_t grid_size() const;
};

/// One expanded grid point: the coordinates it came from plus the fully
/// built scenario and train spec ready to run.
struct Cell {
  int index = 0;
  /// Scenario-axis label (the spec's name, else its grammar string);
  /// empty for cells expanded from the classic per-knob axes.
  std::string scenario_name;
  int contenders = 0;
  /// Per-contender Poisson rate for classic cells; for scenario-axis
  /// cells the total mean offered load (NaN when a contender is
  /// saturated, i.e. offers unbounded load).
  double cross_mbps = 0.0;
  std::string phy_preset;
  int train_length = 0;
  double probe_mbps = 0.0;
  bool fifo = false;
  /// Measurement-method spec; empty when the campaign has no method axis.
  std::string method;
  int repetitions = 0;
  core::ScenarioConfig scenario;
  traffic::TrainSpec train;
};

/// An expanded sweep: a flat, immutable work list of cells.
///
/// Cell i's scenario seed is `campaign_seed + i`; per-repetition
/// independence comes from `Rng::fork(repetition)` inside
/// core::Scenario, so the stream of any (cell, repetition) pair depends
/// only on (campaign_seed, cell index, repetition) — never on worker
/// scheduling.  A single-cell campaign reproduces the legacy serial
/// bench binaries' streams exactly.
class Campaign {
 public:
  /// Expands the grid; order: scenario (outermost, when the scenarios
  /// axis is non-empty) > topology (when the topologies axis is
  /// non-empty) > phy preset > contenders > cross rate > train
  /// length > probe rate > fifo > method (innermost; only present when
  /// the methods axis is non-empty).  With a scenarios axis the
  /// phy/contenders/cross/fifo loops collapse to the scenario's values.
  explicit Campaign(SweepSpec spec);

  /// Builds a campaign from explicitly constructed cells (for sweeps
  /// that do not fit a cartesian grid, e.g. load-indexed sweeps).
  /// Re-indexes the cells and derives each cell's scenario seed.
  Campaign(std::vector<Cell> cells, std::uint64_t campaign_seed);

  /// The grid this campaign was expanded from.  Only meaningful for
  /// grid campaigns; throws for campaigns built from explicit cells
  /// (whose cells are the sole source of truth).
  [[nodiscard]] const SweepSpec& spec() const;
  [[nodiscard]] std::uint64_t campaign_seed() const {
    return spec_.campaign_seed;
  }
  /// Trace output directory ("" = recording disabled).  Copied from the
  /// grid spec; campaigns built from explicit cells opt in via
  /// set_trace_dir.
  [[nodiscard]] const std::string& trace_dir() const {
    return spec_.trace_dir;
  }
  void set_trace_dir(std::string dir) { spec_.trace_dir = std::move(dir); }
  [[nodiscard]] const std::vector<Cell>& cells() const { return cells_; }
  [[nodiscard]] int size() const { return static_cast<int>(cells_.size()); }
  [[nodiscard]] std::int64_t total_repetitions() const;

  [[nodiscard]] static std::uint64_t cell_seed(std::uint64_t campaign_seed,
                                               int cell_index) {
    return campaign_seed + static_cast<std::uint64_t>(cell_index);
  }

 private:
  SweepSpec spec_;
  std::vector<Cell> cells_;
  bool custom_cells_ = false;
};

/// PHY preset resolution lives with the scenario layer now; re-exported
/// here for the existing exp::phy_preset callers.
using core::phy_preset;
using core::phy_preset_names;

/// Splits a '|'-separated scenario list ("paper_fig2|name=het;..." —
/// scenario grammars use ';' and ',' internally, so the axis separator
/// is '|').  Empty elements throw util::PreconditionError.
[[nodiscard]] std::vector<std::string> split_scenario_list(
    std::string_view text);

}  // namespace csmabw::exp
