#include "mac/bianchi.hpp"

#include <cmath>

#include "util/require.hpp"

namespace csmabw::mac {

namespace {

// Transmission probability for a given conditional collision probability
// (Bianchi 2000, Eq. 7), with W = CWmin + 1 and m backoff stages.
double tau_of_p(double p, int w, int m) {
  if (p >= 1.0) {
    return 0.0;
  }
  const double num = 2.0 * (1.0 - 2.0 * p);
  const double den = (1.0 - 2.0 * p) * (w + 1) +
                     p * w * (1.0 - std::pow(2.0 * p, m));
  return num / den;
}

}  // namespace

BianchiResult bianchi_saturation(const PhyParams& phy, int n,
                                 int payload_bytes) {
  CSMABW_REQUIRE(n >= 1, "need at least one station");
  CSMABW_REQUIRE(payload_bytes > 0, "payload must be positive");
  phy.validate();

  const int w = phy.cw_min + 1;
  const int m = static_cast<int>(
      std::lround(std::log2(static_cast<double>(phy.cw_max + 1) / w)));

  // Fixed point of tau = f(p), p = 1 - (1 - tau)^(n-1), by bisection on
  // tau (the map is monotone in p, so the difference is monotone).
  double lo = 0.0;
  double hi = 1.0;
  double tau = 0.0;
  for (int it = 0; it < 200; ++it) {
    tau = 0.5 * (lo + hi);
    const double p = 1.0 - std::pow(1.0 - tau, n - 1);
    const double tau_next = tau_of_p(p, w, m);
    if (tau_next > tau) {
      lo = tau;
    } else {
      hi = tau;
    }
  }
  const double p = 1.0 - std::pow(1.0 - tau, n - 1);

  // Slot-type probabilities.
  const double p_tr = 1.0 - std::pow(1.0 - tau, n);      // some tx
  const double p_s = (p_tr > 0.0)
                         ? n * tau * std::pow(1.0 - tau, n - 1) / p_tr
                         : 0.0;                           // success | tx

  const double sigma = phy.slot_time.to_seconds();
  const double t_s = (phy.data_tx_time(payload_bytes) + phy.sifs +
                      phy.ack_tx_time() + phy.difs())
                         .to_seconds();
  const double t_c =
      (phy.data_tx_time(payload_bytes) +
       (phy.use_eifs ? phy.eifs() : phy.difs()))
          .to_seconds();

  const double payload_bits = payload_bytes * 8.0;
  const double denom = (1.0 - p_tr) * sigma + p_tr * p_s * t_s +
                       p_tr * (1.0 - p_s) * t_c;
  const double s_bps = (denom > 0.0) ? p_tr * p_s * payload_bits / denom : 0.0;

  BianchiResult r;
  r.tau = tau;
  r.p = p;
  r.aggregate = BitRate::bps(s_bps);
  r.per_station = BitRate::bps(s_bps / n);
  return r;
}

}  // namespace csmabw::mac
