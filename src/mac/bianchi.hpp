#pragma once

#include "mac/phy.hpp"
#include "util/units.hpp"

namespace csmabw::mac {

/// Result of the Bianchi (2000) saturation analysis of the DCF.
struct BianchiResult {
  /// Per-slot transmission probability of a saturated station.
  double tau = 0.0;
  /// Conditional collision probability seen by a transmitting station.
  double p = 0.0;
  /// Aggregate saturation throughput (network-layer bits per second).
  BitRate aggregate;
  /// Fair share of one station: aggregate / n.
  BitRate per_station;
};

/// Solves Bianchi's fixed point for `n` saturated stations sending
/// `payload_bytes` packets under `phy`, and evaluates the saturation
/// throughput.
///
/// Used to predict the fair share — the paper's achievable throughput B
/// when the probe saturates its queue — and to cross-validate the DCF
/// simulator (the paper calibrated its testbed and NS2 the same way,
/// Appendix A / [8]).
[[nodiscard]] BianchiResult bianchi_saturation(const PhyParams& phy, int n,
                                               int payload_bytes);

}  // namespace csmabw::mac
