#include "mac/medium.hpp"

#include <algorithm>

#include "mac/station.hpp"
#include "util/require.hpp"

namespace csmabw::mac {

Medium::Medium(sim::Simulator& sim, const PhyParams& phy)
    : MediumBase(sim, phy) {}

int Medium::register_station(DcfStation* s) {
  CSMABW_REQUIRE(s != nullptr, "null station");
  stations_.push_back(s);
  contenders_.push_back(Contender{});
  return static_cast<int>(stations_.size()) - 1;
}

bool Medium::idle_for_difs(TimeNs now) const {
  return !busy_ && now - idle_start_ >= phy_.difs();
}

TimeNs Medium::fire_time(const DcfStation& s) const {
  const TimeNs start = std::max(idle_start_, s.contend_from());
  return start + s.defer() + phy_.slot_time * s.backoff_slots();
}

void Medium::update_contention(DcfStation& s) {
  if (busy_) {
    return;  // the cache is rebuilt wholesale when the occupation ends
  }
  refresh_contender(s.medium_slot(), s);
  sync_pending_fire();
}

void Medium::refresh_contender(int i, const DcfStation& s) {
  Contender& c = contenders_[static_cast<std::size_t>(i)];
  c.active = s.in_contention();
  if (c.active) {
    c.fire = fire_time(s);
  }
  if (i == min_slot_) {
    // The minimum's owner changed; it may no longer be the minimum.
    rescan_min();
  } else if (c.active &&
             (min_slot_ < 0 ||
              c.fire < contenders_[static_cast<std::size_t>(min_slot_)].fire)) {
    min_slot_ = i;
  }
}

void Medium::rescan_min() {
  min_slot_ = -1;
  for (std::size_t i = 0; i < contenders_.size(); ++i) {
    const Contender& c = contenders_[i];
    if (c.active &&
        (min_slot_ < 0 ||
         c.fire < contenders_[static_cast<std::size_t>(min_slot_)].fire)) {
      min_slot_ = static_cast<int>(i);
    }
  }
}

void Medium::sync_pending_fire() {
  pending_fire_.cancel();
  if (min_slot_ < 0) {
    return;
  }
  const TimeNs earliest = contenders_[static_cast<std::size_t>(min_slot_)].fire;
  CSMABW_REQUIRE(earliest >= sim_.now(), "fire time in the past");
  pending_fire_ = sim_.schedule_member_at<&Medium::fire>(earliest, *this);
}

void Medium::reschedule_all() {
  min_slot_ = -1;
  for (std::size_t i = 0; i < stations_.size(); ++i) {
    Contender& c = contenders_[i];
    const DcfStation& s = *stations_[i];
    c.active = s.in_contention();
    if (c.active) {
      c.fire = fire_time(s);
      if (min_slot_ < 0 ||
          c.fire < contenders_[static_cast<std::size_t>(min_slot_)].fire) {
        min_slot_ = static_cast<int>(i);
      }
    }
  }
  sync_pending_fire();
}

void Medium::fire() {
  const TimeNs now = sim_.now();
  CSMABW_REQUIRE(!busy_, "fire while busy");

  // Partition the stations whose countdown completes exactly now (the
  // cache is authoritative while the medium is idle: every contention
  // change while idle refreshed it).
  std::vector<DcfStation*> winners;
  std::vector<DcfStation*> post_backoff_done;
  for (std::size_t i = 0; i < stations_.size(); ++i) {
    const Contender& c = contenders_[i];
    if (!c.active || c.fire != now) {
      continue;
    }
    DcfStation* s = stations_[i];
    if (s->has_frame()) {
      winners.push_back(s);
    } else {
      post_backoff_done.push_back(s);
    }
  }
  for (DcfStation* s : post_backoff_done) {
    s->finish_post_backoff();
  }
  if (winners.empty()) {
    reschedule_all();
    return;
  }

  // Freeze every other contender before the medium state changes: the
  // number of whole slots they observed is measured against the idle
  // period that is ending now.
  for (DcfStation* s : stations_) {
    if (s->in_contention() &&
        std::find(winners.begin(), winners.end(), s) == winners.end()) {
      s->medium_seized(now, idle_start_);
    }
  }

  begin_occupation(std::move(winners));
}

void Medium::begin_occupation(std::vector<DcfStation*> transmitters) {
  const TimeNs now = sim_.now();
  busy_ = true;
  transmitters_ = std::move(transmitters);
  occupation_start_ = now;
  occupation_success_ = transmitters_.size() == 1;

  // The frame a station puts on the air first: the data frame itself, or
  // an RTS when the payload exceeds the RTS threshold.  Collisions
  // involve (and cost) only these first frames.
  tx_data_ends_.clear();
  occupation_data_end_ = now;
  for (DcfStation* s : transmitters_) {
    const bool rts = phy_.uses_rts(s->head_frame_bytes());
    const TimeNs first_dur =
        rts ? phy_.rts_tx_time() : s->head_frame_airtime();
    tx_data_ends_.push_back(now + first_dur);
    occupation_data_end_ = std::max(occupation_data_end_, now + first_dur);
    s->tx_started(now);
  }

  if (occupation_success_) {
    DcfStation* s = transmitters_.front();
    if (phy_.uses_rts(s->head_frame_bytes())) {
      // RTS + SIFS + CTS + SIFS + DATA + SIFS + ACK as one exchange.
      occupation_data_end_ = now + phy_.rts_tx_time() + phy_.sifs +
                             phy_.cts_tx_time() + phy_.sifs +
                             s->head_frame_airtime();
    }
    occupation_end_ = occupation_data_end_ + phy_.sifs + phy_.ack_tx_time();
    ++stats_.successes;
  } else {
    occupation_end_ = occupation_data_end_;
    ++stats_.collisions;
    stats_.collided_frames += transmitters_.size();
    if (trace::TraceSink* sink = sim_.trace()) {
      trace::TraceEvent e;
      e.time = now;
      e.kind = trace::EventKind::kCollision;
      e.station = trace::kChannelStation;
      e.aux = occupation_end_;
      e.value = static_cast<std::int32_t>(transmitters_.size());
      sink->on_event(e);
    }
  }
  stats_.busy_time += occupation_end_ - occupation_start_;

  pending_end_ =
      sim_.schedule_member_at<&Medium::end_occupation>(occupation_end_, *this);
}

void Medium::end_occupation() {
  const TimeNs now = sim_.now();
  CSMABW_REQUIRE(busy_, "occupation end while idle");
  busy_ = false;
  idle_start_ = now;

  const bool collision = !occupation_success_;
  // Outcome for the transmitters first: they update their own contention
  // state (retry backoff after their CTS/ACK timeout, or next-packet /
  // post-backoff after success).
  for (std::size_t i = 0; i < transmitters_.size(); ++i) {
    DcfStation* s = transmitters_[i];
    if (occupation_success_) {
      s->tx_succeeded(occupation_data_end_, now);
    } else {
      const TimeNs timeout = phy_.uses_rts(s->head_frame_bytes())
                                 ? phy_.cts_timeout()
                                 : phy_.ack_timeout();
      s->tx_collided(tx_data_ends_[i] + timeout);
    }
  }
  // Bystanders defer DIFS after a success, EIFS after a collision.
  for (DcfStation* s : stations_) {
    if (std::find(transmitters_.begin(), transmitters_.end(), s) ==
        transmitters_.end()) {
      s->occupation_observed(collision);
    }
  }
  transmitters_.clear();
  tx_data_ends_.clear();
  // The idle origin moved for every station: full recompute.
  reschedule_all();
}

}  // namespace csmabw::mac
