#pragma once

#include <cstdint>
#include <vector>

#include "mac/phy.hpp"
#include "sim/simulator.hpp"
#include "trace/event.hpp"
#include "util/time.hpp"

namespace csmabw::mac {

class DcfStation;

/// Statistics of the shared wireless medium.
struct MediumStats {
  std::uint64_t successes = 0;
  std::uint64_t collisions = 0;        ///< collision events (>= 2 frames)
  std::uint64_t collided_frames = 0;   ///< frames involved in collisions
  TimeNs busy_time;                    ///< cumulative occupation time
};

/// Single-collision-domain CSMA/CA medium.
///
/// All stations hear each other perfectly (no hidden terminals, no
/// capture, no channel errors — matching the paper's NS2 setup).  The
/// medium owns the contention clock: it computes, lazily, the next
/// instant any contending station's DIFS/EIFS deference plus backoff
/// countdown completes, fires the transmission(s) scheduled for that
/// instant and detects collisions as exact slot-boundary coincidences
/// (times are integer nanoseconds, so coincidence is exact equality).
///
/// Fire time of a contending station s during an idle period starting at
/// `idle_since()`:
///
///   fire(s) = max(idle_since, s.contend_from) + s.defer + slot * s.backoff
///
/// where `contend_from` is the earliest instant s may begin observing the
/// medium (e.g. the end of its ACK timeout after a collision) and `defer`
/// is DIFS or EIFS.
class Medium {
 public:
  Medium(sim::Simulator& sim, const PhyParams& phy);

  Medium(const Medium&) = delete;
  Medium& operator=(const Medium&) = delete;

  /// Registers a station.  The station must outlive the medium.
  void register_station(DcfStation* s);

  /// A station's contention state changed; recompute the pending fire.
  void update_contention();

  [[nodiscard]] bool is_busy() const { return busy_; }
  /// Start of the current idle period.  Meaningful only when !is_busy().
  [[nodiscard]] TimeNs idle_since() const { return idle_start_; }
  /// True when the medium has been idle for at least DIFS at `now`.
  [[nodiscard]] bool idle_for_difs(TimeNs now) const;

  [[nodiscard]] const PhyParams& phy() const { return phy_; }
  [[nodiscard]] const MediumStats& stats() const { return stats_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

 private:
  [[nodiscard]] TimeNs fire_time(const DcfStation& s) const;
  void reschedule();
  void fire();
  void begin_occupation(std::vector<DcfStation*> transmitters);
  void end_occupation();

  sim::Simulator& sim_;
  PhyParams phy_;
  std::vector<DcfStation*> stations_;

  bool busy_ = false;
  TimeNs idle_start_ = TimeNs::zero();
  sim::EventHandle pending_fire_;
  sim::EventHandle pending_end_;

  // Current occupation.
  std::vector<DcfStation*> transmitters_;
  std::vector<TimeNs> tx_data_ends_;
  TimeNs occupation_start_;
  TimeNs occupation_data_end_;
  TimeNs occupation_end_;
  bool occupation_success_ = false;

  MediumStats stats_;
};

}  // namespace csmabw::mac
