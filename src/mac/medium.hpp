#pragma once

#include <cstdint>
#include <vector>

#include "mac/phy.hpp"
#include "sim/simulator.hpp"
#include "trace/event.hpp"
#include "util/time.hpp"

namespace csmabw::obs {
class Registry;
}  // namespace csmabw::obs

namespace csmabw::mac {

class DcfStation;

/// Statistics of the shared wireless medium.
struct MediumStats {
  std::uint64_t successes = 0;
  std::uint64_t collisions = 0;        ///< collision events (>= 2 frames)
  std::uint64_t collided_frames = 0;   ///< frames involved in collisions
  TimeNs busy_time;                    ///< cumulative occupation time
};

/// Station-facing contract of a CSMA/CA medium.
///
/// A medium owns the contention clock: stations report contention-state
/// changes through update_contention() and are driven back through the
/// DcfStation callbacks (tx_started, medium_seized, tx_succeeded,
/// tx_collided, occupation_observed, finish_post_backoff).  Carrier
/// sense is a per-station question — sensed_busy(s) asks whether *s*
/// currently hears an ongoing transmission, which in a conflict-graph
/// medium (topo::ConflictGraphMedium) depends on who its sensing
/// neighbors are.  The classic single-collision-domain Medium answers
/// it globally.
class MediumBase {
 public:
  MediumBase(sim::Simulator& sim, const PhyParams& phy)
      : sim_(sim), phy_(phy) {
    phy_.validate();
  }
  virtual ~MediumBase() = default;

  MediumBase(const MediumBase&) = delete;
  MediumBase& operator=(const MediumBase&) = delete;

  /// Registers a station; returns its slot in the medium's contender
  /// cache (stations pass it back via DcfStation::medium_slot()).  The
  /// station must outlive the medium.
  virtual int register_station(DcfStation* s) = 0;

  /// `s`'s contention state changed; refresh its cached fire time and
  /// the pending fire event.
  virtual void update_contention(DcfStation& s) = 0;

  /// Whether `s` currently senses the channel busy (an ongoing
  /// transmission it can hear).
  [[nodiscard]] virtual bool sensed_busy(const DcfStation& s) const = 0;

  /// Binds the medium's hot-path counters to `reg` (null-tap handles:
  /// unbound handles cost a single branch; see obs/metrics.hpp).  The
  /// default is a no-op — media without instrumentation ignore it.
  /// Call before the simulation starts; `reg` may be nullptr.
  virtual void bind_metrics(obs::Registry* reg) { (void)reg; }

  [[nodiscard]] const PhyParams& phy() const { return phy_; }
  [[nodiscard]] const MediumStats& stats() const { return stats_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

 protected:
  sim::Simulator& sim_;
  PhyParams phy_;
  MediumStats stats_;
};

/// Single-collision-domain CSMA/CA medium.
///
/// All stations hear each other perfectly (no hidden terminals, no
/// capture, no channel errors — matching the paper's NS2 setup).  The
/// medium owns the contention clock: it computes, lazily, the next
/// instant any contending station's DIFS/EIFS deference plus backoff
/// countdown completes, fires the transmission(s) scheduled for that
/// instant and detects collisions as exact slot-boundary coincidences
/// (times are integer nanoseconds, so coincidence is exact equality).
///
/// Fire time of a contending station s during an idle period starting at
/// `idle_since()`:
///
///   fire(s) = max(idle_since, s.contend_from) + s.defer + slot * s.backoff
///
/// where `contend_from` is the earliest instant s may begin observing the
/// medium (e.g. the end of its ACK timeout after a collision) and `defer`
/// is DIFS or EIFS.
///
/// Rescheduling is incremental: the medium caches each station's fire
/// time plus the index of the cached minimum, so a single station's
/// contention change is O(1) (amortized — a full rescan happens only
/// when the minimum's owner changes or an occupation ends and the idle
/// origin moves for everyone).
class Medium : public MediumBase {
 public:
  Medium(sim::Simulator& sim, const PhyParams& phy);

  int register_station(DcfStation* s) override;
  void update_contention(DcfStation& s) override;
  /// One collision domain: every station hears every transmission.
  [[nodiscard]] bool sensed_busy(const DcfStation&) const override {
    return busy_;
  }

  [[nodiscard]] bool is_busy() const { return busy_; }
  /// Start of the current idle period.  Meaningful only when !is_busy().
  [[nodiscard]] TimeNs idle_since() const { return idle_start_; }
  /// True when the medium has been idle for at least DIFS at `now`.
  [[nodiscard]] bool idle_for_difs(TimeNs now) const;

 private:
  /// Cached contention state of one registered station.
  struct Contender {
    TimeNs fire;          ///< valid only while `active`
    bool active = false;  ///< station is in contention
  };

  [[nodiscard]] TimeNs fire_time(const DcfStation& s) const;
  void refresh_contender(int i, const DcfStation& s);
  void rescan_min();
  /// Re-arms the pending fire event at the cached minimum (cancel +
  /// fresh schedule, so the event-sequence numbering is identical to a
  /// full recompute — determinism depends on it).
  void sync_pending_fire();
  /// Recomputes every station's fire time (used when the idle origin
  /// moves for all of them at once).
  void reschedule_all();
  void fire();
  void begin_occupation(std::vector<DcfStation*> transmitters);
  void end_occupation();

  std::vector<DcfStation*> stations_;
  std::vector<Contender> contenders_;
  int min_slot_ = -1;  ///< index of the cached earliest fire, -1 = none

  bool busy_ = false;
  TimeNs idle_start_ = TimeNs::zero();
  sim::EventHandle pending_fire_;
  sim::EventHandle pending_end_;

  // Current occupation.
  std::vector<DcfStation*> transmitters_;
  std::vector<TimeNs> tx_data_ends_;
  TimeNs occupation_start_;
  TimeNs occupation_data_end_;
  TimeNs occupation_end_;
  bool occupation_success_ = false;
};

}  // namespace csmabw::mac
