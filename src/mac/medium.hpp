#pragma once

#include <cstdint>
#include <vector>

#include "mac/phy.hpp"
#include "sim/simulator.hpp"
#include "trace/event.hpp"
#include "util/time.hpp"

namespace csmabw::mac {

class DcfStation;

/// Statistics of the shared wireless medium.
struct MediumStats {
  std::uint64_t successes = 0;
  std::uint64_t collisions = 0;        ///< collision events (>= 2 frames)
  std::uint64_t collided_frames = 0;   ///< frames involved in collisions
  TimeNs busy_time;                    ///< cumulative occupation time
};

/// Single-collision-domain CSMA/CA medium.
///
/// All stations hear each other perfectly (no hidden terminals, no
/// capture, no channel errors — matching the paper's NS2 setup).  The
/// medium owns the contention clock: it computes, lazily, the next
/// instant any contending station's DIFS/EIFS deference plus backoff
/// countdown completes, fires the transmission(s) scheduled for that
/// instant and detects collisions as exact slot-boundary coincidences
/// (times are integer nanoseconds, so coincidence is exact equality).
///
/// Fire time of a contending station s during an idle period starting at
/// `idle_since()`:
///
///   fire(s) = max(idle_since, s.contend_from) + s.defer + slot * s.backoff
///
/// where `contend_from` is the earliest instant s may begin observing the
/// medium (e.g. the end of its ACK timeout after a collision) and `defer`
/// is DIFS or EIFS.
///
/// Rescheduling is incremental: the medium caches each station's fire
/// time plus the index of the cached minimum, so a single station's
/// contention change is O(1) (amortized — a full rescan happens only
/// when the minimum's owner changes or an occupation ends and the idle
/// origin moves for everyone).
class Medium {
 public:
  Medium(sim::Simulator& sim, const PhyParams& phy);

  Medium(const Medium&) = delete;
  Medium& operator=(const Medium&) = delete;

  /// Registers a station; returns its slot in the medium's contender
  /// cache (stations pass it back via DcfStation::medium_slot()).  The
  /// station must outlive the medium.
  int register_station(DcfStation* s);

  /// `s`'s contention state changed; refresh its cached fire time and
  /// the pending fire event.
  void update_contention(DcfStation& s);

  [[nodiscard]] bool is_busy() const { return busy_; }
  /// Start of the current idle period.  Meaningful only when !is_busy().
  [[nodiscard]] TimeNs idle_since() const { return idle_start_; }
  /// True when the medium has been idle for at least DIFS at `now`.
  [[nodiscard]] bool idle_for_difs(TimeNs now) const;

  [[nodiscard]] const PhyParams& phy() const { return phy_; }
  [[nodiscard]] const MediumStats& stats() const { return stats_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

 private:
  /// Cached contention state of one registered station.
  struct Contender {
    TimeNs fire;          ///< valid only while `active`
    bool active = false;  ///< station is in contention
  };

  [[nodiscard]] TimeNs fire_time(const DcfStation& s) const;
  void refresh_contender(int i, const DcfStation& s);
  void rescan_min();
  /// Re-arms the pending fire event at the cached minimum (cancel +
  /// fresh schedule, so the event-sequence numbering is identical to a
  /// full recompute — determinism depends on it).
  void sync_pending_fire();
  /// Recomputes every station's fire time (used when the idle origin
  /// moves for all of them at once).
  void reschedule_all();
  void fire();
  void begin_occupation(std::vector<DcfStation*> transmitters);
  void end_occupation();

  sim::Simulator& sim_;
  PhyParams phy_;
  std::vector<DcfStation*> stations_;
  std::vector<Contender> contenders_;
  int min_slot_ = -1;  ///< index of the cached earliest fire, -1 = none

  bool busy_ = false;
  TimeNs idle_start_ = TimeNs::zero();
  sim::EventHandle pending_fire_;
  sim::EventHandle pending_end_;

  // Current occupation.
  std::vector<DcfStation*> transmitters_;
  std::vector<TimeNs> tx_data_ends_;
  TimeNs occupation_start_;
  TimeNs occupation_data_end_;
  TimeNs occupation_end_;
  bool occupation_success_ = false;

  MediumStats stats_;
};

}  // namespace csmabw::mac
