#pragma once

#include <cstdint>

#include "util/time.hpp"

namespace csmabw::mac {

/// A network-layer packet travelling through a DCF station.
///
/// The station fills in the life-cycle timestamps; the paper's access
/// delay is `depart_time - head_time` (time at the head of the FIFO
/// transmission queue until the data frame is completely transmitted,
/// Section 3.1).
struct Packet {
  /// Unique id assigned by the station at enqueue.
  std::uint64_t id = 0;
  /// Flow the packet belongs to (probe train, cross-traffic, ...).
  int flow = 0;
  /// Sequence number within the flow (probe packet index, 0-based).
  int seq = 0;
  /// Network-layer size (the paper's L); MAC overhead is added by the PHY
  /// model.
  int size_bytes = 0;

  TimeNs enqueue_time;       ///< arrival at the transmission queue (a_i)
  TimeNs head_time;          ///< reached the head of the queue
  TimeNs first_tx_time;      ///< first transmission attempt started
  TimeNs depart_time;        ///< data frame completely transmitted (d_i)
  int retries = 0;           ///< number of collisions suffered
  bool dropped = false;      ///< retry limit exceeded

  /// Access delay mu_i = d_i - head time, in seconds.
  [[nodiscard]] double access_delay_s() const {
    return (depart_time - head_time).to_seconds();
  }
  /// Queueing + access delay Z_i = d_i - a_i, in seconds (Eq. 15).
  [[nodiscard]] double sojourn_s() const {
    return (depart_time - enqueue_time).to_seconds();
  }
};

}  // namespace csmabw::mac
