#include "mac/phy.hpp"

#include <cmath>

namespace csmabw::mac {

namespace {

TimeNs airtime(int bytes, double rate_bps) {
  const double seconds = bytes * 8.0 / rate_bps;
  return TimeNs::from_seconds(seconds);
}

}  // namespace

TimeNs PhyParams::data_tx_time(int payload_bytes) const {
  return data_tx_time_at(payload_bytes, data_rate_bps);
}

TimeNs PhyParams::data_tx_time_at(int payload_bytes, double rate_bps) const {
  CSMABW_REQUIRE(payload_bytes > 0, "payload must be positive");
  CSMABW_REQUIRE(rate_bps > 0.0, "rate must be positive");
  return phy_header + airtime(mac_header_bytes + payload_bytes, rate_bps);
}

TimeNs PhyParams::ack_tx_time() const {
  return phy_header + airtime(ack_bytes, basic_rate_bps);
}

TimeNs PhyParams::rts_tx_time() const {
  return phy_header + airtime(rts_bytes, basic_rate_bps);
}

TimeNs PhyParams::cts_tx_time() const {
  return phy_header + airtime(cts_bytes, basic_rate_bps);
}

TimeNs PhyParams::mean_packet_service_time(int payload_bytes) const {
  const TimeNs mean_backoff = slot_time * cw_min / 2;
  return difs() + mean_backoff + data_tx_time(payload_bytes) + sifs +
         ack_tx_time();
}

BitRate PhyParams::saturation_rate(int payload_bytes) const {
  return BitRate::bps(payload_bytes * 8.0 /
                      mean_packet_service_time(payload_bytes).to_seconds());
}

double PhyParams::packet_rate_for_load(double erlangs,
                                       int payload_bytes) const {
  CSMABW_REQUIRE(erlangs >= 0.0, "offered load must be non-negative");
  return erlangs / mean_packet_service_time(payload_bytes).to_seconds();
}

BitRate PhyParams::rate_for_load(double erlangs, int payload_bytes) const {
  return BitRate::bps(packet_rate_for_load(erlangs, payload_bytes) *
                      payload_bytes * 8.0);
}

void PhyParams::validate() const {
  CSMABW_REQUIRE(slot_time > TimeNs::zero(), "slot time must be positive");
  CSMABW_REQUIRE(sifs > TimeNs::zero(), "SIFS must be positive");
  CSMABW_REQUIRE(phy_header >= TimeNs::zero(), "PLCP duration negative");
  CSMABW_REQUIRE(data_rate_bps > 0.0, "data rate must be positive");
  CSMABW_REQUIRE(basic_rate_bps > 0.0, "basic rate must be positive");
  CSMABW_REQUIRE(cw_min >= 1, "CWmin must be >= 1");
  CSMABW_REQUIRE(cw_max >= cw_min, "CWmax must be >= CWmin");
  CSMABW_REQUIRE(retry_limit >= 0, "retry limit must be >= 0");
  CSMABW_REQUIRE(mac_header_bytes >= 0, "MAC overhead negative");
  CSMABW_REQUIRE(ack_bytes > 0, "ACK size must be positive");
}

PhyParams PhyParams::dot11b_short() {
  PhyParams p;
  p.phy_header = TimeNs::us(96);
  p.basic_rate_bps = 2e6;
  return p;
}

PhyParams PhyParams::dot11b_long() {
  PhyParams p;
  p.phy_header = TimeNs::us(192);
  p.basic_rate_bps = 1e6;
  return p;
}

PhyParams PhyParams::dot11g() {
  PhyParams p;
  p.slot_time = TimeNs::us(9);
  p.sifs = TimeNs::us(10);
  p.phy_header = TimeNs::us(20);
  p.data_rate_bps = 54e6;
  p.basic_rate_bps = 24e6;
  p.cw_min = 15;
  p.cw_max = 1023;
  return p;
}

}  // namespace csmabw::mac
