#pragma once

#include "util/require.hpp"
#include "util/time.hpp"
#include "util/units.hpp"

namespace csmabw::mac {

/// PHY/MAC timing parameters of an IEEE 802.11 DCF link.
///
/// The defaults mirror the paper's validation setup: 802.11b at 11 Mb/s,
/// no RTS/CTS, error-free channel, infinite queues (Appendix A).  All
/// frame durations are exact integer nanoseconds so that slot-boundary
/// coincidences (collisions) are detected exactly.
struct PhyParams {
  TimeNs slot_time = TimeNs::us(20);
  TimeNs sifs = TimeNs::us(10);
  /// PLCP preamble + header duration (192 us long, 96 us short preamble).
  TimeNs phy_header = TimeNs::us(96);
  /// Data rate for MAC payloads, bits per second.
  double data_rate_bps = 11e6;
  /// Control rate for ACK frames, bits per second.
  double basic_rate_bps = 2e6;
  int cw_min = 31;
  int cw_max = 1023;
  /// Maximum retransmissions of a frame before it is dropped.
  int retry_limit = 7;
  /// MAC framing overhead added to every network-layer packet
  /// (24-byte header + 4-byte FCS).
  int mac_header_bytes = 28;
  int ack_bytes = 14;
  int rts_bytes = 20;
  int cts_bytes = 14;
  /// Frames whose network-layer size exceeds this use RTS/CTS; negative
  /// disables the exchange entirely (the paper's setting).
  int rts_threshold_bytes = -1;

  // --- behavioural switches (ablations, see DESIGN.md section 5) ---
  /// A packet arriving at an idle station may be sent after DIFS without
  /// a random backoff (NS2 behaviour).  This is the primary mechanism
  /// behind the transient "acceleration" of the first probe packets.
  bool immediate_access = true;
  /// Mandatory backoff after every successful transmission, even with an
  /// empty queue (standard post-backoff).
  bool post_backoff = true;
  /// Stations overhearing a collision defer EIFS instead of DIFS.
  bool use_eifs = true;

  [[nodiscard]] TimeNs difs() const { return sifs + 2 * slot_time; }

  /// Airtime of a data frame carrying `payload_bytes` of network-layer
  /// payload (PLCP header + MAC frame at the data rate).
  [[nodiscard]] TimeNs data_tx_time(int payload_bytes) const;

  /// Airtime of a data frame at an explicit PHY rate — stations may
  /// transmit below the cell's nominal rate (see
  /// DcfStation::set_data_rate_bps and the rate-anomaly bench).
  [[nodiscard]] TimeNs data_tx_time_at(int payload_bytes,
                                       double rate_bps) const;

  /// Airtime of an ACK (PLCP header + ACK at the basic rate).
  [[nodiscard]] TimeNs ack_tx_time() const;

  /// Airtime of RTS / CTS control frames (basic rate).
  [[nodiscard]] TimeNs rts_tx_time() const;
  [[nodiscard]] TimeNs cts_tx_time() const;

  /// Whether a frame of `payload_bytes` uses the RTS/CTS exchange.
  [[nodiscard]] bool uses_rts(int payload_bytes) const {
    return rts_threshold_bytes >= 0 && payload_bytes > rts_threshold_bytes;
  }

  /// How long an RTS sender waits for a missing CTS.
  [[nodiscard]] TimeNs cts_timeout() const {
    return sifs + cts_tx_time() + slot_time;
  }

  /// EIFS = SIFS + T_ack + DIFS (deference after an erroneous frame).
  [[nodiscard]] TimeNs eifs() const { return sifs + ack_tx_time() + difs(); }

  /// How long a transmitter waits for a missing ACK before rescheduling.
  [[nodiscard]] TimeNs ack_timeout() const {
    return sifs + ack_tx_time() + slot_time;
  }

  /// Mean channel time consumed per packet by a station transmitting
  /// alone: DIFS + E[CWmin backoff] + data + SIFS + ACK.  This is the
  /// service time used to express offered loads in Erlangs (Fig 10).
  [[nodiscard]] TimeNs mean_packet_service_time(int payload_bytes) const;

  /// Network-layer saturation rate of a lone station sending
  /// `payload_bytes` packets: 8 * payload / mean_packet_service_time.
  /// This is the link "capacity" C in the paper's sense.
  [[nodiscard]] BitRate saturation_rate(int payload_bytes) const;

  /// Packet rate (packets/s) that offers `erlangs` of load with
  /// `payload_bytes` packets.
  [[nodiscard]] double packet_rate_for_load(double erlangs,
                                            int payload_bytes) const;
  /// Network-layer bit rate offering `erlangs` of load.
  [[nodiscard]] BitRate rate_for_load(double erlangs, int payload_bytes) const;

  /// Throws PreconditionError if the parameter set is inconsistent.
  void validate() const;

  /// 802.11b, 11 Mb/s, short PLCP preamble, ACKs at 2 Mb/s.  The closest
  /// preset to the paper's testbed (C ~= 6.9 Mb/s for 1500-byte packets;
  /// the paper measured 6.5).
  [[nodiscard]] static PhyParams dot11b_short();
  /// 802.11b, 11 Mb/s, long PLCP preamble, ACKs at 1 Mb/s (NS2 default).
  [[nodiscard]] static PhyParams dot11b_long();
  /// 802.11g, 54 Mb/s (ERP-OFDM, 9 us slots) — used by extension tests.
  [[nodiscard]] static PhyParams dot11g();
};

}  // namespace csmabw::mac
