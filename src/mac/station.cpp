#include "mac/station.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace csmabw::mac {

DcfStation::DcfStation(sim::Simulator& sim, MediumBase& medium, int id,
                       stats::Rng rng)
    : sim_(sim),
      medium_(medium),
      id_(id),
      rng_(rng),
      phy_(medium.phy()),
      data_rate_bps_(medium.phy().data_rate_bps),
      cw_(medium.phy().cw_min) {
  medium_slot_ = medium_.register_station(this);
}

void DcfStation::set_delivery_callback(DeliveryCallback cb) {
  delivery_cb_ = std::move(cb);
}

void DcfStation::set_drop_callback(DropCallback cb) {
  drop_cb_ = std::move(cb);
}

void DcfStation::emit(trace::EventKind kind, const Packet* p,
                      std::int32_t value, TimeNs aux) {
  trace::TraceSink* sink = sim_.trace();
  if (sink == nullptr) {
    return;
  }
  trace::TraceEvent e;
  e.time = sim_.now();
  e.kind = kind;
  e.station = static_cast<std::uint16_t>(id_);
  if (p != nullptr) {
    e.packet = p->id;
    e.flow = p->flow;
    e.seq = p->seq;
  }
  e.aux = aux;
  e.value = value;
  sink->on_event(e);
}

int DcfStation::head_frame_bytes() const {
  CSMABW_REQUIRE(!queue_.empty(), "no frame at the head of the queue");
  return queue_.front().size_bytes;
}

TimeNs DcfStation::head_frame_airtime() const {
  return phy_.data_tx_time_at(head_frame_bytes(), data_rate_bps_);
}

void DcfStation::set_data_rate_bps(double rate_bps) {
  CSMABW_REQUIRE(rate_bps > 0.0, "data rate must be positive");
  data_rate_bps_ = rate_bps;
}

void DcfStation::enqueue(Packet p) {
  const TimeNs now = sim_.now();
  CSMABW_REQUIRE(p.size_bytes > 0, "packet size must be positive");
  p.id = next_packet_id_++;
  p.enqueue_time = now;
  const bool was_empty = queue_.empty();
  queue_.push_back(p);
  ++stats_.enqueued;
  emit(trace::EventKind::kEnqueue, &queue_.back(), p.size_bytes, now);
  emit(trace::EventKind::kQueueDepth, nullptr,
       static_cast<std::int32_t>(queue_.size()), now);
  if (was_empty) {
    // The packet is at the head immediately: the previous head (if any)
    // was popped when its service completed.
    queue_.back().head_time = now;
    if (state_ == State::kIdle) {
      join_contention(now, /*allow_immediate=*/true);
    }
    // If a post-backoff countdown is running (state kContending with an
    // until-now empty queue), the packet simply rides the existing
    // countdown — standard behaviour.
  }
}

void DcfStation::join_contention(TimeNs from, bool allow_immediate) {
  state_ = State::kContending;
  contend_from_ = from;
  defer_ = phy_.difs();
  if (allow_immediate && phy_.immediate_access && !medium_.sensed_busy(*this)) {
    // Idle medium: transmit after DIFS without a random backoff.
    backoff_slots_ = 0;
    awaiting_immediate_ = true;
  } else {
    backoff_slots_ = rng_.uniform_int(0, cw_);
    awaiting_immediate_ = false;
  }
  emit(trace::EventKind::kBackoffStart, nullptr, backoff_slots_,
       contend_from_);
  medium_.update_contention(*this);
}

void DcfStation::tx_started(TimeNs now) {
  CSMABW_REQUIRE(state_ == State::kContending, "tx grant while not contending");
  CSMABW_REQUIRE(!queue_.empty(), "tx grant without a frame");
  state_ = State::kTransmitting;
  awaiting_immediate_ = false;
  if (retries_ == 0) {
    queue_.front().first_tx_time = now;
  }
  ++stats_.attempts;
  emit(trace::EventKind::kTxAttempt, &queue_.front(), retries_, now);
}

void DcfStation::finish_post_backoff() {
  CSMABW_REQUIRE(state_ == State::kContending && queue_.empty(),
                 "finish_post_backoff misuse");
  state_ = State::kIdle;
  awaiting_immediate_ = false;
}

void DcfStation::medium_seized(TimeNs busy_start, TimeNs idle_start) {
  if (state_ != State::kContending) {
    return;
  }
  const TimeNs count_start =
      std::max(idle_start, contend_from_) + defer_;
  if (busy_start > count_start) {
    const auto counted =
        static_cast<int>((busy_start - count_start) / phy_.slot_time);
    backoff_slots_ -= std::min(counted, backoff_slots_);
  }
  emit(trace::EventKind::kBackoffFreeze, nullptr, backoff_slots_,
       busy_start);
  if (awaiting_immediate_) {
    // Lost the idle window before the DIFS-only access completed: fall
    // back to a regular random backoff.
    backoff_slots_ = rng_.uniform_int(0, cw_);
    awaiting_immediate_ = false;
    emit(trace::EventKind::kBackoffStart, nullptr, backoff_slots_,
         contend_from_);
  }
}

void DcfStation::tx_succeeded(TimeNs data_end, TimeNs ack_end) {
  CSMABW_REQUIRE(state_ == State::kTransmitting, "success while not transmitting");
  Packet pkt = queue_.front();
  queue_.pop_front();
  pkt.depart_time = data_end;
  pkt.retries = retries_;
  ++stats_.delivered;
  stats_.delivered_payload_bits += static_cast<std::int64_t>(pkt.size_bytes) * 8;
  emit(trace::EventKind::kSuccess, &pkt, pkt.retries, data_end);
  emit(trace::EventKind::kQueueDepth, nullptr,
       static_cast<std::int32_t>(queue_.size()), ack_end);

  cw_ = phy_.cw_min;
  retries_ = 0;
  if (!queue_.empty()) {
    // The successor reaches the head when the data frame ends — unless
    // it arrived later, during the SIFS + ACK exchange.
    queue_.front().head_time =
        std::max(data_end, queue_.front().enqueue_time);
  }
  if (!queue_.empty() || phy_.post_backoff) {
    // Backoff for the next frame, or standard post-backoff with an empty
    // queue.  Never immediate: a station that just transmitted must back
    // off.
    state_ = State::kContending;
    contend_from_ = ack_end;
    defer_ = phy_.difs();
    backoff_slots_ = rng_.uniform_int(0, cw_);
    awaiting_immediate_ = false;
    emit(trace::EventKind::kBackoffStart, nullptr, backoff_slots_,
         contend_from_);
  } else {
    state_ = State::kIdle;
  }
  if (delivery_cb_) {
    delivery_cb_(pkt);
  }
}

void DcfStation::tx_collided(TimeNs retry_from) {
  CSMABW_REQUIRE(state_ == State::kTransmitting, "collision while not transmitting");
  state_ = State::kContending;
  ++retries_;
  if (retries_ > phy_.retry_limit) {
    drop_head(retry_from);
    return;
  }
  cw_ = std::min(2 * (cw_ + 1) - 1, phy_.cw_max);
  contend_from_ = retry_from;
  defer_ = phy_.difs();
  backoff_slots_ = rng_.uniform_int(0, cw_);
  awaiting_immediate_ = false;
  emit(trace::EventKind::kBackoffStart, nullptr, backoff_slots_,
       contend_from_);
}

void DcfStation::drop_head(TimeNs when) {
  Packet pkt = queue_.front();
  queue_.pop_front();
  pkt.dropped = true;
  pkt.depart_time = when;
  pkt.retries = retries_;
  ++stats_.dropped;
  emit(trace::EventKind::kDrop, &pkt, pkt.retries, when);
  emit(trace::EventKind::kQueueDepth, nullptr,
       static_cast<std::int32_t>(queue_.size()), sim_.now());

  cw_ = phy_.cw_min;
  retries_ = 0;
  if (!queue_.empty()) {
    queue_.front().head_time =
        std::max(when, queue_.front().enqueue_time);
  }
  if (!queue_.empty() || phy_.post_backoff) {
    state_ = State::kContending;
    contend_from_ = when;
    defer_ = phy_.difs();
    backoff_slots_ = rng_.uniform_int(0, cw_);
    awaiting_immediate_ = false;
    emit(trace::EventKind::kBackoffStart, nullptr, backoff_slots_,
         contend_from_);
  } else {
    state_ = State::kIdle;
  }
  if (drop_cb_) {
    drop_cb_(pkt);
  }
}

void DcfStation::occupation_observed(bool collision) {
  if (state_ != State::kContending) {
    return;
  }
  defer_ = (collision && phy_.use_eifs) ? phy_.eifs() : phy_.difs();
  emit(trace::EventKind::kBackoffResume, nullptr, backoff_slots_,
       sim_.now() + defer_);
}

}  // namespace csmabw::mac
