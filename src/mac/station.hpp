#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "mac/medium.hpp"
#include "mac/packet.hpp"
#include "mac/phy.hpp"
#include "sim/simulator.hpp"
#include "stats/rng.hpp"
#include "trace/event.hpp"

namespace csmabw::mac {

/// Per-station counters.
struct StationStats {
  std::uint64_t enqueued = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t attempts = 0;  ///< transmission attempts (incl. retries)
  std::int64_t delivered_payload_bits = 0;
};

/// An IEEE 802.11 DCF transmitter with an infinite FIFO queue.
///
/// Implements the paper's model of Fig 3: packets from possibly several
/// flows share one FIFO transmission queue; the head packet contends for
/// the channel under CSMA/CA (binary exponential backoff, DIFS/EIFS
/// deference, post-backoff, retransmission on collision).  Every packet
/// is timestamped at enqueue, head-of-queue and departure so the access
/// delay process {mu_i} and the queueing process {Z_i} can be observed
/// directly.
class DcfStation {
 public:
  /// Called on successful delivery, after the packet's timestamps are
  /// final.  Invoked at the end of the ACK exchange.
  using DeliveryCallback = std::function<void(const Packet&)>;
  /// Called when a packet exhausts its retry limit.
  using DropCallback = std::function<void(const Packet&)>;

  DcfStation(sim::Simulator& sim, MediumBase& medium, int id, stats::Rng rng);

  DcfStation(const DcfStation&) = delete;
  DcfStation& operator=(const DcfStation&) = delete;

  /// Enqueues a packet at the current simulation time.  `flow`, `seq` and
  /// `size_bytes` must be set by the caller; timestamps and id are
  /// assigned here.
  void enqueue(Packet p);

  void set_delivery_callback(DeliveryCallback cb);
  void set_drop_callback(DropCallback cb);

  [[nodiscard]] int id() const { return id_; }
  /// Packets in the queue, including the one in service.
  [[nodiscard]] std::size_t queue_length() const { return queue_.size(); }
  [[nodiscard]] const StationStats& stats() const { return stats_; }
  /// Current contention window (diagnostics).
  [[nodiscard]] int contention_window() const { return cw_; }

  /// Overrides this station's PHY data rate (e.g. a far station that
  /// fell back to 2 Mb/s).  Control frames stay at the basic rate.  The
  /// 802.11 "rate anomaly" bench builds on this.
  void set_data_rate_bps(double rate_bps);
  [[nodiscard]] double data_rate_bps() const { return data_rate_bps_; }

  // --- interface used by Medium (not for application code) ---
  [[nodiscard]] bool in_contention() const {
    return state_ == State::kContending;
  }
  /// This station's slot in the medium's contender cache (assigned at
  /// registration).
  [[nodiscard]] int medium_slot() const { return medium_slot_; }
  [[nodiscard]] bool is_transmitting() const {
    return state_ == State::kTransmitting;
  }
  [[nodiscard]] TimeNs contend_from() const { return contend_from_; }
  [[nodiscard]] TimeNs defer() const { return defer_; }
  [[nodiscard]] int backoff_slots() const { return backoff_slots_; }
  [[nodiscard]] bool has_frame() const { return !queue_.empty(); }
  [[nodiscard]] int head_frame_bytes() const;
  /// Airtime of the head data frame at this station's PHY rate.
  [[nodiscard]] TimeNs head_frame_airtime() const;

  /// Medium granted the channel: transition to Transmitting.
  void tx_started(TimeNs now);
  /// Post-backoff expired with an empty queue: leave contention.
  void finish_post_backoff();
  /// Another station seized the medium at `busy_start` while this one was
  /// counting down: consume the slots observed so far and, if this
  /// station was waiting for immediate access, fall back to a random
  /// backoff.
  void medium_seized(TimeNs busy_start, TimeNs idle_start);
  /// Successful transmission: data fully sent at `data_end`, ACK received
  /// at `ack_end`.
  void tx_succeeded(TimeNs data_end, TimeNs ack_end);
  /// Collision: the expected CTS/ACK never arrived; the station may
  /// re-enter contention from `retry_from` (its own frame end plus the
  /// applicable timeout, computed by the medium).
  void tx_collided(TimeNs retry_from);
  /// Occupation the station did not participate in ended; `collision`
  /// selects EIFS vs DIFS deference for the next idle period.
  void occupation_observed(bool collision);

 private:
  enum class State { kIdle, kContending, kTransmitting };

  void join_contention(TimeNs from, bool allow_immediate);
  void drop_head(TimeNs when);
  /// Emits `kind` to the simulator's event tap (Simulator::trace());
  /// no-op (one branch) when none is installed.  Tracing is purely
  /// observational: it never consumes randomness or perturbs timing,
  /// so a traced run is bit-identical to an untraced one.  `p` supplies
  /// packet/flow/seq when non-null.
  void emit(trace::EventKind kind, const Packet* p, std::int32_t value,
            TimeNs aux);

  sim::Simulator& sim_;
  MediumBase& medium_;
  int id_;
  int medium_slot_ = -1;
  stats::Rng rng_;
  const PhyParams& phy_;
  double data_rate_bps_;

  std::deque<Packet> queue_;
  State state_ = State::kIdle;
  int cw_;
  int retries_ = 0;
  int backoff_slots_ = 0;
  TimeNs contend_from_;
  TimeNs defer_;
  /// Waiting to transmit after plain DIFS with zero backoff (immediate
  /// access); cleared by drawing a random backoff if the medium is seized
  /// first.
  bool awaiting_immediate_ = false;

  std::uint64_t next_packet_id_ = 1;
  StationStats stats_;
  DeliveryCallback delivery_cb_;
  DropCallback drop_cb_;
};

}  // namespace csmabw::mac
