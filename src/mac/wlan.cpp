#include "mac/wlan.hpp"

#include "util/require.hpp"

namespace csmabw::mac {

WlanNetwork::WlanNetwork(const PhyParams& phy, std::uint64_t seed)
    : root_rng_(seed), medium_(std::make_unique<Medium>(sim_, phy)) {}

WlanNetwork::WlanNetwork(const PhyParams& phy, std::uint64_t seed,
                         const MediumFactory& make_medium)
    : root_rng_(seed), medium_(make_medium(sim_, phy)) {
  CSMABW_REQUIRE(medium_ != nullptr, "medium factory returned null");
}

DcfStation& WlanNetwork::add_station() {
  const int id = static_cast<int>(stations_.size());
  stations_.push_back(std::make_unique<DcfStation>(
      sim_, *medium_, id, root_rng_.fork("station-" + std::to_string(id))));
  return *stations_.back();
}

}  // namespace csmabw::mac
