#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "mac/medium.hpp"
#include "mac/station.hpp"
#include "sim/simulator.hpp"
#include "stats/rng.hpp"

namespace csmabw::mac {

/// Owns a simulator, a medium and the stations of one WLAN cell — the
/// experimental scenario of the paper's Fig 2 in one object.
///
/// Station 0 is conventionally the probing/measurement station; further
/// stations carry contending cross-traffic.  Traffic sources (see
/// `traffic/`) attach to stations by reference.
class WlanNetwork {
 public:
  /// Builds the cell's medium.  The default constructor installs the
  /// classic single-collision-domain Medium; a factory injects any
  /// MediumBase implementation (e.g. topo::ConflictGraphMedium) without
  /// mac/ depending on the layer that defines it.
  using MediumFactory = std::function<std::unique_ptr<MediumBase>(
      sim::Simulator&, const PhyParams&)>;

  WlanNetwork(const PhyParams& phy, std::uint64_t seed);
  WlanNetwork(const PhyParams& phy, std::uint64_t seed,
              const MediumFactory& make_medium);

  WlanNetwork(const WlanNetwork&) = delete;
  WlanNetwork& operator=(const WlanNetwork&) = delete;

  /// Adds a station; returns a stable reference (stations are never
  /// removed).
  DcfStation& add_station();

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] MediumBase& medium() { return *medium_; }
  [[nodiscard]] const PhyParams& phy() const { return medium_->phy(); }
  [[nodiscard]] DcfStation& station(int i) { return *stations_.at(i); }
  [[nodiscard]] int num_stations() const {
    return static_cast<int>(stations_.size());
  }
  /// Derives a reproducible named random stream from the network seed
  /// (for traffic sources etc.).
  [[nodiscard]] stats::Rng rng(std::string_view name) const {
    return root_rng_.fork(name);
  }

  /// Installs (or, with nullptr, removes) an event tap on the whole
  /// cell: the sink lives on the simulator, so the medium and every
  /// station — current and future ones — emit to it.  Observational
  /// only; a traced run is bit-identical to an untraced one.
  void set_trace(trace::TraceSink* sink) { sim_.set_trace(sink); }

  /// Binds the medium's hot-path counters to a metrics registry (or
  /// unbinds them with nullptr).  Observational only, like set_trace:
  /// counters never influence the simulation.
  void set_metrics(obs::Registry* reg) { medium_->bind_metrics(reg); }

 private:
  sim::Simulator sim_;
  stats::Rng root_rng_;
  std::unique_ptr<MediumBase> medium_;
  std::vector<std::unique_ptr<DcfStation>> stations_;
};

}  // namespace csmabw::mac
