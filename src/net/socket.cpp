#include "net/socket.hpp"

#include <arpa/inet.h>
#include <poll.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <system_error>
#include <utility>

namespace csmabw::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

UdpSocket::UdpSocket() : fd_(::socket(AF_INET, SOCK_DGRAM, 0)) {
  if (fd_ < 0) {
    throw_errno("socket(AF_INET, SOCK_DGRAM)");
  }
}

UdpSocket::~UdpSocket() { close_fd(); }

UdpSocket::UdpSocket(UdpSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

UdpSocket& UdpSocket::operator=(UdpSocket&& other) noexcept {
  if (this != &other) {
    close_fd();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void UdpSocket::close_fd() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void UdpSocket::bind_loopback(std::uint16_t port) {
  const sockaddr_in addr = loopback_addr(port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    throw_errno("bind(127.0.0.1)");
  }
}

std::uint16_t UdpSocket::local_port() const {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    throw_errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

bool UdpSocket::send_to_loopback(std::span<const std::byte> payload,
                                 std::uint16_t port) {
  const sockaddr_in addr = loopback_addr(port);
  const ssize_t sent =
      ::sendto(fd_, payload.data(), payload.size(), 0,
               reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (sent >= 0) {
    return static_cast<std::size_t>(sent) == payload.size();
  }
  if (errno == ENOBUFS || errno == EAGAIN || errno == EWOULDBLOCK ||
      errno == EINTR) {
    return false;
  }
  throw_errno("sendto(127.0.0.1)");
}

std::optional<std::size_t> UdpSocket::recv(std::span<std::byte> buffer,
                                           int timeout_ms) {
  pollfd pfd{fd_, POLLIN, 0};
  for (;;) {
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready == 0) {
      return std::nullopt;
    }
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw_errno("poll");
    }
    const ssize_t got = ::recv(fd_, buffer.data(), buffer.size(), 0);
    if (got >= 0) {
      return static_cast<std::size_t>(got);
    }
    if (errno == EINTR) {
      continue;
    }
    throw_errno("recv");
  }
}

double monotonic_seconds() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

}  // namespace csmabw::net
