#pragma once

#include <netinet/in.h>

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>

namespace csmabw::net {

/// RAII UDP/IPv4 socket.
///
/// Errors surface as std::system_error (construction, bind) or as
/// empty/false results (timed-out receives); the destructor never
/// throws.  Move-only.
class UdpSocket {
 public:
  /// Creates an unbound UDP socket.  Throws std::system_error.
  UdpSocket();
  ~UdpSocket();

  UdpSocket(UdpSocket&& other) noexcept;
  UdpSocket& operator=(UdpSocket&& other) noexcept;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  /// Binds to 127.0.0.1:`port` (0 = ephemeral).  Throws std::system_error.
  void bind_loopback(std::uint16_t port);
  /// Local port after bind.
  [[nodiscard]] std::uint16_t local_port() const;

  /// Sends `payload` to 127.0.0.1:`port`.  Returns false on transient
  /// failure (e.g. ENOBUFS); throws std::system_error on hard errors.
  bool send_to_loopback(std::span<const std::byte> payload,
                        std::uint16_t port);

  /// Receives one datagram into `buffer`, waiting at most `timeout_ms`.
  /// Returns the datagram size, or std::nullopt on timeout.
  std::optional<std::size_t> recv(std::span<std::byte> buffer,
                                  int timeout_ms);

  [[nodiscard]] int fd() const { return fd_; }

 private:
  void close_fd() noexcept;

  int fd_ = -1;
};

/// Monotonic clock timestamp in seconds (CLOCK_MONOTONIC) — the common
/// clock for sender and receiver on one host, mirroring the testbed's
/// driver-level timestamping intent.
[[nodiscard]] double monotonic_seconds();

}  // namespace csmabw::net
