#include "net/udp_probe.hpp"

#include <cmath>
#include <future>
#include <limits>

#include "util/require.hpp"

namespace csmabw::net {

namespace {

/// Sleep-then-spin until the monotonic clock reaches `deadline_s`.
void pace_until(double deadline_s) {
  for (;;) {
    const double now = monotonic_seconds();
    const double remaining = deadline_s - now;
    if (remaining <= 0.0) {
      return;
    }
    if (remaining > 200e-6) {
      // Leave ~100us of spin margin to absorb scheduler wake-up jitter.
      std::this_thread::sleep_for(
          std::chrono::duration<double>(remaining - 100e-6));
    }
    // Short residues spin on the clock.
  }
}

}  // namespace

UdpProbeSender::UdpProbeSender(std::uint32_t session, std::uint16_t dest_port)
    : session_(session), dest_port_(dest_port) {}

std::vector<double> UdpProbeSender::send_train(const traffic::TrainSpec& spec,
                                               std::uint32_t train_idx) {
  CSMABW_REQUIRE(spec.n >= 2, "train needs >= 2 packets");
  std::vector<double> send_ts(static_cast<std::size_t>(spec.n),
                              std::numeric_limits<double>::quiet_NaN());
  const double start = monotonic_seconds() + 1e-3;
  for (int k = 0; k < spec.n; ++k) {
    pace_until(start + k * spec.gap.to_seconds());
    ProbeHeader h;
    h.session = session_;
    h.train = train_idx;
    h.seq = static_cast<std::uint32_t>(k);
    h.train_len = static_cast<std::uint32_t>(spec.n);
    const double ts = monotonic_seconds();
    h.send_ts_ns = static_cast<std::uint64_t>(ts * 1e9);
    const auto pkt = make_probe_packet(h, spec.size_bytes);
    if (socket_.send_to_loopback(pkt, dest_port_)) {
      send_ts[static_cast<std::size_t>(k)] = ts;
    }
  }
  return send_ts;
}

UdpProbeReceiver::UdpProbeReceiver() { socket_.bind_loopback(0); }

std::uint16_t UdpProbeReceiver::port() const { return socket_.local_port(); }

std::vector<double> UdpProbeReceiver::collect_train(std::uint32_t session,
                                                    std::uint32_t train,
                                                    std::uint32_t train_len,
                                                    int timeout_ms) {
  std::vector<double> recv_ts(train_len,
                              std::numeric_limits<double>::quiet_NaN());
  std::uint32_t got = 0;
  std::byte buffer[65536];
  while (got < train_len) {
    const auto size = socket_.recv(buffer, timeout_ms);
    if (!size.has_value()) {
      break;  // no progress within the timeout
    }
    const double ts = monotonic_seconds();
    const auto header = decode_probe_header({buffer, *size});
    if (!header.has_value() || header->session != session ||
        header->train != train || header->seq >= train_len) {
      continue;  // stray datagram
    }
    if (std::isnan(recv_ts[header->seq])) {
      recv_ts[header->seq] = ts;
      ++got;
    }
  }
  return recv_ts;
}

UdpLoopbackTransport::UdpLoopbackTransport(std::uint32_t session)
    : receiver_(), sender_(session, receiver_.port()), session_(session) {}

core::TrainResult UdpLoopbackTransport::send_train(
    const traffic::TrainSpec& spec) {
  const std::uint32_t train = next_train_++;

  // Collect in a worker so receive timestamps are taken while the sender
  // paces (loopback delivery is near-instant; the kernel buffers any
  // skew).
  auto collected = std::async(std::launch::async, [&] {
    return receiver_.collect_train(session_, train,
                                   static_cast<std::uint32_t>(spec.n),
                                   /*timeout_ms=*/500);
  });
  const std::vector<double> send_ts = sender_.send_train(spec, train);
  const std::vector<double> recv_ts = collected.get();

  core::TrainResult result;
  result.packets.reserve(static_cast<std::size_t>(spec.n));
  for (int k = 0; k < spec.n; ++k) {
    core::ProbeRecord rec;
    rec.seq = k;
    rec.send_s = send_ts[static_cast<std::size_t>(k)];
    rec.recv_s = recv_ts[static_cast<std::size_t>(k)];
    rec.lost = std::isnan(rec.send_s) || std::isnan(rec.recv_s);
    result.packets.push_back(rec);
  }
  return result;
}

}  // namespace csmabw::net
