#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/transport.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"

namespace csmabw::net {

/// Paces one probe train onto a UDP socket with monotonic-clock
/// timestamps taken immediately before each send (the user-space
/// analogue of the paper's driver-level TX timestamping).
class UdpProbeSender {
 public:
  UdpProbeSender(std::uint32_t session, std::uint16_t dest_port);

  /// Sends train `train_idx` per `spec`; returns the per-packet send
  /// timestamps (seconds, monotonic clock).  Pacing uses sleep for the
  /// bulk of the gap and a short spin for the residue.
  std::vector<double> send_train(const traffic::TrainSpec& spec,
                                 std::uint32_t train_idx);

 private:
  UdpSocket socket_;
  std::uint32_t session_;
  std::uint16_t dest_port_;
};

/// Receives probe packets and reassembles trains, timestamping each
/// datagram on arrival.
class UdpProbeReceiver {
 public:
  /// Binds an ephemeral loopback port.
  UdpProbeReceiver();

  [[nodiscard]] std::uint16_t port() const;

  /// Collects packets of (session, train) until `train_len` have arrived
  /// or `timeout_ms` passes without progress.  Returns receive
  /// timestamps indexed by seq (NaN = missing).
  std::vector<double> collect_train(std::uint32_t session,
                                    std::uint32_t train,
                                    std::uint32_t train_len, int timeout_ms);

 private:
  UdpSocket socket_;
};

/// ProbeTransport over real UDP sockets on the loopback interface — the
/// closest in-environment substitute for the paper's WLAN testbed: the
/// full send-path (serialization, pacing, timestamping) and receive-path
/// code is exercised, only the link under test is a kernel queue instead
/// of a DCF.
///
/// The receiver runs inline in the calling thread via a background
/// collector started per train.
class UdpLoopbackTransport : public core::ProbeTransport {
 public:
  explicit UdpLoopbackTransport(std::uint32_t session = 1);

  core::TrainResult send_train(const traffic::TrainSpec& spec) override;

 private:
  UdpProbeReceiver receiver_;
  UdpProbeSender sender_;
  std::uint32_t session_;
  std::uint32_t next_train_ = 0;
};

}  // namespace csmabw::net
