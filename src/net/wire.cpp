#include "net/wire.hpp"

#include "util/require.hpp"

namespace csmabw::net {

namespace {

void put_u32(std::span<std::byte> out, std::size_t at, std::uint32_t v) {
  out[at + 0] = static_cast<std::byte>((v >> 24) & 0xff);
  out[at + 1] = static_cast<std::byte>((v >> 16) & 0xff);
  out[at + 2] = static_cast<std::byte>((v >> 8) & 0xff);
  out[at + 3] = static_cast<std::byte>(v & 0xff);
}

void put_u64(std::span<std::byte> out, std::size_t at, std::uint64_t v) {
  put_u32(out, at, static_cast<std::uint32_t>(v >> 32));
  put_u32(out, at + 4, static_cast<std::uint32_t>(v & 0xffffffffULL));
}

std::uint32_t get_u32(std::span<const std::byte> in, std::size_t at) {
  return (static_cast<std::uint32_t>(in[at + 0]) << 24) |
         (static_cast<std::uint32_t>(in[at + 1]) << 16) |
         (static_cast<std::uint32_t>(in[at + 2]) << 8) |
         static_cast<std::uint32_t>(in[at + 3]);
}

std::uint64_t get_u64(std::span<const std::byte> in, std::size_t at) {
  return (static_cast<std::uint64_t>(get_u32(in, at)) << 32) |
         get_u32(in, at + 4);
}

}  // namespace

void encode_probe_header(const ProbeHeader& h, std::span<std::byte> out) {
  CSMABW_REQUIRE(out.size() >= ProbeHeader::kWireSize, "buffer too small");
  put_u32(out, 0, ProbeHeader::kMagic);
  put_u32(out, 4, h.session);
  put_u32(out, 8, h.train);
  put_u32(out, 12, h.seq);
  put_u32(out, 16, h.train_len);
  put_u64(out, 20, h.send_ts_ns);
}

std::optional<ProbeHeader> decode_probe_header(
    std::span<const std::byte> in) {
  if (in.size() < ProbeHeader::kWireSize) {
    return std::nullopt;
  }
  if (get_u32(in, 0) != ProbeHeader::kMagic) {
    return std::nullopt;
  }
  ProbeHeader h;
  h.session = get_u32(in, 4);
  h.train = get_u32(in, 8);
  h.seq = get_u32(in, 12);
  h.train_len = get_u32(in, 16);
  h.send_ts_ns = get_u64(in, 20);
  return h;
}

std::vector<std::byte> make_probe_packet(const ProbeHeader& h,
                                         int size_bytes) {
  CSMABW_REQUIRE(size_bytes >= static_cast<int>(ProbeHeader::kWireSize),
                 "packet smaller than the probe header");
  std::vector<std::byte> pkt(static_cast<std::size_t>(size_bytes),
                             std::byte{0});
  encode_probe_header(h, pkt);
  return pkt;
}

}  // namespace csmabw::net
