#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace csmabw::net {

/// On-the-wire header of a probe packet (network byte order).
///
/// Mirrors what MGEN-style probing tools stamp into each packet: enough
/// to reassemble trains at the receiver and compute one-way dispersion.
struct ProbeHeader {
  static constexpr std::uint32_t kMagic = 0x43424D57;  // "CBMW"
  static constexpr std::size_t kWireSize = 28;

  std::uint32_t session = 0;    ///< measurement session id
  std::uint32_t train = 0;      ///< train index within the session
  std::uint32_t seq = 0;        ///< packet index within the train
  std::uint32_t train_len = 0;  ///< packets in this train
  std::uint64_t send_ts_ns = 0; ///< sender monotonic timestamp
};

/// Serializes `h` (plus magic) into the first kWireSize bytes of `out`.
/// `out.size()` must be >= kWireSize.
void encode_probe_header(const ProbeHeader& h, std::span<std::byte> out);

/// Parses a header; returns std::nullopt if the buffer is too small or
/// the magic does not match.
[[nodiscard]] std::optional<ProbeHeader> decode_probe_header(
    std::span<const std::byte> in);

/// Builds a full probe datagram of `size_bytes` (header + zero padding).
/// `size_bytes` must be >= kWireSize.
[[nodiscard]] std::vector<std::byte> make_probe_packet(const ProbeHeader& h,
                                                       int size_bytes);

}  // namespace csmabw::net
