#pragma once

// The observability layer's single monotonic clock source.
//
// Every wall-time measurement in the repo's runtime instrumentation —
// metric timers, profiling spans, progress/ETA extrapolation — reads
// this one function, so span timestamps, histogram samples and ETA
// math are mutually comparable and a test can reason about all of them
// at once.  Wall-time readings are inherently non-deterministic; the
// run-report schema quarantines everything derived from this clock in
// its `nondeterministic` section (see obs/report.hpp).

#include <chrono>
#include <cstdint>

namespace csmabw::obs {

/// Monotonic nanoseconds since an arbitrary epoch (process-stable).
[[nodiscard]] inline std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace csmabw::obs
