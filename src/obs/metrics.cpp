#include "obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <utility>

#include "util/require.hpp"

namespace csmabw::obs {

int HistogramData::bucket_of(std::int64_t v) {
  if (v <= 0) {
    return 0;
  }
  // bit_width(2^62 <= v < 2^63) == 63, so positive samples land in
  // buckets 1..63 and the 64-entry array covers the full int64 range.
  return static_cast<int>(std::bit_width(static_cast<std::uint64_t>(v)));
}

std::int64_t HistogramData::lower_bound(int b) {
  return b <= 0 ? 0 : std::int64_t{1} << (b - 1);
}

std::int64_t HistogramData::upper_bound(int b) {
  if (b <= 0) {
    return 0;
  }
  if (b >= 63) {
    return std::numeric_limits<std::int64_t>::max();
  }
  return (std::int64_t{1} << b) - 1;
}

void HistogramData::observe(std::int64_t v) {
  ++count;
  sum += v;
  min = std::min(min, v);
  max = std::max(max, v);
  ++buckets[static_cast<std::size_t>(bucket_of(v))];
}

void HistogramData::merge(const HistogramData& other) {
  if (other.count == 0) {
    return;
  }
  count += other.count;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    buckets[b] += other.buckets[b];
  }
}

namespace {

/// Process-unique registry ids: thread-local shard caches key on the
/// uid, never the address, so a registry allocated where a destroyed
/// one lived can never alias a stale cache entry.
std::atomic<std::uint64_t> g_next_registry_uid{1};

struct TlsShardRef {
  std::uint64_t uid = 0;
  void* shard = nullptr;
};

/// Per-thread cache of (registry uid -> shard).  Entries for destroyed
/// registries go stale harmlessly (their uid never recurs); the vector
/// stays tiny because a thread touches few registries.
thread_local std::vector<TlsShardRef> t_shard_cache;

}  // namespace

Registry::Registry(bool enabled)
    : enabled_(enabled),
      uid_(g_next_registry_uid.fetch_add(1, std::memory_order_relaxed)) {}

Registry::~Registry() = default;

std::uint32_t Registry::register_metric(std::string_view name,
                                        MetricKind kind, Determinism det) {
  std::scoped_lock lock(mu_);
  const auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) {
    const MetricInfo& info = metrics_[it->second];
    CSMABW_REQUIRE(info.kind == kind && info.det == det,
                   "metric `" + std::string(name) +
                       "` re-registered with a different kind or "
                       "determinism class");
    return info.slot;
  }
  MetricInfo info;
  info.name = std::string(name);
  info.kind = kind;
  info.det = det;
  info.slot =
      kind == MetricKind::kHistogram ? hist_slots_++ : scalar_slots_++;
  by_name_.emplace(info.name, static_cast<std::uint32_t>(metrics_.size()));
  metrics_.push_back(std::move(info));
  return metrics_.back().slot;
}

Counter Registry::counter(std::string_view name, Determinism det) {
  if (!enabled_) {
    return {};
  }
  return Counter(this, register_metric(name, MetricKind::kCounter, det));
}

Gauge Registry::gauge(std::string_view name, Determinism det) {
  if (!enabled_) {
    return {};
  }
  return Gauge(this, register_metric(name, MetricKind::kGauge, det));
}

Histogram Registry::histogram(std::string_view name, Determinism det) {
  if (!enabled_) {
    return {};
  }
  return Histogram(this, register_metric(name, MetricKind::kHistogram, det));
}

void Registry::add(std::string_view name, std::int64_t delta,
                   Determinism det) {
  if (!enabled_) {
    return;
  }
  counter(name, det).add(delta);
}

Registry::Shard& Registry::local_shard() {
  for (std::size_t i = 0; i < t_shard_cache.size(); ++i) {
    if (t_shard_cache[i].uid == uid_) {
      if (i != 0) {
        std::swap(t_shard_cache[0], t_shard_cache[i]);  // MRU to front
      }
      return *static_cast<Shard*>(t_shard_cache[0].shard);
    }
  }
  std::scoped_lock lock(mu_);
  shards_.emplace_back();
  Shard* shard = &shards_.back();
  t_shard_cache.push_back(TlsShardRef{uid_, shard});
  return *shard;
}

void Registry::add_scalar(std::uint32_t slot, std::int64_t delta) {
  Shard& s = local_shard();
  if (s.scalars.size() <= slot) {
    s.scalars.resize(slot + 1, 0);
    s.gauge_set.resize(slot + 1, false);
  }
  s.scalars[slot] += delta;
}

void Registry::max_scalar(std::uint32_t slot, std::int64_t value) {
  Shard& s = local_shard();
  if (s.scalars.size() <= slot) {
    s.scalars.resize(slot + 1, 0);
    s.gauge_set.resize(slot + 1, false);
  }
  if (!s.gauge_set[slot] || value > s.scalars[slot]) {
    s.scalars[slot] = value;
    s.gauge_set[slot] = true;
  }
}

void Registry::observe_hist(std::uint32_t slot, std::int64_t value) {
  Shard& s = local_shard();
  if (s.hists.size() <= slot) {
    s.hists.resize(slot + 1);
  }
  s.hists[slot].observe(value);
}

std::vector<MergedMetric> Registry::merged() const {
  std::scoped_lock lock(mu_);
  std::vector<MergedMetric> out;
  out.reserve(metrics_.size());
  for (const MetricInfo& info : metrics_) {
    MergedMetric m;
    m.name = info.name;
    m.kind = info.kind;
    m.determinism = info.det;
    bool gauge_seen = false;
    for (const Shard& s : shards_) {
      if (info.kind == MetricKind::kHistogram) {
        if (info.slot < s.hists.size()) {
          m.hist.merge(s.hists[info.slot]);
        }
      } else if (info.slot < s.scalars.size()) {
        if (info.kind == MetricKind::kCounter) {
          m.value += s.scalars[info.slot];
        } else if (s.gauge_set[info.slot]) {
          m.value = gauge_seen ? std::max(m.value, s.scalars[info.slot])
                               : s.scalars[info.slot];
          gauge_seen = true;
        }
      }
    }
    out.push_back(std::move(m));
  }
  std::sort(out.begin(), out.end(),
            [](const MergedMetric& a, const MergedMetric& b) {
              return a.name < b.name;
            });
  return out;
}

std::int64_t Registry::value(std::string_view name) const {
  std::scoped_lock lock(mu_);
  const auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) {
    return 0;
  }
  const MetricInfo& info = metrics_[it->second];
  std::int64_t value = 0;
  bool gauge_seen = false;
  for (const Shard& s : shards_) {
    if (info.kind == MetricKind::kHistogram || info.slot >= s.scalars.size()) {
      continue;
    }
    if (info.kind == MetricKind::kCounter) {
      value += s.scalars[info.slot];
    } else if (s.gauge_set[info.slot]) {
      value = gauge_seen ? std::max(value, s.scalars[info.slot])
                         : s.scalars[info.slot];
      gauge_seen = true;
    }
  }
  return value;
}

HistogramData Registry::histogram_data(std::string_view name) const {
  std::scoped_lock lock(mu_);
  HistogramData out;
  const auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) {
    return out;
  }
  const MetricInfo& info = metrics_[it->second];
  if (info.kind != MetricKind::kHistogram) {
    return out;
  }
  for (const Shard& s : shards_) {
    if (info.slot < s.hists.size()) {
      out.merge(s.hists[info.slot]);
    }
  }
  return out;
}

}  // namespace csmabw::obs
