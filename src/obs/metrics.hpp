#pragma once

// Runtime metrics registry: string-keyed counters, gauges and
// log-bucketed histograms with per-thread shards and a deterministic
// merge.
//
// Design goals, in order:
//
//  1. **Near-zero cost when disabled.**  Handles obtained from a
//     disabled registry are unbound (null); every emission site is a
//     single predictable branch — the same null-tap pattern the event
//     tap uses (trace::TraceSink), which PR 4 proved perf-neutral by
//     same-machine A/B against the perf gate.
//  2. **No contention when enabled.**  Each thread accumulates into its
//     own shard (plain int64 adds, no atomics); shards are merged after
//     the worker pool drains — the same shard-then-merge idiom as
//     exp::Runner.
//  3. **Deterministic merges.**  Counter and histogram-bucket merges
//     are integer sums (commutative, associative), gauges merge by
//     maximum — so the merged snapshot of a campaign's *stable* metrics
//     is byte-identical for any --threads value.  Metrics that sample
//     the wall clock are registered as Determinism::kWallTime and land
//     in the run report's `nondeterministic` section instead.
//
// Naming convention: `subsystem.noun.verb` (e.g. `serve.cache.hit`,
// `exp.reps.computed`, `query.pages.skipped`); wall-time histograms end
// in a unit suffix (`exp.rep.wall_ns`).
//
// Thread-safety contract: add()/set()/observe() may run concurrently
// from any number of threads; merged()/value()/histogram() must only
// run while no other thread is mutating (after a pool drain).  Metric
// registration (counter()/gauge()/histogram()) is mutex-protected and
// may run at any time.

#include <array>
#include <cstdint>
#include <deque>
#include <limits>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/clock.hpp"

namespace csmabw::obs {

/// Whether a metric's merged value is a pure function of the workload
/// (stable across thread counts and runs) or samples the wall clock.
enum class Determinism : std::uint8_t { kStable, kWallTime };

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// Log-bucketed (base-2) histogram of int64 samples.  Bucket 0 holds
/// all samples <= 0; bucket b >= 1 holds samples in [2^(b-1), 2^b - 1]
/// — i.e. the bucket index of a positive sample is its bit width.
/// 64 buckets cover the full positive int64 range.
struct HistogramData {
  static constexpr int kBuckets = 64;

  std::int64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = std::numeric_limits<std::int64_t>::max();
  std::int64_t max = std::numeric_limits<std::int64_t>::min();
  std::array<std::int64_t, kBuckets> buckets{};

  /// The bucket a sample falls into: 0 for v <= 0, else bit_width(v).
  [[nodiscard]] static int bucket_of(std::int64_t v);
  /// Inclusive bounds of bucket b (lower_bound(0) reports 0: the
  /// "<= 0" bucket's nominal origin).
  [[nodiscard]] static std::int64_t lower_bound(int b);
  [[nodiscard]] static std::int64_t upper_bound(int b);

  void observe(std::int64_t v);
  void merge(const HistogramData& other);
};

class Registry;

/// Unbound (default-constructed or from a disabled registry) handles
/// no-op on a single branch.  Handles are trivially copyable and remain
/// valid for the registry's lifetime.
class Counter {
 public:
  Counter() = default;
  void add(std::int64_t delta = 1) const;
  [[nodiscard]] bool bound() const { return reg_ != nullptr; }

 private:
  friend class Registry;
  Counter(Registry* reg, std::uint32_t slot) : reg_(reg), slot_(slot) {}
  Registry* reg_ = nullptr;
  std::uint32_t slot_ = 0;
};

/// A sampled level (queue depth, capacity high-water mark).  Shards
/// keep their running maximum and merge by maximum — deterministic
/// whenever the sampled quantity is.
class Gauge {
 public:
  Gauge() = default;
  void sample(std::int64_t value) const;
  [[nodiscard]] bool bound() const { return reg_ != nullptr; }

 private:
  friend class Registry;
  Gauge(Registry* reg, std::uint32_t slot) : reg_(reg), slot_(slot) {}
  Registry* reg_ = nullptr;
  std::uint32_t slot_ = 0;
};

class Histogram {
 public:
  Histogram() = default;
  void observe(std::int64_t value) const;
  [[nodiscard]] bool bound() const { return reg_ != nullptr; }

 private:
  friend class Registry;
  friend class ScopedTimer;
  Histogram(Registry* reg, std::uint32_t slot) : reg_(reg), slot_(slot) {}
  Registry* reg_ = nullptr;
  std::uint32_t slot_ = 0;
};

/// RAII wall-clock timer: observes elapsed nanoseconds into a histogram
/// on destruction.  Unbound histograms skip the clock reads entirely.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram hist)
      : hist_(hist), start_(hist.bound() ? now_ns() : 0) {}
  ~ScopedTimer() {
    if (hist_.bound()) {
      hist_.observe(now_ns() - start_);
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram hist_;
  std::int64_t start_;
};

/// One merged metric in a snapshot.
struct MergedMetric {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  Determinism determinism = Determinism::kStable;
  std::int64_t value = 0;  ///< counter sum / gauge max (scalar kinds)
  HistogramData hist;      ///< histogram kind only
};

class Registry {
 public:
  explicit Registry(bool enabled = true);
  ~Registry();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Registers (or re-finds) a metric and returns its handle.  The same
  /// name always resolves to the same slot; re-registering with a
  /// different kind or determinism class throws util::PreconditionError.
  /// A disabled registry returns unbound handles.
  [[nodiscard]] Counter counter(std::string_view name,
                                Determinism det = Determinism::kStable);
  [[nodiscard]] Gauge gauge(std::string_view name,
                            Determinism det = Determinism::kStable);
  [[nodiscard]] Histogram histogram(std::string_view name,
                                    Determinism det = Determinism::kStable);

  /// Convenience slow path: registers on first use, then adds.  For
  /// cold call sites (once per run); hot paths should hold a handle.
  void add(std::string_view name, std::int64_t delta,
           Determinism det = Determinism::kStable);

  /// Deterministically merged snapshot, sorted by metric name.
  [[nodiscard]] std::vector<MergedMetric> merged() const;
  /// Merged scalar value of one metric (0 when absent).
  [[nodiscard]] std::int64_t value(std::string_view name) const;
  /// Merged histogram of one metric (empty when absent).
  [[nodiscard]] HistogramData histogram_data(std::string_view name) const;

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  struct MetricInfo {
    std::string name;
    MetricKind kind;
    Determinism det;
    std::uint32_t slot;  ///< scalar or histogram slot, per kind
  };

  /// One thread's accumulation shard.  Owned (written) by exactly one
  /// thread; vectors sized lazily on first touch of a slot.
  struct Shard {
    std::vector<std::int64_t> scalars;
    std::vector<bool> gauge_set;  ///< scalar slot ever sampled (gauges)
    std::vector<HistogramData> hists;
  };

  [[nodiscard]] std::uint32_t register_metric(std::string_view name,
                                              MetricKind kind,
                                              Determinism det);
  [[nodiscard]] Shard& local_shard();
  void add_scalar(std::uint32_t slot, std::int64_t delta);
  void max_scalar(std::uint32_t slot, std::int64_t value);
  void observe_hist(std::uint32_t slot, std::int64_t value);

  const bool enabled_;
  const std::uint64_t uid_;  ///< process-unique; thread-local cache key
  mutable std::mutex mu_;
  std::vector<MetricInfo> metrics_;
  std::unordered_map<std::string, std::uint32_t> by_name_;
  std::deque<Shard> shards_;  ///< deque: stable addresses across growth
  std::uint32_t scalar_slots_ = 0;
  std::uint32_t hist_slots_ = 0;
};

inline void Counter::add(std::int64_t delta) const {
  if (reg_ != nullptr) {
    reg_->add_scalar(slot_, delta);
  }
}

inline void Gauge::sample(std::int64_t value) const {
  if (reg_ != nullptr) {
    reg_->max_scalar(slot_, value);
  }
}

inline void Histogram::observe(std::int64_t value) const {
  if (reg_ != nullptr) {
    reg_->observe_hist(slot_, value);
  }
}

}  // namespace csmabw::obs
