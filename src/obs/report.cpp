#include "obs/report.hpp"

#include <algorithm>
#include <ostream>

#include "util/json.hpp"

namespace csmabw::obs {

namespace {

void write_histogram(std::ostream& out, const HistogramData& h) {
  out << "{\"count\":" << h.count << ",\"sum\":" << h.sum;
  if (h.count > 0) {
    out << ",\"min\":" << h.min << ",\"max\":" << h.max;
  } else {
    out << ",\"min\":0,\"max\":0";
  }
  out << ",\"buckets\":[";
  bool first = true;
  for (int b = 0; b < HistogramData::kBuckets; ++b) {
    const std::int64_t n = h.buckets[static_cast<std::size_t>(b)];
    if (n == 0) {
      continue;
    }
    if (!first) {
      out << ",";
    }
    first = false;
    out << "[" << HistogramData::lower_bound(b) << ","
        << HistogramData::upper_bound(b) << "," << n << "]";
  }
  out << "]}";
}

/// Emits the counters/gauges/histograms objects for one determinism
/// class.  `merged` is already name-sorted, so iteration order (and
/// therefore the emitted bytes) is deterministic.
void write_section(std::ostream& out, const std::vector<MergedMetric>& merged,
                   Determinism det, const char* indent) {
  const auto write_scalars = [&](MetricKind kind, const char* key) {
    out << indent << "\"" << key << "\":{";
    bool first = true;
    for (const MergedMetric& m : merged) {
      if (m.determinism != det || m.kind != kind) {
        continue;
      }
      if (!first) {
        out << ",";
      }
      first = false;
      out << "\"" << util::json_escape(m.name) << "\":" << m.value;
    }
    out << "},\n";
  };
  write_scalars(MetricKind::kCounter, "counters");
  write_scalars(MetricKind::kGauge, "gauges");
  out << indent << "\"histograms\":{";
  bool first = true;
  for (const MergedMetric& m : merged) {
    if (m.determinism != det || m.kind != MetricKind::kHistogram) {
      continue;
    }
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\"" << util::json_escape(m.name) << "\":";
    write_histogram(out, m.hist);
  }
  out << "}";
}

}  // namespace

void write_run_report(std::ostream& out, const Registry& registry,
                      const std::vector<CellObs>& cells,
                      const RunReportOptions& opts) {
  const std::vector<MergedMetric> merged = registry.merged();

  out << "{\n";
  out << "  \"schema\":\"csmabw-run-report\",\n";
  out << "  \"version\":1,\n";
  out << "  \"tool\":\"" << util::json_escape(opts.tool) << "\",\n";

  out << "  \"deterministic\":{\n";
  write_section(out, merged, Determinism::kStable, "    ");
  out << "\n  },\n";

  out << "  \"nondeterministic\":{\n";
  out << "    \"threads\":" << opts.threads << ",\n";
  out << "    \"wall_ns\":" << opts.wall_ns << ",\n";
  write_section(out, merged, Determinism::kWallTime, "    ");
  out << ",\n";

  // Worker utilization: busy time approximated by the sum of the
  // designated wall-time histogram (per-rep compute wall), divided by
  // the wall-clock budget wall_ns * threads.
  const HistogramData busy = registry.histogram_data(opts.busy_histogram);
  out << "    \"utilization\":{\"busy_ns\":" << busy.sum
      << ",\"workers\":" << opts.threads << ",\"ratio\":";
  if (opts.wall_ns > 0 && opts.threads > 0) {
    out << util::json_number(static_cast<double>(busy.sum) /
                             (static_cast<double>(opts.wall_ns) *
                              static_cast<double>(opts.threads)));
  } else {
    out << 0;
  }
  out << "},\n";

  out << "    \"cells\":[";
  bool first = true;
  for (const CellObs& c : cells) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\n      {\"cell\":" << c.cell << ",\"wall_ns\":" << c.wall_ns
        << ",\"computed\":" << c.computed << ",\"cached\":" << c.cached
        << ",\"sim_events\":" << c.sim_events << ",\"events_per_s\":";
    if (c.wall_ns > 0) {
      out << util::json_number(static_cast<double>(c.sim_events) * 1e9 /
                               static_cast<double>(c.wall_ns));
    } else {
      out << 0;
    }
    out << "}";
  }
  out << (first ? "],\n" : "\n    ],\n");

  // Slowest K by compute wall time (ties broken by cell index so the
  // ranking is reproducible given equal inputs).
  std::vector<const CellObs*> ranked;
  ranked.reserve(cells.size());
  for (const CellObs& c : cells) {
    if (c.wall_ns > 0) {
      ranked.push_back(&c);
    }
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const CellObs* a, const CellObs* b) {
              if (a->wall_ns != b->wall_ns) {
                return a->wall_ns > b->wall_ns;
              }
              return a->cell < b->cell;
            });
  if (opts.slowest_k >= 0 &&
      ranked.size() > static_cast<std::size_t>(opts.slowest_k)) {
    ranked.resize(static_cast<std::size_t>(opts.slowest_k));
  }
  out << "    \"slowest_cells\":[";
  first = true;
  for (const CellObs* c : ranked) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "{\"cell\":" << c->cell << ",\"wall_ns\":" << c->wall_ns << "}";
  }
  out << "]\n";

  out << "  }\n";
  out << "}\n";
}

}  // namespace csmabw::obs
