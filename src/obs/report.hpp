#pragma once

// Versioned JSON run reports (`--metrics-out=FILE`).
//
// Schema `csmabw-run-report` version 1:
//
//   {
//     "schema": "csmabw-run-report",
//     "version": 1,
//     "tool": "<binary name>",
//     "deterministic": {
//       "counters":   { "<name>": <int>, ... },
//       "gauges":     { "<name>": <int>, ... },
//       "histograms": { "<name>": {"count":C,"sum":S,"min":m,"max":M,
//                                  "buckets":[[lo,hi,count],...]}, ... }
//     },
//     "nondeterministic": {
//       "threads": N, "wall_ns": W,
//       "counters": {...}, "gauges": {...}, "histograms": {...},
//       "utilization": {"busy_ns":B,"workers":N,"ratio":R},
//       "cells": [{"cell":i,"wall_ns":w,"computed":c,"cached":k,
//                  "sim_events":e,"events_per_s":r}, ...],
//       "slowest_cells": [{"cell":i,"wall_ns":w}, ...]
//     }
//   }
//
// Contract: everything under `deterministic` is a pure function of the
// workload — byte-identical for any --threads value and across
// repeated runs from the same starting state.  Everything under
// `nondeterministic` samples the wall clock (obs/clock.hpp) or depends
// on scheduling and carries no stability guarantee.  A metric's
// section is fixed at registration time (obs::Determinism).
//
// Versioning rule: adding fields is a compatible change (consumers
// must ignore unknown keys); removing or re-typing a field, or moving
// a metric between sections, bumps "version".  Histogram buckets are
// [lower, upper, count] triples with inclusive int64 bounds; empty
// buckets are omitted.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace csmabw::obs {

/// Per-campaign-cell runtime accounting, merged like every other cell
/// statistic (integer sums — shard-order independent).
struct CellObs {
  int cell = 0;
  std::int64_t wall_ns = 0;     ///< compute wall time (non-deterministic)
  std::int64_t computed = 0;    ///< repetitions simulated in this run
  std::int64_t cached = 0;      ///< repetitions served (cache/resume)
  std::int64_t sim_events = 0;  ///< simulator events across computed reps

  void merge(const CellObs& other) {
    wall_ns += other.wall_ns;
    computed += other.computed;
    cached += other.cached;
    sim_events += other.sim_events;
  }
};

struct RunReportOptions {
  std::string tool;        ///< emitting binary ("campaign_sweep", ...)
  int threads = 0;         ///< worker pool size of the run
  int slowest_k = 5;       ///< how many cells "slowest_cells" ranks
  std::int64_t wall_ns = 0;  ///< whole-run wall time
  /// The wall-time histogram whose sum approximates total worker busy
  /// time (utilization = busy / (wall * threads)).
  std::string busy_histogram = "exp.rep.wall_ns";
};

/// Writes the version-1 run report.  `cells` may be empty (tools with
/// no campaign grid); per-cell rows are emitted in cell order.
void write_run_report(std::ostream& out, const Registry& registry,
                      const std::vector<CellObs>& cells,
                      const RunReportOptions& opts);

}  // namespace csmabw::obs
