#include "obs/span.hpp"

#include <algorithm>
#include <atomic>
#include <ostream>

#include "util/json.hpp"

namespace csmabw::obs {

namespace {

/// Same uid-keyed thread-local cache idiom as the metrics registry (see
/// metrics.cpp): stale entries for destroyed profilers never match.
std::atomic<std::uint64_t> g_next_profiler_uid{1};

struct TlsBufferRef {
  std::uint64_t uid = 0;
  void* buffer = nullptr;
};

thread_local std::vector<TlsBufferRef> t_buffer_cache;

}  // namespace

Profiler::Profiler(bool enabled, std::size_t max_spans_per_thread)
    : enabled_(enabled),
      uid_(g_next_profiler_uid.fetch_add(1, std::memory_order_relaxed)),
      max_spans_per_thread_(max_spans_per_thread) {}

Profiler::Buffer* Profiler::local_buffer() {
  for (std::size_t i = 0; i < t_buffer_cache.size(); ++i) {
    if (t_buffer_cache[i].uid == uid_) {
      if (i != 0) {
        std::swap(t_buffer_cache[0], t_buffer_cache[i]);
      }
      return static_cast<Buffer*>(t_buffer_cache[0].buffer);
    }
  }
  std::scoped_lock lock(mu_);
  buffers_.emplace_back();
  Buffer* buf = &buffers_.back();
  buf->tid = static_cast<std::uint32_t>(buffers_.size() - 1);
  buf->cap = max_spans_per_thread_;
  t_buffer_cache.push_back(TlsBufferRef{uid_, buf});
  return buf;
}

std::vector<SpanEvent> Profiler::sorted_spans() const {
  std::scoped_lock lock(mu_);
  std::vector<SpanEvent> out;
  std::size_t total = 0;
  for (const Buffer& b : buffers_) {
    total += b.spans.size();
  }
  out.reserve(total);
  for (const Buffer& b : buffers_) {
    out.insert(out.end(), b.spans.begin(), b.spans.end());
  }
  std::sort(out.begin(), out.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              if (a.start_ns != b.start_ns) {
                return a.start_ns < b.start_ns;
              }
              if (a.tid != b.tid) {
                return a.tid < b.tid;
              }
              return a.depth < b.depth;
            });
  return out;
}

std::size_t Profiler::recorded() const {
  std::scoped_lock lock(mu_);
  std::size_t n = 0;
  for (const Buffer& b : buffers_) {
    n += b.spans.size();
  }
  return n;
}

std::size_t Profiler::dropped() const {
  std::scoped_lock lock(mu_);
  std::size_t n = 0;
  for (const Buffer& b : buffers_) {
    n += b.dropped;
  }
  return n;
}

std::size_t Profiler::threads_observed() const {
  std::scoped_lock lock(mu_);
  return buffers_.size();
}

void Profiler::write_chrome_trace(std::ostream& out) const {
  const std::vector<SpanEvent> spans = sorted_spans();
  out << "{\"traceEvents\":[";
  bool first = true;
  // Thread-name metadata first: Perfetto labels each track.
  std::uint32_t tids = 0;
  {
    std::scoped_lock lock(mu_);
    tids = static_cast<std::uint32_t>(buffers_.size());
  }
  for (std::uint32_t t = 0; t < tids; ++t) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << t
        << ",\"args\":{\"name\":\"csmabw-" << t << "\"}}";
  }
  for (const SpanEvent& s : spans) {
    if (!first) {
      out << ",";
    }
    first = false;
    // Timestamps/durations are microseconds (doubles) per the trace
    // format; ns precision survives as fractional us.
    out << "{\"name\":\"" << util::json_escape(s.name)
        << "\",\"cat\":\"csmabw\",\"ph\":\"X\",\"ts\":"
        << util::json_number(static_cast<double>(s.start_ns) / 1e3)
        << ",\"dur\":"
        << util::json_number(static_cast<double>(s.dur_ns) / 1e3)
        << ",\"pid\":1,\"tid\":" << s.tid;
    if (s.n_args > 0) {
      out << ",\"args\":{";
      for (std::uint8_t a = 0; a < s.n_args; ++a) {
        if (a > 0) {
          out << ",";
        }
        out << "\"" << util::json_escape(s.args[a].first)
            << "\":" << s.args[a].second;
      }
      out << "}";
    }
    out << "}";
  }
  out << "],\"displayTimeUnit\":\"ms\"}\n";
}

ScopedSpan::ScopedSpan(Profiler* profiler, std::string_view name) {
  if (profiler == nullptr || !profiler->enabled()) {
    return;
  }
  buf_ = profiler->local_buffer();
  ++buf_->depth;
  name_ = std::string(name);
  start_ns_ = now_ns();
}

void ScopedSpan::arg(const char* key, std::int64_t value) {
  if (buf_ == nullptr || n_args_ >= args_.size()) {
    return;
  }
  args_[n_args_++] = {key, value};
}

ScopedSpan::~ScopedSpan() {
  if (buf_ == nullptr) {
    return;
  }
  const std::int64_t end = now_ns();
  Profiler::Buffer& b = *buf_;
  --b.depth;
  if (b.spans.size() >= b.cap) {
    ++b.dropped;
    return;
  }
  SpanEvent e;
  e.name = std::move(name_);
  e.start_ns = start_ns_;
  e.dur_ns = end - start_ns_;
  e.tid = b.tid;
  e.depth = b.depth;
  e.n_args = n_args_;
  e.args = args_;
  b.spans.push_back(std::move(e));
}

}  // namespace csmabw::obs
