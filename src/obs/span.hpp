#pragma once

// Self-profiling spans with Chrome/Perfetto trace-event export.
//
// A ScopedSpan brackets one unit of runtime work (a (cell, repetition)
// job, a cache lookup, a page scan) and records a complete ("ph":"X")
// trace event into its thread's buffer on destruction.  The profiler
// exports the merged buffers as Chrome trace-event JSON
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU)
// which loads directly in `ui.perfetto.dev` or `chrome://tracing` —
// run a fleet campaign with `--prof=FILE` and open the file.
//
// Same null-tap contract as the metrics registry: a null/disabled
// profiler makes every ScopedSpan a no-op that never reads the clock.
// Buffers are per-thread (no locks on the record path) and merged at
// export time; nesting is tracked per thread so tests (and the
// exporter's self-checks) can verify span containment.
//
// Memory is bounded: each thread stores at most `max_spans_per_thread`
// spans (default 1 << 20, ~64 MiB/thread worst case); further spans
// are counted in dropped() but not stored, so a multi-million-rep
// fleet run cannot OOM the profiler.

#include <array>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/clock.hpp"

namespace csmabw::obs {

/// One completed span.  `args` carry up to three named int64 payloads
/// (cell/rep indices, page counts); keys must be string literals (the
/// span stores the pointer, not a copy).
struct SpanEvent {
  std::string name;
  std::int64_t start_ns = 0;
  std::int64_t dur_ns = 0;
  std::uint32_t tid = 0;    ///< profiler-assigned thread ordinal
  std::uint16_t depth = 0;  ///< nesting depth within the thread, 0 = top
  std::uint8_t n_args = 0;
  std::array<std::pair<const char*, std::int64_t>, 3> args{};
};

class ScopedSpan;

class Profiler {
 public:
  explicit Profiler(bool enabled = true,
                    std::size_t max_spans_per_thread = std::size_t{1} << 20);

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  [[nodiscard]] bool enabled() const { return enabled_; }

  /// All recorded spans sorted by (start, tid, depth) — a deterministic
  /// order for a fixed set of spans.  Call after the workers drain.
  [[nodiscard]] std::vector<SpanEvent> sorted_spans() const;

  /// Spans recorded (stored) / dropped by the per-thread cap.
  [[nodiscard]] std::size_t recorded() const;
  [[nodiscard]] std::size_t dropped() const;
  /// Threads that ever recorded a span.
  [[nodiscard]] std::size_t threads_observed() const;

  /// Writes the whole profile as Chrome trace-event JSON ("traceEvents"
  /// array of "X" events, timestamps in microseconds, plus thread-name
  /// metadata).  Loads in ui.perfetto.dev / chrome://tracing.
  void write_chrome_trace(std::ostream& out) const;

 private:
  friend class ScopedSpan;

  struct Buffer {
    std::uint32_t tid = 0;
    std::uint16_t depth = 0;  ///< live nesting depth of the owning thread
    std::size_t cap = 0;      ///< max_spans_per_thread, copied at creation
    std::size_t dropped = 0;
    std::vector<SpanEvent> spans;
  };

  [[nodiscard]] Buffer* local_buffer();

  const bool enabled_;
  const std::uint64_t uid_;
  const std::size_t max_spans_per_thread_;
  mutable std::mutex mu_;
  std::deque<Buffer> buffers_;  ///< deque: stable addresses across growth
};

/// RAII span.  Construct with the profiler (null = disabled) and a
/// name; optionally attach up to three int64 args; the destructor stamps
/// the duration and commits the event.  Not copyable or movable — bind
/// it to a scope.
class ScopedSpan {
 public:
  ScopedSpan(Profiler* profiler, std::string_view name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches a named int64 payload (max 3; extras are ignored).  `key`
  /// must be a string literal or otherwise outlive the profiler.
  void arg(const char* key, std::int64_t value);

 private:
  Profiler::Buffer* buf_ = nullptr;  ///< null = disabled span
  std::int64_t start_ns_ = 0;
  std::string name_;
  std::uint8_t n_args_ = 0;
  std::array<std::pair<const char*, std::int64_t>, 3> args_{};
};

}  // namespace csmabw::obs
