#include "queueing/fifo_trace.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace csmabw::queueing {

FifoTraceResult::FifoTraceResult(std::vector<ServedJob> jobs)
    : jobs_(std::move(jobs)) {
  // Precompute maximal busy periods: a busy period extends while the next
  // arrival happens at or before the current backlog drains.
  for (const auto& sj : jobs_) {
    if (busy_.empty() || sj.job.arrival > busy_.back().second) {
      busy_.emplace_back(sj.job.arrival, sj.depart);
    } else {
      busy_.back().second = std::max(busy_.back().second, sj.depart);
    }
  }
}

TimeNs FifoTraceResult::workload_at(TimeNs t) const {
  // Last job with arrival <= t.
  const auto it = std::upper_bound(
      jobs_.begin(), jobs_.end(), t,
      [](TimeNs v, const ServedJob& j) { return v < j.job.arrival; });
  if (it == jobs_.begin()) {
    return TimeNs::zero();
  }
  const TimeNs last_depart = std::prev(it)->depart;
  return last_depart > t ? last_depart - t : TimeNs::zero();
}

int FifoTraceResult::queue_length_at(TimeNs t) const {
  // Jobs arrive in order; departures are also non-decreasing under FIFO.
  const auto arrived = std::upper_bound(
      jobs_.begin(), jobs_.end(), t,
      [](TimeNs v, const ServedJob& j) { return v < j.job.arrival; });
  const auto departed = std::upper_bound(
      jobs_.begin(), jobs_.end(), t,
      [](TimeNs v, const ServedJob& j) { return v < j.depart; });
  return static_cast<int>(arrived - jobs_.begin()) -
         static_cast<int>(departed - jobs_.begin());
}

double FifoTraceResult::utilization(TimeNs from, TimeNs to) const {
  CSMABW_REQUIRE(to > from, "interval must be non-empty");
  TimeNs busy = TimeNs::zero();
  for (const auto& [b, e] : busy_) {
    const TimeNs lo = std::max(b, from);
    const TimeNs hi = std::min(e, to);
    if (hi > lo) {
      busy += hi - lo;
    }
  }
  return busy.to_seconds() / (to - from).to_seconds();
}

TimeNs FifoTraceResult::offered_workload_at(TimeNs t) const {
  TimeNs x = TimeNs::zero();
  for (const auto& sj : jobs_) {
    if (sj.job.arrival > t) {
      break;
    }
    x += sj.job.service;
  }
  return x;
}

double FifoTraceResult::offered_rate(TimeNs from, TimeNs to) const {
  CSMABW_REQUIRE(to > from, "interval must be non-empty");
  const TimeNs dx = offered_workload_at(to) - offered_workload_at(from);
  return dx.to_seconds() / (to - from).to_seconds();
}

namespace {

/// Emits the served jobs' arrival/departure/depth events in time order
/// (ties: arrivals before departures — a zero-service job's enqueue
/// must precede its own success for the trace to reconstruct).
void emit_fifo_events(const std::vector<ServedJob>& served,
                      trace::TraceSink& trace) {
  const auto event = [&trace](trace::EventKind kind, TimeNs t,
                              std::size_t index, const ServedJob& sj,
                              std::int32_t value, std::int32_t depth) {
    trace::TraceEvent e;
    e.time = t;
    e.kind = kind;
    e.station = 0;
    e.packet = static_cast<std::uint64_t>(index) + 1;
    e.aux = kind == trace::EventKind::kSuccess ? sj.depart : t;
    e.flow = sj.job.flow;
    e.seq = static_cast<std::int32_t>(index);
    e.value = value;
    trace.on_event(e);
    trace::TraceEvent d;
    d.time = t;
    d.kind = trace::EventKind::kQueueDepth;
    d.station = 0;
    d.aux = t;
    d.value = depth;
    trace.on_event(d);
  };
  std::size_t arrive = 0;
  std::size_t depart = 0;
  std::int32_t depth = 0;
  while (depart < served.size()) {
    // Ties process the arrival first: a zero-service job departs at its
    // own arrival instant, and its enqueue must precede its success.
    // For distinct jobs the tie order is immaterial — the reconstructed
    // head time comes out identical either way.
    const bool next_is_arrival =
        arrive < served.size() &&
        served[arrive].job.arrival <= served[depart].depart;
    if (next_is_arrival) {
      ++depth;
      event(trace::EventKind::kEnqueue, served[arrive].job.arrival, arrive,
            served[arrive], /*value=*/0, depth);
      ++arrive;
    } else {
      --depth;
      event(trace::EventKind::kSuccess, served[depart].depart, depart,
            served[depart], /*value=*/0, depth);
      ++depart;
    }
  }
}

}  // namespace

FifoTraceResult run_fifo_trace(std::vector<TraceJob> jobs,
                               trace::TraceSink* trace) {
  std::stable_sort(jobs.begin(), jobs.end(),
                   [](const TraceJob& a, const TraceJob& b) {
                     return a.arrival < b.arrival;
                   });
  std::vector<ServedJob> served;
  served.reserve(jobs.size());
  TimeNs prev_depart = TimeNs::zero();
  bool first = true;
  for (const TraceJob& j : jobs) {
    CSMABW_REQUIRE(j.service >= TimeNs::zero(), "negative service time");
    const TimeNs start = first ? j.arrival : std::max(j.arrival, prev_depart);
    const TimeNs depart = start + j.service;
    served.push_back(ServedJob{j, start, depart});
    prev_depart = depart;
    first = false;
  }
  if (trace != nullptr) {
    emit_fifo_events(served, *trace);
  }
  return FifoTraceResult(std::move(served));
}

}  // namespace csmabw::queueing
