#include "queueing/fifo_trace.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace csmabw::queueing {

FifoTraceResult::FifoTraceResult(std::vector<ServedJob> jobs)
    : jobs_(std::move(jobs)) {
  // Precompute maximal busy periods: a busy period extends while the next
  // arrival happens at or before the current backlog drains.
  for (const auto& sj : jobs_) {
    if (busy_.empty() || sj.job.arrival > busy_.back().second) {
      busy_.emplace_back(sj.job.arrival, sj.depart);
    } else {
      busy_.back().second = std::max(busy_.back().second, sj.depart);
    }
  }
}

TimeNs FifoTraceResult::workload_at(TimeNs t) const {
  // Last job with arrival <= t.
  const auto it = std::upper_bound(
      jobs_.begin(), jobs_.end(), t,
      [](TimeNs v, const ServedJob& j) { return v < j.job.arrival; });
  if (it == jobs_.begin()) {
    return TimeNs::zero();
  }
  const TimeNs last_depart = std::prev(it)->depart;
  return last_depart > t ? last_depart - t : TimeNs::zero();
}

int FifoTraceResult::queue_length_at(TimeNs t) const {
  // Jobs arrive in order; departures are also non-decreasing under FIFO.
  const auto arrived = std::upper_bound(
      jobs_.begin(), jobs_.end(), t,
      [](TimeNs v, const ServedJob& j) { return v < j.job.arrival; });
  const auto departed = std::upper_bound(
      jobs_.begin(), jobs_.end(), t,
      [](TimeNs v, const ServedJob& j) { return v < j.depart; });
  return static_cast<int>(arrived - jobs_.begin()) -
         static_cast<int>(departed - jobs_.begin());
}

double FifoTraceResult::utilization(TimeNs from, TimeNs to) const {
  CSMABW_REQUIRE(to > from, "interval must be non-empty");
  TimeNs busy = TimeNs::zero();
  for (const auto& [b, e] : busy_) {
    const TimeNs lo = std::max(b, from);
    const TimeNs hi = std::min(e, to);
    if (hi > lo) {
      busy += hi - lo;
    }
  }
  return busy.to_seconds() / (to - from).to_seconds();
}

TimeNs FifoTraceResult::offered_workload_at(TimeNs t) const {
  TimeNs x = TimeNs::zero();
  for (const auto& sj : jobs_) {
    if (sj.job.arrival > t) {
      break;
    }
    x += sj.job.service;
  }
  return x;
}

double FifoTraceResult::offered_rate(TimeNs from, TimeNs to) const {
  CSMABW_REQUIRE(to > from, "interval must be non-empty");
  const TimeNs dx = offered_workload_at(to) - offered_workload_at(from);
  return dx.to_seconds() / (to - from).to_seconds();
}

FifoTraceResult run_fifo_trace(std::vector<TraceJob> jobs) {
  std::stable_sort(jobs.begin(), jobs.end(),
                   [](const TraceJob& a, const TraceJob& b) {
                     return a.arrival < b.arrival;
                   });
  std::vector<ServedJob> served;
  served.reserve(jobs.size());
  TimeNs prev_depart = TimeNs::zero();
  bool first = true;
  for (const TraceJob& j : jobs) {
    CSMABW_REQUIRE(j.service >= TimeNs::zero(), "negative service time");
    const TimeNs start = first ? j.arrival : std::max(j.arrival, prev_depart);
    const TimeNs depart = start + j.service;
    served.push_back(ServedJob{j, start, depart});
    prev_depart = depart;
    first = false;
  }
  return FifoTraceResult(std::move(served));
}

}  // namespace csmabw::queueing
