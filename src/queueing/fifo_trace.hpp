#pragma once

#include <span>
#include <vector>

#include "trace/event.hpp"
#include "util/time.hpp"

namespace csmabw::queueing {

/// One job offered to the trace-driven FIFO queue.
struct TraceJob {
  TimeNs arrival;
  TimeNs service;
  int flow = 0;
};

/// A served job: FIFO start and departure instants.
struct ServedJob {
  TraceJob job;
  TimeNs start;   ///< service began (head of queue reached)
  TimeNs depart;  ///< service completed

  [[nodiscard]] TimeNs wait() const { return start - job.arrival; }
  [[nodiscard]] TimeNs sojourn() const { return depart - job.arrival; }
};

/// Result of running a job trace through a work-conserving FIFO queue.
///
/// This is the reimplementation of the paper's Matlab queueing simulator
/// (Appendix A): it convolves an arrival sequence with a service-time
/// sequence and exposes the sample-path processes of Section 5.1 —
/// hop workload W(t), utilization U(t)/u_fifo(t, t+tau), queue length —
/// for any mix of probe and cross-traffic jobs.
class FifoTraceResult {
 public:
  explicit FifoTraceResult(std::vector<ServedJob> jobs);

  [[nodiscard]] const std::vector<ServedJob>& jobs() const { return jobs_; }

  /// Hop workload W(t): unfinished work in the queue at time t (service
  /// time of queued jobs + residual of the job in service).  Eq. (6)'s
  /// underlying process.  For a work-conserving FIFO queue this is
  /// max(0, D_k - t) with D_k the departure of the last job arrived <= t.
  [[nodiscard]] TimeNs workload_at(TimeNs t) const;

  /// Number of jobs with arrival <= t < depart (queue + in service).
  [[nodiscard]] int queue_length_at(TimeNs t) const;

  /// Fraction of [from, to) during which the queue was busy — the
  /// paper's u_fifo(t, t+tau), Eq. (9).
  [[nodiscard]] double utilization(TimeNs from, TimeNs to) const;

  /// Offered workload X(t): cumulative service time of jobs arrived in
  /// [0, t], Eq. (10)'s X process.
  [[nodiscard]] TimeNs offered_workload_at(TimeNs t) const;

  /// Y(t, t+tau) = (X(t+tau) - X(t)) / tau, Eq. (10).
  [[nodiscard]] double offered_rate(TimeNs from, TimeNs to) const;

  /// Maximal busy periods [start, end) of the queue.
  [[nodiscard]] const std::vector<std::pair<TimeNs, TimeNs>>& busy_periods()
      const {
    return busy_;
  }

 private:
  std::vector<ServedJob> jobs_;  // sorted by arrival (== service order)
  std::vector<std::pair<TimeNs, TimeNs>> busy_;
};

/// Runs `jobs` (any order; stable-sorted by arrival, ties keep input
/// order) through the FIFO queue via the Lindley recursion.
///
/// A non-null `trace` receives the queue's event stream in time order —
/// kEnqueue at each arrival, kSuccess at each departure (aux = the
/// departure instant) and kQueueDepth after every change — so the
/// offline Appendix-A queue emits the same event vocabulary as the live
/// DCF simulator and its traces replay through the same tools.  Jobs
/// are numbered 1.. in service order (packet id; seq is 0-based); the
/// station id is always 0, `flow` carries TraceJob::flow, and the
/// kEnqueue `value` is 0 (a job has a service time, not a byte size),
/// so packets reconstructed from a FIFO trace have size_bytes == 0.
[[nodiscard]] FifoTraceResult run_fifo_trace(
    std::vector<TraceJob> jobs, trace::TraceSink* trace = nullptr);

}  // namespace csmabw::queueing
