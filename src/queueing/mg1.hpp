#pragma once

#include "util/require.hpp"

namespace csmabw::queueing {

/// Closed-form M/G/1 results (Pollaczek-Khinchine) used to validate the
/// trace-driven simulator and to reason about the FIFO stage of the
/// paper's model (a WLAN transmission queue is an M/G/1 queue whose
/// service time is the access delay).
struct Mg1 {
  double lambda = 0.0;      ///< arrivals per second
  double mean_service = 0.0;  ///< E[S], seconds
  double var_service = 0.0;   ///< Var[S], seconds^2

  [[nodiscard]] double utilization() const { return lambda * mean_service; }

  /// Mean waiting time in queue (excluding service), seconds.
  [[nodiscard]] double mean_wait() const {
    const double rho = utilization();
    CSMABW_REQUIRE(lambda > 0.0 && mean_service > 0.0,
                   "need positive arrival and service rates");
    CSMABW_REQUIRE(rho < 1.0, "M/G/1 is unstable at rho >= 1");
    const double es2 =
        var_service + mean_service * mean_service;  // E[S^2]
    return lambda * es2 / (2.0 * (1.0 - rho));
  }

  /// Mean sojourn time (wait + service), seconds.
  [[nodiscard]] double mean_sojourn() const {
    return mean_wait() + mean_service;
  }

  /// Mean number in queue (excluding service), by Little's law.
  [[nodiscard]] double mean_queue_length() const {
    return lambda * mean_wait();
  }
  /// Mean number in system.
  [[nodiscard]] double mean_in_system() const {
    return lambda * mean_sojourn();
  }

  /// M/M/1 special case: exponential service with the given mean.
  [[nodiscard]] static Mg1 mm1(double lambda, double mean_service) {
    return Mg1{lambda, mean_service, mean_service * mean_service};
  }
  /// M/D/1 special case: deterministic service.
  [[nodiscard]] static Mg1 md1(double lambda, double service) {
    return Mg1{lambda, service, 0.0};
  }
};

}  // namespace csmabw::queueing
