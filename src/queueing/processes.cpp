#include "queueing/processes.hpp"

#include "util/require.hpp"

namespace csmabw::queueing {

std::vector<double> intrusion_residual_sampled(
    const FifoTraceResult& with_probe, const FifoTraceResult& cross_only,
    std::span<const TimeNs> probe_arrivals) {
  std::vector<double> r;
  r.reserve(probe_arrivals.size());
  for (TimeNs a : probe_arrivals) {
    // Sample just before the arrival: W~ and W are right-continuous step
    // functions of arrivals, so exclude anything arriving exactly at a.
    const TimeNs eps = TimeNs::ns(1);
    const TimeNs wd =
        with_probe.workload_at(a - eps) - cross_only.workload_at(a - eps);
    // The minuend includes the elapsed nanosecond; both terms do, so the
    // difference is unaffected.
    r.push_back(wd.to_seconds());
  }
  return r;
}

std::vector<double> intrusion_residual_recursive(
    std::span<const double> mu_s, std::span<const double> u_fifo_between,
    double gap_s) {
  CSMABW_REQUIRE(!mu_s.empty(), "need at least one probe packet");
  CSMABW_REQUIRE(u_fifo_between.size() + 1 >= mu_s.size(),
                 "need a utilization value per inter-arrival interval");
  CSMABW_REQUIRE(gap_s >= 0.0, "gap must be non-negative");
  std::vector<double> r(mu_s.size(), 0.0);
  for (std::size_t i = 1; i < mu_s.size(); ++i) {
    const double idle_share = 1.0 - u_fifo_between[i - 1];
    const double next = mu_s[i - 1] + r[i - 1] - idle_share * gap_s;
    r[i] = next > 0.0 ? next : 0.0;
  }
  return r;
}

std::vector<double> queueing_plus_access_delay(std::span<const double> mu_s,
                                               std::span<const double> r_s,
                                               std::span<const double> w_s) {
  CSMABW_REQUIRE(mu_s.size() == r_s.size() && r_s.size() == w_s.size(),
                 "process lengths must match");
  std::vector<double> z(mu_s.size());
  for (std::size_t i = 0; i < z.size(); ++i) {
    z[i] = mu_s[i] + r_s[i] + w_s[i];
  }
  return z;
}

double output_gap_s(std::span<const TimeNs> departures) {
  CSMABW_REQUIRE(departures.size() >= 2, "output gap needs >= 2 departures");
  const auto n = departures.size();
  return (departures[n - 1] - departures[0]).to_seconds() /
         static_cast<double>(n - 1);
}

double output_gap_identity18(double gap_s, std::span<const double> mu_s,
                             std::span<const double> r_s,
                             std::span<const double> w_s) {
  CSMABW_REQUIRE(mu_s.size() >= 2, "need >= 2 packets");
  CSMABW_REQUIRE(mu_s.size() == r_s.size() && r_s.size() == w_s.size(),
                 "process lengths must match");
  const auto n = mu_s.size();
  const double nm1 = static_cast<double>(n - 1);
  return gap_s + r_s[n - 1] / nm1 + (w_s[n - 1] - w_s[0]) / nm1 +
         (mu_s[n - 1] - mu_s[0]) / nm1;
}

double output_gap_identity19(const FifoTraceResult& with_probe,
                             const FifoTraceResult& cross_only,
                             std::span<const TimeNs> probe_arrivals,
                             std::span<const TimeNs> probe_departures,
                             std::span<const double> mu_s) {
  const auto n = probe_arrivals.size();
  CSMABW_REQUIRE(n >= 2, "need >= 2 packets");
  CSMABW_REQUIRE(probe_departures.size() == n && mu_s.size() == n,
                 "process lengths must match");
  const double nm1 = static_cast<double>(n - 1);

  double service = 0.0;
  for (std::size_t i = 1; i < n; ++i) {
    service += mu_s[i];
  }
  const double dx = (cross_only.offered_workload_at(probe_arrivals[n - 1]) -
                     cross_only.offered_workload_at(probe_arrivals[0]))
                        .to_seconds();
  const double u_tilde =
      with_probe.utilization(probe_departures[0], probe_departures[n - 1]);
  const double go_actual =
      (probe_departures[n - 1] - probe_departures[0]).to_seconds() / nm1;
  return (service + dx) / nm1 + (1.0 - u_tilde) * go_actual;
}

}  // namespace csmabw::queueing
