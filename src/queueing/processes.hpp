#pragma once

#include <span>
#include <vector>

#include "queueing/fifo_trace.hpp"
#include "util/time.hpp"

namespace csmabw::queueing {

/// Sample-path processes of the paper's analytical framework (Section 5)
/// evaluated on trace-driven FIFO runs.
///
/// Two runs of the same cross-traffic trace — once alone, once
/// superposed with the probing jobs — give the hop workload W(t) and the
/// superposed workload W~(t); their difference is the intrusion residual
/// W_d(t) (Eq. 12), sampled at probe arrivals to obtain {R_i} (Eq. 13).

/// R_i = W_d(a_i^-): the intrusion residual each probing packet finds on
/// arrival, from the two runs (Eq. 13).  `probe_arrivals` are the a_i.
/// The instant a_i^- is evaluated by excluding the arrival itself (the
/// workload is sampled just before the probe packet joins).
[[nodiscard]] std::vector<double> intrusion_residual_sampled(
    const FifoTraceResult& with_probe, const FifoTraceResult& cross_only,
    std::span<const TimeNs> probe_arrivals);

/// The recursive form of the intrusion residual (Eq. 14):
///
///   R_1 = 0
///   R_i = max(0, mu_{i-1} + R_{i-1} - (1 - u_fifo(a_{i-1}, a_i)) g_I)
///
/// where `mu_s` are the probe service (access-delay) times in seconds
/// and `u_fifo_between[i]` is the cross-traffic-only utilization of the
/// FIFO queue during (a_i, a_{i+1}].  All quantities in seconds.
[[nodiscard]] std::vector<double> intrusion_residual_recursive(
    std::span<const double> mu_s, std::span<const double> u_fifo_between,
    double gap_s);

/// Z_i = mu_i + R_i + W(a_i) (Eq. 15), in seconds.
[[nodiscard]] std::vector<double> queueing_plus_access_delay(
    std::span<const double> mu_s, std::span<const double> r_s,
    std::span<const double> w_s);

/// Output gap of a departure sequence (Eq. 16): (d_n - d_1) / (n - 1).
[[nodiscard]] double output_gap_s(std::span<const TimeNs> departures);

/// Eq. (18): g_O = g_I + R_n/(n-1) + (W(a_n) - W(a_1))/(n-1)
///                + (mu_n - mu_1)/(n-1).
/// Exact identity on any sample path; used to cross-check the simulator.
[[nodiscard]] double output_gap_identity18(double gap_s,
                                           std::span<const double> mu_s,
                                           std::span<const double> r_s,
                                           std::span<const double> w_s);

/// Eq. (19)'s busy-time decomposition of the dispersion window: between
/// d_1 and d_n the server spends exactly
///
///   sum_{i=2}^{n} mu_i            (probe service)
/// + X(a_n) - X(a_1)               (cross work arrived in (a_1, a_n])
///
/// busy on work that completes inside the window (FIFO guarantees both),
/// and the remainder idle:
///
///   g_O = (1/(n-1)) [ sum mu_i + dX ] + (1 - u~) g_O
///
/// with u~ the utilization of the superposed queue over (d_1, d_n].  The
/// paper approximates the last term with g_I (their Eq. 19); this
/// function evaluates the exact form and returns the reconstructed g_O,
/// which must equal the measured one on any sample path.
[[nodiscard]] double output_gap_identity19(
    const FifoTraceResult& with_probe, const FifoTraceResult& cross_only,
    std::span<const TimeNs> probe_arrivals,
    std::span<const TimeNs> probe_departures, std::span<const double> mu_s);

}  // namespace csmabw::queueing
