#include "serve/cache_key.hpp"

#include "serve/version.hpp"
#include "util/json.hpp"

namespace csmabw::serve {

namespace {

void append_field(std::string& out, std::string_view key,
                  std::string_view value) {
  out += key;
  out += '=';
  out += value;
  out += '|';
}

void append_field(std::string& out, std::string_view key, double value) {
  append_field(out, key, util::json_number(value));
}

void append_field(std::string& out, std::string_view key, std::int64_t value) {
  append_field(out, key, std::to_string(value));
}

void append_station(std::string& out, std::string_view key,
                    const core::StationSpec& station) {
  out += key;
  out += "={";
  out += station.traffic;
  out += '/';
  out += std::to_string(station.size_bytes);
  if (station.data_rate_bps.has_value()) {
    out += '@';
    out += util::json_number(*station.data_rate_bps);
  }
  out += "}|";
}

[[nodiscard]] std::string_view salt_or_default(std::string_view salt) {
  return salt.empty() ? kEngineVersionSalt : salt;
}

[[nodiscard]] CacheKey finish(std::string desc) {
  CacheKey key;
  key.digest = util::StableHash128().add(std::string_view(desc)).digest();
  key.desc = std::move(desc);
  return key;
}

}  // namespace

std::string canonical_scenario(const core::ScenarioConfig& cfg) {
  std::string out = "scenario{";
  const mac::PhyParams& phy = cfg.phy;
  append_field(out, "slot_ns", phy.slot_time.count());
  append_field(out, "sifs_ns", phy.sifs.count());
  append_field(out, "phy_header_ns", phy.phy_header.count());
  append_field(out, "data_rate_bps", phy.data_rate_bps);
  append_field(out, "basic_rate_bps", phy.basic_rate_bps);
  append_field(out, "cw_min", static_cast<std::int64_t>(phy.cw_min));
  append_field(out, "cw_max", static_cast<std::int64_t>(phy.cw_max));
  append_field(out, "retry_limit", static_cast<std::int64_t>(phy.retry_limit));
  append_field(out, "mac_header_bytes",
               static_cast<std::int64_t>(phy.mac_header_bytes));
  append_field(out, "ack_bytes", static_cast<std::int64_t>(phy.ack_bytes));
  append_field(out, "rts_bytes", static_cast<std::int64_t>(phy.rts_bytes));
  append_field(out, "cts_bytes", static_cast<std::int64_t>(phy.cts_bytes));
  append_field(out, "rts_threshold_bytes",
               static_cast<std::int64_t>(phy.rts_threshold_bytes));
  append_field(out, "immediate_access",
               static_cast<std::int64_t>(phy.immediate_access ? 1 : 0));
  append_field(out, "post_backoff",
               static_cast<std::int64_t>(phy.post_backoff ? 1 : 0));
  append_field(out, "use_eifs",
               static_cast<std::int64_t>(phy.use_eifs ? 1 : 0));
  append_field(out, "topology", cfg.topology);
  append_field(out, "contenders",
               static_cast<std::int64_t>(cfg.contenders.size()));
  for (const core::StationSpec& station : cfg.contenders) {
    append_station(out, "c", station);
  }
  if (cfg.fifo_cross.has_value()) {
    append_station(out, "fifo", *cfg.fifo_cross);
  }
  append_field(out, "seed", static_cast<std::int64_t>(cfg.seed));
  append_field(out, "warmup_ns", cfg.warmup.count());
  append_field(out, "probe_phase_mean_ns", cfg.probe_phase_mean.count());
  out += '}';
  return out;
}

CacheKey train_rep_key(const core::ScenarioConfig& scenario,
                       const traffic::TrainSpec& train,
                       bool sample_contender_queue, int repetition,
                       std::string_view salt) {
  std::string desc;
  append_field(desc, "salt", salt_or_default(salt));
  append_field(desc, "kind", "train");
  append_field(desc, "scenario", canonical_scenario(scenario));
  append_field(desc, "train_n", static_cast<std::int64_t>(train.n));
  append_field(desc, "train_size", static_cast<std::int64_t>(train.size_bytes));
  append_field(desc, "train_gap_ns", train.gap.count());
  append_field(desc, "sample_queue",
               static_cast<std::int64_t>(sample_contender_queue ? 1 : 0));
  append_field(desc, "rep", static_cast<std::int64_t>(repetition));
  return finish(std::move(desc));
}

CacheKey method_rep_key(const core::ScenarioConfig& scenario,
                        std::string_view method_spec, std::uint64_t rep_seed,
                        int repetition, std::string_view salt) {
  std::string desc;
  append_field(desc, "salt", salt_or_default(salt));
  append_field(desc, "kind", "method");
  append_field(desc, "scenario", canonical_scenario(scenario));
  append_field(desc, "method", method_spec);
  append_field(desc, "rep_seed", static_cast<std::int64_t>(rep_seed));
  append_field(desc, "rep", static_cast<std::int64_t>(repetition));
  return finish(std::move(desc));
}

}  // namespace csmabw::serve
