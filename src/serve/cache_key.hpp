#pragma once

// Content-addressed cache keys for campaign results.
//
// A key is a 128-bit stable hash (util::StableHash128 — no std::hash,
// identical across platforms and compilers) over a *canonical
// description* of everything a (cell, repetition) result depends on:
// the engine version salt, the fully resolved scenario configuration
// (PHY numerics, topology, every station's traffic spec, warm-up and
// phase parameters, the cell's scenario seed — which already encodes
// campaign_seed + cell index), the probe-train or method spec, and the
// repetition index.  The description string itself is kept alongside
// the digest: the cache stores it in every entry and compares it on
// lookup, so a 128-bit collision degrades to a miss, never to a wrong
// result.

#include <cstdint>
#include <string>
#include <string_view>

#include "core/scenario.hpp"
#include "traffic/probe_train.hpp"
#include "util/hash.hpp"

namespace csmabw::serve {

struct CacheKey {
  util::Digest128 digest;
  /// The canonical description the digest was computed over.
  std::string desc;

  /// 32 lowercase hex chars — the on-disk entry name.
  [[nodiscard]] std::string hex() const { return digest.hex(); }
};

/// Canonical, unambiguous text form of a fully resolved scenario
/// configuration: every field that influences the simulation, spelled
/// numerically (round-trip double formatting), including the seed.
/// Unlike ScenarioSpec::describe() this covers configs that never came
/// from the grammar (e.g. programmatic PHY overrides).
[[nodiscard]] std::string canonical_scenario(const core::ScenarioConfig& cfg);

/// Key of probe-train repetition `repetition` of a cell.
/// `sample_contender_queue` is part of the key because it changes the
/// record's content (the queue-at-arrival samples).  `salt` defaults to
/// the engine version salt; tests override it to prove that bumping the
/// salt invalidates every entry.
[[nodiscard]] CacheKey train_rep_key(
    const core::ScenarioConfig& scenario, const traffic::TrainSpec& train,
    bool sample_contender_queue, int repetition,
    std::string_view salt = {});

/// Key of measurement-method repetition `repetition` of a cell.
/// `rep_seed` is the repetition's transport/method seed
/// (exp::method_rep_seed); the scenario carries the cell seed.
[[nodiscard]] CacheKey method_rep_key(
    const core::ScenarioConfig& scenario, std::string_view method_spec,
    std::uint64_t rep_seed, int repetition, std::string_view salt = {});

}  // namespace csmabw::serve
