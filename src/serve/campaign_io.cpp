#include "serve/campaign_io.hpp"

#include "serve/cache_key.hpp"
#include "serve/version.hpp"
#include "util/hash.hpp"

namespace csmabw::serve {

std::uint64_t campaign_fingerprint(const exp::Campaign& campaign,
                                   CampaignKind kind,
                                   std::string_view extra) {
  util::StableHash128 hash;
  hash.add(kEngineVersionSalt);
  hash.add(static_cast<std::int64_t>(kind));
  hash.add(static_cast<std::int64_t>(campaign.campaign_seed()));
  hash.add(extra);
  hash.add(static_cast<std::int64_t>(campaign.cells().size()));
  for (const exp::Cell& cell : campaign.cells()) {
    hash.add(std::string_view(canonical_scenario(cell.scenario)));
    hash.add(cell.train.n);
    hash.add(cell.train.size_bytes);
    hash.add(cell.train.gap.count());
    hash.add(std::string_view(cell.method));
    hash.add(cell.repetitions);
  }
  return hash.digest().lo;
}

}  // namespace csmabw::serve
