#pragma once

// Serving options a campaign run carries into exp::run_train_campaign /
// exp::run_method_campaign: where to look results up (resume set, then
// content-addressed cache), where to persist completed repetitions
// (checkpoint writer), which slice of the work grid this process owns
// (--shard=I/N), and the counters/progress surface.
//
// All layers compose: a sharded process can simultaneously consult the
// cache, resume from its own checkpoint and persist new work.  Every
// combination preserves the engine's byte-identity contract, because
// records store the exact bits the accumulators consume and the
// accumulation order never depends on where a record came from.
//
// Serve accounting lives in the observability registry (obs/metrics):
// the engine binds `exp.reps.computed`, `exp.reps.cache_hit` and
// `exp.reps.resumed` counters on `metrics` at run start, and the cache
// and checkpoint writer emit their own `serve.*` metrics/spans when
// constructed with the same registry/profiler.

#include <cstdint>
#include <string>

#include "exp/progress.hpp"
#include "exp/sweep.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "serve/result_cache.hpp"
#include "serve/shard_file.hpp"

namespace csmabw::serve {

/// Serving configuration of one campaign run.  Everything optional and
/// non-owning; the default object reproduces the classic engine
/// behaviour exactly (compute every repetition, no persistence).
struct CampaignServeOptions {
  /// Content-addressed result cache; consulted per (cell, repetition)
  /// after the resume set, filled on every computed miss.
  ResultCache* cache = nullptr;
  /// Already-completed records (loaded checkpoint or merged shard
  /// files); served without touching cache or simulator.
  const ResultSet* resume = nullptr;
  /// Every completed repetition (computed or cache-served) is added
  /// here; the writer flushes atomically every N records.
  CheckpointWriter* checkpoint = nullptr;
  /// This process's slice of the fixed work ordering; {0, 1} = all.
  ShardSel shard{};
  /// Merge mode: throw instead of simulating when a repetition is
  /// covered by neither the resume set nor the cache.
  bool forbid_compute = false;
  /// Per-repetition progress: computed reps tick(), served reps
  /// tick_cached() — the reporter's ETA then reflects real work only.
  /// When set, the Runner must NOT also carry a progress pointer.
  exp::Progress* progress = nullptr;
  /// Metrics registry for `exp.reps.*` / per-rep histograms; null or
  /// disabled = no accounting (the engine output is identical either
  /// way — obs is purely observational).
  obs::Registry* metrics = nullptr;
  /// Span profiler for per-(cell,rep) jobs, scenario builds, checkpoint
  /// flushes and the shard merge; null = no spans.
  obs::Profiler* profiler = nullptr;

  [[nodiscard]] bool passthrough() const {
    return cache == nullptr && resume == nullptr && checkpoint == nullptr &&
           !shard.partitioned() && !forbid_compute && progress == nullptr &&
           metrics == nullptr && profiler == nullptr;
  }
};

/// Fingerprint binding a checkpoint/shard file to one campaign: hashes
/// the engine version salt, the campaign kind, the campaign seed,
/// every cell's canonical scenario + train/method spec + repetition
/// count, and `extra` (kind-specific knobs that change record content
/// or accumulation order, e.g. the train config's shard_size).
[[nodiscard]] std::uint64_t campaign_fingerprint(const exp::Campaign& campaign,
                                                 CampaignKind kind,
                                                 std::string_view extra);

}  // namespace csmabw::serve
