#include "serve/record.hpp"

#include <cstring>

#include "trace/format.hpp"

namespace csmabw::serve {

namespace {

using trace::format::get_u32;
using trace::format::get_u64;
using trace::format::put_u32;
using trace::format::put_u64;

/// Record payloads cap every element count at this; a corrupt length
/// field must fail decoding, not attempt a multi-GiB allocation.
constexpr std::uint32_t kMaxElements = 64u * 1024u * 1024u;

void put_f64(std::vector<unsigned char>& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void put_str(std::vector<unsigned char>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

/// Bounds-checked sequential reader over a payload.
struct Cursor {
  const unsigned char* data;
  std::size_t size;
  std::size_t pos = 0;

  [[nodiscard]] bool u32(std::uint32_t* out) {
    if (size - pos < 4) {
      return false;
    }
    *out = get_u32(data + pos);
    pos += 4;
    return true;
  }

  [[nodiscard]] bool f64(double* out) {
    if (size - pos < 8) {
      return false;
    }
    const std::uint64_t bits = get_u64(data + pos);
    std::memcpy(out, &bits, sizeof(*out));
    pos += 8;
    return true;
  }

  [[nodiscard]] bool f64_vec(std::vector<double>* out) {
    std::uint32_t n = 0;
    if (!u32(&n) || n > kMaxElements || size - pos < 8u * n) {
      return false;
    }
    out->resize(n);
    for (double& v : *out) {
      if (!f64(&v)) {
        return false;
      }
    }
    return true;
  }

  [[nodiscard]] bool str(std::string* out) {
    std::uint32_t n = 0;
    if (!u32(&n) || n > kMaxElements || size - pos < n) {
      return false;
    }
    out->assign(reinterpret_cast<const char*>(data + pos), n);
    pos += n;
    return true;
  }

  [[nodiscard]] bool done() const { return pos == size; }
};

}  // namespace

void encode_train_record(const TrainRepRecord& record,
                         std::vector<unsigned char>& out) {
  put_u32(out, record.dropped ? 1 : 0);
  put_u32(out, static_cast<std::uint32_t>(record.access_delays_s.size()));
  for (double v : record.access_delays_s) {
    put_f64(out, v);
  }
  put_f64(out, record.output_gap_s);
  put_u32(out, static_cast<std::uint32_t>(record.queue_at_arrival.size()));
  for (double v : record.queue_at_arrival) {
    put_f64(out, v);
  }
}

bool decode_train_record(const unsigned char* data, std::size_t size,
                         TrainRepRecord* out) {
  Cursor c{data, size};
  std::uint32_t dropped = 0;
  *out = TrainRepRecord{};
  if (!c.u32(&dropped) || dropped > 1) {
    return false;
  }
  out->dropped = dropped != 0;
  return c.f64_vec(&out->access_delays_s) && c.f64(&out->output_gap_s) &&
         c.f64_vec(&out->queue_at_arrival) && c.done();
}

void encode_method_record(const core::MeasurementReport& report,
                          std::vector<unsigned char>& out) {
  put_str(out, report.method);
  put_f64(out, report.estimate_bps);
  put_u32(out, static_cast<std::uint32_t>(report.trains_sent));
  put_u32(out, static_cast<std::uint32_t>(report.probes_sent));
  put_u32(out, static_cast<std::uint32_t>(report.trains_lost));
  put_u32(out, static_cast<std::uint32_t>(report.curve.points.size()));
  for (const core::RateResponsePoint& p : report.curve.points) {
    put_f64(out, p.input_bps);
    put_f64(out, p.output_bps);
  }
  put_u32(out, static_cast<std::uint32_t>(report.metrics.size()));
  for (const auto& [key, value] : report.metrics) {
    put_str(out, key);
    put_f64(out, value);
  }
}

bool decode_method_record(const unsigned char* data, std::size_t size,
                          core::MeasurementReport* out) {
  Cursor c{data, size};
  *out = core::MeasurementReport{};
  std::uint32_t trains = 0;
  std::uint32_t probes = 0;
  std::uint32_t lost = 0;
  if (!c.str(&out->method) || !c.f64(&out->estimate_bps) || !c.u32(&trains) ||
      !c.u32(&probes) || !c.u32(&lost)) {
    return false;
  }
  out->trains_sent = static_cast<int>(trains);
  out->probes_sent = static_cast<int>(probes);
  out->trains_lost = static_cast<int>(lost);
  std::uint32_t points = 0;
  if (!c.u32(&points) || points > kMaxElements) {
    return false;
  }
  out->curve.points.resize(points);
  for (core::RateResponsePoint& p : out->curve.points) {
    if (!c.f64(&p.input_bps) || !c.f64(&p.output_bps)) {
      return false;
    }
  }
  std::uint32_t metrics = 0;
  if (!c.u32(&metrics) || metrics > kMaxElements) {
    return false;
  }
  out->metrics.resize(metrics);
  for (auto& [key, value] : out->metrics) {
    if (!c.str(&key) || !c.f64(&value)) {
      return false;
    }
  }
  return c.done();
}

}  // namespace csmabw::serve
