#pragma once

// Per-(cell, repetition) result records — the unit of storage shared by
// all three serving layers (result cache entries, checkpoint files and
// process-shard files all carry the same payload encoding).
//
// A record captures exactly what the campaign engine feeds its per-cell
// accumulators, with doubles stored as their exact bit patterns, so a
// record served from disk reproduces the engine's merged statistics —
// and therefore every CSV/JSONL byte — identically to a live run.

#include <cstdint>
#include <vector>

#include "core/method.hpp"

namespace csmabw::serve {

/// One probe-train repetition, as consumed by exp::run_train_campaign's
/// accumulation: the dropped flag, per-packet access delays, the
/// train's output gap, and (when sampled) contender 0's queue length at
/// each probe arrival.  For dropped repetitions only the flag is
/// meaningful (the engine skips everything else).
struct TrainRepRecord {
  bool dropped = false;
  std::vector<double> access_delays_s;
  double output_gap_s = 0.0;
  std::vector<double> queue_at_arrival;

  friend bool operator==(const TrainRepRecord&,
                         const TrainRepRecord&) = default;
};

/// Appends the record's binary payload (little-endian, doubles as raw
/// bit patterns) to `out`.
void encode_train_record(const TrainRepRecord& record,
                         std::vector<unsigned char>& out);

/// Decodes a payload produced by encode_train_record; returns false on
/// truncation or trailing garbage (callers treat that as a cache miss
/// or a corrupt-file hard error, depending on the layer).
[[nodiscard]] bool decode_train_record(const unsigned char* data,
                                       std::size_t size,
                                       TrainRepRecord* out);

/// Appends a measurement-method repetition's full report.
void encode_method_record(const core::MeasurementReport& report,
                          std::vector<unsigned char>& out);

[[nodiscard]] bool decode_method_record(const unsigned char* data,
                                        std::size_t size,
                                        core::MeasurementReport* out);

}  // namespace csmabw::serve
