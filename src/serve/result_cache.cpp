#include "serve/result_cache.hpp"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "trace/format.hpp"
#include "util/require.hpp"

namespace csmabw::serve {

namespace {

constexpr char kCacheMagic[4] = {'C', 'C', 'R', 'S'};
constexpr std::uint16_t kCacheFormatVersion = 1;
/// Plausibility cap enforced before allocating from a length field.
constexpr std::uint32_t kMaxEntryBytes = 256u * 1024u * 1024u;

using trace::format::get_u16;
using trace::format::get_u32;
using trace::format::get_u64;
using trace::format::put_u16;
using trace::format::put_u32;
using trace::format::put_u64;

/// Reads a whole file; returns false when it does not exist or cannot
/// be read (both are cache misses).
bool read_file(const std::string& path, std::vector<unsigned char>* out) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return false;
  }
  const std::streamoff size = in.tellg();
  if (size < 0) {
    return false;
  }
  out->resize(static_cast<std::size_t>(size));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(out->data()),
          static_cast<std::streamsize>(out->size()));
  return static_cast<bool>(in);
}

}  // namespace

ResultCache::ResultCache(std::string root, obs::Registry* metrics,
                         obs::Profiler* profiler)
    : root_(std::move(root)),
      own_metrics_(metrics == nullptr ? std::make_unique<obs::Registry>()
                                      : nullptr),
      metrics_(metrics == nullptr ? own_metrics_.get() : metrics),
      profiler_(profiler),
      hit_(metrics_->counter("serve.cache.hit")),
      miss_(metrics_->counter("serve.cache.miss")),
      store_(metrics_->counter("serve.cache.store")),
      read_bytes_(metrics_->counter("serve.cache.read_bytes")),
      write_bytes_(metrics_->counter("serve.cache.write_bytes")),
      lookup_ns_(metrics_->histogram("serve.cache.lookup_ns",
                                     obs::Determinism::kWallTime)),
      store_ns_(metrics_->histogram("serve.cache.store_ns",
                                    obs::Determinism::kWallTime)) {
  CSMABW_REQUIRE(!root_.empty(), "cache root must be non-empty");
  std::filesystem::create_directories(root_);
}

std::int64_t ResultCache::hits() const {
  return metrics_->value("serve.cache.hit");
}

std::int64_t ResultCache::misses() const {
  return metrics_->value("serve.cache.miss");
}

std::int64_t ResultCache::stores() const {
  return metrics_->value("serve.cache.store");
}

std::int64_t ResultCache::bytes_read() const {
  return metrics_->value("serve.cache.read_bytes");
}

std::int64_t ResultCache::bytes_written() const {
  return metrics_->value("serve.cache.write_bytes");
}

std::string ResultCache::entry_path(const CacheKey& key) const {
  const std::string hex = key.hex();
  std::string path = root_;
  if (path.back() != '/') {
    path += '/';
  }
  path += hex.substr(0, 2);
  path += '/';
  path += hex.substr(2);
  path += ".ccres";
  return path;
}

std::optional<std::vector<unsigned char>> ResultCache::lookup(
    const CacheKey& key) {
  obs::ScopedSpan span(profiler_, "serve.cache.lookup");
  obs::ScopedTimer timer(lookup_ns_);
  std::vector<unsigned char> bytes;
  if (!read_file(entry_path(key), &bytes)) {
    miss_.add();
    return std::nullopt;
  }
  // Fixed prefix: magic(4) version(2) reserved(2) key(16) desc_len(4).
  if (bytes.size() >= 8) {
    CSMABW_REQUIRE(std::equal(kCacheMagic, kCacheMagic + 4, bytes.begin()),
                   "not a csmabw result-cache entry: " + entry_path(key));
    const std::uint16_t version = get_u16(bytes.data() + 4);
    CSMABW_REQUIRE(version == kCacheFormatVersion,
                   "result-cache entry format version " +
                       std::to_string(version) + " != " +
                       std::to_string(kCacheFormatVersion) +
                       " — clear the cache directory: " + entry_path(key));
  }
  const auto miss = [&]() -> std::optional<std::vector<unsigned char>> {
    miss_.add();
    return std::nullopt;
  };
  if (bytes.size() < 28) {
    return miss();  // torn header
  }
  if (get_u64(bytes.data() + 8) != key.digest.hi ||
      get_u64(bytes.data() + 16) != key.digest.lo) {
    return miss();  // entry written for a different key (corruption)
  }
  const std::uint32_t desc_len = get_u32(bytes.data() + 24);
  if (desc_len > kMaxEntryBytes || bytes.size() < 32u + desc_len) {
    return miss();
  }
  const std::string_view desc(
      reinterpret_cast<const char*>(bytes.data() + 28), desc_len);
  if (desc != key.desc) {
    return miss();  // 128-bit collision: degrade to a miss, never serve
  }
  const std::size_t payload_at = 28u + desc_len;
  const std::uint32_t payload_len = get_u32(bytes.data() + payload_at);
  if (payload_len > kMaxEntryBytes ||
      bytes.size() != payload_at + 4u + payload_len) {
    return miss();  // truncated or trailing garbage
  }
  hit_.add();
  read_bytes_.add(static_cast<std::int64_t>(bytes.size()));
  return std::vector<unsigned char>(
      bytes.begin() + static_cast<std::ptrdiff_t>(payload_at + 4),
      bytes.end());
}

void ResultCache::store(const CacheKey& key,
                        const std::vector<unsigned char>& payload) {
  obs::ScopedSpan span(profiler_, "serve.cache.store");
  obs::ScopedTimer timer(store_ns_);
  CSMABW_REQUIRE(payload.size() <= kMaxEntryBytes,
                 "cache payload exceeds the entry size cap");
  std::vector<unsigned char> bytes;
  bytes.reserve(32 + key.desc.size() + payload.size());
  for (char c : kCacheMagic) {
    bytes.push_back(static_cast<unsigned char>(c));
  }
  put_u16(bytes, kCacheFormatVersion);
  put_u16(bytes, 0);  // reserved
  put_u64(bytes, key.digest.hi);
  put_u64(bytes, key.digest.lo);
  put_u32(bytes, static_cast<std::uint32_t>(key.desc.size()));
  bytes.insert(bytes.end(), key.desc.begin(), key.desc.end());
  put_u32(bytes, static_cast<std::uint32_t>(payload.size()));
  bytes.insert(bytes.end(), payload.begin(), payload.end());

  const std::string path = entry_path(key);
  const std::filesystem::path target(path);
  std::filesystem::create_directories(target.parent_path());
  // Unique temp name per store: concurrent writers never collide, and
  // the final rename is atomic within the shard directory.
  const std::uint64_t n =
      temp_counter_.fetch_add(1, std::memory_order_relaxed);
  const std::string temp =
      path + ".tmp." + std::to_string(::getpid()) + "." + std::to_string(n);
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    CSMABW_REQUIRE(static_cast<bool>(out),
                   "cannot open cache temp file: " + temp);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    CSMABW_REQUIRE(static_cast<bool>(out),
                   "cache write failed: " + temp);
  }
  std::filesystem::rename(temp, target);
  store_.add();
  write_bytes_.add(static_cast<std::int64_t>(bytes.size()));
}

}  // namespace csmabw::serve
