#pragma once

// Content-addressed on-disk result cache.
//
// Layout: one file per entry, sharded by the first key byte —
//
//   <root>/ab/cdef0123...89.ccres
//
// where "abcdef...89" is the key's 32-hex-char 128-bit digest.  Entry
// format (all little-endian):
//
//   magic "CCRS" | u16 version | u16 reserved
//   | u64 key_hi | u64 key_lo
//   | u32 desc_len | desc bytes       (the full canonical key string)
//   | u32 payload_len | payload       (a serve/record.hpp payload)
//
// Stores are atomic (write to a unique temp file in the same shard
// directory, then rename), so readers never observe a torn entry.
// Lookup verifies the stored canonical description against the probe
// key: a 128-bit collision therefore degrades to a miss, never to a
// wrong result.  A magic/version mismatch is a hard error (the format
// changed; clear the cache directory), while a truncated or otherwise
// corrupt entry counts as a miss and is overwritten by the next store.
//
// Thread-safe: lookups and stores may run concurrently from campaign
// worker threads; concurrent stores of the same key both write
// identical bytes and the atomic rename picks one.

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "serve/cache_key.hpp"

namespace csmabw::serve {

class ResultCache {
 public:
  /// Opens (and creates if missing) the cache rooted at `root`.
  /// Hit/miss/store accounting goes to `metrics` under
  /// `serve.cache.*`; when null the cache owns a private registry so
  /// the accessors below always work.  `profiler` (optional) brackets
  /// each lookup/store in a span.
  explicit ResultCache(std::string root, obs::Registry* metrics = nullptr,
                       obs::Profiler* profiler = nullptr);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// The entry's payload on a hit; nullopt on a miss (absent, truncated
  /// or description-mismatched entry).  Throws util::PreconditionError
  /// when the entry's magic or format version does not match — a
  /// different or newer cache format must never be silently re-read.
  [[nodiscard]] std::optional<std::vector<unsigned char>> lookup(
      const CacheKey& key);

  /// Atomically persists `payload` under `key` (write-temp + rename).
  void store(const CacheKey& key, const std::vector<unsigned char>& payload);

  [[nodiscard]] const std::string& root() const { return root_; }

  /// Merged `serve.cache.*` counters.  Reads must not race with
  /// lookup/store calls (same contract as obs::Registry::value).
  [[nodiscard]] std::int64_t hits() const;
  [[nodiscard]] std::int64_t misses() const;
  [[nodiscard]] std::int64_t stores() const;
  [[nodiscard]] std::int64_t bytes_read() const;
  [[nodiscard]] std::int64_t bytes_written() const;

  /// The entry path for a key: `<root>/<hex[0:2]>/<hex[2:]>.ccres`.
  [[nodiscard]] std::string entry_path(const CacheKey& key) const;

 private:
  std::string root_;
  std::unique_ptr<obs::Registry> own_metrics_;  ///< fallback when unshared
  obs::Registry* metrics_;
  obs::Profiler* profiler_;
  obs::Counter hit_;
  obs::Counter miss_;
  obs::Counter store_;
  obs::Counter read_bytes_;
  obs::Counter write_bytes_;
  obs::Histogram lookup_ns_;
  obs::Histogram store_ns_;
  std::atomic<std::uint64_t> temp_counter_{0};
};

}  // namespace csmabw::serve
