#pragma once

// Content-addressed on-disk result cache.
//
// Layout: one file per entry, sharded by the first key byte —
//
//   <root>/ab/cdef0123...89.ccres
//
// where "abcdef...89" is the key's 32-hex-char 128-bit digest.  Entry
// format (all little-endian):
//
//   magic "CCRS" | u16 version | u16 reserved
//   | u64 key_hi | u64 key_lo
//   | u32 desc_len | desc bytes       (the full canonical key string)
//   | u32 payload_len | payload       (a serve/record.hpp payload)
//
// Stores are atomic (write to a unique temp file in the same shard
// directory, then rename), so readers never observe a torn entry.
// Lookup verifies the stored canonical description against the probe
// key: a 128-bit collision therefore degrades to a miss, never to a
// wrong result.  A magic/version mismatch is a hard error (the format
// changed; clear the cache directory), while a truncated or otherwise
// corrupt entry counts as a miss and is overwritten by the next store.
//
// Thread-safe: lookups and stores may run concurrently from campaign
// worker threads; concurrent stores of the same key both write
// identical bytes and the atomic rename picks one.

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "serve/cache_key.hpp"

namespace csmabw::serve {

struct CacheCounters {
  std::atomic<std::int64_t> hits{0};
  std::atomic<std::int64_t> misses{0};
  std::atomic<std::int64_t> stores{0};
  std::atomic<std::int64_t> bytes_read{0};
  std::atomic<std::int64_t> bytes_written{0};
};

class ResultCache {
 public:
  /// Opens (and creates if missing) the cache rooted at `root`.
  explicit ResultCache(std::string root);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// The entry's payload on a hit; nullopt on a miss (absent, truncated
  /// or description-mismatched entry).  Throws util::PreconditionError
  /// when the entry's magic or format version does not match — a
  /// different or newer cache format must never be silently re-read.
  [[nodiscard]] std::optional<std::vector<unsigned char>> lookup(
      const CacheKey& key);

  /// Atomically persists `payload` under `key` (write-temp + rename).
  void store(const CacheKey& key, const std::vector<unsigned char>& payload);

  [[nodiscard]] const std::string& root() const { return root_; }
  [[nodiscard]] const CacheCounters& counters() const { return counters_; }

  /// The entry path for a key: `<root>/<hex[0:2]>/<hex[2:]>.ccres`.
  [[nodiscard]] std::string entry_path(const CacheKey& key) const;

 private:
  std::string root_;
  CacheCounters counters_;
  std::atomic<std::uint64_t> temp_counter_{0};
};

}  // namespace csmabw::serve
