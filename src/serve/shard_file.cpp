#include "serve/shard_file.hpp"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "trace/format.hpp"
#include "util/require.hpp"

namespace csmabw::serve {

namespace {

constexpr char kShardMagic[4] = {'C', 'C', 'S', 'H'};
constexpr std::uint16_t kShardFormatVersion = 1;
constexpr std::uint32_t kRecordMagic = 0x44525343;  // "CSRD"
constexpr std::uint32_t kMaxRecordBytes = 256u * 1024u * 1024u;
constexpr std::uint32_t kMaxLabelBytes = 1024u * 1024u;

using trace::format::get_i32;
using trace::format::get_u16;
using trace::format::get_u32;
using trace::format::get_u64;
using trace::format::put_i32;
using trace::format::put_u16;
using trace::format::put_u32;
using trace::format::put_u64;

}  // namespace

void ResultSet::put(int cell, int repetition,
                    std::vector<unsigned char> payload) {
  records_[{cell, repetition}] = std::move(payload);
}

const std::vector<unsigned char>* ResultSet::find(int cell,
                                                  int repetition) const {
  const auto it = records_.find({cell, repetition});
  return it == records_.end() ? nullptr : &it->second;
}

void load_shard_file(const std::string& path, CampaignKind expected_kind,
                     std::uint64_t expected_fingerprint, ResultSet* into) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  CSMABW_REQUIRE(static_cast<bool>(in),
                 "cannot open shard/checkpoint file: " + path);
  const std::streamoff stream_size = in.tellg();
  CSMABW_REQUIRE(stream_size >= 0, "cannot stat shard file: " + path);
  std::vector<unsigned char> bytes(static_cast<std::size_t>(stream_size));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  CSMABW_REQUIRE(static_cast<bool>(in), "cannot read shard file: " + path);

  // Header: magic(4) version(2) kind(2) fingerprint(8) label_len(4).
  CSMABW_REQUIRE(bytes.size() >= 20,
                 "shard file too short for a header: " + path);
  CSMABW_REQUIRE(std::equal(kShardMagic, kShardMagic + 4, bytes.begin()),
                 "not a csmabw shard/checkpoint file: " + path);
  const std::uint16_t version = get_u16(bytes.data() + 4);
  CSMABW_REQUIRE(version == kShardFormatVersion,
                 "shard file format version " + std::to_string(version) +
                     " != " + std::to_string(kShardFormatVersion) + ": " +
                     path);
  const std::uint16_t kind = get_u16(bytes.data() + 6);
  CSMABW_REQUIRE(kind == static_cast<std::uint16_t>(expected_kind),
                 "shard file records a different campaign kind: " + path);
  const std::uint64_t fingerprint = get_u64(bytes.data() + 8);
  CSMABW_REQUIRE(
      fingerprint == expected_fingerprint,
      "shard file belongs to a different campaign (fingerprint mismatch "
      "— grid, seed, spec or engine version salt changed): " +
          path);
  const std::uint32_t label_len = get_u32(bytes.data() + 16);
  CSMABW_REQUIRE(label_len <= kMaxLabelBytes,
                 "shard file label length implausible: " + path);
  std::size_t pos = 20u + label_len;
  CSMABW_REQUIRE(bytes.size() >= pos, "shard file label truncated: " + path);

  // Records: a torn tail (crash mid-write of a non-atomic copy, or a
  // deliberately truncated file) ends the load at the last complete
  // record — resume then recomputes the remainder.
  while (bytes.size() - pos >= 16) {
    if (get_u32(bytes.data() + pos) != kRecordMagic) {
      break;  // trailing garbage: stop at the last clean record
    }
    const int cell = get_i32(bytes.data() + pos + 4);
    const int rep = get_i32(bytes.data() + pos + 8);
    const std::uint32_t payload_len = get_u32(bytes.data() + pos + 12);
    if (payload_len > kMaxRecordBytes ||
        bytes.size() - pos - 16 < payload_len) {
      break;  // torn record
    }
    if (cell < 0 || rep < 0) {
      break;
    }
    into->put(cell, rep,
              std::vector<unsigned char>(
                  bytes.begin() + static_cast<std::ptrdiff_t>(pos + 16),
                  bytes.begin() +
                      static_cast<std::ptrdiff_t>(pos + 16 + payload_len)));
    pos += 16u + payload_len;
  }
}

CheckpointWriter::CheckpointWriter(std::string path, CampaignKind kind,
                                   std::uint64_t fingerprint,
                                   std::string label, int flush_every)
    : path_(std::move(path)),
      kind_(kind),
      fingerprint_(fingerprint),
      label_(std::move(label)),
      flush_every_(flush_every) {
  CSMABW_REQUIRE(!path_.empty(), "checkpoint path must be non-empty");
  CSMABW_REQUIRE(flush_every_ >= 1, "checkpoint flush_every must be >= 1");
  CSMABW_REQUIRE(label_.size() <= kMaxLabelBytes, "checkpoint label too long");
  const std::filesystem::path parent =
      std::filesystem::path(path_).parent_path();
  if (!parent.empty()) {
    std::filesystem::create_directories(parent);
  }
}

void CheckpointWriter::preload(const ResultSet& completed) {
  std::scoped_lock lock(mu_);
  for (const auto& [id, payload] : completed.records()) {
    set_.put(id.first, id.second, payload);
  }
}

void CheckpointWriter::bind_obs(obs::Registry* metrics,
                                obs::Profiler* profiler) {
  profiler_ = profiler;
  if (metrics != nullptr) {
    flush_count_ = metrics->counter("serve.checkpoint.flush");
    flush_ns_ = metrics->histogram("serve.checkpoint.flush_ns",
                                   obs::Determinism::kWallTime);
  }
}

void CheckpointWriter::add(int cell, int repetition,
                           std::vector<unsigned char> payload) {
  std::scoped_lock lock(mu_);
  set_.put(cell, repetition, std::move(payload));
  if (++pending_ >= flush_every_) {
    flush_locked();
  }
}

void CheckpointWriter::flush() {
  std::scoped_lock lock(mu_);
  if (pending_ > 0 || flushes_ == 0) {
    flush_locked();
  }
}

std::size_t CheckpointWriter::records() const {
  std::scoped_lock lock(mu_);
  return set_.size();
}

void CheckpointWriter::flush_locked() {
  obs::ScopedSpan span(profiler_, "serve.checkpoint.flush");
  obs::ScopedTimer timer(flush_ns_);
  std::vector<unsigned char> bytes;
  for (char c : kShardMagic) {
    bytes.push_back(static_cast<unsigned char>(c));
  }
  put_u16(bytes, kShardFormatVersion);
  put_u16(bytes, static_cast<std::uint16_t>(kind_));
  put_u64(bytes, fingerprint_);
  put_u32(bytes, static_cast<std::uint32_t>(label_.size()));
  bytes.insert(bytes.end(), label_.begin(), label_.end());
  for (const auto& [id, payload] : set_.records()) {
    put_u32(bytes, kRecordMagic);
    put_i32(bytes, id.first);
    put_i32(bytes, id.second);
    put_u32(bytes, static_cast<std::uint32_t>(payload.size()));
    bytes.insert(bytes.end(), payload.begin(), payload.end());
  }
  const std::string temp =
      path_ + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    CSMABW_REQUIRE(static_cast<bool>(out),
                   "cannot open checkpoint temp file: " + temp);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    CSMABW_REQUIRE(static_cast<bool>(out),
                   "checkpoint write failed: " + temp);
  }
  std::filesystem::rename(temp, path_);
  pending_ = 0;
  ++flushes_;
  flush_count_.add();
}

ShardSel parse_shard(const std::string& text) {
  const std::size_t slash = text.find('/');
  CSMABW_REQUIRE(slash != std::string::npos && slash > 0 &&
                     slash + 1 < text.size(),
                 "--shard expects I/N (e.g. 0/3), got `" + text + "`");
  ShardSel sel;
  try {
    std::size_t used = 0;
    sel.index = std::stoi(text.substr(0, slash), &used);
    CSMABW_REQUIRE(used == slash, "--shard index is not a number");
    sel.count = std::stoi(text.substr(slash + 1), &used);
    CSMABW_REQUIRE(used == text.size() - slash - 1,
                   "--shard count is not a number");
  } catch (const std::invalid_argument&) {
    CSMABW_REQUIRE(false, "--shard expects I/N (e.g. 0/3), got `" + text +
                              "`");
  } catch (const std::out_of_range&) {
    CSMABW_REQUIRE(false, "--shard value out of range: `" + text + "`");
  }
  CSMABW_REQUIRE(sel.count >= 1 && sel.index >= 0 && sel.index < sel.count,
                 "--shard needs 0 <= I < N, got `" + text + "`");
  return sel;
}

}  // namespace csmabw::serve
