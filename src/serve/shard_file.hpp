#pragma once

// Checkpoint and process-shard result files (".ccshard").
//
// One file holds a set of (cell, repetition) result records for one
// campaign — the same binary payloads as the result cache (see
// serve/record.hpp).  The same format serves two roles:
//
//  * **Checkpoint**: a running campaign persists every completed
//    repetition; after a crash, `--resume` reloads the file and only
//    the missing repetitions execute.
//  * **Process shard**: a `--shard=I/N` run writes its subset of the
//    grid; `--merge` loads all N files and reproduces the
//    single-process output byte-identically.
//
// Layout (all little-endian):
//
//   magic "CCSH" | u16 version | u16 kind (1 = train, 2 = method)
//   | u64 campaign_fingerprint | u32 label_len | label bytes
//   record*
//
//   record := u32 record_magic | i32 cell | i32 rep
//           | u32 payload_len | payload
//
// The campaign fingerprint (serve::campaign_fingerprint) hashes the
// engine version salt plus every cell's canonical scenario/spec, so
// resuming or merging against a different campaign is a hard error.
// Files are written atomically (write-temp + rename); a *torn* file —
// e.g. a checkpoint truncated by a crash mid-write — loads cleanly up
// to the last complete record and the rest is simply recomputed.
// A magic, version, kind or fingerprint mismatch always throws.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace csmabw::serve {

enum class CampaignKind : std::uint16_t { kTrain = 1, kMethod = 2 };

/// In-memory set of per-(cell, repetition) result payloads.
class ResultSet {
 public:
  void put(int cell, int repetition, std::vector<unsigned char> payload);

  /// The payload, or nullptr when absent.
  [[nodiscard]] const std::vector<unsigned char>* find(int cell,
                                                       int repetition) const;

  [[nodiscard]] std::size_t size() const { return records_.size(); }

  /// Records in (cell, repetition) order — the deterministic file order.
  [[nodiscard]] const std::map<std::pair<int, int>,
                               std::vector<unsigned char>>&
  records() const {
    return records_;
  }

 private:
  std::map<std::pair<int, int>, std::vector<unsigned char>> records_;
};

/// Loads a .ccshard file, tolerating a torn tail (the complete record
/// prefix is returned).  Throws util::PreconditionError when the file
/// is missing, is not a shard file, has a different format version, or
/// its kind/fingerprint do not match the expectation.  Records already
/// present in `*into` are overwritten (merge semantics: later files
/// win; identical campaigns produce identical records either way).
void load_shard_file(const std::string& path, CampaignKind expected_kind,
                     std::uint64_t expected_fingerprint, ResultSet* into);

/// Accumulating checkpoint/shard writer with periodic atomic flushes.
///
/// `add` is thread-safe (campaign workers call it concurrently); every
/// `flush_every` added records the full record set is rewritten to a
/// temp file and renamed over `path`, so the on-disk file is always a
/// complete prefix-consistent snapshot.  Call `flush()` once after the
/// campaign drains to persist the tail.
class CheckpointWriter {
 public:
  CheckpointWriter(std::string path, CampaignKind kind,
                   std::uint64_t fingerprint, std::string label,
                   int flush_every = 64);

  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  /// Seeds the writer with already-completed records (resume), so the
  /// rewritten file keeps them.  Not thread-safe; call before the run.
  void preload(const ResultSet& completed);

  /// Routes flush accounting to `metrics` (`serve.checkpoint.flush`,
  /// `serve.checkpoint.flush_ns`) and brackets each flush in a span on
  /// `profiler`.  Not thread-safe; call before the run.
  void bind_obs(obs::Registry* metrics, obs::Profiler* profiler);

  void add(int cell, int repetition, std::vector<unsigned char> payload);

  /// Writes the current record set atomically; idempotent.
  void flush();

  [[nodiscard]] std::size_t records() const;
  [[nodiscard]] std::int64_t flushes() const { return flushes_; }

 private:
  void flush_locked();

  std::string path_;
  CampaignKind kind_;
  std::uint64_t fingerprint_;
  std::string label_;
  int flush_every_;
  obs::Profiler* profiler_ = nullptr;
  obs::Counter flush_count_;
  obs::Histogram flush_ns_;
  mutable std::mutex mu_;
  ResultSet set_;
  int pending_ = 0;
  std::int64_t flushes_ = 0;
};

/// A `--shard=I/N` work partition: the fixed job ordering of the thread
/// runner (train work shards, method (cell, rep) jobs) is dealt
/// round-robin — ordinal o belongs to process o mod N.
struct ShardSel {
  int index = 0;
  int count = 1;

  [[nodiscard]] bool selects(int ordinal) const {
    return ordinal % count == index;
  }
  [[nodiscard]] bool partitioned() const { return count > 1; }
};

/// Parses "I/N" with 0 <= I < N; throws util::PreconditionError on
/// malformed input.
[[nodiscard]] ShardSel parse_shard(const std::string& text);

}  // namespace csmabw::serve
