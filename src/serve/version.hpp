#pragma once

// Fleet-scale campaign serving: engine version salt.
//
// Every content-addressed result cache key and every checkpoint/shard
// fingerprint mixes this salt in.  The engine guarantees that a
// (campaign_seed, cell, repetition) result is a pure function of its
// spec *for a fixed engine version* — any PR that changes simulated
// trajectories (MAC semantics, event ordering, RNG derivation, default
// parameters) MUST bump the salt, which atomically invalidates every
// existing cache entry and makes stale checkpoints/shards hard errors
// instead of silent wrong answers.  PRs that only add features, speed
// up code without changing trajectories (the PR-5 contract), or touch
// analysis/output layers do not bump it.

#include <string_view>

namespace csmabw::serve {

inline constexpr std::string_view kEngineVersionSalt = "csmabw-engine-v1";

}  // namespace csmabw::serve
