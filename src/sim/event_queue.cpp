#include "sim/event_queue.hpp"

#include "util/require.hpp"

namespace csmabw::sim {

void EventHandle::cancel() {
  if (state_ && !state_->fired) {
    state_->cancelled = true;
  }
}

bool EventHandle::scheduled() const {
  return state_ && !state_->fired && !state_->cancelled;
}

EventHandle EventQueue::schedule(TimeNs at, std::function<void()> fn) {
  CSMABW_REQUIRE(fn != nullptr, "cannot schedule a null event");
  auto state = std::make_shared<EventHandle::State>();
  heap_.push(Entry{at, next_seq_++, std::move(fn), state});
  ++live_;
  return EventHandle{std::move(state)};
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty() && heap_.top().state->cancelled) {
    heap_.pop();
    --live_;
  }
}

bool EventQueue::empty() const {
  drop_cancelled();
  return heap_.empty();
}

TimeNs EventQueue::next_time() const {
  drop_cancelled();
  CSMABW_REQUIRE(!heap_.empty(), "next_time() on an empty queue");
  return heap_.top().at;
}

TimeNs EventQueue::pop_and_run() {
  drop_cancelled();
  CSMABW_REQUIRE(!heap_.empty(), "pop_and_run() on an empty queue");
  // Move the entry out before running: the callback may schedule new
  // events and reallocate the heap.
  Entry e = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  --live_;
  e.state->fired = true;
  e.fn();
  return e.at;
}

}  // namespace csmabw::sim
