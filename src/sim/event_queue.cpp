#include "sim/event_queue.hpp"

#include <algorithm>

namespace csmabw::sim {

void EventHandle::cancel() {
  if (queue_ == nullptr) {
    return;
  }
  EventQueue::Slot& s = queue_->slot(slot_);
  if (s.gen != gen_ || s.invoke == nullptr) {
    return;  // already fired, cancelled, or slot recycled — no ABA
  }
  queue_->release_slot(slot_);
  --queue_->live_;
  ++queue_->stale_;  // its heap record is now dead weight
  // Schedule/cancel churn must not grow the heap without bound: once
  // stale records outnumber live ones, sweep them out.
  if (queue_->stale_ > queue_->live_ + 64) {
    queue_->compact();
  }
}

bool EventHandle::scheduled() const {
  if (queue_ == nullptr) {
    return false;
  }
  const EventQueue::Slot& s = queue_->slot(slot_);
  return s.gen == gen_ && s.invoke != nullptr;
}

EventQueue::~EventQueue() {
  if (live_ == 0) {
    return;  // nothing scheduled: no callback can need destruction
  }
  for (std::uint32_t idx = 0; idx < slots_used_; ++idx) {
    Slot& s = slot(idx);
    if (s.invoke != nullptr && s.destroy != nullptr) {
      s.destroy(s.storage);
    }
  }
}

std::uint32_t EventQueue::grow_slab() {
  CSMABW_REQUIRE(slots_used_ <= kSlotMask, "event slot space exhausted");
  if (slots_used_ == chunks_.size() * kChunkSlots) {
    // Default-initialized on purpose: a value-init (`new Slot[n]()`)
    // would memset 16 KiB per chunk.  Only gen (compared by handles
    // across a slot's whole lifetime) and invoke (the liveness flag)
    // need seeding; the other fields are written before first read.
    chunks_.emplace_back(new Slot[kChunkSlots]);
    ++allocations_;
    Slot* fresh = chunks_.back().get();
    for (std::uint32_t i = 0; i < kChunkSlots; ++i) {
      fresh[i].gen = 0;
      fresh[i].invoke = nullptr;
    }
  }
  return slots_used_++;
}

void EventQueue::compact() {
  auto dead = [this](const HeapRecord& r) { return stale(r); };
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(), dead), heap_.end());
  stale_ = 0;
  // Floyd heapify: sift down every internal node of the 4-ary heap.
  const std::size_t n = heap_.size();
  if (n < 2) {
    return;
  }
  for (std::size_t start = (n - 2) / 4 + 1; start-- > 0;) {
    const HeapRecord rec = heap_[start];
    std::size_t pos = start;
    for (;;) {
      const std::size_t child = 4 * pos + 1;
      if (child >= n) {
        break;
      }
      std::size_t m = child;
      const std::size_t end = child + 4 < n ? child + 4 : n;
      for (std::size_t c = child + 1; c < end; ++c) {
        if (earlier(heap_[c], heap_[m])) {
          m = c;
        }
      }
      if (!earlier(heap_[m], rec)) {
        break;
      }
      heap_[pos] = heap_[m];
      pos = m;
    }
    heap_[pos] = rec;
  }
}

}  // namespace csmabw::sim
