#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "util/time.hpp"

namespace csmabw::sim {

/// Handle to a scheduled event; allows cancellation.
///
/// Cancellation is lazy: the event stays in the heap but is skipped when
/// popped.  Handles are cheap to copy and safe to outlive the queue.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet.  Idempotent.
  void cancel();
  [[nodiscard]] bool scheduled() const;

 private:
  friend class EventQueue;
  struct State {
    bool cancelled = false;
    bool fired = false;
  };
  explicit EventHandle(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

/// Time-ordered event queue.
///
/// Events at equal times fire in scheduling order (FIFO tie-break via a
/// monotone sequence number) — deterministic replay requires a total
/// order.
class EventQueue {
 public:
  EventHandle schedule(TimeNs at, std::function<void()> fn);

  [[nodiscard]] bool empty() const;
  /// Time of the earliest live event.  Requires !empty().
  [[nodiscard]] TimeNs next_time() const;
  /// Pops and runs the earliest live event; returns its time.
  /// Requires !empty().
  TimeNs pop_and_run();

  [[nodiscard]] std::size_t size() const { return live_; }

 private:
  struct Entry {
    TimeNs at;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<EventHandle::State> state;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) {
        return a.at > b.at;
      }
      return a.seq > b.seq;
    }
  };

  void drop_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  mutable std::size_t live_ = 0;
};

}  // namespace csmabw::sim
