#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

#include "util/require.hpp"
#include "util/time.hpp"

namespace csmabw::sim {

class EventQueue;

/// Handle to a scheduled event; allows cancellation.
///
/// A handle is a (slot, generation) pair into the queue's slab pool —
/// two words, no refcounting.  Cancellation and `scheduled()` checks are
/// O(1); a handle to an event that has fired (or whose slot was recycled
/// for a later event) reports `scheduled() == false` and its `cancel()`
/// is a no-op, so stale handles can never cancel a slot's new occupant.
/// Handles are cheap to copy but must not be used after the queue they
/// came from is destroyed.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet.  Idempotent.
  void cancel();
  [[nodiscard]] bool scheduled() const;

 private:
  friend class EventQueue;
  EventHandle(EventQueue* q, std::uint32_t slot, std::uint32_t gen)
      : queue_(q), slot_(slot), gen_(gen) {}

  EventQueue* queue_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

/// Time-ordered event queue with a slab-pooled, allocation-free hot path.
///
/// Events at equal times fire in scheduling order (FIFO tie-break via a
/// monotone sequence number) — deterministic replay requires a total
/// order on (time, seq), and every operation preserves it exactly.
///
/// Storage design: callbacks live inline in 64-byte slots of a chunked
/// slab (chunks never move, so callbacks may be non-trivially copyable);
/// a 4-ary binary-hole heap orders lightweight (time, seq, slot)
/// records.  Freed slots are recycled through a free list and slot
/// generations are bumped on release, so in steady state — once the slab
/// and heap have grown to the high-water mark — scheduling, cancelling
/// and firing perform zero heap allocations.  Callbacks larger than
/// `kInlineCallbackBytes` are a compile error: there is deliberately no
/// heap fallback.
///
/// Cancellation is lazy in the heap (the (time, seq, slot) record stays
/// until it surfaces or a compaction sweep removes it) but eager in the
/// slab: the slot is destroyed and recycled immediately.  When stale
/// records outnumber live ones the heap is compacted in place, so a
/// schedule/cancel churn workload stays bounded.
class EventQueue {
 public:
  /// Inline storage per event; fits every in-tree callback (lambdas
  /// capturing a few pointers — four words).  Oversized captures are a
  /// compile error rather than a silent heap fallback.
  static constexpr std::size_t kInlineCallbackBytes = 32;

  EventQueue() = default;
  ~EventQueue();

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `fn` at `at`.  `fn` is moved into the slot's inline
  /// storage — no allocation, no type-erasure through std::function.
  template <class F>
  EventHandle schedule(TimeNs at, F fn) {
    static_assert(std::is_invocable_r_v<void, F&>,
                  "event callback must be invocable with no arguments");
    static_assert(sizeof(F) <= kInlineCallbackBytes,
                  "event callback too large for inline storage "
                  "(no heap fallback — shrink the capture)");
    static_assert(alignof(F) <= alignof(std::max_align_t),
                  "over-aligned event callbacks are not supported");
    static_assert(std::is_nothrow_move_constructible_v<F>,
                  "event callback move must not throw");
    if constexpr (std::is_constructible_v<bool, const F&>) {
      CSMABW_REQUIRE(static_cast<bool>(fn), "cannot schedule a null event");
    }
    const std::uint32_t idx = acquire_slot();
    Slot& s = slot(idx);
    ::new (static_cast<void*>(s.storage)) F(std::move(fn));
    s.invoke = [](void* p) { (*static_cast<F*>(p))(); };
    if constexpr (std::is_trivially_destructible_v<F>) {
      s.destroy = nullptr;
    } else {
      s.destroy = [](void* p) { static_cast<F*>(p)->~F(); };
    }
    return commit(at, idx);
  }

  /// Schedules a member-function call `(obj.*Method)()` at `at` — direct
  /// dispatch on the pooled event: the slot stores only the object
  /// pointer and the trampoline is a per-(Method) function, with no
  /// lambda or functor object in between.
  template <auto Method, class T>
  EventHandle schedule_member(TimeNs at, T& obj) {
    static_assert(std::is_invocable_r_v<void, decltype(Method), T&>,
                  "Method must be callable on T with no arguments");
    const std::uint32_t idx = acquire_slot();
    Slot& s = slot(idx);
    ::new (static_cast<void*>(s.storage)) T*(&obj);
    s.invoke = [](void* p) { ((*static_cast<T**>(p))->*Method)(); };
    s.destroy = nullptr;
    return commit(at, idx);
  }

  [[nodiscard]] bool empty() const { return live_ == 0; }
  /// Live (scheduled, not cancelled) events.
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Time of the earliest live event.  Requires !empty().
  [[nodiscard]] TimeNs next_time() const {
    CSMABW_REQUIRE(live_ > 0, "next_time() on an empty queue");
    prune_top();
    return heap_.front().at;
  }

  /// Pops and runs the earliest live event; returns its time.
  /// Requires !empty().
  TimeNs pop_and_run() {
    CSMABW_REQUIRE(live_ > 0, "pop_and_run() on an empty queue");
    for (;;) {
      const HeapRecord rec = take_top();
      if (stale_ != 0 && stale(rec)) {
        --stale_;
        continue;
      }
      return dispatch(rec);
    }
  }

  /// Pops and runs the earliest live event, advancing `now` to its time
  /// first; returns false when the queue is empty.  The single-step
  /// building block for predicate-checked loops.
  bool step(TimeNs& now) {
    while (live_ > 0) {
      const HeapRecord rec = take_top();
      if (stale_ != 0 && stale(rec)) {
        --stale_;
        continue;
      }
      now = rec.at;
      dispatch(rec);
      return true;
    }
    return false;
  }

  /// Runs every event with time <= `deadline` in (time, seq) order,
  /// advancing `now` to each event's time before dispatch.  Returns the
  /// number of events run.  Batching the loop here (instead of the
  /// owner's empty()/next_time()/pop_and_run() dance) touches the heap
  /// top once per event with no indirection.
  std::uint64_t run_until(TimeNs deadline, TimeNs& now) {
    std::uint64_t ran = 0;
    while (live_ > 0) {
      if (stale_ != 0 && stale(heap_.front())) {
        --stale_;
        (void)take_top();
        continue;
      }
      if (heap_.front().at > deadline) {
        break;
      }
      const HeapRecord rec = take_top();
      now = rec.at;
      dispatch(rec);
      ++ran;
    }
    return ran;
  }

  /// Runs until the queue drains; same contract as `run_until`.
  std::uint64_t run_all(TimeNs& now) {
    std::uint64_t ran = 0;
    while (step(now)) {
      ++ran;
    }
    return ran;
  }

  // --- introspection for tests and benchmarks ---
  /// Heap records, including stale ones awaiting compaction.  Bounded by
  /// ~2x the live count plus a small constant.
  [[nodiscard]] std::size_t heap_entries() const { return heap_.size(); }
  /// Slots the slab has ever allocated (the high-water mark).
  [[nodiscard]] std::size_t slot_capacity() const {
    return chunks_.size() * kChunkSlots;
  }
  /// Number of heap allocations the queue has performed (slab chunks +
  /// heap-vector growth).  Constant across steady-state operation.
  [[nodiscard]] std::uint64_t allocations() const { return allocations_; }

 private:
  friend class EventHandle;

  static constexpr std::uint32_t kChunkSlots = 256;  // 16 KiB chunks
  static constexpr std::uint32_t kInvalidSlot = 0xFFFFFFFFu;

  /// One pooled event: 64 bytes, a single cache line on common targets.
  /// `invoke != nullptr` means the slot holds a live (scheduled, not yet
  /// dispatched, not cancelled) callback.
  ///
  /// Deliberately no default member initializers: chunks are allocated
  /// default-initialized (no 16 KiB memset on slab growth).  grow_slab()
  /// seeds `gen` and `invoke` for each new chunk (512 B of writes);
  /// every other field is written by schedule()/commit() before it is
  /// first read.
  struct Slot {
    alignas(std::max_align_t) unsigned char storage[kInlineCallbackBytes];
    std::uint64_t seq;  ///< unique per event; stale-record check
    void (*invoke)(void*);
    void (*destroy)(void*);
    std::uint32_t gen;  ///< bumped on release; handle validity
    std::uint32_t next_free;
  };

  // The heap record packs (seq, slot) into one u64 — `key = seq << 24 |
  // slot` — so a record is 16 bytes and the FIFO tie-break is a single
  // integer compare: seq is unique per event, so comparing keys compares
  // seqs and the slot bits can never decide an ordering.  The packing
  // caps one queue instance at 2^24 concurrent slots (1 GiB of live
  // events) and 2^40 total events (~10^12); both are enforced loudly.
  static constexpr std::uint32_t kSlotBits = 24;
  static constexpr std::uint32_t kSlotMask = (1u << kSlotBits) - 1;
  static constexpr std::uint64_t kMaxSeq = 1ull << (64 - kSlotBits);

  /// What the heap orders: trivially movable, 16 bytes.
  struct HeapRecord {
    TimeNs at;
    std::uint64_t key;  ///< seq << kSlotBits | slot
  };

  static bool earlier(const HeapRecord& a, const HeapRecord& b) {
    if (a.at != b.at) {
      return a.at < b.at;
    }
    return a.key < b.key;
  }

  [[nodiscard]] Slot& slot(std::uint32_t idx) {
    return chunks_[idx / kChunkSlots][idx % kChunkSlots];
  }
  [[nodiscard]] const Slot& slot(std::uint32_t idx) const {
    return chunks_[idx / kChunkSlots][idx % kChunkSlots];
  }
  [[nodiscard]] bool stale(const HeapRecord& r) const {
    const Slot& s = slot(static_cast<std::uint32_t>(r.key) & kSlotMask);
    return s.invoke == nullptr || s.seq != r.key >> kSlotBits;
  }

  std::uint32_t acquire_slot() {
    if (free_head_ != kInvalidSlot) {
      const std::uint32_t idx = free_head_;
      free_head_ = slot(idx).next_free;
      return idx;
    }
    return grow_slab();
  }

  /// Inserts the freshly filled slot `idx` into the heap (hole-based
  /// 4-ary sift-up) and hands out the handle.
  EventHandle commit(TimeNs at, std::uint32_t idx) {
    Slot& s = slot(idx);
    const std::uint64_t seq = next_seq_++;
    CSMABW_REQUIRE(seq < kMaxSeq, "event sequence space exhausted");
    s.seq = seq;
    if (heap_.size() == heap_.capacity()) {
      ++allocations_;  // the push below grows the heap vector
    }
    std::size_t pos = heap_.size();
    const HeapRecord rec{at, seq << kSlotBits | idx};
    heap_.push_back(rec);
    while (pos > 0) {
      const std::size_t parent = (pos - 1) / 4;
      if (!earlier(rec, heap_[parent])) {
        break;
      }
      heap_[pos] = heap_[parent];
      pos = parent;
    }
    heap_[pos] = rec;
    ++live_;
    return EventHandle{this, idx, s.gen};
  }

  /// Removes and returns the heap's top record (hole-based 4-ary
  /// sift-down).  `const` so the lazy pruning in next_time() can use it;
  /// the heap is mutable state either way.
  HeapRecord take_top() const {
    const HeapRecord top = heap_.front();
    const HeapRecord last = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n > 0) {
      HeapRecord* h = heap_.data();
      std::size_t pos = 0;
      for (;;) {
        const std::size_t child = 4 * pos + 1;
        if (child + 4 <= n) {
          // Full fan-out: pairwise tournament for the minimum child —
          // two independent compares, then one, instead of a serial
          // dependency chain of three.
          const std::size_t m01 = earlier(h[child + 1], h[child])
                                      ? child + 1
                                      : child;
          const std::size_t m23 = earlier(h[child + 3], h[child + 2])
                                      ? child + 3
                                      : child + 2;
          const std::size_t m = earlier(h[m23], h[m01]) ? m23 : m01;
          if (!earlier(h[m], last)) {
            break;
          }
          h[pos] = h[m];
          pos = m;
          continue;
        }
        if (child >= n) {
          break;
        }
        std::size_t m = child;
        for (std::size_t c = child + 1; c < n; ++c) {
          if (earlier(h[c], h[m])) {
            m = c;
          }
        }
        if (!earlier(h[m], last)) {
          break;
        }
        h[pos] = h[m];
        pos = m;
      }
      h[pos] = last;
    }
    return top;
  }

  /// Runs the (live) record's callback and recycles its slot.
  TimeNs dispatch(const HeapRecord& rec) {
    const std::uint32_t idx = static_cast<std::uint32_t>(rec.key) & kSlotMask;
    Slot& s = slot(idx);
    void (*fn)(void*) = s.invoke;
    // Mark not-live before running: the callback observes its own handle
    // as unscheduled, and a self-cancel is a harmless no-op.  The slot is
    // recycled only after the callback returns, so the callback object
    // stays valid even if the callback schedules new events.
    s.invoke = nullptr;
    --live_;
    fn(s.storage);
    release_slot(idx);
    return rec.at;
  }

  /// Destroys the callback and returns the slot to the free list,
  /// bumping its generation so outstanding handles go stale.
  void release_slot(std::uint32_t idx) {
    Slot& s = slot(idx);
    if (s.destroy != nullptr) {
      s.destroy(s.storage);
    }
    s.invoke = nullptr;
    ++s.gen;
    s.next_free = free_head_;
    free_head_ = idx;
  }

  /// Pops stale records off the heap top (so front() is live).
  void prune_top() const {
    while (!heap_.empty() && stale(heap_.front())) {
      (void)take_top();
      --stale_;
    }
  }

  std::uint32_t grow_slab();
  /// Removes every stale record and re-heapifies; O(heap size).
  void compact();

  mutable std::vector<HeapRecord> heap_;
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::uint32_t free_head_ = kInvalidSlot;
  std::uint32_t slots_used_ = 0;  ///< slots handed out at least once
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
  mutable std::size_t stale_ = 0;  ///< stale records still in the heap
  std::uint64_t allocations_ = 0;
};

}  // namespace csmabw::sim
