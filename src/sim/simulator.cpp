#include "sim/simulator.hpp"

#include "util/require.hpp"

namespace csmabw::sim {

EventHandle Simulator::schedule_at(TimeNs at, std::function<void()> fn) {
  CSMABW_REQUIRE(at >= now_, "cannot schedule an event in the past");
  return queue_.schedule(at, std::move(fn));
}

EventHandle Simulator::schedule_in(TimeNs delay, std::function<void()> fn) {
  CSMABW_REQUIRE(delay >= TimeNs::zero(), "delay must be non-negative");
  return queue_.schedule(now_ + delay, std::move(fn));
}

void Simulator::run_until(TimeNs deadline) {
  CSMABW_REQUIRE(deadline >= now_, "deadline is in the past");
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    // Advance the clock before dispatching: callbacks observe now() as
    // the time they were scheduled for.
    now_ = queue_.next_time();
    queue_.pop_and_run();
    ++processed_;
  }
  now_ = deadline;
}

void Simulator::run() {
  while (!queue_.empty()) {
    now_ = queue_.next_time();
    queue_.pop_and_run();
    ++processed_;
  }
}

bool Simulator::run_while_pending(const std::function<bool()>& done) {
  CSMABW_REQUIRE(done != nullptr, "predicate must be callable");
  while (!queue_.empty()) {
    now_ = queue_.next_time();
    queue_.pop_and_run();
    ++processed_;
    if (done()) {
      return true;
    }
  }
  return done();
}

}  // namespace csmabw::sim
