#pragma once

#include <functional>

#include "sim/event_queue.hpp"
#include "util/time.hpp"

namespace csmabw::trace {
class TraceSink;
}  // namespace csmabw::trace

namespace csmabw::sim {

/// Discrete-event simulator: a clock plus an event queue.
///
/// Components hold a `Simulator&` and schedule callbacks; the owner calls
/// `run_until` / `run`.  The clock never moves backwards; scheduling in
/// the past is a contract violation (it would silently reorder
/// causality).
class Simulator {
 public:
  [[nodiscard]] TimeNs now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (>= now()).
  EventHandle schedule_at(TimeNs at, std::function<void()> fn);
  /// Schedules `fn` after `delay` (>= 0).
  EventHandle schedule_in(TimeNs delay, std::function<void()> fn);

  /// Runs events with time <= `deadline`; afterwards now() == deadline.
  void run_until(TimeNs deadline);
  /// Runs until the event queue drains.
  void run();
  /// Runs until `pred()` becomes true (checked after each event) or the
  /// queue drains.  Returns whether the predicate was satisfied.
  bool run_while_pending(const std::function<bool()>& done);

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

  /// The simulation's event tap (nullptr = tracing disabled).  Owned by
  /// the caller; components sharing this simulator (stations, medium,
  /// queues) emit their MAC/queue events to it, so installing a sink
  /// here taps the whole simulation.  Purely observational.
  [[nodiscard]] trace::TraceSink* trace() const { return trace_; }
  void set_trace(trace::TraceSink* sink) { trace_ = sink; }

 private:
  TimeNs now_ = TimeNs::zero();
  EventQueue queue_;
  std::uint64_t processed_ = 0;
  trace::TraceSink* trace_ = nullptr;
};

}  // namespace csmabw::sim
