#pragma once

#include <type_traits>
#include <utility>

#include "sim/event_queue.hpp"
#include "util/require.hpp"
#include "util/time.hpp"

namespace csmabw::trace {
class TraceSink;
}  // namespace csmabw::trace

namespace csmabw::sim {

/// Discrete-event simulator: a clock plus an event queue.
///
/// Components hold a `Simulator&` and schedule callbacks; the owner calls
/// `run_until` / `run`.  The clock never moves backwards; scheduling in
/// the past is a contract violation (it would silently reorder
/// causality).
///
/// Scheduling is allocation-free: callbacks are moved into the pooled
/// event queue's inline slots (see EventQueue), so the hot path of a
/// large ensemble performs no per-event heap work.
class Simulator {
 public:
  [[nodiscard]] TimeNs now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (>= now()).
  template <class F>
  EventHandle schedule_at(TimeNs at, F fn) {
    CSMABW_REQUIRE(at >= now_, "cannot schedule an event in the past");
    return queue_.schedule(at, std::move(fn));
  }
  /// Schedules `fn` after `delay` (>= 0).
  template <class F>
  EventHandle schedule_in(TimeNs delay, F fn) {
    CSMABW_REQUIRE(delay >= TimeNs::zero(), "delay must be non-negative");
    return queue_.schedule(now_ + delay, std::move(fn));
  }
  /// Schedules `(obj.*Method)()` at `at` — direct member-function
  /// dispatch on the pooled event, e.g.
  /// `sim.schedule_member_at<&Medium::fire>(t, *this)`.
  template <auto Method, class T>
  EventHandle schedule_member_at(TimeNs at, T& obj) {
    CSMABW_REQUIRE(at >= now_, "cannot schedule an event in the past");
    return queue_.schedule_member<Method>(at, obj);
  }

  /// Runs events with time <= `deadline`; afterwards now() == deadline.
  void run_until(TimeNs deadline) {
    CSMABW_REQUIRE(deadline >= now_, "deadline is in the past");
    processed_ += queue_.run_until(deadline, now_);
    now_ = deadline;
  }
  /// Runs until the event queue drains.
  void run() { processed_ += queue_.run_all(now_); }
  /// Runs until `done()` becomes true (checked after each event) or the
  /// queue drains.  Returns whether the predicate was satisfied.
  template <class Pred>
  bool run_while_pending(Pred done) {
    static_assert(std::is_invocable_r_v<bool, Pred&>,
                  "predicate must be callable and return bool");
    while (queue_.step(now_)) {
      ++processed_;
      if (done()) {
        return true;
      }
    }
    return done();
  }

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }
  /// Heap allocations the event queue has performed so far (slab chunks
  /// + heap-vector growth); constant across steady-state operation.
  [[nodiscard]] std::uint64_t event_allocations() const {
    return queue_.allocations();
  }

  /// Runtime-cost snapshot of a finished run, bundled so observability
  /// consumers (run reports, metrics) grab it in one call.  All values
  /// are pure functions of the workload — deterministic across runs.
  struct Cost {
    std::uint64_t events_processed = 0;
    std::uint64_t allocations = 0;     ///< slab chunks + heap growth
    std::uint64_t slot_capacity = 0;   ///< event slots currently owned
  };
  [[nodiscard]] Cost cost() const {
    return Cost{processed_, queue_.allocations(),
                static_cast<std::uint64_t>(queue_.slot_capacity())};
  }

  /// The simulation's event tap (nullptr = tracing disabled).  Owned by
  /// the caller; components sharing this simulator (stations, medium,
  /// queues) emit their MAC/queue events to it, so installing a sink
  /// here taps the whole simulation.  Purely observational.
  [[nodiscard]] trace::TraceSink* trace() const { return trace_; }
  void set_trace(trace::TraceSink* sink) { trace_ = sink; }

 private:
  TimeNs now_ = TimeNs::zero();
  EventQueue queue_;
  std::uint64_t processed_ = 0;
  trace::TraceSink* trace_ = nullptr;
};

}  // namespace csmabw::sim
