#pragma once

#include <cstdint>
#include <vector>

#include "util/require.hpp"
#include "util/time.hpp"

namespace csmabw::sim {

/// Addressable min-index over (time, id) keys for a fixed universe of
/// small integer ids [0, n) — the incremental fire-time index behind
/// topo::ConflictGraphMedium's O(degree) hot path.
///
/// A 4-ary min-heap of 16-byte (TimeNs, id) entries plus a dense
/// id -> heap-position table gives O(log n) insert / update / erase and
/// O(1) find-min, with no per-operation allocation after reset():
/// both vectors are sized to the universe up front and never grow.
///
/// Ordering is the total order (time, id): ids are unique in the index,
/// so equal-time entries pop in ascending id order — callers draining
/// "everything due exactly now" get a deterministic, already-sorted
/// sequence, independent of the insertion/update history.  (A plain
/// binary heap would surface equal keys in history-dependent order;
/// determinism across byte-identical replays relies on this tie-break.)
class TimerIndex {
 public:
  /// Clears the index and fixes the id universe to [0, n).  Allocates
  /// once; every later operation is allocation-free.
  void reset(int n) {
    CSMABW_REQUIRE(n >= 0, "timer index universe must be non-negative");
    pos_.assign(static_cast<std::size_t>(n), -1);
    heap_.clear();
    heap_.reserve(static_cast<std::size_t>(n));
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] int size() const { return static_cast<int>(heap_.size()); }
  [[nodiscard]] int universe() const { return static_cast<int>(pos_.size()); }
  [[nodiscard]] bool contains(int id) const {
    return pos_[static_cast<std::size_t>(id)] >= 0;
  }
  /// Key of `id`; requires contains(id).
  [[nodiscard]] TimeNs time_of(int id) const {
    const std::int32_t p = pos_[static_cast<std::size_t>(id)];
    CSMABW_REQUIRE(p >= 0, "time_of() on an id not in the index");
    return heap_[static_cast<std::size_t>(p)].time;
  }
  /// Earliest key; requires !empty().
  [[nodiscard]] TimeNs top_time() const {
    CSMABW_REQUIRE(!heap_.empty(), "top_time() on an empty index");
    return heap_.front().time;
  }
  /// Id holding the earliest key (smallest id on ties); requires
  /// !empty().
  [[nodiscard]] int top_id() const {
    CSMABW_REQUIRE(!heap_.empty(), "top_id() on an empty index");
    return heap_.front().id;
  }

  /// Inserts `id` with key `t`, or rekeys it if already present.
  void set(int id, TimeNs t) {
    const std::int32_t p = pos_[static_cast<std::size_t>(id)];
    const Entry e{t, static_cast<std::int32_t>(id)};
    if (p < 0) {
      heap_.push_back(e);  // within reserve(): no allocation
      sift_up(heap_.size() - 1, e);
      return;
    }
    const std::size_t sp = static_cast<std::size_t>(p);
    if (heap_[sp].time == t) {
      return;  // rekey to the identical deadline: entry already in place
    }
    if (earlier(e, heap_[sp])) {
      sift_up(sp, e);
    } else {
      sift_down(sp, e);
    }
  }

  /// Removes `id` if present; no-op otherwise.
  void erase(int id) {
    const std::int32_t p = pos_[static_cast<std::size_t>(id)];
    if (p < 0) {
      return;
    }
    remove_at(static_cast<std::size_t>(p));
  }

  /// Removes and returns the top id; requires !empty().
  int pop_top() {
    CSMABW_REQUIRE(!heap_.empty(), "pop_top() on an empty index");
    const int id = heap_.front().id;
    remove_at(0);
    return id;
  }

 private:
  struct Entry {
    TimeNs time;
    std::int32_t id;
  };

  static bool earlier(const Entry& a, const Entry& b) {
    if (a.time != b.time) {
      return a.time < b.time;
    }
    return a.id < b.id;
  }

  void place(std::size_t p, const Entry& e) {
    heap_[p] = e;
    pos_[static_cast<std::size_t>(e.id)] = static_cast<std::int32_t>(p);
  }

  /// Moves `e` up from hole `p` until its parent is earlier.
  void sift_up(std::size_t p, Entry e) {
    while (p > 0) {
      const std::size_t parent = (p - 1) / 4;
      if (!earlier(e, heap_[parent])) {
        break;
      }
      place(p, heap_[parent]);
      p = parent;
    }
    place(p, e);
  }

  /// Moves `e` down from hole `p` until no child is earlier.
  void sift_down(std::size_t p, Entry e) {
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t child = 4 * p + 1;
      if (child >= n) {
        break;
      }
      std::size_t m = child;
      const std::size_t last = child + 4 < n ? child + 4 : n;
      for (std::size_t c = child + 1; c < last; ++c) {
        if (earlier(heap_[c], heap_[m])) {
          m = c;
        }
      }
      if (!earlier(heap_[m], e)) {
        break;
      }
      place(p, heap_[m]);
      p = m;
    }
    place(p, e);
  }

  void remove_at(std::size_t p) {
    pos_[static_cast<std::size_t>(heap_[p].id)] = -1;
    const Entry last = heap_.back();
    heap_.pop_back();
    if (p == heap_.size()) {
      return;  // removed the tail entry
    }
    if (p > 0 && earlier(last, heap_[(p - 1) / 4])) {
      sift_up(p, last);
    } else {
      sift_down(p, last);
    }
  }

  std::vector<Entry> heap_;
  std::vector<std::int32_t> pos_;  ///< id -> heap position, -1 = absent
};

}  // namespace csmabw::sim
