#include "stats/batch_means.hpp"

#include <cmath>
#include <vector>

#include "stats/summary.hpp"
#include "util/require.hpp"

namespace csmabw::stats {

namespace {

/// Two-sided 97.5% Student-t critical values by degrees of freedom;
/// asymptotes to the normal 1.96.
double t_critical_975(int dof) {
  static constexpr double kTable[] = {
      // dof = 1..30
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (dof <= 0) {
    return 12.706;
  }
  if (dof <= 30) {
    return kTable[dof - 1];
  }
  return 1.96;
}

}  // namespace

BatchMeansResult batch_means_ci(std::span<const double> xs, int batches) {
  CSMABW_REQUIRE(batches >= 2, "need at least two batches");
  CSMABW_REQUIRE(xs.size() >= static_cast<std::size_t>(batches),
                 "fewer observations than batches");
  const std::size_t per_batch = xs.size() / static_cast<std::size_t>(batches);

  RunningStat batch_stats;
  for (int b = 0; b < batches; ++b) {
    RunningStat batch;
    for (std::size_t i = 0; i < per_batch; ++i) {
      batch.add(xs[static_cast<std::size_t>(b) * per_batch + i]);
    }
    batch_stats.add(batch.mean());
  }

  BatchMeansResult r;
  r.batches = batches;
  r.mean = batch_stats.mean();
  r.half_width = t_critical_975(batches - 1) * batch_stats.sem();
  return r;
}

double autocorrelation(std::span<const double> xs, int lag) {
  CSMABW_REQUIRE(lag >= 1, "lag must be >= 1");
  CSMABW_REQUIRE(xs.size() > static_cast<std::size_t>(lag),
                 "series shorter than the lag");
  const double m = mean(xs);
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double d = xs[i] - m;
    den += d * d;
    if (i + static_cast<std::size_t>(lag) < xs.size()) {
      num += d * (xs[i + static_cast<std::size_t>(lag)] - m);
    }
  }
  return den > 0.0 ? num / den : 0.0;
}

}  // namespace csmabw::stats
