#pragma once

#include <span>

namespace csmabw::stats {

/// Batch-means confidence interval for the mean of a correlated series.
///
/// Steady-state measurements of a CSMA/CA link (throughput samples,
/// access delays of consecutive packets) are autocorrelated, so the
/// naive SEM understates the error.  The classic remedy groups the
/// series into `batches` contiguous batches and treats the batch means
/// as approximately independent.
struct BatchMeansResult {
  double mean = 0.0;
  /// Half-width of the confidence interval.
  double half_width = 0.0;
  int batches = 0;

  [[nodiscard]] double low() const { return mean - half_width; }
  [[nodiscard]] double high() const { return mean + half_width; }
  [[nodiscard]] bool contains(double v) const {
    return v >= low() && v <= high();
  }
};

/// Computes a ~95% batch-means confidence interval (Student-t critical
/// value approximated for the batch count).  Requires at least 2 batches
/// and xs.size() >= batches.  Trailing observations that do not fill a
/// whole batch are dropped.
[[nodiscard]] BatchMeansResult batch_means_ci(std::span<const double> xs,
                                              int batches = 20);

/// Lag-k sample autocorrelation of a series (k >= 1, k < xs.size()).
/// Used to check whether a batch size has decorrelated the means.
[[nodiscard]] double autocorrelation(std::span<const double> xs, int lag);

}  // namespace csmabw::stats
