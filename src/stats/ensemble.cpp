#include "stats/ensemble.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace csmabw::stats {

EnsembleSeries::EnsembleSeries(int length, int raw_prefix, int steady_tail,
                               std::vector<int> extra_raw)
    : length_(length),
      raw_prefix_(raw_prefix),
      steady_tail_(steady_tail),
      per_index_(static_cast<std::size_t>(length)),
      raw_(static_cast<std::size_t>(raw_prefix)),
      extra_raw_indices_(std::move(extra_raw)) {
  CSMABW_REQUIRE(length > 0, "ensemble length must be positive");
  CSMABW_REQUIRE(raw_prefix >= 0 && raw_prefix <= length,
                 "raw_prefix must be within [0, length]");
  CSMABW_REQUIRE(steady_tail >= 0 && steady_tail <= length,
                 "steady_tail must be within [0, length]");
  std::sort(extra_raw_indices_.begin(), extra_raw_indices_.end());
  extra_raw_indices_.erase(
      std::unique(extra_raw_indices_.begin(), extra_raw_indices_.end()),
      extra_raw_indices_.end());
  // Indices already covered by the prefix would duplicate storage.
  std::erase_if(extra_raw_indices_,
                [this](int i) { return i < raw_prefix_; });
  for (int i : extra_raw_indices_) {
    CSMABW_REQUIRE(i < length_, "extra raw index out of range");
  }
  extra_raw_.resize(extra_raw_indices_.size());
}

void EnsembleSeries::add_repetition(std::span<const double> values) {
  CSMABW_REQUIRE(values.size() == static_cast<std::size_t>(length_),
                 "repetition length mismatch");
  for (int i = 0; i < length_; ++i) {
    per_index_[static_cast<std::size_t>(i)].add(values[static_cast<std::size_t>(i)]);
  }
  for (int i = 0; i < raw_prefix_; ++i) {
    raw_[static_cast<std::size_t>(i)].push_back(values[static_cast<std::size_t>(i)]);
  }
  for (std::size_t k = 0; k < extra_raw_indices_.size(); ++k) {
    extra_raw_[k].push_back(
        values[static_cast<std::size_t>(extra_raw_indices_[k])]);
  }
  for (int i = length_ - steady_tail_; i < length_; ++i) {
    const double v = values[static_cast<std::size_t>(i)];
    steady_pool_.push_back(v);
    steady_stat_.add(v);
  }
  ++reps_;
}

void EnsembleSeries::merge(const EnsembleSeries& other) {
  CSMABW_REQUIRE(other.length_ == length_ && other.raw_prefix_ == raw_prefix_ &&
                     other.steady_tail_ == steady_tail_ &&
                     other.extra_raw_indices_ == extra_raw_indices_,
                 "cannot merge ensembles with different configurations");
  for (int i = 0; i < length_; ++i) {
    per_index_[static_cast<std::size_t>(i)].merge(
        other.per_index_[static_cast<std::size_t>(i)]);
  }
  for (int i = 0; i < raw_prefix_; ++i) {
    auto& dst = raw_[static_cast<std::size_t>(i)];
    const auto& src = other.raw_[static_cast<std::size_t>(i)];
    dst.insert(dst.end(), src.begin(), src.end());
  }
  for (std::size_t k = 0; k < extra_raw_.size(); ++k) {
    extra_raw_[k].insert(extra_raw_[k].end(), other.extra_raw_[k].begin(),
                         other.extra_raw_[k].end());
  }
  steady_pool_.insert(steady_pool_.end(), other.steady_pool_.begin(),
                      other.steady_pool_.end());
  steady_stat_.merge(other.steady_stat_);
  reps_ += other.reps_;
}

double EnsembleSeries::mean_at(int i) const { return stat_at(i).mean(); }

const RunningStat& EnsembleSeries::stat_at(int i) const {
  CSMABW_REQUIRE(i >= 0 && i < length_, "index out of range");
  return per_index_[static_cast<std::size_t>(i)];
}

std::vector<double> EnsembleSeries::means() const {
  std::vector<double> out(static_cast<std::size_t>(length_));
  for (int i = 0; i < length_; ++i) {
    out[static_cast<std::size_t>(i)] = mean_at(i);
  }
  return out;
}

std::span<const double> EnsembleSeries::raw_at(int i) const {
  if (i >= 0 && i < raw_prefix_) {
    return raw_[static_cast<std::size_t>(i)];
  }
  const auto it = std::lower_bound(extra_raw_indices_.begin(),
                                   extra_raw_indices_.end(), i);
  CSMABW_REQUIRE(it != extra_raw_indices_.end() && *it == i,
                 "raw samples were not retained for this index");
  return extra_raw_[static_cast<std::size_t>(
      it - extra_raw_indices_.begin())];
}

std::span<const double> EnsembleSeries::steady_pool() const {
  return steady_pool_;
}

double EnsembleSeries::steady_mean() const { return steady_stat_.mean(); }

}  // namespace csmabw::stats
