#include "stats/ensemble.hpp"

#include "util/require.hpp"

namespace csmabw::stats {

EnsembleSeries::EnsembleSeries(int length, int raw_prefix, int steady_tail)
    : length_(length),
      raw_prefix_(raw_prefix),
      steady_tail_(steady_tail),
      per_index_(static_cast<std::size_t>(length)),
      raw_(static_cast<std::size_t>(raw_prefix)) {
  CSMABW_REQUIRE(length > 0, "ensemble length must be positive");
  CSMABW_REQUIRE(raw_prefix >= 0 && raw_prefix <= length,
                 "raw_prefix must be within [0, length]");
  CSMABW_REQUIRE(steady_tail >= 0 && steady_tail <= length,
                 "steady_tail must be within [0, length]");
}

void EnsembleSeries::add_repetition(std::span<const double> values) {
  CSMABW_REQUIRE(values.size() == static_cast<std::size_t>(length_),
                 "repetition length mismatch");
  for (int i = 0; i < length_; ++i) {
    per_index_[static_cast<std::size_t>(i)].add(values[static_cast<std::size_t>(i)]);
  }
  for (int i = 0; i < raw_prefix_; ++i) {
    raw_[static_cast<std::size_t>(i)].push_back(values[static_cast<std::size_t>(i)]);
  }
  for (int i = length_ - steady_tail_; i < length_; ++i) {
    const double v = values[static_cast<std::size_t>(i)];
    steady_pool_.push_back(v);
    steady_stat_.add(v);
  }
  ++reps_;
}

double EnsembleSeries::mean_at(int i) const { return stat_at(i).mean(); }

const RunningStat& EnsembleSeries::stat_at(int i) const {
  CSMABW_REQUIRE(i >= 0 && i < length_, "index out of range");
  return per_index_[static_cast<std::size_t>(i)];
}

std::vector<double> EnsembleSeries::means() const {
  std::vector<double> out(static_cast<std::size_t>(length_));
  for (int i = 0; i < length_; ++i) {
    out[static_cast<std::size_t>(i)] = mean_at(i);
  }
  return out;
}

std::span<const double> EnsembleSeries::raw_at(int i) const {
  CSMABW_REQUIRE(i >= 0 && i < raw_prefix_,
                 "raw samples were not retained for this index");
  return raw_[static_cast<std::size_t>(i)];
}

std::span<const double> EnsembleSeries::steady_pool() const {
  return steady_pool_;
}

double EnsembleSeries::steady_mean() const { return steady_stat_.mean(); }

}  // namespace csmabw::stats
