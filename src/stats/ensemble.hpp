#pragma once

#include <span>
#include <vector>

#include "stats/summary.hpp"

namespace csmabw::stats {

/// Per-index ensemble statistics across repeated experiments.
///
/// The transient analysis of Section 4 repeats an experiment thousands of
/// times and studies the distribution of the i-th packet's access delay
/// *across repetitions*.  This accumulator keeps a `RunningStat` per
/// index for all indices, and additionally retains the raw samples for
/// the first `raw_prefix` indices (needed for KS tests and histograms)
/// plus a pooled "steady-state" reference built from the last
/// `steady_tail` indices of every repetition.
class EnsembleSeries {
 public:
  /// `length`: number of indices per repetition (every repetition must
  /// supply exactly this many values).
  /// `raw_prefix`: indices [0, raw_prefix) keep raw samples.
  /// `steady_tail`: the last `steady_tail` indices feed the pooled
  /// steady-state reference sample (0 disables pooling).
  /// `extra_raw`: additional individual indices (>= raw_prefix) that
  /// keep raw samples — sparse retention for histograms deep into the
  /// train without paying for the whole prefix (Fig 7's 500th packet).
  EnsembleSeries(int length, int raw_prefix, int steady_tail,
                 std::vector<int> extra_raw = {});

  void add_repetition(std::span<const double> values);

  /// Merges a shard accumulated over the same (length, raw_prefix,
  /// steady_tail) configuration.  Raw samples and the steady pool are
  /// appended in call order, so merging shards of repetitions
  /// [0,k), [k,2k), ... in order reproduces the sample order of a serial
  /// accumulation — the parallel campaign runner relies on this.
  void merge(const EnsembleSeries& other);

  [[nodiscard]] int length() const { return length_; }
  [[nodiscard]] int raw_prefix() const { return raw_prefix_; }
  [[nodiscard]] int repetitions() const { return reps_; }

  /// Ensemble mean of index `i` (0-based).
  [[nodiscard]] double mean_at(int i) const;
  [[nodiscard]] const RunningStat& stat_at(int i) const;
  [[nodiscard]] std::vector<double> means() const;

  /// Raw samples of index `i` (< raw_prefix, or listed in `extra_raw`)
  /// across repetitions.
  [[nodiscard]] std::span<const double> raw_at(int i) const;

  /// Pooled sample of the last `steady_tail` indices of all repetitions.
  [[nodiscard]] std::span<const double> steady_pool() const;
  /// Mean over the steady-state tail (all indices, all repetitions).
  [[nodiscard]] double steady_mean() const;

 private:
  int length_;
  int raw_prefix_;
  int steady_tail_;
  int reps_ = 0;
  std::vector<RunningStat> per_index_;
  std::vector<std::vector<double>> raw_;
  /// Sorted, deduplicated extra indices and their samples (parallel).
  std::vector<int> extra_raw_indices_;
  std::vector<std::vector<double>> extra_raw_;
  std::vector<double> steady_pool_;
  RunningStat steady_stat_;
};

}  // namespace csmabw::stats
