#include "stats/histogram.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace csmabw::stats {

Histogram::Histogram(double lo, double hi, int bins)
    : lo_(lo),
      hi_(hi),
      width_((hi - lo) / bins),
      counts_(static_cast<std::size_t>(bins), 0) {
  CSMABW_REQUIRE(hi > lo, "histogram range must be non-empty");
  CSMABW_REQUIRE(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) { add_n(x, 1); }

void Histogram::add_n(double x, std::int64_t n) {
  CSMABW_REQUIRE(n >= 0, "negative count");
  total_ += n;
  if (x < lo_) {
    underflow_ += n;
    return;
  }
  if (x >= hi_) {
    overflow_ += n;
    return;
  }
  auto b = static_cast<std::size_t>((x - lo_) / width_);
  b = std::min(b, counts_.size() - 1);  // guard float edge at hi_
  counts_[b] += n;
}

double Histogram::bin_center(int b) const {
  CSMABW_REQUIRE(b >= 0 && b < bins(), "bin index out of range");
  return lo_ + (b + 0.5) * width_;
}

std::int64_t Histogram::count(int b) const {
  CSMABW_REQUIRE(b >= 0 && b < bins(), "bin index out of range");
  return counts_[static_cast<std::size_t>(b)];
}

double Histogram::frequency(int b) const {
  return total_ == 0 ? 0.0
                     : static_cast<double>(count(b)) /
                           static_cast<double>(total_);
}

double Histogram::mode() const {
  if (total_ == 0) {
    return 0.0;
  }
  const auto it = std::max_element(counts_.begin(), counts_.end());
  return bin_center(static_cast<int>(it - counts_.begin()));
}

}  // namespace csmabw::stats
