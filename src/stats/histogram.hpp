#pragma once

#include <cstdint>
#include <vector>

namespace csmabw::stats {

/// Fixed-width-bin histogram over [lo, hi).
///
/// Out-of-range samples are counted separately (underflow/overflow), not
/// silently clamped — the Fig 7 access-delay histograms rely on knowing
/// the tail mass that falls outside the plotted range.
class Histogram {
 public:
  Histogram(double lo, double hi, int bins);

  void add(double x);
  void add_n(double x, std::int64_t n);

  [[nodiscard]] int bins() const { return static_cast<int>(counts_.size()); }
  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }
  [[nodiscard]] double bin_width() const { return width_; }
  [[nodiscard]] double bin_center(int b) const;
  [[nodiscard]] std::int64_t count(int b) const;
  [[nodiscard]] std::int64_t underflow() const { return underflow_; }
  [[nodiscard]] std::int64_t overflow() const { return overflow_; }
  [[nodiscard]] std::int64_t total() const { return total_; }

  /// Fraction of all samples (including out-of-range) in bin `b`.
  [[nodiscard]] double frequency(int b) const;
  /// Center of the most populated bin (ties: lowest bin). 0 if empty.
  [[nodiscard]] double mode() const;

  [[nodiscard]] const std::vector<std::int64_t>& counts() const {
    return counts_;
  }

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::int64_t> counts_;
  std::int64_t underflow_ = 0;
  std::int64_t overflow_ = 0;
  std::int64_t total_ = 0;
};

}  // namespace csmabw::stats
