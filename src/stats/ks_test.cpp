#include "stats/ks_test.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/require.hpp"

namespace csmabw::stats {

namespace detail {

double step_ecdf(std::span<const double> sorted, double x) {
  const auto it = std::upper_bound(sorted.begin(), sorted.end(), x);
  return static_cast<double>(it - sorted.begin()) /
         static_cast<double>(sorted.size());
}

double step_ecdf_left(std::span<const double> sorted, double x) {
  const auto it = std::lower_bound(sorted.begin(), sorted.end(), x);
  return static_cast<double>(it - sorted.begin()) /
         static_cast<double>(sorted.size());
}

double interpolated_ecdf(std::span<const double> sorted, double x) {
  const auto n = static_cast<double>(sorted.size());
  if (x < sorted.front()) {
    return 0.0;
  }
  if (x >= sorted.back()) {
    return 1.0;
  }
  // Find k such that sorted[k-1] <= x < sorted[k].  Repeated values
  // (atoms) are preserved: the ECDF jumps across the whole run.
  const auto it = std::upper_bound(sorted.begin(), sorted.end(), x);
  const auto k = static_cast<std::size_t>(it - sorted.begin());  // >= 1
  const double x0 = sorted[k - 1];
  const double x1 = sorted[k];
  const double f0 = static_cast<double>(k) / n;
  const double f1 = static_cast<double>(k + 1) / n;
  if (x == x0) {
    return f0;
  }
  return f0 + (f1 - f0) * (x - x0) / (x1 - x0);
}

double interpolated_ecdf_left(std::span<const double> sorted, double x) {
  const auto n = static_cast<double>(sorted.size());
  if (x <= sorted.front()) {
    return 0.0;
  }
  if (x > sorted.back()) {
    return 1.0;
  }
  const auto it = std::lower_bound(sorted.begin(), sorted.end(), x);
  if (it != sorted.end() && *it == x) {
    // Left limit at a sample point: the segment [sorted[j-1], sorted[j])
    // ramps up to (j + 1)/n just below the first occurrence at index j
    // (j >= 1 because x > sorted.front()).
    const auto j = static_cast<std::size_t>(it - sorted.begin());
    return static_cast<double>(j + 1) / n;
  }
  return interpolated_ecdf(sorted, x);  // continuous away from samples
}

}  // namespace detail

double ks_statistic(std::span<const double> sample,
                    std::span<const double> reference) {
  CSMABW_REQUIRE(!sample.empty(), "KS: empty sample");
  CSMABW_REQUIRE(!reference.empty(), "KS: empty reference");

  std::vector<double> a(sample.begin(), sample.end());
  std::vector<double> b(reference.begin(), reference.end());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());

  const auto na = static_cast<double>(a.size());
  double d = 0.0;

  // Compare right-continuous values with right-continuous values and
  // left limits with left limits, per *distinct* value: both
  // distributions may carry atoms (e.g. the deterministic DIFS + airtime
  // delay of an uncontended transmission); the intermediate levels
  // inside a jump belong to neither CDF and must not be compared.
  for (std::size_t k = 0; k < a.size();) {
    std::size_t run_end = k;
    while (run_end < a.size() && a[run_end] == a[k]) {
      ++run_end;
    }
    const double fa_left = static_cast<double>(k) / na;
    const double fa_right = static_cast<double>(run_end) / na;
    d = std::max(d, std::abs(fa_right - detail::interpolated_ecdf(b, a[k])));
    d = std::max(d,
                 std::abs(fa_left - detail::interpolated_ecdf_left(b, a[k])));
    k = run_end;
  }
  // The piecewise-linear reference can also pull away from the flat step
  // segments at its own kinks.
  for (std::size_t k = 0; k < b.size();) {
    std::size_t run_end = k;
    while (run_end < b.size() && b[run_end] == b[k]) {
      ++run_end;
    }
    const double x = b[k];
    d = std::max(
        d, std::abs(detail::step_ecdf(a, x) - detail::interpolated_ecdf(b, x)));
    d = std::max(d, std::abs(detail::step_ecdf_left(a, x) -
                             detail::interpolated_ecdf_left(b, x)));
    k = run_end;
  }
  return d;
}

double ks_threshold(std::size_t n, std::size_t m, double alpha) {
  CSMABW_REQUIRE(n > 0 && m > 0, "KS threshold needs positive sample sizes");
  CSMABW_REQUIRE(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
  const double c = std::sqrt(-0.5 * std::log(alpha / 2.0));
  const auto nn = static_cast<double>(n);
  const auto mm = static_cast<double>(m);
  return c * std::sqrt((nn + mm) / (nn * mm));
}

}  // namespace csmabw::stats
