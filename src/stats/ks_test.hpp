#pragma once

#include <span>

namespace csmabw::stats {

/// Two-sample Kolmogorov-Smirnov statistic.
///
/// Following the paper (Section 4, footnote 2): when comparing two
/// empirical *discrete* distributions, one of them is converted to a
/// continuous distribution by linear interpolation of its ECDF.  Here the
/// second sample (`reference`, typically the pooled steady-state delays)
/// is interpolated; the statistic is the supremum over the real line of
/// |F_sample(x) - F_reference(x)|, which for a step function vs. a
/// piecewise-linear function is attained at a sample jump or a reference
/// kink, so we evaluate only those points.
///
/// Both samples must be non-empty.  Inputs need not be sorted.
[[nodiscard]] double ks_statistic(std::span<const double> sample,
                                  std::span<const double> reference);

/// Large-sample two-sided KS rejection threshold at level `alpha`
/// (default 0.05, the paper's 95% confidence line):
///   c(alpha) * sqrt((n + m) / (n * m)),  c(0.05) ~= 1.358.
[[nodiscard]] double ks_threshold(std::size_t n, std::size_t m,
                                  double alpha = 0.05);

namespace detail {
/// ECDF of a *sorted* sample with linear interpolation between order
/// statistics: F(x_(k)) = k / n (k = 1..n), F = 0 left of x_(1), linear in
/// between, 1 right of x_(n).  Repeated sample values (atoms) stay as
/// jumps.  Exposed for unit testing.
[[nodiscard]] double interpolated_ecdf(std::span<const double> sorted,
                                       double x);
/// Left limit of interpolated_ecdf at x.
[[nodiscard]] double interpolated_ecdf_left(std::span<const double> sorted,
                                            double x);
/// Right-continuous step ECDF of a *sorted* sample.
[[nodiscard]] double step_ecdf(std::span<const double> sorted, double x);
/// Left limit (strict fraction below x) of the step ECDF.
[[nodiscard]] double step_ecdf_left(std::span<const double> sorted, double x);
}  // namespace detail

}  // namespace csmabw::stats
