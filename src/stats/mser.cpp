#include "stats/mser.hpp"

#include <limits>

#include "stats/summary.hpp"
#include "util/require.hpp"

namespace csmabw::stats {

MserResult mser(std::span<const double> x, int m) {
  CSMABW_REQUIRE(m >= 1, "MSER batch size must be >= 1");
  CSMABW_REQUIRE(x.size() >= static_cast<std::size_t>(2 * m),
                 "MSER needs at least two batches of observations");

  const int num_batches = static_cast<int>(x.size()) / m;
  std::vector<double> batch_mean(static_cast<std::size_t>(num_batches));
  for (int j = 0; j < num_batches; ++j) {
    double s = 0.0;
    for (int i = 0; i < m; ++i) {
      s += x[static_cast<std::size_t>(j * m + i)];
    }
    batch_mean[static_cast<std::size_t>(j)] = s / m;
  }

  // Candidate cutoffs are restricted to the first half of the batches so
  // a noisy tail cannot swallow the whole series.
  const int max_cutoff = num_batches / 2;
  MserResult result;
  result.objective.resize(static_cast<std::size_t>(max_cutoff + 1));

  double best = std::numeric_limits<double>::infinity();
  for (int d = 0; d <= max_cutoff; ++d) {
    // Variance (biased, i.e. /k) of batches d..B-1, divided by count.
    RunningStat s;
    for (int j = d; j < num_batches; ++j) {
      s.add(batch_mean[static_cast<std::size_t>(j)]);
    }
    const auto k = static_cast<double>(s.count());
    const double biased_var = s.variance() * (k - 1.0) / k;
    const double objective = biased_var / k;
    result.objective[static_cast<std::size_t>(d)] = objective;
    if (objective < best) {
      best = objective;
      result.batch_cutoff = d;
    }
  }

  result.cutoff = result.batch_cutoff * m;
  RunningStat retained;
  for (std::size_t i = static_cast<std::size_t>(result.cutoff); i < x.size();
       ++i) {
    retained.add(x[i]);
  }
  result.truncated_mean = retained.mean();
  return result;
}

}  // namespace csmabw::stats
