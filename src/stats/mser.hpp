#pragma once

#include <span>
#include <vector>

namespace csmabw::stats {

/// Result of an MSER-m truncation analysis.
struct MserResult {
  /// Truncation point in *original observations* (drop x[0..cutoff)).
  int cutoff = 0;
  /// Truncation point in batches (cutoff == batch_cutoff * m).
  int batch_cutoff = 0;
  /// Mean of the retained observations.
  double truncated_mean = 0.0;
  /// The MSER objective evaluated at every candidate batch cutoff.
  std::vector<double> objective;
};

/// MSER-m transient-truncation heuristic (White 1997; the Winter
/// Simulation Conference comparison the paper cites as [32]).
///
/// The series is grouped into batches of `m` consecutive observations;
/// for each candidate truncation point d the objective
///
///   MSER(d) = s^2_{d..B} / (B - d)
///
/// is evaluated, where s^2 is the sample variance of the retained batch
/// means and B the number of batches; the minimizing d (restricted to the
/// first half of the series, the standard guard against degenerate tail
/// truncation) is returned.  The paper applies MSER-2 to the inter-
/// arrival series of a 20-packet probe train (Fig 17).
///
/// Requires x.size() >= 2 * m (at least two batches must survive).
[[nodiscard]] MserResult mser(std::span<const double> x, int m);

/// Convenience: MSER-2 as used by the paper.
[[nodiscard]] inline MserResult mser2(std::span<const double> x) {
  return mser(x, 2);
}

}  // namespace csmabw::stats
