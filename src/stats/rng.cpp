#include "stats/rng.hpp"

#include "util/require.hpp"

namespace csmabw::stats {

namespace {

// SplitMix64 finalizer — decorrelates sequential seeds before they reach
// the Mersenne Twister, and mixes fork names into the parent seed.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_name(std::string_view name) {
  // FNV-1a, then finalized.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return mix64(h);
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed), engine_(mix64(seed)) {}

Rng Rng::fork(std::string_view name) const {
  return Rng(mix64(seed_ ^ hash_name(name)));
}

Rng Rng::fork(std::uint64_t index) const {
  return Rng(mix64(seed_ + 0x632be59bd9b4e019ULL * (index + 1)));
}

double Rng::uniform01() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::uniform(double lo, double hi) {
  CSMABW_REQUIRE(lo < hi, "uniform(lo, hi) requires lo < hi");
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

int Rng::uniform_int(int lo, int hi) {
  CSMABW_REQUIRE(lo <= hi, "uniform_int(lo, hi) requires lo <= hi");
  return std::uniform_int_distribution<int>(lo, hi)(engine_);
}

double Rng::exponential(double mean) {
  CSMABW_REQUIRE(mean > 0.0, "exponential mean must be positive");
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

}  // namespace csmabw::stats
