#pragma once

#include <cstdint>
#include <random>
#include <string_view>

namespace csmabw::stats {

/// Deterministic random stream.
///
/// Every stochastic component in the library draws from an `Rng` it is
/// handed explicitly — there is no hidden global generator — so a whole
/// experiment is reproducible bit-for-bit from a single root seed.
/// Independent sub-streams are derived with `fork(name)`, which mixes the
/// parent seed with a hash of the name; forks are stable across runs and
/// independent of draw order on the parent.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Derives an independent, reproducible child stream.
  [[nodiscard]] Rng fork(std::string_view name) const;
  [[nodiscard]] Rng fork(std::uint64_t index) const;

  /// Uniform in [0, 1).
  [[nodiscard]] double uniform01();
  /// Uniform in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive).
  [[nodiscard]] int uniform_int(int lo, int hi);
  /// Exponential with the given mean (> 0).
  [[nodiscard]] double exponential(double mean);

  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::uint64_t seed_;
  std::mt19937_64 engine_;
};

}  // namespace csmabw::stats
