#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace csmabw::stats {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStat::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::min() const { return min_; }

double RunningStat::max() const { return max_; }

double RunningStat::sem() const {
  return n_ == 0 ? 0.0 : stddev() / std::sqrt(static_cast<double>(n_));
}

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) {
    return;
  }
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double mean(std::span<const double> xs) {
  RunningStat s;
  for (double x : xs) {
    s.add(x);
  }
  return s.mean();
}

double variance(std::span<const double> xs) {
  RunningStat s;
  for (double x : xs) {
    s.add(x);
  }
  return s.variance();
}

double quantile(std::span<const double> xs, double q) {
  CSMABW_REQUIRE(!xs.empty(), "quantile of an empty sample");
  CSMABW_REQUIRE(q >= 0.0 && q <= 1.0, "q must be in [0, 1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) {
    return sorted.front();
  }
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace csmabw::stats
