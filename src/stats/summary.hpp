#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace csmabw::stats {

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable for the long ensembles the transient analysis
/// accumulates (tens of thousands of access-delay samples per packet
/// index).
class RunningStat {
 public:
  void add(double x);

  [[nodiscard]] std::int64_t count() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }
  /// Mean of the samples; 0 when empty.
  [[nodiscard]] double mean() const;
  /// Unbiased sample variance; 0 with fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Standard error of the mean; 0 when empty.
  [[nodiscard]] double sem() const;

  /// Merges another accumulator (parallel Welford combination).
  void merge(const RunningStat& other);

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean of a sample; 0 for an empty span.
[[nodiscard]] double mean(std::span<const double> xs);

/// Unbiased sample variance; 0 for fewer than two samples.
[[nodiscard]] double variance(std::span<const double> xs);

/// Linear-interpolation quantile (same convention as the R type-7 /
/// numpy default).  `q` in [0, 1]; sample must be non-empty.
[[nodiscard]] double quantile(std::span<const double> xs, double q);

}  // namespace csmabw::stats
