#include "topo/conflict_medium.hpp"

#include <algorithm>
#include <functional>

#include "mac/station.hpp"
#include "util/require.hpp"

namespace csmabw::topo {

ConflictGraphMedium::ConflictGraphMedium(sim::Simulator& sim,
                                         const mac::PhyParams& phy,
                                         Topology topology)
    : MediumBase(sim, phy), topo_(std::move(topology)) {
  topo_.validate();
  const std::size_t n = static_cast<std::size_t>(topo_.num_nodes());
  nodes_.resize(n);
  stations_.reserve(n);
  txs_.reserve(n);
  winners_.reserve(n);
  post_backoff_.reserve(n);
  went_busy_.reserve(n);
  went_idle_.reserve(n);
  ended_.reserve(n);
  newly_corrupted_.reserve(n);
  ended_txs_.reserve(n);
  ended_now_.assign(n, 0);
}

int ConflictGraphMedium::register_station(mac::DcfStation* s) {
  CSMABW_REQUIRE(s != nullptr, "null station");
  CSMABW_REQUIRE(static_cast<int>(stations_.size()) < topo_.num_nodes(),
                 "topology `" + topo_.spec + "` has " +
                     std::to_string(topo_.num_nodes()) +
                     " nodes; cannot register another station");
  stations_.push_back(s);
  return static_cast<int>(stations_.size()) - 1;
}

bool ConflictGraphMedium::sensed_busy(const mac::DcfStation& s) const {
  return nodes_[static_cast<std::size_t>(s.medium_slot())].sensed_tx > 0;
}

TimeNs ConflictGraphMedium::fire_time(const mac::DcfStation& s,
                                      const Node& n) const {
  const TimeNs start = std::max(n.idle_start, s.contend_from());
  return start + s.defer() + phy_.slot_time * s.backoff_slots();
}

void ConflictGraphMedium::update_contention(mac::DcfStation& s) {
  const int i = s.medium_slot();
  if (nodes_[static_cast<std::size_t>(i)].sensed_tx > 0) {
    return;  // the entry is rebuilt when i's channel goes idle
  }
  refresh_node(i);
  sync_pending_fire();
}

void ConflictGraphMedium::refresh_node(int i) {
  Node& n = nodes_[static_cast<std::size_t>(i)];
  const mac::DcfStation& s = *stations_[static_cast<std::size_t>(i)];
  n.can_fire = s.in_contention() && n.sensed_tx == 0 && n.tx == -1;
  if (n.can_fire) {
    n.fire = fire_time(s, n);
  }
  if (i == min_slot_) {
    // The minimum's owner changed; it may no longer be the minimum.
    rescan_min();
  } else if (n.can_fire &&
             (min_slot_ < 0 ||
              n.fire < nodes_[static_cast<std::size_t>(min_slot_)].fire)) {
    min_slot_ = i;
  }
}

void ConflictGraphMedium::rescan_min() {
  min_slot_ = -1;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.can_fire &&
        (min_slot_ < 0 ||
         n.fire < nodes_[static_cast<std::size_t>(min_slot_)].fire)) {
      min_slot_ = static_cast<int>(i);
    }
  }
}

void ConflictGraphMedium::sync_pending_fire() {
  pending_fire_.cancel();
  if (min_slot_ < 0) {
    return;
  }
  const TimeNs earliest = nodes_[static_cast<std::size_t>(min_slot_)].fire;
  CSMABW_REQUIRE(earliest >= sim_.now(), "fire time in the past");
  pending_fire_ =
      sim_.schedule_member_at<&ConflictGraphMedium::fire>(earliest, *this);
}

void ConflictGraphMedium::sync_pending_end() {
  pending_end_.cancel();
  if (txs_.empty()) {
    return;
  }
  TimeNs earliest = tx_end(txs_.front());
  for (const Tx& t : txs_) {
    earliest = std::min(earliest, tx_end(t));
  }
  CSMABW_REQUIRE(earliest >= sim_.now(), "transmission end in the past");
  pending_end_ =
      sim_.schedule_member_at<&ConflictGraphMedium::advance>(earliest, *this);
}

void ConflictGraphMedium::mark_corrupted(Tx& t) {
  if (!t.corrupted) {
    t.corrupted = true;  // retargets the end from ACK end to frame end
    newly_corrupted_.push_back(t.station);
  }
}

void ConflictGraphMedium::fire() {
  const TimeNs now = sim_.now();

  // The cache is authoritative for idle-channel stations: collect every
  // countdown completing exactly now.
  winners_.clear();
  post_backoff_.clear();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    Node& n = nodes_[i];
    if (!n.can_fire || n.fire != now) {
      continue;
    }
    n.can_fire = false;
    if (stations_[i]->has_frame()) {
      winners_.push_back(static_cast<int>(i));
    } else {
      post_backoff_.push_back(static_cast<int>(i));
    }
  }
  CSMABW_REQUIRE(!winners_.empty() || !post_backoff_.empty(),
                 "fire event with no station due");
  for (int i : post_backoff_) {
    stations_[static_cast<std::size_t>(i)]->finish_post_backoff();
  }
  if (winners_.empty()) {
    for (int i : post_backoff_) {
      refresh_node(i);
    }
    sync_pending_fire();
    return;
  }

  // Mark the winners before the seize pass so a neighbor that is about
  // to transmit itself is not frozen.
  for (int w : winners_) {
    nodes_[static_cast<std::size_t>(w)].tx = -2;
  }

  // Pass A: carrier-sense transitions.  A station whose channel goes
  // busy (0 -> 1 sensed transmissions) freezes against the idle period
  // that is ending now; ascending station order matches mac::Medium's
  // registration-order freeze loop.
  went_busy_.clear();
  for (int w : winners_) {
    for (int nb : topo_.sense[static_cast<std::size_t>(w)]) {
      if (nodes_[static_cast<std::size_t>(nb)].sensed_tx++ == 0) {
        went_busy_.push_back(nb);
      }
    }
  }
  std::sort(went_busy_.begin(), went_busy_.end());
  for (int nb : went_busy_) {
    Node& n = nodes_[static_cast<std::size_t>(nb)];
    n.can_fire = false;
    if (n.tx != -1) {
      continue;  // about to transmit (or already on the air)
    }
    stations_[static_cast<std::size_t>(nb)]->medium_seized(now, n.idle_start);
  }

  // Pass B: put the winners' first frames on the air (ascending).
  for (int w : winners_) {
    mac::DcfStation* s = stations_[static_cast<std::size_t>(w)];
    const bool rts = phy_.uses_rts(s->head_frame_bytes());
    const TimeNs first_dur =
        rts ? phy_.rts_tx_time() : s->head_frame_airtime();
    Tx t;
    t.station = w;
    t.rts = rts;
    t.start = now;
    t.first_end = now + first_dur;
    t.data_end = rts ? now + phy_.rts_tx_time() + phy_.sifs +
                           phy_.cts_tx_time() + phy_.sifs +
                           s->head_frame_airtime()
                     : t.first_end;
    t.success_end = t.data_end + phy_.sifs + phy_.ack_tx_time();
    s->tx_started(now);
    nodes_[static_cast<std::size_t>(w)].tx = static_cast<int>(txs_.size());
    txs_.push_back(t);
  }

  // Pass C: corruption.  A new transmission is corrupted by any
  // interferer currently on the air (its first frame starts inside
  // foreign airtime); an ongoing interferer is corrupted in return only
  // while its own first frame is still in flight.
  newly_corrupted_.clear();
  for (int w : winners_) {
    Tx& wt = txs_[static_cast<std::size_t>(
        nodes_[static_cast<std::size_t>(w)].tx)];
    for (int j : topo_.interfere[static_cast<std::size_t>(w)]) {
      const int jt_idx = nodes_[static_cast<std::size_t>(j)].tx;
      if (jt_idx < 0) {
        continue;  // j is not on the air
      }
      Tx& jt = txs_[static_cast<std::size_t>(jt_idx)];
      if (&jt == &wt || tx_end(jt) <= now) {
        continue;  // self, or ending exactly now: no overlap
      }
      mark_corrupted(wt);
      if (now < jt.first_end) {
        mark_corrupted(jt);
      }
    }
  }
  if (!newly_corrupted_.empty()) {
    std::sort(newly_corrupted_.begin(), newly_corrupted_.end());
    ++stats_.collisions;
    stats_.collided_frames += newly_corrupted_.size();
    if (trace::TraceSink* sink = sim_.trace()) {
      trace::TraceEvent e;
      e.time = now;
      e.kind = trace::EventKind::kCollision;
      e.station = trace::kChannelStation;
      TimeNs end = now;
      for (int st : newly_corrupted_) {
        end = std::max(
            end, txs_[static_cast<std::size_t>(
                          nodes_[static_cast<std::size_t>(st)].tx)]
                     .first_end);
      }
      e.aux = end;
      e.value = static_cast<std::int32_t>(newly_corrupted_.size());
      sink->on_event(e);
    }
  }

  rescan_min();
  sync_pending_fire();
  sync_pending_end();
}

void ConflictGraphMedium::advance() {
  const TimeNs now = sim_.now();
  ended_.clear();
  for (std::size_t i = 0; i < txs_.size(); ++i) {
    if (tx_end(txs_[i]) == now) {
      ended_.push_back(static_cast<int>(i));
    }
  }
  CSMABW_REQUIRE(!ended_.empty(), "transmission end event with nothing ending");

  // Channel transitions first, before any callback (mac::Medium clears
  // busy_ and moves the idle origin before notifying): every sensing
  // neighbor of an ended transmission decrements its busy count, and a
  // corrupted ending poisons the next idle period (EIFS) of everyone
  // who heard it.
  went_idle_.clear();
  for (int idx : ended_) {
    const Tx& t = txs_[static_cast<std::size_t>(idx)];
    ended_now_[static_cast<std::size_t>(t.station)] = 1;
    nodes_[static_cast<std::size_t>(t.station)].tx = -1;
    for (int nb : topo_.sense[static_cast<std::size_t>(t.station)]) {
      Node& n = nodes_[static_cast<std::size_t>(nb)];
      if (t.corrupted) {
        n.saw_corrupt = true;
      }
      if (--n.sensed_tx == 0) {
        n.idle_start = now;
        went_idle_.push_back(nb);
      }
    }
  }

  // Copy the ended records out (ascending station order, as
  // mac::Medium's transmitter loop) and compact the active slab before
  // any callback runs.
  ended_txs_.clear();
  for (int idx : ended_) {
    ended_txs_.push_back(txs_[static_cast<std::size_t>(idx)]);
  }
  std::sort(ended_txs_.begin(), ended_txs_.end(),
            [](const Tx& a, const Tx& b) { return a.station < b.station; });
  std::sort(ended_.begin(), ended_.end(), std::greater<>());
  for (int idx : ended_) {  // descending, so swap-erase stays valid
    const int last = static_cast<int>(txs_.size()) - 1;
    if (idx != last) {
      txs_[static_cast<std::size_t>(idx)] =
          txs_[static_cast<std::size_t>(last)];
      nodes_[static_cast<std::size_t>(
                 txs_[static_cast<std::size_t>(idx)].station)]
          .tx = idx;
    }
    txs_.pop_back();
  }

  // Transmitter outcomes: retry backoff behind the CTS/ACK timeout, or
  // next-packet / post-backoff after a success.
  for (const Tx& t : ended_txs_) {
    mac::DcfStation* s = stations_[static_cast<std::size_t>(t.station)];
    if (t.corrupted) {
      s->tx_collided(t.first_end +
                     (t.rts ? phy_.cts_timeout() : phy_.ack_timeout()));
    } else {
      ++stats_.successes;
      s->tx_succeeded(t.data_end, now);
    }
    stats_.busy_time += tx_end(t) - t.start;
  }

  // Bystanders whose channel just went idle defer DIFS after a clean
  // period, EIFS when a corrupted transmission ended in it.  Stations
  // that transmitted until this instant set their own deference in
  // their outcome callback; stations still transmitting have no
  // countdown to resume.
  std::sort(went_idle_.begin(), went_idle_.end());
  for (int nb : went_idle_) {
    Node& n = nodes_[static_cast<std::size_t>(nb)];
    const bool corrupt = n.saw_corrupt;
    n.saw_corrupt = false;
    if (ended_now_[static_cast<std::size_t>(nb)] || n.tx >= 0) {
      continue;
    }
    stations_[static_cast<std::size_t>(nb)]->occupation_observed(corrupt);
  }

  // The idle origin moved for every station that went idle, and the
  // ended transmitters changed contention state: refresh exactly those
  // entries (everyone else's channel did not change).
  for (const Tx& t : ended_txs_) {
    refresh_node(t.station);
  }
  for (int nb : went_idle_) {
    refresh_node(nb);
  }
  for (const Tx& t : ended_txs_) {
    ended_now_[static_cast<std::size_t>(t.station)] = 0;
  }
  sync_pending_fire();
  sync_pending_end();
}

}  // namespace csmabw::topo
