#include "topo/conflict_medium.hpp"

#include <algorithm>
#include <functional>

#include "mac/station.hpp"
#include "util/require.hpp"

namespace csmabw::topo {

ConflictGraphMedium::ConflictGraphMedium(sim::Simulator& sim,
                                         const mac::PhyParams& phy,
                                         Topology topology)
    : MediumBase(sim, phy), topo_(std::move(topology)) {
  topo_.validate();
  sense_csr_ = CsrAdjacency(topo_.sense);
  interfere_csr_ = CsrAdjacency(topo_.interfere);
  const std::size_t n = static_cast<std::size_t>(topo_.num_nodes());
  stations_.reserve(n);
  sensed_tx_.assign(n, 0);
  idle_start_.assign(n, TimeNs{});
  saw_corrupt_.assign(n, 0);
  tx_state_.assign(n, kTxIdle);
  txs_.reserve(n);
  dense_ = topo_.num_nodes() <= kDenseCliqueLimit && topo_.is_clique();
  if (dense_) {
    fire_time_.assign(n, TimeNs{});
    can_fire_.assign(n, 0);
  } else {
    fire_idx_.reset(static_cast<int>(n));
  }
  end_idx_.reset(static_cast<int>(n));
  winners_.reserve(n);
  post_backoff_.reserve(n);
  went_busy_.reserve(n);
  went_idle_.reserve(n);
  ended_.reserve(n);
  newly_corrupted_.reserve(n);
  ended_txs_.reserve(n);
  ended_now_.assign(n, 0);
}

int ConflictGraphMedium::register_station(mac::DcfStation* s) {
  CSMABW_REQUIRE(s != nullptr, "null station");
  CSMABW_REQUIRE(static_cast<int>(stations_.size()) < topo_.num_nodes(),
                 "topology `" + topo_.spec + "` has " +
                     std::to_string(topo_.num_nodes()) +
                     " nodes; cannot register another station");
  stations_.push_back(s);
  return static_cast<int>(stations_.size()) - 1;
}

void ConflictGraphMedium::bind_metrics(obs::Registry* reg) {
  if (reg == nullptr) {
    m_updates_ = obs::Counter{};
    m_sweeps_ = obs::Counter{};
    m_rearms_ = obs::Counter{};
    return;
  }
  m_updates_ = reg->counter("topo.medium.updates");
  m_sweeps_ = reg->counter("topo.medium.neighborhood_sweeps");
  m_rearms_ = reg->counter("topo.medium.fire_rearms");
}

bool ConflictGraphMedium::sensed_busy(const mac::DcfStation& s) const {
  return sensed_tx_[static_cast<std::size_t>(s.medium_slot())] > 0;
}

TimeNs ConflictGraphMedium::fire_time(const mac::DcfStation& s, int i) const {
  const TimeNs start =
      std::max(idle_start_[static_cast<std::size_t>(i)], s.contend_from());
  return start + s.defer() + phy_.slot_time * s.backoff_slots();
}

void ConflictGraphMedium::update_contention(mac::DcfStation& s) {
  m_updates_.add(1);
  const int i = s.medium_slot();
  if (sensed_tx_[static_cast<std::size_t>(i)] > 0) {
    return;  // the entry is rebuilt when i's channel goes idle
  }
  refresh_node(i);
  sync_pending_fire();
}

void ConflictGraphMedium::refresh_node(int i) {
  const mac::DcfStation& s = *stations_[static_cast<std::size_t>(i)];
  const bool can_fire = s.in_contention() &&
                        sensed_tx_[static_cast<std::size_t>(i)] == 0 &&
                        tx_state_[static_cast<std::size_t>(i)] == kTxIdle;
  if (dense_) {
    can_fire_[static_cast<std::size_t>(i)] = can_fire ? 1 : 0;
    if (can_fire) {
      fire_time_[static_cast<std::size_t>(i)] = fire_time(s, i);
    }
    if (i == min_slot_) {
      // The minimum's owner changed; it may no longer be the minimum.
      rescan_min();
    } else if (can_fire &&
               (min_slot_ < 0 ||
                fire_time_[static_cast<std::size_t>(i)] <
                    fire_time_[static_cast<std::size_t>(min_slot_)])) {
      min_slot_ = i;
    }
    return;
  }
  if (can_fire) {
    fire_idx_.set(i, fire_time(s, i));
  } else {
    fire_idx_.erase(i);
  }
}

void ConflictGraphMedium::rescan_min() {
  min_slot_ = -1;
  const int n = static_cast<int>(can_fire_.size());
  for (int i = 0; i < n; ++i) {
    if (can_fire_[static_cast<std::size_t>(i)] != 0 &&
        (min_slot_ < 0 || fire_time_[static_cast<std::size_t>(i)] <
                              fire_time_[static_cast<std::size_t>(min_slot_)])) {
      min_slot_ = i;
    }
  }
}

void ConflictGraphMedium::sync_pending_fire() {
  pending_fire_.cancel();
  TimeNs earliest;
  if (dense_) {
    if (min_slot_ < 0) {
      return;
    }
    earliest = fire_time_[static_cast<std::size_t>(min_slot_)];
  } else {
    if (fire_idx_.empty()) {
      return;
    }
    earliest = fire_idx_.top_time();
  }
  CSMABW_REQUIRE(earliest >= sim_.now(), "fire time in the past");
  m_rearms_.add(1);
  pending_fire_ =
      sim_.schedule_member_at<&ConflictGraphMedium::fire>(earliest, *this);
}

void ConflictGraphMedium::sync_pending_end() {
  pending_end_.cancel();
  if (end_idx_.empty()) {
    return;
  }
  const TimeNs earliest = end_idx_.top_time();
  CSMABW_REQUIRE(earliest >= sim_.now(), "transmission end in the past");
  pending_end_ =
      sim_.schedule_member_at<&ConflictGraphMedium::advance>(earliest, *this);
}

void ConflictGraphMedium::mark_corrupted(Tx& t) {
  if (!t.corrupted) {
    t.corrupted = true;  // retargets the end from ACK end to frame end
    newly_corrupted_.push_back(t.station);
  }
}

void ConflictGraphMedium::fire() {
  const TimeNs now = sim_.now();

  // The fire index is authoritative for idle-channel stations: pop
  // every countdown completing exactly now.  The (time, station) heap
  // order surfaces them in ascending station order — the same order
  // the old full scan produced.
  winners_.clear();
  post_backoff_.clear();
  if (dense_) {
    const int n = static_cast<int>(can_fire_.size());
    for (int i = 0; i < n; ++i) {
      if (can_fire_[static_cast<std::size_t>(i)] == 0 ||
          fire_time_[static_cast<std::size_t>(i)] != now) {
        continue;
      }
      can_fire_[static_cast<std::size_t>(i)] = 0;
      if (stations_[static_cast<std::size_t>(i)]->has_frame()) {
        winners_.push_back(i);
      } else {
        post_backoff_.push_back(i);
      }
    }
  } else {
    while (!fire_idx_.empty() && fire_idx_.top_time() == now) {
      const int i = fire_idx_.pop_top();
      if (stations_[static_cast<std::size_t>(i)]->has_frame()) {
        winners_.push_back(i);
      } else {
        post_backoff_.push_back(i);
      }
    }
  }
  CSMABW_REQUIRE(!winners_.empty() || !post_backoff_.empty(),
                 "fire event with no station due");
  for (int i : post_backoff_) {
    stations_[static_cast<std::size_t>(i)]->finish_post_backoff();
  }
  if (winners_.empty()) {
    for (int i : post_backoff_) {
      refresh_node(i);
    }
    sync_pending_fire();
    return;
  }

  // Mark the winners before the seize pass so a neighbor that is about
  // to transmit itself is not frozen.
  for (int w : winners_) {
    tx_state_[static_cast<std::size_t>(w)] = kTxWinning;
  }

  // Pass A: carrier-sense transitions.  A station whose channel goes
  // busy (0 -> 1 sensed transmissions) freezes against the idle period
  // that is ending now; ascending station order matches mac::Medium's
  // registration-order freeze loop.
  went_busy_.clear();
  for (int w : winners_) {
    m_sweeps_.add(1);
    for (int nb : sense_csr_.row(w)) {
      if (sensed_tx_[static_cast<std::size_t>(nb)]++ == 0) {
        went_busy_.push_back(nb);
      }
    }
  }
  std::sort(went_busy_.begin(), went_busy_.end());
  for (int nb : went_busy_) {
    // A busy channel has no live countdown.  (Dense path: min_slot_ may
    // go stale here; the rescan below runs before the next re-arm.)
    if (dense_) {
      can_fire_[static_cast<std::size_t>(nb)] = 0;
    } else {
      fire_idx_.erase(nb);
    }
    if (tx_state_[static_cast<std::size_t>(nb)] != kTxIdle) {
      continue;  // about to transmit (or already on the air)
    }
    stations_[static_cast<std::size_t>(nb)]->medium_seized(
        now, idle_start_[static_cast<std::size_t>(nb)]);
  }

  // Pass B: put the winners' first frames on the air (ascending).
  for (int w : winners_) {
    mac::DcfStation* s = stations_[static_cast<std::size_t>(w)];
    const bool rts = phy_.uses_rts(s->head_frame_bytes());
    const TimeNs first_dur =
        rts ? phy_.rts_tx_time() : s->head_frame_airtime();
    Tx t;
    t.station = w;
    t.rts = rts;
    t.start = now;
    t.first_end = now + first_dur;
    t.data_end = rts ? now + phy_.rts_tx_time() + phy_.sifs +
                           phy_.cts_tx_time() + phy_.sifs +
                           s->head_frame_airtime()
                     : t.first_end;
    t.success_end = t.data_end + phy_.sifs + phy_.ack_tx_time();
    s->tx_started(now);
    tx_state_[static_cast<std::size_t>(w)] =
        static_cast<std::int32_t>(txs_.size());
    end_idx_.set(w, tx_end(t));
    txs_.push_back(t);
  }

  // Pass C: corruption.  A new transmission is corrupted by any
  // interferer currently on the air (its first frame starts inside
  // foreign airtime); an ongoing interferer is corrupted in return only
  // while its own first frame is still in flight.
  newly_corrupted_.clear();
  for (int w : winners_) {
    Tx& wt = txs_[static_cast<std::size_t>(
        tx_state_[static_cast<std::size_t>(w)])];
    m_sweeps_.add(1);
    for (int j : interfere_csr_.row(w)) {
      const std::int32_t jt_idx = tx_state_[static_cast<std::size_t>(j)];
      if (jt_idx < 0) {
        continue;  // j is not on the air
      }
      Tx& jt = txs_[static_cast<std::size_t>(jt_idx)];
      if (&jt == &wt || tx_end(jt) <= now) {
        continue;  // self, or ending exactly now: no overlap
      }
      mark_corrupted(wt);
      if (now < jt.first_end) {
        mark_corrupted(jt);
      }
    }
  }
  if (!newly_corrupted_.empty()) {
    std::sort(newly_corrupted_.begin(), newly_corrupted_.end());
    // Corruption retargets the end from ACK end to first-frame end:
    // rekey the end index for everyone whose end just moved (winners
    // and ongoing interferers alike — set() is an O(log N) rekey).
    for (int st : newly_corrupted_) {
      end_idx_.set(st, txs_[static_cast<std::size_t>(
                              tx_state_[static_cast<std::size_t>(st)])]
                           .first_end);
    }
    ++stats_.collisions;
    stats_.collided_frames += newly_corrupted_.size();
    if (trace::TraceSink* sink = sim_.trace()) {
      trace::TraceEvent e;
      e.time = now;
      e.kind = trace::EventKind::kCollision;
      e.station = trace::kChannelStation;
      TimeNs end = now;
      for (int st : newly_corrupted_) {
        end = std::max(
            end, txs_[static_cast<std::size_t>(
                          tx_state_[static_cast<std::size_t>(st)])]
                     .first_end);
      }
      e.aux = end;
      e.value = static_cast<std::int32_t>(newly_corrupted_.size());
      sink->on_event(e);
    }
  }

  if (dense_) {
    rescan_min();  // due-collection and Pass A invalidated flags in bulk
  }
  sync_pending_fire();
  sync_pending_end();
}

void ConflictGraphMedium::advance() {
  const TimeNs now = sim_.now();
  // Pop everything ending exactly now: ascending station order, so the
  // copied-out records below need no sort.
  ended_.clear();
  ended_txs_.clear();
  while (!end_idx_.empty() && end_idx_.top_time() == now) {
    const int st = end_idx_.pop_top();
    ended_.push_back(
        static_cast<int>(tx_state_[static_cast<std::size_t>(st)]));
    ended_txs_.push_back(txs_[static_cast<std::size_t>(
        tx_state_[static_cast<std::size_t>(st)])]);
  }
  CSMABW_REQUIRE(!ended_.empty(), "transmission end event with nothing ending");

  // Channel transitions first, before any callback (mac::Medium clears
  // busy_ and moves the idle origin before notifying): every sensing
  // neighbor of an ended transmission decrements its busy count, and a
  // corrupted ending poisons the next idle period (EIFS) of everyone
  // who heard it.
  went_idle_.clear();
  for (const Tx& t : ended_txs_) {
    ended_now_[static_cast<std::size_t>(t.station)] = 1;
    tx_state_[static_cast<std::size_t>(t.station)] = kTxIdle;
    m_sweeps_.add(1);
    for (int nb : sense_csr_.row(t.station)) {
      if (t.corrupted) {
        saw_corrupt_[static_cast<std::size_t>(nb)] = 1;
      }
      if (--sensed_tx_[static_cast<std::size_t>(nb)] == 0) {
        idle_start_[static_cast<std::size_t>(nb)] = now;
        went_idle_.push_back(nb);
      }
    }
  }

  // Compact the active slab before any callback runs (descending slab
  // index, so swap-erase stays valid).
  std::sort(ended_.begin(), ended_.end(), std::greater<>());
  for (int idx : ended_) {
    const int last = static_cast<int>(txs_.size()) - 1;
    if (idx != last) {
      txs_[static_cast<std::size_t>(idx)] =
          txs_[static_cast<std::size_t>(last)];
      tx_state_[static_cast<std::size_t>(
          txs_[static_cast<std::size_t>(idx)].station)] =
          static_cast<std::int32_t>(idx);
    }
    txs_.pop_back();
  }

  // Transmitter outcomes: retry backoff behind the CTS/ACK timeout, or
  // next-packet / post-backoff after a success.
  for (const Tx& t : ended_txs_) {
    mac::DcfStation* s = stations_[static_cast<std::size_t>(t.station)];
    if (t.corrupted) {
      s->tx_collided(t.first_end +
                     (t.rts ? phy_.cts_timeout() : phy_.ack_timeout()));
    } else {
      ++stats_.successes;
      s->tx_succeeded(t.data_end, now);
    }
    stats_.busy_time += tx_end(t) - t.start;
  }

  // Bystanders whose channel just went idle defer DIFS after a clean
  // period, EIFS when a corrupted transmission ended in it.  Stations
  // that transmitted until this instant set their own deference in
  // their outcome callback; stations still transmitting have no
  // countdown to resume.
  std::sort(went_idle_.begin(), went_idle_.end());
  for (int nb : went_idle_) {
    const bool corrupt = saw_corrupt_[static_cast<std::size_t>(nb)] != 0;
    saw_corrupt_[static_cast<std::size_t>(nb)] = 0;
    if (ended_now_[static_cast<std::size_t>(nb)] != 0 ||
        tx_state_[static_cast<std::size_t>(nb)] >= 0) {
      continue;
    }
    stations_[static_cast<std::size_t>(nb)]->occupation_observed(corrupt);
  }

  // The idle origin moved for every station that went idle, and the
  // ended transmitters changed contention state: refresh exactly those
  // entries (everyone else's channel did not change).
  for (const Tx& t : ended_txs_) {
    refresh_node(t.station);
  }
  for (int nb : went_idle_) {
    refresh_node(nb);
  }
  for (const Tx& t : ended_txs_) {
    ended_now_[static_cast<std::size_t>(t.station)] = 0;
  }
  sync_pending_fire();
  sync_pending_end();
}

}  // namespace csmabw::topo
