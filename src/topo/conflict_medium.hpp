#pragma once

#include <vector>

#include "mac/medium.hpp"
#include "topo/topology.hpp"

namespace csmabw::topo {

/// CSMA/CA medium over a carrier-sense/interference conflict graph —
/// the spatial generalization of the classic single-collision-domain
/// mac::Medium.
///
/// Station i's channel is the set of its sensing neighbors: i defers,
/// freezes its backoff and applies EIFS against transmissions of
/// j in sense[i] only.  A transmission of i is corrupted iff the
/// airtime of some j in interfere[i] overlaps i's *first* frame (the
/// data frame, or the RTS above the RTS threshold) — once the first
/// frame survives, the exchange completes.  Both hidden terminals
/// (interferers outside the sensing set collide on any temporal
/// overlap, not just slot coincidences) and exposed terminals
/// (non-neighbors reuse the channel concurrently) fall out of the two
/// edge sets.
///
/// On a complete graph this reduces exactly to mac::Medium: fire
/// times, callback order, RNG draws and trace emission are
/// bit-identical for uniform frame airtimes (the conflict graph ends
/// each transmission at its own frame boundary, the legacy medium
/// batches all of a collision's ends at the latest one — the two
/// coincide when colliding frames share size and rate, and production
/// clique scenarios route to mac::Medium anyway; see
/// core::ScenarioCell).  Known accounting difference:
/// MediumStats::busy_time sums per-transmitter airtime (spatially
/// there is no single channel to take a union over) and successes are
/// counted when the exchange *ends*, not when it starts.
///
/// The hot path stays allocation-free after construction: fire-time
/// caches and scratch lists are preallocated, rescheduling is the same
/// cancel + re-arm single-pending-event pattern as mac::Medium, and
/// transmission records live in a fixed-capacity slab.
class ConflictGraphMedium : public mac::MediumBase {
 public:
  /// `topology.num_nodes()` fixes the station count: exactly that many
  /// stations must be registered before the simulation starts.
  ConflictGraphMedium(sim::Simulator& sim, const mac::PhyParams& phy,
                      Topology topology);

  int register_station(mac::DcfStation* s) override;
  void update_contention(mac::DcfStation& s) override;
  [[nodiscard]] bool sensed_busy(const mac::DcfStation& s) const override;

  [[nodiscard]] const Topology& topology() const { return topo_; }
  /// Transmissions currently on the air anywhere in the graph.
  [[nodiscard]] int active_transmissions() const {
    return static_cast<int>(txs_.size());
  }
  /// Start of station i's current idle period (meaningful while i's
  /// channel is idle).
  [[nodiscard]] TimeNs idle_since(int i) const {
    return nodes_[static_cast<std::size_t>(i)].idle_start;
  }

 private:
  /// Per-station channel state.
  struct Node {
    TimeNs fire;            ///< valid only while `can_fire`
    bool can_fire = false;  ///< in contention and sensing an idle channel
    int sensed_tx = 0;      ///< sensing neighbors currently on the air
    TimeNs idle_start;      ///< last busy->idle transition of i's channel
    bool saw_corrupt = false;  ///< a corrupted neighbor tx ended this period
    int tx = -1;            ///< index into txs_ while transmitting
  };

  /// One transmission on the air.
  struct Tx {
    int station = -1;
    TimeNs start;
    TimeNs first_end;    ///< end of the first frame (data, or RTS)
    TimeNs data_end;     ///< end of the data exchange if it succeeds
    TimeNs success_end;  ///< end of the ACK exchange if it succeeds
    bool corrupted = false;
    bool rts = false;
  };

  [[nodiscard]] TimeNs tx_end(const Tx& t) const {
    return t.corrupted ? t.first_end : t.success_end;
  }
  [[nodiscard]] TimeNs fire_time(const mac::DcfStation& s,
                                 const Node& n) const;
  void refresh_node(int i);
  void rescan_min();
  /// Re-arms the pending fire event at the cached minimum (cancel +
  /// fresh schedule — the event-sequence discipline of mac::Medium).
  void sync_pending_fire();
  /// Re-arms the pending end event at the earliest active tx_end.
  void sync_pending_end();
  void fire();
  void advance();
  void mark_corrupted(Tx& t);

  Topology topo_;
  std::vector<mac::DcfStation*> stations_;
  std::vector<Node> nodes_;
  std::vector<Tx> txs_;
  int min_slot_ = -1;  ///< index of the cached earliest fire, -1 = none
  sim::EventHandle pending_fire_;
  sim::EventHandle pending_end_;

  // Preallocated scratch (station ids / tx indices); reused per event.
  std::vector<int> winners_;
  std::vector<int> post_backoff_;
  std::vector<int> went_busy_;
  std::vector<int> went_idle_;
  std::vector<int> ended_;
  std::vector<int> newly_corrupted_;
  std::vector<Tx> ended_txs_;
  std::vector<char> ended_now_;  ///< station transmitted until this instant
};

}  // namespace csmabw::topo
