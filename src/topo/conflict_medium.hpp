#pragma once

#include <cstdint>
#include <vector>

#include "mac/medium.hpp"
#include "obs/metrics.hpp"
#include "sim/timer_index.hpp"
#include "topo/topology.hpp"

namespace csmabw::topo {

/// CSMA/CA medium over a carrier-sense/interference conflict graph —
/// the spatial generalization of the classic single-collision-domain
/// mac::Medium.
///
/// Station i's channel is the set of its sensing neighbors: i defers,
/// freezes its backoff and applies EIFS against transmissions of
/// j in sense[i] only.  A transmission of i is corrupted iff the
/// airtime of some j in interfere[i] overlaps i's *first* frame (the
/// data frame, or the RTS above the RTS threshold) — once the first
/// frame survives, the exchange completes.  Both hidden terminals
/// (interferers outside the sensing set collide on any temporal
/// overlap, not just slot coincidences) and exposed terminals
/// (non-neighbors reuse the channel concurrently) fall out of the two
/// edge sets.
///
/// On a complete graph this reduces exactly to mac::Medium: fire
/// times, callback order, RNG draws and trace emission are
/// bit-identical for uniform frame airtimes (the conflict graph ends
/// each transmission at its own frame boundary, the legacy medium
/// batches all of a collision's ends at the latest one — the two
/// coincide when colliding frames share size and rate, and production
/// clique scenarios route to mac::Medium anyway; see
/// core::ScenarioCell).  Known accounting difference:
/// MediumStats::busy_time sums per-transmitter airtime (spatially
/// there is no single channel to take a union over) and successes are
/// counted when the exchange *ends*, not when it starts.
///
/// ## Scaling layout (1k–10k-station lattices)
///
/// Every per-event cost is O(degree log N), never O(N):
///
///  - Adjacency is a flat CSR copy of the topology (CsrAdjacency): a
///    neighborhood sweep reads one contiguous int32 span.
///  - Per-station channel state lives in structure-of-arrays slabs
///    (sensed-transmission counts, idle origins, EIFS poison flags,
///    transmission links) indexed by station id — a sweep over a
///    neighborhood touches parallel arrays, not scattered structs.
///  - Fire times and transmission ends live in two addressable min-heaps
///    (sim::TimerIndex) keyed (time, station): a contention change
///    rekeys one entry in O(log N); finding "everything due now" pops in
///    deterministic ascending-station order.  This generalizes the
///    O(1)-amortized cached-minimum trick of mac::Medium to O(degree):
///    a state transition touches the transitioning station's
///    neighborhood only — never all N stations.
///
/// Fully-connected graphs are the exception: a clique has no sparsity
/// to exploit — every event touches all N stations regardless — and
/// the heap's per-entry bookkeeping costs more than the flat rescan it
/// replaces.  Small cliques (≤ kDenseCliqueLimit) therefore keep the
/// dense cached-minimum path: a `fire_time_`/`can_fire_` slab pair plus
/// `min_slot_`, rescanned O(N) when the minimum's owner changes.
/// (Production clique scenarios route to mac::Medium anyway; this
/// covers direct construction, as in the microbench.)
///
/// The event-sequence discipline is unchanged from the rescanning
/// implementation: the pending fire/end events are still cancelled and
/// re-armed at the same call sites with the same times, so event
/// numbering — and therefore every .cctrace/CSV byte — is identical;
/// only the cost of *finding* the minimum changed.
///
/// The hot path stays allocation-free after construction: the heaps,
/// slabs and scratch lists are preallocated and transmission records
/// live in a fixed-capacity slab.
class ConflictGraphMedium : public mac::MediumBase {
 public:
  /// `topology.num_nodes()` fixes the station count: exactly that many
  /// stations must be registered before the simulation starts.
  ConflictGraphMedium(sim::Simulator& sim, const mac::PhyParams& phy,
                      Topology topology);

  int register_station(mac::DcfStation* s) override;
  void update_contention(mac::DcfStation& s) override;
  [[nodiscard]] bool sensed_busy(const mac::DcfStation& s) const override;
  void bind_metrics(obs::Registry* reg) override;

  [[nodiscard]] const Topology& topology() const { return topo_; }
  /// Transmissions currently on the air anywhere in the graph.
  [[nodiscard]] int active_transmissions() const {
    return static_cast<int>(txs_.size());
  }
  /// Start of station i's current idle period (meaningful while i's
  /// channel is idle).
  [[nodiscard]] TimeNs idle_since(int i) const {
    return idle_start_[static_cast<std::size_t>(i)];
  }

 private:
  /// One transmission on the air.
  struct Tx {
    int station = -1;
    TimeNs start;
    TimeNs first_end;    ///< end of the first frame (data, or RTS)
    TimeNs data_end;     ///< end of the data exchange if it succeeds
    TimeNs success_end;  ///< end of the ACK exchange if it succeeds
    bool corrupted = false;
    bool rts = false;
  };

  /// tx_state_ slab conventions.
  static constexpr std::int32_t kTxIdle = -1;     ///< not transmitting
  static constexpr std::int32_t kTxWinning = -2;  ///< firing this instant

  /// Cliques up to this size use the dense min-cache fire path instead
  /// of the addressable heap (no sparsity to exploit: degree == N - 1).
  static constexpr int kDenseCliqueLimit = 64;

  [[nodiscard]] TimeNs tx_end(const Tx& t) const {
    return t.corrupted ? t.first_end : t.success_end;
  }
  [[nodiscard]] TimeNs fire_time(const mac::DcfStation& s, int i) const;
  /// Recomputes station i's fire eligibility and rekeys (or erases) its
  /// fire-index entry — O(log N), no global rescan.  On the dense path
  /// it updates the fire_time_/can_fire_ slabs and challenges (or
  /// rescans) the cached minimum instead.
  void refresh_node(int i);
  /// Dense path only: full O(N) rescan for the earliest live countdown.
  void rescan_min();
  /// Re-arms the pending fire event at the fire index's minimum (cancel
  /// + fresh schedule — the event-sequence discipline of mac::Medium).
  void sync_pending_fire();
  /// Re-arms the pending end event at the end index's minimum.
  void sync_pending_end();
  void fire();
  void advance();
  void mark_corrupted(Tx& t);

  Topology topo_;
  CsrAdjacency sense_csr_;
  CsrAdjacency interfere_csr_;
  std::vector<mac::DcfStation*> stations_;

  // Structure-of-arrays per-station channel state, indexed by station.
  std::vector<std::int32_t> sensed_tx_;  ///< sensing neighbors on the air
  std::vector<TimeNs> idle_start_;   ///< last busy->idle transition
  std::vector<char> saw_corrupt_;    ///< corrupted neighbor tx this period
  std::vector<std::int32_t> tx_state_;  ///< txs_ index, or kTxIdle/kTxWinning

  std::vector<Tx> txs_;
  /// Stations with a live countdown, keyed by fire time.  Membership is
  /// the old `can_fire` flag: in contention, channel idle, not on air.
  /// Unused on the dense (clique) path.
  sim::TimerIndex fire_idx_;
  // Dense (clique) fire path: flat slabs plus a cached minimum.
  bool dense_ = false;
  std::vector<TimeNs> fire_time_;  ///< countdown deadline (valid if can_fire_)
  std::vector<char> can_fire_;     ///< in contention, idle channel, off air
  int min_slot_ = -1;              ///< argmin over can_fire_ of fire_time_
  /// Transmitting stations, keyed by their transmission's end.
  sim::TimerIndex end_idx_;
  sim::EventHandle pending_fire_;
  sim::EventHandle pending_end_;

  // Hot-path instrumentation (unbound by default: one branch each).
  obs::Counter m_updates_;  ///< topo.medium.updates
  obs::Counter m_sweeps_;   ///< topo.medium.neighborhood_sweeps
  obs::Counter m_rearms_;   ///< topo.medium.fire_rearms

  // Preallocated scratch (station ids / tx indices); reused per event.
  std::vector<int> winners_;
  std::vector<int> post_backoff_;
  std::vector<int> went_busy_;
  std::vector<int> went_idle_;
  std::vector<int> ended_;
  std::vector<int> newly_corrupted_;
  std::vector<Tx> ended_txs_;
  std::vector<char> ended_now_;  ///< station transmitted until this instant
};

}  // namespace csmabw::topo
