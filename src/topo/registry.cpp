#include "topo/registry.hpp"

#include <charconv>

#include "util/require.hpp"

namespace csmabw::topo {

namespace {

int parse_count(std::string_view arg, const std::string& what) {
  // Parse into 64 bits so ring:4000000000 is reported as out of range
  // rather than wrapping inside from_chars' int overflow handling path
  // with the generic grammar error.
  long long value = 0;
  const auto [ptr, ec] =
      std::from_chars(arg.data(), arg.data() + arg.size(), value);
  CSMABW_REQUIRE(ec != std::errc::result_out_of_range,
                 what + " `" + std::string(arg) +
                     "` is out of range (max " +
                     std::to_string(kMaxTopologyNodes) + ")");
  CSMABW_REQUIRE(ec == std::errc{} && ptr == arg.data() + arg.size() &&
                     value >= 1,
                 what + " needs a positive integer, got `" +
                     std::string(arg) + "`");
  CSMABW_REQUIRE(value <= kMaxTopologyNodes,
                 what + " " + std::to_string(value) +
                     " exceeds the topology cap of " +
                     std::to_string(kMaxTopologyNodes) + " stations");
  return static_cast<int>(value);
}

std::pair<int, int> parse_grid_arg(std::string_view arg) {
  const std::size_t x = arg.find('x');
  CSMABW_REQUIRE(x != std::string_view::npos,
                 "grid arg must be RxC (e.g. grid:3x3), got `" +
                     std::string(arg) + "`");
  const int rows = parse_count(arg.substr(0, x), "grid rows");
  const int cols = parse_count(arg.substr(x + 1), "grid cols");
  // Each dimension fits, but the product can still overflow int
  // (grid:100000x100000); check it in 64 bits before anyone multiplies.
  CSMABW_REQUIRE(static_cast<long long>(rows) * cols <= kMaxTopologyNodes,
                 "grid " + std::to_string(rows) + "x" + std::to_string(cols) +
                     " has " + std::to_string(static_cast<long long>(rows) *
                                              cols) +
                     " stations, above the topology cap of " +
                     std::to_string(kMaxTopologyNodes));
  return {rows, cols};
}

void require_station_match(const std::string& spec, int nodes, int stations) {
  CSMABW_REQUIRE(nodes == stations,
                 "topology `" + spec + "` has " + std::to_string(nodes) +
                     " nodes but the cell has " + std::to_string(stations) +
                     " stations (probe + contenders)");
}

}  // namespace

void TopologyRegistry::add(std::string name, Generator generator) {
  CSMABW_REQUIRE(!name.empty(), "topology name must be non-empty");
  CSMABW_REQUIRE(static_cast<bool>(generator.canonicalize) &&
                     static_cast<bool>(generator.build),
                 "topology generator must set canonicalize and build");
  const auto [it, inserted] =
      entries_.emplace(std::move(name), std::move(generator));
  CSMABW_REQUIRE(inserted,
                 "topology `" + it->first + "` is already registered");
}

bool TopologyRegistry::contains(std::string_view name) const {
  return entries_.find(name) != entries_.end();
}

std::vector<std::string> TopologyRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    out.push_back(name);  // std::map iterates in sorted key order
  }
  return out;
}

const std::string& TopologyRegistry::help(std::string_view name) const {
  const auto it = entries_.find(name);
  CSMABW_REQUIRE(it != entries_.end(),
                 "unknown topology `" + std::string(name) + "`");
  return it->second.arg_help;
}

const TopologyRegistry::Generator& TopologyRegistry::find(
    std::string_view spec, std::string_view& name,
    std::string_view& arg) const {
  const std::size_t colon = spec.find(':');
  name = colon == std::string_view::npos ? spec : spec.substr(0, colon);
  arg = colon == std::string_view::npos ? std::string_view{}
                                        : spec.substr(colon + 1);
  CSMABW_REQUIRE(!name.empty(),
                 "topology spec `" + std::string(spec) + "` has no name");
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    std::string known;
    for (const std::string& n : names()) {
      if (!known.empty()) {
        known += ", ";
      }
      known += n;
    }
    throw util::PreconditionError("unknown topology `" + std::string(name) +
                                  "`; registered: " + known);
  }
  return it->second;
}

std::string TopologyRegistry::canonical(std::string_view spec) const {
  std::string_view name;
  std::string_view arg;
  const Generator& gen = find(spec, name, arg);
  const std::string canonical_arg = gen.canonicalize(arg);
  if (canonical_arg.empty()) {
    return std::string(name);
  }
  return std::string(name) + ":" + canonical_arg;
}

Topology TopologyRegistry::build(std::string_view spec, int stations) const {
  CSMABW_REQUIRE(stations >= 1, "a cell has at least the probe station");
  std::string_view name;
  std::string_view arg;
  const Generator& gen = find(spec, name, arg);
  gen.canonicalize(arg);  // reject malformed args with the grammar error
  Topology t = gen.build(arg, stations);
  t.validate();
  return t;
}

void TopologyRegistry::register_builtins(TopologyRegistry& registry) {
  registry.add(
      "clique",
      Generator{
          [](std::string_view arg) -> std::string {
            if (arg.empty()) {
              return "";  // bare clique: sized to the cell at build time
            }
            return std::to_string(parse_count(arg, "clique size"));
          },
          [](std::string_view arg, int stations) {
            if (!arg.empty()) {
              require_station_match(
                  "clique:" + std::string(arg),
                  parse_count(arg, "clique size"), stations);
            }
            return Topology::clique(stations);
          },
          "[:N] single collision domain (default; bare clique sizes to "
          "the cell, clique:N pins the station count)"});
  registry.add(
      "grid",
      Generator{
          [](std::string_view arg) -> std::string {
            const auto [rows, cols] = parse_grid_arg(arg);
            return std::to_string(rows) + "x" + std::to_string(cols);
          },
          [](std::string_view arg, int stations) {
            const auto [rows, cols] = parse_grid_arg(arg);
            require_station_match(
                "grid:" + std::string(arg), rows * cols, stations);
            return Topology::grid(rows, cols);
          },
          ":RxC lattice; sense Manhattan distance 1, interfere distance "
          "2 (straight-line distance-2 pairs are hidden terminals)"});
  registry.add(
      "ring",
      Generator{
          [](std::string_view arg) -> std::string {
            return std::to_string(parse_count(arg, "ring size"));
          },
          [](std::string_view arg, int stations) {
            require_station_match("ring:" + std::string(arg),
                                  parse_count(arg, "ring size"), stations);
            return Topology::ring(stations);
          },
          ":N cycle; sense ring distance 1, interfere distance 2"});
  registry.add(
      "pairs-hidden",
      Generator{
          [](std::string_view arg) -> std::string {
            const int n = parse_count(arg, "pairs-hidden size");
            CSMABW_REQUIRE(n >= 2, "pairs-hidden needs >= 2 stations");
            return std::to_string(n);
          },
          [](std::string_view arg, int stations) {
            require_station_match(
                "pairs-hidden:" + std::string(arg),
                parse_count(arg, "pairs-hidden size"), stations);
            return Topology::hidden_pairs(stations);
          },
          ":N mutually hidden stations (complete interference, no "
          "carrier sense; N=2 is the textbook hidden pair)"});
  registry.add(
      "file",
      Generator{
          [](std::string_view arg) -> std::string {
            CSMABW_REQUIRE(!arg.empty(),
                           "file topology needs a path (file:PATH)");
            return std::string(arg);
          },
          [](std::string_view arg, int stations) {
            Topology t = Topology::from_file(std::string(arg));
            require_station_match("file:" + std::string(arg), t.num_nodes(),
                                  stations);
            return t;
          },
          ":PATH adjacency-list file (`nodes: N`, then `sense: i j` / "
          "`interfere: i j` lines; sense edges imply interference)"});
}

TopologyRegistry& TopologyRegistry::global() {
  static TopologyRegistry* registry = [] {
    auto* r = new TopologyRegistry();
    register_builtins(*r);
    return r;
  }();
  return *registry;
}

}  // namespace csmabw::topo
