#pragma once

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "topo/topology.hpp"

namespace csmabw::topo {

/// String-keyed factory registry for topology generators — the spatial
/// twin of traffic::TrafficModelRegistry.
///
/// A spec is `name` or `name:arg` where the arg grammar is generator
/// specific (`clique:5`, `grid:3x3`, `ring:8`, `pairs-hidden:2`,
/// `file:conf/grid.topo`).  Unlike the key=value registries, topology
/// args are positional: the generator owns everything after the first
/// colon.
///
/// Validation happens in two stages because a scenario is parsed before
/// its station count is known: canonical() checks the arg grammar and
/// normalizes the spelling (scenario round-tripping builds on it), and
/// build() materializes the graph for a concrete station count —
/// generators with an explicit node count require an exact match there,
/// while bare `clique` adapts to any cell.
class TopologyRegistry {
 public:
  struct Generator {
    /// Validates the arg grammar and returns the canonical arg spelling
    /// (empty = the spec is just the name).  Throws
    /// util::PreconditionError on malformed args.
    std::function<std::string(std::string_view arg)> canonicalize;
    /// Materializes the graph for a cell of `stations` stations.
    std::function<Topology(std::string_view arg, int stations)> build;
    /// Documents the arg for discoverability listings.
    std::string arg_help;
  };

  /// Registers a generator; throws util::PreconditionError on an empty
  /// or duplicate name.
  void add(std::string name, Generator generator);

  [[nodiscard]] bool contains(std::string_view name) const;
  /// Registered names in sorted order.
  [[nodiscard]] std::vector<std::string> names() const;
  /// The arg documentation string registered for `name`.
  [[nodiscard]] const std::string& help(std::string_view name) const;

  /// Validates `spec` and returns its canonical spelling
  /// ("grid:03x3" -> "grid:3x3").  Station count is not checked here.
  [[nodiscard]] std::string canonical(std::string_view spec) const;

  /// Builds and validates the conflict graph of `spec` for a cell of
  /// `stations` stations.  Throws util::PreconditionError on unknown
  /// names, malformed args or a node-count mismatch.
  [[nodiscard]] Topology build(std::string_view spec, int stations) const;

  /// Registers the built-in generators: clique, grid, ring,
  /// pairs-hidden, file.
  static void register_builtins(TopologyRegistry& registry);

  /// The process-wide registry, pre-populated with the builtins.
  /// Register custom generators at startup, before campaigns run:
  /// build()/canonical() are safe to call concurrently, add() is not.
  static TopologyRegistry& global();

 private:
  const Generator& find(std::string_view spec, std::string_view& name,
                        std::string_view& arg) const;

  std::map<std::string, Generator, std::less<>> entries_;
};

/// The default topology of every scenario: bare `clique`, one collision
/// domain sized to the cell.
inline constexpr const char* kDefaultTopology = "clique";

}  // namespace csmabw::topo
