#include "topo/topology.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/require.hpp"

namespace csmabw::topo {

namespace {

bool adjacent(const std::vector<std::vector<int>>& adj, int a, int b) {
  if (a < 0 || a >= static_cast<int>(adj.size())) {
    return false;
  }
  const std::vector<int>& row = adj[static_cast<std::size_t>(a)];
  return std::binary_search(row.begin(), row.end(), b);
}

void add_edge(std::vector<std::vector<int>>& adj, int a, int b) {
  adj[static_cast<std::size_t>(a)].push_back(b);
  adj[static_cast<std::size_t>(b)].push_back(a);
}

void sort_unique(std::vector<std::vector<int>>& adj) {
  for (std::vector<int>& row : adj) {
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
  }
}

void check_adjacency(const std::vector<std::vector<int>>& adj, int n,
                     const char* what) {
  for (int i = 0; i < n; ++i) {
    const std::vector<int>& row = adj[static_cast<std::size_t>(i)];
    // One linear pass: strict ascent implies sorted, unique and (with
    // the range check) self-loop-free without re-scanning the row.
    int prev = -1;
    for (int j : row) {
      CSMABW_REQUIRE(j > prev,
                     std::string(what) +
                         " adjacency must be sorted and unique");
      prev = j;
      CSMABW_REQUIRE(j >= 0 && j < n,
                     std::string(what) + " edge endpoint out of range");
      CSMABW_REQUIRE(j != i, std::string(what) + " self-loop");
      CSMABW_REQUIRE(adjacent(adj, j, i),
                     std::string(what) + " adjacency must be symmetric");
    }
  }
}

}  // namespace

CsrAdjacency::CsrAdjacency(const std::vector<std::vector<int>>& rows) {
  std::size_t total = 0;
  for (const std::vector<int>& row : rows) {
    total += row.size();
  }
  offsets_.reserve(rows.size() + 1);
  targets_.reserve(total);
  for (const std::vector<int>& row : rows) {
    for (int j : row) {
      targets_.push_back(static_cast<std::int32_t>(j));
    }
    offsets_.push_back(static_cast<std::int32_t>(targets_.size()));
  }
}

bool Topology::is_clique() const {
  const int n = num_nodes();
  for (int i = 0; i < n; ++i) {
    if (static_cast<int>(sense[static_cast<std::size_t>(i)].size()) != n - 1 ||
        static_cast<int>(interfere[static_cast<std::size_t>(i)].size()) !=
            n - 1) {
      return false;
    }
  }
  return true;
}

bool Topology::senses(int a, int b) const { return adjacent(sense, a, b); }

bool Topology::interferes(int a, int b) const {
  return adjacent(interfere, a, b);
}

std::vector<int> Topology::hidden_from(int i) const {
  std::vector<int> out;
  for (int j : interfere[static_cast<std::size_t>(i)]) {
    if (!senses(i, j)) {
      out.push_back(j);
    }
  }
  return out;
}

void Topology::validate() const {
  const int n = num_nodes();
  CSMABW_REQUIRE(n >= 1, "topology must have at least one node");
  CSMABW_REQUIRE(static_cast<int>(interfere.size()) == n,
                 "sense/interfere node counts differ");
  check_adjacency(sense, n, "sense");
  check_adjacency(interfere, n, "interfere");
  for (int i = 0; i < n; ++i) {
    const std::vector<int>& s = sense[static_cast<std::size_t>(i)];
    const std::vector<int>& f = interfere[static_cast<std::size_t>(i)];
    // Both rows are sorted (checked above), so subset is one merge.
    if (!std::includes(f.begin(), f.end(), s.begin(), s.end())) {
      int j = -1;  // re-find the offending edge only on the error path
      for (int k : s) {
        if (!std::binary_search(f.begin(), f.end(), k)) {
          j = k;
          break;
        }
      }
      CSMABW_REQUIRE(false, "sensing implies interference: sense edge " +
                                std::to_string(i) + "-" + std::to_string(j) +
                                " missing from the interference set");
    }
  }
}

Topology Topology::clique(int n) {
  CSMABW_REQUIRE(n >= 1, "clique size must be >= 1");
  CSMABW_REQUIRE(n <= kMaxDenseTopologyNodes,
                 "clique size " + std::to_string(n) + " exceeds the dense-"
                 "topology cap of " + std::to_string(kMaxDenseTopologyNodes) +
                 " stations (edge count is quadratic)");
  Topology t;
  t.spec = "clique:" + std::to_string(n);
  t.sense.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (j != i) {
        t.sense[static_cast<std::size_t>(i)].push_back(j);
      }
    }
  }
  t.interfere = t.sense;
  t.validate();
  return t;
}

Topology Topology::grid(int rows, int cols) {
  CSMABW_REQUIRE(rows >= 1 && cols >= 1, "grid dimensions must be >= 1");
  CSMABW_REQUIRE(static_cast<long long>(rows) * cols <= kMaxTopologyNodes,
                 "grid " + std::to_string(rows) + "x" + std::to_string(cols) +
                     " exceeds the topology cap of " +
                     std::to_string(kMaxTopologyNodes) + " stations");
  const int n = rows * cols;
  Topology t;
  t.spec = "grid:" + std::to_string(rows) + "x" + std::to_string(cols);
  t.sense.resize(static_cast<std::size_t>(n));
  t.interfere.resize(static_cast<std::size_t>(n));
  // Enumerate the (dr, dc) offsets with |dr| + |dc| <= 2 in row-major
  // order, so every row comes out sorted without a sort pass and the
  // whole build is O(N) — the old all-pairs double loop was the
  // bottleneck past ~1k stations.
  for (int a = 0; a < n; ++a) {
    const int ra = a / cols;
    const int ca = a % cols;
    std::vector<int>& srow = t.sense[static_cast<std::size_t>(a)];
    std::vector<int>& frow = t.interfere[static_cast<std::size_t>(a)];
    srow.reserve(4);
    frow.reserve(12);
    for (int dr = -2; dr <= 2; ++dr) {
      const int rb = ra + dr;
      if (rb < 0 || rb >= rows) {
        continue;
      }
      const int span = 2 - std::abs(dr);
      for (int dc = -span; dc <= span; ++dc) {
        if (dr == 0 && dc == 0) {
          continue;
        }
        const int cb = ca + dc;
        if (cb < 0 || cb >= cols) {
          continue;
        }
        const int b = rb * cols + cb;
        if (std::abs(dr) + std::abs(dc) <= 1) {
          srow.push_back(b);
        }
        frow.push_back(b);
      }
    }
  }
  t.validate();
  return t;
}

Topology Topology::ring(int n) {
  CSMABW_REQUIRE(n >= 1, "ring size must be >= 1");
  CSMABW_REQUIRE(n <= kMaxTopologyNodes,
                 "ring size " + std::to_string(n) +
                     " exceeds the topology cap of " +
                     std::to_string(kMaxTopologyNodes) + " stations");
  Topology t;
  t.spec = "ring:" + std::to_string(n);
  t.sense.resize(static_cast<std::size_t>(n));
  t.interfere.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int step : {1, 2}) {
      const int j = (i + step) % n;
      if (j == i) {
        continue;  // tiny rings: a step that wraps onto itself is no edge
      }
      if (step == 1) {
        add_edge(t.sense, i, j);
      }
      add_edge(t.interfere, i, j);
    }
  }
  sort_unique(t.sense);
  sort_unique(t.interfere);
  t.validate();
  return t;
}

Topology Topology::hidden_pairs(int n) {
  CSMABW_REQUIRE(n >= 2, "pairs-hidden needs >= 2 stations");
  CSMABW_REQUIRE(n <= kMaxDenseTopologyNodes,
                 "pairs-hidden size " + std::to_string(n) +
                     " exceeds the dense-topology cap of " +
                     std::to_string(kMaxDenseTopologyNodes) +
                     " stations (edge count is quadratic)");
  Topology t;
  t.spec = "pairs-hidden:" + std::to_string(n);
  t.sense.resize(static_cast<std::size_t>(n));
  t.interfere.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (j != i) {
        t.interfere[static_cast<std::size_t>(i)].push_back(j);
      }
    }
  }
  t.validate();
  return t;
}

Topology Topology::from_file(const std::string& path) {
  std::ifstream in(path);
  CSMABW_REQUIRE(in.is_open(), "cannot open topology file `" + path + "`");
  Topology t;
  t.spec = "file:" + path;
  int n = -1;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag)) {
      continue;  // blank / comment-only line
    }
    const std::string where =
        "topology file `" + path + "` line " + std::to_string(lineno);
    if (tag == "nodes:") {
      CSMABW_REQUIRE(n < 0, where + ": duplicate nodes: directive");
      CSMABW_REQUIRE(static_cast<bool>(ls >> n) && n >= 1,
                     where + ": nodes: needs a positive count");
      CSMABW_REQUIRE(n <= kMaxTopologyNodes,
                     where + ": node count exceeds the topology cap of " +
                         std::to_string(kMaxTopologyNodes));
      t.sense.resize(static_cast<std::size_t>(n));
      t.interfere.resize(static_cast<std::size_t>(n));
      continue;
    }
    CSMABW_REQUIRE(n >= 1, where + ": nodes: must come first");
    CSMABW_REQUIRE(tag == "sense:" || tag == "interfere:",
                   where + ": unknown directive `" + tag +
                       "` (expected nodes:/sense:/interfere:)");
    int a = -1;
    int b = -1;
    CSMABW_REQUIRE(static_cast<bool>(ls >> a >> b),
                   where + ": expected two node ids");
    std::string extra;
    CSMABW_REQUIRE(!(ls >> extra), where + ": trailing tokens");
    CSMABW_REQUIRE(a >= 0 && a < n && b >= 0 && b < n && a != b,
                   where + ": edge endpoints out of range");
    if (tag == "sense:") {
      add_edge(t.sense, a, b);
    }
    add_edge(t.interfere, a, b);  // sensing implies interference
  }
  CSMABW_REQUIRE(n >= 1,
                 "topology file `" + path + "` has no nodes: directive");
  sort_unique(t.sense);
  sort_unique(t.interfere);
  t.validate();
  return t;
}

}  // namespace csmabw::topo
