#pragma once

#include <string>
#include <vector>

namespace csmabw::topo {

/// A carrier-sense/interference conflict graph over the stations of one
/// cell.
///
/// Node i is station i (station 0 is conventionally the probe).  Two
/// symmetric edge sets describe the radio geometry:
///
///  - `sense`:     j in sense[i] means i hears j's transmissions —
///                 carrier sense defers, backoff freezes, EIFS applies.
///  - `interfere`: j in interfere[i] means a frame of i overlapping a
///                 transmission of j is corrupted at the receiver.
///
/// Sensing implies interference (sense[i] is a subset of interfere[i]):
/// a signal strong enough to trip carrier sense is strong enough to
/// corrupt.  The interesting regimes live in the gap between the two
/// sets:
///
///  - hidden terminal:  j in interfere[i] but not in sense[i] — i cannot
///    defer to j, so their frames collide whenever they overlap in time,
///    not just on slot-boundary coincidences.
///  - exposed terminal: j in sense[i] but i's and j's own neighborhoods
///    barely overlap — i defers to j although their receivers would both
///    survive; spatial reuse is what the conflict graph gives back when
///    the edge is absent.
///
/// A complete graph on both sets (`is_clique()`) is exactly the paper's
/// single collision domain.
struct Topology {
  /// Canonical generator spec this topology was built from
  /// ("grid:3x3", "clique", ...); diagnostic only.
  std::string spec;
  /// Sorted, symmetric, self-loop-free adjacency lists.
  std::vector<std::vector<int>> sense;
  std::vector<std::vector<int>> interfere;

  [[nodiscard]] int num_nodes() const {
    return static_cast<int>(sense.size());
  }
  /// True when both edge sets are complete — one collision domain,
  /// byte-for-byte the behavior of the classic mac::Medium.
  [[nodiscard]] bool is_clique() const;
  [[nodiscard]] bool senses(int a, int b) const;
  [[nodiscard]] bool interferes(int a, int b) const;
  /// Nodes j interfering with i that i cannot sense (hidden from i).
  [[nodiscard]] std::vector<int> hidden_from(int i) const;

  /// Throws util::PreconditionError unless both adjacency structures are
  /// sorted, unique, symmetric, self-loop-free, in range, and
  /// sense[i] is a subset of interfere[i] for every i.
  void validate() const;

  /// Complete graph on n >= 1 nodes: today's single collision domain.
  [[nodiscard]] static Topology clique(int n);
  /// rows x cols lattice: stations sense their Manhattan-distance-1
  /// neighbors and interfere out to distance 2, so straight-line
  /// distance-2 pairs are classic hidden terminals sharing a middle
  /// neighbor.
  [[nodiscard]] static Topology grid(int rows, int cols);
  /// n-cycle: sense the two ring neighbors, interfere out to ring
  /// distance 2.
  [[nodiscard]] static Topology ring(int n);
  /// n mutually hidden stations: complete interference, empty sensing —
  /// every pair collides on any temporal overlap and nobody ever
  /// defers.  n = 2 is the textbook hidden-terminal pair.
  [[nodiscard]] static Topology hidden_pairs(int n);
  /// Parses an adjacency-list file: lines `sense: i j` / `interfere: i j`
  /// (one undirected edge each, '#' comments, `nodes: N` mandatory
  /// first directive); sense edges imply interference.
  [[nodiscard]] static Topology from_file(const std::string& path);
};

}  // namespace csmabw::topo
