#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace csmabw::topo {

/// Hard ceiling on topology node counts.  Large enough for the 1k–10k
/// station lattice campaigns (and then some); small enough that
/// rows*cols products and edge counts can never overflow 32-bit
/// arithmetic — the registry rejects anything bigger with a clear error
/// instead of silently wrapping.
inline constexpr int kMaxTopologyNodes = 1 << 20;
/// Tighter ceiling for the dense generators (clique, pairs-hidden),
/// whose edge count is quadratic in the node count.
inline constexpr int kMaxDenseTopologyNodes = 2048;

/// Flat compressed-sparse-row copy of a sorted adjacency-list
/// structure: one contiguous target array plus n+1 row offsets.  The
/// per-node vector-of-vectors layout stays the construction/query
/// format of topo::Topology (cheap to build incrementally, friendly to
/// tests); the CSR copy is what the medium hot path sweeps — a
/// neighborhood walk is a contiguous int32 span, one cache stream, no
/// per-row pointer chase.
class CsrAdjacency {
 public:
  CsrAdjacency() = default;
  explicit CsrAdjacency(const std::vector<std::vector<int>>& rows);

  [[nodiscard]] int num_nodes() const {
    return static_cast<int>(offsets_.size()) - 1;
  }
  [[nodiscard]] std::size_t num_entries() const { return targets_.size(); }
  [[nodiscard]] std::span<const std::int32_t> row(int i) const {
    const std::size_t b =
        static_cast<std::size_t>(offsets_[static_cast<std::size_t>(i)]);
    const std::size_t e =
        static_cast<std::size_t>(offsets_[static_cast<std::size_t>(i) + 1]);
    return {targets_.data() + b, targets_.data() + e};
  }
  [[nodiscard]] int degree(int i) const {
    return offsets_[static_cast<std::size_t>(i) + 1] -
           offsets_[static_cast<std::size_t>(i)];
  }

 private:
  std::vector<std::int32_t> offsets_{0};
  std::vector<std::int32_t> targets_;
};

/// A carrier-sense/interference conflict graph over the stations of one
/// cell.
///
/// Node i is station i (station 0 is conventionally the probe).  Two
/// symmetric edge sets describe the radio geometry:
///
///  - `sense`:     j in sense[i] means i hears j's transmissions —
///                 carrier sense defers, backoff freezes, EIFS applies.
///  - `interfere`: j in interfere[i] means a frame of i overlapping a
///                 transmission of j is corrupted at the receiver.
///
/// Sensing implies interference (sense[i] is a subset of interfere[i]):
/// a signal strong enough to trip carrier sense is strong enough to
/// corrupt.  The interesting regimes live in the gap between the two
/// sets:
///
///  - hidden terminal:  j in interfere[i] but not in sense[i] — i cannot
///    defer to j, so their frames collide whenever they overlap in time,
///    not just on slot-boundary coincidences.
///  - exposed terminal: j in sense[i] but i's and j's own neighborhoods
///    barely overlap — i defers to j although their receivers would both
///    survive; spatial reuse is what the conflict graph gives back when
///    the edge is absent.
///
/// A complete graph on both sets (`is_clique()`) is exactly the paper's
/// single collision domain.
struct Topology {
  /// Canonical generator spec this topology was built from
  /// ("grid:3x3", "clique", ...); diagnostic only.
  std::string spec;
  /// Sorted, symmetric, self-loop-free adjacency lists.
  std::vector<std::vector<int>> sense;
  std::vector<std::vector<int>> interfere;

  [[nodiscard]] int num_nodes() const {
    return static_cast<int>(sense.size());
  }
  /// True when both edge sets are complete — one collision domain,
  /// byte-for-byte the behavior of the classic mac::Medium.
  [[nodiscard]] bool is_clique() const;
  [[nodiscard]] bool senses(int a, int b) const;
  [[nodiscard]] bool interferes(int a, int b) const;
  /// Nodes j interfering with i that i cannot sense (hidden from i).
  [[nodiscard]] std::vector<int> hidden_from(int i) const;

  /// Throws util::PreconditionError unless both adjacency structures are
  /// sorted, unique, symmetric, self-loop-free, in range, and
  /// sense[i] is a subset of interfere[i] for every i.  Scales to the
  /// lattice campaigns: one linear pass per row for the
  /// sorted/unique/range invariants, a sorted merge (std::includes) per
  /// node for the subset invariant, O(E log deg) for symmetry — a
  /// 10k-node grid validates in well under 100 ms.
  void validate() const;

  /// Complete graph on n >= 1 nodes: today's single collision domain.
  [[nodiscard]] static Topology clique(int n);
  /// rows x cols lattice: stations sense their Manhattan-distance-1
  /// neighbors and interfere out to distance 2, so straight-line
  /// distance-2 pairs are classic hidden terminals sharing a middle
  /// neighbor.
  [[nodiscard]] static Topology grid(int rows, int cols);
  /// n-cycle: sense the two ring neighbors, interfere out to ring
  /// distance 2.
  [[nodiscard]] static Topology ring(int n);
  /// n mutually hidden stations: complete interference, empty sensing —
  /// every pair collides on any temporal overlap and nobody ever
  /// defers.  n = 2 is the textbook hidden-terminal pair.
  [[nodiscard]] static Topology hidden_pairs(int n);
  /// Parses an adjacency-list file: lines `sense: i j` / `interfere: i j`
  /// (one undirected edge each, '#' comments, `nodes: N` mandatory
  /// first directive); sense edges imply interference.
  [[nodiscard]] static Topology from_file(const std::string& path);
};

}  // namespace csmabw::topo
