#pragma once

// The one event codec shared by every trace consumer: TraceReader's
// buffered path and the zero-copy MappedTrace scan decode through the
// same functions, so the accept/reject semantics of the wire format
// (see trace/format.hpp) cannot drift between them.

#include <cstddef>
#include <cstdint>

#include "trace/event.hpp"
#include "trace/format.hpp"

namespace csmabw::trace::codec {

/// Decodes one event from `data[*pos..size)` into `*out`, advancing
/// `*pos` and `*prev_time` (the running delta base).  Returns nullptr
/// on success, else a static description of the corruption.
///
/// Within kMaxEncodedEventBytes of the payload end this uses the
/// bounds-checked decoder; before that it runs the unchecked fast path
/// (any read stays inside the payload because one event cannot span
/// more than kMaxEncodedEventBytes).
[[nodiscard]] inline const char* decode_event(const unsigned char* data,
                                              std::size_t size,
                                              std::size_t* pos,
                                              std::int64_t* prev_time,
                                              TraceEvent* out) {
  if (*pos >= size) {
    return "page underruns";
  }
  const unsigned char kind = data[(*pos)++];
  if (kind < 1 || kind > kEventKindCount) {
    return "unknown event kind";
  }
  std::uint64_t station = 0;
  std::uint64_t time_delta_z = 0;
  std::uint64_t packet = 0;
  std::uint64_t aux_z = 0;
  std::uint64_t flow_z = 0;
  std::uint64_t seq_z = 0;
  std::uint64_t value_z = 0;
  if (size - *pos >= format::kMaxEncodedEventBytes) {
    const unsigned char* p = data + *pos;
    const bool ok = format::get_varint_fast(&p, &station) &&
                    format::get_varint_fast(&p, &time_delta_z) &&
                    format::get_varint_fast(&p, &packet) &&
                    format::get_varint_fast(&p, &aux_z) &&
                    format::get_varint_fast(&p, &flow_z) &&
                    format::get_varint_fast(&p, &seq_z) &&
                    format::get_varint_fast(&p, &value_z);
    if (!ok) {
      return "event varint truncated";
    }
    *pos = static_cast<std::size_t>(p - data);
  } else {
    const bool ok =
        format::get_varint(data, size, pos, &station) &&
        format::get_varint(data, size, pos, &time_delta_z) &&
        format::get_varint(data, size, pos, &packet) &&
        format::get_varint(data, size, pos, &aux_z) &&
        format::get_varint(data, size, pos, &flow_z) &&
        format::get_varint(data, size, pos, &seq_z) &&
        format::get_varint(data, size, pos, &value_z);
    if (!ok) {
      return "event varint truncated";
    }
  }
  if (station > 0xffff) {
    return "station out of range";
  }
  out->kind = static_cast<EventKind>(kind);
  out->station = static_cast<std::uint16_t>(station);
  *prev_time += format::unzigzag(time_delta_z);
  out->time = TimeNs::ns(*prev_time);
  out->packet = packet;
  out->aux = TimeNs::ns(*prev_time + format::unzigzag(aux_z));
  out->flow = static_cast<std::int32_t>(format::unzigzag(flow_z));
  out->seq = static_cast<std::int32_t>(format::unzigzag(seq_z));
  out->value = static_cast<std::int32_t>(format::unzigzag(value_z));
  return nullptr;
}

/// Appends one encoded event to `page`, advancing `*prev_time` — the
/// writer-side twin of decode_event.
inline void encode_event(std::vector<unsigned char>& page,
                         const TraceEvent& event, std::int64_t* prev_time) {
  page.push_back(static_cast<unsigned char>(event.kind));
  format::put_varint(page, event.station);
  format::put_svarint(page, event.time.count() - *prev_time);
  format::put_varint(page, event.packet);
  format::put_svarint(page, event.aux.count() - event.time.count());
  format::put_svarint(page, event.flow);
  format::put_svarint(page, event.seq);
  format::put_svarint(page, event.value);
  *prev_time = event.time.count();
}

}  // namespace csmabw::trace::codec
