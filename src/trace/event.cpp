#include "trace/event.hpp"

#include "util/require.hpp"

namespace csmabw::trace {

namespace {

constexpr std::string_view kNames[kEventKindCount] = {
    "enqueue",    "backoff_start", "backoff_freeze",
    "backoff_resume", "tx_attempt", "collision",
    "success",    "drop",          "queue_depth",
};

}  // namespace

std::string_view kind_name(EventKind kind) {
  const int i = kind_index(kind);
  CSMABW_REQUIRE(i >= 0 && i < kEventKindCount, "unknown event kind");
  return kNames[i];
}

EventKind parse_kind(std::string_view name) {
  for (int i = 0; i < kEventKindCount; ++i) {
    if (kNames[i] == name) {
      return static_cast<EventKind>(i + 1);
    }
  }
  throw util::PreconditionError("unknown trace event kind `" +
                                std::string(name) + "`");
}

}  // namespace csmabw::trace
