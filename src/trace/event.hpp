#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/time.hpp"

namespace csmabw::trace {

/// What happened.  One kind per observable MAC/queue transition; the
/// set mirrors the DCF life cycle of a packet (arrival, contention,
/// transmission, outcome) plus the FIFO depth process.
enum class EventKind : std::uint8_t {
  /// Packet appended to a station's transmission queue.
  /// packet/flow/seq set; value = network-layer size in bytes (0 when
  /// the producer has none — the offline FIFO queue's jobs carry a
  /// service time instead of a size).
  kEnqueue = 1,
  /// A fresh random backoff was drawn (initial contention, post-success,
  /// post-collision, post-drop, or immediate-access fallback).
  /// value = backoff slots; aux = contend_from (earliest observation
  /// instant of the new countdown).
  kBackoffStart = 2,
  /// The medium was seized mid-countdown; the station consumed the whole
  /// slots it observed and froze.  value = remaining slots;
  /// aux = instant the medium went busy.
  kBackoffFreeze = 3,
  /// The foreign occupation ended and the countdown re-arms behind a
  /// fresh DIFS/EIFS.  value = remaining slots; aux = deference
  /// deadline (resume instant + DIFS or EIFS).
  kBackoffResume = 4,
  /// The station was granted the channel and put its head frame on the
  /// air.  packet/flow/seq set; value = retry index (0 = first attempt).
  kTxAttempt = 5,
  /// Channel-level collision: >= 2 stations fired on the same slot
  /// boundary.  station = kChannelStation; value = number of colliding
  /// frames; aux = end of the colliding occupation.
  kCollision = 6,
  /// Successful delivery (end of the ACK exchange).  packet/flow/seq
  /// set; value = collisions suffered; aux = departure instant d_i (end
  /// of the data frame — the event time itself is the ACK end).
  kSuccess = 7,
  /// Retry limit exceeded.  packet/flow/seq set; value = collisions
  /// suffered; aux = departure instant assigned to the dropped packet.
  kDrop = 8,
  /// Transmission-queue depth changed (enqueue or head-of-line service
  /// completion).  value = new depth including the frame in service.
  kQueueDepth = 9,
};

/// Station id used for channel-scoped events (kCollision).
inline constexpr std::uint16_t kChannelStation = 0xffff;

/// One trace record.  Fixed-width in memory; the on-disk form is
/// varint/delta packed (see trace/format.hpp).
struct TraceEvent {
  /// Simulation time the event was emitted at.
  TimeNs time;
  EventKind kind = EventKind::kEnqueue;
  /// Emitting station id (kChannelStation for channel events).
  std::uint16_t station = 0;
  /// Station-local packet id (mac::Packet::id); 0 when not tied to a
  /// packet.
  std::uint64_t packet = 0;
  /// Kind-specific secondary instant (see EventKind); equals `time` when
  /// the kind carries none.
  TimeNs aux;
  std::int32_t flow = 0;
  std::int32_t seq = 0;
  /// Kind-specific small integer (size, slots, retries, depth, ...).
  std::int32_t value = 0;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Receiver of trace events.  Implementations must tolerate the
/// simulator's emission rate (TraceWriter buffers in pages); emission
/// order is simulation order.
///
/// The tap is zero-cost when disabled: every producer guards emission
/// with a null check on its sink pointer, so an untraced run pays one
/// predictable branch per site and never constructs a TraceEvent.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceEvent& event) = 0;
};

/// Stable lower-case name of a kind ("enqueue", "backoff_start", ...).
[[nodiscard]] std::string_view kind_name(EventKind kind);

/// Inverse of kind_name; throws util::PreconditionError on unknown
/// names.
[[nodiscard]] EventKind parse_kind(std::string_view name);

/// Number of distinct event kinds (for per-kind counters).
inline constexpr int kEventKindCount = 9;

/// 0-based dense index of a kind (kEnqueue -> 0, ...).
[[nodiscard]] constexpr int kind_index(EventKind kind) {
  return static_cast<int>(kind) - 1;
}

}  // namespace csmabw::trace
