#pragma once

// On-disk binary trace format (shared by TraceWriter and TraceReader).
//
// A trace file is a fixed header followed by a sequence of pages, each
// a small header plus a varint/delta-packed run of events:
//
//   file   := header page*
//   header := magic "CCTR" | u16 version | u16 reserved
//           | u32 header_bytes                  (total, incl. the label)
//           | i32 cell | i32 repetition         (-1 = not a campaign run)
//           | i32 train_n | i32 train_size      (0 = not a train run)
//           | i64 train_gap_ns | u64 seed
//           | u32 label_len | label bytes
//   page   := u32 page_magic | u32 payload_bytes | u32 event_count
//           | i64 base_time_ns                  (delta base, see below)
//           | payload
//
// All integers are little-endian.  Events inside a page are packed as
//
//   u8 kind | varint station | svarint time_delta | varint packet
//   | svarint (aux - time) | svarint flow | svarint seq | svarint value
//
// where varint is LEB128 and svarint is zigzag LEB128.  `time_delta` is
// relative to the previous event's time (the page's base_time_ns for the
// first event of a page), so pages decode independently and timestamps —
// nanoseconds since simulation start — cost one or two bytes instead of
// eight.  Readers skip unknown trailing header bytes via header_bytes
// and must reject files whose version they do not know; adding fields
// to the header or new event kinds bumps the minor semantics only,
// changing the page or event layout bumps `kFormatVersion`.

#include <cstdint>
#include <vector>

namespace csmabw::trace::format {

inline constexpr char kMagic[4] = {'C', 'C', 'T', 'R'};
inline constexpr std::uint16_t kFormatVersion = 1;
inline constexpr std::uint32_t kPageMagic = 0x47504354;  // "TCPG"
/// Target payload size per page; a page flushes once it grows past this.
inline constexpr std::size_t kDefaultPageBytes = 64 * 1024;
/// Hard plausibility caps the reader enforces BEFORE allocating: a
/// corrupt u32 size field must fail as "corrupt trace", not as a 4 GiB
/// allocation.  The writer rejects page targets above kMaxPageBytes, so
/// every legitimate file decodes within them (a page overshoots its
/// target by at most one encoded event).
inline constexpr std::size_t kMaxPageBytes = 64 * 1024 * 1024;
inline constexpr std::size_t kMaxHeaderBytes = 1024 * 1024;
inline constexpr const char* kTraceExtension = ".cctrace";

// ------------------------------------------- fixed-width little-endian

inline void put_u16(std::vector<unsigned char>& out, std::uint16_t v) {
  out.push_back(static_cast<unsigned char>(v));
  out.push_back(static_cast<unsigned char>(v >> 8));
}

inline void put_u32(std::vector<unsigned char>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<unsigned char>(v >> (8 * i)));
  }
}

inline void put_u64(std::vector<unsigned char>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<unsigned char>(v >> (8 * i)));
  }
}

inline void put_i32(std::vector<unsigned char>& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

inline void put_i64(std::vector<unsigned char>& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

[[nodiscard]] inline std::uint16_t get_u16(const unsigned char* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

[[nodiscard]] inline std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

[[nodiscard]] inline std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

[[nodiscard]] inline std::int32_t get_i32(const unsigned char* p) {
  return static_cast<std::int32_t>(get_u32(p));
}

[[nodiscard]] inline std::int64_t get_i64(const unsigned char* p) {
  return static_cast<std::int64_t>(get_u64(p));
}

// ------------------------------------------------------- varint packing

inline void put_varint(std::vector<unsigned char>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<unsigned char>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<unsigned char>(v));
}

[[nodiscard]] inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] inline std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

inline void put_svarint(std::vector<unsigned char>& out, std::int64_t v) {
  put_varint(out, zigzag(v));
}

/// Bounds-checked LEB128 decode; returns false on truncation/overlong.
[[nodiscard]] inline bool get_varint(const unsigned char* data,
                                     std::size_t size, std::size_t* pos,
                                     std::uint64_t* out) {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (*pos >= size) {
      return false;
    }
    const unsigned char byte = data[(*pos)++];
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *out = v;
      return true;
    }
  }
  return false;
}

}  // namespace csmabw::trace::format
