#pragma once

// On-disk binary trace format (shared by TraceWriter and TraceReader).
//
// A trace file is a fixed header followed by a sequence of pages, each
// a small header plus a varint/delta-packed run of events:
//
//   file   := header page*
//   header := magic "CCTR" | u16 version | u16 reserved
//           | u32 header_bytes                  (total, incl. the label)
//           | i32 cell | i32 repetition         (-1 = not a campaign run)
//           | i32 train_n | i32 train_size      (0 = not a train run)
//           | i64 train_gap_ns | u64 seed
//           | u32 label_len | label bytes
//   page   := u32 page_magic | u32 payload_bytes | u32 event_count
//           | i64 base_time_ns                  (delta base, see below)
//           | summary                           (version >= 2 only)
//           | payload
//
// Version 2 inserts a fixed 24-byte per-page summary between the page
// header and the payload — the skip-index the analytics scan uses for
// predicate pushdown (a whole page is skipped when its summary proves
// no event can match):
//
//   summary := u16 kind_mask                    bit (kind - 1) set iff
//                                               the page holds that kind
//            | u16 min_station | u16 max_station  inclusive station range
//            | u16 reserved                     (zero)
//            | i64 min_time_ns | i64 max_time_ns  inclusive time range
//
// A valid summary has kind_mask != 0, min_station <= max_station and
// min_time_ns <= max_time_ns; readers reject anything else as corrupt.
// Version-1 files carry no summary (a scan can never skip their pages)
// unless a sidecar `.ccidx` file built by trace::write_sidecar_index
// backfills one per page.
//
// All integers are little-endian.  Events inside a page are packed as
//
//   u8 kind | varint station | svarint time_delta | varint packet
//   | svarint (aux - time) | svarint flow | svarint seq | svarint value
//
// where varint is LEB128 and svarint is zigzag LEB128.  `time_delta` is
// relative to the previous event's time (the page's base_time_ns for the
// first event of a page), so pages decode independently and timestamps —
// nanoseconds since simulation start — cost one or two bytes instead of
// eight.  Readers skip unknown trailing header bytes via header_bytes
// and must reject files whose version they do not know; adding fields
// to the header or new event kinds bumps the minor semantics only,
// changing the page or event layout bumps `kFormatVersion` (v1 -> v2:
// the page summary above).

#include <cstdint>
#include <vector>

namespace csmabw::trace::format {

inline constexpr char kMagic[4] = {'C', 'C', 'T', 'R'};
inline constexpr std::uint16_t kFormatVersion = 2;
/// Oldest version readers still decode (v1 = no page summaries).
inline constexpr std::uint16_t kMinFormatVersion = 1;
inline constexpr std::uint32_t kPageMagic = 0x47504354;  // "TCPG"
/// Target payload size per page; a page flushes once it grows past this.
inline constexpr std::size_t kDefaultPageBytes = 64 * 1024;
/// Hard plausibility caps the reader enforces BEFORE allocating: a
/// corrupt u32 size field must fail as "corrupt trace", not as a 4 GiB
/// allocation.  The writer rejects page targets above kMaxPageBytes, so
/// every legitimate file decodes within them (a page overshoots its
/// target by at most one encoded event).
inline constexpr std::size_t kMaxPageBytes = 64 * 1024 * 1024;
inline constexpr std::size_t kMaxHeaderBytes = 1024 * 1024;
inline constexpr const char* kTraceExtension = ".cctrace";

/// Sidecar skip-index for version-1 files ("CCIX"): see
/// trace/query/index.hpp for the layout.
inline constexpr const char* kIndexExtension = ".ccidx";
inline constexpr char kIndexMagic[4] = {'C', 'C', 'I', 'X'};
inline constexpr std::uint16_t kIndexVersion = 1;

/// Page header sizes by format version (magic + payload + count + base
/// time, plus the v2 summary).
inline constexpr std::size_t kPageHeaderBytesV1 = 20;
inline constexpr std::size_t kPageSummaryBytes = 24;
inline constexpr std::size_t kPageHeaderBytesV2 =
    kPageHeaderBytesV1 + kPageSummaryBytes;

[[nodiscard]] constexpr std::size_t page_header_bytes(
    std::uint16_t version) {
  return version >= 2 ? kPageHeaderBytesV2 : kPageHeaderBytesV1;
}

// ----------------------------------------------------- page skip-index

/// Per-page event summary (the v2 skip-index): the exact ranges a scan
/// checks a predicate against before decoding the page.
struct PageSummary {
  std::uint16_t kind_mask = 0;     ///< bit (kind - 1) set iff present
  std::uint16_t min_station = 0;   ///< inclusive
  std::uint16_t max_station = 0;   ///< inclusive
  std::int64_t min_time_ns = 0;    ///< inclusive
  std::int64_t max_time_ns = 0;    ///< inclusive

  /// Structural validity (what readers enforce): a non-empty kind set
  /// and ordered ranges.
  [[nodiscard]] bool valid() const {
    return kind_mask != 0 && min_station <= max_station &&
           min_time_ns <= max_time_ns;
  }

  /// Folds one event into the summary.
  void add(std::uint8_t kind, std::uint16_t station, std::int64_t time_ns) {
    if (kind_mask == 0) {
      min_station = max_station = station;
      min_time_ns = max_time_ns = time_ns;
    } else {
      if (station < min_station) min_station = station;
      if (station > max_station) max_station = station;
      if (time_ns < min_time_ns) min_time_ns = time_ns;
      if (time_ns > max_time_ns) max_time_ns = time_ns;
    }
    kind_mask = static_cast<std::uint16_t>(
        kind_mask | (1u << (kind - 1)));
  }

  friend bool operator==(const PageSummary&, const PageSummary&) = default;
};

// ------------------------------------------- fixed-width little-endian

inline void put_u16(std::vector<unsigned char>& out, std::uint16_t v) {
  out.push_back(static_cast<unsigned char>(v));
  out.push_back(static_cast<unsigned char>(v >> 8));
}

inline void put_u32(std::vector<unsigned char>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<unsigned char>(v >> (8 * i)));
  }
}

inline void put_u64(std::vector<unsigned char>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<unsigned char>(v >> (8 * i)));
  }
}

inline void put_i32(std::vector<unsigned char>& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

inline void put_i64(std::vector<unsigned char>& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

[[nodiscard]] inline std::uint16_t get_u16(const unsigned char* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

[[nodiscard]] inline std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

[[nodiscard]] inline std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

[[nodiscard]] inline std::int32_t get_i32(const unsigned char* p) {
  return static_cast<std::int32_t>(get_u32(p));
}

[[nodiscard]] inline std::int64_t get_i64(const unsigned char* p) {
  return static_cast<std::int64_t>(get_u64(p));
}

// ------------------------------------------------------- varint packing

inline void put_varint(std::vector<unsigned char>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<unsigned char>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<unsigned char>(v));
}

[[nodiscard]] inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] inline std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

inline void put_svarint(std::vector<unsigned char>& out, std::int64_t v) {
  put_varint(out, zigzag(v));
}

/// Bounds-checked LEB128 decode; returns false on truncation/overlong.
[[nodiscard]] inline bool get_varint(const unsigned char* data,
                                     std::size_t size, std::size_t* pos,
                                     std::uint64_t* out) {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (*pos >= size) {
      return false;
    }
    const unsigned char byte = data[(*pos)++];
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *out = v;
      return true;
    }
  }
  return false;
}

/// Unchecked LEB128 decode for the zero-copy scan hot path: reads at
/// most 10 bytes past `*pp`, so the CALLER must guarantee that many
/// readable bytes (see kMaxEncodedEventBytes).  Returns false only on
/// an overlong encoding — same accept/reject semantics as get_varint.
///
/// Deliberately the plain byte loop with the 1-byte case peeled off: a
/// branchless word-at-a-time variant (one 8-byte load, countr_zero for
/// the terminator, parallel 7-bit-group fold) measured 2.5x SLOWER on
/// the page-scan benchmark, because computing the encoded length from
/// the data turns the next varint's load address into a data dependency
/// and stalls the speculative loads the byte loop enjoys — its exit
/// branch predicts almost perfectly since per-field widths are stable
/// across consecutive events.
[[nodiscard]] inline bool get_varint_fast(const unsigned char** pp,
                                          std::uint64_t* out) {
  const unsigned char* p = *pp;
  const std::uint64_t first = static_cast<std::uint64_t>(*p);
  if ((first & 0x80) == 0) {  // the overwhelmingly common 1-byte case
    *out = first;
    *pp = p + 1;
    return true;
  }
  std::uint64_t v = first & 0x7f;
  ++p;
  for (int shift = 7; shift < 64; shift += 7) {
    const unsigned char byte = *p++;
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *out = v;
      *pp = p;
      return true;
    }
  }
  return false;
}

/// Upper bound on one encoded event (u8 kind + 7 varints of <= 10 bytes
/// each); the in-place scan uses the checked decoder within this many
/// bytes of a page end and the unchecked one before that.
inline constexpr std::size_t kMaxEncodedEventBytes = 1 + 7 * 10;

// -------------------------------------------------- page summary codec

inline void put_summary(std::vector<unsigned char>& out,
                        const PageSummary& s) {
  put_u16(out, s.kind_mask);
  put_u16(out, s.min_station);
  put_u16(out, s.max_station);
  put_u16(out, 0);  // reserved
  put_i64(out, s.min_time_ns);
  put_i64(out, s.max_time_ns);
}

/// Decodes a summary from `p` (must have kPageSummaryBytes readable).
[[nodiscard]] inline PageSummary get_summary(const unsigned char* p) {
  PageSummary s;
  s.kind_mask = get_u16(p);
  s.min_station = get_u16(p + 2);
  s.max_station = get_u16(p + 4);
  s.min_time_ns = get_i64(p + 8);
  s.max_time_ns = get_i64(p + 16);
  return s;
}

}  // namespace csmabw::trace::format
