#include "trace/query/agg.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <utility>

#include "core/scenario.hpp"
#include "exp/engine.hpp"
#include "stats/histogram.hpp"
#include "trace/replay.hpp"
#include "util/options.hpp"
#include "util/require.hpp"

namespace csmabw::trace::query {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

[[noreturn]] void reject_where(std::string_view agg,
                               const QueryPredicate& pred) {
  throw util::PreconditionError(
      "aggregation `" + std::string(agg) +
      "` reconstructs packet lifecycles and needs the complete event "
      "stream; it cannot run under --where=" + pred.describe());
}

util::Value station_value(std::uint16_t station) {
  if (station == kChannelStation) {
    return util::Value("channel");
  }
  return util::Value(static_cast<int>(station));
}

// ---------------------------------------------------------------- counts

/// Per-station, per-kind event counts.  Pure integer sums, so it is the
/// one built-in that composes with any --where predicate and with
/// page-granular work units.
class CountsAgg final : public Aggregation {
  class Partial final : public AggPartial {
   public:
    void on_event(const TraceEvent& e) override {
      ++counts[e.station][static_cast<std::size_t>(kind_index(e.kind))];
    }
    std::map<std::uint16_t, std::array<std::uint64_t, kEventKindCount>>
        counts;
  };

 public:
  [[nodiscard]] std::string_view name() const override { return "counts"; }

  [[nodiscard]] std::unique_ptr<AggPartial> make_partial(
      const FileContext&) const override {
    return std::make_unique<Partial>();
  }

  void absorb(AggPartial& partial) override {
    for (const auto& [station, kinds] :
         static_cast<Partial&>(partial).counts) {
      auto& into = counts_[station];
      for (std::size_t k = 0; k < kinds.size(); ++k) {
        into[k] += kinds[k];
      }
    }
  }

  [[nodiscard]] std::vector<std::string> columns() const override {
    std::vector<std::string> cols{"station"};
    for (int k = 1; k <= kEventKindCount; ++k) {
      cols.emplace_back(kind_name(static_cast<EventKind>(k)));
    }
    cols.emplace_back("total");
    return cols;
  }

  [[nodiscard]] std::vector<std::vector<util::Value>> rows()
      const override {
    std::vector<std::vector<util::Value>> out;
    for (const auto& [station, kinds] : counts_) {
      std::vector<util::Value> row{station_value(station)};
      std::uint64_t total = 0;
      for (const std::uint64_t n : kinds) {
        row.emplace_back(static_cast<double>(n));
        total += n;
      }
      row.emplace_back(static_cast<double>(total));
      out.push_back(std::move(row));
    }
    return out;
  }

 private:
  std::map<std::uint16_t, std::array<std::uint64_t, kEventKindCount>>
      counts_;
};

// ------------------------------------------------- packet reconstruction

/// Shared partial of the lifecycle-replaying aggregations: streams the
/// unit's (whole file's) events through a PacketReconstructor.
class ReplayPartial final : public AggPartial {
 public:
  void on_event(const TraceEvent& e) override { rec.on_event(e); }
  PacketReconstructor rec;
};

// ----------------------------------------------------------------- delay

/// Per-cell transient statistics — the parallel twin of `trace_tool
/// replay-stats`, emitting byte-identical rows: same cell grouping, same
/// repetition checks, same shard-merged TrainReplayStats, same columns.
class DelayAgg final : public Aggregation {
 public:
  explicit DelayAgg(const util::Options& opts)
      : flow_(opts.get("flow", core::kProbeFlow)),
        shard_(opts.get("shard", 64)),
        tol_(opts.get("tol", 0.1)) {
    tcfg_.ks_prefix = opts.get("ks_prefix", 1);
    tcfg_.steady_tail = opts.get("steady_tail", 0);
  }

  [[nodiscard]] std::string_view name() const override { return "delay"; }
  [[nodiscard]] bool whole_file() const override { return true; }

  void validate(const QueryPredicate& pred) const override {
    if (!pred.match_all()) {
      reject_where(name(), pred);
    }
  }

  [[nodiscard]] std::unique_ptr<AggPartial> make_partial(
      const FileContext&) const override {
    return std::make_unique<ReplayPartial>();
  }

  void absorb(AggPartial& partial) override {
    const FileContext& ctx = partial.context();
    CSMABW_REQUIRE(ctx.meta.train_n >= 2,
                   "`" + ctx.path + "` is not a probe-train recording");
    if (!cell_ || cell_->index != ctx.meta.cell) {
      flush_cell();
      cell_.emplace(ctx.meta.cell, ctx.path, ctx.meta,
                    TrainReplayStats(
                        exp::train_transient_config(ctx.meta.train_n, tcfg_),
                        shard_));
    }
    CSMABW_REQUIRE(ctx.meta.repetition == cell_->reps,
                   "cell " + std::to_string(cell_->index) +
                       " is missing repetition " +
                       std::to_string(cell_->reps) + " (found `" + ctx.path +
                       "`)");
    TraceMeta expected = cell_->first_meta;
    expected.repetition = cell_->reps;
    CSMABW_REQUIRE(ctx.meta == expected,
                   "`" + ctx.path +
                       "` does not belong to the same recording as `" +
                       cell_->first_path +
                       "` (stale traces from an earlier run? clear the "
                       "directory and re-record)");
    cell_->stats.add(
        replay_train(static_cast<ReplayPartial&>(partial).rec.packets(),
                     flow_));
    ++cell_->reps;
  }

  void finish() override { flush_cell(); }

  [[nodiscard]] std::vector<std::string> columns() const override {
    // Byte-for-byte the replay-stats schema: the CI determinism gate
    // diffs these columns against the live campaign CSV.
    return {"cell",
            "reps_used",
            "dropped",
            "mean_gap_ms",
            "measured_rate_mbps",
            "first_delay_ms",
            "steady_delay_ms",
            "ks_first",
            "ks_thresh_95",
            "transient_pkts_tol" + util::json_number(tol_)};
  }

  [[nodiscard]] std::vector<std::vector<util::Value>> rows()
      const override {
    return rows_;
  }

 private:
  struct CellState {
    CellState(int index, std::string first_path, TraceMeta first_meta,
              TrainReplayStats stats)
        : index(index),
          first_path(std::move(first_path)),
          first_meta(std::move(first_meta)),
          stats(std::move(stats)) {}
    int index;
    std::string first_path;
    TraceMeta first_meta;
    TrainReplayStats stats;
    int reps = 0;
  };

  void flush_cell() {
    if (!cell_) {
      return;
    }
    cell_->stats.finish();
    std::vector<util::Value> row;
    row.emplace_back(cell_->index);
    row.emplace_back(cell_->stats.used());
    row.emplace_back(cell_->stats.dropped());
    if (cell_->stats.used() > 0) {
      const double gap = cell_->stats.output_gap_s().mean();
      row.emplace_back(gap * 1e3);
      row.emplace_back(
          gap > 0.0 ? cell_->first_meta.train_size * 8.0 / gap / 1e6 : 0.0);
      row.emplace_back(cell_->stats.analyzer().mean_at(0) * 1e3);
      row.emplace_back(cell_->stats.analyzer().steady_mean() * 1e3);
      row.emplace_back(cell_->stats.analyzer().ks_at(0));
      row.emplace_back(cell_->stats.analyzer().ks_threshold_at(0));
      row.emplace_back(cell_->stats.analyzer().transient_length(tol_));
    } else {
      for (int k = 0; k < 7; ++k) {
        row.emplace_back(kNaN);
      }
    }
    rows_.push_back(std::move(row));
    cell_.reset();
  }

  int flow_;
  int shard_;
  double tol_;
  exp::TrainCampaignConfig tcfg_;
  std::optional<CellState> cell_;
  std::vector<std::vector<util::Value>> rows_;
};

// ------------------------------------------------------------ delay-hist

/// Access-delay histograms (the shape behind the paper's Fig 7), grouped
/// by probe-train position or by station.
class DelayHistAgg final : public Aggregation {
 public:
  explicit DelayHistAgg(const util::Options& opts)
      : by_(opts.get("by", "position")),
        lo_ms_(opts.get("lo_ms", 0.0)),
        hi_ms_(opts.get("hi_ms", 50.0)),
        bins_(opts.get("bins", 50)),
        flow_(opts.get("flow",
                       by_ == "position" ? core::kProbeFlow : kAllFlows)) {
    CSMABW_REQUIRE(by_ == "position" || by_ == "station",
                   "aggregation `delay-hist`: by=" + by_ +
                       " (want position or station)");
    CSMABW_REQUIRE(bins_ > 0 && hi_ms_ > lo_ms_,
                   "aggregation `delay-hist`: empty histogram range");
  }

  [[nodiscard]] std::string_view name() const override {
    return "delay-hist";
  }
  [[nodiscard]] bool whole_file() const override { return true; }

  void validate(const QueryPredicate& pred) const override {
    if (!pred.match_all()) {
      reject_where(name(), pred);
    }
  }

  [[nodiscard]] std::unique_ptr<AggPartial> make_partial(
      const FileContext&) const override {
    return std::make_unique<ReplayPartial>();
  }

  void absorb(AggPartial& partial) override {
    for (const ReplayPacket& rp :
         static_cast<ReplayPartial&>(partial).rec.packets()) {
      if (rp.packet.dropped) {
        continue;
      }
      if (flow_ != kAllFlows && rp.packet.flow != flow_) {
        continue;
      }
      const int key = by_ == "position" ? rp.packet.seq : rp.station;
      hists_.try_emplace(key, lo_ms_, hi_ms_, bins_)
          .first->second.add(rp.packet.access_delay_s() * 1e3);
    }
  }

  [[nodiscard]] std::vector<std::string> columns() const override {
    return {by_, "bin", "center_ms", "count", "frequency"};
  }

  [[nodiscard]] std::vector<std::vector<util::Value>> rows()
      const override {
    // Long form, one row per (group, bin); bin -1 / bins() carry the
    // underflow/overflow mass (center is NaN there).
    std::vector<std::vector<util::Value>> out;
    for (const auto& [key, hist] : hists_) {
      const double total = static_cast<double>(hist.total());
      const auto emit = [&](int bin, double center, std::int64_t count) {
        out.push_back({key, bin, center, static_cast<double>(count),
                       total > 0.0 ? count / total : 0.0});
      };
      emit(-1, kNaN, hist.underflow());
      for (int b = 0; b < hist.bins(); ++b) {
        emit(b, hist.bin_center(b), hist.count(b));
      }
      emit(hist.bins(), kNaN, hist.overflow());
    }
    return out;
  }

 private:
  static constexpr int kAllFlows = std::numeric_limits<int>::min();

  std::string by_;
  double lo_ms_;
  double hi_ms_;
  int bins_;
  int flow_;
  std::map<int, stats::Histogram> hists_;
};

// --------------------------------------------------------------- airtime

/// Per-station channel-occupation accounting.  A station's pending
/// attempt (kTxAttempt) resolves either into a success/drop of its own
/// or into a channel collision whose [time, aux] occupation is credited
/// to every station that fired on that slot boundary.
class AirtimeAgg final : public Aggregation {
  struct Totals {
    std::int64_t busy_ns = 0;
    std::uint64_t attempts = 0;
    std::uint64_t successes = 0;
    std::uint64_t drops = 0;
    std::uint64_t collisions = 0;
  };

  class Partial final : public AggPartial {
   public:
    void on_event(const TraceEvent& e) override {
      const std::int64_t t = e.time.count();
      first_ns = std::min(first_ns, t);
      last_ns = std::max(last_ns, std::max(t, e.aux.count()));
      switch (e.kind) {
        case EventKind::kTxAttempt:
          ++totals[e.station].attempts;
          pending[e.station] = t;
          break;
        case EventKind::kCollision:
          for (auto it = pending.begin(); it != pending.end();) {
            if (it->second == t) {
              totals[it->first].busy_ns += e.aux.count() - t;
              ++totals[it->first].collisions;
              it = pending.erase(it);
            } else {
              ++it;
            }
          }
          break;
        case EventKind::kSuccess:
          if (const auto it = pending.find(e.station);
              it != pending.end()) {
            totals[e.station].busy_ns += t - it->second;
            pending.erase(it);
          }
          ++totals[e.station].successes;
          break;
        case EventKind::kDrop:
          // The final attempt's collision already credited its airtime.
          ++totals[e.station].drops;
          pending.erase(e.station);
          break;
        default:
          break;
      }
    }

    std::map<std::uint16_t, std::int64_t> pending;
    std::map<std::uint16_t, Totals> totals;
    std::int64_t first_ns = std::numeric_limits<std::int64_t>::max();
    std::int64_t last_ns = std::numeric_limits<std::int64_t>::min();
  };

 public:
  [[nodiscard]] std::string_view name() const override { return "airtime"; }
  [[nodiscard]] bool whole_file() const override { return true; }

  void validate(const QueryPredicate& pred) const override {
    if (!pred.match_all()) {
      reject_where(name(), pred);
    }
  }

  [[nodiscard]] std::unique_ptr<AggPartial> make_partial(
      const FileContext&) const override {
    return std::make_unique<Partial>();
  }

  void absorb(AggPartial& partial) override {
    auto& p = static_cast<Partial&>(partial);
    for (const auto& [station, t] : p.totals) {
      Totals& into = totals_[station];
      into.busy_ns += t.busy_ns;
      into.attempts += t.attempts;
      into.successes += t.successes;
      into.drops += t.drops;
      into.collisions += t.collisions;
    }
    if (p.last_ns > p.first_ns) {
      wall_ns_ += p.last_ns - p.first_ns;
    }
  }

  [[nodiscard]] std::vector<std::string> columns() const override {
    return {"station",    "attempts", "successes", "drops",
            "collisions", "busy_ms",  "share"};
  }

  [[nodiscard]] std::vector<std::vector<util::Value>> rows()
      const override {
    std::vector<std::vector<util::Value>> out;
    for (const auto& [station, t] : totals_) {
      out.push_back({station_value(station),
                     static_cast<double>(t.attempts),
                     static_cast<double>(t.successes),
                     static_cast<double>(t.drops),
                     static_cast<double>(t.collisions),
                     static_cast<double>(t.busy_ns) / 1e6,
                     wall_ns_ > 0 ? static_cast<double>(t.busy_ns) /
                                        static_cast<double>(wall_ns_)
                                  : kNaN});
    }
    return out;
  }

 private:
  std::map<std::uint16_t, Totals> totals_;
  std::int64_t wall_ns_ = 0;
};

// ------------------------------------------------------------ collisions

/// Pairwise collision-involvement matrix: how often stations a and b
/// fired on the same slot boundary.  Station pairs come from matching
/// pending kTxAttempt times against each kCollision instant, the same
/// join the airtime aggregation uses.
class CollisionsAgg final : public Aggregation {
  class Partial final : public AggPartial {
   public:
    void on_event(const TraceEvent& e) override {
      const std::int64_t t = e.time.count();
      switch (e.kind) {
        case EventKind::kTxAttempt:
          pending[e.station] = t;
          break;
        case EventKind::kCollision: {
          parties.clear();
          for (auto it = pending.begin(); it != pending.end();) {
            if (it->second == t) {
              parties.push_back(it->first);
              it = pending.erase(it);
            } else {
              ++it;
            }
          }
          // std::map iterates stations ascending, so parties is sorted
          // and every unordered pair lands as (low, high).
          for (std::size_t a = 0; a < parties.size(); ++a) {
            for (std::size_t b = a + 1; b < parties.size(); ++b) {
              ++pairs[{parties[a], parties[b]}];
            }
          }
          break;
        }
        case EventKind::kSuccess:
        case EventKind::kDrop:
          pending.erase(e.station);
          break;
        default:
          break;
      }
    }

    std::map<std::uint16_t, std::int64_t> pending;
    std::vector<std::uint16_t> parties;
    std::map<std::pair<std::uint16_t, std::uint16_t>, std::uint64_t> pairs;
  };

 public:
  [[nodiscard]] std::string_view name() const override {
    return "collisions";
  }
  [[nodiscard]] bool whole_file() const override { return true; }

  void validate(const QueryPredicate& pred) const override {
    if (!pred.match_all()) {
      reject_where(name(), pred);
    }
  }

  [[nodiscard]] std::unique_ptr<AggPartial> make_partial(
      const FileContext&) const override {
    return std::make_unique<Partial>();
  }

  void absorb(AggPartial& partial) override {
    for (const auto& [pair, n] : static_cast<Partial&>(partial).pairs) {
      pairs_[pair] += n;
    }
  }

  [[nodiscard]] std::vector<std::string> columns() const override {
    return {"station_a", "station_b", "collisions"};
  }

  [[nodiscard]] std::vector<std::vector<util::Value>> rows()
      const override {
    std::vector<std::vector<util::Value>> out;
    for (const auto& [pair, n] : pairs_) {
      out.push_back({station_value(pair.first), station_value(pair.second),
                     static_cast<double>(n)});
    }
    return out;
  }

 private:
  std::map<std::pair<std::uint16_t, std::uint16_t>, std::uint64_t> pairs_;
};

// ---------------------------------------------------------------- qdepth

/// Per-station time-weighted queue-depth timeline: integrates the
/// piecewise-constant depth process into fixed time buckets.  All
/// accumulation is int64 depth·nanoseconds, so merging across files and
/// threads is exact.
class QdepthAgg final : public Aggregation {
  class Partial final : public AggPartial {
   public:
    explicit Partial(std::int64_t bucket_ns) : bucket_ns_(bucket_ns) {}

    void on_event(const TraceEvent& e) override {
      if (e.kind != EventKind::kQueueDepth) {
        return;
      }
      const std::int64_t t = e.time.count();
      if (const auto it = last.find(e.station); it != last.end()) {
        const auto [lt, depth] = it->second;
        add_span(e.station, lt, t, depth);
      }
      last[e.station] = {t, e.value};
    }

    std::map<std::uint16_t, std::pair<std::int64_t, std::int32_t>> last;
    std::map<std::uint16_t, std::map<std::int64_t, std::int64_t>> acc;

   private:
    void add_span(std::uint16_t station, std::int64_t from,
                  std::int64_t to, std::int64_t depth) {
      if (depth == 0 || to <= from) {
        return;
      }
      auto& buckets = acc[station];
      for (std::int64_t b = from / bucket_ns_; b * bucket_ns_ < to; ++b) {
        const std::int64_t lo = std::max(from, b * bucket_ns_);
        const std::int64_t hi = std::min(to, (b + 1) * bucket_ns_);
        buckets[b] += depth * (hi - lo);
      }
    }

    std::int64_t bucket_ns_;
  };

 public:
  explicit QdepthAgg(const util::Options& opts)
      : bucket_ns_(static_cast<std::int64_t>(
            std::llround(opts.get("bucket_ms", 10.0) * 1e6))) {
    CSMABW_REQUIRE(bucket_ns_ > 0,
                   "aggregation `qdepth`: bucket_ms must be positive");
  }

  [[nodiscard]] std::string_view name() const override { return "qdepth"; }
  [[nodiscard]] bool whole_file() const override { return true; }

  void validate(const QueryPredicate& pred) const override {
    if (!pred.match_all()) {
      reject_where(name(), pred);
    }
  }

  [[nodiscard]] std::unique_ptr<AggPartial> make_partial(
      const FileContext&) const override {
    return std::make_unique<Partial>(bucket_ns_);
  }

  void absorb(AggPartial& partial) override {
    for (const auto& [station, buckets] :
         static_cast<Partial&>(partial).acc) {
      auto& into = acc_[station];
      for (const auto& [bucket, depth_ns] : buckets) {
        into[bucket] += depth_ns;
      }
    }
    ++files_;
  }

  [[nodiscard]] std::vector<std::string> columns() const override {
    return {"station", "bucket", "t_ms", "depth_ms", "mean_depth"};
  }

  [[nodiscard]] std::vector<std::vector<util::Value>> rows()
      const override {
    // mean_depth averages the integral over bucket width and absorbed
    // file count — with one cell's repetitions in a directory that is
    // the ensemble-mean depth over the bucket's time window.
    std::vector<std::vector<util::Value>> out;
    const double denom =
        static_cast<double>(bucket_ns_) * std::max(files_, 1);
    for (const auto& [station, buckets] : acc_) {
      for (const auto& [bucket, depth_ns] : buckets) {
        out.push_back(
            {station_value(station), static_cast<double>(bucket),
             static_cast<double>(bucket) * static_cast<double>(bucket_ns_) /
                 1e6,
             static_cast<double>(depth_ns) / 1e6,
             static_cast<double>(depth_ns) / denom});
      }
    }
    return out;
  }

 private:
  std::int64_t bucket_ns_;
  std::map<std::uint16_t, std::map<std::int64_t, std::int64_t>> acc_;
  int files_ = 0;
};

}  // namespace

std::unique_ptr<Aggregation> make_aggregation(std::string_view spec) {
  const std::size_t colon = spec.find(':');
  const std::string_view name =
      colon == std::string_view::npos ? spec : spec.substr(0, colon);
  const util::Options opts = util::Options::parse(
      colon == std::string_view::npos ? std::string_view{}
                                      : spec.substr(colon + 1));

  std::unique_ptr<Aggregation> agg;
  if (name == "counts") {
    agg = std::make_unique<CountsAgg>();
  } else if (name == "delay") {
    agg = std::make_unique<DelayAgg>(opts);
  } else if (name == "delay-hist") {
    agg = std::make_unique<DelayHistAgg>(opts);
  } else if (name == "airtime") {
    agg = std::make_unique<AirtimeAgg>();
  } else if (name == "collisions") {
    agg = std::make_unique<CollisionsAgg>();
  } else if (name == "qdepth") {
    agg = std::make_unique<QdepthAgg>(opts);
  } else {
    std::string known;
    for (const std::string& line : aggregation_catalog()) {
      known += "\n  " + line;
    }
    throw util::PreconditionError("unknown aggregation `" +
                                  std::string(name) + "`; available:" +
                                  known);
  }
  opts.require_consumed("aggregation `" + std::string(name) + "`");
  return agg;
}

std::vector<std::string> aggregation_catalog() {
  return {
      "counts      per-station, per-kind event counts (works with "
      "--where)",
      "delay       per-cell transient stats, byte-identical to "
      "replay-stats (flow, ks_prefix, steady_tail, shard, tol)",
      "delay-hist  access-delay histograms (by=position|station, flow, "
      "lo_ms, hi_ms, bins)",
      "airtime     per-station channel-occupation time and share",
      "collisions  pairwise collision-involvement matrix",
      "qdepth      per-station time-weighted queue-depth timeline "
      "(bucket_ms)",
  };
}

}  // namespace csmabw::trace::query
