#pragma once

// Aggregations of the trace query engine: named reductions over the
// event stream of a trace fleet, chosen on the command line as
// `--agg=name[:key=value,...]` (the same `name:options` grammar the
// measurement-method registry uses).
//
// Execution contract (see trace/query/engine.hpp): the engine opens
// every file, calls make_partial once per work unit, feeds each unit's
// matching events in file order on a worker thread, then absorbs the
// completed partials on the calling thread in deterministic unit order
// and finishes.  Integer accumulators plus ordered absorption make the
// output bit-identical for any worker-thread count.
//
// Aggregations that rebuild packet lifecycles (delay, delay-hist,
// airtime, collisions, qdepth) are stateful across page boundaries and
// declare whole_file(); the engine then never splits a file across
// units.  They also require the match-all predicate — a kind- or
// time-filtered stream has holes the reconstruction would silently
// mis-read, so validate() rejects `--where` for them up front.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "trace/event.hpp"
#include "trace/query/predicate.hpp"
#include "trace/writer.hpp"  // TraceMeta
#include "util/json.hpp"

namespace csmabw::trace::query {

/// Identity of the file a work unit belongs to.
struct FileContext {
  int file_index = 0;  ///< position in the query's (sorted) file list
  std::string path;
  TraceMeta meta;
};

/// Per-unit worker-side state.  Lives on one worker thread; sees the
/// unit's matching events in file order; is then handed back for
/// ordered absorption.
class AggPartial {
 public:
  virtual ~AggPartial() = default;
  virtual void on_event(const TraceEvent& event) = 0;

  [[nodiscard]] const FileContext& context() const { return ctx_; }
  void set_context(FileContext ctx) { ctx_ = std::move(ctx); }

 private:
  FileContext ctx_;
};

/// A named reduction over trace events.  Result rows are tabular
/// (columns() / rows()) so the caller can route them through
/// exp::Collector to console/CSV/JSONL unchanged.
class Aggregation {
 public:
  virtual ~Aggregation() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// True when the aggregation must see whole files in event order.
  [[nodiscard]] virtual bool whole_file() const { return false; }

  /// Rejects predicates the aggregation cannot run under (throws
  /// util::PreconditionError).  Default accepts everything.
  virtual void validate(const QueryPredicate& pred) const { (void)pred; }

  /// Fresh worker-side state for one unit of `ctx`'s file.
  [[nodiscard]] virtual std::unique_ptr<AggPartial> make_partial(
      const FileContext& ctx) const = 0;

  /// Folds one completed partial; called on the query thread in
  /// deterministic unit order (file order, pages ascending).
  virtual void absorb(AggPartial& partial) = 0;

  /// Called once after the last absorb; seals the result rows.
  virtual void finish() {}

  [[nodiscard]] virtual std::vector<std::string> columns() const = 0;
  [[nodiscard]] virtual std::vector<std::vector<util::Value>> rows()
      const = 0;
};

/// Builds an aggregation from its `name[:key=value,...]` spec; throws
/// util::PreconditionError on unknown names or unconsumed options.
///
/// Built-ins:
///   counts      per-station, per-kind event counts (composes with
///               --where)
///   delay       per-cell transient statistics, bit-identical to
///               `replay-stats` (options: flow, ks_prefix, steady_tail,
///               shard, tol)
///   delay-hist  access-delay histograms grouped by train position or
///               station (options: by=position|station, flow, lo_ms,
///               hi_ms, bins)
///   airtime     per-station channel-occupation time and share
///   collisions  pairwise collision-involvement matrix
///   qdepth      per-station time-weighted queue-depth timeline
///               (option: bucket_ms)
[[nodiscard]] std::unique_ptr<Aggregation> make_aggregation(
    std::string_view spec);

/// One help line per built-in aggregation (for --help / error text).
[[nodiscard]] std::vector<std::string> aggregation_catalog();

}  // namespace csmabw::trace::query
