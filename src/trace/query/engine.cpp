#include "trace/query/engine.hpp"

#include <algorithm>
#include <memory>
#include <utility>

namespace csmabw::trace::query {

namespace {

/// Default page-range size of a page-granular work unit: ~4 MiB of
/// payload at the writer's 64 KiB page target — small enough to load-
/// balance a handful of files across a pool, large enough that unit
/// overhead is noise.  Fixed (not thread-derived) so the unit
/// decomposition, and with it the absorb order, never depends on the
/// worker count.
constexpr int kDefaultPagesPerUnit = 64;

struct Unit {
  int file = 0;
  std::size_t first_page = 0;
  std::size_t page_count = 0;
};

struct UnitResult {
  std::unique_ptr<AggPartial> partial;
  ScanStats stats;
  std::int64_t wall_ns = 0;  ///< unit scan wall time (0 when obs off)
};

}  // namespace

ScanStats run_query(const std::vector<TraceFile>& files,
                    const QueryPredicate& pred, Aggregation& agg,
                    const exp::Runner& runner, const QueryOptions& opts) {
  agg.validate(pred);

  obs::Counter pages_decoded;
  obs::Counter pages_skipped;
  obs::Counter events_decoded;
  obs::Counter events_matched;
  obs::Histogram unit_wall;
  if (opts.metrics != nullptr) {
    pages_decoded = opts.metrics->counter("query.pages.decoded");
    pages_skipped = opts.metrics->counter("query.pages.skipped");
    events_decoded = opts.metrics->counter("query.events.decoded");
    events_matched = opts.metrics->counter("query.events.matched");
    unit_wall = opts.metrics->histogram("query.unit.wall_ns",
                                        obs::Determinism::kWallTime);
  }
  const bool timing =
      unit_wall.bound() ||
      (opts.profiler != nullptr && opts.profiler->enabled());

  // Open (map + index pages) every file first, in parallel: opening
  // touches only headers, and holding all maps costs address space, not
  // memory.
  const int n_files = static_cast<int>(files.size());
  std::vector<MappedTrace> traces = runner.map(n_files, [&](int i) {
    obs::ScopedSpan span(opts.profiler, "query.open");
    span.arg("file", i);
    return MappedTrace(files[static_cast<std::size_t>(i)].path,
                       opts.map_opts);
  });

  const int per_unit = agg.whole_file()
                           ? 0
                           : (opts.pages_per_unit > 0 ? opts.pages_per_unit
                                                      : kDefaultPagesPerUnit);
  std::vector<Unit> units;
  for (int f = 0; f < n_files; ++f) {
    const std::size_t pages = traces[static_cast<std::size_t>(f)]
                                  .pages()
                                  .size();
    if (per_unit == 0) {
      units.push_back({f, 0, pages});
      continue;
    }
    for (std::size_t first = 0; first < pages;
         first += static_cast<std::size_t>(per_unit)) {
      units.push_back({f, first,
                       std::min(pages - first,
                                static_cast<std::size_t>(per_unit))});
    }
    if (pages == 0) {
      units.push_back({f, 0, 0});  // keep one partial per file anyway
    }
  }

  std::vector<UnitResult> results =
      runner.map(static_cast<int>(units.size()), [&](int u) {
        const Unit& unit = units[static_cast<std::size_t>(u)];
        const TraceFile& file = files[static_cast<std::size_t>(unit.file)];
        obs::ScopedSpan span(opts.profiler, "query.unit");
        span.arg("file", unit.file);
        span.arg("pages", static_cast<std::int64_t>(unit.page_count));
        const std::int64_t unit_start = timing ? obs::now_ns() : 0;
        FileContext ctx;
        ctx.file_index = unit.file;
        ctx.path = file.path;
        ctx.meta = file.meta;
        UnitResult r;
        r.partial = agg.make_partial(ctx);
        r.partial->set_context(std::move(ctx));
        scan_pages(traces[static_cast<std::size_t>(unit.file)],
                   unit.first_page, unit.page_count, pred, opts.pushdown,
                   &r.stats,
                   [&](const TraceEvent& e) { r.partial->on_event(e); });
        if (timing) {
          r.wall_ns = obs::now_ns() - unit_start;
          unit_wall.observe(r.wall_ns);
        }
        return r;
      });

  if (opts.file_stats != nullptr) {
    opts.file_stats->assign(static_cast<std::size_t>(n_files),
                            FileScanStats{});
  }
  ScanStats total;
  total.files = files.size();
  for (std::size_t i = 0; i < results.size(); ++i) {
    UnitResult& r = results[i];
    total.pages += r.stats.pages;
    total.pages_skipped += r.stats.pages_skipped;
    total.events_decoded += r.stats.events_decoded;
    total.events_matched += r.stats.events_matched;
    if (opts.file_stats != nullptr) {
      FileScanStats& fs =
          (*opts.file_stats)[static_cast<std::size_t>(units[i].file)];
      fs.pages += r.stats.pages;
      fs.pages_skipped += r.stats.pages_skipped;
      fs.events_decoded += r.stats.events_decoded;
      fs.events_matched += r.stats.events_matched;
      fs.wall_ns += r.wall_ns;
    }
    agg.absorb(*r.partial);
  }
  agg.finish();
  pages_decoded.add(
      static_cast<std::int64_t>(total.pages - total.pages_skipped));
  pages_skipped.add(static_cast<std::int64_t>(total.pages_skipped));
  events_decoded.add(static_cast<std::int64_t>(total.events_decoded));
  events_matched.add(static_cast<std::int64_t>(total.events_matched));
  return total;
}

}  // namespace csmabw::trace::query
