#pragma once

// Parallel out-of-core query engine over `.cctrace` fleets.
//
// run_query maps every trace read-only (MappedTrace), splits the fleet
// into (file, page-range) work units, scans the units across
// exp::Runner's worker pool — skipping pages whose skip-index summary
// proves the predicate cannot match — and hands each unit's completed
// AggPartial back in deterministic unit order (file order, pages
// ascending) for absorption.  Unit decomposition is independent of the
// thread count and absorption is ordered, so query output is
// bit-identical for any number of workers.

#include <cstdint>
#include <vector>

#include "exp/runner.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "trace/query/agg.hpp"
#include "trace/query/mapped.hpp"
#include "trace/query/predicate.hpp"
#include "trace/replay.hpp"  // TraceFile

namespace csmabw::trace::query {

/// Per-file scan accounting (`--stats`): what each trace contributed to
/// the query and how long its units took.  wall_ns sums the file's
/// unit scan times (units of one file may run concurrently, so it can
/// exceed the query's wall clock); it stays 0 when observability is
/// off.
struct FileScanStats {
  std::size_t pages = 0;
  std::size_t pages_skipped = 0;
  std::uint64_t events_decoded = 0;
  std::uint64_t events_matched = 0;
  std::int64_t wall_ns = 0;
};

struct QueryOptions {
  /// Skip pages whose summary refutes the predicate.  Off decodes
  /// everything; results are identical either way (summaries are
  /// conservative), only the work changes.
  bool pushdown = true;
  /// How each file is brought into memory (mmap / buffered, sidecar).
  MappedTraceOptions map_opts;
  /// Pages per work unit for page-granular aggregations (0 = 64, about
  /// 4 MiB of payload).  Whole-file aggregations always run one unit
  /// per file.
  int pages_per_unit = 0;
  /// Scan accounting under `query.*` (pages decoded/skipped, events);
  /// null = none.  Purely observational — query output is identical.
  obs::Registry* metrics = nullptr;
  /// Per-unit scan spans ("query.unit"); null = none.
  obs::Profiler* profiler = nullptr;
  /// When non-null, filled with per-file scan stats indexed like the
  /// query's `files` argument (wall_ns only with metrics/profiler on).
  std::vector<FileScanStats>* file_stats = nullptr;
};

/// What a query touched — the observability half of predicate pushdown.
struct ScanStats {
  std::size_t files = 0;
  std::size_t pages = 0;
  std::size_t pages_skipped = 0;      ///< refuted by summary, not decoded
  std::uint64_t events_decoded = 0;
  std::uint64_t events_matched = 0;
};

/// Scans pages [first_page, first_page + page_count) of one mapped
/// trace, invoking fn(const TraceEvent&) for every event matching
/// `pred`, in file order.  With `pushdown`, pages whose summary refutes
/// the predicate are skipped without touching their payload.  Counters
/// fold into `*stats`.  The shared scan kernel of run_query and the
/// trace_tool info/filter paths.
template <typename Fn>
void scan_pages(const MappedTrace& trace, std::size_t first_page,
                std::size_t page_count, const QueryPredicate& pred,
                bool pushdown, ScanStats* stats, Fn&& fn) {
  const bool all = pred.match_all();
  for (std::size_t p = first_page; p < first_page + page_count; ++p) {
    ++stats->pages;
    const PageInfo& page = trace.pages()[p];
    if (pushdown && !all && page.has_summary &&
        !pred.may_match_page(page.summary)) {
      ++stats->pages_skipped;
      continue;
    }
    trace.scan_page(p, [&](const TraceEvent& e) {
      ++stats->events_decoded;
      if (all || pred.matches(e)) {
        ++stats->events_matched;
        fn(e);
      }
    });
  }
}

/// Runs `agg` over every event of `files` matching `pred`, using the
/// runner's worker pool, and returns what the scan touched.  Files must
/// be in the order the aggregation expects (list_traces order — cell,
/// then repetition).  Throws util::PreconditionError when the
/// aggregation rejects the predicate or a trace is corrupt.
ScanStats run_query(const std::vector<TraceFile>& files,
                    const QueryPredicate& pred, Aggregation& agg,
                    const exp::Runner& runner,
                    const QueryOptions& opts = {});

}  // namespace csmabw::trace::query
