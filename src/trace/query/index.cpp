#include "trace/query/index.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "trace/query/mapped.hpp"
#include "util/require.hpp"

namespace csmabw::trace {

std::size_t write_sidecar_index(const std::string& trace_path) {
  // Never chase a stale sidecar while rebuilding one.
  MappedTraceOptions opts;
  opts.load_sidecar = false;
  const MappedTrace trace(trace_path, opts);
  return write_sidecar_index(trace);
}

std::size_t write_sidecar_index(const MappedTrace& trace) {
  std::vector<unsigned char> out;
  out.reserve(20 + trace.pages().size() * (8 + format::kPageSummaryBytes));
  for (char c : format::kIndexMagic) {
    out.push_back(static_cast<unsigned char>(c));
  }
  format::put_u16(out, format::kIndexVersion);
  format::put_u16(out, 0);  // reserved
  format::put_u64(out, trace.file_size());
  format::put_u32(out, static_cast<std::uint32_t>(trace.pages().size()));

  for (std::size_t i = 0; i < trace.pages().size(); ++i) {
    const PageInfo& p = trace.pages()[i];
    format::PageSummary summary = p.summary;
    if (!p.has_summary) {
      summary = format::PageSummary{};
      trace.scan_page(i, [&](const TraceEvent& e) {
        summary.add(static_cast<std::uint8_t>(e.kind), e.station,
                    e.time.count());
      });
    }
    CSMABW_REQUIRE(summary.valid(),
                   "`" + trace.path() + "` page " + std::to_string(i) +
                       " produced an invalid summary");
    format::put_u64(out, p.header_offset);
    format::put_summary(out, summary);
  }

  const std::string idx_path = sidecar_index_path(trace.path());
  const std::string tmp_path = idx_path + ".tmp";
  {
    std::ofstream file(tmp_path, std::ios::binary | std::ios::trunc);
    if (!file) {
      throw std::runtime_error("write_sidecar_index: cannot open '" +
                               tmp_path + "'");
    }
    file.write(reinterpret_cast<const char*>(out.data()),
               static_cast<std::streamsize>(out.size()));
    file.flush();
    if (!file) {
      throw std::runtime_error("write_sidecar_index: write failed on '" +
                               tmp_path + "'");
    }
  }
  std::filesystem::rename(tmp_path, idx_path);
  return trace.pages().size();
}

}  // namespace csmabw::trace
