#pragma once

// Sidecar skip-index (".ccidx") builder for version-1 trace fleets.
//
// Version-2 traces embed a per-page summary (see trace/format.hpp);
// v1 files predate it, so without help a scan can never skip their
// pages.  write_sidecar_index backfills that: it scans a trace once,
// computes every page's summary, and writes it next to the trace as
// `<trace>.ccidx`, which MappedTrace then attaches automatically.
//
//   ccidx := magic "CCIX" | u16 version | u16 reserved
//          | u64 source_file_size            (staleness check)
//          | u32 page_count
//          | entry*
//   entry := u64 page_header_offset          (must match the trace)
//          | summary                         (24 bytes, as in-format)
//
// The loader rejects any mismatch with the trace it sits next to
// (size, page count, page offsets) as stale — a sidecar can only ever
// describe the exact bytes it was built from.

#include <cstdint>
#include <string>

namespace csmabw::trace {

class MappedTrace;

/// Builds `<trace_path>.ccidx` from the trace's pages (decoding each
/// page to compute its summary unless one is already embedded/attached)
/// and writes it atomically (tmp + rename).  Returns the number of
/// pages indexed.  Works for any readable version; useful only for v1
/// files (v2 embeds summaries).
std::size_t write_sidecar_index(const std::string& trace_path);

/// Same, over an already-opened trace.
std::size_t write_sidecar_index(const MappedTrace& trace);

}  // namespace csmabw::trace
