#include "trace/query/mapped.hpp"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "util/require.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define CSMABW_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define CSMABW_HAVE_MMAP 0
#endif

namespace csmabw::trace {

namespace {

using format::get_i32;
using format::get_i64;
using format::get_u16;
using format::get_u32;
using format::get_u64;

}  // namespace

std::string sidecar_index_path(const std::string& trace_path) {
  return trace_path + format::kIndexExtension;
}

MappedTrace::MappedTrace(const std::string& path, MappedTraceOptions opts)
    : path_(path) {
  open(opts);
  parse_header();
  index_pages();
  if (opts.load_sidecar && version_ < 2) {
    load_sidecar();
  }
}

MappedTrace::~MappedTrace() { unmap(); }

MappedTrace::MappedTrace(MappedTrace&& other) noexcept
    : path_(std::move(other.path_)),
      data_(other.data_),
      size_(other.size_),
      mapped_(other.mapped_),
      buffer_(std::move(other.buffer_)),
      meta_(std::move(other.meta_)),
      version_(other.version_),
      first_page_offset_(other.first_page_offset_),
      sidecar_(other.sidecar_),
      events_(other.events_),
      pages_(std::move(other.pages_)) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
}

MappedTrace& MappedTrace::operator=(MappedTrace&& other) noexcept {
  if (this != &other) {
    unmap();
    path_ = std::move(other.path_);
    data_ = other.data_;
    size_ = other.size_;
    mapped_ = other.mapped_;
    buffer_ = std::move(other.buffer_);
    meta_ = std::move(other.meta_);
    version_ = other.version_;
    first_page_offset_ = other.first_page_offset_;
    sidecar_ = other.sidecar_;
    events_ = other.events_;
    pages_ = std::move(other.pages_);
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
  }
  return *this;
}

void MappedTrace::unmap() noexcept {
#if CSMABW_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<unsigned char*>(data_), size_);
  }
#endif
  data_ = nullptr;
  mapped_ = false;
}

void MappedTrace::throw_corrupt(std::uint64_t offset,
                                const std::string& what) const {
  throw util::PreconditionError("`" + path_ + "` @ byte " +
                                std::to_string(offset) +
                                ": corrupt trace: " + what);
}

void MappedTrace::open(const MappedTraceOptions& opts) {
#if CSMABW_HAVE_MMAP
  if (opts.use_mmap) {
    const int fd = ::open(path_.c_str(), O_RDONLY);
    if (fd >= 0) {
      struct stat st{};
      if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode)) {
        size_ = static_cast<std::uint64_t>(st.st_size);
        if (size_ == 0) {
          // mmap rejects zero-length maps; an empty file fails the
          // header check below with a clean message either way.
          ::close(fd);
          throw util::PreconditionError("`" + path_ + "` @ byte 0: " +
                                        "trace is empty");
        }
        void* map = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
        // The mapping keeps the pages alive; the descriptor can go.
        ::close(fd);
        if (map != MAP_FAILED) {
          data_ = static_cast<const unsigned char*>(map);
          mapped_ = true;
          return;
        }
      } else {
        ::close(fd);
      }
    }
    // Fall through to the buffered path, which reports open failures.
  }
#else
  (void)opts;
#endif
  std::ifstream in(path_, std::ios::binary);
  if (!in) {
    throw std::runtime_error("MappedTrace: cannot open '" + path_ + "'");
  }
  in.seekg(0, std::ios::end);
  size_ = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  buffer_.resize(size_);
  in.read(reinterpret_cast<char*>(buffer_.data()),
          static_cast<std::streamsize>(size_));
  if (static_cast<std::uint64_t>(in.gcount()) != size_) {
    throw std::runtime_error("MappedTrace: short read on '" + path_ + "'");
  }
  data_ = buffer_.data();
  mapped_ = false;
}

void MappedTrace::parse_header() {
  if (size_ < 12) {
    throw_corrupt(0, size_ == 0 ? "trace is empty" : "header truncated");
  }
  if (std::memcmp(data_, format::kMagic, 4) != 0) {
    throw_corrupt(0, "not a trace file (bad magic; expected \"CCTR\")");
  }
  version_ = get_u16(data_ + 4);
  CSMABW_REQUIRE(version_ >= format::kMinFormatVersion &&
                     version_ <= format::kFormatVersion,
                 "`" + path_ + "` @ byte 0: unsupported trace format "
                     "version " + std::to_string(version_) +
                     " (this reader knows " +
                     std::to_string(format::kMinFormatVersion) + ".." +
                     std::to_string(format::kFormatVersion) + ")");
  const std::uint32_t header_bytes = get_u32(data_ + 8);
  if (header_bytes < 48 || header_bytes > format::kMaxHeaderBytes ||
      header_bytes > size_) {
    throw_corrupt(0, "implausible header size " +
                         std::to_string(header_bytes));
  }
  const unsigned char* rest = data_ + 12;
  meta_.cell = get_i32(rest);
  meta_.repetition = get_i32(rest + 4);
  meta_.train_n = get_i32(rest + 8);
  meta_.train_size = get_i32(rest + 12);
  meta_.train_gap_ns = get_i64(rest + 16);
  meta_.seed = get_u64(rest + 24);
  const std::uint32_t label_len = get_u32(rest + 32);
  if (48 + static_cast<std::uint64_t>(label_len) > header_bytes) {
    throw_corrupt(0, "trace label overruns the header");
  }
  meta_.label.assign(reinterpret_cast<const char*>(rest + 36), label_len);
  // parse_header leaves the cursor for index_pages in pages_ walking
  // from header_bytes; remember it via the first page's offset.
  pages_.clear();
  events_ = 0;
  first_page_offset_ = header_bytes;
}

void MappedTrace::index_pages() {
  const std::size_t header_bytes = format::page_header_bytes(version_);
  std::uint64_t off = first_page_offset_;
  while (off < size_) {
    if (size_ - off < header_bytes) {
      throw_corrupt(off, "truncated page header");
    }
    const unsigned char* h = data_ + off;
    if (get_u32(h) != format::kPageMagic) {
      throw_corrupt(off, "bad page magic");
    }
    PageInfo p;
    p.header_offset = off;
    p.payload_bytes = get_u32(h + 4);
    p.event_count = get_u32(h + 8);
    p.base_time_ns = get_i64(h + 12);
    if (p.event_count == 0 || p.payload_bytes == 0) {
      throw_corrupt(off, "empty page");
    }
    if (p.payload_bytes > format::kMaxPageBytes) {
      throw_corrupt(off, "implausible page size " +
                             std::to_string(p.payload_bytes));
    }
    if (version_ >= 2) {
      p.summary = format::get_summary(h + format::kPageHeaderBytesV1);
      if (!p.summary.valid()) {
        throw_corrupt(
            off, "invalid page summary (kind mask " +
                     std::to_string(p.summary.kind_mask) + ", stations " +
                     std::to_string(p.summary.min_station) + ".." +
                     std::to_string(p.summary.max_station) + ", time " +
                     std::to_string(p.summary.min_time_ns) + ".." +
                     std::to_string(p.summary.max_time_ns) + " ns)");
      }
      p.has_summary = true;
    }
    p.payload_offset = off + header_bytes;
    if (size_ - p.payload_offset < p.payload_bytes) {
      throw_corrupt(off, "trace page truncated");
    }
    events_ += p.event_count;
    off = p.payload_offset + p.payload_bytes;
    pages_.push_back(p);
  }
}

void MappedTrace::load_sidecar() {
  const std::string idx_path = sidecar_index_path(path_);
  std::ifstream in(idx_path, std::ios::binary);
  if (!in) {
    return;  // no sidecar: v1 pages simply never skip
  }
  const auto fail = [&](const std::string& what) {
    throw util::PreconditionError(
        "`" + idx_path + "`: " + what +
        " (stale or corrupt sidecar index? delete it or rebuild with "
        "`trace_tool index`)");
  };
  std::vector<unsigned char> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  // Sidecar header: magic(4) version(2) reserved(2) size(8) count(4).
  constexpr std::size_t kIndexHeaderBytes = 20;
  if (bytes.size() < kIndexHeaderBytes ||
      std::memcmp(bytes.data(), format::kIndexMagic, 4) != 0) {
    fail("not a sidecar index (bad magic; expected \"CCIX\")");
  }
  if (get_u16(bytes.data() + 4) != format::kIndexVersion) {
    fail("unsupported sidecar index version " +
         std::to_string(get_u16(bytes.data() + 4)));
  }
  if (get_u64(bytes.data() + 8) != size_) {
    fail("index was built for a " +
         std::to_string(get_u64(bytes.data() + 8)) + "-byte file, trace is " +
         std::to_string(size_) + " bytes");
  }
  const std::uint32_t page_count = get_u32(bytes.data() + 16);
  if (page_count != pages_.size()) {
    fail("index covers " + std::to_string(page_count) +
         " pages, trace has " + std::to_string(pages_.size()));
  }
  constexpr std::size_t kEntryBytes = 8 + format::kPageSummaryBytes;
  if (bytes.size() !=
      kIndexHeaderBytes + static_cast<std::size_t>(page_count) * kEntryBytes) {
    fail("index truncated");
  }
  for (std::uint32_t i = 0; i < page_count; ++i) {
    const unsigned char* e = bytes.data() + kIndexHeaderBytes + i * kEntryBytes;
    if (get_u64(e) != pages_[i].header_offset) {
      fail("page " + std::to_string(i) + " offset mismatch");
    }
    const format::PageSummary s = format::get_summary(e + 8);
    if (!s.valid()) {
      fail("page " + std::to_string(i) + " has an invalid summary");
    }
    pages_[i].summary = s;
    pages_[i].has_summary = true;
  }
  sidecar_ = true;
}

const PageInfo& MappedTrace::page_checked(std::size_t i) const {
  CSMABW_REQUIRE(i < pages_.size(),
                 "page index " + std::to_string(i) + " out of range (`" +
                     path_ + "` has " + std::to_string(pages_.size()) +
                     " pages)");
  return pages_[i];
}

std::vector<TraceEvent> MappedTrace::decode_page(
    std::size_t page_index) const {
  std::vector<TraceEvent> events;
  events.reserve(page_checked(page_index).event_count);
  scan_page(page_index, [&](const TraceEvent& e) { events.push_back(e); });
  return events;
}

}  // namespace csmabw::trace
