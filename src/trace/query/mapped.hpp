#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/codec.hpp"
#include "trace/event.hpp"
#include "trace/format.hpp"
#include "trace/writer.hpp"  // TraceMeta

namespace csmabw::trace {

/// One page of a mapped trace: where its payload lives in the file plus
/// everything the scan needs to skip or decode it without touching the
/// payload first.
struct PageInfo {
  std::uint64_t header_offset = 0;   ///< byte offset of the page header
  std::uint64_t payload_offset = 0;  ///< byte offset of the payload
  std::uint32_t payload_bytes = 0;
  std::uint32_t event_count = 0;
  std::int64_t base_time_ns = 0;     ///< delta base of the page
  /// Skip-index summary: embedded for v2 pages, sidecar-backfilled for
  /// v1 pages with a `.ccidx`, absent otherwise (page never skipped).
  bool has_summary = false;
  format::PageSummary summary;
};

struct MappedTraceOptions {
  /// POSIX mmap the file read-only; false (or mmap failure) falls back
  /// to one buffered read of the whole file.
  bool use_mmap = true;
  /// Attach a `.ccidx` sidecar's summaries to a v1 file when present.
  bool load_sidecar = true;
};

/// Zero-copy random-access trace reader — the analytics twin of the
/// streaming TraceReader.
///
/// The whole file is mapped read-only (buffered read as fallback) and
/// the page directory — offsets, event counts, skip-index summaries —
/// is built eagerly by walking page headers only, so opening a
/// multi-GB trace touches a few bytes per 64 KiB page.  Pages then
/// decode independently, in place, in any order, which is what the
/// parallel query engine schedules over.  Corruption reports via
/// util::PreconditionError naming the file path and byte offset.
class MappedTrace {
 public:
  explicit MappedTrace(const std::string& path,
                       MappedTraceOptions opts = {});
  ~MappedTrace();

  MappedTrace(MappedTrace&& other) noexcept;
  MappedTrace& operator=(MappedTrace&& other) noexcept;
  MappedTrace(const MappedTrace&) = delete;
  MappedTrace& operator=(const MappedTrace&) = delete;

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] const TraceMeta& meta() const { return meta_; }
  [[nodiscard]] std::uint16_t version() const { return version_; }
  [[nodiscard]] std::uint64_t file_size() const { return size_; }
  /// True when the file is served by mmap (false: buffered fallback).
  [[nodiscard]] bool mapped() const { return mapped_; }
  /// True when a v1 file's summaries came from a `.ccidx` sidecar.
  [[nodiscard]] bool sidecar_loaded() const { return sidecar_; }

  [[nodiscard]] const std::vector<PageInfo>& pages() const {
    return pages_;
  }
  /// Total event count (from the page directory; no payload decode).
  [[nodiscard]] std::uint64_t events() const { return events_; }

  /// Decodes page `page_index` in place, invoking fn(const TraceEvent&)
  /// for each event in order.  Throws on corrupt payload bytes.
  template <typename Fn>
  void scan_page(std::size_t page_index, Fn&& fn) const {
    const PageInfo& p = page_checked(page_index);
    const unsigned char* payload = data_ + p.payload_offset;
    std::size_t pos = 0;
    std::int64_t prev_time = p.base_time_ns;
    TraceEvent e;
    for (std::uint32_t i = 0; i < p.event_count; ++i) {
      const char* err = codec::decode_event(payload, p.payload_bytes,
                                            &pos, &prev_time, &e);
      if (err != nullptr) {
        throw_corrupt(p.header_offset, err);
      }
      fn(static_cast<const TraceEvent&>(e));
    }
    if (pos != p.payload_bytes) {
      throw_corrupt(p.header_offset, "page has trailing bytes");
    }
  }

  /// scan_page into a vector (tests, small analyses).
  [[nodiscard]] std::vector<TraceEvent> decode_page(
      std::size_t page_index) const;

 private:
  void open(const MappedTraceOptions& opts);
  void parse_header();
  void index_pages();
  void load_sidecar();
  void unmap() noexcept;
  [[nodiscard]] const PageInfo& page_checked(std::size_t i) const;
  [[noreturn]] void throw_corrupt(std::uint64_t offset,
                                  const std::string& what) const;

  std::string path_;
  const unsigned char* data_ = nullptr;
  std::uint64_t size_ = 0;
  bool mapped_ = false;
  std::vector<unsigned char> buffer_;  // fallback storage
  TraceMeta meta_;
  std::uint16_t version_ = 0;
  std::uint64_t first_page_offset_ = 0;
  bool sidecar_ = false;
  std::uint64_t events_ = 0;
  std::vector<PageInfo> pages_;
};

/// `path` + ".ccidx" — where a trace's sidecar skip-index lives.
[[nodiscard]] std::string sidecar_index_path(const std::string& trace_path);

}  // namespace csmabw::trace
