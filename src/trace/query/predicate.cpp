#include "trace/query/predicate.hpp"

#include <charconv>
#include <cmath>
#include <cstdlib>
#include <vector>

#include "util/require.hpp"

namespace csmabw::trace::query {

namespace {

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> parts;
  while (!text.empty()) {
    const std::size_t at = text.find(sep);
    parts.push_back(text.substr(0, at));
    if (at == std::string_view::npos) {
      break;
    }
    text.remove_prefix(at + 1);
  }
  return parts;
}

[[noreturn]] void bad_clause(std::string_view clause,
                             const std::string& why) {
  throw util::PreconditionError("query predicate clause `" +
                                std::string(clause) + "`: " + why);
}

double parse_double(std::string_view text, std::string_view clause) {
  const std::string s(text);
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size() || s.empty()) {
    bad_clause(clause, "`" + s + "` is not a number");
  }
  return v;
}

std::int64_t parse_i64(std::string_view text, std::string_view clause) {
  std::int64_t v = 0;
  const auto [p, ec] =
      std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc() || p != text.data() + text.size()) {
    bad_clause(clause, "`" + std::string(text) + "` is not an integer");
  }
  return v;
}

/// "A..B", "A..", "..B" or "A" (exact); either bound may stay open.
template <typename Parse>
void parse_range(std::string_view value, std::string_view clause,
                 Parse&& parse, bool* has_lo, bool* has_hi) {
  const std::size_t dots = value.find("..");
  if (dots == std::string_view::npos) {
    parse(value, value);  // exact: lo == hi
    *has_lo = *has_hi = true;
    return;
  }
  const std::string_view lo = value.substr(0, dots);
  const std::string_view hi = value.substr(dots + 2);
  if (lo.empty() && hi.empty()) {
    bad_clause(clause, "range needs at least one bound");
  }
  *has_lo = !lo.empty();
  *has_hi = !hi.empty();
  parse(lo, hi);
}

}  // namespace

QueryPredicate QueryPredicate::parse(std::string_view where) {
  QueryPredicate pred;
  for (std::string_view clause : split(where, ';')) {
    if (clause.empty()) {
      continue;
    }
    const std::size_t eq = clause.find('=');
    if (eq == std::string_view::npos) {
      bad_clause(clause, "expected key=value");
    }
    const std::string_view key = clause.substr(0, eq);
    const std::string_view value = clause.substr(eq + 1);
    if (key == "kinds") {
      std::uint16_t mask = 0;
      for (std::string_view name : split(value, ',')) {
        const EventKind kind = parse_kind(name);  // throws on unknown
        mask = static_cast<std::uint16_t>(
            mask | (1u << (static_cast<int>(kind) - 1)));
      }
      if (mask == 0) {
        bad_clause(clause, "empty kind list");
      }
      pred.kinds = mask;
    } else if (key == "station") {
      bool has_lo = false;
      bool has_hi = false;
      parse_range(
          value, clause,
          [&](std::string_view lo, std::string_view hi) {
            if (!lo.empty()) {
              const std::int64_t v = parse_i64(lo, clause);
              if (v < 0 || v > 0xffff) {
                bad_clause(clause, "station out of range 0..65535");
              }
              pred.station_min = static_cast<std::uint16_t>(v);
            }
            if (!hi.empty()) {
              const std::int64_t v = parse_i64(hi, clause);
              if (v < 0 || v > 0xffff) {
                bad_clause(clause, "station out of range 0..65535");
              }
              pred.station_max = static_cast<std::uint16_t>(v);
            }
          },
          &has_lo, &has_hi);
      if (pred.station_min > pred.station_max) {
        bad_clause(clause, "empty station range");
      }
    } else if (key == "time_ms" || key == "time_ns") {
      bool has_lo = false;
      bool has_hi = false;
      const bool ms = key == "time_ms";
      parse_range(
          value, clause,
          [&](std::string_view lo, std::string_view hi) {
            if (!lo.empty()) {
              pred.time_min_ns =
                  ms ? static_cast<std::int64_t>(
                           std::llround(parse_double(lo, clause) * 1e6))
                     : parse_i64(lo, clause);
            }
            if (!hi.empty()) {
              pred.time_max_ns =
                  ms ? static_cast<std::int64_t>(
                           std::llround(parse_double(hi, clause) * 1e6))
                     : parse_i64(hi, clause);
            }
          },
          &has_lo, &has_hi);
      if (pred.time_min_ns > pred.time_max_ns) {
        bad_clause(clause, "empty time window");
      }
    } else {
      bad_clause(clause, "unknown key `" + std::string(key) +
                             "` (kinds, station, time_ms, time_ns)");
    }
  }
  return pred;
}

std::string QueryPredicate::describe() const {
  if (match_all()) {
    return "(all)";
  }
  std::string out;
  const auto clause = [&](const std::string& text) {
    if (!out.empty()) {
      out += ';';
    }
    out += text;
  };
  if (kinds != kAllKindsMask) {
    std::string names;
    for (int k = 1; k <= kEventKindCount; ++k) {
      if ((kinds >> (k - 1)) & 1) {
        if (!names.empty()) {
          names += ',';
        }
        names += kind_name(static_cast<EventKind>(k));
      }
    }
    clause("kinds=" + names);
  }
  if (station_min != 0 || station_max != 0xffff) {
    clause("station=" + std::to_string(station_min) + ".." +
           std::to_string(station_max));
  }
  if (time_min_ns != std::numeric_limits<std::int64_t>::min() ||
      time_max_ns != std::numeric_limits<std::int64_t>::max()) {
    std::string window = "time_ns=";
    if (time_min_ns != std::numeric_limits<std::int64_t>::min()) {
      window += std::to_string(time_min_ns);
    }
    window += "..";
    if (time_max_ns != std::numeric_limits<std::int64_t>::max()) {
      window += std::to_string(time_max_ns);
    }
    clause(window);
  }
  return out;
}

}  // namespace csmabw::trace::query
