#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>

#include "trace/event.hpp"
#include "trace/format.hpp"

namespace csmabw::trace::query {

/// Every kind bit set — the match-all kind mask.
inline constexpr std::uint16_t kAllKindsMask =
    static_cast<std::uint16_t>((1u << kEventKindCount) - 1);

/// The pushdown predicate of a trace query: a kind set, an inclusive
/// station range and an inclusive time window.  `matches` decides per
/// event; `may_match_page` decides per page from its skip-index summary
/// — conservatively, so disabling pushdown can only change speed, never
/// results.
///
/// String form (the `--where=` grammar): semicolon-separated clauses
///
///   kinds=<name>[,<name>...]      event kinds to keep
///   station=<A>..<B> | <N>        station range (either end omittable)
///   time_ms=<A>..<B>              event-time window, float milliseconds
///   time_ns=<A>..<B>              same in integer nanoseconds
///
/// e.g. `--where=kinds=success,drop;station=0..3;time_ms=..250`.
struct QueryPredicate {
  std::uint16_t kinds = kAllKindsMask;
  std::uint16_t station_min = 0;
  std::uint16_t station_max = 0xffff;
  std::int64_t time_min_ns = std::numeric_limits<std::int64_t>::min();
  std::int64_t time_max_ns = std::numeric_limits<std::int64_t>::max();

  [[nodiscard]] bool matches(const TraceEvent& e) const {
    return ((kinds >> (static_cast<int>(e.kind) - 1)) & 1) != 0 &&
           e.station >= station_min && e.station <= station_max &&
           e.time.count() >= time_min_ns && e.time.count() <= time_max_ns;
  }

  /// False only when the summary PROVES no event of the page matches.
  [[nodiscard]] bool may_match_page(const format::PageSummary& s) const {
    return (kinds & s.kind_mask) != 0 && station_min <= s.max_station &&
           station_max >= s.min_station && time_min_ns <= s.max_time_ns &&
           time_max_ns >= s.min_time_ns;
  }

  /// True when every event matches (lets scans skip per-event checks).
  [[nodiscard]] bool match_all() const {
    return kinds == kAllKindsMask && station_min == 0 &&
           station_max == 0xffff &&
           time_min_ns == std::numeric_limits<std::int64_t>::min() &&
           time_max_ns == std::numeric_limits<std::int64_t>::max();
  }

  /// Parses the `--where=` grammar above; throws util::PreconditionError
  /// on unknown clauses, malformed ranges or unknown kind names.  An
  /// empty string is the match-all predicate.
  [[nodiscard]] static QueryPredicate parse(std::string_view where);

  /// Human-readable form for logs ("(all)" for match-all).
  [[nodiscard]] std::string describe() const;

  friend bool operator==(const QueryPredicate&,
                         const QueryPredicate&) = default;
};

}  // namespace csmabw::trace::query
