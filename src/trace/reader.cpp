#include "trace/reader.hpp"

#include <cstring>
#include <stdexcept>

#include "trace/codec.hpp"
#include "trace/format.hpp"
#include "util/require.hpp"

namespace csmabw::trace {

namespace {

using format::get_i32;
using format::get_i64;
using format::get_u16;
using format::get_u32;
using format::get_u64;

/// Reads exactly `n` bytes; returns false on clean EOF at byte 0 and
/// throws on a mid-record truncation.
bool read_exact(std::istream& in, unsigned char* out, std::size_t n,
                const char* what, const std::string& context) {
  in.read(reinterpret_cast<char*>(out), static_cast<std::streamsize>(n));
  const auto got = static_cast<std::size_t>(in.gcount());
  if (got == 0 && in.eof()) {
    return false;
  }
  CSMABW_REQUIRE(got == n, context + "trace truncated while reading " +
                               what);
  return true;
}

}  // namespace

TraceReader::TraceReader(const std::string& path)
    : file_(path, std::ios::binary), in_(&file_), path_(path) {
  if (!file_) {
    throw std::runtime_error("TraceReader: cannot open '" + path + "'");
  }
  read_header();
}

TraceReader::TraceReader(std::istream& in) : in_(&in), path_("<stream>") {
  read_header();
}

std::string TraceReader::at(std::uint64_t offset) const {
  return "`" + path_ + "` @ byte " + std::to_string(offset) + ": ";
}

void TraceReader::read_header() {
  unsigned char fixed[12];
  CSMABW_REQUIRE(read_exact(*in_, fixed, sizeof(fixed), "the header", at(0)),
                 at(0) + "trace is empty");
  CSMABW_REQUIRE(std::memcmp(fixed, format::kMagic, 4) == 0,
                 at(0) +
                     "not a trace file (bad magic; expected \"CCTR\")");
  version_ = get_u16(fixed + 4);
  CSMABW_REQUIRE(version_ >= format::kMinFormatVersion &&
                     version_ <= format::kFormatVersion,
                 at(0) + "unsupported trace format version " +
                     std::to_string(version_) + " (this reader knows " +
                     std::to_string(format::kMinFormatVersion) + ".." +
                     std::to_string(format::kFormatVersion) + ")");
  const std::uint32_t header_bytes = get_u32(fixed + 8);
  // Plausibility-check sizes BEFORE allocating: a corrupt length field
  // must fail as "corrupt trace", never as a multi-GiB allocation.
  CSMABW_REQUIRE(header_bytes >= 48 &&
                     header_bytes <= format::kMaxHeaderBytes,
                 at(0) + "corrupt trace: implausible header size " +
                     std::to_string(header_bytes));
  std::vector<unsigned char> rest(header_bytes - sizeof(fixed));
  CSMABW_REQUIRE(read_exact(*in_, rest.data(), rest.size(), "the header",
                            at(sizeof(fixed))),
                 at(sizeof(fixed)) + "trace header truncated");
  meta_.cell = get_i32(rest.data());
  meta_.repetition = get_i32(rest.data() + 4);
  meta_.train_n = get_i32(rest.data() + 8);
  meta_.train_size = get_i32(rest.data() + 12);
  meta_.train_gap_ns = get_i64(rest.data() + 16);
  meta_.seed = get_u64(rest.data() + 24);
  const std::uint32_t label_len = get_u32(rest.data() + 32);
  CSMABW_REQUIRE(36 + static_cast<std::size_t>(label_len) <= rest.size(),
                 at(0) + "trace label overruns the header");
  meta_.label.assign(reinterpret_cast<const char*>(rest.data() + 36),
                     label_len);
  // Bytes between the label end and header_bytes belong to a newer
  // minor revision; skip them (they were consumed with `rest`).
  offset_ = header_bytes;
}

bool TraceReader::load_page() {
  page_offset_ = offset_;
  const std::size_t header_bytes = format::page_header_bytes(version_);
  unsigned char header[format::kPageHeaderBytesV2];
  if (!read_exact(*in_, header, header_bytes, "a page header",
                  at(page_offset_))) {
    return false;  // clean end of trace
  }
  CSMABW_REQUIRE(get_u32(header) == format::kPageMagic,
                 at(page_offset_) + "corrupt trace: bad page magic");
  const std::uint32_t payload = get_u32(header + 4);
  remaining_in_page_ = get_u32(header + 8);
  prev_time_ = get_i64(header + 12);
  CSMABW_REQUIRE(remaining_in_page_ > 0 && payload > 0,
                 at(page_offset_) + "corrupt trace: empty page");
  CSMABW_REQUIRE(payload <= format::kMaxPageBytes,
                 at(page_offset_) +
                     "corrupt trace: implausible page size " +
                     std::to_string(payload));
  if (version_ >= 2) {
    summary_ = format::get_summary(header + format::kPageHeaderBytesV1);
    CSMABW_REQUIRE(summary_.valid(),
                   at(page_offset_) +
                       "corrupt trace: invalid page summary (kind mask " +
                       std::to_string(summary_.kind_mask) + ", stations " +
                       std::to_string(summary_.min_station) + ".." +
                       std::to_string(summary_.max_station) + ", time " +
                       std::to_string(summary_.min_time_ns) + ".." +
                       std::to_string(summary_.max_time_ns) + " ns)");
  } else {
    summary_ = format::PageSummary{};
  }
  page_.resize(payload);
  CSMABW_REQUIRE(read_exact(*in_, page_.data(), payload, "a page payload",
                            at(page_offset_ + header_bytes)),
                 at(page_offset_) + "trace page truncated");
  offset_ += header_bytes + payload;
  pos_ = 0;
  ++pages_;
  return true;
}

bool TraceReader::next(TraceEvent* out) {
  CSMABW_REQUIRE(out != nullptr, "null event out-parameter");
  if (remaining_in_page_ == 0 && !load_page()) {
    return false;
  }
  const char* err =
      codec::decode_event(page_.data(), page_.size(), &pos_, &prev_time_,
                          out);
  CSMABW_REQUIRE(err == nullptr, at(page_offset_) + "corrupt trace: " +
                                     (err != nullptr ? err : ""));
  --remaining_in_page_;
  if (remaining_in_page_ == 0) {
    CSMABW_REQUIRE(pos_ == page_.size(),
                   at(page_offset_) +
                       "corrupt trace: page has trailing bytes");
  }
  ++events_;
  return true;
}

std::vector<TraceEvent> read_trace(const std::string& path) {
  TraceReader reader(path);
  std::vector<TraceEvent> events;
  TraceEvent e;
  while (reader.next(&e)) {
    events.push_back(e);
  }
  return events;
}

}  // namespace csmabw::trace
