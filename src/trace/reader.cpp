#include "trace/reader.hpp"

#include <cstring>
#include <stdexcept>

#include "trace/format.hpp"
#include "util/require.hpp"

namespace csmabw::trace {

namespace {

using format::get_i32;
using format::get_i64;
using format::get_u16;
using format::get_u32;
using format::get_u64;

/// Reads exactly `n` bytes; returns false on clean EOF at byte 0 and
/// throws on a mid-record truncation.
bool read_exact(std::istream& in, unsigned char* out, std::size_t n,
                const char* what) {
  in.read(reinterpret_cast<char*>(out), static_cast<std::streamsize>(n));
  const auto got = static_cast<std::size_t>(in.gcount());
  if (got == 0 && in.eof()) {
    return false;
  }
  CSMABW_REQUIRE(got == n, std::string("trace truncated while reading ") +
                               what);
  return true;
}

}  // namespace

TraceReader::TraceReader(const std::string& path)
    : file_(path, std::ios::binary), in_(&file_) {
  if (!file_) {
    throw std::runtime_error("TraceReader: cannot open '" + path + "'");
  }
  read_header();
}

TraceReader::TraceReader(std::istream& in) : in_(&in) { read_header(); }

void TraceReader::read_header() {
  unsigned char fixed[12];
  CSMABW_REQUIRE(read_exact(*in_, fixed, sizeof(fixed), "the header"),
                 "trace is empty");
  CSMABW_REQUIRE(std::memcmp(fixed, format::kMagic, 4) == 0,
                 "not a trace file (bad magic; expected \"CCTR\")");
  version_ = get_u16(fixed + 4);
  CSMABW_REQUIRE(version_ == format::kFormatVersion,
                 "unsupported trace format version " +
                     std::to_string(version_) + " (this reader knows " +
                     std::to_string(format::kFormatVersion) + ")");
  const std::uint32_t header_bytes = get_u32(fixed + 8);
  // Plausibility-check sizes BEFORE allocating: a corrupt length field
  // must fail as "corrupt trace", never as a multi-GiB allocation.
  CSMABW_REQUIRE(header_bytes >= 48 &&
                     header_bytes <= format::kMaxHeaderBytes,
                 "corrupt trace: implausible header size " +
                     std::to_string(header_bytes));
  std::vector<unsigned char> rest(header_bytes - sizeof(fixed));
  CSMABW_REQUIRE(read_exact(*in_, rest.data(), rest.size(), "the header"),
                 "trace header truncated");
  meta_.cell = get_i32(rest.data());
  meta_.repetition = get_i32(rest.data() + 4);
  meta_.train_n = get_i32(rest.data() + 8);
  meta_.train_size = get_i32(rest.data() + 12);
  meta_.train_gap_ns = get_i64(rest.data() + 16);
  meta_.seed = get_u64(rest.data() + 24);
  const std::uint32_t label_len = get_u32(rest.data() + 32);
  CSMABW_REQUIRE(36 + static_cast<std::size_t>(label_len) <= rest.size(),
                 "trace label overruns the header");
  meta_.label.assign(reinterpret_cast<const char*>(rest.data() + 36),
                     label_len);
  // Bytes between the label end and header_bytes belong to a newer
  // minor revision; skip them (they were consumed with `rest`).
}

bool TraceReader::load_page() {
  unsigned char header[20];
  if (!read_exact(*in_, header, sizeof(header), "a page header")) {
    return false;  // clean end of trace
  }
  CSMABW_REQUIRE(get_u32(header) == format::kPageMagic,
                 "corrupt trace: bad page magic");
  const std::uint32_t payload = get_u32(header + 4);
  remaining_in_page_ = get_u32(header + 8);
  prev_time_ = get_i64(header + 12);
  CSMABW_REQUIRE(remaining_in_page_ > 0 && payload > 0,
                 "corrupt trace: empty page");
  CSMABW_REQUIRE(payload <= format::kMaxPageBytes,
                 "corrupt trace: implausible page size " +
                     std::to_string(payload));
  page_.resize(payload);
  CSMABW_REQUIRE(read_exact(*in_, page_.data(), payload, "a page payload"),
                 "trace page truncated");
  pos_ = 0;
  ++pages_;
  return true;
}

bool TraceReader::next(TraceEvent* out) {
  CSMABW_REQUIRE(out != nullptr, "null event out-parameter");
  if (remaining_in_page_ == 0 && !load_page()) {
    return false;
  }
  CSMABW_REQUIRE(pos_ < page_.size(), "corrupt trace: page underruns");
  const unsigned char kind = page_[pos_++];
  CSMABW_REQUIRE(kind >= 1 && kind <= kEventKindCount,
                 "corrupt trace: unknown event kind " +
                     std::to_string(static_cast<int>(kind)));
  std::uint64_t station = 0;
  std::uint64_t time_delta_z = 0;
  std::uint64_t packet = 0;
  std::uint64_t aux_z = 0;
  std::uint64_t flow_z = 0;
  std::uint64_t seq_z = 0;
  std::uint64_t value_z = 0;
  const bool ok = format::get_varint(page_.data(), page_.size(), &pos_,
                                     &station) &&
                  format::get_varint(page_.data(), page_.size(), &pos_,
                                     &time_delta_z) &&
                  format::get_varint(page_.data(), page_.size(), &pos_,
                                     &packet) &&
                  format::get_varint(page_.data(), page_.size(), &pos_,
                                     &aux_z) &&
                  format::get_varint(page_.data(), page_.size(), &pos_,
                                     &flow_z) &&
                  format::get_varint(page_.data(), page_.size(), &pos_,
                                     &seq_z) &&
                  format::get_varint(page_.data(), page_.size(), &pos_,
                                     &value_z);
  CSMABW_REQUIRE(ok, "corrupt trace: event varint truncated");
  CSMABW_REQUIRE(station <= 0xffff, "corrupt trace: station out of range");
  out->kind = static_cast<EventKind>(kind);
  out->station = static_cast<std::uint16_t>(station);
  prev_time_ += format::unzigzag(time_delta_z);
  out->time = TimeNs::ns(prev_time_);
  out->packet = packet;
  out->aux = TimeNs::ns(prev_time_ + format::unzigzag(aux_z));
  out->flow = static_cast<std::int32_t>(format::unzigzag(flow_z));
  out->seq = static_cast<std::int32_t>(format::unzigzag(seq_z));
  out->value = static_cast<std::int32_t>(format::unzigzag(value_z));
  --remaining_in_page_;
  if (remaining_in_page_ == 0) {
    CSMABW_REQUIRE(pos_ == page_.size(),
                   "corrupt trace: page has trailing bytes");
  }
  ++events_;
  return true;
}

std::vector<TraceEvent> read_trace(const std::string& path) {
  TraceReader reader(path);
  std::vector<TraceEvent> events;
  TraceEvent e;
  while (reader.next(&e)) {
    events.push_back(e);
  }
  return events;
}

}  // namespace csmabw::trace
