#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "trace/event.hpp"
#include "trace/writer.hpp"  // TraceMeta

namespace csmabw::trace {

/// Streaming binary trace reader — the inverse of TraceWriter.
///
/// The header (version + TraceMeta) is read eagerly at construction;
/// events decode page by page through `next()`, so arbitrarily large
/// traces read with bounded memory.  Malformed input (bad magic,
/// unsupported version, truncated pages, corrupt varints) reports via
/// util::PreconditionError.
class TraceReader {
 public:
  /// Opens `path`; throws std::runtime_error when it cannot be opened
  /// and util::PreconditionError when the header is not a trace.
  explicit TraceReader(const std::string& path);
  /// Reads from an existing istream (not owned).
  explicit TraceReader(std::istream& in);

  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;

  [[nodiscard]] const TraceMeta& meta() const { return meta_; }
  [[nodiscard]] std::uint16_t version() const { return version_; }

  /// Decodes the next event into `*out`; returns false at end of trace.
  [[nodiscard]] bool next(TraceEvent* out);

  [[nodiscard]] std::uint64_t events_read() const { return events_; }
  [[nodiscard]] std::uint64_t pages_read() const { return pages_; }

 private:
  void read_header();
  [[nodiscard]] bool load_page();

  std::ifstream file_;
  std::istream* in_;  // &file_, or the borrowed stream
  TraceMeta meta_;
  std::uint16_t version_ = 0;
  std::vector<unsigned char> page_;
  std::size_t pos_ = 0;
  std::uint32_t remaining_in_page_ = 0;
  std::int64_t prev_time_ = 0;
  std::uint64_t events_ = 0;
  std::uint64_t pages_ = 0;
};

/// Reads a whole trace into memory (tests, small analyses).
[[nodiscard]] std::vector<TraceEvent> read_trace(const std::string& path);

}  // namespace csmabw::trace
