#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "trace/event.hpp"
#include "trace/format.hpp"
#include "trace/writer.hpp"  // TraceMeta

namespace csmabw::trace {

/// Streaming binary trace reader — the inverse of TraceWriter.
///
/// The header (version + TraceMeta) is read eagerly at construction;
/// events decode page by page through `next()`, so arbitrarily large
/// traces read with bounded memory.  Reads both format versions
/// (v1 pages have no skip-index summary).  Malformed input (bad magic,
/// unsupported version, truncated pages, corrupt varints) reports via
/// util::PreconditionError; every corruption message names the file
/// path and the byte offset of the failing page.
class TraceReader {
 public:
  /// Opens `path`; throws std::runtime_error when it cannot be opened
  /// and util::PreconditionError when the header is not a trace.
  explicit TraceReader(const std::string& path);
  /// Reads from an existing istream (not owned).
  explicit TraceReader(std::istream& in);

  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;

  [[nodiscard]] const TraceMeta& meta() const { return meta_; }
  [[nodiscard]] std::uint16_t version() const { return version_; }

  /// Decodes the next event into `*out`; returns false at end of trace.
  [[nodiscard]] bool next(TraceEvent* out);

  /// Skip-index summary of the page `next()` is decoding from;
  /// summary.kind_mask == 0 before the first page and for v1 pages.
  [[nodiscard]] const format::PageSummary& page_summary() const {
    return summary_;
  }

  [[nodiscard]] std::uint64_t events_read() const { return events_; }
  [[nodiscard]] std::uint64_t pages_read() const { return pages_; }

 private:
  void read_header();
  [[nodiscard]] bool load_page();
  /// "`<path>` @ byte <offset>: " — the context every corruption
  /// message carries.
  [[nodiscard]] std::string at(std::uint64_t offset) const;

  std::ifstream file_;
  std::istream* in_;  // &file_, or the borrowed stream
  std::string path_;  // "<stream>" in borrowed-stream mode
  TraceMeta meta_;
  std::uint16_t version_ = 0;
  std::vector<unsigned char> page_;
  std::size_t pos_ = 0;
  std::uint32_t remaining_in_page_ = 0;
  std::int64_t prev_time_ = 0;
  format::PageSummary summary_;
  std::uint64_t offset_ = 0;       ///< bytes consumed from the stream
  std::uint64_t page_offset_ = 0;  ///< offset of the current page header
  std::uint64_t events_ = 0;
  std::uint64_t pages_ = 0;
};

/// Reads a whole trace into memory (tests, small analyses).
[[nodiscard]] std::vector<TraceEvent> read_trace(const std::string& path);

}  // namespace csmabw::trace
