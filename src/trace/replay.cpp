#include "trace/replay.hpp"

#include <algorithm>
#include <filesystem>
#include <stdexcept>
#include <tuple>

#include "trace/format.hpp"
#include "util/require.hpp"

namespace csmabw::trace {

void PacketReconstructor::on_event(const TraceEvent& event) {
  const int ki = kind_index(event.kind);
  CSMABW_REQUIRE(ki >= 0 && ki < kEventKindCount, "unknown event kind");
  ++counts_[static_cast<std::size_t>(ki)];

  switch (event.kind) {
    case EventKind::kEnqueue: {
      std::deque<mac::Packet>& queue = queues_[event.station];
      mac::Packet p;
      p.id = event.packet;
      p.flow = event.flow;
      p.seq = event.seq;
      p.size_bytes = event.value;
      p.enqueue_time = event.time;
      if (queue.empty()) {
        // The station's queue was empty: the packet heads it at once.
        p.head_time = event.time;
      }
      queue.push_back(p);
      break;
    }
    case EventKind::kTxAttempt: {
      auto it = queues_.find(event.station);
      CSMABW_REQUIRE(it != queues_.end() && !it->second.empty(),
                     "trace replay: tx attempt with an empty queue "
                     "(filtered or truncated trace?)");
      mac::Packet& head = it->second.front();
      CSMABW_REQUIRE(head.id == event.packet,
                     "trace replay: tx attempt for a non-head packet "
                     "(filtered or truncated trace?)");
      if (event.value == 0) {
        head.first_tx_time = event.time;
      }
      break;
    }
    case EventKind::kSuccess:
    case EventKind::kDrop: {
      auto it = queues_.find(event.station);
      CSMABW_REQUIRE(it != queues_.end() && !it->second.empty(),
                     "trace replay: service completion with an empty "
                     "queue (filtered or truncated trace?)");
      std::deque<mac::Packet>& queue = it->second;
      mac::Packet head = queue.front();
      queue.pop_front();
      CSMABW_REQUIRE(head.id == event.packet,
                     "trace replay: service completion for a non-head "
                     "packet (filtered or truncated trace?)");
      head.depart_time = event.aux;
      head.retries = event.value;
      head.dropped = event.kind == EventKind::kDrop;
      if (!queue.empty()) {
        // Successor head instant: the recursion DcfStation applies live.
        queue.front().head_time =
            std::max(event.aux, queue.front().enqueue_time);
      }
      packets_.push_back(ReplayPacket{event.station, head});
      break;
    }
    default:
      break;  // contention/depth/channel events carry no packet state
  }
}

std::size_t PacketReconstructor::pending() const {
  std::size_t n = 0;
  for (const auto& [station, queue] : queues_) {
    n += queue.size();
  }
  return n;
}

std::vector<ReplayPacket> replay_packets(TraceReader& reader) {
  PacketReconstructor rec;
  TraceEvent e;
  while (reader.next(&e)) {
    rec.on_event(e);
  }
  return rec.packets();
}

core::TrainRun replay_train(const std::vector<ReplayPacket>& packets,
                            int flow) {
  core::TrainRun run;
  for (const ReplayPacket& rp : packets) {
    if (rp.packet.flow == flow) {
      run.packets.push_back(rp.packet);
      run.any_dropped = run.any_dropped || rp.packet.dropped;
    }
  }
  CSMABW_REQUIRE(!run.packets.empty(), "trace has no packets of flow " +
                                           std::to_string(flow));
  std::sort(run.packets.begin(), run.packets.end(),
            [](const mac::Packet& a, const mac::Packet& b) {
              return a.seq < b.seq;
            });
  for (std::size_t i = 0; i < run.packets.size(); ++i) {
    CSMABW_REQUIRE(run.packets[i].seq == static_cast<int>(i),
                   "flow " + std::to_string(flow) +
                       " has a sequence gap at seq " + std::to_string(i));
  }
  return run;
}

core::TrainRun replay_train_file(const std::string& path, int flow) {
  TraceReader reader(path);
  return replay_train(replay_packets(reader), flow);
}

// ------------------------------------------------------ TrainReplayStats

TrainReplayStats::TrainReplayStats(const core::TransientConfig& cfg,
                                   int shard_size)
    : cfg_(cfg), shard_size_(shard_size) {
  CSMABW_REQUIRE(shard_size_ >= 1, "shard_size must be >= 1");
}

void TrainReplayStats::add(const core::TrainRun& run) {
  CSMABW_REQUIRE(merged_ == nullptr, "add() after finish()");
  if (current_ == nullptr) {
    current_ = std::make_unique<Shard>(cfg_);
  }
  if (run.any_dropped) {
    ++dropped_;
  } else {
    current_->analyzer.add_repetition(run.access_delays_s());
    current_->output_gap_s.add(run.output_gap_s());
    ++used_;
  }
  if (++reps_in_shard_ == shard_size_) {
    shards_.push_back(std::move(current_));
    reps_in_shard_ = 0;
  }
}

void TrainReplayStats::finish() {
  if (merged_ != nullptr) {
    return;
  }
  if (current_ != nullptr) {
    shards_.push_back(std::move(current_));
  }
  merged_ = std::make_unique<Shard>(cfg_);
  for (const auto& shard : shards_) {
    merged_->analyzer.merge(shard->analyzer);
    merged_->output_gap_s.merge(shard->output_gap_s);
  }
  shards_.clear();
}

const core::TransientAnalyzer& TrainReplayStats::analyzer() const {
  CSMABW_REQUIRE(merged_ != nullptr, "call finish() first");
  return merged_->analyzer;
}

const stats::RunningStat& TrainReplayStats::output_gap_s() const {
  CSMABW_REQUIRE(merged_ != nullptr, "call finish() first");
  return merged_->output_gap_s;
}

// ----------------------------------------------------------- list_traces

std::vector<TraceFile> list_traces(const std::string& dir) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(dir)) {
    throw std::runtime_error("list_traces: '" + dir +
                             "' is not a directory");
  }
  std::vector<TraceFile> files;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file() ||
        entry.path().extension() != format::kTraceExtension) {
      continue;
    }
    TraceFile f;
    f.path = entry.path().string();
    f.meta = TraceReader(f.path).meta();
    files.push_back(std::move(f));
  }
  std::sort(files.begin(), files.end(),
            [](const TraceFile& a, const TraceFile& b) {
              return std::tie(a.meta.cell, a.meta.repetition, a.path) <
                     std::tie(b.meta.cell, b.meta.repetition, b.path);
            });
  return files;
}

}  // namespace csmabw::trace
