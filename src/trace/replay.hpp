#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "core/transient.hpp"
#include "stats/summary.hpp"
#include "trace/event.hpp"
#include "trace/reader.hpp"

namespace csmabw::trace {

/// One reconstructed packet lifecycle plus the station that carried it.
struct ReplayPacket {
  int station = 0;
  mac::Packet packet;
};

/// Streaming reconstruction of packet lifecycles from an event trace.
///
/// Mirrors the DCF station's FIFO bookkeeping exactly: a packet's
/// head-of-queue instant is its enqueue time when the queue was empty,
/// else max(previous head packet's departure, its own enqueue time) —
/// the same recursion `mac::DcfStation` applies live, so the
/// reconstructed records are bit-identical to the live run's.  Requires
/// a complete trace (every enqueue/success/drop present and in
/// simulation order); kind-filtered traces cannot be reconstructed.
class PacketReconstructor {
 public:
  void on_event(const TraceEvent& event);

  /// Delivered and dropped packets in completion (event) order.
  [[nodiscard]] const std::vector<ReplayPacket>& packets() const {
    return packets_;
  }
  /// Packets enqueued but not yet delivered or dropped.
  [[nodiscard]] std::size_t pending() const;
  /// Events seen per kind (dense kind_index order).
  [[nodiscard]] const std::array<std::uint64_t, kEventKindCount>& counts()
      const {
    return counts_;
  }

 private:
  std::map<int, std::deque<mac::Packet>> queues_;  // station -> FIFO
  std::vector<ReplayPacket> packets_;
  std::array<std::uint64_t, kEventKindCount> counts_{};
};

/// Drains `reader` through a PacketReconstructor.
[[nodiscard]] std::vector<ReplayPacket> replay_packets(TraceReader& reader);

/// Rebuilds flow `flow`'s probe train from reconstructed packets as a
/// core::TrainRun (packets in sequence order) — the offline twin of
/// Scenario::run_train's result, feeding the same access-delay and
/// output-gap machinery.  Throws when the flow has a sequence gap.
[[nodiscard]] core::TrainRun replay_train(
    const std::vector<ReplayPacket>& packets, int flow);

/// Convenience: read + reconstruct + extract in one call.
[[nodiscard]] core::TrainRun replay_train_file(const std::string& path,
                                               int flow = core::kProbeFlow);

/// Offline recomputation of a train campaign cell's statistics — the
/// paper's fig06 (per-index mean access delay), fig08 (KS transient
/// detection) and fig10 (transient duration) — from recorded traces.
///
/// Repetitions must be added in repetition order; internally they
/// accumulate in shards of `shard_size` that merge in order, replicating
/// exp::run_train_campaign's decomposition exactly, so the replayed
/// statistics are bit-identical to the live campaign's for the matching
/// shard size (64 is the engine default).
class TrainReplayStats {
 public:
  explicit TrainReplayStats(const core::TransientConfig& cfg,
                            int shard_size = 64);

  /// Adds the next repetition; dropped trains are counted and skipped
  /// (as live).
  void add(const core::TrainRun& run);

  /// Merges the shards; no add() afterwards.  Idempotent.
  void finish();

  [[nodiscard]] const core::TransientAnalyzer& analyzer() const;
  [[nodiscard]] const stats::RunningStat& output_gap_s() const;
  [[nodiscard]] int used() const { return used_; }
  [[nodiscard]] int dropped() const { return dropped_; }

 private:
  struct Shard {
    explicit Shard(const core::TransientConfig& cfg) : analyzer(cfg) {}
    core::TransientAnalyzer analyzer;
    stats::RunningStat output_gap_s;
  };

  core::TransientConfig cfg_;
  int shard_size_;
  int reps_in_shard_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<Shard> current_;
  std::unique_ptr<Shard> merged_;
  int used_ = 0;
  int dropped_ = 0;
};

/// A discovered trace file with its header metadata.
struct TraceFile {
  std::string path;
  TraceMeta meta;
};

/// Lists every `.cctrace` under `dir` (non-recursive), sorted by
/// (meta.cell, meta.repetition, path) — the replay order of a recorded
/// campaign.  Throws std::runtime_error when `dir` does not exist.
[[nodiscard]] std::vector<TraceFile> list_traces(const std::string& dir);

}  // namespace csmabw::trace
