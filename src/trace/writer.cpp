#include "trace/writer.hpp"

#include <cstdio>
#include <stdexcept>

#include "trace/format.hpp"
#include "util/require.hpp"

namespace csmabw::trace {

namespace {

using format::put_i32;
using format::put_i64;
using format::put_u16;
using format::put_u32;
using format::put_u64;

std::size_t checked_page_limit(std::size_t page_bytes) {
  const std::size_t limit =
      page_bytes != 0 ? page_bytes : format::kDefaultPageBytes;
  // Half the reader's cap: a page may overshoot its target by one
  // encoded event, and the cap must still hold with margin.
  CSMABW_REQUIRE(limit <= format::kMaxPageBytes / 2,
                 "trace page size exceeds the format's page cap");
  return limit;
}

}  // namespace

TraceWriter::TraceWriter(const std::string& path, TraceMeta meta,
                         std::size_t page_bytes)
    : file_(path, std::ios::binary),
      out_(&file_),
      page_limit_(checked_page_limit(page_bytes)) {
  if (!file_) {
    throw std::runtime_error("TraceWriter: cannot open '" + path + "'");
  }
  write_header(meta);
}

TraceWriter::TraceWriter(std::ostream& out, TraceMeta meta,
                         std::size_t page_bytes)
    : out_(&out), page_limit_(checked_page_limit(page_bytes)) {
  write_header(meta);
}

TraceWriter::~TraceWriter() {
  try {
    close();
  } catch (...) {
    // A destructor must not throw; explicit close() reports the failure.
  }
}

void TraceWriter::write_header(const TraceMeta& meta) {
  CSMABW_REQUIRE(48 + meta.label.size() <= format::kMaxHeaderBytes,
                 "trace label too long");
  std::vector<unsigned char> header;
  header.reserve(48 + meta.label.size());
  for (char c : format::kMagic) {
    header.push_back(static_cast<unsigned char>(c));
  }
  put_u16(header, format::kFormatVersion);
  put_u16(header, 0);  // reserved
  put_u32(header, 0);  // header_bytes, patched below
  put_i32(header, meta.cell);
  put_i32(header, meta.repetition);
  put_i32(header, meta.train_n);
  put_i32(header, meta.train_size);
  put_i64(header, meta.train_gap_ns);
  put_u64(header, meta.seed);
  put_u32(header, static_cast<std::uint32_t>(meta.label.size()));
  for (char c : meta.label) {
    header.push_back(static_cast<unsigned char>(c));
  }
  const auto total = static_cast<std::uint32_t>(header.size());
  for (int i = 0; i < 4; ++i) {
    header[8 + static_cast<std::size_t>(i)] =
        static_cast<unsigned char>(total >> (8 * i));
  }
  out_->write(reinterpret_cast<const char*>(header.data()),
              static_cast<std::streamsize>(header.size()));
}

void TraceWriter::on_event(const TraceEvent& event) {
  CSMABW_REQUIRE(!closed_, "TraceWriter used after close()");
  if (page_events_ == 0) {
    page_base_time_ = prev_time_;
  }
  page_.push_back(static_cast<unsigned char>(event.kind));
  format::put_varint(page_, event.station);
  format::put_svarint(page_, event.time.count() - prev_time_);
  format::put_varint(page_, event.packet);
  format::put_svarint(page_, event.aux.count() - event.time.count());
  format::put_svarint(page_, event.flow);
  format::put_svarint(page_, event.seq);
  format::put_svarint(page_, event.value);
  prev_time_ = event.time.count();
  ++page_events_;
  ++events_;
  if (page_.size() >= page_limit_) {
    flush_page();
  }
}

void TraceWriter::flush_page() {
  if (page_events_ == 0) {
    return;
  }
  std::vector<unsigned char> header;
  header.reserve(20);
  put_u32(header, format::kPageMagic);
  put_u32(header, static_cast<std::uint32_t>(page_.size()));
  put_u32(header, page_events_);
  put_i64(header, page_base_time_);
  out_->write(reinterpret_cast<const char*>(header.data()),
              static_cast<std::streamsize>(header.size()));
  out_->write(reinterpret_cast<const char*>(page_.data()),
              static_cast<std::streamsize>(page_.size()));
  page_.clear();
  page_events_ = 0;
  ++pages_;
}

void TraceWriter::close() {
  if (closed_) {
    return;
  }
  flush_page();
  out_->flush();
  if (!*out_) {
    closed_ = true;  // do not throw again from the destructor
    throw std::runtime_error("TraceWriter: write failed");
  }
  if (out_ == &file_) {
    file_.close();
  }
  closed_ = true;
}

std::string train_trace_path(const std::string& dir, int cell,
                             int repetition) {
  CSMABW_REQUIRE(cell >= 0 && repetition >= 0,
                 "cell and repetition must be >= 0");
  char name[64];
  std::snprintf(name, sizeof(name), "cell-%05d-rep-%06d%s", cell,
                repetition, format::kTraceExtension);
  if (dir.empty()) {
    return name;
  }
  return dir.back() == '/' ? dir + name : dir + "/" + name;
}

}  // namespace csmabw::trace
