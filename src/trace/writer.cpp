#include "trace/writer.hpp"

#include <cstdio>
#include <stdexcept>

#include "trace/codec.hpp"
#include "trace/format.hpp"
#include "util/require.hpp"

namespace csmabw::trace {

namespace {

using format::put_i32;
using format::put_i64;
using format::put_u16;
using format::put_u32;
using format::put_u64;

std::size_t checked_page_limit(std::size_t page_bytes) {
  const std::size_t limit =
      page_bytes != 0 ? page_bytes : format::kDefaultPageBytes;
  // Half the reader's cap: a page may overshoot its target by one
  // encoded event, and the cap must still hold with margin.
  CSMABW_REQUIRE(limit <= format::kMaxPageBytes / 2,
                 "trace page size exceeds the format's page cap");
  return limit;
}

std::uint16_t checked_version(std::uint16_t version) {
  CSMABW_REQUIRE(version >= format::kMinFormatVersion &&
                     version <= format::kFormatVersion,
                 "unsupported trace format version " +
                     std::to_string(version) + " (this writer knows " +
                     std::to_string(format::kMinFormatVersion) + ".." +
                     std::to_string(format::kFormatVersion) + ")");
  return version;
}

}  // namespace

TraceWriter::TraceWriter(const std::string& path, TraceMeta meta,
                         std::size_t page_bytes,
                         std::uint16_t format_version)
    : file_(path, std::ios::binary),
      out_(&file_),
      page_limit_(checked_page_limit(page_bytes)),
      version_(checked_version(format_version)) {
  if (!file_) {
    throw std::runtime_error("TraceWriter: cannot open '" + path + "'");
  }
  write_header(meta);
}

TraceWriter::TraceWriter(std::ostream& out, TraceMeta meta,
                         std::size_t page_bytes,
                         std::uint16_t format_version)
    : out_(&out),
      page_limit_(checked_page_limit(page_bytes)),
      version_(checked_version(format_version)) {
  write_header(meta);
}

TraceWriter::~TraceWriter() {
  try {
    close();
  } catch (...) {
    // A destructor must not throw; explicit close() reports the failure.
  }
}

void TraceWriter::write_header(const TraceMeta& meta) {
  CSMABW_REQUIRE(48 + meta.label.size() <= format::kMaxHeaderBytes,
                 "trace label too long");
  std::vector<unsigned char> header;
  header.reserve(48 + meta.label.size());
  for (char c : format::kMagic) {
    header.push_back(static_cast<unsigned char>(c));
  }
  put_u16(header, version_);
  put_u16(header, 0);  // reserved
  put_u32(header, 0);  // header_bytes, patched below
  put_i32(header, meta.cell);
  put_i32(header, meta.repetition);
  put_i32(header, meta.train_n);
  put_i32(header, meta.train_size);
  put_i64(header, meta.train_gap_ns);
  put_u64(header, meta.seed);
  put_u32(header, static_cast<std::uint32_t>(meta.label.size()));
  for (char c : meta.label) {
    header.push_back(static_cast<unsigned char>(c));
  }
  const auto total = static_cast<std::uint32_t>(header.size());
  for (int i = 0; i < 4; ++i) {
    header[8 + static_cast<std::size_t>(i)] =
        static_cast<unsigned char>(total >> (8 * i));
  }
  out_->write(reinterpret_cast<const char*>(header.data()),
              static_cast<std::streamsize>(header.size()));
}

void TraceWriter::on_event(const TraceEvent& event) {
  CSMABW_REQUIRE(!closed_, "TraceWriter used after close()");
  if (page_events_ == 0) {
    page_base_time_ = prev_time_;
    summary_ = format::PageSummary{};
  }
  summary_.add(static_cast<std::uint8_t>(event.kind), event.station,
               event.time.count());
  codec::encode_event(page_, event, &prev_time_);
  ++page_events_;
  ++events_;
  if (page_.size() >= page_limit_) {
    flush_page();
  }
}

void TraceWriter::flush_page() {
  if (page_events_ == 0) {
    return;
  }
  std::vector<unsigned char> header;
  header.reserve(format::page_header_bytes(version_));
  put_u32(header, format::kPageMagic);
  put_u32(header, static_cast<std::uint32_t>(page_.size()));
  put_u32(header, page_events_);
  put_i64(header, page_base_time_);
  if (version_ >= 2) {
    format::put_summary(header, summary_);
  }
  out_->write(reinterpret_cast<const char*>(header.data()),
              static_cast<std::streamsize>(header.size()));
  out_->write(reinterpret_cast<const char*>(page_.data()),
              static_cast<std::streamsize>(page_.size()));
  page_.clear();
  page_events_ = 0;
  ++pages_;
}

void TraceWriter::close() {
  if (closed_) {
    return;
  }
  flush_page();
  out_->flush();
  if (!*out_) {
    closed_ = true;  // do not throw again from the destructor
    throw std::runtime_error("TraceWriter: write failed");
  }
  if (out_ == &file_) {
    file_.close();
  }
  closed_ = true;
}

std::string train_trace_path(const std::string& dir, int cell,
                             int repetition) {
  CSMABW_REQUIRE(cell >= 0 && repetition >= 0,
                 "cell and repetition must be >= 0");
  char name[64];
  std::snprintf(name, sizeof(name), "cell-%05d-rep-%06d%s", cell,
                repetition, format::kTraceExtension);
  if (dir.empty()) {
    return name;
  }
  return dir.back() == '/' ? dir + name : dir + "/" + name;
}

}  // namespace csmabw::trace
