#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "trace/event.hpp"
#include "trace/format.hpp"

namespace csmabw::trace {

/// Provenance carried in a trace file's header: which campaign cell and
/// repetition the recording came from, the probe-train shape, and a
/// free-form label (scenario name or grammar).  All fields optional —
/// generic recordings leave the defaults.
struct TraceMeta {
  int cell = -1;         ///< campaign cell index; -1 = not a campaign run
  int repetition = -1;   ///< repetition within the cell; -1 = n/a
  int train_n = 0;       ///< probe-train length; 0 = not a train run
  int train_size = 0;    ///< probe packet size (bytes)
  std::int64_t train_gap_ns = 0;  ///< probe input gap g_I
  std::uint64_t seed = 0;         ///< scenario seed of the recorded run
  std::string label;              ///< scenario label / grammar, free-form

  friend bool operator==(const TraceMeta&, const TraceMeta&) = default;
};

/// Buffered binary trace writer (see trace/format.hpp for the layout).
///
/// Implements TraceSink so it plugs directly into a simulator tap:
/// events append to an in-memory page that flushes to the stream once it
/// exceeds `page_bytes`, so multi-GB campaign traces stream with bounded
/// memory.  Version-2 pages (the default) carry the skip-index summary
/// the analytics scan prunes with; `format_version = 1` writes the
/// legacy summary-less layout (kept for compatibility tests and for
/// regenerating v1 fleets).  Not thread-safe: one writer per
/// (cell, repetition) run.
class TraceWriter final : public TraceSink {
 public:
  /// Opens `path` (truncates) and writes the header.  Throws
  /// std::runtime_error when the file cannot be opened.
  explicit TraceWriter(const std::string& path, TraceMeta meta = {},
                       std::size_t page_bytes = 0,
                       std::uint16_t format_version = format::kFormatVersion);
  /// Streams to an existing ostream (not owned).
  explicit TraceWriter(std::ostream& out, TraceMeta meta = {},
                       std::size_t page_bytes = 0,
                       std::uint16_t format_version = format::kFormatVersion);

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  ~TraceWriter() override;

  void on_event(const TraceEvent& event) override;

  /// Flushes the partial page and (in file mode) closes the file.
  /// Idempotent; called by the destructor.  Writing after close throws.
  void close();

  [[nodiscard]] std::uint16_t version() const { return version_; }
  [[nodiscard]] std::uint64_t events_written() const { return events_; }
  [[nodiscard]] std::uint64_t pages_written() const { return pages_; }

 private:
  void write_header(const TraceMeta& meta);
  void flush_page();

  std::ofstream file_;
  std::ostream* out_;  // &file_, or the borrowed stream
  std::size_t page_limit_;
  std::uint16_t version_;
  std::vector<unsigned char> page_;
  std::uint32_t page_events_ = 0;
  std::int64_t page_base_time_ = 0;  ///< delta base of the open page
  std::int64_t prev_time_ = 0;       ///< previous event's absolute time
  format::PageSummary summary_;      ///< skip-index of the open page
  std::uint64_t events_ = 0;
  std::uint64_t pages_ = 0;
  bool closed_ = false;
};

/// The deterministic per-(cell, repetition) trace filename used by
/// campaign recording: `<dir>/cell-CCCCC-rep-RRRRRR.cctrace`.
[[nodiscard]] std::string train_trace_path(const std::string& dir, int cell,
                                           int repetition);

}  // namespace csmabw::trace
