#include "traffic/flow_meter.hpp"

#include "util/require.hpp"

namespace csmabw::traffic {

FlowMeter::FlowMeter(TimeNs from, TimeNs to) : from_(from), to_(to) {
  CSMABW_REQUIRE(to > from, "measurement window must be non-empty");
}

void FlowMeter::on_packet(const mac::Packet& p) {
  if (p.dropped || p.depart_time < from_ || p.depart_time >= to_) {
    return;
  }
  ++packets_;
  bits_ += static_cast<std::int64_t>(p.size_bytes) * 8;
}

BitRate FlowMeter::rate() const { return throughput(bits_, window()); }

}  // namespace csmabw::traffic
