#pragma once

#include <cstdint>

#include "mac/packet.hpp"
#include "util/time.hpp"
#include "util/units.hpp"

namespace csmabw::traffic {

/// Measures the delivered throughput of one flow inside a time window.
///
/// Steady-state rate-response experiments (Figs 1, 4) run long flows and
/// measure throughput over a window that excludes warm-up; the meter
/// counts only packets whose departure falls inside [from, to).
class FlowMeter {
 public:
  FlowMeter(TimeNs from, TimeNs to);

  /// Feed every delivered packet of the flow (connect via
  /// FlowDispatcher::on_flow).
  void on_packet(const mac::Packet& p);

  [[nodiscard]] std::uint64_t packets() const { return packets_; }
  [[nodiscard]] std::int64_t payload_bits() const { return bits_; }
  [[nodiscard]] BitRate rate() const;
  [[nodiscard]] TimeNs window() const { return to_ - from_; }

 private:
  TimeNs from_;
  TimeNs to_;
  std::uint64_t packets_ = 0;
  std::int64_t bits_ = 0;
};

}  // namespace csmabw::traffic
