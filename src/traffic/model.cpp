#include "traffic/model.hpp"

#include <utility>

#include "util/json.hpp"
#include "util/require.hpp"

namespace csmabw::traffic {

namespace {

/// Appends ",size=N" when the spec carried an explicit size override.
void append_size(std::string* out, const std::optional<int>& size) {
  if (size.has_value()) {
    *out += ",size=" + std::to_string(*size);
  }
}

std::optional<int> size_option(const util::Options& o) {
  if (!o.has("size")) {
    return std::nullopt;
  }
  const int size = o.get("size", 0);
  CSMABW_REQUIRE(size > 0, "size must be positive");
  return size;
}

class PoissonModel : public TrafficModel {
 public:
  PoissonModel(double rate_bps, std::optional<int> size)
      : rate_bps_(rate_bps), size_(size) {}

  [[nodiscard]] std::string_view name() const override { return "poisson"; }
  [[nodiscard]] std::string describe() const override {
    std::string out = "poisson:rate=" + util::format_rate(rate_bps_);
    append_size(&out, size_);
    return out;
  }
  [[nodiscard]] std::optional<BitRate> offered_rate() const override {
    return BitRate::bps(rate_bps_);
  }
  [[nodiscard]] int packet_size(int default_size_bytes) const override {
    return size_.value_or(default_size_bytes);
  }
  [[nodiscard]] std::unique_ptr<Source> instantiate(
      SourceWiring w) const override {
    return std::make_unique<PoissonSource>(
        w.sim, w.station, w.flow, packet_size(w.default_size_bytes),
        BitRate::bps(rate_bps_), std::move(w.rng));
  }

 private:
  double rate_bps_;
  std::optional<int> size_;
};

class CbrModel : public TrafficModel {
 public:
  CbrModel(double rate_bps, std::optional<int> size)
      : rate_bps_(rate_bps), size_(size) {}

  [[nodiscard]] std::string_view name() const override { return "cbr"; }
  [[nodiscard]] std::string describe() const override {
    std::string out = "cbr:rate=" + util::format_rate(rate_bps_);
    append_size(&out, size_);
    return out;
  }
  [[nodiscard]] std::optional<BitRate> offered_rate() const override {
    return BitRate::bps(rate_bps_);
  }
  [[nodiscard]] int packet_size(int default_size_bytes) const override {
    return size_.value_or(default_size_bytes);
  }
  [[nodiscard]] std::unique_ptr<Source> instantiate(
      SourceWiring w) const override {
    const int size = packet_size(w.default_size_bytes);
    return std::make_unique<CbrSource>(w.sim, w.station, w.flow, size,
                                       BitRate::bps(rate_bps_).gap_for(size));
  }

 private:
  double rate_bps_;
  std::optional<int> size_;
};

/// `rate` is the MEAN offered rate; on-periods burst at rate/duty, so
/// the long-run average lands on `rate` while short probes see either
/// silence or a contender `1/duty` times hotter than the mean.
class OnOffModel : public TrafficModel {
 public:
  OnOffModel(double rate_bps, double duty, double burst_s,
             std::optional<int> size)
      : rate_bps_(rate_bps), duty_(duty), burst_s_(burst_s), size_(size) {
    CSMABW_REQUIRE(duty_ > 0.0 && duty_ <= 1.0, "duty must be in (0, 1]");
    CSMABW_REQUIRE(burst_s_ > 0.0, "burst must be positive");
  }

  [[nodiscard]] std::string_view name() const override { return "onoff"; }
  [[nodiscard]] std::string describe() const override {
    std::string out = "onoff:rate=" + util::format_rate(rate_bps_) +
                      ",duty=" + util::json_number(duty_) +
                      ",burst=" + util::format_duration(burst_s_);
    append_size(&out, size_);
    return out;
  }
  [[nodiscard]] std::optional<BitRate> offered_rate() const override {
    return BitRate::bps(rate_bps_);
  }
  [[nodiscard]] int packet_size(int default_size_bytes) const override {
    return size_.value_or(default_size_bytes);
  }
  [[nodiscard]] std::unique_ptr<Source> instantiate(
      SourceWiring w) const override {
    const int size = packet_size(w.default_size_bytes);
    const double peak_bps = rate_bps_ / duty_;
    const double mean_off_s = burst_s_ * (1.0 - duty_) / duty_;
    return std::make_unique<OnOffSource>(
        w.sim, w.station, w.flow, size,
        BitRate::bps(peak_bps).gap_for(size), burst_s_, mean_off_s,
        std::move(w.rng));
  }

 private:
  double rate_bps_;
  double duty_;
  double burst_s_;
  std::optional<int> size_;
};

class SaturatedModel : public TrafficModel {
 public:
  SaturatedModel(std::optional<int> size, int backlog)
      : size_(size), backlog_(backlog) {
    CSMABW_REQUIRE(backlog_ >= 1, "backlog must be >= 1");
  }

  [[nodiscard]] std::string_view name() const override { return "saturated"; }
  [[nodiscard]] std::string describe() const override {
    std::string out = "saturated";
    if (size_.has_value() || backlog_ != 2) {
      out += ":";
      bool first = true;
      if (backlog_ != 2) {
        out += "backlog=" + std::to_string(backlog_);
        first = false;
      }
      if (size_.has_value()) {
        out += (first ? "" : ",");
        out += "size=" + std::to_string(*size_);
      }
    }
    return out;
  }
  [[nodiscard]] std::optional<BitRate> offered_rate() const override {
    return std::nullopt;
  }
  [[nodiscard]] int packet_size(int default_size_bytes) const override {
    return size_.value_or(default_size_bytes);
  }
  [[nodiscard]] std::unique_ptr<Source> instantiate(
      SourceWiring w) const override {
    return std::make_unique<SaturatedSource>(
        w.sim, w.station, w.dispatch, w.flow,
        packet_size(w.default_size_bytes), backlog_);
  }

 private:
  std::optional<int> size_;
  int backlog_;
};

}  // namespace

std::string TrafficModelRegistry::canonical(std::string_view spec) const {
  return create(spec)->describe();
}

void TrafficModelRegistry::register_builtins(TrafficModelRegistry& registry) {
  registry.add(
      "poisson",
      [](const util::Options& o) {
        const double rate = o.get_rate_bps("rate", 0.0);
        CSMABW_REQUIRE(rate > 0.0, "poisson needs rate=<rate>");
        return std::make_unique<PoissonModel>(rate, size_option(o));
      },
      "rate=<rate> (required), size=<bytes>");
  registry.add(
      "cbr",
      [](const util::Options& o) {
        const double rate = o.get_rate_bps("rate", 0.0);
        CSMABW_REQUIRE(rate > 0.0, "cbr needs rate=<rate>");
        return std::make_unique<CbrModel>(rate, size_option(o));
      },
      "rate=<rate> (required), size=<bytes>");
  registry.add(
      "onoff",
      [](const util::Options& o) {
        const double rate = o.get_rate_bps("rate", 0.0);
        CSMABW_REQUIRE(rate > 0.0, "onoff needs rate=<rate>");
        const double duty = o.get("duty", 0.5);
        const double burst = o.get_duration_s("burst", 50e-3);
        return std::make_unique<OnOffModel>(rate, duty, burst,
                                            size_option(o));
      },
      "rate=<mean rate> (required), duty=<0..1>, burst=<mean on "
      "duration>, size=<bytes>");
  registry.add(
      "saturated",
      [](const util::Options& o) {
        return std::make_unique<SaturatedModel>(size_option(o),
                                                o.get("backlog", 2));
      },
      "backlog=<packets>, size=<bytes>");
}

TrafficModelRegistry& TrafficModelRegistry::global() {
  static TrafficModelRegistry* registry = [] {
    auto* r = new TrafficModelRegistry;
    register_builtins(*r);
    return r;
  }();
  return *registry;
}

}  // namespace csmabw::traffic
