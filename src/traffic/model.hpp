#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "mac/station.hpp"
#include "sim/simulator.hpp"
#include "stats/rng.hpp"
#include "traffic/probe_train.hpp"
#include "traffic/source.hpp"
#include "util/options.hpp"
#include "util/registry.hpp"
#include "util/units.hpp"

namespace csmabw::traffic {

/// Everything a TrafficModel needs to put its Source on one station: the
/// simulator, the target station, the station's shared flow dispatcher
/// (sources that react to completions, e.g. `saturated`, subscribe
/// through it), the flow id, the packet size used when the model's spec
/// has no `size=` override, and a dedicated random stream.
struct SourceWiring {
  sim::Simulator& sim;
  mac::DcfStation& station;
  FlowDispatcher& dispatch;
  int flow = 0;
  int default_size_bytes = 1500;
  stats::Rng rng;
};

/// A parsed, validated traffic workload — the value behind a
/// `name:key=value,...` spec string (see TrafficModelRegistry).  One
/// model can instantiate any number of sources, each on its own station.
class TrafficModel {
 public:
  virtual ~TrafficModel() = default;

  /// The registry key this model was created under.
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Canonical spec string: `TrafficModelRegistry::global().create(
  /// describe())` reconstructs an equivalent model, and two equivalent
  /// models describe identically — scenario round-tripping builds on
  /// this.
  [[nodiscard]] virtual std::string describe() const = 0;

  /// Mean offered network-layer rate; nullopt when unbounded
  /// (`saturated` offers whatever the MAC serves).
  [[nodiscard]] virtual std::optional<BitRate> offered_rate() const = 0;

  /// The packet size this model emits given the station's default.
  [[nodiscard]] virtual int packet_size(int default_size_bytes) const = 0;

  /// Creates and wires (but does not start) this model's source.
  [[nodiscard]] virtual std::unique_ptr<Source> instantiate(
      SourceWiring wiring) const = 0;
};

/// String-keyed factory registry for traffic models — the traffic twin
/// of core::MethodRegistry, sharing its util::SpecRegistry machinery.
///
/// A spec is `name` or `name:key=value,key=value` (the util::Options
/// grammar after the colon); rates accept k/M/G suffixes ("rate=6M") and
/// durations s/ms/us ("burst=50ms").  Factories parse and validate
/// eagerly: unknown names, unknown option keys and malformed values all
/// throw util::PreconditionError at create() time.
class TrafficModelRegistry {
 public:
  /// Receives the parsed options; keys the factory does not consume are
  /// rejected by the registry after it returns.
  using Factory = util::SpecRegistry<TrafficModel>::Factory;

  /// Registers a factory; `options_help` documents the accepted option
  /// keys for discoverability listings.  Throws util::PreconditionError
  /// on an empty or duplicate name.
  void add(std::string name, Factory factory, std::string options_help = "") {
    impl_.add(std::move(name), std::move(factory), std::move(options_help));
  }

  [[nodiscard]] bool contains(std::string_view name) const {
    return impl_.contains(name);
  }
  /// Registered names in sorted order.
  [[nodiscard]] std::vector<std::string> names() const {
    return impl_.names();
  }
  /// The option-key documentation string registered for `name`.
  [[nodiscard]] const std::string& help(std::string_view name) const {
    return impl_.help(name);
  }

  /// Creates a model from a spec string ("onoff:rate=6M,duty=0.3").
  [[nodiscard]] std::unique_ptr<TrafficModel> create(
      std::string_view spec) const {
    return impl_.create(spec);
  }

  /// create(spec)->describe() — the canonical spelling of `spec`.
  [[nodiscard]] std::string canonical(std::string_view spec) const;

  /// Registers the four built-in models: poisson, cbr, onoff, saturated.
  static void register_builtins(TrafficModelRegistry& registry);

  /// The process-wide registry, pre-populated with the builtins.
  /// Register custom models at startup, before campaigns run: create()
  /// is safe to call concurrently, add() is not.
  static TrafficModelRegistry& global();

 private:
  util::SpecRegistry<TrafficModel> impl_{"traffic model"};
};

}  // namespace csmabw::traffic
