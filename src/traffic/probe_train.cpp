#include "traffic/probe_train.hpp"

#include <cmath>
#include <limits>

#include "util/require.hpp"

namespace csmabw::traffic {

ProbeTrain::ProbeTrain(sim::Simulator& sim, mac::DcfStation& station,
                       TrainSpec spec, int flow)
    : sim_(sim), station_(station), spec_(spec), flow_(flow) {
  CSMABW_REQUIRE(spec.n >= 2, "a train needs at least two packets");
  CSMABW_REQUIRE(spec.size_bytes > 0, "probe size must be positive");
  CSMABW_REQUIRE(spec.gap >= TimeNs::zero(), "gap must be non-negative");
  records_.resize(static_cast<std::size_t>(spec.n));
}

void ProbeTrain::start(TimeNs first_arrival, CompletionCallback on_complete) {
  on_complete_ = std::move(on_complete);
  for (int k = 0; k < spec_.n; ++k) {
    const TimeNs at = first_arrival + spec_.gap * k;
    sim_.schedule_at(at, [this, k] {
      mac::Packet p;
      p.flow = flow_;
      p.seq = k;
      p.size_bytes = spec_.size_bytes;
      station_.enqueue(p);
    });
  }
}

void ProbeTrain::on_packet_done(const mac::Packet& p) {
  CSMABW_REQUIRE(p.flow == flow_, "packet routed to the wrong train");
  CSMABW_REQUIRE(p.seq >= 0 && p.seq < spec_.n, "probe seq out of range");
  records_[static_cast<std::size_t>(p.seq)] = p;
  if (p.dropped) {
    ++drops_;
  }
  ++done_;
  if (complete() && on_complete_) {
    on_complete_(*this);
  }
}

std::vector<double> ProbeTrain::access_delays_s() const {
  CSMABW_REQUIRE(complete(), "train not complete");
  std::vector<double> out;
  out.reserve(records_.size());
  for (const auto& p : records_) {
    out.push_back(p.dropped ? std::numeric_limits<double>::quiet_NaN()
                            : p.access_delay_s());
  }
  return out;
}

std::vector<TimeNs> ProbeTrain::departures() const {
  CSMABW_REQUIRE(complete(), "train not complete");
  CSMABW_REQUIRE(drops_ == 0, "train suffered drops");
  std::vector<TimeNs> out;
  out.reserve(records_.size());
  for (const auto& p : records_) {
    out.push_back(p.depart_time);
  }
  return out;
}

FlowDispatcher::FlowDispatcher(mac::DcfStation& station) {
  auto route = [this](const mac::Packet& p) {
    for (auto& [flow, handler] : handlers_) {
      if (flow == p.flow) {
        handler(p);
      }
    }
    for (auto& handler : any_) {
      handler(p);
    }
  };
  station.set_delivery_callback(route);
  station.set_drop_callback(route);
}

void FlowDispatcher::on_flow(int flow, Handler h) {
  CSMABW_REQUIRE(h != nullptr, "null handler");
  for (auto& [f, handler] : handlers_) {
    if (f == flow) {
      handler = std::move(h);
      return;
    }
  }
  handlers_.emplace_back(flow, std::move(h));
}

void FlowDispatcher::on_any(Handler h) {
  CSMABW_REQUIRE(h != nullptr, "null handler");
  any_.push_back(std::move(h));
}

}  // namespace csmabw::traffic
