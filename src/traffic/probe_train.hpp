#pragma once

#include <functional>
#include <vector>

#include "mac/packet.hpp"
#include "mac/station.hpp"
#include "sim/simulator.hpp"
#include "util/time.hpp"

namespace csmabw::traffic {

/// Specification of one periodic probing sequence (Section 5.1.2): `n`
/// packets of `size_bytes`, arriving at the transmission queue every
/// `gap` (the input gap g_I).
struct TrainSpec {
  int n = 10;
  int size_bytes = 1500;
  TimeNs gap;

  [[nodiscard]] double input_rate_bps() const {
    return size_bytes * 8.0 / gap.to_seconds();
  }
};

/// Injects one probe train into a station and collects the per-packet
/// records (arrival a_i, head-of-queue, departure d_i) as they complete.
///
/// The train is complete when all n packets have either been delivered
/// or dropped; `on_complete` fires once at that point.  Records are in
/// sequence order.
class ProbeTrain {
 public:
  using CompletionCallback = std::function<void(const ProbeTrain&)>;

  /// `flow` must be unique among concurrently active flows on the
  /// station (the train filters deliveries by flow id).
  ProbeTrain(sim::Simulator& sim, mac::DcfStation& station, TrainSpec spec,
             int flow);

  ProbeTrain(const ProbeTrain&) = delete;
  ProbeTrain& operator=(const ProbeTrain&) = delete;

  /// Schedules the n arrivals at `first_arrival + k * gap`.
  void start(TimeNs first_arrival, CompletionCallback on_complete = {});

  /// Delivery hook: the owner must route the station's delivered/dropped
  /// packets for this flow into here (see FlowDispatcher).
  void on_packet_done(const mac::Packet& p);

  [[nodiscard]] const TrainSpec& spec() const { return spec_; }
  [[nodiscard]] int flow() const { return flow_; }
  [[nodiscard]] bool complete() const {
    return done_ == static_cast<std::size_t>(spec_.n);
  }
  /// Per-packet records in sequence order; valid once complete().
  [[nodiscard]] const std::vector<mac::Packet>& records() const {
    return records_;
  }
  /// Access delays mu_i in seconds, sequence order (dropped packets get
  /// NaN).  Valid once complete().
  [[nodiscard]] std::vector<double> access_delays_s() const;
  /// Departure times d_i; valid once complete() and only if no drops.
  [[nodiscard]] std::vector<TimeNs> departures() const;
  [[nodiscard]] bool any_dropped() const { return drops_ > 0; }

 private:
  sim::Simulator& sim_;
  mac::DcfStation& station_;
  TrainSpec spec_;
  int flow_;
  std::vector<mac::Packet> records_;
  std::size_t done_ = 0;
  std::size_t drops_ = 0;
  CompletionCallback on_complete_;
};

/// Routes a station's delivery/drop callbacks to per-flow handlers.
///
/// A DcfStation has a single delivery callback; experiments often need
/// several flows on the same station (probe + FIFO cross-traffic).  The
/// dispatcher owns that single callback and fans out by flow id.
class FlowDispatcher {
 public:
  using Handler = std::function<void(const mac::Packet&)>;

  explicit FlowDispatcher(mac::DcfStation& station);

  /// Registers (replaces) the handler for `flow`.
  void on_flow(int flow, Handler h);
  /// Registers a handler for every delivered packet regardless of flow.
  void on_any(Handler h);

 private:
  std::vector<std::pair<int, Handler>> handlers_;
  std::vector<Handler> any_;
};

}  // namespace csmabw::traffic
