#include "traffic/source.hpp"

#include "traffic/probe_train.hpp"
#include "util/require.hpp"

namespace csmabw::traffic {

Source::Source(sim::Simulator& sim, mac::DcfStation& station, int flow,
               int size_bytes)
    : sim_(sim), station_(station), flow_(flow), size_bytes_(size_bytes) {
  CSMABW_REQUIRE(size_bytes > 0, "packet size must be positive");
}

void Source::emit(int seq) {
  mac::Packet p;
  p.flow = flow_;
  p.seq = seq;
  p.size_bytes = size_bytes_;
  station_.enqueue(p);
  ++generated_;
}

// --- PoissonSource ---

PoissonSource::PoissonSource(sim::Simulator& sim, mac::DcfStation& station,
                             int flow, int size_bytes, BitRate rate,
                             stats::Rng rng)
    : Source(sim, station, flow, size_bytes),
      mean_gap_s_(size_bytes * 8.0 / rate.to_bps()),
      rng_(rng) {
  CSMABW_REQUIRE(rate.to_bps() > 0.0, "rate must be positive");
}

void PoissonSource::start(TimeNs at) {
  CSMABW_REQUIRE(!running_, "source already started");
  running_ = true;
  // Memorylessness: the first arrival is one exponential gap after `at`,
  // which is exactly a stationary Poisson process started at `at`.
  sim_.schedule_member_at<&PoissonSource::schedule_next>(
      at + TimeNs::from_seconds(rng_.exponential(mean_gap_s_)), *this);
}

void PoissonSource::schedule_next() {
  if (!running_) {
    return;
  }
  emit(static_cast<int>(generated_));
  sim_.schedule_member_at<&PoissonSource::schedule_next>(
      sim_.now() + TimeNs::from_seconds(rng_.exponential(mean_gap_s_)), *this);
}

// --- CbrSource ---

CbrSource::CbrSource(sim::Simulator& sim, mac::DcfStation& station, int flow,
                     int size_bytes, TimeNs gap, std::uint64_t max_packets)
    : Source(sim, station, flow, size_bytes),
      gap_(gap),
      max_packets_(max_packets) {
  CSMABW_REQUIRE(gap > TimeNs::zero(), "gap must be positive");
}

void CbrSource::start(TimeNs at) {
  CSMABW_REQUIRE(!running_, "source already started");
  running_ = true;
  schedule_next(at);
}

void CbrSource::schedule_next(TimeNs at) {
  sim_.schedule_member_at<&CbrSource::on_timer>(at, *this);
}

void CbrSource::on_timer() {
  if (!running_) {
    return;
  }
  if (max_packets_ != 0 && generated_ >= max_packets_) {
    return;
  }
  emit(static_cast<int>(generated_));
  if (max_packets_ == 0 || generated_ < max_packets_) {
    schedule_next(sim_.now() + gap_);
  }
}

// --- SaturatedSource ---

SaturatedSource::SaturatedSource(sim::Simulator& sim,
                                 mac::DcfStation& station,
                                 FlowDispatcher& dispatch, int flow,
                                 int size_bytes, int backlog)
    : Source(sim, station, flow, size_bytes), backlog_(backlog) {
  CSMABW_REQUIRE(backlog >= 1, "backlog must be >= 1");
  // One refill per completion keeps the queue depth at `backlog`
  // forever: the station never runs dry.
  dispatch.on_flow(flow, [this](const mac::Packet&) {
    if (running_) {
      emit(static_cast<int>(generated_));
    }
  });
}

void SaturatedSource::start(TimeNs at) {
  CSMABW_REQUIRE(!running_, "source already started");
  running_ = true;
  sim_.schedule_member_at<&SaturatedSource::fill>(at, *this);
}

void SaturatedSource::fill() {
  for (int k = 0; k < backlog_ && running_; ++k) {
    emit(static_cast<int>(generated_));
  }
}

// --- OnOffSource ---

OnOffSource::OnOffSource(sim::Simulator& sim, mac::DcfStation& station,
                         int flow, int size_bytes, TimeNs on_gap,
                         double mean_on_s, double mean_off_s, stats::Rng rng)
    : Source(sim, station, flow, size_bytes),
      on_gap_(on_gap),
      mean_on_s_(mean_on_s),
      mean_off_s_(mean_off_s),
      rng_(rng) {
  CSMABW_REQUIRE(on_gap > TimeNs::zero(), "on-gap must be positive");
  CSMABW_REQUIRE(mean_on_s > 0.0 && mean_off_s >= 0.0,
                 "sojourn means must be positive");
}

void OnOffSource::start(TimeNs at) {
  CSMABW_REQUIRE(!running_, "source already started");
  running_ = true;
  on_ = true;
  phase_end_ = at + TimeNs::from_seconds(rng_.exponential(mean_on_s_));
  sim_.schedule_member_at<&OnOffSource::schedule_next>(at, *this);
}

void OnOffSource::schedule_next() {
  if (!running_) {
    return;
  }
  const TimeNs now = sim_.now();
  if (now >= phase_end_) {
    on_ = !on_;
    const double mean = on_ ? mean_on_s_ : mean_off_s_;
    phase_end_ = now + TimeNs::from_seconds(rng_.exponential(mean));
  }
  if (on_) {
    emit(static_cast<int>(generated_));
    sim_.schedule_member_at<&OnOffSource::schedule_next>(now + on_gap_, *this);
  } else {
    // Sleep until the off phase ends.
    sim_.schedule_member_at<&OnOffSource::schedule_next>(phase_end_, *this);
  }
}

}  // namespace csmabw::traffic
