#pragma once

#include <cstdint>
#include <functional>

#include "mac/packet.hpp"
#include "mac/station.hpp"
#include "sim/simulator.hpp"
#include "stats/rng.hpp"
#include "util/units.hpp"

namespace csmabw::traffic {

/// Common base for packet generators bound to one station and one flow id.
///
/// Sources enqueue network-layer packets into the station's FIFO queue;
/// the MAC takes it from there.  `start()` may be called once; `stop()`
/// halts future arrivals (packets already queued still drain).
class Source {
 public:
  Source(sim::Simulator& sim, mac::DcfStation& station, int flow,
         int size_bytes);
  virtual ~Source() = default;

  Source(const Source&) = delete;
  Source& operator=(const Source&) = delete;

  virtual void start(TimeNs at) = 0;
  void stop() { running_ = false; }

  [[nodiscard]] int flow() const { return flow_; }
  [[nodiscard]] std::uint64_t generated() const { return generated_; }

 protected:
  void emit(int seq);

  sim::Simulator& sim_;
  mac::DcfStation& station_;
  int flow_;
  int size_bytes_;
  bool running_ = false;
  std::uint64_t generated_ = 0;
};

/// Poisson packet arrivals at a given network-layer rate (the paper's
/// cross-traffic model, Section 2.1).
class PoissonSource : public Source {
 public:
  PoissonSource(sim::Simulator& sim, mac::DcfStation& station, int flow,
                int size_bytes, BitRate rate, stats::Rng rng);

  void start(TimeNs at) override;

 private:
  void schedule_next();

  double mean_gap_s_;
  stats::Rng rng_;
};

/// Constant-bit-rate arrivals: packets every `gap`, optionally at most
/// `max_packets` (0 = unbounded).
class CbrSource : public Source {
 public:
  CbrSource(sim::Simulator& sim, mac::DcfStation& station, int flow,
            int size_bytes, TimeNs gap, std::uint64_t max_packets = 0);

  void start(TimeNs at) override;

 private:
  void schedule_next(TimeNs at);
  void on_timer();

  TimeNs gap_;
  std::uint64_t max_packets_;
};

class FlowDispatcher;

/// Always-backlogged source: keeps `backlog` packets in the station's
/// queue by topping it up on every delivery or drop of its flow, so the
/// station contends permanently — the saturation workload of Bianchi's
/// analysis and of the calibration/rate-anomaly experiments.
///
/// Completion events arrive through the station's FlowDispatcher (the
/// station has a single delivery callback; the dispatcher multiplexes
/// it), so the source shares the station with probe trains and meters.
/// The dispatcher must outlive the source.
class SaturatedSource : public Source {
 public:
  SaturatedSource(sim::Simulator& sim, mac::DcfStation& station,
                  FlowDispatcher& dispatch, int flow, int size_bytes,
                  int backlog = 2);

  void start(TimeNs at) override;

 private:
  void fill();

  int backlog_;
};

/// Markov on-off bursty source: exponential on/off sojourns; during "on"
/// periods packets arrive at fixed gaps.  Used by the burstiness
/// sensitivity studies (Section 6.3 discusses cross-traffic burstiness).
class OnOffSource : public Source {
 public:
  OnOffSource(sim::Simulator& sim, mac::DcfStation& station, int flow,
              int size_bytes, TimeNs on_gap, double mean_on_s,
              double mean_off_s, stats::Rng rng);

  void start(TimeNs at) override;

 private:
  void schedule_next();

  TimeNs on_gap_;
  double mean_on_s_;
  double mean_off_s_;
  stats::Rng rng_;
  bool on_ = false;
  TimeNs phase_end_;
};

}  // namespace csmabw::traffic
