#include "util/cli.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "util/require.hpp"

namespace csmabw::util {

Args::Args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!arg.starts_with("--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      options_.emplace(std::string(arg.substr(0, eq)),
                       std::string(arg.substr(eq + 1)));
      continue;
    }
    // `--name value` if the next token is not itself an option, else a flag.
    if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
      options_.emplace(std::string(arg), std::string(argv[i + 1]));
      ++i;
    } else {
      options_.emplace(std::string(arg), "true");
    }
  }
}

bool Args::has(std::string_view name) const {
  return options_.find(name) != options_.end();
}

std::string Args::get(std::string_view name, std::string_view def) const {
  const auto it = options_.find(name);
  return it == options_.end() ? std::string(def) : it->second;
}

double Args::get(std::string_view name, double def) const {
  const auto it = options_.find(name);
  if (it == options_.end()) {
    return def;
  }
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw PreconditionError("option --" + std::string(name) +
                            " expects a number, got '" + it->second + "'");
  }
}

int Args::get(std::string_view name, int def) const {
  const double v = get(name, static_cast<double>(def));
  return static_cast<int>(std::llround(v));
}

bool Args::get(std::string_view name, bool def) const {
  const auto it = options_.find(name);
  if (it == options_.end()) {
    return def;
  }
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") {
    return true;
  }
  if (v == "false" || v == "0" || v == "no" || v == "off") {
    return false;
  }
  throw PreconditionError("option --" + std::string(name) +
                          " expects a boolean, got '" + v + "'");
}

namespace {

std::vector<std::string> split_list(std::string_view name,
                                    const std::string& value) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= value.size()) {
    const std::size_t comma = value.find(',', begin);
    const std::size_t end = comma == std::string::npos ? value.size() : comma;
    if (end == begin) {
      throw PreconditionError("option --" + std::string(name) +
                              " has an empty list element in '" + value + "'");
    }
    out.push_back(value.substr(begin, end - begin));
    if (comma == std::string::npos) {
      break;
    }
    begin = comma + 1;
  }
  return out;
}

}  // namespace

std::vector<double> Args::get_doubles(std::string_view name,
                                      std::vector<double> def) const {
  const auto it = options_.find(name);
  if (it == options_.end()) {
    return def;
  }
  std::vector<double> out;
  for (const std::string& item : split_list(name, it->second)) {
    try {
      out.push_back(std::stod(item));
    } catch (const std::exception&) {
      throw PreconditionError("option --" + std::string(name) +
                              " expects numbers, got '" + item + "'");
    }
  }
  return out;
}

std::vector<int> Args::get_ints(std::string_view name,
                                std::vector<int> def) const {
  std::vector<double> fallback;
  fallback.reserve(def.size());
  for (int v : def) {
    fallback.push_back(v);
  }
  std::vector<int> out;
  for (double v : get_doubles(name, fallback)) {
    out.push_back(static_cast<int>(std::llround(v)));
  }
  return out;
}

std::vector<std::string> Args::get_strings(
    std::string_view name, std::vector<std::string> def) const {
  const auto it = options_.find(name);
  if (it == options_.end()) {
    return def;
  }
  return split_list(name, it->second);
}

double bench_scale() {
  const char* env = std::getenv("CSMABW_BENCH_SCALE");
  if (env == nullptr) {
    return 1.0;
  }
  try {
    const double v = std::stod(env);
    return v > 0.0 ? v : 1.0;
  } catch (const std::exception&) {
    return 1.0;
  }
}

int scaled_reps(int base) {
  CSMABW_REQUIRE(base >= 1, "base repetition count must be >= 1");
  return std::max(1, static_cast<int>(std::llround(base * bench_scale())));
}

}  // namespace csmabw::util
