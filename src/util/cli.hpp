#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace csmabw::util {

/// Tiny command-line option parser for the bench and example binaries.
///
/// Accepts `--name=value`, `--name value` and boolean `--name` forms.
/// Unknown options are collected and reported via `unknown()` so binaries
/// can warn without aborting (benches are run unattended in a loop).
class Args {
 public:
  Args(int argc, const char* const* argv);

  [[nodiscard]] bool has(std::string_view name) const;
  [[nodiscard]] std::string get(std::string_view name,
                                std::string_view def) const;
  /// String-literal defaults would otherwise decay to the bool overload.
  [[nodiscard]] std::string get(std::string_view name, const char* def) const {
    return get(name, std::string_view(def));
  }
  [[nodiscard]] double get(std::string_view name, double def) const;
  [[nodiscard]] int get(std::string_view name, int def) const;
  [[nodiscard]] bool get(std::string_view name, bool def) const;

  /// Comma-separated list forms ("--cross-mbps=1,2,4") for sweep axes.
  /// Returns `def` when the option is absent; rejects empty elements.
  [[nodiscard]] std::vector<double> get_doubles(
      std::string_view name, std::vector<double> def) const;
  [[nodiscard]] std::vector<int> get_ints(std::string_view name,
                                          std::vector<int> def) const;
  [[nodiscard]] std::vector<std::string> get_strings(
      std::string_view name, std::vector<std::string> def) const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }
  [[nodiscard]] const std::vector<std::string>& unknown_values() const {
    return unknown_;
  }

 private:
  std::map<std::string, std::string, std::less<>> options_;
  std::vector<std::string> positional_;
  std::vector<std::string> unknown_;
};

/// Reads the CSMABW_BENCH_SCALE environment variable (default 1.0).
///
/// Every bench multiplies its ensemble sizes by this factor, so
/// `CSMABW_BENCH_SCALE=10` approaches the paper's 25k-repetition
/// ensembles while the default stays laptop-fast.
[[nodiscard]] double bench_scale();

/// max(1, round(base * bench_scale())) — convenience for repetition counts.
[[nodiscard]] int scaled_reps(int base);

}  // namespace csmabw::util
