#include "util/csv.hpp"

#include <charconv>
#include <stdexcept>

#include "util/require.hpp"

namespace csmabw::util {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open '" + path + "'");
  }
}

std::string CsvWriter::escape(std::string_view cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) {
    return std::string(cell);
  }
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') {
      quoted += '"';
    }
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::write_line(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) {
      out_ << ',';
    }
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::header(std::initializer_list<std::string_view> columns) {
  CSMABW_REQUIRE(!header_written_ && rows_ == 0,
                 "header() must be the first write");
  std::vector<std::string> cells;
  cells.reserve(columns.size());
  for (std::string_view c : columns) {
    cells.emplace_back(c);
  }
  write_line(cells);
  header_written_ = true;
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  write_line(cells);
  ++rows_;
}

void CsvWriter::row(const std::vector<double>& cells) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (double v : cells) {
    char buf[64];
    auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    CSMABW_REQUIRE(ec == std::errc{}, "double formatting failed");
    text.emplace_back(buf, end);
  }
  write_line(text);
  ++rows_;
}

}  // namespace csmabw::util
