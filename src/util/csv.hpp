#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace csmabw::util {

/// Minimal CSV writer used by the bench harnesses to dump figure series
/// next to the human-readable console tables.
///
/// Values containing separators, quotes or newlines are quoted per RFC
/// 4180 so the output loads cleanly in any plotting tool.
class CsvWriter {
 public:
  /// Opens `path` for writing (truncates).  Throws std::runtime_error on
  /// failure.
  explicit CsvWriter(const std::string& path);

  /// Writes the header row.  Must be called at most once, before any row.
  void header(std::initializer_list<std::string_view> columns);

  /// Appends a row of preformatted cells.
  void row(const std::vector<std::string>& cells);

  /// Appends a row of doubles, formatted with maximum round-trip precision.
  void row(const std::vector<double>& cells);

  /// Number of data rows written so far (header excluded).
  [[nodiscard]] int rows_written() const { return rows_; }

  static std::string escape(std::string_view cell);

 private:
  void write_line(const std::vector<std::string>& cells);

  std::ofstream out_;
  bool header_written_ = false;
  int rows_ = 0;
};

}  // namespace csmabw::util
