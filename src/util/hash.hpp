#pragma once

// Stable, platform-independent hashing (FNV-1a).
//
// std::hash makes no cross-implementation guarantees, so anything that
// persists a hash — the serve/ result cache keys foremost — must not
// touch it.  Everything here is pure arithmetic on explicit bytes:
// the same input produces the same digest on every platform, compiler
// and standard library, which is what makes content-addressed cache
// entries shareable between machines.

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace csmabw::util {

inline constexpr std::uint64_t kFnv64OffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnv64Prime = 0x00000100000001b3ULL;

/// Incremental FNV-1a 64-bit hasher over raw bytes.
///
/// `bytes()` is plain FNV-1a (matches the published test vectors); the
/// typed `add` overloads build *structured* keys: strings are
/// length-prefixed and numbers serialized as fixed-width little-endian,
/// so adjacent fields cannot alias ("ab"+"c" vs "a"+"bc") and the
/// digest never depends on host endianness or integer width.
class Fnv1a64 {
 public:
  explicit Fnv1a64(std::uint64_t basis = kFnv64OffsetBasis) : h_(basis) {}

  /// Raw FNV-1a over `n` bytes (no framing).
  Fnv1a64& bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h_ = (h_ ^ p[i]) * kFnv64Prime;
    }
    return *this;
  }

  /// Length-prefixed string field.
  Fnv1a64& add(std::string_view s) {
    add(static_cast<std::uint64_t>(s.size()));
    return bytes(s.data(), s.size());
  }
  Fnv1a64& add(const char* s) { return add(std::string_view(s)); }

  /// Fixed-width little-endian integer field.
  Fnv1a64& add(std::uint64_t v) {
    unsigned char buf[8];
    for (int i = 0; i < 8; ++i) {
      buf[i] = static_cast<unsigned char>(v >> (8 * i));
    }
    return bytes(buf, 8);
  }
  Fnv1a64& add(std::int64_t v) { return add(static_cast<std::uint64_t>(v)); }
  Fnv1a64& add(int v) { return add(static_cast<std::int64_t>(v)); }
  Fnv1a64& add(bool v) { return add(static_cast<std::int64_t>(v ? 1 : 0)); }

  /// Exact bit pattern of a double (distinguishes -0.0 from 0.0; two
  /// runs that produced bit-identical doubles hash identically).
  Fnv1a64& add(double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    return add(bits);
  }

  [[nodiscard]] std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_;
};

/// Plain FNV-1a 64 of a byte string (the published algorithm; see the
/// known-answer vectors in tests/hash_test.cpp).
[[nodiscard]] inline std::uint64_t stable_hash64(std::string_view s) {
  return Fnv1a64().bytes(s.data(), s.size()).digest();
}

/// 128-bit digest as two independent 64-bit FNV-1a lanes over the same
/// input, the second lane seeded with a distinct offset basis.  Not a
/// cryptographic hash — collision resistance comes from 128 bits of
/// state plus the cache's full-description comparison on lookup.
struct Digest128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Digest128&, const Digest128&) = default;

  /// 32 lowercase hex characters, hi first.
  [[nodiscard]] std::string hex() const {
    static constexpr char kHex[] = "0123456789abcdef";
    std::string out(32, '0');
    for (int i = 0; i < 16; ++i) {
      out[static_cast<std::size_t>(i)] = kHex[(hi >> (60 - 4 * i)) & 0xf];
      out[static_cast<std::size_t>(16 + i)] = kHex[(lo >> (60 - 4 * i)) & 0xf];
    }
    return out;
  }
};

/// Second-lane basis: the FNV-1a 64 digest of "csmabw-lane2" — an
/// arbitrary but documented constant, fixed forever.
inline constexpr std::uint64_t kFnv64Lane2Basis = 0xa956744e8b8ffb67ULL;

/// Two-lane incremental 128-bit hasher with the Fnv1a64 field framing.
class StableHash128 {
 public:
  StableHash128() : lane2_(kFnv64Lane2Basis) {}

  template <typename T>
  StableHash128& add(T v) {
    lane1_.add(v);
    lane2_.add(v);
    return *this;
  }

  StableHash128& bytes(const void* data, std::size_t n) {
    lane1_.bytes(data, n);
    lane2_.bytes(data, n);
    return *this;
  }

  [[nodiscard]] Digest128 digest() const {
    return Digest128{lane1_.digest(), lane2_.digest()};
  }

 private:
  Fnv1a64 lane1_;
  Fnv1a64 lane2_;
};

}  // namespace csmabw::util
