#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace csmabw::util {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) {
    return "null";
  }
  char buf[32];
  const auto [ptr, ec] =
      std::to_chars(buf, buf + sizeof buf, v);
  if (ec != std::errc{}) {
    return "null";
  }
  return std::string(buf, ptr);
}

std::string Value::text() const {
  if (is_string_) {
    return str_;
  }
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, number_);
  if (ec != std::errc{}) {
    return "nan";
  }
  return std::string(buf, end);
}

JsonlWriter::JsonlWriter(const std::string& path)
    : file_(path), out_(&file_) {
  if (!file_) {
    throw std::runtime_error("JsonlWriter: cannot open " + path);
  }
}

JsonlWriter::JsonlWriter(std::ostream& out) : out_(&out) {}

void JsonlWriter::object(
    const std::vector<std::pair<std::string, Value>>& fields) {
  std::ostream& out = *out_;
  out << '{';
  bool first = true;
  for (const auto& [key, value] : fields) {
    if (!first) {
      out << ',';
    }
    first = false;
    out << '"' << json_escape(key) << "\":";
    if (value.is_number()) {
      out << json_number(value.number());
    } else {
      out << '"' << json_escape(value.str()) << '"';
    }
  }
  out << "}\n";
  ++rows_;
}

}  // namespace csmabw::util
