#pragma once

#include <fstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace csmabw::util {

/// Escapes a string for inclusion in a JSON string literal (quotes not
/// included).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Formats a double as a JSON number with round-trip precision; NaN and
/// infinities (not representable in JSON) become `null`.
[[nodiscard]] std::string json_number(double v);

/// A number-or-label cell value, shared by the campaign collector's
/// table/CSV rows and the JSONL writer (strings stay quoted in JSON,
/// numbers stay numbers).
class Value {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor)
  Value(double v) : number_(v) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Value(int v) : number_(v) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Value(std::string s) : str_(std::move(s)), is_string_(true) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Value(const char* s) : str_(s), is_string_(true) {}

  [[nodiscard]] bool is_number() const { return !is_string_; }
  [[nodiscard]] double number() const { return number_; }
  [[nodiscard]] const std::string& str() const { return str_; }
  /// The value as a plain table/CSV cell (numbers round-trip formatted).
  [[nodiscard]] std::string text() const;

 private:
  double number_ = 0.0;
  std::string str_;
  bool is_string_ = false;
};

/// Minimal JSON Lines writer: one flat object per line.
///
/// The collector streams one object per campaign cell so downstream
/// tooling (jq, pandas) can consume partial campaigns while they run.
class JsonlWriter {
 public:
  /// Opens `path` for writing (truncates).  Throws std::runtime_error on
  /// failure.
  explicit JsonlWriter(const std::string& path);

  /// Streams to an existing stream (not owned) — e.g. std::cout for
  /// benches running with --format=json.
  explicit JsonlWriter(std::ostream& out);

  // Not movable: in file mode out_ points at the writer's own file_
  // member, which a defaulted move would leave dangling.
  JsonlWriter(JsonlWriter&&) = delete;
  JsonlWriter& operator=(JsonlWriter&&) = delete;

  void object(const std::vector<std::pair<std::string, Value>>& fields);

  [[nodiscard]] int rows_written() const { return rows_; }

 private:
  std::ofstream file_;
  std::ostream* out_;  // &file_, or the borrowed stream
  int rows_ = 0;
};

}  // namespace csmabw::util
