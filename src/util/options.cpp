#include "util/options.hpp"

#include <charconv>

#include "util/require.hpp"

namespace csmabw::util {

namespace {

[[noreturn]] void bad_option(std::string_view key, std::string_view value,
                             std::string_view expected) {
  throw PreconditionError("option `" + std::string(key) + "=" +
                          std::string(value) + "`: expected " +
                          std::string(expected));
}

}  // namespace

Options Options::parse(std::string_view text) {
  Options out;
  if (text.empty()) {
    return out;
  }
  std::size_t pos = 0;
  while (true) {
    const std::size_t comma = text.find(',', pos);
    const std::size_t end = comma == std::string_view::npos ? text.size()
                                                            : comma;
    const std::string_view element = text.substr(pos, end - pos);
    CSMABW_REQUIRE(!element.empty(), "empty element in option string `" +
                                         std::string(text) + "`");
    const std::size_t eq = element.find('=');
    CSMABW_REQUIRE(eq != std::string_view::npos,
                   "option `" + std::string(element) +
                       "` is not of the form key=value");
    const std::string_view key = element.substr(0, eq);
    CSMABW_REQUIRE(!key.empty(), "option `" + std::string(element) +
                                     "` has an empty key");
    CSMABW_REQUIRE(out.find(key) == nullptr,
                   "duplicate option key `" + std::string(key) + "`");
    out.entries_.push_back(
        Entry{std::string(key), std::string(element.substr(eq + 1)), false});
    if (comma == std::string_view::npos) {
      break;
    }
    pos = comma + 1;
  }
  return out;
}

const Options::Entry* Options::find(std::string_view key) const {
  for (const Entry& e : entries_) {
    if (e.key == key) {
      return &e;
    }
  }
  return nullptr;
}

bool Options::has(std::string_view key) const { return find(key) != nullptr; }

int Options::get(std::string_view key, int def) const {
  const Entry* e = find(key);
  if (e == nullptr) {
    return def;
  }
  e->consumed = true;
  int v = 0;
  const char* first = e->value.data();
  const char* last = first + e->value.size();
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc{} || ptr != last) {
    bad_option(key, e->value, "an integer");
  }
  return v;
}

double Options::get(std::string_view key, double def) const {
  const Entry* e = find(key);
  if (e == nullptr) {
    return def;
  }
  e->consumed = true;
  double v = 0.0;
  const char* first = e->value.data();
  const char* last = first + e->value.size();
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc{} || ptr != last) {
    bad_option(key, e->value, "a number");
  }
  return v;
}

bool Options::get(std::string_view key, bool def) const {
  const Entry* e = find(key);
  if (e == nullptr) {
    return def;
  }
  e->consumed = true;
  if (e->value == "1" || e->value == "true") {
    return true;
  }
  if (e->value == "0" || e->value == "false") {
    return false;
  }
  bad_option(key, e->value, "a boolean (1/0/true/false)");
}

std::string Options::get(std::string_view key, std::string_view def) const {
  const Entry* e = find(key);
  if (e == nullptr) {
    return std::string(def);
  }
  e->consumed = true;
  return e->value;
}

void Options::require_consumed(std::string_view context) const {
  std::string unknown;
  for (const Entry& e : entries_) {
    if (!e.consumed) {
      if (!unknown.empty()) {
        unknown += ", ";
      }
      unknown += e.key;
    }
  }
  CSMABW_REQUIRE(unknown.empty(), std::string(context) +
                                      ": unknown option key(s): " + unknown);
}

}  // namespace csmabw::util
