#include "util/options.hpp"

#include <charconv>
#include <cmath>

#include "util/json.hpp"
#include "util/require.hpp"

namespace csmabw::util {

namespace {

[[noreturn]] void bad_option(std::string_view key, std::string_view value,
                             std::string_view expected) {
  throw PreconditionError("option `" + std::string(key) + "=" +
                          std::string(value) + "`: expected " +
                          std::string(expected));
}

/// Splits `text` into a number and a unit suffix; throws when the
/// numeric prefix does not parse.
double number_with_suffix(std::string_view text, std::string_view* suffix,
                          std::string_view what) {
  double v = 0.0;
  const char* first = text.data();
  const char* last = first + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, v);
  // from_chars accepts "inf"/"nan"; those have no canonical spelling
  // (json_number maps them to null) and livelock zero-gap sources.
  CSMABW_REQUIRE(ec == std::errc{} && ptr != first && std::isfinite(v),
                 "malformed " + std::string(what) + " `" + std::string(text) +
                     "`");
  *suffix = text.substr(static_cast<std::size_t>(ptr - first));
  return v;
}

}  // namespace

Options Options::parse(std::string_view text) {
  Options out;
  if (text.empty()) {
    return out;
  }
  std::size_t pos = 0;
  while (true) {
    const std::size_t comma = text.find(',', pos);
    const std::size_t end = comma == std::string_view::npos ? text.size()
                                                            : comma;
    const std::string_view element = text.substr(pos, end - pos);
    CSMABW_REQUIRE(!element.empty(), "empty element in option string `" +
                                         std::string(text) + "`");
    const std::size_t eq = element.find('=');
    CSMABW_REQUIRE(eq != std::string_view::npos,
                   "option `" + std::string(element) +
                       "` is not of the form key=value");
    const std::string_view key = element.substr(0, eq);
    CSMABW_REQUIRE(!key.empty(), "option `" + std::string(element) +
                                     "` has an empty key");
    CSMABW_REQUIRE(out.find(key) == nullptr,
                   "duplicate option key `" + std::string(key) + "`");
    out.entries_.push_back(
        Entry{std::string(key), std::string(element.substr(eq + 1)), false});
    if (comma == std::string_view::npos) {
      break;
    }
    pos = comma + 1;
  }
  return out;
}

const Options::Entry* Options::find(std::string_view key) const {
  for (const Entry& e : entries_) {
    if (e.key == key) {
      return &e;
    }
  }
  return nullptr;
}

bool Options::has(std::string_view key) const { return find(key) != nullptr; }

int Options::get(std::string_view key, int def) const {
  const Entry* e = find(key);
  if (e == nullptr) {
    return def;
  }
  e->consumed = true;
  int v = 0;
  const char* first = e->value.data();
  const char* last = first + e->value.size();
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc{} || ptr != last) {
    bad_option(key, e->value, "an integer");
  }
  return v;
}

double Options::get(std::string_view key, double def) const {
  const Entry* e = find(key);
  if (e == nullptr) {
    return def;
  }
  e->consumed = true;
  double v = 0.0;
  const char* first = e->value.data();
  const char* last = first + e->value.size();
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc{} || ptr != last) {
    bad_option(key, e->value, "a number");
  }
  return v;
}

bool Options::get(std::string_view key, bool def) const {
  const Entry* e = find(key);
  if (e == nullptr) {
    return def;
  }
  e->consumed = true;
  if (e->value == "1" || e->value == "true") {
    return true;
  }
  if (e->value == "0" || e->value == "false") {
    return false;
  }
  bad_option(key, e->value, "a boolean (1/0/true/false)");
}

std::string Options::get(std::string_view key, std::string_view def) const {
  const Entry* e = find(key);
  if (e == nullptr) {
    return std::string(def);
  }
  e->consumed = true;
  return e->value;
}

double Options::get_rate_bps(std::string_view key, double def) const {
  const Entry* e = find(key);
  if (e == nullptr) {
    return def;
  }
  e->consumed = true;
  try {
    return parse_rate_bps(e->value);
  } catch (const PreconditionError&) {
    bad_option(key, e->value, "a rate (e.g. 6M, 500k, 2.5M, 6000000)");
  }
}

double Options::get_duration_s(std::string_view key, double def) const {
  const Entry* e = find(key);
  if (e == nullptr) {
    return def;
  }
  e->consumed = true;
  try {
    return parse_duration_s(e->value);
  } catch (const PreconditionError&) {
    bad_option(key, e->value, "a duration (e.g. 50ms, 2s, 200us)");
  }
}

double parse_rate_bps(std::string_view text) {
  std::string_view suffix;
  double v = number_with_suffix(text, &suffix, "rate");
  if (suffix == "k") {
    v *= 1e3;
  } else if (suffix == "M") {
    v *= 1e6;
  } else if (suffix == "G") {
    v *= 1e9;
  } else {
    CSMABW_REQUIRE(suffix.empty(), "malformed rate `" + std::string(text) +
                                       "` (suffixes: k, M, G)");
  }
  CSMABW_REQUIRE(v > 0.0, "rate `" + std::string(text) +
                              "` must be positive");
  return v;
}

namespace {

struct Unit {
  double scale;
  const char* suffix;
};

/// The natural-unit spelling of `v`: the first unit that scales it into
/// [1, 1000), provided that spelling reparses to exactly `v` (so
/// canonicalization is idempotent) and is not meaningfully longer than
/// the plain spelling (binary rounding can turn 2e-4 s into
/// "200.00000000000003us" — plain wins then).  The plain spelling always
/// round-trips by json_number's contract and serves as the fallback.
template <typename Parse>
std::string natural_unit(double v, std::initializer_list<Unit> units,
                         const Parse& parse) {
  const std::string plain = json_number(v);
  for (const Unit& u : units) {
    const double scaled = v / u.scale;
    if (scaled < 1.0 || scaled >= 1000.0) {
      continue;
    }
    const std::string text = json_number(scaled) + u.suffix;
    if (text.size() <= plain.size() + 1 && parse(text) == v) {
      return text;
    }
  }
  return plain;
}

}  // namespace

std::string format_rate(double bps) {
  CSMABW_REQUIRE(bps > 0.0, "rate must be positive");
  return natural_unit(bps, {{1e9, "G"}, {1e6, "M"}, {1e3, "k"}},
                      [](const std::string& t) { return parse_rate_bps(t); });
}

double parse_duration_s(std::string_view text) {
  std::string_view suffix;
  double v = number_with_suffix(text, &suffix, "duration");
  if (suffix == "ms") {
    v *= 1e-3;
  } else if (suffix == "us") {
    v *= 1e-6;
  } else if (suffix == "ns") {
    v *= 1e-9;
  } else {
    CSMABW_REQUIRE(suffix.empty() || suffix == "s",
                   "malformed duration `" + std::string(text) +
                       "` (suffixes: s, ms, us, ns)");
  }
  CSMABW_REQUIRE(v >= 0.0, "duration `" + std::string(text) +
                               "` must be >= 0");
  return v;
}

std::string format_duration(double seconds) {
  CSMABW_REQUIRE(seconds >= 0.0, "duration must be >= 0");
  return natural_unit(
      seconds, {{1.0, "s"}, {1e-3, "ms"}, {1e-6, "us"}, {1e-9, "ns"}},
      [](const std::string& t) { return parse_duration_s(t); });
}

void Options::require_consumed(std::string_view context) const {
  std::string unknown;
  for (const Entry& e : entries_) {
    if (!e.consumed) {
      if (!unknown.empty()) {
        unknown += ", ";
      }
      unknown += e.key;
    }
  }
  CSMABW_REQUIRE(unknown.empty(), std::string(context) +
                                      ": unknown option key(s): " + unknown);
}

}  // namespace csmabw::util
