#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace csmabw::util {

/// A parsed `key=value[,key=value...]` option string — the grammar of
/// measurement-method specs ("slops:train_length=50,trains_per_rate=3")
/// and any other string-configured component.
///
/// Parsing and every getter validate eagerly and report violations via
/// util::PreconditionError: missing '=', empty keys/elements, duplicate
/// keys, and values that do not fully parse as the requested type.  Keys
/// are marked consumed as they are read so `require_consumed()` can
/// reject misspelled options instead of silently ignoring them.
class Options {
 public:
  Options() = default;

  /// Parses `text`; an empty string yields an empty option set.
  [[nodiscard]] static Options parse(std::string_view text);

  [[nodiscard]] bool has(std::string_view key) const;

  /// Typed getters: return `def` when the key is absent; throw
  /// util::PreconditionError when the value is present but malformed
  /// (partial parses like "12x" are malformed, not truncated).
  [[nodiscard]] int get(std::string_view key, int def) const;
  [[nodiscard]] double get(std::string_view key, double def) const;
  /// Accepts 1/0/true/false.
  [[nodiscard]] bool get(std::string_view key, bool def) const;
  [[nodiscard]] std::string get(std::string_view key,
                                std::string_view def) const;
  /// String-literal defaults would otherwise decay to the bool overload.
  [[nodiscard]] std::string get(std::string_view key, const char* def) const {
    return get(key, std::string_view(def));
  }

  /// Rate value with an optional k/M/G suffix ("6M", "500k", "2.5M",
  /// plain bits per second); returns bits per second.
  [[nodiscard]] double get_rate_bps(std::string_view key, double def) const;
  /// Duration value with an optional s/ms/us/ns suffix ("50ms", "2s",
  /// plain seconds); returns seconds.
  [[nodiscard]] double get_duration_s(std::string_view key, double def) const;

  /// Throws util::PreconditionError listing every key no getter has read
  /// — `context` names the consumer (e.g. "method `slops`").
  void require_consumed(std::string_view context) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::string key;
    std::string value;
    mutable bool consumed = false;
  };

  [[nodiscard]] const Entry* find(std::string_view key) const;

  std::vector<Entry> entries_;  // declaration order = parse order
};

/// Parses a rate with an optional k/M/G suffix ("6M", "500k", "2.5M",
/// "6000000") into bits per second; throws PreconditionError on
/// malformed text or a non-positive value.
[[nodiscard]] double parse_rate_bps(std::string_view text);

/// Formats `bps` so that `parse_rate_bps(format_rate(bps)) == bps`
/// exactly, preferring the shortest of the M/k/plain spellings.
[[nodiscard]] std::string format_rate(double bps);

/// Parses a duration with an optional s/ms/us/ns suffix ("50ms", "2s",
/// "200us", plain seconds) into seconds; throws PreconditionError on
/// malformed text or a negative value.
[[nodiscard]] double parse_duration_s(std::string_view text);

/// Formats `seconds` so that `parse_duration_s(format_duration(s)) == s`
/// exactly, preferring the natural s/ms/us spelling.
[[nodiscard]] std::string format_duration(double seconds);

}  // namespace csmabw::util
