#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/options.hpp"
#include "util/require.hpp"

namespace csmabw::util {

/// Shared machinery of the string-keyed factory registries (measurement
/// methods, traffic models): specs are `name` or `name:key=value,...`
/// (the Options grammar after the colon), factories validate eagerly,
/// and unknown names, unknown option keys and malformed values all
/// throw PreconditionError at create() time.
///
/// `what` names the registered noun in error messages ("measurement
/// method", "traffic model").  Wrappers expose the domain-typed API and
/// their own builtins/global(); this template owns the lookup, listing,
/// help and spec-parsing behavior so it cannot drift between them.
template <typename T>
class SpecRegistry {
 public:
  using Factory = std::function<std::unique_ptr<T>(const Options&)>;

  explicit SpecRegistry(std::string what) : what_(std::move(what)) {}

  /// Registers a factory; `options_help` documents the accepted option
  /// keys for discoverability listings.  Throws PreconditionError on an
  /// empty or duplicate name.
  void add(std::string name, Factory factory, std::string options_help) {
    CSMABW_REQUIRE(!name.empty(), what_ + " name must be non-empty");
    CSMABW_REQUIRE(static_cast<bool>(factory),
                   what_ + " factory must be set");
    const auto [it, inserted] = entries_.emplace(
        std::move(name), Entry{std::move(factory), std::move(options_help)});
    CSMABW_REQUIRE(inserted,
                   what_ + " `" + it->first + "` is already registered");
  }

  [[nodiscard]] bool contains(std::string_view name) const {
    return entries_.find(name) != entries_.end();
  }

  /// Registered names in sorted order.
  [[nodiscard]] std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& [name, entry] : entries_) {
      out.push_back(name);  // std::map iterates in sorted key order
    }
    return out;
  }

  /// The option-key documentation string registered for `name`.
  [[nodiscard]] const std::string& help(std::string_view name) const {
    const auto it = entries_.find(name);
    CSMABW_REQUIRE(it != entries_.end(),
                   "unknown " + what_ + " `" + std::string(name) + "`");
    return it->second.help;
  }

  /// Creates an instance from a spec string; keys the factory does not
  /// consume are rejected after it returns.
  [[nodiscard]] std::unique_ptr<T> create(std::string_view spec) const {
    const std::size_t colon = spec.find(':');
    const std::string_view name =
        colon == std::string_view::npos ? spec : spec.substr(0, colon);
    CSMABW_REQUIRE(!name.empty(), what_ + " spec `" + std::string(spec) +
                                      "` has no name");
    const auto it = entries_.find(name);
    if (it == entries_.end()) {
      std::string known;
      for (const std::string& n : names()) {
        if (!known.empty()) {
          known += ", ";
        }
        known += n;
      }
      throw PreconditionError("unknown " + what_ + " `" +
                              std::string(name) +
                              "`; registered: " + known);
    }
    const Options options = Options::parse(
        colon == std::string_view::npos ? std::string_view{}
                                        : spec.substr(colon + 1));
    std::unique_ptr<T> instance = it->second.factory(options);
    CSMABW_REQUIRE(instance != nullptr, "factory of " + what_ + " `" +
                                            std::string(name) +
                                            "` returned null");
    options.require_consumed(what_ + " `" + std::string(name) + "`");
    return instance;
  }

 private:
  struct Entry {
    Factory factory;
    std::string help;
  };

  std::string what_;
  std::map<std::string, Entry, std::less<>> entries_;
};

}  // namespace csmabw::util
