#pragma once

#include <stdexcept>
#include <string>

namespace csmabw::util {

/// Thrown when a documented API precondition is violated.
///
/// The library reports contract violations with exceptions instead of
/// aborting so that misuse is testable and embedding applications can
/// recover (e.g. a long-running measurement daemon fed bad parameters).
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void require_failed(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  throw PreconditionError(std::string(file) + ":" + std::to_string(line) +
                          ": requirement `" + expr + "` failed: " + msg);
}
}  // namespace detail

}  // namespace csmabw::util

/// Precondition check for public API entry points.  Always enabled (the
/// checked expressions are cheap compared to the work they guard).
#define CSMABW_REQUIRE(expr, msg)                                        \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::csmabw::util::detail::require_failed(#expr, __FILE__, __LINE__,  \
                                             (msg));                     \
    }                                                                    \
  } while (false)
