#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "util/require.hpp"

namespace csmabw::util {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  CSMABW_REQUIRE(!columns_.empty(), "table needs at least one column");
}

std::string Table::format(double v, int precision) {
  if (std::isnan(v)) {
    return "nan";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') {
      s.pop_back();
    }
    if (!s.empty() && s.back() == '.') {
      s.pop_back();
    }
  }
  return s;
}

void Table::add_row(const std::vector<double>& cells) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (double v : cells) {
    text.push_back(format(v));
  }
  add_row(text);
}

void Table::add_row(const std::vector<std::string>& cells) {
  CSMABW_REQUIRE(cells.size() == columns_.size(),
                 "row width must match column count");
  rows_.push_back(cells);
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os.width(static_cast<std::streamsize>(widths[c]));
      os << cells[c];
    }
    os << '\n';
  };
  os << std::right;
  print_row(columns_);
  std::string rule;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c != 0) {
      rule += "  ";
    }
    rule += std::string(widths[c], '-');
  }
  os << rule << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
}

}  // namespace csmabw::util
