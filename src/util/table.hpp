#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace csmabw::util {

/// Aligned console table used by the bench binaries to print figure
/// series the way the paper reports them (one column per plotted curve).
///
/// Usage:
///   Table t({"rate_mbps", "probe", "cross"});
///   t.add_row({1.0, 1.0, 4.5});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  void add_row(const std::vector<double>& cells);
  void add_row(const std::vector<std::string>& cells);

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& columns() const {
    return columns_;
  }

  void print(std::ostream& os) const;

  /// Formats a double compactly (up to `precision` significant decimals,
  /// trailing zeros trimmed).
  static std::string format(double v, int precision = 4);

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace csmabw::util
