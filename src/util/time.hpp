#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <ostream>

namespace csmabw {

/// A point in (or span of) simulated/wall time, held as integer nanoseconds.
///
/// The MAC layer depends on *exact* slot arithmetic: two stations whose
/// backoff counters expire on the same slot boundary must collide, which
/// requires their computed fire times to compare equal.  Integer
/// nanoseconds make that exact; doubles would drift.
class TimeNs {
 public:
  constexpr TimeNs() = default;

  [[nodiscard]] static constexpr TimeNs zero() { return TimeNs{0}; }
  [[nodiscard]] static constexpr TimeNs ns(std::int64_t v) { return TimeNs{v}; }
  [[nodiscard]] static constexpr TimeNs us(std::int64_t v) {
    return TimeNs{v * 1'000};
  }
  [[nodiscard]] static constexpr TimeNs ms(std::int64_t v) {
    return TimeNs{v * 1'000'000};
  }
  [[nodiscard]] static constexpr TimeNs sec(std::int64_t v) {
    return TimeNs{v * 1'000'000'000};
  }
  /// Nearest-nanosecond conversion from seconds expressed as a double.
  [[nodiscard]] static TimeNs from_seconds(double s) {
    return TimeNs{static_cast<std::int64_t>(std::llround(s * 1e9))};
  }

  [[nodiscard]] constexpr std::int64_t count() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const { return ns_ * 1e-9; }
  [[nodiscard]] constexpr double to_us() const { return ns_ * 1e-3; }
  [[nodiscard]] constexpr double to_ms() const { return ns_ * 1e-6; }

  friend constexpr auto operator<=>(TimeNs, TimeNs) = default;

  constexpr TimeNs& operator+=(TimeNs o) {
    ns_ += o.ns_;
    return *this;
  }
  constexpr TimeNs& operator-=(TimeNs o) {
    ns_ -= o.ns_;
    return *this;
  }
  friend constexpr TimeNs operator+(TimeNs a, TimeNs b) {
    return TimeNs{a.ns_ + b.ns_};
  }
  friend constexpr TimeNs operator-(TimeNs a, TimeNs b) {
    return TimeNs{a.ns_ - b.ns_};
  }
  friend constexpr TimeNs operator*(TimeNs a, std::int64_t k) {
    return TimeNs{a.ns_ * k};
  }
  friend constexpr TimeNs operator*(std::int64_t k, TimeNs a) { return a * k; }
  /// Truncating division: how many whole `b` spans fit in `a`.
  friend constexpr std::int64_t operator/(TimeNs a, TimeNs b) {
    return a.ns_ / b.ns_;
  }
  friend constexpr TimeNs operator/(TimeNs a, std::int64_t k) {
    return TimeNs{a.ns_ / k};
  }
  friend constexpr TimeNs operator%(TimeNs a, TimeNs b) {
    return TimeNs{a.ns_ % b.ns_};
  }

  friend std::ostream& operator<<(std::ostream& os, TimeNs t) {
    return os << t.ns_ << "ns";
  }

 private:
  constexpr explicit TimeNs(std::int64_t v) : ns_(v) {}
  std::int64_t ns_ = 0;
};

}  // namespace csmabw
