#pragma once

#include <cmath>
#include <cstdint>

#include "util/require.hpp"
#include "util/time.hpp"

namespace csmabw {

/// A data rate in bits per second.
///
/// Rates in this library are network-layer rates over the probe packet
/// size L (the paper's `ri = L / gI`); MAC/PHY overheads are accounted
/// for by the MAC model, not folded into the rate type.
class BitRate {
 public:
  constexpr BitRate() = default;

  [[nodiscard]] static constexpr BitRate bps(double v) { return BitRate{v}; }
  [[nodiscard]] static constexpr BitRate kbps(double v) {
    return BitRate{v * 1e3};
  }
  [[nodiscard]] static constexpr BitRate mbps(double v) {
    return BitRate{v * 1e6};
  }

  [[nodiscard]] constexpr double to_bps() const { return bps_; }
  [[nodiscard]] constexpr double to_mbps() const { return bps_ / 1e6; }

  /// Inter-packet gap that sends `payload_bytes`-byte packets at this rate.
  [[nodiscard]] TimeNs gap_for(int payload_bytes) const {
    CSMABW_REQUIRE(bps_ > 0.0, "rate must be positive to derive a gap");
    CSMABW_REQUIRE(payload_bytes > 0, "payload must be positive");
    return TimeNs::from_seconds(payload_bytes * 8.0 / bps_);
  }

  /// Rate achieved by sending `payload_bytes`-byte packets every `gap`.
  [[nodiscard]] static BitRate from_gap(int payload_bytes, TimeNs gap) {
    CSMABW_REQUIRE(gap > TimeNs::zero(), "gap must be positive");
    return BitRate{payload_bytes * 8.0 / gap.to_seconds()};
  }

  friend constexpr auto operator<=>(BitRate, BitRate) = default;
  friend constexpr BitRate operator+(BitRate a, BitRate b) {
    return BitRate{a.bps_ + b.bps_};
  }
  friend constexpr BitRate operator-(BitRate a, BitRate b) {
    return BitRate{a.bps_ - b.bps_};
  }
  friend constexpr BitRate operator*(BitRate a, double k) {
    return BitRate{a.bps_ * k};
  }
  friend constexpr BitRate operator*(double k, BitRate a) { return a * k; }
  friend constexpr double operator/(BitRate a, BitRate b) {
    return a.bps_ / b.bps_;
  }

 private:
  constexpr explicit BitRate(double v) : bps_(v) {}
  double bps_ = 0.0;
};

/// Throughput of `bits` delivered over `span`.
[[nodiscard]] inline BitRate throughput(std::int64_t bits, TimeNs span) {
  CSMABW_REQUIRE(span > TimeNs::zero(), "span must be positive");
  return BitRate::bps(static_cast<double>(bits) / span.to_seconds());
}

}  // namespace csmabw
