#include "stats/batch_means.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/rng.hpp"
#include "util/require.hpp"

namespace csmabw::stats {
namespace {

TEST(BatchMeans, IidSeriesCoversTrueMean) {
  Rng rng(1);
  int covered = 0;
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<double> xs;
    for (int i = 0; i < 2000; ++i) {
      xs.push_back(rng.exponential(3.0));
    }
    const BatchMeansResult r = batch_means_ci(xs, 20);
    if (r.contains(3.0)) {
      ++covered;
    }
  }
  // ~95% nominal coverage; allow generous slack over 40 trials.
  EXPECT_GE(covered, 33);
}

TEST(BatchMeans, WiderIntervalForCorrelatedSeries) {
  // AR(1) with strong positive correlation: the CI must widen relative
  // to an IID series of the same marginal variance.
  Rng rng(2);
  std::vector<double> iid;
  std::vector<double> ar1;
  double prev = 0.0;
  const double phi = 0.95;
  const double innovation_sd = std::sqrt(1.0 - phi * phi);
  for (int i = 0; i < 20000; ++i) {
    const double z = rng.uniform(-1.0, 1.0) * std::sqrt(3.0);  // unit var
    iid.push_back(z);
    prev = phi * prev + innovation_sd * z;
    ar1.push_back(prev);
  }
  const BatchMeansResult r_iid = batch_means_ci(iid, 20);
  const BatchMeansResult r_ar1 = batch_means_ci(ar1, 20);
  EXPECT_GT(r_ar1.half_width, 2.0 * r_iid.half_width);
}

TEST(BatchMeans, HandComputedTwoBatches) {
  const std::vector<double> xs{1.0, 1.0, 3.0, 3.0};
  const BatchMeansResult r = batch_means_ci(xs, 2);
  EXPECT_DOUBLE_EQ(r.mean, 2.0);
  // Batch means 1 and 3: s = sqrt(2), sem = 1, t(1) = 12.706.
  EXPECT_NEAR(r.half_width, 12.706, 1e-9);
  EXPECT_EQ(r.batches, 2);
}

TEST(BatchMeans, RejectsBadInput) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_THROW((void)batch_means_ci(xs, 1), util::PreconditionError);
  EXPECT_THROW((void)batch_means_ci(xs, 4), util::PreconditionError);
}

TEST(Autocorrelation, DetectsStructure) {
  Rng rng(3);
  std::vector<double> alternating;
  std::vector<double> noise;
  for (int i = 0; i < 5000; ++i) {
    alternating.push_back(i % 2 == 0 ? 1.0 : -1.0);
    noise.push_back(rng.uniform(-1.0, 1.0));
  }
  EXPECT_NEAR(autocorrelation(alternating, 1), -1.0, 0.01);
  EXPECT_NEAR(autocorrelation(alternating, 2), 1.0, 0.01);
  EXPECT_NEAR(autocorrelation(noise, 1), 0.0, 0.05);
}

TEST(Autocorrelation, RejectsBadLag) {
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_THROW((void)autocorrelation(xs, 0), util::PreconditionError);
  EXPECT_THROW((void)autocorrelation(xs, 2), util::PreconditionError);
}

}  // namespace
}  // namespace csmabw::stats
