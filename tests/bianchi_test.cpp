#include "mac/bianchi.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace csmabw::mac {
namespace {

TEST(Bianchi, SingleStationNoCollisions) {
  const BianchiResult r =
      bianchi_saturation(PhyParams::dot11b_short(), 1, 1500);
  EXPECT_DOUBLE_EQ(r.p, 0.0);
  // tau = 2/(W+1) with W = CWmin + 1 = 32.
  EXPECT_NEAR(r.tau, 2.0 / 33.0, 1e-9);
}

TEST(Bianchi, SingleStationNearAnalyticServiceRate) {
  const PhyParams phy = PhyParams::dot11b_short();
  const BianchiResult r = bianchi_saturation(phy, 1, 1500);
  // For n = 1 the Bianchi throughput equals the single-station service
  // cycle rate up to the slot-process approximation.
  EXPECT_NEAR(r.aggregate.to_mbps(), phy.saturation_rate(1500).to_mbps(),
              0.05);
}

TEST(Bianchi, CollisionProbabilityGrowsWithStations) {
  const PhyParams phy = PhyParams::dot11b_short();
  double prev = 0.0;
  for (int n : {2, 3, 5, 10, 20}) {
    const BianchiResult r = bianchi_saturation(phy, n, 1500);
    EXPECT_GT(r.p, prev);
    EXPECT_LT(r.p, 1.0);
    prev = r.p;
  }
}

TEST(Bianchi, PerStationShareDecreasesWithStations) {
  const PhyParams phy = PhyParams::dot11b_short();
  double prev = 1e18;
  for (int n : {1, 2, 4, 8}) {
    const BianchiResult r = bianchi_saturation(phy, n, 1500);
    EXPECT_LT(r.per_station.to_bps(), prev);
    EXPECT_NEAR(r.per_station.to_bps() * n, r.aggregate.to_bps(), 1.0);
    prev = r.per_station.to_bps();
  }
}

TEST(Bianchi, AggregateDegradesGracefully) {
  // Aggregate saturation throughput shrinks with contention but stays
  // within a sane band (collisions waste channel time, they do not
  // collapse it for moderate n).
  const PhyParams phy = PhyParams::dot11b_short();
  const double agg2 = bianchi_saturation(phy, 2, 1500).aggregate.to_mbps();
  const double agg10 = bianchi_saturation(phy, 10, 1500).aggregate.to_mbps();
  EXPECT_GT(agg2, agg10);
  EXPECT_GT(agg10, 0.5 * agg2);
}

TEST(Bianchi, TauConsistentWithP) {
  const BianchiResult r =
      bianchi_saturation(PhyParams::dot11b_short(), 5, 1500);
  // The returned pair must satisfy the coupled fixed point.
  EXPECT_NEAR(r.p, 1.0 - std::pow(1.0 - r.tau, 4), 1e-6);
}

TEST(Bianchi, LargerPayloadHigherThroughput) {
  const PhyParams phy = PhyParams::dot11b_short();
  EXPECT_GT(bianchi_saturation(phy, 3, 1500).aggregate.to_bps(),
            bianchi_saturation(phy, 3, 200).aggregate.to_bps());
}

TEST(Bianchi, RejectsBadInput) {
  EXPECT_THROW((void)bianchi_saturation(PhyParams::dot11b_short(), 0, 1500),
               util::PreconditionError);
  EXPECT_THROW((void)bianchi_saturation(PhyParams::dot11b_short(), 2, 0),
               util::PreconditionError);
}

}  // namespace
}  // namespace csmabw::mac
