#include "core/bounds.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/require.hpp"

namespace csmabw::core {
namespace {

/// A transient-shaped mean access delay: rises from lo to hi over the
/// first `ramp` packets (the paper's Fig 6 shape).
std::vector<double> ramp_mu(int n, int ramp, double lo, double hi) {
  std::vector<double> mu(static_cast<std::size_t>(n), hi);
  for (int i = 0; i < ramp && i < n; ++i) {
    mu[static_cast<std::size_t>(i)] = lo + (hi - lo) * i / ramp;
  }
  return mu;
}

TEST(MuSummary, HandComputed) {
  const std::vector<double> mu{1.0, 2.0, 3.0, 4.0};
  const MuSummary s = summarize_mu(mu);
  EXPECT_EQ(s.n, 4);
  EXPECT_DOUBLE_EQ(s.s1, (1.0 + 2.0 + 3.0) / 3.0);
  EXPECT_DOUBLE_EQ(s.s2, (2.0 + 3.0 + 4.0) / 3.0);
  EXPECT_DOUBLE_EQ(s.kappa_mu, (4.0 - 1.0) / 3.0);
  EXPECT_DOUBLE_EQ(s.mean_all, 2.5);
}

TEST(MuSummary, IncreasingDelaysOrderS1BelowS2) {
  const MuSummary s = summarize_mu(ramp_mu(50, 20, 0.001, 0.003));
  // Paper Eq. (35): S1 <= S2 <= E[mu_n] when mu is increasing.
  EXPECT_LE(s.s1, s.s2);
  EXPECT_LE(s.s2, 0.003);
  EXPECT_GE(s.kappa_mu, 0.0);
}

TEST(MuSummary, RejectsShortOrNegative) {
  EXPECT_THROW((void)summarize_mu(std::vector<double>{1.0}),
               util::PreconditionError);
  EXPECT_THROW((void)summarize_mu(std::vector<double>{1.0, -0.1}),
               util::PreconditionError);
}

TEST(BoundsNoFifo, Equations33And34Regions) {
  const MuSummary s = summarize_mu(ramp_mu(20, 10, 0.001, 0.002));
  // Low rate (large gap): lower = gI + kappa, upper = gI.
  {
    const double gap = 0.01;  // far above S2
    const GapBounds b = expected_gap_bounds_nofifo(s, gap);
    EXPECT_DOUBLE_EQ(b.lower_s, gap + s.kappa_mu);
    EXPECT_DOUBLE_EQ(b.upper_s, gap);
  }
  // High rate (gap below S2 - kappa region): lower = S2, upper = S2.
  {
    const double gap = 0.0001;
    const GapBounds b = expected_gap_bounds_nofifo(s, gap);
    EXPECT_DOUBLE_EQ(b.lower_s, s.s2);
    EXPECT_DOUBLE_EQ(b.upper_s, s.s2);
  }
}

TEST(BoundsNoFifo, LowerBoundContinuousAtKnee) {
  const MuSummary s = summarize_mu(ramp_mu(20, 10, 0.001, 0.002));
  const double knee = s.s2 - s.kappa_mu;  // == S1 for the no-FIFO case
  const GapBounds below = expected_gap_bounds_nofifo(s, knee - 1e-9);
  const GapBounds above = expected_gap_bounds_nofifo(s, knee + 1e-9);
  EXPECT_NEAR(below.lower_s, above.lower_s, 1e-8);
}

TEST(BoundsNoFifo, CrossingReconciled) {
  // At large gaps the paper's lower bound gI + kappa exceeds the upper
  // bound gI by kappa; reconciled() must produce a proper interval.
  const MuSummary s = summarize_mu(ramp_mu(10, 5, 0.001, 0.003));
  const GapBounds b = expected_gap_bounds_nofifo(s, 0.05);
  EXPECT_GT(b.lower_s, b.upper_s);  // the paper's stated bounds cross
  const GapBounds r = b.reconciled();
  EXPECT_LE(r.lower_s, r.upper_s);
  EXPECT_DOUBLE_EQ(r.lower_s, b.upper_s);
}

TEST(BoundsGeneral, ReducesToNoFifoAtZeroUtilization) {
  const MuSummary s = summarize_mu(ramp_mu(30, 10, 0.001, 0.002));
  for (double gap : {0.0001, 0.002, 0.05}) {
    const GapBounds a = expected_gap_bounds(s, gap, 0.0, 0.0);
    const GapBounds b = expected_gap_bounds_nofifo(s, gap);
    EXPECT_DOUBLE_EQ(a.lower_s, b.lower_s);
    EXPECT_DOUBLE_EQ(a.upper_s, b.upper_s);
  }
}

TEST(BoundsGeneral, Equation30ThreeRegions) {
  const MuSummary s = summarize_mu(ramp_mu(20, 10, 0.001, 0.002));
  const double u = 0.3;
  const double kappa = s.kappa_mu;
  const double upper_knee = (s.s1 + kappa) / u;
  // Region 1: very large gap.
  {
    const GapBounds b = expected_gap_bounds(s, upper_knee * 2, u);
    EXPECT_DOUBLE_EQ(b.upper_s, upper_knee * 2 + s.s1 + kappa);
  }
  // Region 2: between S2 and the knee.
  {
    const double gap = (s.s2 + upper_knee) / 2;
    const GapBounds b = expected_gap_bounds(s, gap, u);
    EXPECT_DOUBLE_EQ(b.upper_s, (u + 1.0) * gap);
  }
  // Region 3: below S2.
  {
    const double gap = s.s2 / 2;
    const GapBounds b = expected_gap_bounds(s, gap, u);
    EXPECT_DOUBLE_EQ(b.upper_s, s.s2 + u * gap);
  }
}

TEST(BoundsGeneral, UpperBoundContinuousAcrossRegions) {
  const MuSummary s = summarize_mu(ramp_mu(25, 12, 0.0008, 0.0021));
  const double u = 0.35;
  const double k1 = s.s2;
  const double k2 = (s.s1 + s.kappa_mu) / u;
  for (double knee : {k1, k2}) {
    const double lo = expected_gap_bounds(s, knee - 1e-9, u).upper_s;
    const double hi = expected_gap_bounds(s, knee + 1e-9, u).upper_s;
    EXPECT_NEAR(lo, hi, 1e-8);
  }
}

TEST(BoundsGeneral, WorkloadDriftShiftsKappa) {
  const MuSummary s = summarize_mu(ramp_mu(20, 10, 0.001, 0.002));
  const double gap = 0.05;
  const GapBounds without = expected_gap_bounds(s, gap, 0.2, 0.0);
  const GapBounds with = expected_gap_bounds(s, gap, 0.2, 0.0005);
  EXPECT_DOUBLE_EQ(with.lower_s, without.lower_s + 0.0005);
}

TEST(BoundsGeneral, MonotoneInGapOutsideCrossover) {
  const MuSummary s = summarize_mu(ramp_mu(40, 15, 0.001, 0.0025));
  double prev_lower = 0.0;
  double prev_upper = 0.0;
  for (double gap = 1e-4; gap < 2e-2; gap *= 1.5) {
    const GapBounds b = expected_gap_bounds(s, gap, 0.25).reconciled();
    EXPECT_GE(b.lower_s, prev_lower - 1e-12);
    EXPECT_GE(b.upper_s, prev_upper - 1e-12);
    prev_lower = b.lower_s;
    prev_upper = b.upper_s;
  }
}

TEST(BoundsGeneral, RejectsBadInput) {
  const MuSummary s = summarize_mu(ramp_mu(10, 5, 0.001, 0.002));
  EXPECT_THROW((void)expected_gap_bounds(s, -1.0, 0.2),
               util::PreconditionError);
  EXPECT_THROW((void)expected_gap_bounds(s, 0.001, 1.0),
               util::PreconditionError);
}

TEST(TrainAchievable, Equation31) {
  const std::vector<double> mu{0.002, 0.002, 0.002, 0.002};
  const MuSummary s = summarize_mu(mu);
  // L/B = mean(mu): B = 1500*8/0.002 = 6 Mb/s.
  EXPECT_NEAR(train_achievable_bps(1500, s, 0.0), 6e6, 1.0);
}

TEST(TrainAchievable, Equation36ScalesWithUtilization) {
  const std::vector<double> mu{0.002, 0.002};
  const MuSummary s = summarize_mu(mu);
  EXPECT_NEAR(train_achievable_bps(1500, s, 0.5),
              0.5 * train_achievable_bps(1500, s, 0.0), 1e-6);
}

TEST(TrainAchievable, TransientInflatesB) {
  // Short trains see smaller mean mu -> optimistic B (the paper's core
  // bias result, in closed form).
  const auto mu_long = ramp_mu(200, 20, 0.001, 0.002);
  const auto mu_short =
      std::vector<double>(mu_long.begin(), mu_long.begin() + 5);
  const double b_short =
      train_achievable_bps(1500, summarize_mu(mu_short), 0.0);
  const double b_long = train_achievable_bps(1500, summarize_mu(mu_long), 0.0);
  EXPECT_GT(b_short, b_long);
}

}  // namespace
}  // namespace csmabw::core
