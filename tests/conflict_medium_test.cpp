#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "core/scenario.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "mac/medium.hpp"
#include "mac/station.hpp"
#include "mac/wlan.hpp"
#include "topo/conflict_medium.hpp"
#include "topo/topology.hpp"
#include "trace/event.hpp"
#include "traffic/probe_train.hpp"
#include "util/require.hpp"

namespace csmabw::topo {
namespace {

mac::Packet make_packet(int flow, int seq, int bytes = 1500) {
  mac::Packet p;
  p.flow = flow;
  p.seq = seq;
  p.size_bytes = bytes;
  return p;
}

struct Sink {
  std::vector<mac::Packet> delivered;
  std::vector<mac::Packet> dropped;

  explicit Sink(mac::DcfStation& st) {
    st.set_delivery_callback(
        [this](const mac::Packet& p) { delivered.push_back(p); });
    st.set_drop_callback(
        [this](const mac::Packet& p) { dropped.push_back(p); });
  }
};

class VectorSink final : public trace::TraceSink {
 public:
  void on_event(const trace::TraceEvent& e) override { events.push_back(e); }
  std::vector<trace::TraceEvent> events;
};

mac::WlanNetwork::MediumFactory graph_factory(Topology t) {
  return [t = std::move(t)](sim::Simulator& sim, const mac::PhyParams& phy)
             -> std::unique_ptr<mac::MediumBase> {
    return std::make_unique<ConflictGraphMedium>(sim, phy, t);
  };
}

/// Runs a saturated 3-station burst (uniform 1500-byte frames, same
/// rate) and returns the full MAC event trace.
std::vector<trace::TraceEvent> run_burst(mac::WlanNetwork& net) {
  VectorSink sink;
  net.set_trace(&sink);
  std::vector<std::unique_ptr<Sink>> sinks;
  for (int i = 0; i < 3; ++i) {
    auto& st = net.add_station();
    sinks.push_back(std::make_unique<Sink>(st));
    net.simulator().schedule_at(TimeNs::ms(1), [&st, i] {
      for (int k = 0; k < 30; ++k) {
        st.enqueue(make_packet(i, k));
      }
    });
  }
  net.simulator().run_until(TimeNs::ms(400));
  for (const auto& s : sinks) {
    EXPECT_EQ(s->delivered.size(), 30u);
    EXPECT_TRUE(s->dropped.empty());
  }
  return sink.events;
}

// The tentpole reduction guarantee: on a complete graph the conflict
// medium replays the classic single-collision-domain mac::Medium
// bit-for-bit — every trace event (fire times, collision records,
// backoff draws, departures) at identical instants in identical order.
// Uniform frame airtimes on purpose: the two media agree on collision
// end times exactly when colliding frames share size and rate (see the
// ConflictGraphMedium header).
TEST(ConflictGraphMedium, CliqueReplaysLegacyMediumBitIdentically) {
  const mac::PhyParams phy = mac::PhyParams::dot11b_short();
  mac::WlanNetwork legacy(phy, 42);
  mac::WlanNetwork graph(phy, 42, graph_factory(Topology::clique(3)));

  const std::vector<trace::TraceEvent> legacy_events = run_burst(legacy);
  const std::vector<trace::TraceEvent> graph_events = run_burst(graph);

  // The workload must actually contend: a collision-free run would
  // vacuously agree.
  EXPECT_GT(legacy.medium().stats().collisions, 0);
  EXPECT_EQ(legacy.medium().stats().collisions,
            graph.medium().stats().collisions);
  ASSERT_EQ(legacy_events.size(), graph_events.size());
  for (std::size_t i = 0; i < legacy_events.size(); ++i) {
    ASSERT_EQ(legacy_events[i], graph_events[i]) << "event " << i;
  }
}

TEST(ConflictGraphMedium, CliqueReductionHoldsWithRts) {
  mac::PhyParams phy = mac::PhyParams::dot11b_short();
  phy.rts_threshold_bytes = 500;  // every 1500-byte frame goes RTS/CTS
  mac::WlanNetwork legacy(phy, 7);
  mac::WlanNetwork graph(phy, 7, graph_factory(Topology::clique(3)));
  const std::vector<trace::TraceEvent> legacy_events = run_burst(legacy);
  const std::vector<trace::TraceEvent> graph_events = run_burst(graph);
  EXPECT_GT(legacy.medium().stats().collisions, 0);
  ASSERT_EQ(legacy_events.size(), graph_events.size());
  for (std::size_t i = 0; i < legacy_events.size(); ++i) {
    ASSERT_EQ(legacy_events[i], graph_events[i]) << "event " << i;
  }
}

// The hidden-terminal signature the whole subsystem exists for: a
// station that cannot hear an ongoing transmission starts its own
// mid-frame — no deferral, no slot-boundary coincidence — and both
// frames are corrupted.  On a clique the second arrival would freeze
// behind carrier sense and neither frame would be lost.
TEST(ConflictGraphMedium, HiddenPairCollidesWithoutCarrierSenseDeferral) {
  const mac::PhyParams phy = mac::PhyParams::dot11b_short();
  mac::WlanNetwork net(phy, 5, graph_factory(Topology::hidden_pairs(2)));
  auto& a = net.add_station();
  auto& b = net.add_station();
  Sink sink_a(a);
  Sink sink_b(b);

  const TimeNs t_a = TimeNs::ms(1);
  // Well inside a's data frame (1500 bytes at 11 Mb/s is > 1 ms of air).
  const TimeNs t_b = t_a + TimeNs::us(500);
  net.simulator().schedule_at(t_a, [&] { a.enqueue(make_packet(0, 0)); });
  net.simulator().schedule_at(t_b, [&] { b.enqueue(make_packet(1, 0)); });
  net.simulator().run_until(TimeNs::ms(200));

  // b transmitted straight after DIFS as if the channel were idle —
  // the deferral a clique would have forced never happened.
  ASSERT_EQ(sink_b.delivered.size() + sink_b.dropped.size(), 1u);
  const mac::Packet& pb = sink_b.delivered.empty() ? sink_b.dropped[0]
                                                   : sink_b.delivered[0];
  EXPECT_EQ(pb.first_tx_time, t_b + phy.difs());
  // The temporal overlap corrupted both frames.
  EXPECT_GE(net.medium().stats().collisions, 1);
  ASSERT_EQ(sink_a.delivered.size() + sink_a.dropped.size(), 1u);
  const mac::Packet& pa = sink_a.delivered.empty() ? sink_a.dropped[0]
                                                   : sink_a.delivered[0];
  EXPECT_GE(pa.retries + pb.retries, 2);
}

// The exposed-terminal dividend: out-of-range corners of a 3x3 grid
// reuse the channel concurrently, with zero collisions.
TEST(ConflictGraphMedium, GridCornersReuseTheChannelConcurrently) {
  const mac::PhyParams phy = mac::PhyParams::dot11b_short();
  mac::WlanNetwork net(phy, 9, graph_factory(Topology::grid(3, 3)));
  std::vector<mac::DcfStation*> stations;
  for (int i = 0; i < 9; ++i) {
    stations.push_back(&net.add_station());
  }
  Sink sink0(*stations[0]);
  Sink sink8(*stations[8]);
  net.simulator().schedule_at(TimeNs::ms(1), [&] {
    stations[0]->enqueue(make_packet(0, 0));
    stations[8]->enqueue(make_packet(8, 0));
  });
  net.simulator().run_until(TimeNs::ms(50));

  ASSERT_EQ(sink0.delivered.size(), 1u);
  ASSERT_EQ(sink8.delivered.size(), 1u);
  EXPECT_EQ(net.medium().stats().collisions, 0);
  // Both fired at the same instant: fully overlapping airtime.
  EXPECT_EQ(sink0.delivered[0].first_tx_time, TimeNs::ms(1) + phy.difs());
  EXPECT_EQ(sink8.delivered[0].first_tx_time, TimeNs::ms(1) + phy.difs());
  EXPECT_EQ(sink0.delivered[0].retries, 0);
  EXPECT_EQ(sink8.delivered[0].retries, 0);
}

TEST(ConflictGraphMedium, HiddenPairRunsAreDeterministic) {
  const auto run_once = [] {
    mac::WlanNetwork net(mac::PhyParams::dot11b_short(), 11,
                         graph_factory(Topology::hidden_pairs(2)));
    VectorSink sink;
    net.set_trace(&sink);
    auto& a = net.add_station();
    auto& b = net.add_station();
    net.simulator().schedule_at(TimeNs::ms(1), [&] {
      for (int k = 0; k < 10; ++k) {
        a.enqueue(make_packet(0, k));
        b.enqueue(make_packet(1, k));
      }
    });
    net.simulator().run_until(TimeNs::ms(500));
    return sink.events;
  };
  const auto first = run_once();
  const auto second = run_once();
  ASSERT_EQ(first.size(), second.size());
  EXPECT_TRUE(first == second);
}

// The hot-path counters: bound handles count contention updates,
// neighborhood sweeps and fire re-arms; unbound handles (the default)
// change nothing about the run.
TEST(ConflictGraphMedium, MetricsCountHotPathWorkWithoutPerturbing) {
  const auto run_once = [](obs::Registry* reg) {
    mac::WlanNetwork net(mac::PhyParams::dot11b_short(), 11,
                         graph_factory(Topology::grid(3, 3)));
    net.set_metrics(reg);
    VectorSink sink;
    net.set_trace(&sink);
    std::vector<mac::DcfStation*> stations;
    for (int i = 0; i < 9; ++i) {
      stations.push_back(&net.add_station());
    }
    net.simulator().schedule_at(TimeNs::ms(1), [&stations] {
      for (int i = 0; i < 9; ++i) {
        for (int k = 0; k < 5; ++k) {
          stations[static_cast<std::size_t>(i)]->enqueue(make_packet(i, k));
        }
      }
    });
    net.simulator().run_until(TimeNs::sec(2));
    return sink.events;
  };

  obs::Registry reg(/*enabled=*/true);
  const auto instrumented = run_once(&reg);
  const auto plain = run_once(nullptr);
  // Observational only: the instrumented run is bit-identical.
  ASSERT_EQ(instrumented.size(), plain.size());
  EXPECT_TRUE(instrumented == plain);

  EXPECT_GT(reg.value("topo.medium.updates"), 0);
  EXPECT_GT(reg.value("topo.medium.neighborhood_sweeps"), 0);
  EXPECT_GT(reg.value("topo.medium.fire_rearms"), 0);
  // Sweeps track medium activity (one per winner pass / ended tx), never
  // the station count per event — a 9-station burst stays in the hundreds.
  EXPECT_LT(reg.value("topo.medium.neighborhood_sweeps"), 100000);
}

// The counters surface through the standard run-report path — the
// `--metrics-out` JSON a campaign writes names every topo.medium.*
// metric.
TEST(ConflictGraphMedium, MetricsAppearInRunReport) {
  core::ScenarioConfig cfg;
  cfg.seed = 23;
  cfg.topology = "pairs-hidden:3";
  cfg.contenders = {core::StationSpec::poisson(BitRate::mbps(1.0), 1500),
                    core::StationSpec::poisson(BitRate::mbps(1.0), 1500)};
  const core::Scenario scenario(cfg);
  traffic::TrainSpec train;
  train.n = 10;
  train.size_bytes = 1500;
  train.gap = BitRate::mbps(5.0).gap_for(1500);

  obs::Registry reg(/*enabled=*/true);
  const core::TrainRun run =
      scenario.run_train(train, 0, false, nullptr, &reg);
  EXPECT_FALSE(run.packets.empty());

  std::ostringstream out;
  obs::write_run_report(out, reg, {}, obs::RunReportOptions{});
  const std::string report = out.str();
  for (const char* name :
       {"topo.medium.updates", "topo.medium.neighborhood_sweeps",
        "topo.medium.fire_rearms"}) {
    EXPECT_NE(report.find(name), std::string::npos) << name;
  }
}

TEST(ConflictGraphMedium, RegistrationIsCappedAtTheNodeCount) {
  mac::WlanNetwork net(mac::PhyParams::dot11b_short(), 1,
                       graph_factory(Topology::hidden_pairs(2)));
  net.add_station();
  net.add_station();
  EXPECT_THROW(net.add_station(), util::PreconditionError);
}

// ScenarioCell routing: clique topologies (including the default) keep
// the classic dense medium; everything else gets the conflict-graph
// medium sized to probe + contenders.
TEST(ScenarioCellTopology, CliqueRoutesToLegacyMedium) {
  core::ScenarioConfig cfg;
  cfg.contenders = {core::StationSpec::poisson(BitRate::mbps(2.0), 1500),
                    core::StationSpec::poisson(BitRate::mbps(2.0), 1500)};
  cfg.seed = 3;
  {
    core::ScenarioCell cell(cfg, 0);
    EXPECT_NE(dynamic_cast<mac::Medium*>(&cell.net().medium()), nullptr);
  }
  cfg.topology = "clique:3";
  {
    core::ScenarioCell cell(cfg, 0);
    EXPECT_NE(dynamic_cast<mac::Medium*>(&cell.net().medium()), nullptr);
  }
  cfg.topology = "ring:3";  // ring(3) is complete -> still the fast path
  {
    core::ScenarioCell cell(cfg, 0);
    EXPECT_NE(dynamic_cast<mac::Medium*>(&cell.net().medium()), nullptr);
  }
  cfg.topology = "pairs-hidden:3";
  {
    core::ScenarioCell cell(cfg, 0);
    auto* medium =
        dynamic_cast<ConflictGraphMedium*>(&cell.net().medium());
    ASSERT_NE(medium, nullptr);
    EXPECT_EQ(medium->topology().num_nodes(), 3);
  }
  cfg.topology = "grid:3x3";  // 9 nodes vs 3 stations
  EXPECT_THROW(core::ScenarioCell cell(cfg, 0), util::PreconditionError);
}

// End-to-end through core::Scenario: a hidden-terminal cell inflates
// the probe's access delays relative to the identical clique cell.
TEST(ScenarioCellTopology, HiddenTerminalsInflateProbeDelay) {
  const core::ScenarioSpec clique = core::ScenarioSpec::parse(
      "phy=dot11b_short;contenders=1x poisson:rate=2M");
  core::ScenarioSpec hidden = clique;
  hidden.topology = "pairs-hidden:2";

  traffic::TrainSpec train;
  train.n = 40;
  train.size_bytes = 1500;
  train.gap = BitRate::mbps(5.0).gap_for(1500);

  const auto mean_delay = [&](const core::ScenarioSpec& spec) {
    const core::Scenario scenario(spec.to_config(/*seed=*/17));
    double total = 0.0;
    int packets = 0;
    for (std::uint64_t rep = 0; rep < 6; ++rep) {
      const core::TrainRun run = scenario.run_train(train, rep);
      for (const auto& p : run.packets) {
        if (!p.dropped) {
          total += p.access_delay_s();
          ++packets;
        }
      }
    }
    EXPECT_GT(packets, 0);
    return total / packets;
  };

  const double clique_delay = mean_delay(clique);
  const double hidden_delay = mean_delay(hidden);
  // Hidden contention turns every temporal overlap into a retransmission:
  // the mean access delay must rise well beyond noise.
  EXPECT_GT(hidden_delay, clique_delay * 1.5);
}

}  // namespace
}  // namespace csmabw::topo
