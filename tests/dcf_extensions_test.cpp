// Tests of the MAC extensions beyond the paper's baseline configuration:
// RTS/CTS (the paper disabled it; we model it as an ablatable option) and
// per-station PHY rates (the 802.11 rate anomaly).
#include <gtest/gtest.h>

#include "mac/wlan.hpp"
#include "traffic/flow_meter.hpp"
#include "traffic/probe_train.hpp"
#include "traffic/source.hpp"
#include "util/require.hpp"

namespace csmabw::mac {
namespace {

Packet make_packet(int flow, int seq, int bytes = 1500) {
  Packet p;
  p.flow = flow;
  p.seq = seq;
  p.size_bytes = bytes;
  return p;
}

struct Sink {
  std::vector<Packet> delivered;

  explicit Sink(DcfStation& st) {
    st.set_delivery_callback(
        [this](const Packet& p) { delivered.push_back(p); });
  }
};

TEST(RtsCts, ControlFrameTimings) {
  const PhyParams p = PhyParams::dot11b_short();
  // 20 B RTS / 14 B CTS at 2 Mb/s + 96 us PLCP.
  EXPECT_EQ(p.rts_tx_time(), TimeNs::us(96 + 80));
  EXPECT_EQ(p.cts_tx_time(), TimeNs::us(96 + 56));
  EXPECT_EQ(p.cts_timeout(), p.sifs + p.cts_tx_time() + p.slot_time);
}

TEST(RtsCts, ThresholdSelectsExchange) {
  PhyParams p = PhyParams::dot11b_short();
  EXPECT_FALSE(p.uses_rts(1500));  // disabled by default (paper setting)
  p.rts_threshold_bytes = 500;
  EXPECT_TRUE(p.uses_rts(1500));
  EXPECT_FALSE(p.uses_rts(500));
  EXPECT_FALSE(p.uses_rts(100));
}

TEST(RtsCts, SuccessfulExchangeTiming) {
  PhyParams phy = PhyParams::dot11b_short();
  phy.rts_threshold_bytes = 0;  // RTS for everything
  WlanNetwork net(phy, 41);
  auto& st = net.add_station();
  Sink sink(st);
  net.simulator().schedule_at(TimeNs::ms(1),
                              [&] { st.enqueue(make_packet(0, 0)); });
  net.simulator().run_until(TimeNs::ms(20));

  ASSERT_EQ(sink.delivered.size(), 1u);
  const Packet& p = sink.delivered[0];
  // DIFS, then RTS + SIFS + CTS + SIFS + DATA.
  const TimeNs expected_depart = TimeNs::ms(1) + phy.difs() +
                                 phy.rts_tx_time() + phy.sifs +
                                 phy.cts_tx_time() + phy.sifs +
                                 phy.data_tx_time(1500);
  EXPECT_EQ(p.depart_time, expected_depart);
  // The channel stays busy through the ACK.
  EXPECT_EQ(net.medium().stats().busy_time,
            expected_depart - p.first_tx_time + phy.sifs + phy.ack_tx_time());
}

TEST(RtsCts, CollisionsCostOnlyRtsAirtime) {
  // Two saturated stations: with RTS/CTS each collision burns ~an RTS
  // instead of a full 1500-byte frame, so the medium wastes less time.
  auto busy_waste = [](bool rts) {
    PhyParams phy = PhyParams::dot11b_short();
    phy.rts_threshold_bytes = rts ? 0 : -1;
    WlanNetwork net(phy, 42);
    auto& a = net.add_station();
    auto& b = net.add_station();
    traffic::CbrSource sa(net.simulator(), a, 0, 1500,
                          BitRate::mbps(20).gap_for(1500));
    traffic::CbrSource sb(net.simulator(), b, 1, 1500,
                          BitRate::mbps(20).gap_for(1500));
    sa.start(TimeNs::zero());
    sb.start(TimeNs::zero());
    net.simulator().run_until(TimeNs::sec(4));
    // Channel time not spent on successful exchanges, per collision.
    const auto& ms = net.medium().stats();
    EXPECT_GT(ms.collisions, 0u);
    const double success_time =
        static_cast<double>(ms.successes) *
        (phy.data_tx_time(1500) + phy.sifs + phy.ack_tx_time() +
         (rts ? phy.rts_tx_time() + phy.cts_tx_time() + 2 * phy.sifs
              : TimeNs::zero()))
            .to_seconds();
    return (ms.busy_time.to_seconds() - success_time) /
           static_cast<double>(ms.collisions);
  };
  const PhyParams phy = PhyParams::dot11b_short();
  EXPECT_NEAR(busy_waste(true), phy.rts_tx_time().to_seconds(), 1e-5);
  EXPECT_NEAR(busy_waste(false), phy.data_tx_time(1500).to_seconds(), 1e-5);
}

TEST(RtsCts, MixedThresholdTraffic) {
  // Small frames skip the exchange even when large ones use it.
  PhyParams phy = PhyParams::dot11b_short();
  phy.rts_threshold_bytes = 500;
  WlanNetwork net(phy, 43);
  auto& st = net.add_station();
  Sink sink(st);
  net.simulator().schedule_at(TimeNs::ms(1), [&] {
    st.enqueue(make_packet(0, 0, 100));  // no RTS
  });
  net.simulator().run_until(TimeNs::ms(20));
  ASSERT_EQ(sink.delivered.size(), 1u);
  EXPECT_EQ(sink.delivered[0].depart_time,
            TimeNs::ms(1) + phy.difs() + phy.data_tx_time(100));
}

TEST(RateAnomaly, SlowStationDragsFastOne) {
  // Heusse et al.'s 802.11 anomaly: a saturated 2 Mb/s station gives a
  // saturated 11 Mb/s station roughly equal *packet* throughput, far
  // below what the fast station would get alone.
  const PhyParams phy = PhyParams::dot11b_short();
  WlanNetwork net(phy, 44);
  auto& fast = net.add_station();
  auto& slow = net.add_station();
  slow.set_data_rate_bps(2e6);
  EXPECT_DOUBLE_EQ(fast.data_rate_bps(), 11e6);
  EXPECT_DOUBLE_EQ(slow.data_rate_bps(), 2e6);

  traffic::CbrSource sf(net.simulator(), fast, 0, 1500,
                        BitRate::mbps(20).gap_for(1500));
  traffic::CbrSource ss(net.simulator(), slow, 1, 1500,
                        BitRate::mbps(20).gap_for(1500));
  sf.start(TimeNs::zero());
  ss.start(TimeNs::zero());
  traffic::FlowMeter mf(TimeNs::sec(1), TimeNs::sec(9));
  traffic::FlowMeter m_slow(TimeNs::sec(1), TimeNs::sec(9));
  traffic::FlowDispatcher df(fast);
  traffic::FlowDispatcher ds(slow);
  df.on_any([&](const Packet& p) { mf.on_packet(p); });
  ds.on_any([&](const Packet& p) { m_slow.on_packet(p); });
  net.simulator().run_until(TimeNs::sec(9));

  const double fast_mbps = mf.rate().to_mbps();
  const double slow_mbps = m_slow.rate().to_mbps();
  // DCF gives equal transmission opportunities: near-equal bit rates for
  // equal packet sizes.
  EXPECT_NEAR(fast_mbps / (fast_mbps + slow_mbps), 0.5, 0.06);
  // The fast station is dragged far below its solo saturation rate.
  EXPECT_LT(fast_mbps, 0.35 * phy.saturation_rate(1500).to_mbps());
}

TEST(RateAnomaly, SlowFrameAirtimeUsed) {
  const PhyParams phy = PhyParams::dot11b_short();
  WlanNetwork net(phy, 45);
  auto& st = net.add_station();
  st.set_data_rate_bps(1e6);
  Sink sink(st);
  net.simulator().schedule_at(TimeNs::ms(1),
                              [&] { st.enqueue(make_packet(0, 0)); });
  net.simulator().run_until(TimeNs::ms(40));
  ASSERT_EQ(sink.delivered.size(), 1u);
  EXPECT_EQ(sink.delivered[0].depart_time,
            TimeNs::ms(1) + phy.difs() + phy.data_tx_time_at(1500, 1e6));
}

TEST(RateAnomaly, RejectsNonPositiveRate) {
  WlanNetwork net(PhyParams::dot11b_short(), 46);
  auto& st = net.add_station();
  EXPECT_THROW(st.set_data_rate_bps(0.0), util::PreconditionError);
}

}  // namespace
}  // namespace csmabw::mac
