// Property sweeps over the DCF simulator: invariants that must hold for
// any contention level, load and train shape.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/scenario.hpp"
#include "mac/wlan.hpp"
#include "traffic/flow_meter.hpp"
#include "traffic/source.hpp"
#include "util/require.hpp"

namespace csmabw::core {
namespace {

/// (number of contenders, per-contender offered rate in Mb/s)
using SweepParam = std::tuple<int, double>;

class DcfSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  ScenarioConfig config(std::uint64_t seed) const {
    const auto [n, mbps] = GetParam();
    ScenarioConfig cfg;
    cfg.seed = seed;
    for (int i = 0; i < n; ++i) {
      cfg.contenders.push_back(StationSpec::poisson(BitRate::mbps(mbps), 1500));
    }
    return cfg;
  }
};

TEST_P(DcfSweep, ProbeTimestampsWellFormed) {
  Scenario sc(config(61));
  traffic::TrainSpec spec;
  spec.n = 50;
  spec.size_bytes = 1500;
  spec.gap = BitRate::mbps(5.0).gap_for(1500);
  const TrainRun run = sc.run_train(spec, 0);
  ASSERT_EQ(run.packets.size(), 50u);

  const TimeNs airtime = sc.config().phy.data_tx_time(1500);
  for (std::size_t i = 0; i < run.packets.size(); ++i) {
    const auto& p = run.packets[i];
    EXPECT_EQ(p.seq, static_cast<int>(i));
    // Arrivals are exactly periodic.
    if (i > 0) {
      EXPECT_EQ(p.enqueue_time - run.packets[i - 1].enqueue_time, spec.gap);
      EXPECT_GT(p.depart_time, run.packets[i - 1].depart_time);
      // FIFO: later packets reach the head no earlier.
      EXPECT_GE(p.head_time, run.packets[i - 1].head_time);
    }
    EXPECT_GE(p.head_time, p.enqueue_time);
    if (!p.dropped) {
      // Service takes at least the frame airtime.
      EXPECT_GE(p.depart_time - p.head_time, airtime);
      // And stays sane even under heavy contention.
      EXPECT_LT(p.depart_time - p.head_time, TimeNs::sec(2));
    }
  }
}

TEST_P(DcfSweep, ThroughputConservation) {
  const auto [n, mbps] = GetParam();
  const ScenarioConfig cfg = config(62);
  Scenario sc(cfg);
  const auto r = sc.run_steady_state(BitRate::mbps(2.0), 1500,
                                     TimeNs::sec(5), TimeNs::sec(1));
  // The probe never exceeds its offered rate (CBR: tiny windowing slack).
  EXPECT_LE(r.probe.to_mbps(), 2.0 * 1.05);
  EXPECT_GT(r.probe.to_mbps(), 0.0);
  // Contenders never exceed their aggregate offered rate beyond the
  // Poisson fluctuation of the 4-second window (4 sigma).
  if (n > 0) {
    const double pkts = n * mbps * 1e6 / (1500 * 8) * 4.0;
    const double slack = 4.0 / std::sqrt(pkts);
    EXPECT_LE(r.contenders_total.to_mbps(), n * mbps * (1.0 + slack));
  }
  // Aggregate stays below the single-station saturation envelope times a
  // small collision-free margin (nothing is created from thin air).
  const double envelope =
      cfg.phy.saturation_rate(1500).to_mbps() * 1.15;
  EXPECT_LE(r.probe.to_mbps() + r.contenders_total.to_mbps(), envelope);
}

TEST_P(DcfSweep, RepetitionsDeterministic) {
  Scenario sc(config(63));
  traffic::TrainSpec spec;
  spec.n = 10;
  spec.size_bytes = 1500;
  spec.gap = BitRate::mbps(4.0).gap_for(1500);
  const TrainRun a = sc.run_train(spec, 5);
  const TrainRun b = sc.run_train(spec, 5);
  ASSERT_EQ(a.packets.size(), b.packets.size());
  for (std::size_t i = 0; i < a.packets.size(); ++i) {
    EXPECT_EQ(a.packets[i].depart_time, b.packets[i].depart_time);
    EXPECT_EQ(a.packets[i].retries, b.packets[i].retries);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ContendersAndLoads, DcfSweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 4),
                       ::testing::Values(0.5, 2.0, 4.0)));

/// Station-level conservation across random mixed traffic, including
/// heterogeneous sizes and a saturated station.
TEST(DcfConservation, MixedTrafficAccounting) {
  mac::WlanNetwork net(mac::PhyParams::dot11b_short(), 64);
  auto& a = net.add_station();
  auto& b = net.add_station();
  auto& c = net.add_station();
  traffic::PoissonSource sa(net.simulator(), a, 0, 300, BitRate::mbps(1.5),
                            net.rng("a"));
  traffic::PoissonSource sb(net.simulator(), b, 1, 1500, BitRate::mbps(3.0),
                            net.rng("b"));
  traffic::CbrSource scbr(net.simulator(), c, 2, 1000,
                          BitRate::mbps(12.0).gap_for(1000));  // saturated
  sa.start(TimeNs::zero());
  sb.start(TimeNs::zero());
  scbr.start(TimeNs::zero());
  net.simulator().run_until(TimeNs::sec(4));

  std::uint64_t delivered = 0;
  for (mac::DcfStation* st : {&a, &b, &c}) {
    EXPECT_EQ(st->stats().enqueued, st->stats().delivered +
                                        st->stats().dropped +
                                        st->queue_length());
    EXPECT_GE(st->stats().attempts, st->stats().delivered);
    delivered += st->stats().delivered;
  }
  // Medium-level and station-level success counts agree.
  EXPECT_EQ(net.medium().stats().successes, delivered);
  // The channel cannot be busy longer than the experiment.
  EXPECT_LE(net.medium().stats().busy_time, TimeNs::sec(4));
}

}  // namespace
}  // namespace csmabw::core
