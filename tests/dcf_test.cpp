#include <gtest/gtest.h>

#include <vector>

#include "mac/bianchi.hpp"
#include "mac/wlan.hpp"
#include "traffic/flow_meter.hpp"
#include "traffic/probe_train.hpp"
#include "traffic/source.hpp"
#include "util/require.hpp"

namespace csmabw::mac {
namespace {

Packet make_packet(int flow, int seq, int bytes = 1500) {
  Packet p;
  p.flow = flow;
  p.seq = seq;
  p.size_bytes = bytes;
  return p;
}

/// Collects every delivered packet of a station.
struct Sink {
  std::vector<Packet> delivered;
  std::vector<Packet> dropped;

  explicit Sink(DcfStation& st) {
    st.set_delivery_callback(
        [this](const Packet& p) { delivered.push_back(p); });
    st.set_drop_callback([this](const Packet& p) { dropped.push_back(p); });
  }
};

TEST(Dcf, LonePacketGetsImmediateAccessAfterDifs) {
  WlanNetwork net(PhyParams::dot11b_short(), 1);
  auto& st = net.add_station();
  Sink sink(st);
  net.simulator().schedule_at(TimeNs::ms(1),
                              [&] { st.enqueue(make_packet(0, 0)); });
  net.simulator().run_until(TimeNs::ms(10));

  ASSERT_EQ(sink.delivered.size(), 1u);
  const Packet& p = sink.delivered[0];
  const PhyParams phy = PhyParams::dot11b_short();
  // Idle medium: DIFS deference, zero backoff, then the data frame.
  EXPECT_EQ(p.first_tx_time, TimeNs::ms(1) + phy.difs());
  EXPECT_EQ(p.depart_time, p.first_tx_time + phy.data_tx_time(1500));
  EXPECT_EQ(p.head_time, TimeNs::ms(1));
  EXPECT_EQ(p.retries, 0);
}

TEST(Dcf, ImmediateAccessAblationAddsBackoff) {
  PhyParams phy = PhyParams::dot11b_short();
  phy.immediate_access = false;
  WlanNetwork net(phy, 1);
  auto& st = net.add_station();
  Sink sink(st);
  net.simulator().schedule_at(TimeNs::ms(1),
                              [&] { st.enqueue(make_packet(0, 0)); });
  net.simulator().run_until(TimeNs::ms(10));

  ASSERT_EQ(sink.delivered.size(), 1u);
  const Packet& p = sink.delivered[0];
  const TimeNs backoff = p.first_tx_time - TimeNs::ms(1) - phy.difs();
  // A random backoff of 0..CWmin slots was inserted.
  EXPECT_GE(backoff, TimeNs::zero());
  EXPECT_LE(backoff, phy.slot_time * phy.cw_min);
  EXPECT_EQ(backoff % phy.slot_time, TimeNs::zero());
}

TEST(Dcf, SecondQueuedPacketWaitsForAckAndBackoff) {
  const PhyParams phy = PhyParams::dot11b_short();
  WlanNetwork net(phy, 2);
  auto& st = net.add_station();
  Sink sink(st);
  net.simulator().schedule_at(TimeNs::ms(1), [&] {
    st.enqueue(make_packet(0, 0));
    st.enqueue(make_packet(0, 1));
  });
  net.simulator().run_until(TimeNs::ms(50));

  ASSERT_EQ(sink.delivered.size(), 2u);
  const Packet& p0 = sink.delivered[0];
  const Packet& p1 = sink.delivered[1];
  // The second packet reaches the head when the first's data ends.
  EXPECT_EQ(p1.head_time, p0.depart_time);
  // It cannot start before the ACK exchange + DIFS complete.
  const TimeNs ack_end = p0.depart_time + phy.sifs + phy.ack_tx_time();
  EXPECT_GE(p1.first_tx_time, ack_end + phy.difs());
  // And it must start on a whole slot boundary after that.
  EXPECT_EQ((p1.first_tx_time - ack_end - phy.difs()) % phy.slot_time,
            TimeNs::zero());
}

TEST(Dcf, AccessDelayIsHeadToDepart) {
  WlanNetwork net(PhyParams::dot11b_short(), 3);
  auto& st = net.add_station();
  Sink sink(st);
  net.simulator().schedule_at(TimeNs::ms(1),
                              [&] { st.enqueue(make_packet(0, 0)); });
  net.simulator().run_until(TimeNs::ms(10));
  ASSERT_EQ(sink.delivered.size(), 1u);
  const Packet& p = sink.delivered[0];
  EXPECT_DOUBLE_EQ(p.access_delay_s(),
                   (p.depart_time - p.head_time).to_seconds());
  EXPECT_DOUBLE_EQ(p.sojourn_s(),
                   (p.depart_time - p.enqueue_time).to_seconds());
}

TEST(Dcf, SingleSaturatedStationMatchesAnalyticRate) {
  const PhyParams phy = PhyParams::dot11b_short();
  WlanNetwork net(phy, 4);
  auto& st = net.add_station();
  traffic::CbrSource src(net.simulator(), st, 0, 1500,
                         BitRate::mbps(20).gap_for(1500));
  src.start(TimeNs::zero());
  traffic::FlowMeter meter(TimeNs::sec(1), TimeNs::sec(5));
  traffic::FlowDispatcher d(st);
  d.on_any([&](const Packet& p) { meter.on_packet(p); });
  net.simulator().run_until(TimeNs::sec(5));

  EXPECT_NEAR(meter.rate().to_mbps(), phy.saturation_rate(1500).to_mbps(),
              0.10);
}

TEST(Dcf, TwoSaturatedStationsShareFairly) {
  const PhyParams phy = PhyParams::dot11b_short();
  WlanNetwork net(phy, 5);
  auto& a = net.add_station();
  auto& b = net.add_station();
  traffic::CbrSource sa(net.simulator(), a, 0, 1500,
                        BitRate::mbps(20).gap_for(1500));
  traffic::CbrSource sb(net.simulator(), b, 1, 1500,
                        BitRate::mbps(20).gap_for(1500));
  sa.start(TimeNs::zero());
  sb.start(TimeNs::zero());
  traffic::FlowMeter ma(TimeNs::sec(1), TimeNs::sec(11));
  traffic::FlowMeter mb(TimeNs::sec(1), TimeNs::sec(11));
  traffic::FlowDispatcher da(a);
  traffic::FlowDispatcher db(b);
  da.on_any([&](const Packet& p) { ma.on_packet(p); });
  db.on_any([&](const Packet& p) { mb.on_packet(p); });
  net.simulator().run_until(TimeNs::sec(11));

  const double ra = ma.rate().to_mbps();
  const double rb = mb.rate().to_mbps();
  EXPECT_NEAR(ra / (ra + rb), 0.5, 0.05);  // long-run fairness

  const BianchiResult bi = bianchi_saturation(phy, 2, 1500);
  EXPECT_NEAR(ra + rb, bi.aggregate.to_mbps(),
              0.10 * bi.aggregate.to_mbps());
}

TEST(Dcf, SaturatedContentionProducesCollisions) {
  WlanNetwork net(PhyParams::dot11b_short(), 6);
  auto& a = net.add_station();
  auto& b = net.add_station();
  traffic::CbrSource sa(net.simulator(), a, 0, 1500,
                        BitRate::mbps(20).gap_for(1500));
  traffic::CbrSource sb(net.simulator(), b, 1, 1500,
                        BitRate::mbps(20).gap_for(1500));
  sa.start(TimeNs::zero());
  sb.start(TimeNs::zero());
  net.simulator().run_until(TimeNs::sec(3));

  EXPECT_GT(net.medium().stats().collisions, 0u);
  EXPECT_GE(net.medium().stats().collided_frames,
            2 * net.medium().stats().collisions);
  // Retries show up as attempts > deliveries.
  EXPECT_GT(a.stats().attempts + b.stats().attempts,
            a.stats().delivered + b.stats().delivered);
}

TEST(Dcf, PacketConservation) {
  WlanNetwork net(PhyParams::dot11b_short(), 7);
  auto& a = net.add_station();
  auto& b = net.add_station();
  traffic::PoissonSource sa(net.simulator(), a, 0, 1000, BitRate::mbps(3),
                            net.rng("pa"));
  traffic::PoissonSource sb(net.simulator(), b, 1, 1000, BitRate::mbps(3),
                            net.rng("pb"));
  sa.start(TimeNs::zero());
  sb.start(TimeNs::zero());
  net.simulator().run_until(TimeNs::sec(3));

  for (DcfStation* st : {&a, &b}) {
    EXPECT_EQ(st->stats().enqueued,
              st->stats().delivered + st->stats().dropped +
                  st->queue_length());
  }
}

TEST(Dcf, RetryLimitDropsFrameAndContinues) {
  // CWmin = CWmax = 1 gives persistent 50% collisions between two
  // saturated stations, so the 7-retry limit trips quickly.
  PhyParams phy = PhyParams::dot11b_short();
  phy.cw_min = 1;
  phy.cw_max = 1;
  WlanNetwork net(phy, 8);
  auto& a = net.add_station();
  auto& b = net.add_station();
  traffic::CbrSource sa(net.simulator(), a, 0, 1500,
                        BitRate::mbps(20).gap_for(1500));
  traffic::CbrSource sb(net.simulator(), b, 1, 1500,
                        BitRate::mbps(20).gap_for(1500));
  sa.start(TimeNs::zero());
  sb.start(TimeNs::zero());
  Sink sink_a(a);
  net.simulator().run_until(TimeNs::sec(5));

  EXPECT_GT(a.stats().dropped + b.stats().dropped, 0u);
  for (const Packet& p : sink_a.dropped) {
    EXPECT_TRUE(p.dropped);
    EXPECT_EQ(p.retries, phy.retry_limit + 1);
  }
  // The stations keep delivering after drops.
  EXPECT_GT(a.stats().delivered, 0u);
  EXPECT_GT(b.stats().delivered, 0u);
}

TEST(Dcf, BusyMediumArrivalDrawsBackoff) {
  // A packet arriving at station B while A transmits must not collide
  // with certainty: it freezes until the medium clears, then backs off.
  const PhyParams phy = PhyParams::dot11b_short();
  WlanNetwork net(phy, 9);
  auto& a = net.add_station();
  auto& b = net.add_station();
  Sink sink_a(a);
  Sink sink_b(b);
  net.simulator().schedule_at(TimeNs::ms(1),
                              [&] { a.enqueue(make_packet(0, 0)); });
  // Arrives mid-transmission of A's frame.
  net.simulator().schedule_at(TimeNs::ms(1) + phy.difs() + TimeNs::us(200),
                              [&] { b.enqueue(make_packet(1, 0)); });
  net.simulator().run_until(TimeNs::ms(50));

  ASSERT_EQ(sink_a.delivered.size(), 1u);
  ASSERT_EQ(sink_b.delivered.size(), 1u);
  const TimeNs a_ack_end = sink_a.delivered[0].depart_time + phy.sifs +
                           phy.ack_tx_time();
  // B waits for A's exchange plus DIFS before its own attempt.
  EXPECT_GE(sink_b.delivered[0].first_tx_time, a_ack_end + phy.difs());
  EXPECT_EQ(net.medium().stats().collisions, 0u);
}

TEST(Dcf, QueueGrowsWhenOverloaded) {
  WlanNetwork net(PhyParams::dot11b_short(), 10);
  auto& st = net.add_station();
  traffic::CbrSource src(net.simulator(), st, 0, 1500,
                         BitRate::mbps(14).gap_for(1500));  // ~2x capacity
  src.start(TimeNs::zero());
  net.simulator().run_until(TimeNs::sec(2));
  // Offered ~14 Mb/s vs ~6.9 Mb/s service: the backlog must build.
  EXPECT_GT(st.queue_length(), 100u);
}

TEST(Dcf, HeadFrameBytesRequiresFrame) {
  WlanNetwork net(PhyParams::dot11b_short(), 11);
  auto& st = net.add_station();
  EXPECT_THROW((void)st.head_frame_bytes(), util::PreconditionError);
}

TEST(Dcf, EnqueueRejectsEmptyPacket) {
  WlanNetwork net(PhyParams::dot11b_short(), 12);
  auto& st = net.add_station();
  Packet p;  // size_bytes == 0
  EXPECT_THROW(st.enqueue(p), util::PreconditionError);
}

TEST(Dcf, MediumBusyTimeAccumulates) {
  WlanNetwork net(PhyParams::dot11b_short(), 13);
  auto& st = net.add_station();
  Sink sink(st);
  net.simulator().schedule_at(TimeNs::ms(1),
                              [&] { st.enqueue(make_packet(0, 0)); });
  net.simulator().run_until(TimeNs::ms(10));
  const PhyParams phy = PhyParams::dot11b_short();
  EXPECT_EQ(net.medium().stats().busy_time,
            phy.data_tx_time(1500) + phy.sifs + phy.ack_tx_time());
  EXPECT_EQ(net.medium().stats().successes, 1u);
}

TEST(Dcf, PostBackoffDelaysBackToBackArrivals) {
  // With post-backoff (standard), a packet arriving just after a
  // transmission rides the post-backoff countdown; with the ablation it
  // gets DIFS-only access.  Compare the second packet's access delay.
  auto run = [](bool post_backoff, std::uint64_t seed) {
    PhyParams phy = PhyParams::dot11b_short();
    phy.post_backoff = post_backoff;
    WlanNetwork net(phy, seed);
    auto& st = net.add_station();
    Sink sink(st);
    net.simulator().schedule_at(TimeNs::ms(1),
                                [&] { st.enqueue(make_packet(0, 0)); });
    // Arrives shortly after the first exchange finishes (~1.6 ms), while
    // post-backoff is still counting.
    net.simulator().schedule_at(TimeNs::ms(2),
                                [&] { st.enqueue(make_packet(0, 1)); });
    net.simulator().run_until(TimeNs::ms(50));
    return sink;
  };

  double with_sum = 0.0;
  double without_sum = 0.0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    with_sum += run(true, seed).delivered[1].access_delay_s();
    without_sum += run(false, seed).delivered[1].access_delay_s();
  }
  EXPECT_GE(with_sum, without_sum);
}

TEST(Wlan, StationsAreStableAndIndexed) {
  WlanNetwork net(PhyParams::dot11b_short(), 14);
  auto& a = net.add_station();
  auto& b = net.add_station();
  EXPECT_EQ(a.id(), 0);
  EXPECT_EQ(b.id(), 1);
  EXPECT_EQ(net.num_stations(), 2);
  EXPECT_EQ(&net.station(0), &a);
  EXPECT_EQ(&net.station(1), &b);
}

TEST(Wlan, NamedRngsReproducible) {
  WlanNetwork n1(PhyParams::dot11b_short(), 77);
  WlanNetwork n2(PhyParams::dot11b_short(), 77);
  auto r1 = n1.rng("x");
  auto r2 = n2.rng("x");
  EXPECT_DOUBLE_EQ(r1.uniform01(), r2.uniform01());
}

}  // namespace
}  // namespace csmabw::mac
