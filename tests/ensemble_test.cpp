#include "stats/ensemble.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/require.hpp"

namespace csmabw::stats {
namespace {

TEST(EnsembleSeries, PerIndexMeans) {
  EnsembleSeries e(3, 3, 1);
  e.add_repetition(std::vector<double>{1.0, 2.0, 3.0});
  e.add_repetition(std::vector<double>{3.0, 4.0, 5.0});
  EXPECT_EQ(e.repetitions(), 2);
  EXPECT_DOUBLE_EQ(e.mean_at(0), 2.0);
  EXPECT_DOUBLE_EQ(e.mean_at(1), 3.0);
  EXPECT_DOUBLE_EQ(e.mean_at(2), 4.0);
  const auto means = e.means();
  EXPECT_EQ(means, (std::vector<double>{2.0, 3.0, 4.0}));
}

TEST(EnsembleSeries, RawSamplesRetainedForPrefix) {
  EnsembleSeries e(4, 2, 1);
  e.add_repetition(std::vector<double>{1.0, 2.0, 3.0, 4.0});
  e.add_repetition(std::vector<double>{5.0, 6.0, 7.0, 8.0});
  const auto raw0 = e.raw_at(0);
  ASSERT_EQ(raw0.size(), 2u);
  EXPECT_DOUBLE_EQ(raw0[0], 1.0);
  EXPECT_DOUBLE_EQ(raw0[1], 5.0);
  EXPECT_THROW((void)e.raw_at(2), util::PreconditionError);
}

TEST(EnsembleSeries, SteadyPoolCollectsTail) {
  EnsembleSeries e(4, 0, 2);
  e.add_repetition(std::vector<double>{1.0, 2.0, 10.0, 20.0});
  e.add_repetition(std::vector<double>{3.0, 4.0, 30.0, 40.0});
  ASSERT_EQ(e.steady_pool().size(), 4u);
  EXPECT_DOUBLE_EQ(e.steady_mean(), 25.0);
}

TEST(EnsembleSeries, StatExposesSpread) {
  EnsembleSeries e(1, 0, 1);
  e.add_repetition(std::vector<double>{2.0});
  e.add_repetition(std::vector<double>{4.0});
  EXPECT_DOUBLE_EQ(e.stat_at(0).mean(), 3.0);
  EXPECT_DOUBLE_EQ(e.stat_at(0).variance(), 2.0);
}

TEST(EnsembleSeries, RejectsWrongLength) {
  EnsembleSeries e(3, 0, 1);
  EXPECT_THROW(e.add_repetition(std::vector<double>{1.0}),
               util::PreconditionError);
}

TEST(EnsembleSeries, RejectsBadConfig) {
  EXPECT_THROW(EnsembleSeries(0, 0, 0), util::PreconditionError);
  EXPECT_THROW(EnsembleSeries(3, 4, 0), util::PreconditionError);
  EXPECT_THROW(EnsembleSeries(3, 0, 4), util::PreconditionError);
}

TEST(EnsembleSeries, IndexBoundsChecked) {
  EnsembleSeries e(2, 0, 1);
  e.add_repetition(std::vector<double>{1.0, 2.0});
  EXPECT_THROW((void)e.mean_at(2), util::PreconditionError);
  EXPECT_THROW((void)e.mean_at(-1), util::PreconditionError);
}

}  // namespace
}  // namespace csmabw::stats
