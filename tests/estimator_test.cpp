#include "core/estimator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/queueing_transport.hpp"
#include "core/scenario.hpp"
#include "util/require.hpp"

namespace csmabw::core {
namespace {

/// A queueing link whose steady-state service rate corresponds to 6 Mb/s
/// for 1500-byte packets (service 2 ms), with an accelerated head that
/// mimics the WLAN transient.
QueueingTransport::Config transient_link() {
  QueueingTransport::Config cfg;
  cfg.probe_service = [](int index, stats::Rng& rng) {
    const double level = index < 6 ? 0.0012 : 0.002;
    return rng.uniform(level * 0.95, level * 1.05);
  };
  return cfg;
}

TEST(Estimator, MeasureRateTransparentBelowCapacity) {
  QueueingTransport t(transient_link());
  EstimatorOptions opt;
  opt.train_length = 30;
  opt.trains_per_rate = 5;
  BandwidthEstimator est(t, opt);
  const RateResponsePoint p = est.measure_rate(2e6);
  EXPECT_NEAR(p.output_bps, 2e6, 0.05e6);
}

TEST(Estimator, SweepFitsAchievableThroughput) {
  QueueingTransport t(transient_link());
  EstimatorOptions opt;
  opt.train_length = 50;
  opt.trains_per_rate = 8;
  BandwidthEstimator est(t, opt);
  std::vector<double> rates;
  for (double r = 1e6; r <= 10e6; r += 1e6) {
    rates.push_back(r);
  }
  const SweepResult sweep = est.sweep(rates);
  EXPECT_EQ(sweep.curve.points.size(), rates.size());
  // Steady service 2 ms -> 6 Mb/s; the transient inflates it slightly.
  EXPECT_NEAR(sweep.fitted_achievable_bps, 6e6, 0.7e6);
}

TEST(Estimator, MserCorrectionTightensShortTrainEstimate) {
  // Short trains + transient: the raw estimate overshoots the
  // steady-state achievable throughput; MSER-2 pulls it back (Fig 17).
  EstimatorOptions raw_opt;
  raw_opt.train_length = 20;
  raw_opt.trains_per_rate = 40;
  EstimatorOptions mser_opt = raw_opt;
  mser_opt.mser_correction = true;

  QueueingTransport t_raw(transient_link());
  QueueingTransport t_mser(transient_link());
  BandwidthEstimator raw(t_raw, raw_opt);
  BandwidthEstimator corrected(t_mser, mser_opt);

  const double probe_rate = 9e6;  // well above the 6 Mb/s steady rate
  const double steady = 6e6;
  const double raw_err =
      std::abs(raw.measure_rate(probe_rate).output_bps - steady);
  const double cor_err =
      std::abs(corrected.measure_rate(probe_rate).output_bps - steady);
  EXPECT_LT(cor_err, raw_err);
}

TEST(Estimator, AdaptiveSearchConvergesOnWlan) {
  ScenarioConfig cfg;
  cfg.seed = 31;
  cfg.contenders.push_back(StationSpec::poisson(BitRate::mbps(4.0), 1500));
  SimTransport t(cfg);
  EstimatorOptions opt;
  opt.train_length = 40;
  opt.trains_per_rate = 3;
  opt.max_iterations = 10;
  BandwidthEstimator est(t, opt);
  const double b = est.estimate_achievable_bps();
  // Fair share against a 4 Mb/s contender on a ~6.9 Mb/s link is around
  // 3.4-3.9 Mb/s; the adaptive search must land in that region.
  EXPECT_GT(b, 2.8e6);
  EXPECT_LT(b, 5.0e6);
}

TEST(Estimator, SweepOnWlanFlattensAtFairShare) {
  ScenarioConfig cfg;
  cfg.seed = 32;
  cfg.contenders.push_back(StationSpec::poisson(BitRate::mbps(4.5), 1500));
  SimTransport t(cfg);
  EstimatorOptions opt;
  opt.train_length = 60;
  opt.trains_per_rate = 4;
  BandwidthEstimator est(t, opt);
  const SweepResult sweep =
      est.sweep({1e6, 2e6, 3e6, 5e6, 7e6, 9e6});
  // Low rates pass through; high rates flatten near the fair share.
  EXPECT_NEAR(sweep.curve.points[0].output_bps, 1e6, 0.1e6);
  EXPECT_LT(sweep.curve.points[5].output_bps, 5e6);
  EXPECT_GT(sweep.fitted_achievable_bps, 2.5e6);
  EXPECT_LT(sweep.fitted_achievable_bps, 5e6);
}

TEST(Estimator, ValidatesOptions) {
  QueueingTransport t(transient_link());
  EstimatorOptions opt;
  opt.train_length = 2;
  EXPECT_THROW(BandwidthEstimator(t, opt), util::PreconditionError);
  opt = EstimatorOptions{};
  opt.rel_tol = 0.0;
  EXPECT_THROW(BandwidthEstimator(t, opt), util::PreconditionError);
  opt = EstimatorOptions{};
  opt.max_rate_bps = opt.min_rate_bps;
  EXPECT_THROW(BandwidthEstimator(t, opt), util::PreconditionError);
}

TEST(Estimator, MeasureRateRejectsNonPositive) {
  QueueingTransport t(transient_link());
  BandwidthEstimator est(t, EstimatorOptions{});
  EXPECT_THROW((void)est.measure_rate(0.0), util::PreconditionError);
}

TEST(Estimator, SweepNeedsTwoRates) {
  QueueingTransport t(transient_link());
  BandwidthEstimator est(t, EstimatorOptions{});
  EXPECT_THROW((void)est.sweep({1e6}), util::PreconditionError);
}

}  // namespace
}  // namespace csmabw::core
