// Verifies the pooled event core is allocation-free in steady state,
// two ways: the queue's own allocation counter (slab chunks +
// heap-vector growth), and — where sanitizers don't own the allocator —
// a replacement global operator new that counts every heap allocation
// in the process.  The replacement is binary-wide but only counts while
// `g_counting` is set, which happens strictly inside the measured loops
// (no gtest assertions, no stream I/O in between).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "sim/simulator.hpp"
#include "util/time.hpp"

// ASan/MSan interpose the allocator and tag each allocation with the
// operator that produced it; a user replacement of only the ordinary
// operator new then trips alloc-dealloc-mismatch on the library's
// nothrow/aligned paths.  Under sanitizers the slab-counter assertions
// still run; only the global hook is disabled.
#if defined(__SANITIZE_ADDRESS__)
#define CSMABW_NEW_HOOK 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(memory_sanitizer)
#define CSMABW_NEW_HOOK 0
#endif
#endif
#ifndef CSMABW_NEW_HOOK
#define CSMABW_NEW_HOOK 1
#endif

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_allocs{0};

#if CSMABW_NEW_HOOK
void* counted_alloc(std::size_t n) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(n > 0 ? n : 1);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}
#endif

}  // namespace

#if CSMABW_NEW_HOOK
void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#endif

namespace csmabw::sim {
namespace {

TEST(EventAllocation, SteadyStateScheduleAndRunIsHeapFree) {
  Simulator sim;
  long hits = 0;
  // Warm-up: grow the slab and the heap vector to their high-water mark.
  for (int i = 0; i < 2000; ++i) {
    sim.schedule_in(TimeNs::us(i % 100), [&hits] { ++hits; });
  }
  sim.run();

  // Steady state: 10k scheduled + dispatched events, zero allocations.
  const std::uint64_t queue_allocs_before = sim.event_allocations();
  g_allocs.store(0);
  g_counting.store(true);
  for (int batch = 0; batch < 10; ++batch) {
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_in(TimeNs::us(i % 100), [&hits] { ++hits; });
    }
    sim.run();
  }
  g_counting.store(false);

  EXPECT_EQ(sim.event_allocations(), queue_allocs_before);
#if CSMABW_NEW_HOOK
  EXPECT_EQ(g_allocs.load(), 0u);
#endif
  EXPECT_EQ(hits, 2000 + 10000);
}

TEST(EventAllocation, ScheduleCancelChurnIsHeapFree) {
  Simulator sim;
  auto churn = [&sim] {
    for (int i = 0; i < 10000; ++i) {
      auto h = sim.schedule_in(TimeNs::us(5 + i % 50), [] {});
      if (i % 2 == 0) {
        h.cancel();
      }
    }
    sim.run();
  };
  // Warm-up: the same workload once, so the slab, the heap vector and
  // compaction (in-place, no scratch) reach their high-water marks.
  churn();

  const std::uint64_t queue_allocs_before = sim.event_allocations();
  g_allocs.store(0);
  g_counting.store(true);
  churn();
  g_counting.store(false);

  EXPECT_EQ(sim.event_allocations(), queue_allocs_before);
#if CSMABW_NEW_HOOK
  EXPECT_EQ(g_allocs.load(), 0u);
#endif
}

}  // namespace
}  // namespace csmabw::sim
