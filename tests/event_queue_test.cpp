#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/require.hpp"

namespace csmabw::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimeNs::us(30), [&] { order.push_back(3); });
  q.schedule(TimeNs::us(10), [&] { order.push_back(1); });
  q.schedule(TimeNs::us(20), [&] { order.push_back(2); });
  while (!q.empty()) {
    q.pop_and_run();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(TimeNs::us(7), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    q.pop_and_run();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue q;
  std::vector<int> order;
  auto h = q.schedule(TimeNs::us(1), [&] { order.push_back(1); });
  q.schedule(TimeNs::us(2), [&] { order.push_back(2); });
  h.cancel();
  while (!q.empty()) {
    q.pop_and_run();
  }
  EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST(EventQueue, CancelIsIdempotentAndSafeAfterFire) {
  EventQueue q;
  auto h = q.schedule(TimeNs::us(1), [] {});
  EXPECT_TRUE(h.scheduled());
  q.pop_and_run();
  EXPECT_FALSE(h.scheduled());
  h.cancel();  // no effect after firing
  h.cancel();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, DefaultHandleIsUnscheduled) {
  EventHandle h;
  EXPECT_FALSE(h.scheduled());
  h.cancel();  // must not crash
}

TEST(EventQueue, NextTimeSeesEarliestLiveEvent) {
  EventQueue q;
  auto h = q.schedule(TimeNs::us(1), [] {});
  q.schedule(TimeNs::us(5), [] {});
  h.cancel();
  EXPECT_EQ(q.next_time(), TimeNs::us(5));
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  auto h1 = q.schedule(TimeNs::us(1), [] {});
  q.schedule(TimeNs::us(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  h1.cancel();
  EXPECT_TRUE(!q.empty());
  EXPECT_EQ(q.size(), 1u);
  q.pop_and_run();
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, CallbackMaySchedule) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimeNs::us(1), [&] {
    order.push_back(1);
    q.schedule(TimeNs::us(2), [&] { order.push_back(2); });
  });
  while (!q.empty()) {
    q.pop_and_run();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, PopOnEmptyIsAnError) {
  EventQueue q;
  EXPECT_THROW((void)q.pop_and_run(), util::PreconditionError);
  EXPECT_THROW((void)q.next_time(), util::PreconditionError);
}

TEST(EventQueue, NullCallbackRejected) {
  EventQueue q;
  EXPECT_THROW((void)q.schedule(TimeNs::us(1), nullptr),
               util::PreconditionError);
}

}  // namespace
}  // namespace csmabw::sim
