#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "util/require.hpp"

namespace csmabw::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimeNs::us(30), [&] { order.push_back(3); });
  q.schedule(TimeNs::us(10), [&] { order.push_back(1); });
  q.schedule(TimeNs::us(20), [&] { order.push_back(2); });
  while (!q.empty()) {
    q.pop_and_run();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(TimeNs::us(7), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    q.pop_and_run();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue q;
  std::vector<int> order;
  auto h = q.schedule(TimeNs::us(1), [&] { order.push_back(1); });
  q.schedule(TimeNs::us(2), [&] { order.push_back(2); });
  h.cancel();
  while (!q.empty()) {
    q.pop_and_run();
  }
  EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST(EventQueue, CancelIsIdempotentAndSafeAfterFire) {
  EventQueue q;
  auto h = q.schedule(TimeNs::us(1), [] {});
  EXPECT_TRUE(h.scheduled());
  q.pop_and_run();
  EXPECT_FALSE(h.scheduled());
  h.cancel();  // no effect after firing
  h.cancel();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, DefaultHandleIsUnscheduled) {
  EventHandle h;
  EXPECT_FALSE(h.scheduled());
  h.cancel();  // must not crash
}

TEST(EventQueue, NextTimeSeesEarliestLiveEvent) {
  EventQueue q;
  auto h = q.schedule(TimeNs::us(1), [] {});
  q.schedule(TimeNs::us(5), [] {});
  h.cancel();
  EXPECT_EQ(q.next_time(), TimeNs::us(5));
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  auto h1 = q.schedule(TimeNs::us(1), [] {});
  q.schedule(TimeNs::us(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  h1.cancel();
  EXPECT_TRUE(!q.empty());
  EXPECT_EQ(q.size(), 1u);
  q.pop_and_run();
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, CallbackMaySchedule) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimeNs::us(1), [&] {
    order.push_back(1);
    q.schedule(TimeNs::us(2), [&] { order.push_back(2); });
  });
  while (!q.empty()) {
    q.pop_and_run();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, PopOnEmptyIsAnError) {
  EventQueue q;
  EXPECT_THROW((void)q.pop_and_run(), util::PreconditionError);
  EXPECT_THROW((void)q.next_time(), util::PreconditionError);
}

// A nullable callable smaller than std::function (whose size varies by
// standard library — libc++/MSVC would overflow the inline slot).
struct NullableFn {
  void (*fn)() = nullptr;
  explicit operator bool() const { return fn != nullptr; }
  void operator()() const { fn(); }
};

TEST(EventQueue, NullCallbackRejected) {
  EventQueue q;
  EXPECT_THROW((void)q.schedule(TimeNs::us(1), NullableFn{}),
               util::PreconditionError);
}

TEST(EventQueue, MemberDispatchRunsTheMethod) {
  struct Counter {
    int hits = 0;
    void bump() { ++hits; }
  };
  EventQueue q;
  Counter c;
  q.schedule_member<&Counter::bump>(TimeNs::us(1), c);
  auto h = q.schedule_member<&Counter::bump>(TimeNs::us(2), c);
  EXPECT_TRUE(h.scheduled());
  h.cancel();
  while (!q.empty()) {
    q.pop_and_run();
  }
  EXPECT_EQ(c.hits, 1);
}

TEST(EventQueue, NonTrivialCallbackIsDestroyed) {
  // A shared_ptr capture is non-trivially destructible; its destructor
  // must run both on the fire path and on the cancel path (and at
  // queue teardown).
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> watch = token;
  {
    EventQueue q;
    auto fn = [token] {};
    token.reset();
    EXPECT_FALSE(watch.expired());
    auto h = q.schedule(TimeNs::us(1), std::move(fn));
    h.cancel();
    EXPECT_TRUE(watch.expired());  // cancel destroys the callback eagerly
  }
}

TEST(EventQueue, TeardownDestroysPendingCallbacks) {
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> watch = token;
  {
    EventQueue q;
    auto fn = [token] {};
    token.reset();
    q.schedule(TimeNs::us(1), std::move(fn));
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

// --- generation safety (slot recycling must not enable ABA cancels) ---

TEST(EventQueue, HandleToFiredSlotGoesStale) {
  EventQueue q;
  auto h1 = q.schedule(TimeNs::us(1), [] {});
  q.pop_and_run();
  // The slot is free again; the next schedule recycles it.
  int fired = 0;
  auto h2 = q.schedule(TimeNs::us(2), [&] { ++fired; });
  EXPECT_FALSE(h1.scheduled());
  EXPECT_TRUE(h2.scheduled());
  h1.cancel();  // stale handle: must NOT cancel the slot's new occupant
  EXPECT_TRUE(h2.scheduled());
  q.pop_and_run();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, HandleToCancelledAndRecycledSlotGoesStale) {
  EventQueue q;
  auto h1 = q.schedule(TimeNs::us(1), [] {});
  h1.cancel();
  int fired = 0;
  auto h2 = q.schedule(TimeNs::us(2), [&] { ++fired; });
  EXPECT_FALSE(h1.scheduled());
  h1.cancel();  // idempotent and still a no-op for the new occupant
  EXPECT_TRUE(h2.scheduled());
  while (!q.empty()) {
    q.pop_and_run();
  }
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, SelfCancelDuringDispatchIsANoOp) {
  EventQueue q;
  EventHandle h;
  int other = 0;
  h = q.schedule(TimeNs::us(1), [&] {
    EXPECT_FALSE(h.scheduled());  // already firing
    h.cancel();                   // harmless
  });
  q.schedule(TimeNs::us(2), [&] { ++other; });
  while (!q.empty()) {
    q.pop_and_run();
  }
  EXPECT_EQ(other, 1);
}

// --- compaction: schedule/cancel churn must stay bounded ---

TEST(EventQueue, CancelChurnKeepsHeapAndSlabBounded) {
  EventQueue q;
  // A few long-lived events so the heap is never trivially empty.
  for (int i = 0; i < 10; ++i) {
    q.schedule(TimeNs::sec(100 + i), [] {});
  }
  std::size_t max_heap = 0;
  for (int i = 0; i < 100000; ++i) {
    auto h = q.schedule(TimeNs::us(i % 997), [] {});
    h.cancel();
    max_heap = std::max(max_heap, q.heap_entries());
  }
  // Cancelled-before-pop events must be reclaimed by compaction, not
  // accumulate until they surface: 100k cancels, yet the heap stays at
  // live + O(live + constant) records and the slab never grows past its
  // tiny high-water mark.
  EXPECT_EQ(q.size(), 10u);
  EXPECT_LT(max_heap, 200u);
  EXPECT_LE(q.slot_capacity(), 256u);
}

TEST(EventQueue, CompactionPreservesFireOrder) {
  EventQueue q;
  std::vector<int> order;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 2000; ++i) {
    handles.push_back(
        q.schedule(TimeNs::us(2000 - i), [&order, i] { order.push_back(i); }));
  }
  // Cancel all odd events — enough to trigger several compactions once
  // the churn below runs.
  for (int i = 1; i < 2000; i += 2) {
    handles[static_cast<std::size_t>(i)].cancel();
  }
  for (int i = 0; i < 5000; ++i) {
    auto h = q.schedule(TimeNs::us(1), [] {});
    h.cancel();
  }
  while (!q.empty()) {
    q.pop_and_run();
  }
  // Even events fire in ascending time, i.e. descending i.
  ASSERT_EQ(order.size(), 1000u);
  for (std::size_t k = 1; k < order.size(); ++k) {
    EXPECT_LT(order[k], order[k - 1]);
  }
}

TEST(EventQueue, SteadyStateDoesNotAllocate) {
  EventQueue q;
  auto churn = [&q] {
    for (int i = 0; i < 10000; ++i) {
      auto h = q.schedule(TimeNs::us(i % 500), [] {});
      if (i % 3 == 0) {
        h.cancel();
      }
      if (q.size() > 700) {
        while (!q.empty()) {
          q.pop_and_run();
        }
      }
    }
    while (!q.empty()) {
      q.pop_and_run();
    }
  };
  // Warm-up: drive slab and heap to the workload's high-water mark.
  churn();
  // Steady state: the queue itself performs zero heap allocations across
  // 10k scheduled events (slab chunks and heap capacity are recycled).
  const std::uint64_t before = q.allocations();
  churn();
  EXPECT_EQ(q.allocations(), before);
}

TEST(EventQueue, RunUntilBatchesInOrder) {
  EventQueue q;
  std::vector<std::int64_t> seen;
  TimeNs now = TimeNs::zero();
  for (int i = 10; i >= 1; --i) {
    q.schedule(TimeNs::us(i), [&seen, &now] { seen.push_back(now.count()); });
  }
  const std::uint64_t ran = q.run_until(TimeNs::us(5), now);
  EXPECT_EQ(ran, 5u);
  EXPECT_EQ(q.size(), 5u);
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  const std::uint64_t rest = q.run_all(now);
  EXPECT_EQ(rest, 5u);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(now, TimeNs::us(10));
}

}  // namespace
}  // namespace csmabw::sim
